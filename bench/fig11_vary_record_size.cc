// Figure 11: communication (a) and running time (b) vs record size, with the
// record *count* fixed (the paper fixes 4,194,304 records and sweeps 4B to
// 100kB, i.e. 16MB to 400GB and 1 to 1600 splits). Splits are derived from a
// fixed split size, so m grows with the record size.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 11: cost analysis, vary record size",
                    "paper: 4.2M records, 4B..100kB records, m = 1..1600", d);

  const uint64_t records = d.n >> 4;           // fixed record count
  const uint64_t split_bytes = uint64_t{1} << 20;  // scaled split size
  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  std::vector<std::string> cols = {"record(B)", "m"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  Table comm("(a) communication (bytes)", cols);
  Table time("(b) running time (seconds)", cols);

  for (uint32_t record_bytes : {4u, 64u, 1024u, 4096u, 16384u}) {
    uint64_t total = records * record_bytes;
    uint64_t m = std::clamp<uint64_t>(total / split_bytes, 1, 1600);
    ZipfDatasetOptions zopt = d.ZipfOptions();
    zopt.num_records = records;
    zopt.record_bytes = record_bytes;
    zopt.num_splits = m;
    ZipfDataset ds(zopt);
    BuildOptions opt = d.Build();
    std::vector<std::string> comm_row = {std::to_string(record_bytes),
                                         std::to_string(m)};
    std::vector<std::string> time_row = comm_row;
    for (AlgorithmKind a : algos) {
      Measurement meas = Run(ds, a, opt, nullptr);
      comm_row.push_back(FmtBytes(meas.comm_bytes));
      time_row.push_back(FmtSeconds(meas.seconds));
    }
    comm.AddRow(comm_row);
    time.AddRow(time_row);
  }
  comm.Print();
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
