// Figure 16: running time vs available network bandwidth B. Communication
// volumes are unaffected; Send-V (shuffle-bound) speeds up almost linearly
// with B while the others barely move.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 16: running time, vary bandwidth B",
                    "paper: B = 10%..100% of the 100Mbps switch", d);

  ZipfDataset ds(d.ZipfOptions());
  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  std::vector<std::string> cols = {"B(%)"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  Table time("running time (seconds)", cols);

  for (double b : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    BuildOptions opt = d.Build();
    opt.cost_model.bandwidth_fraction = b;
    std::vector<std::string> row = {std::to_string(static_cast<int>(b * 100))};
    for (AlgorithmKind a : algos) {
      row.push_back(FmtSeconds(Run(ds, a, opt, nullptr).seconds));
    }
    time.AddRow(row);
  }
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
