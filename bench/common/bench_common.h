#ifndef WAVEMR_BENCH_COMMON_BENCH_COMMON_H_
#define WAVEMR_BENCH_COMMON_BENCH_COMMON_H_

#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/frequency.h"
#include "histogram/builder.h"

namespace wavemr {
namespace bench {

/// Scaled-down defaults preserving the paper's ratios (DESIGN.md section 1).
/// Paper defaults: n = 13.4e9 (50 GB), u = 2^29, m = 200 (256 MB splits),
/// k = 30, eps = 1e-4 (sample = 0.75% of n), B = 50%, alpha = 1.1.
/// Scaled:         n = 2^20,            u = 2^16, m = 64,
///                 k = 30, eps = 1e-2 (sample = 1% of n),   B = 50%.
/// WAVEMR_SCALE=large multiplies n, u, m by 4 for a closer look.
struct BenchDefaults {
  uint64_t n = uint64_t{1} << 22;
  uint64_t u = uint64_t{1} << 17;
  uint64_t m = 64;
  double alpha = 1.1;
  size_t k = 30;
  /// Paper: eps = 1e-4 puts the sample at 0.75% of n; 0.0056 reproduces that
  /// fraction at the scaled n (1/eps^2 = 31.9k of 4.2M records).
  double epsilon = 0.0056;
  double bandwidth = 0.5;
  uint64_t seed = 42;
  uint32_t record_bytes = 4;
  /// Scaled analogue of the paper's 20KB*log2(u) GCS budget (the constant
  /// shrinks with the dataset so the sketch remains smaller than the data;
  /// see EXPERIMENTS.md on what does and does not scale).
  uint64_t gcs_bytes_per_log_u = 2048;

  /// The paper's default record count; cost-model time is scaled by
  /// paper_n / n so simulated seconds are paper-scale (CostModel::time_scale).
  double paper_n = 13.4e9;

  static BenchDefaults FromEnv();

  ZipfDatasetOptions ZipfOptions() const;
  BuildOptions Build() const;
};

/// One algorithm execution, reduced to the three quantities the paper plots.
struct Measurement {
  uint64_t comm_bytes = 0;
  double seconds = 0.0;
  double sse = 0.0;
};

/// Runs `kind` over `ds`; computes SSE against `truth` when provided.
Measurement Run(const Dataset& ds, AlgorithmKind kind, const BuildOptions& opt,
                const std::vector<WCoeff>* truth);

/// Aligned fixed-width table printer (one per sub-figure).
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers: scientific for the paper's log-scale axes.
std::string FmtBytes(uint64_t bytes);
std::string FmtSeconds(double s);
std::string FmtSci(double v);

/// Prints the figure banner: what the paper plots, and the scaled-vs-paper
/// parameter mapping.
void PrintFigureHeader(const std::string& figure, const std::string& paper_setup,
                       const BenchDefaults& d);

}  // namespace bench
}  // namespace wavemr

#endif  // WAVEMR_BENCH_COMMON_BENCH_COMMON_H_
