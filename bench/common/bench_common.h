#ifndef WAVEMR_BENCH_COMMON_BENCH_COMMON_H_
#define WAVEMR_BENCH_COMMON_BENCH_COMMON_H_

#include <optional>
#include <string>
#include <vector>

#include "core/cpu_features.h"
#include "data/dataset.h"
#include "data/frequency.h"
#include "histogram/builder.h"

namespace wavemr {
namespace bench {

/// Scaled-down defaults preserving the paper's ratios (DESIGN.md section 1).
/// Paper defaults: n = 13.4e9 (50 GB), u = 2^29, m = 200 (256 MB splits),
/// k = 30, eps = 1e-4 (sample = 0.75% of n), B = 50%, alpha = 1.1.
/// Scaled:         n = 2^20,            u = 2^16, m = 64,
///                 k = 30, eps = 1e-2 (sample = 1% of n),   B = 50%.
/// WAVEMR_SCALE=large multiplies n, u, m by 4 for a closer look.
struct BenchDefaults {
  uint64_t n = uint64_t{1} << 22;
  uint64_t u = uint64_t{1} << 17;
  uint64_t m = 64;
  double alpha = 1.1;
  size_t k = 30;
  /// Paper: eps = 1e-4 puts the sample at 0.75% of n; 0.0056 reproduces that
  /// fraction at the scaled n (1/eps^2 = 31.9k of 4.2M records).
  double epsilon = 0.0056;
  double bandwidth = 0.5;
  uint64_t seed = 42;
  uint32_t record_bytes = 4;
  /// Map-task worker threads (BuildOptions::threads): 1 = serial, 0 = all
  /// hardware threads. Overridden by WAVEMR_THREADS; results are identical
  /// for any value, only wall-clock moves.
  int threads = 1;
  /// Scaled analogue of the paper's 20KB*log2(u) GCS budget (the constant
  /// shrinks with the dataset so the sketch remains smaller than the data;
  /// see EXPERIMENTS.md on what does and does not scale).
  uint64_t gcs_bytes_per_log_u = 2048;

  /// The paper's default record count; cost-model time is scaled by
  /// paper_n / n so simulated seconds are paper-scale (CostModel::time_scale).
  double paper_n = 13.4e9;

  static BenchDefaults FromEnv();

  ZipfDatasetOptions ZipfOptions() const;
  BuildOptions Build() const;
};

/// One algorithm execution, reduced to the three quantities the paper plots
/// plus the real wall-clock the perf CI tracks.
struct Measurement {
  uint64_t comm_bytes = 0;
  double seconds = 0.0;      // simulated, paper-scale
  double sse = 0.0;
  double wall_ms = 0.0;      // real wall-clock of the whole build
  double map_wall_ms = 0.0;  // real wall-clock of the map phases only
  /// Real wall-clock of the sorted-merge reduce deliveries (all rounds).
  double reduce_wall_ms = 0.0;
  /// Worst per-round max/min planned pairs across the equi-depth reduce
  /// ranges (0 when no partitioned sorted round ran); the load-balance
  /// figure the skew-reduce CI record gates.
  double reduce_range_spread = 0.0;
  uint64_t shuffle_bytes = 0;
  uint64_t spill_files = 0;  // external shuffle spill files written
  /// Spill writes that exhausted retries and kept their run resident
  /// (recovery telemetry; 0 on a healthy disk, results unaffected).
  uint64_t spill_fallbacks = 0;
  uint64_t map_records = 0;  // records read by all map phases

  /// Map-side throughput in records/sec (0 when nothing was timed).
  double MapRecordsPerSec() const {
    return map_wall_ms > 0.0
               ? static_cast<double>(map_records) / (map_wall_ms * 1e-3)
               : 0.0;
  }
};

/// Runs `kind` over `ds`; computes SSE against `truth` when provided.
Measurement Run(const Dataset& ds, AlgorithmKind kind, const BuildOptions& opt,
                const std::vector<WCoeff>* truth);

/// One row of a BENCH_<name>.json perf report.
struct BenchRecord {
  std::string algorithm;
  uint64_t n = 0;
  uint64_t u = 0;
  uint64_t m = 0;
  size_t k = 0;
  int threads = 1;
  /// Equi-depth reduce partitions the row ran with (skew-reduce rows).
  int reduce_tasks = 0;
  double wall_ms = 0.0;
  double map_wall_ms = 0.0;
  double map_records_per_sec = 0.0;  // map-side throughput at `threads`
  /// Skew rows: reduce delivery wall-clock and worst per-round max/min
  /// planned pairs per range. In the checked-in baseline, max_spread is the
  /// ceiling the spread is gated against.
  double reduce_wall_ms = 0.0;
  double reduce_range_spread = 0.0;
  double max_spread = 0.0;
  double simulated_s = 0.0;
  uint64_t shuffle_bytes = 0;
  /// Kernel rows only (algorithm == "shuffle-merge-kernel"): measured
  /// merged pairs/sec, and -- in the checked-in baseline -- the required
  /// speedup of the columnar path over the pair-vector reference.
  double pairs_per_sec = 0.0;
  double min_speedup = 0.0;
  /// GCS update kernel rows only (algorithm == "gcs-update-kernel"):
  /// hashed items/sec through the best SIMD tier (scalar when the host has
  /// no vector tier). In the checked-in baseline, items_per_sec is the CI
  /// floor and min_speedup the required SIMD-vs-scalar ratio (not gated on
  /// scalar-only hosts).
  double items_per_sec = 0.0;
  /// Serve rows only (algorithm == "serve-load"): closed-loop query
  /// throughput against a running wavemr_serve, and its latency tail. In
  /// the checked-in baseline, queries_per_sec is the CI floor.
  double queries_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Recovery telemetry: spill writes that fell back to resident runs
  /// during the row (omitted from the JSON when 0, the healthy case).
  uint64_t spill_fallbacks = 0;
};

/// Collects BenchRecords and writes them as a JSON array to
/// BENCH_<name>.json (or an explicit path), the schema CI artifacts and the
/// perf-smoke baseline use. Records carry real wall-clock, so files are
/// machine-specific; they are build outputs, not checked-in data.
class BenchJsonReporter {
 public:
  /// Report written to "BENCH_<name>.json" in the working directory.
  explicit BenchJsonReporter(std::string name);

  void Add(BenchRecord record);

  /// Convenience: fold a Measurement + its setup into a record.
  void Add(const std::string& algorithm, const BenchDefaults& d, int threads,
           const Measurement& m);

  const std::vector<BenchRecord>& records() const { return records_; }

  /// Writes the JSON file; returns false (and prints to stderr) on IO error.
  bool WriteFile() const;
  /// As WriteFile, but to an explicit path instead of BENCH_<name>.json.
  bool WriteFileTo(const std::string& path) const;

 private:
  std::string name_;
  std::vector<BenchRecord> records_;
};

/// Parses a BENCH_*.json file written by BenchJsonReporter (or hand-written
/// as a baseline). Unknown fields are ignored; missing numbers default to 0.
bool ReadBenchJson(const std::string& path, std::vector<BenchRecord>* out);

/// The shuffle-merge kernel: the driver-side work of a sorted shuffle over
/// R per-task runs, in both engine generations. The pair-vector reference
/// concatenates the runs into one std::vector<std::pair> and stable_sorts
/// it (the pre-columnar engine's global driver sort); the columnar path
/// sorts each packed run (the work the engine now does on map worker
/// threads) and drains a loser-tree merge. Checksums fold (key, value) in
/// delivery order, so equal checksums prove the two paths produce the same
/// stream.
struct ShuffleKernelOptions {
  uint64_t total_pairs = uint64_t{1} << 22;
  size_t num_runs = 64;
  uint64_t key_domain = uint64_t{1} << 17;
  uint64_t seed = 42;
  /// Give each run its own contiguous slice of the key domain instead of
  /// uniform keys over all of it -- the workload where one run keeps winning
  /// the merge and block-wise delivery collapses the tree walks.
  bool disjoint_runs = false;
};

struct ShuffleKernelResult {
  double pair_vector_pairs_per_sec = 0.0;
  double columnar_pairs_per_sec = 0.0;
  uint64_t pair_vector_checksum = 0;
  uint64_t columnar_checksum = 0;
  /// Merge-only (pre-sorted runs, no run sort in the timed region) rates of
  /// the two RunMerger delivery modes: the default adaptive block-wise drain
  /// (galloped to the runner-up bound after a winner streak) vs the per-pair
  /// replay reference. Their checksums must match; blockwise/per_pair is the
  /// "blockwise-merge" CI floor -- parity by design on the uniform-key
  /// kernel (the adaptive path degrades to the per-pair loop there), gated
  /// at 0.95 in ci_baseline.json to absorb timer noise.
  double merge_blockwise_pairs_per_sec = 0.0;
  double merge_per_pair_pairs_per_sec = 0.0;
  uint64_t merge_blockwise_checksum = 0;
  uint64_t merge_per_pair_checksum = 0;

  double Speedup() const {
    return pair_vector_pairs_per_sec > 0.0
               ? columnar_pairs_per_sec / pair_vector_pairs_per_sec
               : 0.0;
  }
  double BlockwiseSpeedup() const {
    return merge_per_pair_pairs_per_sec > 0.0
               ? merge_blockwise_pairs_per_sec / merge_per_pair_pairs_per_sec
               : 0.0;
  }
};

ShuffleKernelResult RunShuffleMergeKernel(const ShuffleKernelOptions& opt);

/// The external-merge kernel: the same k-way sorted merge once over fully
/// resident runs and once over fully file-backed runs (every run spilled to
/// a temp file in the columnar framing, streamed back through
/// FileRunCursor). Checksums fold (key, value) in delivery order -- equal
/// checksums prove the external path reproduces the resident stream bit for
/// bit; the rate ratio is what a spill actually costs.
struct ExternalMergeKernelOptions {
  uint64_t total_pairs = uint64_t{1} << 22;
  size_t num_runs = 64;
  uint64_t key_domain = uint64_t{1} << 17;
  uint64_t seed = 42;
};

struct ExternalMergeKernelResult {
  double resident_pairs_per_sec = 0.0;
  double external_pairs_per_sec = 0.0;  // includes spill-file read-back
  uint64_t resident_checksum = 0;
  uint64_t external_checksum = 0;
  /// Same file-backed merge on an AsyncIoBackend with read-ahead: cursors
  /// prefetch + CRC-verify upcoming checksum blocks on I/O workers while the
  /// loser tree drains the current ones. prefetch_checksum must equal
  /// external_checksum (bit-identity); PrefetchSpeedup() is what the
  /// overlap buys, gated >= 1.0 in ci_baseline.json on multi-CPU hosts (a
  /// 1-CPU host has no second core to overlap onto, so CI skips the ratio
  /// there and gates the checksum only).
  double prefetch_pairs_per_sec = 0.0;
  uint64_t prefetch_checksum = 0;

  double PrefetchSpeedup() const {
    return external_pairs_per_sec > 0.0
               ? prefetch_pairs_per_sec / external_pairs_per_sec
               : 0.0;
  }
};

ExternalMergeKernelResult RunExternalMergeKernel(
    const ExternalMergeKernelOptions& opt);

/// The GCS update kernel: Send-Sketch's map-side unit of cost, isolated.
/// Two timed comparisons with checksummed outputs:
///  - hash kernel: per-item packed (sign, sub-bucket) resolution for one
///    repetition (Hash2 + Hash4 over GF(2^61-1) plus the sub-bucket
///    reduction), scalar table vs the best runtime tier (core/simd.h), 4
///    lanes per call in both so the ratio isolates the vector math;
///  - full UpdateBatch over sorted items under a forced scalar tier vs the
///    best tier (memo, group caching, and counter writes included -- the
///    end-to-end map effect).
/// Equal checksums prove the tiers computed identical hashes / tables.
struct GcsUpdateKernelOptions {
  uint64_t total_items = uint64_t{1} << 21;
  uint64_t domain = uint64_t{1} << 17;
  size_t reps = 5;
  size_t buckets = 64;
  size_t subbuckets = 8;
  uint32_t group_shift = 3;
  uint64_t seed = 42;
};

struct GcsUpdateKernelResult {
  SimdTier tier = SimdTier::kScalar;  ///< best tier actually measured
  double scalar_hash_items_per_sec = 0.0;
  double simd_hash_items_per_sec = 0.0;
  uint64_t scalar_hash_checksum = 0;
  uint64_t simd_hash_checksum = 0;
  double scalar_update_items_per_sec = 0.0;
  double simd_update_items_per_sec = 0.0;
  uint64_t scalar_update_checksum = 0;
  uint64_t simd_update_checksum = 0;

  double HashSpeedup() const {
    return scalar_hash_items_per_sec > 0.0
               ? simd_hash_items_per_sec / scalar_hash_items_per_sec
               : 0.0;
  }
  double UpdateSpeedup() const {
    return scalar_update_items_per_sec > 0.0
               ? simd_update_items_per_sec / scalar_update_items_per_sec
               : 0.0;
  }
};

GcsUpdateKernelResult RunGcsUpdateKernel(const GcsUpdateKernelOptions& opt);

/// Aligned fixed-width table printer (one per sub-figure).
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers: scientific for the paper's log-scale axes.
std::string FmtBytes(uint64_t bytes);
std::string FmtSeconds(double s);
std::string FmtSci(double v);

/// Prints the figure banner: what the paper plots, and the scaled-vs-paper
/// parameter mapping.
void PrintFigureHeader(const std::string& figure, const std::string& paper_setup,
                       const BenchDefaults& d);

}  // namespace bench
}  // namespace wavemr

#endif  // WAVEMR_BENCH_COMMON_BENCH_COMMON_H_
