#include "common/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wavemr {
namespace bench {

BenchDefaults BenchDefaults::FromEnv() {
  BenchDefaults d;
  const char* scale = std::getenv("WAVEMR_SCALE");
  if (scale != nullptr && std::strcmp(scale, "large") == 0) {
    d.n <<= 2;
    d.u <<= 2;
    d.m <<= 2;
    d.epsilon /= 2.0;  // keep sample fraction 1/(eps^2 n) constant
  }
  return d;
}

ZipfDatasetOptions BenchDefaults::ZipfOptions() const {
  ZipfDatasetOptions opt;
  opt.num_records = n;
  opt.domain_size = u;
  opt.alpha = alpha;
  opt.num_splits = m;
  opt.record_bytes = record_bytes;
  opt.seed = seed;
  return opt;
}

BuildOptions BenchDefaults::Build() const {
  BuildOptions opt;
  opt.k = k;
  opt.epsilon = epsilon;
  opt.seed = seed;
  opt.cost_model.bandwidth_fraction = bandwidth;
  opt.cost_model.time_scale = paper_n / static_cast<double>(n);
  opt.gcs.total_bytes = gcs_bytes_per_log_u * Log2Floor(u);
  return opt;
}

Measurement Run(const Dataset& ds, AlgorithmKind kind, const BuildOptions& opt,
                const std::vector<WCoeff>* truth) {
  auto result = BuildWaveletHistogram(ds, kind, opt);
  WAVEMR_CHECK(result.ok()) << AlgorithmName(kind) << ": "
                            << result.status().ToString();
  Measurement m;
  m.comm_bytes = result->stats.TotalCommBytes();
  m.seconds = result->stats.TotalSeconds();
  if (truth != nullptr) {
    m.sse = SseAgainstTrueCoefficients(result->histogram, *truth);
  }
  return m;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::Print() const {
  std::printf("\n%s\n", title_.c_str());
  std::vector<size_t> width(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf("%s%-*s", c == 0 ? "  " : "  | ", static_cast<int>(width[c]),
                  cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  size_t total = 2;
  for (size_t c = 0; c < columns_.size(); ++c) total += width[c] + 4;
  std::printf("  %s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FmtBytes(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", static_cast<double>(bytes));
  return buf;
}

std::string FmtSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", s);
  return buf;
}

std::string FmtSci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

void PrintFigureHeader(const std::string& figure, const std::string& paper_setup,
                       const BenchDefaults& d) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper setup : %s\n", paper_setup.c_str());
  std::printf(
      "Scaled setup: n=%llu  u=2^%u  m=%llu  alpha=%.2f  k=%zu  eps=%.4g  B=%.0f%%\n",
      static_cast<unsigned long long>(d.n), Log2Floor(d.u),
      static_cast<unsigned long long>(d.m), d.alpha, d.k, d.epsilon,
      d.bandwidth * 100.0);
  std::printf(
      "Ratios preserved from the paper: sample fraction 1/(eps^2 n), data\n"
      "density n/u, split count m; absolute sizes are scaled down so the\n"
      "whole suite runs on one core (see DESIGN.md / EXPERIMENTS.md).\n"
      "Communication is measured in real bytes at the scaled size; running\n"
      "time is simulated at PAPER scale (work time x n_paper/n), so seconds\n"
      "are directly comparable to the paper's time figures.\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace wavemr
