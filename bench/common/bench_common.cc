#include "common/bench_common.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/hash.h"
#include "core/rng.h"
#include "core/simd.h"
#include "mapreduce/shuffle.h"
#include "serve/estimator.h"
#include "serve/snapshot.h"
#include "sketch/group_count_sketch.h"

namespace wavemr {
namespace bench {

BenchDefaults BenchDefaults::FromEnv() {
  BenchDefaults d;
  const char* scale = std::getenv("WAVEMR_SCALE");
  if (scale != nullptr && std::strcmp(scale, "large") == 0) {
    d.n <<= 2;
    d.u <<= 2;
    d.m <<= 2;
    d.epsilon /= 2.0;  // keep sample fraction 1/(eps^2 n) constant
  }
  const char* threads = std::getenv("WAVEMR_THREADS");
  if (threads != nullptr && *threads != '\0') {
    int t = std::atoi(threads);
    if (t >= 0) d.threads = t;
  }
  return d;
}

ZipfDatasetOptions BenchDefaults::ZipfOptions() const {
  ZipfDatasetOptions opt;
  opt.num_records = n;
  opt.domain_size = u;
  opt.alpha = alpha;
  opt.num_splits = m;
  opt.record_bytes = record_bytes;
  opt.seed = seed;
  return opt;
}

BuildOptions BenchDefaults::Build() const {
  BuildOptions opt;
  opt.k = k;
  opt.epsilon = epsilon;
  opt.seed = seed;
  opt.cost_model.bandwidth_fraction = bandwidth;
  opt.cost_model.time_scale = paper_n / static_cast<double>(n);
  opt.gcs.total_bytes = gcs_bytes_per_log_u * Log2Floor(u);
  opt.threads = threads;
  return opt;
}

Measurement Run(const Dataset& ds, AlgorithmKind kind, const BuildOptions& opt,
                const std::vector<WCoeff>* truth) {
  const auto start = std::chrono::steady_clock::now();
  auto result = BuildWaveletHistogram(ds, kind, opt);
  const auto end = std::chrono::steady_clock::now();
  WAVEMR_CHECK(result.ok()) << AlgorithmName(kind) << ": "
                            << result.status().ToString();
  Measurement m;
  m.comm_bytes = result->stats.TotalCommBytes();
  m.seconds = result->stats.TotalSeconds();
  m.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  m.map_wall_ms = result->stats.TotalMapWallMs();
  uint64_t shuffle = 0;
  for (const RoundStats& r : result->stats.rounds) {
    shuffle += r.shuffle_bytes;
    m.reduce_wall_ms += r.reduce_wall_ms;
    m.reduce_range_spread = std::max(m.reduce_range_spread, r.ReduceRangeSpread());
    m.spill_files += r.spill_files;
    m.spill_fallbacks += r.spill_fallbacks;
  }
  m.shuffle_bytes = shuffle;
  m.map_records = result->stats.counters.Get("map_records_read");
  if (truth != nullptr) {
    m.sse = SseAgainstTrueCoefficients(result->ToSnapshot(), *truth);
  }
  return m;
}

// ----------------------------------------------------- shuffle-merge kernel

namespace {

uint64_t FoldPair(uint64_t checksum, uint64_t key, uint64_t value) {
  return checksum * 1315423911ull + key * 31 + value;
}

}  // namespace

ShuffleKernelResult RunShuffleMergeKernel(const ShuffleKernelOptions& opt) {
  using Clock = std::chrono::steady_clock;
  using Run = ShuffleRun<uint64_t, uint64_t>;

  // Pristine per-task runs: uniform keys over the domain, globally unique
  // sequence values so any ordering deviation between the two paths flips
  // the checksum.
  Rng rng(opt.seed);
  std::vector<Run> pristine(std::max<size_t>(opt.num_runs, 1));
  const uint64_t per_run = opt.total_pairs / pristine.size();
  const uint64_t slice = opt.key_domain / pristine.size();
  uint64_t sequence = 0;
  for (size_t r = 0; r < pristine.size(); ++r) {
    Run& run = pristine[r];
    run.Reserve(per_run);
    const uint64_t base = opt.disjoint_runs ? r * slice : 0;
    const uint64_t width = opt.disjoint_runs ? std::max<uint64_t>(slice, 1)
                                             : opt.key_domain;
    for (uint64_t i = 0; i < per_run; ++i) {
      run.Append(base + rng.NextBounded(width), sequence++);
    }
  }
  const uint64_t total = sequence;

  ShuffleKernelResult result;

  {
    // Reference: the pre-columnar driver path. Concatenate every run into
    // one pair vector (the old engine materialized exactly this way) and
    // stable_sort it on the driver.
    const auto t0 = Clock::now();
    std::vector<std::pair<uint64_t, uint64_t>> all;
    all.reserve(total);
    for (const Run& run : pristine) {
      for (size_t i = 0; i < run.size(); ++i) {
        all.emplace_back(run.keys[i], run.values[i]);
      }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    uint64_t checksum = 0;
    for (const auto& [k, v] : all) checksum = FoldPair(checksum, k, v);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    result.pair_vector_pairs_per_sec = static_cast<double>(total) / s;
    result.pair_vector_checksum = checksum;
  }

  {
    // Columnar path: radix-sort each packed run, drain the loser tree. The
    // run sort is timed (it is real work, even though the engine runs it on
    // parallel map workers) but the pristine->working copy is not -- the
    // engine sorts task-owned runs in place, whereas the reference's
    // concatenation is exactly the old driver's materialization step.
    std::vector<Run> runs = pristine;
    const auto t0 = Clock::now();
    for (Run& run : runs) run.SortByKey();
    RunMerger<uint64_t, uint64_t> merger(runs);
    uint64_t checksum = 0;
    merger.Drain([&checksum](const uint64_t& k, const uint64_t& v) {
      checksum = FoldPair(checksum, k, v);
    });
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    result.columnar_pairs_per_sec = static_cast<double>(total) / s;
    result.columnar_checksum = checksum;
  }

  {
    // Merge-only comparison of the two delivery modes over identical
    // pre-sorted runs (the sort is hoisted out of both timed regions so the
    // ratio isolates the replay strategy).
    std::vector<Run> runs = pristine;
    for (Run& run : runs) run.SortByKey();
    {
      const auto t0 = Clock::now();
      RunMerger<uint64_t, uint64_t> merger(runs);
      uint64_t checksum = 0;
      merger.DrainPerPair([&checksum](const uint64_t& k, const uint64_t& v) {
        checksum = FoldPair(checksum, k, v);
      });
      const double s = std::chrono::duration<double>(Clock::now() - t0).count();
      result.merge_per_pair_pairs_per_sec = static_cast<double>(total) / s;
      result.merge_per_pair_checksum = checksum;
    }
    {
      const auto t0 = Clock::now();
      RunMerger<uint64_t, uint64_t> merger(runs);
      uint64_t checksum = 0;
      merger.Drain([&checksum](const uint64_t& k, const uint64_t& v) {
        checksum = FoldPair(checksum, k, v);
      });
      const double s = std::chrono::duration<double>(Clock::now() - t0).count();
      result.merge_blockwise_pairs_per_sec = static_cast<double>(total) / s;
      result.merge_blockwise_checksum = checksum;
    }
  }

  return result;
}

ExternalMergeKernelResult RunExternalMergeKernel(
    const ExternalMergeKernelOptions& opt) {
  using Clock = std::chrono::steady_clock;
  using Run = ShuffleRun<uint64_t, uint64_t>;

  Rng rng(opt.seed);
  std::vector<Run> runs(std::max<size_t>(opt.num_runs, 1));
  const uint64_t per_run = opt.total_pairs / runs.size();
  uint64_t sequence = 0;
  for (Run& run : runs) {
    run.Reserve(per_run);
    for (uint64_t i = 0; i < per_run; ++i) {
      run.Append(rng.NextBounded(opt.key_domain), sequence++);
    }
    run.SortByKey();
  }
  const uint64_t total = sequence;

  ExternalMergeKernelResult result;

  {
    // Resident reference: the all-in-memory loser-tree merge.
    const auto t0 = Clock::now();
    RunMerger<uint64_t, uint64_t> merger(runs);
    uint64_t checksum = 0;
    merger.Drain([&checksum](const uint64_t& k, const uint64_t& v) {
      checksum = FoldPair(checksum, k, v);
    });
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    result.resident_pairs_per_sec = static_cast<double>(total) / s;
    result.resident_checksum = checksum;
  }

  {
    // External path: every run spilled to a temp file (writes untimed --
    // the engine pays them on the map-absorb side), then merged through
    // file-backed cursors. The timed region is the reduce-side work: open,
    // block-read, k-way merge. Timed twice over the same files: inline
    // reads (the sync reference) and prefetched reads on an AsyncIoBackend
    // (the --spill-io=async merge read-ahead).
    SpillDir dir;
    std::vector<SpillFileInfo> infos(runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      SpillFileInfo& info = infos[r];
      info.path = dir.NextFilePath("bench-run");
      info.num_pairs = runs[r].size();
      if (!runs[r].empty()) {
        info.min_key = runs[r].keys.front();
        info.max_key = runs[r].keys.back();
      }
      const SpillWriteResult w = WriteSpillFile<uint64_t, uint64_t>(
          info.path, runs[r].keys.data(), runs[r].values.data(), runs[r].size());
      WAVEMR_CHECK(w.io.ok()) << w.io.ToString();
      info.file_bytes = w.file_bytes;
    }
    const auto timed_merge = [&infos, total](IoBackend* io, double* rate,
                                             uint64_t* out_checksum) {
      const auto t0 = Clock::now();
      std::vector<std::unique_ptr<FileRunCursor<uint64_t, uint64_t>>> cursors;
      std::vector<MergeInput<uint64_t, uint64_t>> inputs;
      cursors.reserve(infos.size());
      inputs.reserve(infos.size());
      for (size_t r = 0; r < infos.size(); ++r) {
        cursors.push_back(std::make_unique<FileRunCursor<uint64_t, uint64_t>>(
            infos[r], 0, infos[r].num_pairs,
            FileRunCursor<uint64_t, uint64_t>::kDefaultBlockPairs,
            io != nullptr ? io->options().retry : IoRetryPolicy(), io));
        inputs.push_back(MergeInput<uint64_t, uint64_t>{
            nullptr, nullptr, 0, cursors.back().get(),
            static_cast<uint32_t>(r)});
      }
      RunMerger<uint64_t, uint64_t> merger(inputs);
      uint64_t checksum = 0;
      merger.Drain([&checksum](const uint64_t& k, const uint64_t& v) {
        checksum = FoldPair(checksum, k, v);
      });
      const double s = std::chrono::duration<double>(Clock::now() - t0).count();
      *rate = static_cast<double>(total) / s;
      *out_checksum = checksum;
    };
    timed_merge(nullptr, &result.external_pairs_per_sec,
                &result.external_checksum);
    IoOptions async_options;
    async_options.backend = IoBackendKind::kAsync;
    async_options.prefetch_depth = 2;  // double-buffer + one in the arena
    AsyncIoBackend async_io(async_options);
    timed_merge(&async_io, &result.prefetch_pairs_per_sec,
                &result.prefetch_checksum);
  }

  return result;
}

// -------------------------------------------------------- GCS update kernel

GcsUpdateKernelResult RunGcsUpdateKernel(const GcsUpdateKernelOptions& opt) {
  using Clock = std::chrono::steady_clock;
  GcsUpdateKernelResult result;
  const SimdKernels& scalar_k = SimdKernelsFor(SimdTier::kScalar);
  const SimdKernels& best_k = SimdKernelsFor(BestSimdTier());
  result.tier = best_k.tier;

  // One repetition's hash coefficients, drawn the way the sketch draws them.
  Rng coeff_rng(Mix64(opt.seed ^ 0x9e3779b97f4a7c15ull));
  uint64_t ci[2], cs[4];
  for (uint64_t& c : ci) c = coeff_rng.NextBounded(PolyHash::kPrime);
  for (uint64_t& c : cs) c = coeff_rng.NextBounded(PolyHash::kPrime);

  std::vector<uint64_t> items(opt.total_items);
  Rng rng(opt.seed);
  for (uint64_t& x : items) x = rng.NextBounded(opt.domain);

  const bool pow2 = (opt.subbuckets & (opt.subbuckets - 1)) == 0;
  const uint64_t sub_mask = pow2 ? opt.subbuckets - 1 : 0;

  // Hash kernel: packed (sign, sub-bucket) resolution through the
  // block-granularity kernel -- the form the update loop actually calls --
  // in chunks large enough that dispatch overhead vanishes and the ratio
  // isolates the vector hash math.
  auto run_hash = [&](const SimdKernels& k, double* rate, uint64_t* sum) {
    // Cache-resident working set, repeated until total_items hashes have
    // run: the gate ratio should compare the hash kernels, not the host's
    // memory bandwidth -- streaming a multi-MB item array caps both tiers
    // at the same number on bandwidth-starved machines. The block call is
    // the form the update loop uses, so dispatch cost is amortized the same
    // way. The checksum folds the (deterministic) final pass's slots.
    const size_t ws = std::min(items.size(), size_t{1} << 14);  // 128 KiB
    const size_t passes = std::max<size_t>(1, items.size() / ws);
    std::vector<uint32_t> slots(ws);
    const auto t0 = Clock::now();
    for (size_t p = 0; p < passes; ++p) {
      k.gcs_sub_sign_block(ci, cs, items.data(), ws, opt.subbuckets, sub_mask,
                           slots.data());
    }
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    *rate = static_cast<double>(ws * passes) / s;
    uint64_t checksum = 0;
    for (size_t i = 0; i < ws; ++i) {
      checksum = FoldPair(checksum, i, slots[i]);
    }
    *sum = checksum;
  };
  run_hash(scalar_k, &result.scalar_hash_items_per_sec,
           &result.scalar_hash_checksum);
  run_hash(best_k, &result.simd_hash_items_per_sec,
           &result.simd_hash_checksum);

  // Full UpdateBatch over sorted items (Send-Sketch feeds wavelet order, so
  // consecutive items share groups): memo, group caching, and counter writes
  // included. The checksum folds every counter's bit pattern.
  std::vector<uint64_t> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> values(sorted.size());
  for (double& v : values) v = rng.NextDouble() - 0.5;
  auto run_update = [&](SimdTier tier, double* rate, uint64_t* sum) {
    OverrideSimdTierForTest(tier);
    GroupCountSketch sketch(opt.seed, opt.reps, opt.buckets, opt.subbuckets);
    const auto t0 = Clock::now();
    sketch.UpdateBatch(sorted.data(), values.data(), sorted.size(),
                       opt.group_shift);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    OverrideSimdTierForTest(ActiveSimdTier());
    uint64_t checksum = 0;
    for (size_t i = 0; i < sketch.NumCounters(); ++i) {
      checksum = FoldPair(checksum, i,
                          std::bit_cast<uint64_t>(sketch.CounterAt(i)));
    }
    *rate = static_cast<double>(sorted.size()) / s;
    *sum = checksum;
  };
  run_update(SimdTier::kScalar, &result.scalar_update_items_per_sec,
             &result.scalar_update_checksum);
  run_update(best_k.tier, &result.simd_update_items_per_sec,
             &result.simd_update_checksum);

  return result;
}

// ------------------------------------------------------------ JSON reporting

BenchJsonReporter::BenchJsonReporter(std::string name) : name_(std::move(name)) {}

void BenchJsonReporter::Add(BenchRecord record) {
  records_.push_back(std::move(record));
}

void BenchJsonReporter::Add(const std::string& algorithm, const BenchDefaults& d,
                            int threads, const Measurement& m) {
  BenchRecord r;
  r.algorithm = algorithm;
  r.n = d.n;
  r.u = d.u;
  r.m = d.m;
  r.k = d.k;
  r.threads = threads;
  r.wall_ms = m.wall_ms;
  r.map_wall_ms = m.map_wall_ms;
  r.map_records_per_sec = m.MapRecordsPerSec();
  r.simulated_s = m.seconds;
  r.shuffle_bytes = m.shuffle_bytes;
  records_.push_back(std::move(r));
}

bool BenchJsonReporter::WriteFile() const {
  return WriteFileTo("BENCH_" + name_ + ".json");
}

bool BenchJsonReporter::WriteFileTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    out << "  {\"algorithm\": \"" << r.algorithm << "\""
        << ", \"n\": " << r.n << ", \"u\": " << r.u << ", \"m\": " << r.m
        << ", \"k\": " << r.k << ", \"threads\": " << r.threads
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"map_wall_ms\": " << r.map_wall_ms
        << ", \"map_records_per_sec\": " << r.map_records_per_sec
        << ", \"simulated_s\": " << r.simulated_s
        << ", \"shuffle_bytes\": " << r.shuffle_bytes;
    // Kernel-only fields stay out of algorithm records so the schema of
    // existing baselines and artifacts is unchanged.
    if (r.reduce_tasks > 0) out << ", \"reduce_tasks\": " << r.reduce_tasks;
    if (r.reduce_wall_ms > 0.0)
      out << ", \"reduce_wall_ms\": " << r.reduce_wall_ms;
    if (r.reduce_range_spread > 0.0)
      out << ", \"reduce_range_spread\": " << r.reduce_range_spread;
    if (r.max_spread > 0.0) out << ", \"max_spread\": " << r.max_spread;
    if (r.pairs_per_sec > 0.0) out << ", \"pairs_per_sec\": " << r.pairs_per_sec;
    if (r.min_speedup > 0.0) out << ", \"min_speedup\": " << r.min_speedup;
    if (r.items_per_sec > 0.0) out << ", \"items_per_sec\": " << r.items_per_sec;
    if (r.queries_per_sec > 0.0)
      out << ", \"queries_per_sec\": " << r.queries_per_sec;
    if (r.p50_ms > 0.0) out << ", \"p50_ms\": " << r.p50_ms;
    if (r.p99_ms > 0.0) out << ", \"p99_ms\": " << r.p99_ms;
    if (r.spill_fallbacks > 0)
      out << ", \"spill_fallbacks\": " << r.spill_fallbacks;
    out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return static_cast<bool>(out);
}

namespace {

// Minimal parser for the flat records BenchJsonReporter writes: an array of
// one-level objects with string or numeric values. Good enough for reading
// back our own files and hand-maintained baselines; not a general JSON
// parser.
void ApplyField(BenchRecord* r, const std::string& key, const std::string& value,
                bool is_string) {
  if (is_string) {
    if (key == "algorithm") r->algorithm = value;
    return;
  }
  char* end = nullptr;
  double num = std::strtod(value.c_str(), &end);
  if (end == value.c_str()) return;
  if (key == "n") r->n = static_cast<uint64_t>(num);
  else if (key == "u") r->u = static_cast<uint64_t>(num);
  else if (key == "m") r->m = static_cast<uint64_t>(num);
  else if (key == "k") r->k = static_cast<size_t>(num);
  else if (key == "threads") r->threads = static_cast<int>(num);
  else if (key == "reduce_tasks") r->reduce_tasks = static_cast<int>(num);
  else if (key == "wall_ms") r->wall_ms = num;
  else if (key == "map_wall_ms") r->map_wall_ms = num;
  else if (key == "reduce_wall_ms") r->reduce_wall_ms = num;
  else if (key == "reduce_range_spread") r->reduce_range_spread = num;
  else if (key == "max_spread") r->max_spread = num;
  else if (key == "map_records_per_sec") r->map_records_per_sec = num;
  else if (key == "simulated_s") r->simulated_s = num;
  else if (key == "shuffle_bytes") r->shuffle_bytes = static_cast<uint64_t>(num);
  else if (key == "pairs_per_sec") r->pairs_per_sec = num;
  else if (key == "min_speedup") r->min_speedup = num;
  else if (key == "items_per_sec") r->items_per_sec = num;
  else if (key == "queries_per_sec") r->queries_per_sec = num;
  else if (key == "p50_ms") r->p50_ms = num;
  else if (key == "p99_ms") r->p99_ms = num;
  else if (key == "spill_fallbacks") r->spill_fallbacks = static_cast<uint64_t>(num);
}

}  // namespace

bool ReadBenchJson(const std::string& path, std::vector<BenchRecord>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  out->clear();
  size_t pos = 0;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    size_t close = text.find('}', pos);
    if (close == std::string::npos) break;
    std::string object = text.substr(pos + 1, close - pos - 1);
    BenchRecord record;
    size_t field = 0;
    while ((field = object.find('"', field)) != std::string::npos) {
      size_t key_end = object.find('"', field + 1);
      if (key_end == std::string::npos) break;
      std::string key = object.substr(field + 1, key_end - field - 1);
      size_t colon = object.find(':', key_end);
      if (colon == std::string::npos) break;
      size_t value_start = object.find_first_not_of(" \t\n", colon + 1);
      if (value_start == std::string::npos) break;
      if (object[value_start] == '"') {
        size_t value_end = object.find('"', value_start + 1);
        if (value_end == std::string::npos) break;
        ApplyField(&record, key,
                   object.substr(value_start + 1, value_end - value_start - 1),
                   /*is_string=*/true);
        field = value_end + 1;
      } else {
        size_t value_end = object.find_first_of(",}", value_start);
        if (value_end == std::string::npos) value_end = object.size();
        ApplyField(&record, key, object.substr(value_start, value_end - value_start),
                   /*is_string=*/false);
        field = value_end;
      }
    }
    out->push_back(std::move(record));
    pos = close + 1;
  }
  return true;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::Print() const {
  std::printf("\n%s\n", title_.c_str());
  std::vector<size_t> width(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf("%s%-*s", c == 0 ? "  " : "  | ", static_cast<int>(width[c]),
                  cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  size_t total = 2;
  for (size_t c = 0; c < columns_.size(); ++c) total += width[c] + 4;
  std::printf("  %s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FmtBytes(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", static_cast<double>(bytes));
  return buf;
}

std::string FmtSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", s);
  return buf;
}

std::string FmtSci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

void PrintFigureHeader(const std::string& figure, const std::string& paper_setup,
                       const BenchDefaults& d) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper setup : %s\n", paper_setup.c_str());
  std::printf(
      "Scaled setup: n=%llu  u=2^%u  m=%llu  alpha=%.2f  k=%zu  eps=%.4g  B=%.0f%%\n",
      static_cast<unsigned long long>(d.n), Log2Floor(d.u),
      static_cast<unsigned long long>(d.m), d.alpha, d.k, d.epsilon,
      d.bandwidth * 100.0);
  std::printf(
      "Ratios preserved from the paper: sample fraction 1/(eps^2 n), data\n"
      "density n/u, split count m; absolute sizes are scaled down so the\n"
      "whole suite runs on one core (see DESIGN.md / EXPERIMENTS.md).\n"
      "Communication is measured in real bytes at the scaled size; running\n"
      "time is simulated at PAPER scale (work time x n_paper/n), so seconds\n"
      "are directly comparable to the paper's time figures.\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace wavemr
