// Figure 9: communication (a) and running time (b) required by each
// approximation method to reach a given SSE. Sweeps each method's knob
// (eps for the samplers, sketch space for Send-Sketch) and reports
// (SSE, comm, time) triples; the paper's circled defaults are marked.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 9: cost vs achieved SSE (approximate methods)",
                    "each row is one knob setting of one method", d);

  ZipfDataset ds(d.ZipfOptions());
  std::vector<WCoeff> truth = TrueCoefficients(ds);

  Table table("cost vs SSE ('*' marks the default setting)",
              {"method", "knob", "SSE", "comm (bytes)", "time (s)"});

  for (double eps : {0.002, 0.005, 0.01, 0.02, 0.05}) {
    for (AlgorithmKind a : {AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS}) {
      BuildOptions opt = d.Build();
      opt.epsilon = eps;
      Measurement m = Run(ds, a, opt, &truth);
      std::string knob = "eps=" + FmtSci(eps) + (eps == d.epsilon ? " *" : "");
      table.AddRow({AlgorithmName(a), knob, FmtSci(m.sse), FmtBytes(m.comm_bytes),
                    FmtSeconds(m.seconds)});
    }
  }
  uint64_t default_bytes = d.Build().gcs.total_bytes;
  for (uint64_t bytes :
       {default_bytes / 4, default_bytes, default_bytes * 4, default_bytes * 16}) {
    BuildOptions opt = d.Build();
    opt.gcs.total_bytes = bytes;
    Measurement m = Run(ds, AlgorithmKind::kSendSketch, opt, &truth);
    std::string knob =
        "space=" + FmtBytes(bytes) + (bytes == default_bytes ? " *" : "");
    table.AddRow({"Send-Sketch", knob, FmtSci(m.sse), FmtBytes(m.comm_bytes),
                  FmtSeconds(m.seconds)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
