// Figure 5: communication (a) and end-to-end running time (b) of all
// algorithms as the synopsis size k varies from 10 to 50.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader(
      "Figure 5: cost analysis, vary k",
      "Zipf alpha=1.1, 50GB (n=13.4e9), u=2^29, m=200, eps=1e-4, B=50%", d);

  ZipfDataset ds(d.ZipfOptions());
  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};

  std::vector<std::string> cols = {"k"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  Table comm("(a) communication (bytes)", cols);
  Table time("(b) running time (seconds)", cols);

  for (size_t k : {10u, 20u, 30u, 40u, 50u}) {
    BuildOptions opt = d.Build();
    opt.k = k;
    std::vector<std::string> comm_row = {std::to_string(k)};
    std::vector<std::string> time_row = {std::to_string(k)};
    for (AlgorithmKind a : algos) {
      Measurement m = Run(ds, a, opt, nullptr);
      comm_row.push_back(FmtBytes(m.comm_bytes));
      time_row.push_back(FmtSeconds(m.seconds));
    }
    comm.AddRow(comm_row);
    time.AddRow(time_row);
  }
  comm.Print();
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
