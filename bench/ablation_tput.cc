// Ablation: the paper's two-sided TPUT vs (i) shipping every local
// coefficient ("send-all" = what Send-Coef does) and (ii) the unsound naive
// fix of running classic TPUT on |w| (which aggregates magnitudes instead of
// |sum| and can return wrong answers under cross-split cancellation).
#include <cmath>
#include <set>

#include "common/bench_common.h"
#include "exact/tput.h"
#include "wavelet/sparse.h"

namespace wavemr {
namespace bench {
namespace {

std::vector<LocalScores> LocalCoefficientTables(const Dataset& ds) {
  std::vector<LocalScores> nodes;
  for (uint64_t j = 0; j < ds.info().num_splits; ++j) {
    FrequencyMap freq = BuildSplitFrequencyMap(ds, j);
    LocalScores scores;
    for (const WCoeff& c :
         SparseHaar(ToSparseVector(freq), ds.info().domain_size)) {
      scores[c.index] = c.value;
    }
    nodes.push_back(std::move(scores));
  }
  return nodes;
}

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  d.n >>= 2;  // TPUT tables are materialized in memory; trim a little
  d.m >>= 1;
  PrintFigureHeader("Ablation: two-sided TPUT on local wavelet coefficients",
                    "not a paper figure; supports Section 3's design choice", d);

  ZipfDataset ds(d.ZipfOptions());
  std::vector<LocalScores> nodes = LocalCoefficientTables(ds);
  uint64_t send_all = 0;
  for (const LocalScores& n : nodes) send_all += n.size();

  Table table("messages to resolve exact top-k (lower is better)",
              {"k", "send-all", "two-sided TPUT", "reduction",
               "naive |w| TPUT: top-k recall"});
  for (size_t k : {10u, 30u, 50u}) {
    TputResult two_sided = TwoSidedTput(nodes, k);
    auto want = ExactTopKByMagnitude(nodes, k);

    // Naive baseline: classic TPUT over |w| finds argmax of sum_j |w_ij|,
    // which is NOT argmax |sum_j w_ij|. Measure its recall of the true set.
    std::vector<LocalScores> abs_nodes = nodes;
    for (LocalScores& n : abs_nodes) {
      for (auto& [item, score] : n) score = std::fabs(score);
    }
    TputResult naive = ClassicTput(abs_nodes, k);
    std::set<uint64_t> truth_set, naive_set;
    for (const auto& [item, score] : want) truth_set.insert(item);
    for (const auto& [item, score] : naive.topk) naive_set.insert(item);
    size_t hit = 0;
    for (uint64_t item : naive_set) hit += truth_set.count(item);

    char reduction[32], recall[32];
    std::snprintf(reduction, sizeof(reduction), "%.1fx",
                  static_cast<double>(send_all) /
                      static_cast<double>(two_sided.Messages()));
    std::snprintf(recall, sizeof(recall), "%zu/%zu", hit, want.size());
    table.AddRow({std::to_string(k), std::to_string(send_all),
                  std::to_string(two_sided.Messages()), reduction, recall});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
