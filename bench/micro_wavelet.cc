// Microbenchmarks of the wavelet core (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "wavelet/haar.h"
#include "wavelet/sparse.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

std::vector<double> Signal(uint64_t u) {
  Rng rng(7);
  std::vector<double> v(u);
  for (double& x : v) x = rng.NextDouble() * 100.0;
  return v;
}

void BM_ForwardHaar(benchmark::State& state) {
  std::vector<double> v = Signal(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ForwardHaar(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForwardHaar)->Range(1 << 10, 1 << 18);

void BM_InverseHaar(benchmark::State& state) {
  std::vector<double> w = ForwardHaar(Signal(static_cast<uint64_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(InverseHaar(w));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InverseHaar)->Range(1 << 10, 1 << 18);

void BM_SparseHaar(benchmark::State& state) {
  const uint64_t u = 1 << 20;
  Rng rng(3);
  SparseVector v;
  for (int64_t i = 0; i < state.range(0); ++i) {
    v.emplace_back(rng.NextBounded(u), 1.0 + rng.NextBounded(100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseHaar(v, u));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SparseHaar)->Range(1 << 8, 1 << 14);

void BM_TopKByMagnitude(benchmark::State& state) {
  Rng rng(5);
  std::vector<WCoeff> coeffs;
  for (int64_t i = 0; i < state.range(0); ++i) {
    coeffs.push_back({static_cast<uint64_t>(i), rng.NextDouble() - 0.5});
  }
  for (auto _ : state) {
    std::vector<WCoeff> copy = coeffs;
    benchmark::DoNotOptimize(TopKByMagnitude(std::move(copy), 30));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TopKByMagnitude)->Range(1 << 10, 1 << 16);

}  // namespace
}  // namespace wavemr

BENCHMARK_MAIN();
