// Figure 19: communication (a) and running time (b) vs achieved SSE on the
// WorldCup-style dataset (knob sweep per approximate method).
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 19: cost vs SSE on the WorldCup dataset",
                    "knob sweep per approximation method", d);

  WorldCupDatasetOptions wc;
  wc.num_records = d.n;
  wc.num_clients = d.u >> 6;
  wc.num_objects = uint64_t{1} << 6;
  wc.num_splits = d.m;
  wc.seed = d.seed;
  WorldCupDataset ds(wc);
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  const uint64_t gcs_default =
      d.gcs_bytes_per_log_u * Log2Floor(ds.info().domain_size);

  Table table("cost vs SSE ('*' marks the default setting)",
              {"method", "knob", "SSE", "comm (bytes)", "time (s)"});
  for (double eps : {0.002, 0.005, 0.01, 0.02, 0.05}) {
    for (AlgorithmKind a : {AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS}) {
      BuildOptions opt = d.Build();
      opt.epsilon = eps;
      Measurement m = Run(ds, a, opt, &truth);
      std::string knob = "eps=" + FmtSci(eps) + (eps == d.epsilon ? " *" : "");
      table.AddRow({AlgorithmName(a), knob, FmtSci(m.sse), FmtBytes(m.comm_bytes),
                    FmtSeconds(m.seconds)});
    }
  }
  for (uint64_t bytes : {gcs_default / 4, gcs_default, gcs_default * 4}) {
    BuildOptions opt = d.Build();
    opt.gcs.total_bytes = bytes;
    Measurement m = Run(ds, AlgorithmKind::kSendSketch, opt, &truth);
    std::string knob = "space=" + FmtBytes(bytes) + (bytes == gcs_default ? " *" : "");
    table.AddRow({"Send-Sketch", knob, FmtSci(m.sse), FmtBytes(m.comm_bytes),
                  FmtSeconds(m.seconds)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
