// Figure 13: communication (a) and running time (b) vs split size beta, with
// n fixed (so m shrinks as splits grow). Rows are labeled with the
// paper-equivalent split size.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 13: cost analysis, vary split size beta",
                    "paper: beta = 64..512MB, m = 800..100 on the 50GB set", d);

  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  std::vector<std::string> cols = {"beta(paper)", "m"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  Table comm("(a) communication (bytes)", cols);
  Table time("(b) running time (seconds)", cols);

  struct Point {
    const char* beta;
    uint64_t m;
  };
  // m scales inversely with beta; d.m corresponds to the paper's 256MB.
  for (Point p : {Point{"64MB", d.m * 4}, Point{"128MB", d.m * 2},
                  Point{"256MB", d.m}, Point{"512MB", d.m / 2}}) {
    ZipfDatasetOptions zopt = d.ZipfOptions();
    zopt.num_splits = p.m;
    ZipfDataset ds(zopt);
    BuildOptions opt = d.Build();
    std::vector<std::string> comm_row = {p.beta, std::to_string(p.m)};
    std::vector<std::string> time_row = comm_row;
    for (AlgorithmKind a : algos) {
      Measurement m = Run(ds, a, opt, nullptr);
      comm_row.push_back(FmtBytes(m.comm_bytes));
      time_row.push_back(FmtSeconds(m.seconds));
    }
    comm.AddRow(comm_row);
    time.AddRow(time_row);
  }
  comm.Print();
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
