// Figure 15: SSE vs Zipf skewness alpha; TwoLevel-S stays the best
// approximation at every skew level.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 15: SSE, vary skewness alpha",
                    "paper: alpha in {0.8, 1.1, 1.4}", d);

  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  std::vector<std::string> cols = {"alpha"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  cols.emplace_back("Ideal SSE");
  Table table("SSE", cols);

  for (double alpha : {0.8, 1.1, 1.4}) {
    ZipfDatasetOptions zopt = d.ZipfOptions();
    zopt.alpha = alpha;
    ZipfDataset ds(zopt);
    std::vector<WCoeff> truth = TrueCoefficients(ds);
    BuildOptions opt = d.Build();
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", alpha);
    std::vector<std::string> row = {label};
    for (AlgorithmKind a : algos) {
      row.push_back(FmtSci(Run(ds, a, opt, &truth).sse));
    }
    row.push_back(FmtSci(IdealSse(truth, opt.k)));
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
