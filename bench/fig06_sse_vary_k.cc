// Figure 6: SSE of the reconstructed frequency vector vs k, including the
// "Ideal SSE" line (the best possible k-term synopsis). Exact methods sit on
// the ideal line; TwoLevel-S tracks it; Improved-S drifts (bias).
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 6: SSE, vary k",
                    "Zipf defaults; Send-V/H-WTopk coincide with Ideal SSE", d);

  ZipfDataset ds(d.ZipfOptions());
  std::vector<WCoeff> truth = TrueCoefficients(ds);

  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  std::vector<std::string> cols = {"k"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  cols.emplace_back("Ideal SSE");
  Table table("SSE (sum of squared errors vs true frequency vector)", cols);

  for (size_t k : {10u, 20u, 30u, 40u, 50u}) {
    BuildOptions opt = d.Build();
    opt.k = k;
    std::vector<std::string> row = {std::to_string(k)};
    for (AlgorithmKind a : algos) {
      row.push_back(FmtSci(Run(ds, a, opt, &truth).sse));
    }
    row.push_back(FmtSci(IdealSse(truth, k)));
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
