// Figure 17: communication (a) and running time (b) on the WorldCup-style
// dataset (clientobject key over 10x4-byte records) at default parameters.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

WorldCupDatasetOptions ScaledWorldCup(const BenchDefaults& d) {
  // Paper: 1.35e9 records, u ~ 2^29 with ~400M distinct pairs, 50GB.
  // Scaled: same record count and split count as the Zipf defaults; the
  // client x object grid gives u = d.u with a comparable distinct fraction.
  WorldCupDatasetOptions wc;
  wc.num_records = d.n;
  wc.num_clients = d.u >> 6;
  wc.num_objects = uint64_t{1} << 6;
  wc.num_splits = d.m;
  wc.seed = d.seed;
  return wc;
}

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 17: cost analysis, WorldCup dataset",
                    "paper: 1.35e9 access-log records, clientobject key, "
                    "u ~ 2^29, 50GB",
                    d);

  WorldCupDataset ds(ScaledWorldCup(d));
  std::printf("WorldCup scaled: n=%llu  u=2^%u  m=%llu  distinct keys=%llu\n",
              static_cast<unsigned long long>(ds.info().num_records),
              Log2Floor(ds.info().domain_size),
              static_cast<unsigned long long>(ds.info().num_splits),
              static_cast<unsigned long long>(CountDistinctKeys(ds)));

  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  Table comm("(a) communication (bytes)", {"algorithm", "bytes"});
  Table time("(b) running time (seconds)", {"algorithm", "seconds"});
  BuildOptions opt = d.Build();
  opt.gcs.total_bytes = d.gcs_bytes_per_log_u * Log2Floor(ds.info().domain_size);
  for (AlgorithmKind a : algos) {
    Measurement m = Run(ds, a, opt, nullptr);
    comm.AddRow({AlgorithmName(a), FmtBytes(m.comm_bytes)});
    time.AddRow({AlgorithmName(a), FmtSeconds(m.seconds)});
  }
  comm.Print();
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
