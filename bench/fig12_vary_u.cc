// Figure 12: communication (a) and running time (b) vs domain size u -- the
// one experiment that includes Send-Coef, whose nonzero local coefficient
// count grows with u until it loses to Send-V everywhere.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 12: cost analysis, vary u",
                    "paper: log2(u) = 8..32 at fixed n; Send-Coef included", d);

  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV,     AlgorithmKind::kSendCoef,
      AlgorithmKind::kHWTopk,    AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  std::vector<std::string> cols = {"log2(u)"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  Table comm("(a) communication (bytes)", cols);
  Table time("(b) running time (seconds)", cols);

  for (uint32_t log_u : {10u, 12u, 14u, 16u, 18u}) {
    ZipfDatasetOptions zopt = d.ZipfOptions();
    zopt.domain_size = uint64_t{1} << log_u;
    ZipfDataset ds(zopt);
    BuildOptions opt = d.Build();
    opt.gcs.total_bytes = d.gcs_bytes_per_log_u * log_u;  // paper's space rule
    std::vector<std::string> comm_row = {std::to_string(log_u)};
    std::vector<std::string> time_row = {std::to_string(log_u)};
    for (AlgorithmKind a : algos) {
      Measurement m = Run(ds, a, opt, nullptr);
      comm_row.push_back(FmtBytes(m.comm_bytes));
      time_row.push_back(FmtSeconds(m.seconds));
    }
    comm.AddRow(comm_row);
    time.AddRow(time_row);
  }
  comm.Print();
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
