// Closed-loop load generator for a running wavemr_serve instance.
//
// Opens --connections blocking clients, each on its own thread, and for
// --seconds issues a serving mix of 70% point / 25% range / 5% top-k
// queries back-to-back (closed loop: the next request leaves when the
// previous response lands). Reports aggregate queries/sec and the p50/p99
// per-request latency, writes a BENCH_<name>.json record, and -- with
// --baseline=FILE -- enforces the baseline's "serve-load" queries_per_sec
// floor (minus --tolerance).
//
// The key domain is discovered from the server's stats op, so the generator
// needs no knowledge of how the snapshot was built.
//
// Exit code 0 = ran (and gate passed), 1 = a query failed or the gate
// tripped, 2 = bad usage.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.h"
#include "core/flags.h"
#include "core/rng.h"
#include "serve/client.h"

namespace wavemr {
namespace bench {
namespace {

struct WorkerResult {
  uint64_t ok = 0;
  uint64_t errors = 0;
  std::vector<double> latencies_ms;
};

void RunWorker(const std::string& host, int port, uint64_t domain,
               double seconds, uint64_t seed, const std::atomic<bool>* abort,
               WorkerResult* out) {
  ServeClient client;
  if (!client.Connect(host, port).ok()) {
    out->errors = 1;
    return;
  }
  Rng rng(seed);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline &&
         !abort->load(std::memory_order_relaxed)) {
    const uint64_t die = rng.NextU64() % 100;
    const auto t0 = std::chrono::steady_clock::now();
    bool ok;
    if (die < 70) {
      ok = client.Point(rng.NextU64() % domain).ok();
    } else if (die < 95) {
      uint64_t a = rng.NextU64() % (domain + 1);
      uint64_t b = rng.NextU64() % (domain + 1);
      ok = client.Range(std::min(a, b), std::max(a, b)).ok();
    } else {
      ok = client.TopK(static_cast<uint32_t>(1 + rng.NextU64() % 30)).ok();
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ok) {
      ++out->ok;
      out->latencies_ms.push_back(ms);
    } else {
      ++out->errors;
    }
  }
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

int Main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;
  double seconds = 3.0;
  uint64_t seed = 42;
  std::string name = "serve";
  std::string out;
  std::string baseline;
  double tolerance = 0.25;

  FlagParser parser(
      "bench_serve_load --port=PORT [--host=127.0.0.1] [--connections=4]\n"
      "  [--seconds=3] [--name=serve] [--out=PATH] [--baseline=FILE]\n"
      "  [--tolerance=0.25]");
  parser.String("host", &host, "server address");
  parser.I32("port", &port, "server port (required)");
  parser.I32("connections", &connections, "concurrent closed-loop clients");
  parser.F64("seconds", &seconds, "measurement duration");
  parser.U64("seed", &seed, "workload RNG seed");
  parser.String("name", &name, "report written to BENCH_<name>.json");
  parser.String("out", &out, "explicit report path (overrides --name)");
  parser.String("baseline", &baseline,
                "gate against this file's serve-load queries_per_sec");
  parser.F64("tolerance", &tolerance,
             "allowed fraction below the baseline floor");
  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.message().c_str(),
                 parser.Help().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }
  if (port <= 0 || connections <= 0 || seconds <= 0.0) {
    std::fprintf(stderr, "--port, --connections and --seconds must be > 0\n");
    return 2;
  }

  // Discover the snapshot's key domain (and warm the connection path).
  uint64_t domain = 0;
  {
    ServeClient probe;
    Status s = probe.Connect(host, port);
    if (s.ok()) {
      auto stats = probe.Stats();
      if (!stats.ok()) {
        std::fprintf(stderr, "stats query failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      domain = stats->domain_size;
      std::printf("server: version %llu, %s, u=%llu, %llu terms\n",
                  static_cast<unsigned long long>(stats->version),
                  stats->algorithm.c_str(),
                  static_cast<unsigned long long>(stats->domain_size),
                  static_cast<unsigned long long>(stats->num_terms));
    } else {
      std::fprintf(stderr, "cannot connect to %s:%d: %s\n", host.c_str(), port,
                   s.ToString().c_str());
      return 1;
    }
  }
  if (domain == 0) {
    std::fprintf(stderr, "server has no published snapshot to query\n");
    return 1;
  }

  std::atomic<bool> abort{false};
  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back(RunWorker, host, port, domain, seconds,
                         seed + static_cast<uint64_t>(c), &abort,
                         &results[static_cast<size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  uint64_t ok = 0, errors = 0;
  std::vector<double> latencies;
  for (const WorkerResult& r : results) {
    ok += r.ok;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps = elapsed > 0.0 ? static_cast<double>(ok) / elapsed : 0.0;
  const double p50 = Percentile(&latencies, 0.50);
  const double p99 = Percentile(&latencies, 0.99);

  std::printf(
      "serve-load: %llu queries over %.2f s on %d connections -> "
      "%.3e queries/s, p50 %.3f ms, p99 %.3f ms, %llu errors\n",
      static_cast<unsigned long long>(ok), elapsed, connections, qps, p50, p99,
      static_cast<unsigned long long>(errors));

  bool failed = errors != 0;
  if (failed) std::fprintf(stderr, "FAIL serve-load: %llu queries errored\n",
                           static_cast<unsigned long long>(errors));

  if (!baseline.empty()) {
    std::vector<BenchRecord> records;
    if (!ReadBenchJson(baseline, &records) || records.empty()) {
      std::fprintf(stderr, "cannot read baseline %s (missing or no records)\n",
                   baseline.c_str());
      return 2;
    }
    for (const BenchRecord& b : records) {
      if (b.algorithm != "serve-load" || b.queries_per_sec <= 0.0) continue;
      const double floor = b.queries_per_sec * (1.0 - tolerance);
      if (qps < floor) {
        std::fprintf(stderr,
                     "FAIL serve-load: %.3e queries/s below baseline %.3e "
                     "(-%.0f%% tolerance => %.3e)\n",
                     qps, b.queries_per_sec, tolerance * 100.0, floor);
        failed = true;
      } else {
        std::printf("ok   serve-load: %.3e queries/s within baseline %.3e "
                    "(-%.0f%%)\n",
                    qps, b.queries_per_sec, tolerance * 100.0);
      }
    }
  }

  BenchJsonReporter reporter(name);
  BenchRecord record;
  record.algorithm = "serve-load";
  record.threads = connections;
  record.queries_per_sec = qps;
  record.p50_ms = p50;
  record.p99_ms = p99;
  reporter.Add(std::move(record));
  bool wrote = out.empty() ? reporter.WriteFile() : reporter.WriteFileTo(out);
  if (!wrote) return 1;
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main(int argc, char** argv) { return wavemr::bench::Main(argc, argv); }
