// Figure 10: communication (a) and running time (b) vs dataset size n.
// As in the paper, the split size stays fixed, so m grows with n.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 10: cost analysis, vary n",
                    "paper: 10GB..200GB (n = 2.7e9..54e9), m grows with n", d);

  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  std::vector<std::string> cols = {"n"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  Table comm("(a) communication (bytes)", cols);
  Table time("(b) running time (seconds)", cols);

  for (uint64_t shift : {2u, 1u, 0u}) {  // n/4, n/2, n
    for (uint64_t mult : shift == 0 ? std::vector<uint64_t>{1, 2, 4}
                                    : std::vector<uint64_t>{1}) {
      uint64_t n = (d.n >> shift) * mult;
      ZipfDatasetOptions zopt = d.ZipfOptions();
      zopt.num_records = n;
      zopt.num_splits = std::max<uint64_t>(1, (d.m >> shift) * mult);
      ZipfDataset ds(zopt);
      BuildOptions opt = d.Build();
      std::vector<std::string> comm_row = {std::to_string(n)};
      std::vector<std::string> time_row = {std::to_string(n)};
      for (AlgorithmKind a : algos) {
        Measurement m = Run(ds, a, opt, nullptr);
        comm_row.push_back(FmtBytes(m.comm_bytes));
        time_row.push_back(FmtSeconds(m.seconds));
      }
      comm.AddRow(comm_row);
      time.AddRow(time_row);
    }
  }
  comm.Print();
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
