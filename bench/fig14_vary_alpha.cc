// Figure 14: communication (a) and running time (b) vs Zipf skewness alpha.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 14: cost analysis, vary skewness alpha",
                    "paper: alpha in {0.8, 1.1, 1.4}; less skew => more "
                    "distinct keys per split => Send-V pays more",
                    d);

  const std::vector<AlgorithmKind> algos = {
      AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS};
  std::vector<std::string> cols = {"alpha"};
  for (AlgorithmKind a : algos) cols.emplace_back(AlgorithmName(a));
  Table comm("(a) communication (bytes)", cols);
  Table time("(b) running time (seconds)", cols);

  for (double alpha : {0.8, 1.1, 1.4}) {
    ZipfDatasetOptions zopt = d.ZipfOptions();
    zopt.alpha = alpha;
    ZipfDataset ds(zopt);
    BuildOptions opt = d.Build();
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", alpha);
    std::vector<std::string> comm_row = {label};
    std::vector<std::string> time_row = {label};
    for (AlgorithmKind a : algos) {
      Measurement m = Run(ds, a, opt, nullptr);
      comm_row.push_back(FmtBytes(m.comm_bytes));
      time_row.push_back(FmtSeconds(m.seconds));
    }
    comm.AddRow(comm_row);
    time.AddRow(time_row);
  }
  comm.Print();
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
