// Figure 7: SSE of the sampling methods as eps varies; H-WTopk provides the
// ideal reference line (it is exact regardless of eps).
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 7: SSE, vary eps",
                    "paper eps in [1e-5, 1e-1]; scaled range keeps 1/(eps^2 n) "
                    "spanning 'all records' down to 'a handful'",
                    d);

  ZipfDataset ds(d.ZipfOptions());
  std::vector<WCoeff> truth = TrueCoefficients(ds);

  Table table("SSE (H-WTopk = ideal reference)",
              {"eps", "H-WTopk", "Improved-S", "TwoLevel-S", "Ideal SSE"});
  Measurement exact = Run(ds, AlgorithmKind::kHWTopk, d.Build(), &truth);
  for (double eps : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    BuildOptions opt = d.Build();
    opt.epsilon = eps;
    std::vector<std::string> row = {FmtSci(eps)};
    row.push_back(FmtSci(exact.sse));
    row.push_back(FmtSci(Run(ds, AlgorithmKind::kImprovedS, opt, &truth).sse));
    row.push_back(FmtSci(Run(ds, AlgorithmKind::kTwoLevelS, opt, &truth).sse));
    row.push_back(FmtSci(IdealSse(truth, opt.k)));
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
