// Ablation: Send-V's mapper-side aggregation. Hadoop's default pipeline
// emits one pair per record and relies on the Combiner; the paper's mappers
// aggregate in a hash map and emit from Close. Wire cost matches when the
// combiner is on; turning it off shows the full O(n)-pair shuffle.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Ablation: Send-V combiner",
                    "supports Section 4's note that combining is the standard "
                    "optimization for any MapReduce job",
                    d);

  ZipfDataset ds(d.ZipfOptions());
  Table table("Send-V shuffle under three pipelines",
              {"pipeline", "pairs", "comm (bytes)", "time (s)"});

  auto row = [&](const char* name, const BuildOptions& opt) {
    auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, opt);
    WAVEMR_CHECK(result.ok());
    const RoundStats& r = result->stats.rounds[0];
    table.AddRow({name, std::to_string(r.shuffle_pairs), FmtBytes(r.shuffle_bytes),
                  FmtSeconds(result->stats.TotalSeconds())});
  };

  BuildOptions in_mapper = d.Build();
  row("aggregate in mapper (paper)", in_mapper);

  BuildOptions combine = d.Build();
  combine.send_v_emit_per_record = true;
  row("per-record emit + combiner", combine);

  BuildOptions raw = d.Build();
  raw.send_v_emit_per_record = true;
  raw.send_v_disable_combiner = true;
  row("per-record emit, no combiner", raw);

  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
