// Microbenchmarks of the sketch substrate (google-benchmark). The GCS vs
// AMS update gap is the reason the paper implements Send-Sketch with GCS.
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "sketch/ams_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/wavelet_gcs.h"

namespace wavemr {
namespace {

void BM_CountSketchUpdate(benchmark::State& state) {
  CountSketch sketch(1, 5, 1 << 12);
  Rng rng(2);
  for (auto _ : state) {
    sketch.Update(rng.NextBounded(1 << 20), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_AmsSketchUpdate(benchmark::State& state) {
  AmsSketch sketch(1, 5, static_cast<size_t>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    sketch.Update(rng.NextBounded(1 << 20), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmsSketchUpdate)->Arg(64)->Arg(256);

void BM_WaveletGcsDataUpdate(benchmark::State& state) {
  const uint64_t u = uint64_t{1} << state.range(0);
  WaveletGcsOptions opt;
  opt.total_bytes = 20480ull * state.range(0);
  WaveletGcs sketch(u, opt);
  Rng rng(2);
  for (auto _ : state) {
    sketch.UpdateData(rng.NextBounded(u), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveletGcsDataUpdate)->Arg(16)->Arg(20);

void BM_WaveletGcsTopK(benchmark::State& state) {
  const uint64_t u = 1 << 16;
  WaveletGcsOptions opt;
  opt.total_bytes = 20480ull * 16;
  WaveletGcs sketch(u, opt);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) sketch.UpdateData(rng.NextBounded(u), 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.FindTopK(30));
  }
}
BENCHMARK(BM_WaveletGcsTopK);

}  // namespace
}  // namespace wavemr

BENCHMARK_MAIN();
