// Microbenchmarks of the data substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "data/dataset.h"
#include "data/record_format.h"
#include "data/zipf.h"

namespace wavemr {
namespace {

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(uint64_t{1} << state.range(0), 1.1);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(16)->Arg(29);

void BM_DatasetScan(benchmark::State& state) {
  ZipfDatasetOptions opt;
  opt.num_records = 1 << 18;
  opt.domain_size = 1 << 16;
  opt.num_splits = 16;
  ZipfDataset ds(opt);
  for (auto _ : state) {
    uint64_t sum = 0;
    ds.ScanSplit(0, [&sum](uint64_t key) { sum += key; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * ds.SplitRecords(0));
}
BENCHMARK(BM_DatasetScan);

void BM_DatasetRandomAccess(benchmark::State& state) {
  ZipfDatasetOptions opt;
  opt.num_records = 1 << 18;
  opt.domain_size = 1 << 16;
  opt.num_splits = 16;
  ZipfDataset ds(opt);
  Rng rng(9);
  uint64_t n = ds.SplitRecords(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.KeyAt(0, rng.NextBounded(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatasetRandomAccess);

void BM_SampleDistinctIndices(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SampleDistinctIndices(1 << 20, static_cast<uint64_t>(state.range(0)), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleDistinctIndices)->Arg(1 << 10)->Arg(1 << 14);

void BM_FeistelApply(benchmark::State& state) {
  FeistelPermutation perm(11, 29);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.Apply(x++ & ((uint64_t{1} << 29) - 1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeistelApply);

}  // namespace
}  // namespace wavemr

BENCHMARK_MAIN();
