// Ablation: O(|v_j| log u) sparse local transform (Gilbert et al. [20], the
// paper's Appendix A choice) vs the O(u) dense transform of [26] inside the
// exact methods' mappers. Same histograms; different simulated map time.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Ablation: sparse vs dense local wavelet transform",
                    "supports the paper's Appendix A implementation choice", d);

  Table table("simulated running time (seconds)",
              {"log2(u)", "H-WTopk sparse", "H-WTopk dense", "Send-Coef sparse",
               "Send-Coef dense"});
  // The crossover matters: below ~2^16 the dense O(u) pass is cheaper than
  // O(|v_j| log u) hashing; the paper's u = 2^29 is deep in sparse territory.
  for (uint32_t log_u : {12u, 14u, 16u, 18u, 20u}) {
    ZipfDatasetOptions zopt = d.ZipfOptions();
    zopt.domain_size = uint64_t{1} << log_u;
    ZipfDataset ds(zopt);
    BuildOptions sparse = d.Build();
    BuildOptions dense = d.Build();
    dense.use_dense_local_transform = true;
    table.AddRow({std::to_string(log_u),
                  FmtSeconds(Run(ds, AlgorithmKind::kHWTopk, sparse, nullptr).seconds),
                  FmtSeconds(Run(ds, AlgorithmKind::kHWTopk, dense, nullptr).seconds),
                  FmtSeconds(Run(ds, AlgorithmKind::kSendCoef, sparse, nullptr).seconds),
                  FmtSeconds(Run(ds, AlgorithmKind::kSendCoef, dense, nullptr).seconds)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
