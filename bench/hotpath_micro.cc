// Micro-benchmarks for the data-plane kernels this repo's map phase is made
// of, self-timed with std::chrono so they run without Google Benchmark:
//
//   scan        per-key std::function ScanSplit vs batched ReadKeys chunks,
//               on generated (cold) and materialized (warm) Zipf data;
//   count       std::unordered_map vs FlatHashCounter frequency counting;
//   gcs         scalar GroupCountSketch::Update vs the batched kernel
//               (UpdateBatch), plus the full WaveletGcs::UpdateData path;
//   shuffle     the sorted-shuffle driver path: pair-vector global
//               stable_sort vs columnar per-run radix sort + loser-tree
//               merge (mapreduce/shuffle.h), plus the merge-only
//               comparison of per-pair replay vs block-wise delivery;
//   extmerge    the external shuffle: the same k-way merge over resident
//               runs vs runs spilled to temp files and streamed back
//               through FileRunCursor (mapreduce/spill.h), with and without
//               async read-ahead, plus inline vs overlapped (AsyncIoBackend)
//               spill writes.
//
// Each kernel prints rows of (variant, items/sec, speedup vs the first
// variant). Checksums keep the optimizer honest and double as a cheap
// equivalence check between variants. --json=PATH additionally writes every
// row as a JSON array (the perf-smoke CI job uploads it next to
// BENCH_ci.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flat_hash.h"
#include "core/io.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill.h"
#include "data/dataset.h"
#include "sketch/group_count_sketch.h"
#include "sketch/wavelet_gcs.h"
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::string variant;
  double items_per_sec = 0.0;
  uint64_t checksum = 0;
};

/// Every printed row, retained for --json output.
std::vector<std::pair<std::string, Row>> g_all_rows;

void PrintRows(const char* kernel, const std::vector<Row>& rows) {
  for (const Row& r : rows) g_all_rows.emplace_back(kernel, r);
  Table table(std::string("hotpath: ") + kernel,
              {"variant", "items/s", "speedup", "checksum"});
  for (const Row& r : rows) {
    char sp[32];
    std::snprintf(sp, sizeof(sp), "%.2fx",
                  rows[0].items_per_sec > 0 ? r.items_per_sec / rows[0].items_per_sec
                                            : 0.0);
    char cs[32];
    std::snprintf(cs, sizeof(cs), "%llx",
                  static_cast<unsigned long long>(r.checksum));
    table.AddRow({r.variant, FmtSci(r.items_per_sec), sp, cs});
  }
  table.Print();
}

// ------------------------------------------------------------------- scan

void BenchScan(uint64_t n) {
  ZipfDatasetOptions opt;
  opt.num_records = n;
  opt.domain_size = 1 << 17;
  opt.num_splits = 16;
  opt.cache_keys = false;
  ZipfDataset cold(opt);
  opt.cache_keys = true;
  ZipfDataset warm(opt);
  // Materialize outside the timed region.
  for (uint64_t j = 0; j < opt.num_splits; ++j) {
    uint64_t sink[1];
    warm.ReadKeys(j, 0, sink, 1);
  }

  auto per_key = [&](const Dataset& ds) {
    uint64_t sum = 0;
    for (uint64_t j = 0; j < opt.num_splits; ++j) {
      ds.ScanSplit(j, [&sum](uint64_t k) { sum += k; });
    }
    return sum;
  };
  auto batched = [&](const Dataset& ds) {
    uint64_t sum = 0;
    uint64_t buffer[2048];
    for (uint64_t j = 0; j < opt.num_splits; ++j) {
      uint64_t start = 0;
      for (;;) {
        uint64_t got = ds.ReadKeys(j, start, buffer, 2048);
        if (got == 0) break;
        for (uint64_t i = 0; i < got; ++i) sum += buffer[i];
        start += got;
      }
    }
    return sum;
  };

  std::vector<Row> rows;
  auto time_one = [&](const char* name, const Dataset& ds, auto&& fn) {
    auto t0 = Clock::now();
    uint64_t sum = fn(ds);
    double s = SecondsSince(t0);
    rows.push_back({name, static_cast<double>(n) / s, sum});
  };
  time_one("generate + per-key fn", cold, per_key);
  time_one("generate + batched", cold, batched);
  time_one("cached + per-key fn", warm, per_key);
  time_one("cached + batched", warm, batched);
  PrintRows("sequential scan", rows);
}

// ------------------------------------------------------------------ count

void BenchCount(uint64_t n) {
  // Count a realistic key stream (materialized Zipf keys).
  ZipfDatasetOptions opt;
  opt.num_records = n;
  opt.domain_size = 1 << 17;
  opt.num_splits = 1;
  ZipfDataset ds(opt);
  std::vector<uint64_t> keys(n);
  ds.ReadKeys(0, 0, keys.data(), n);

  std::vector<Row> rows;
  {
    auto t0 = Clock::now();
    std::unordered_map<uint64_t, uint64_t> freq;
    for (uint64_t k : keys) ++freq[k];
    double s = SecondsSince(t0);
    rows.push_back({"std::unordered_map", static_cast<double>(n) / s, freq.size()});
  }
  {
    auto t0 = Clock::now();
    std::unordered_map<uint64_t, uint64_t> freq;
    freq.reserve(opt.domain_size);
    for (uint64_t k : keys) ++freq[k];
    double s = SecondsSince(t0);
    rows.push_back(
        {"std::unordered_map+reserve", static_cast<double>(n) / s, freq.size()});
  }
  {
    auto t0 = Clock::now();
    FlatHashCounter<uint64_t, uint64_t> freq;
    for (uint64_t k : keys) ++freq[k];
    double s = SecondsSince(t0);
    rows.push_back({"FlatHashCounter", static_cast<double>(n) / s, freq.size()});
  }
  {
    auto t0 = Clock::now();
    FlatHashCounter<uint64_t, uint64_t> freq;
    freq.reserve(opt.domain_size);
    for (uint64_t k : keys) ++freq[k];
    double s = SecondsSince(t0);
    rows.push_back(
        {"FlatHashCounter+reserve", static_cast<double>(n) / s, freq.size()});
  }
  PrintRows("frequency counting", rows);
}

// -------------------------------------------------------------------- gcs

void BenchGcs(uint64_t n) {
  const uint64_t u = 1 << 17;
  std::vector<uint64_t> items;
  std::vector<double> values;
  items.reserve(n);
  values.reserve(n);
  // The wavelet hierarchy's natural workload: sorted coefficient indices.
  for (uint64_t i = 0; i < n; ++i) {
    items.push_back((i * 2654435761u) % u);
    values.push_back(1.0 + static_cast<double>(i % 16));
  }
  // Sorted variant: same (item, value) pairs, ascending item order.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&items](size_t a, size_t b) { return items[a] < items[b]; });
  std::vector<uint64_t> sorted_items(n);
  std::vector<double> sorted_values(n);
  for (size_t i = 0; i < n; ++i) {
    sorted_items[i] = items[order[i]];
    sorted_values[i] = values[order[i]];
  }

  std::vector<Row> rows;
  {
    GroupCountSketch sketch(5, 3, 512, 8);
    auto t0 = Clock::now();
    for (uint64_t i = 0; i < n; ++i) {
      sketch.Update(items[i] >> 3, items[i], values[i]);
    }
    double s = SecondsSince(t0);
    rows.push_back({"scalar Update", static_cast<double>(n) / s,
                    sketch.NonzeroCounters()});
  }
  {
    GroupCountSketch sketch(5, 3, 512, 8);
    auto t0 = Clock::now();
    sketch.UpdateBatch(items.data(), values.data(), n, 3);
    double s = SecondsSince(t0);
    rows.push_back({"UpdateBatch (unsorted)", static_cast<double>(n) / s,
                    sketch.NonzeroCounters()});
  }
  {
    GroupCountSketch sketch(5, 3, 512, 8);
    auto t0 = Clock::now();
    sketch.UpdateBatch(sorted_items.data(), sorted_values.data(), n, 3);
    double s = SecondsSince(t0);
    rows.push_back({"UpdateBatch (sorted)", static_cast<double>(n) / s,
                    sketch.NonzeroCounters()});
  }
  PrintRows("GCS update kernel", rows);

  // Dispatch-tier comparison (core/simd.h): the isolated per-item hash
  // kernel and the full UpdateBatch, forced-scalar vs the best tier this
  // host can run. Checksums must match within each pair -- the tiers promise
  // bit-identical results. This is the table the perf-smoke gate records as
  // "gcs-update-kernel" in ci_baseline.json.
  GcsUpdateKernelOptions kopt;
  kopt.total_items = n;
  GcsUpdateKernelResult kr = RunGcsUpdateKernel(kopt);
  const std::string tier = SimdTierName(kr.tier);
  std::vector<Row> krows;
  krows.push_back({"hash block, scalar tier", kr.scalar_hash_items_per_sec,
                   kr.scalar_hash_checksum});
  krows.push_back({"hash block, " + tier + " tier", kr.simd_hash_items_per_sec,
                   kr.simd_hash_checksum});
  PrintRows("gcs-update-kernel (items/s)", krows);
  std::vector<Row> urows;
  urows.push_back({"UpdateBatch, scalar tier", kr.scalar_update_items_per_sec,
                   kr.scalar_update_checksum});
  urows.push_back({"UpdateBatch, " + tier + " tier",
                   kr.simd_update_items_per_sec, kr.simd_update_checksum});
  PrintRows("gcs UpdateBatch by tier (items/s)", urows);

  // Full hierarchical tracker: one UpdateData is log2(u)+1 coefficient
  // updates through every level.
  const uint64_t points = n / 64;
  WaveletGcsOptions gopt;
  gopt.seed = 5;
  gopt.total_bytes = 20480ull * 17;
  WaveletGcs tracker(u, gopt);
  auto t0 = Clock::now();
  for (uint64_t i = 0; i < points; ++i) {
    tracker.UpdateData(items[i], values[i]);
  }
  double s = SecondsSince(t0);
  std::vector<Row> grows;
  grows.push_back({"WaveletGcs::UpdateData", static_cast<double>(points) / s,
                   tracker.NonzeroCounters()});
  PrintRows("hierarchical tracker (points/s)", grows);
}

// ---------------------------------------------------------------- shuffle

void BenchShuffle(uint64_t n) {
  ShuffleKernelOptions opt;
  opt.total_pairs = n;
  ShuffleKernelResult r = RunShuffleMergeKernel(opt);
  std::vector<Row> rows;
  rows.push_back({"pair-vector stable_sort", r.pair_vector_pairs_per_sec,
                  r.pair_vector_checksum});
  rows.push_back({"columnar radix + loser-tree", r.columnar_pairs_per_sec,
                  r.columnar_checksum});
  PrintRows("shuffle merge (pairs/s)", rows);

  std::vector<Row> mrows;
  mrows.push_back({"merge-only per-pair replay", r.merge_per_pair_pairs_per_sec,
                   r.merge_per_pair_checksum});
  mrows.push_back({"merge-only block-wise", r.merge_blockwise_pairs_per_sec,
                   r.merge_blockwise_checksum});
  PrintRows("merge delivery, uniform keys (pairs/s)", mrows);

  // The skewed counterpart: every run owns a contiguous key slice, so one
  // run wins the merge for a long streak and block delivery collapses the
  // per-pair tree walks into bulk copies.
  opt.disjoint_runs = true;
  ShuffleKernelResult d = RunShuffleMergeKernel(opt);
  std::vector<Row> drows;
  drows.push_back({"merge-only per-pair replay", d.merge_per_pair_pairs_per_sec,
                   d.merge_per_pair_checksum});
  drows.push_back({"merge-only block-wise", d.merge_blockwise_pairs_per_sec,
                   d.merge_blockwise_checksum});
  PrintRows("merge delivery, run-disjoint keys (pairs/s)", drows);
}

// ----------------------------------------------------------- external merge

void BenchExternalMerge(uint64_t n) {
  ExternalMergeKernelOptions opt;
  opt.total_pairs = n;
  ExternalMergeKernelResult r = RunExternalMergeKernel(opt);
  std::vector<Row> rows;
  rows.push_back({"resident runs", r.resident_pairs_per_sec, r.resident_checksum});
  rows.push_back({"file-backed runs", r.external_pairs_per_sec,
                  r.external_checksum});
  rows.push_back({"file-backed + read-ahead", r.prefetch_pairs_per_sec,
                  r.prefetch_checksum});
  PrintRows("external merge (pairs/s)", rows);

  // Spill-write side of the async plane: serializing R runs inline on the
  // "driver" (the sync backend) vs submitting the same writes to the async
  // backend's workers and only waiting at the end -- the overlap the shuffle
  // plane gets while it keeps absorbing map output. Checksums fold each
  // run's WriteSpillFile outcome, so both variants prove every write landed.
  {
    using Run = ShuffleRun<uint64_t, uint64_t>;
    const size_t num_runs = 16;
    const uint64_t per_run = n / num_runs;
    std::vector<Run> runs(num_runs);
    uint64_t sequence = 0;
    for (Run& run : runs) {
      run.Reserve(per_run);
      for (uint64_t i = 0; i < per_run; ++i) {
        run.Append((sequence * 2654435761u) % (1 << 17), sequence), ++sequence;
      }
      run.SortByKey();
    }
    std::vector<Row> wrows;
    auto time_writes = [&](const char* name, IoBackend* io) {
      SpillDir dir;
      std::vector<SpillWriteResult> results(num_runs);
      std::vector<std::filesystem::path> paths(num_runs);
      for (size_t i = 0; i < num_runs; ++i) {
        paths[i] = dir.NextFilePath("hotpath");
      }
      const auto t0 = Clock::now();
      std::vector<IoTicket> tickets;
      tickets.reserve(num_runs);
      for (size_t i = 0; i < num_runs; ++i) {
        const Run* run = &runs[i];
        SpillWriteResult* out = &results[i];
        const std::filesystem::path* path = &paths[i];
        tickets.push_back(io->Submit([run, out, path] {
          *out = WriteSpillFile<uint64_t, uint64_t>(
              *path, run->keys.data(), run->values.data(), run->size());
        }));
      }
      for (IoTicket& t : tickets) t.Wait();
      const double s = SecondsSince(t0);
      uint64_t checksum = 0;
      for (const SpillWriteResult& w : results) {
        checksum = checksum * 31 + (w.io.ok() ? w.file_bytes : 0);
      }
      wrows.push_back({name, static_cast<double>(sequence) / s, checksum});
    };
    time_writes("inline writes (sync)", DefaultSyncIoBackend());
    IoOptions async_opt;
    async_opt.backend = IoBackendKind::kAsync;
    AsyncIoBackend async_io(async_opt);
    time_writes("overlapped writes (async)", &async_io);
    PrintRows("spill writes (pairs/s)", wrows);
  }
}

bool WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < g_all_rows.size(); ++i) {
    const auto& [kernel, row] = g_all_rows[i];
    out << "  {\"kernel\": \"" << kernel << "\", \"variant\": \"" << row.variant
        << "\", \"items_per_sec\": " << row.items_per_sec << ", \"checksum\": "
        << row.checksum << "}" << (i + 1 < g_all_rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return static_cast<bool>(out);
}

int Main(int argc, char** argv) {
  uint64_t n = 1 << 21;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = std::strtoull(argv[i] + 4, nullptr, 10);
    } else if (argv[i][0] != '-') {
      n = std::strtoull(argv[i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath_micro [N | --n=N] [--json=PATH]\n");
      return 2;
    }
  }
  std::printf("hotpath micro-benchmarks over n=%llu items\n",
              static_cast<unsigned long long>(n));
  BenchScan(n);
  BenchCount(n);
  BenchGcs(n);
  BenchShuffle(n);
  BenchExternalMerge(n);
  if (!json_path.empty()) {
    if (!WriteJson(json_path)) return 1;
    std::printf("wrote %s (%zu rows)\n", json_path.c_str(), g_all_rows.size());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main(int argc, char** argv) { return wavemr::bench::Main(argc, argv); }
