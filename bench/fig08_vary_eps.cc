// Figure 8: communication (a) and running time (b) of the sampling methods
// as eps varies. Basic-S is included as a supplementary series (the paper
// analyzes it in Section 4 but plots only Improved-S and TwoLevel-S).
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 8: sampling methods, vary eps",
                    "costs grow as eps shrinks (right to left in the paper)", d);

  ZipfDataset ds(d.ZipfOptions());
  Table comm("(a) communication (bytes)",
             {"eps", "Basic-S", "Improved-S", "TwoLevel-S"});
  Table time("(b) running time (seconds)",
             {"eps", "Basic-S", "Improved-S", "TwoLevel-S"});

  for (double eps : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    BuildOptions opt = d.Build();
    opt.epsilon = eps;
    Measurement basic = Run(ds, AlgorithmKind::kBasicS, opt, nullptr);
    Measurement improved = Run(ds, AlgorithmKind::kImprovedS, opt, nullptr);
    Measurement twolevel = Run(ds, AlgorithmKind::kTwoLevelS, opt, nullptr);
    comm.AddRow({FmtSci(eps), FmtBytes(basic.comm_bytes), FmtBytes(improved.comm_bytes),
                 FmtBytes(twolevel.comm_bytes)});
    time.AddRow({FmtSci(eps), FmtSeconds(basic.seconds), FmtSeconds(improved.seconds),
                 FmtSeconds(twolevel.seconds)});
  }
  comm.Print();
  time.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
