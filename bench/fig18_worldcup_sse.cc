// Figure 18: SSE of all methods on the WorldCup-style dataset.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Figure 18: SSE on the WorldCup dataset",
                    "same trends as the Zipf datasets (paper Figure 15)", d);

  WorldCupDatasetOptions wc;
  wc.num_records = d.n;
  wc.num_clients = d.u >> 6;
  wc.num_objects = uint64_t{1} << 6;
  wc.num_splits = d.m;
  wc.seed = d.seed;
  WorldCupDataset ds(wc);
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  BuildOptions opt = d.Build();
  opt.gcs.total_bytes = d.gcs_bytes_per_log_u * Log2Floor(ds.info().domain_size);

  Table table("SSE", {"algorithm", "SSE"});
  for (AlgorithmKind a :
       {AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kSendSketch,
        AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS}) {
    table.AddRow({AlgorithmName(a), FmtSci(Run(ds, a, opt, &truth).sse)});
  }
  table.AddRow({"Ideal SSE", FmtSci(IdealSse(truth, opt.k))});
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
