// Perf-smoke driver for CI: runs one representative algorithm from each
// layer (Send-V, H-WTopk, TwoLevel-S, Send-Sketch) at 1 thread and at N
// threads over the WAVEMR_SCALE default workload, writes every run as a
// BENCH_<name>.json record, and enforces two gates:
//
//   * determinism: simulated seconds and shuffle bytes must be identical at
//     1 and N threads (they are functions of the data, not the schedule);
//   * performance: with --baseline=FILE, the N-thread wall-clock per
//     algorithm must not exceed the baseline's by more than --tolerance
//     (default 15%); the 1-thread map throughput (records/sec) must not
//     fall below the baseline's threads==1 map_records_per_sec by more than
//     --rps-tolerance (default 15%); with --min-speedup=F, the map-phase
//     speedup of N threads over 1 must reach F;
//   * shuffle kernel: when the baseline has a "shuffle-merge-kernel"
//     record, the columnar sort+merge path must deliver at least
//     min_speedup x the pair-vector reference measured in the same
//     process, and at least pairs_per_sec (minus --rps-tolerance), with
//     equal checksums between the two paths;
//   * merge delivery: when the baseline has a "blockwise-merge" record,
//     RunMerger's block-wise drain must reach min_speedup x the per-pair
//     replay reference on the same pre-sorted runs (parity by design on
//     this uniform-key kernel; the baseline floor is 0.95 to absorb timer
//     noise);
//   * external merge: when the baseline has an "external-merge-kernel"
//     record, merging file-backed (spilled) runs must deliver at least
//     pairs_per_sec (minus --rps-tolerance) and reproduce the resident
//     merge's checksum exactly;
//   * gcs update kernel: when the baseline has a "gcs-update-kernel"
//     record, the SIMD-dispatched per-item hash kernel (core/simd.h) must
//     deliver at least items_per_sec (minus --rps-tolerance) and match the
//     forced-scalar tier's checksums exactly, and -- on hosts where a
//     vector tier is available -- beat the scalar tier by the record's
//     min_speedup (scalar-only hosts report instead of gating, like the
//     single-core skew-reduce case);
//   * skew reduce: when the baseline has a "skew-reduce" record, Send-V
//     without a combiner over Zipf s=1.2 keys (per-record pairs, forced
//     sorted shuffle, a buffer small enough to force spills) must keep the
//     equi-depth per-range pair spread (max/min) at or below the record's
//     max_spread at --reduce-tasks 8, stay bit-deterministic between
//     reduce-tasks 1 and 8, and -- on multi-core hosts -- cut the reduce
//     wall by at least the record's min_speedup going from 1 to 8 tasks.
//
// The dataset's key cache is warmed before timing, so map phases measure
// the steady-state read path (memory-speed scans), not first-touch
// generation of the synthetic data.
//
// Exit code 0 = all gates passed, 1 = a gate failed, 2 = bad usage.
#include <chrono>
#include <cstdio>
#include <thread>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "core/thread_pool.h"

namespace wavemr {
namespace bench {
namespace {

struct SmokeOptions {
  int threads = 0;  // N for the parallel runs; 0 = hardware concurrency
  std::string name = "ci";
  std::string out;  // explicit output path; empty = BENCH_<name>.json
  std::string baseline;
  double tolerance = 0.15;
  double rps_tolerance = 0.15;
  double min_speedup = 0.0;  // 0 = report only
};

bool ParseFlag(const char* arg, const char* flag, std::string* out) {
  std::string prefix = std::string("--") + flag + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_perf_smoke [--threads=N] [--name=ci] [--out=PATH]\n"
               "         [--baseline=FILE] [--tolerance=0.15]\n"
               "         [--rps-tolerance=0.15] [--min-speedup=F]\n");
  return 2;
}

int Main(int argc, char** argv) {
  SmokeOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "threads", &v)) {
      opt.threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "name", &v)) {
      opt.name = v;
    } else if (ParseFlag(argv[i], "out", &v)) {
      opt.out = v;
    } else if (ParseFlag(argv[i], "baseline", &v)) {
      opt.baseline = v;
    } else if (ParseFlag(argv[i], "tolerance", &v)) {
      opt.tolerance = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "rps-tolerance", &v)) {
      opt.rps_tolerance = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "min-speedup", &v)) {
      opt.min_speedup = std::atof(v.c_str());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage();
    }
  }
  const int n_threads =
      opt.threads <= 0 ? ThreadPool::DefaultThreadCount() : opt.threads;

  BenchDefaults d = BenchDefaults::FromEnv();
  ZipfDataset ds(d.ZipfOptions());

  // One algorithm per layer, plus both sorted-shuffle users (H-WTopk and
  // Send-Coef) so the columnar merge path is always under the wall gates.
  const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kSendV, AlgorithmKind::kSendCoef, AlgorithmKind::kHWTopk,
      AlgorithmKind::kTwoLevelS, AlgorithmKind::kSendSketch};

  std::printf("perf-smoke: n=%llu u=%llu m=%llu  threads: 1 vs %d\n",
              static_cast<unsigned long long>(d.n),
              static_cast<unsigned long long>(d.u),
              static_cast<unsigned long long>(d.m), n_threads);

  // Warm the per-split key cache so every timed map phase reads
  // materialized keys (the steady-state an HDFS deployment sees once the
  // input is in the page cache) instead of paying first-touch generation.
  {
    const auto t0 = std::chrono::steady_clock::now();
    uint64_t checksum = 0;
    for (uint64_t j = 0; j < ds.info().num_splits; ++j) {
      ds.ScanSplit(j, [&checksum](uint64_t key) { checksum += key; });
    }
    std::printf("warmed key cache in %.0f ms (checksum %llx)\n",
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count(),
                static_cast<unsigned long long>(checksum));
  }

  BenchJsonReporter reporter(opt.name);
  Table table("perf-smoke (wall-clock, real ms)",
              {"algorithm", "wall@1", "wall@N", "map@1", "map@N", "map speedup",
               "map rec/s@1"});
  bool failed = false;

  std::vector<Measurement> serial_runs;    // one per kind, at 1 thread
  std::vector<Measurement> parallel_runs;  // one per kind, at n_threads
  for (AlgorithmKind kind : kinds) {
    BuildOptions serial_opt = d.Build();
    serial_opt.threads = 1;
    Measurement serial = Run(ds, kind, serial_opt, nullptr);
    reporter.Add(AlgorithmName(kind), d, 1, serial);
    serial_runs.push_back(serial);

    BuildOptions parallel_opt = d.Build();
    parallel_opt.threads = n_threads;
    Measurement parallel = Run(ds, kind, parallel_opt, nullptr);
    reporter.Add(AlgorithmName(kind), d, n_threads, parallel);
    parallel_runs.push_back(parallel);

    // Determinism gate: schedule-independent quantities must match exactly.
    if (serial.shuffle_bytes != parallel.shuffle_bytes ||
        serial.seconds != parallel.seconds) {
      std::fprintf(stderr,
                   "FAIL %s: 1-thread vs %d-thread runs diverge "
                   "(shuffle %llu vs %llu bytes, simulated %.6f vs %.6f s)\n",
                   AlgorithmName(kind), n_threads,
                   static_cast<unsigned long long>(serial.shuffle_bytes),
                   static_cast<unsigned long long>(parallel.shuffle_bytes),
                   serial.seconds, parallel.seconds);
      failed = true;
    }

    double speedup =
        parallel.map_wall_ms > 0 ? serial.map_wall_ms / parallel.map_wall_ms : 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
    char rps_buf[32];
    std::snprintf(rps_buf, sizeof(rps_buf), "%.3e", serial.MapRecordsPerSec());
    table.AddRow({AlgorithmName(kind), FmtSeconds(serial.wall_ms),
                  FmtSeconds(parallel.wall_ms), FmtSeconds(serial.map_wall_ms),
                  FmtSeconds(parallel.map_wall_ms), buf, rps_buf});
    // A map phase of a few ms (TwoLevel-S samples ~1% of the data) measures
    // scheduler noise, not scalability; gate only phases big enough to time.
    constexpr double kSpeedupGateFloorMs = 100.0;
    if (opt.min_speedup > 0.0 && serial.map_wall_ms >= kSpeedupGateFloorMs &&
        speedup < opt.min_speedup) {
      std::fprintf(stderr, "FAIL %s: map speedup %.2fx below required %.2fx\n",
                   AlgorithmName(kind), speedup, opt.min_speedup);
      failed = true;
    }
  }
  table.Print();

  // Shuffle-merge kernel: both engine generations of the sorted-shuffle
  // driver path over identical runs. Best of three shots per variant keeps
  // the gate off the scheduler-noise floor.
  ShuffleKernelResult kernel;
  for (int shot = 0; shot < 3; ++shot) {
    ShuffleKernelResult r = RunShuffleMergeKernel(ShuffleKernelOptions{});
    if (r.columnar_pairs_per_sec > kernel.columnar_pairs_per_sec) {
      kernel.columnar_pairs_per_sec = r.columnar_pairs_per_sec;
    }
    if (r.pair_vector_pairs_per_sec > kernel.pair_vector_pairs_per_sec) {
      kernel.pair_vector_pairs_per_sec = r.pair_vector_pairs_per_sec;
    }
    if (r.merge_blockwise_pairs_per_sec > kernel.merge_blockwise_pairs_per_sec) {
      kernel.merge_blockwise_pairs_per_sec = r.merge_blockwise_pairs_per_sec;
    }
    if (r.merge_per_pair_pairs_per_sec > kernel.merge_per_pair_pairs_per_sec) {
      kernel.merge_per_pair_pairs_per_sec = r.merge_per_pair_pairs_per_sec;
    }
    kernel.pair_vector_checksum = r.pair_vector_checksum;
    kernel.columnar_checksum = r.columnar_checksum;
    kernel.merge_blockwise_checksum = r.merge_blockwise_checksum;
    kernel.merge_per_pair_checksum = r.merge_per_pair_checksum;
    if (r.columnar_checksum != r.pair_vector_checksum) break;
  }
  std::printf(
      "shuffle-merge kernel: columnar %.3e pairs/s, pair-vector %.3e pairs/s "
      "(%.2fx)\n",
      kernel.columnar_pairs_per_sec, kernel.pair_vector_pairs_per_sec,
      kernel.Speedup());
  if (kernel.columnar_checksum != kernel.pair_vector_checksum) {
    std::fprintf(stderr,
                 "FAIL shuffle-merge-kernel: columnar checksum %llx != "
                 "pair-vector checksum %llx\n",
                 static_cast<unsigned long long>(kernel.columnar_checksum),
                 static_cast<unsigned long long>(kernel.pair_vector_checksum));
    failed = true;
  }
  {
    BenchRecord kr;
    kr.algorithm = "shuffle-merge-kernel";
    kr.threads = 1;
    kr.pairs_per_sec = kernel.columnar_pairs_per_sec;
    reporter.Add(std::move(kr));
  }
  std::printf(
      "merge delivery: block-wise %.3e pairs/s, per-pair %.3e pairs/s (%.2fx)\n",
      kernel.merge_blockwise_pairs_per_sec, kernel.merge_per_pair_pairs_per_sec,
      kernel.BlockwiseSpeedup());
  if (kernel.merge_blockwise_checksum != kernel.merge_per_pair_checksum) {
    std::fprintf(stderr,
                 "FAIL blockwise-merge: block-wise checksum %llx != per-pair "
                 "checksum %llx\n",
                 static_cast<unsigned long long>(kernel.merge_blockwise_checksum),
                 static_cast<unsigned long long>(kernel.merge_per_pair_checksum));
    failed = true;
  }
  {
    BenchRecord kr;
    kr.algorithm = "blockwise-merge";
    kr.threads = 1;
    kr.pairs_per_sec = kernel.merge_blockwise_pairs_per_sec;
    reporter.Add(std::move(kr));
  }

  // External-merge kernel: resident vs file-backed runs through the same
  // loser tree. Best of three shots, like the shuffle kernel.
  ExternalMergeKernelResult ext;
  for (int shot = 0; shot < 3; ++shot) {
    ExternalMergeKernelResult r = RunExternalMergeKernel(ExternalMergeKernelOptions{});
    if (r.external_pairs_per_sec > ext.external_pairs_per_sec) {
      ext.external_pairs_per_sec = r.external_pairs_per_sec;
    }
    if (r.resident_pairs_per_sec > ext.resident_pairs_per_sec) {
      ext.resident_pairs_per_sec = r.resident_pairs_per_sec;
    }
    if (r.prefetch_pairs_per_sec > ext.prefetch_pairs_per_sec) {
      ext.prefetch_pairs_per_sec = r.prefetch_pairs_per_sec;
    }
    ext.resident_checksum = r.resident_checksum;
    ext.external_checksum = r.external_checksum;
    ext.prefetch_checksum = r.prefetch_checksum;
    if (r.external_checksum != r.resident_checksum ||
        r.prefetch_checksum != r.resident_checksum) {
      break;
    }
  }
  std::printf(
      "external-merge kernel: file-backed %.3e pairs/s, resident %.3e pairs/s "
      "(%.2fx of resident)\n",
      ext.external_pairs_per_sec, ext.resident_pairs_per_sec,
      ext.resident_pairs_per_sec > 0.0
          ? ext.external_pairs_per_sec / ext.resident_pairs_per_sec
          : 0.0);
  if (ext.external_checksum != ext.resident_checksum) {
    std::fprintf(stderr,
                 "FAIL external-merge-kernel: file-backed checksum %llx != "
                 "resident checksum %llx\n",
                 static_cast<unsigned long long>(ext.external_checksum),
                 static_cast<unsigned long long>(ext.resident_checksum));
    failed = true;
  }
  {
    BenchRecord kr;
    kr.algorithm = "external-merge-kernel";
    kr.threads = 1;
    kr.pairs_per_sec = ext.external_pairs_per_sec;
    reporter.Add(std::move(kr));
  }
  // Prefetched external merge: the same files through async read-ahead
  // cursors. The checksum is a hard bit-identity gate, baseline or not.
  std::printf(
      "external-merge-prefetch: read-ahead %.3e pairs/s, inline %.3e pairs/s "
      "(%.2fx of inline)\n",
      ext.prefetch_pairs_per_sec, ext.external_pairs_per_sec,
      ext.PrefetchSpeedup());
  if (ext.prefetch_checksum != ext.resident_checksum) {
    std::fprintf(stderr,
                 "FAIL external-merge-prefetch: read-ahead checksum %llx != "
                 "resident checksum %llx\n",
                 static_cast<unsigned long long>(ext.prefetch_checksum),
                 static_cast<unsigned long long>(ext.resident_checksum));
    failed = true;
  }
  {
    BenchRecord kr;
    kr.algorithm = "external-merge-prefetch";
    kr.threads = 1;
    kr.pairs_per_sec = ext.prefetch_pairs_per_sec;
    reporter.Add(std::move(kr));
  }

  // GCS update kernel: the SIMD dispatch tier vs forced scalar over the
  // same items (core/simd.h). Best of three shots; equal checksums are the
  // bit-identity contract, enforced baseline or not.
  GcsUpdateKernelResult gcs;
  for (int shot = 0; shot < 3; ++shot) {
    GcsUpdateKernelResult r = RunGcsUpdateKernel(GcsUpdateKernelOptions{});
    if (r.simd_hash_items_per_sec > gcs.simd_hash_items_per_sec) {
      gcs.simd_hash_items_per_sec = r.simd_hash_items_per_sec;
    }
    if (r.scalar_hash_items_per_sec > gcs.scalar_hash_items_per_sec) {
      gcs.scalar_hash_items_per_sec = r.scalar_hash_items_per_sec;
    }
    if (r.simd_update_items_per_sec > gcs.simd_update_items_per_sec) {
      gcs.simd_update_items_per_sec = r.simd_update_items_per_sec;
    }
    if (r.scalar_update_items_per_sec > gcs.scalar_update_items_per_sec) {
      gcs.scalar_update_items_per_sec = r.scalar_update_items_per_sec;
    }
    gcs.tier = r.tier;
    gcs.scalar_hash_checksum = r.scalar_hash_checksum;
    gcs.simd_hash_checksum = r.simd_hash_checksum;
    gcs.scalar_update_checksum = r.scalar_update_checksum;
    gcs.simd_update_checksum = r.simd_update_checksum;
    if (r.simd_hash_checksum != r.scalar_hash_checksum ||
        r.simd_update_checksum != r.scalar_update_checksum) {
      break;
    }
  }
  std::printf(
      "gcs-update-kernel: %s hash %.3e items/s, scalar hash %.3e items/s "
      "(%.2fx); UpdateBatch %.3e vs %.3e items/s (%.2fx)\n",
      SimdTierName(gcs.tier), gcs.simd_hash_items_per_sec,
      gcs.scalar_hash_items_per_sec, gcs.HashSpeedup(),
      gcs.simd_update_items_per_sec, gcs.scalar_update_items_per_sec,
      gcs.UpdateSpeedup());
  if (gcs.simd_hash_checksum != gcs.scalar_hash_checksum) {
    std::fprintf(stderr,
                 "FAIL gcs-update-kernel: %s hash checksum %llx != scalar "
                 "checksum %llx\n",
                 SimdTierName(gcs.tier),
                 static_cast<unsigned long long>(gcs.simd_hash_checksum),
                 static_cast<unsigned long long>(gcs.scalar_hash_checksum));
    failed = true;
  }
  if (gcs.simd_update_checksum != gcs.scalar_update_checksum) {
    std::fprintf(stderr,
                 "FAIL gcs-update-kernel: %s UpdateBatch checksum %llx != "
                 "scalar checksum %llx\n",
                 SimdTierName(gcs.tier),
                 static_cast<unsigned long long>(gcs.simd_update_checksum),
                 static_cast<unsigned long long>(gcs.scalar_update_checksum));
    failed = true;
  }
  {
    BenchRecord kr;
    kr.algorithm = "gcs-update-kernel";
    kr.threads = 1;
    kr.items_per_sec = gcs.simd_hash_items_per_sec;
    reporter.Add(std::move(kr));
  }

  // Skew reduce: the equi-depth partitioning proof. Zipf s=1.2 keys,
  // Send-V with the combiner off (one pair per record -- the rawest key
  // skew the engine can see), forced sorted shuffle, and a buffer small
  // enough that the merge runs over spill files. Equal-width key ranges
  // piled nearly every pair into the low range here; rank boundaries hold
  // every range within one pair of n/R, so reduce wall scales with
  // --reduce-tasks on exactly the datasets that used to defeat it.
  BenchDefaults skew_d = d;
  skew_d.alpha = 1.2;
  Measurement skew_r1;
  Measurement skew_r8;
  {
    ZipfDataset skew_ds(skew_d.ZipfOptions());
    {
      uint64_t checksum = 0;
      for (uint64_t j = 0; j < skew_ds.info().num_splits; ++j) {
        skew_ds.ScanSplit(j, [&checksum](uint64_t key) { checksum += key; });
      }
      std::printf("skew-reduce: warmed Zipf s=%.1f keys (checksum %llx)\n",
                  skew_d.alpha, static_cast<unsigned long long>(checksum));
    }
    auto run_skew = [&](int reduce_tasks) {
      BuildOptions o = skew_d.Build();
      o.threads = n_threads;
      o.reduce_tasks = reduce_tasks;
      o.force_sorted_shuffle = true;
      o.send_v_emit_per_record = true;
      o.send_v_disable_combiner = true;
      // ~1/8 of the per-record pair payload: plenty of real spill files.
      o.cost_model.shuffle_buffer_bytes = uint64_t{8} << 20;
      return Run(skew_ds, AlgorithmKind::kSendV, o, nullptr);
    };
    skew_r1 = run_skew(1);
    skew_r8 = run_skew(8);
    auto add_skew_record = [&](int rt, const Measurement& m) {
      BenchRecord sr;
      sr.algorithm = "skew-reduce";
      sr.n = skew_d.n;
      sr.u = skew_d.u;
      sr.m = skew_d.m;
      sr.threads = n_threads;
      sr.reduce_tasks = rt;
      sr.wall_ms = m.wall_ms;
      sr.reduce_wall_ms = m.reduce_wall_ms;
      sr.reduce_range_spread = m.reduce_range_spread;
      sr.shuffle_bytes = m.shuffle_bytes;
      sr.spill_fallbacks = m.spill_fallbacks;
      reporter.Add(std::move(sr));
    };
    add_skew_record(1, skew_r1);
    add_skew_record(8, skew_r8);
    const double skew_speedup = skew_r8.reduce_wall_ms > 0.0
                                    ? skew_r1.reduce_wall_ms / skew_r8.reduce_wall_ms
                                    : 0.0;
    std::printf(
        "skew-reduce: reduce wall %.1f ms @rt=1 vs %.1f ms @rt=8 (%.2fx), "
        "spread %.3f, spill files %llu\n",
        skew_r1.reduce_wall_ms, skew_r8.reduce_wall_ms, skew_speedup,
        skew_r8.reduce_range_spread,
        static_cast<unsigned long long>(skew_r8.spill_files));
    // Hard gates, baseline or not: the skew run must actually spill, and
    // reduce-task count must not change a single result bit.
    if (skew_r8.spill_files == 0) {
      std::fprintf(stderr,
                   "FAIL skew-reduce: expected forced spill, got 0 files\n");
      failed = true;
    }
    // A healthy disk must never take the resident-fallback recovery path;
    // a nonzero count here means spill writes are failing on the CI host.
    if (skew_r1.spill_fallbacks != 0 || skew_r8.spill_fallbacks != 0) {
      std::fprintf(stderr,
                   "FAIL skew-reduce: %llu spill fallbacks on a healthy run\n",
                   static_cast<unsigned long long>(skew_r1.spill_fallbacks +
                                                   skew_r8.spill_fallbacks));
      failed = true;
    }
    if (skew_r1.shuffle_bytes != skew_r8.shuffle_bytes ||
        skew_r1.seconds != skew_r8.seconds) {
      std::fprintf(stderr,
                   "FAIL skew-reduce: rt=1 vs rt=8 runs diverge (shuffle %llu "
                   "vs %llu bytes, simulated %.6f vs %.6f s)\n",
                   static_cast<unsigned long long>(skew_r1.shuffle_bytes),
                   static_cast<unsigned long long>(skew_r8.shuffle_bytes),
                   skew_r1.seconds, skew_r8.seconds);
      failed = true;
    }
  }

  if (!opt.baseline.empty()) {
    std::vector<BenchRecord> baseline;
    if (!ReadBenchJson(opt.baseline, &baseline) || baseline.empty()) {
      std::fprintf(stderr, "cannot read baseline %s (missing or no records)\n",
                   opt.baseline.c_str());
      return 2;
    }
    for (const BenchRecord& b : baseline) {
      if (b.algorithm == "blockwise-merge") {
        if (b.min_speedup > 0.0) {
          if (kernel.BlockwiseSpeedup() < b.min_speedup) {
            std::fprintf(stderr,
                         "FAIL blockwise-merge: %.2fx vs per-pair replay below "
                         "required %.2fx\n",
                         kernel.BlockwiseSpeedup(), b.min_speedup);
            failed = true;
          } else {
            std::printf("ok   blockwise-merge: %.2fx vs per-pair replay "
                        "(need %.2fx)\n",
                        kernel.BlockwiseSpeedup(), b.min_speedup);
          }
        }
        continue;
      }
      if (b.algorithm == "external-merge-prefetch") {
        if (b.min_speedup > 0.0) {
          // Overlap needs a second core to run the I/O workers on; a 1-CPU
          // host serializes them with the merge and can only report.
          if (std::thread::hardware_concurrency() < 2) {
            std::printf("ok   external-merge-prefetch: %.2fx vs inline reads "
                        "not gated on a 1-CPU host\n",
                        ext.PrefetchSpeedup());
          } else if (ext.PrefetchSpeedup() < b.min_speedup) {
            std::fprintf(stderr,
                         "FAIL external-merge-prefetch: %.2fx vs inline reads "
                         "below required %.2fx\n",
                         ext.PrefetchSpeedup(), b.min_speedup);
            failed = true;
          } else {
            std::printf("ok   external-merge-prefetch: %.2fx vs inline reads "
                        "(need %.2fx)\n",
                        ext.PrefetchSpeedup(), b.min_speedup);
          }
        }
        if (b.pairs_per_sec > 0.0) {
          double floor = b.pairs_per_sec * (1.0 - opt.rps_tolerance);
          if (ext.prefetch_pairs_per_sec < floor) {
            std::fprintf(stderr,
                         "FAIL external-merge-prefetch: %.3e pairs/s below "
                         "baseline %.3e pairs/s (-%.0f%% tolerance => %.3e)\n",
                         ext.prefetch_pairs_per_sec, b.pairs_per_sec,
                         opt.rps_tolerance * 100.0, floor);
            failed = true;
          } else {
            std::printf("ok   external-merge-prefetch: %.3e pairs/s within "
                        "baseline %.3e pairs/s (-%.0f%%)\n",
                        ext.prefetch_pairs_per_sec, b.pairs_per_sec,
                        opt.rps_tolerance * 100.0);
          }
        }
        continue;
      }
      if (b.algorithm == "external-merge-kernel") {
        if (b.pairs_per_sec > 0.0) {
          double floor = b.pairs_per_sec * (1.0 - opt.rps_tolerance);
          if (ext.external_pairs_per_sec < floor) {
            std::fprintf(stderr,
                         "FAIL external-merge-kernel: %.3e pairs/s below "
                         "baseline %.3e pairs/s (-%.0f%% tolerance => %.3e)\n",
                         ext.external_pairs_per_sec, b.pairs_per_sec,
                         opt.rps_tolerance * 100.0, floor);
            failed = true;
          } else {
            std::printf("ok   external-merge-kernel: %.3e pairs/s within "
                        "baseline %.3e pairs/s (-%.0f%%)\n",
                        ext.external_pairs_per_sec, b.pairs_per_sec,
                        opt.rps_tolerance * 100.0);
          }
        }
        continue;
      }
      if (b.algorithm == "gcs-update-kernel") {
        if (b.min_speedup > 0.0) {
          // The speedup gate needs a vector tier; a scalar-only host
          // compares the scalar table against itself and can only report.
          if (gcs.tier == SimdTier::kScalar) {
            std::printf("ok   gcs-update-kernel: %.2fx hash speedup not gated "
                        "on a scalar-only host\n",
                        gcs.HashSpeedup());
          } else if (gcs.HashSpeedup() < b.min_speedup) {
            std::fprintf(stderr,
                         "FAIL gcs-update-kernel: %s tier %.2fx vs scalar "
                         "below required %.2fx\n",
                         SimdTierName(gcs.tier), gcs.HashSpeedup(),
                         b.min_speedup);
            failed = true;
          } else {
            std::printf("ok   gcs-update-kernel: %s tier %.2fx vs scalar "
                        "(need %.2fx)\n",
                        SimdTierName(gcs.tier), gcs.HashSpeedup(),
                        b.min_speedup);
          }
        }
        if (b.items_per_sec > 0.0) {
          double floor = b.items_per_sec * (1.0 - opt.rps_tolerance);
          if (gcs.simd_hash_items_per_sec < floor) {
            std::fprintf(stderr,
                         "FAIL gcs-update-kernel: %.3e items/s below baseline "
                         "%.3e items/s (-%.0f%% tolerance => %.3e)\n",
                         gcs.simd_hash_items_per_sec, b.items_per_sec,
                         opt.rps_tolerance * 100.0, floor);
            failed = true;
          } else {
            std::printf("ok   gcs-update-kernel: %.3e items/s within baseline "
                        "%.3e items/s (-%.0f%%)\n",
                        gcs.simd_hash_items_per_sec, b.items_per_sec,
                        opt.rps_tolerance * 100.0);
          }
        }
        continue;
      }
      if (b.algorithm == "skew-reduce") {
        if (b.max_spread > 0.0) {
          if (skew_r8.reduce_range_spread <= 0.0 ||
              skew_r8.reduce_range_spread > b.max_spread) {
            std::fprintf(stderr,
                         "FAIL skew-reduce: per-range spread %.3f at rt=8 "
                         "outside (0, %.2f]\n",
                         skew_r8.reduce_range_spread, b.max_spread);
            failed = true;
          } else {
            std::printf("ok   skew-reduce: per-range spread %.3f at rt=8 "
                        "(max %.2f)\n",
                        skew_r8.reduce_range_spread, b.max_spread);
          }
        }
        if (b.min_speedup > 0.0) {
          const double got = skew_r8.reduce_wall_ms > 0.0
                                 ? skew_r1.reduce_wall_ms / skew_r8.reduce_wall_ms
                                 : 0.0;
          // Reduce parallelism needs cores: a single-CPU host (or a
          // --threads=1 run) executes the partitions sequentially and can
          // only report, not gate.
          if (n_threads < 2 || std::thread::hardware_concurrency() < 2) {
            std::printf("ok   skew-reduce: %.2fx reduce speedup not gated at "
                        "%d thread(s), %u core(s)\n",
                        got, n_threads, std::thread::hardware_concurrency());
          } else if (got < b.min_speedup) {
            std::fprintf(stderr,
                         "FAIL skew-reduce: reduce wall speedup %.2fx (rt=1 "
                         "-> rt=8) below required %.2fx\n",
                         got, b.min_speedup);
            failed = true;
          } else {
            std::printf("ok   skew-reduce: reduce wall speedup %.2fx (rt=1 "
                        "-> rt=8, need %.2fx)\n",
                        got, b.min_speedup);
          }
        }
        continue;
      }
      if (b.algorithm != "shuffle-merge-kernel") continue;
      if (b.min_speedup > 0.0) {
        if (kernel.Speedup() < b.min_speedup) {
          std::fprintf(stderr,
                       "FAIL shuffle-merge-kernel: %.2fx vs pair-vector "
                       "reference below required %.2fx\n",
                       kernel.Speedup(), b.min_speedup);
          failed = true;
        } else {
          std::printf("ok   shuffle-merge-kernel: %.2fx vs pair-vector "
                      "reference (need %.2fx)\n",
                      kernel.Speedup(), b.min_speedup);
        }
      }
      if (b.pairs_per_sec > 0.0) {
        double floor = b.pairs_per_sec * (1.0 - opt.rps_tolerance);
        if (kernel.columnar_pairs_per_sec < floor) {
          std::fprintf(stderr,
                       "FAIL shuffle-merge-kernel: %.3e pairs/s below "
                       "baseline %.3e pairs/s (-%.0f%% tolerance => %.3e)\n",
                       kernel.columnar_pairs_per_sec, b.pairs_per_sec,
                       opt.rps_tolerance * 100.0, floor);
          failed = true;
        } else {
          std::printf("ok   shuffle-merge-kernel: %.3e pairs/s within "
                      "baseline %.3e pairs/s (-%.0f%%)\n",
                      kernel.columnar_pairs_per_sec, b.pairs_per_sec,
                      opt.rps_tolerance * 100.0);
        }
      }
    }
    for (size_t i = 0; i < kinds.size(); ++i) {
      const char* algo = AlgorithmName(kinds[i]);
      for (const BenchRecord& b : baseline) {
        if (b.algorithm != algo) continue;
        if (b.threads == 1) {
          // Serial record: the map-throughput floor. Wall-clock is gated on
          // the N-thread record below.
          if (b.map_records_per_sec <= 0.0) continue;
          double floor = b.map_records_per_sec * (1.0 - opt.rps_tolerance);
          double got = serial_runs[i].MapRecordsPerSec();
          if (got < floor) {
            std::fprintf(stderr,
                         "FAIL %s: map throughput %.3e rec/s below baseline "
                         "%.3e rec/s (-%.0f%% tolerance => %.3e)\n",
                         algo, got, b.map_records_per_sec,
                         opt.rps_tolerance * 100.0, floor);
            failed = true;
          } else {
            std::printf("ok   %s: map throughput %.3e rec/s within baseline "
                        "%.3e rec/s (-%.0f%%)\n",
                        algo, got, b.map_records_per_sec,
                        opt.rps_tolerance * 100.0);
          }
          continue;
        }
        if (b.wall_ms <= 0.0) continue;
        double limit = b.wall_ms * (1.0 + opt.tolerance);
        if (parallel_runs[i].wall_ms > limit) {
          std::fprintf(stderr,
                       "FAIL %s: wall %.1f ms exceeds baseline %.1f ms "
                       "(+%.0f%% tolerance => %.1f ms)\n",
                       algo, parallel_runs[i].wall_ms, b.wall_ms,
                       opt.tolerance * 100.0, limit);
          failed = true;
        } else {
          std::printf("ok   %s: wall %.1f ms within baseline %.1f ms (+%.0f%%)\n",
                      algo, parallel_runs[i].wall_ms, b.wall_ms,
                      opt.tolerance * 100.0);
        }
      }
    }
  }

  bool wrote = opt.out.empty() ? reporter.WriteFile() : reporter.WriteFileTo(opt.out);
  if (!wrote) return 1;
  std::printf("wrote %s (%zu records)\n",
              opt.out.empty() ? ("BENCH_" + opt.name + ".json").c_str()
                              : opt.out.c_str(),
              reporter.records().size());
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main(int argc, char** argv) { return wavemr::bench::Main(argc, argv); }
