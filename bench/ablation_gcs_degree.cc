// Ablation: the GCS search degree (GCS-2/4/8/16). Higher degree means fewer
// hierarchy levels (cheaper per-item updates -- why the paper picks GCS-8)
// but coarser group energies during the top-k search.
#include "common/bench_common.h"

namespace wavemr {
namespace bench {
namespace {

void Main() {
  BenchDefaults d = BenchDefaults::FromEnv();
  PrintFigureHeader("Ablation: GCS search degree (paper uses GCS-8)",
                    "update cost vs recovery quality trade-off", d);

  ZipfDataset ds(d.ZipfOptions());
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  Table table("Send-Sketch under different GCS degrees",
              {"degree", "levels", "updates/item", "comm (bytes)", "time (s)", "SSE"});
  for (uint32_t bits : {1u, 2u, 3u, 4u}) {
    BuildOptions opt = d.Build();
    opt.gcs.degree_bits = bits;
    WaveletGcs probe(ds.info().domain_size, opt.gcs);
    Measurement m = Run(ds, AlgorithmKind::kSendSketch, opt, &truth);
    table.AddRow({"GCS-" + std::to_string(1u << bits),
                  std::to_string(probe.num_levels()),
                  std::to_string(probe.CounterUpdatesPerDataPoint()),
                  FmtBytes(m.comm_bytes), FmtSeconds(m.seconds), FmtSci(m.sse)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wavemr

int main() { wavemr::bench::Main(); }
