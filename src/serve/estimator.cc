#include "serve/estimator.h"

#include <algorithm>
#include <unordered_map>

#include "core/logging.h"
#include "wavelet/haar.h"

namespace wavemr {

double PointEstimate(const HistogramSnapshot& snapshot, uint64_t x) {
  const uint64_t u = snapshot.domain_size();
  WAVEMR_CHECK_LT(x, u);
  const std::vector<uint64_t>& idx = snapshot.indices();
  const std::vector<double>& val = snapshot.values();

  // Accumulate in ascending index order -- the order the naive sweep visits
  // nonzero terms in -- so the result is bit-identical to it.
  double est = 0.0;
  if (snapshot.has_average()) est += val[0] * BasisValue(0, x, u);
  const uint32_t levels = snapshot.num_levels();
  for (uint32_t j = 0; j < levels; ++j) {
    auto [first, last] = snapshot.LevelRange(j);
    if (first == last) continue;
    // The one level-j coefficient whose support contains x.
    const uint64_t path = (uint64_t{1} << j) + (x >> (levels - j));
    auto it = std::lower_bound(idx.begin() + static_cast<ptrdiff_t>(first),
                               idx.begin() + static_cast<ptrdiff_t>(last), path);
    if (it != idx.begin() + static_cast<ptrdiff_t>(last) && *it == path) {
      const size_t pos = static_cast<size_t>(it - idx.begin());
      est += val[pos] * BasisValue(path, x, u);
    }
  }
  return est;
}

double RangeSum(const HistogramSnapshot& snapshot, uint64_t lo, uint64_t hi) {
  const uint64_t u = snapshot.domain_size();
  WAVEMR_CHECK_LE(lo, hi);
  WAVEMR_CHECK_LE(hi, u);
  double est = 0.0;
  if (lo >= hi) return est;  // every basis term of an empty range is 0
  const std::vector<uint64_t>& idx = snapshot.indices();
  const std::vector<double>& val = snapshot.values();

  if (snapshot.has_average()) est += val[0] * BasisRangeSum(0, lo, hi, u);
  const uint32_t levels = snapshot.num_levels();
  for (uint32_t j = 0; j < levels; ++j) {
    auto [first, last] = snapshot.LevelRange(j);
    if (first == last) continue;
    // Level-j supports are blocks of u/2^j keys; only coefficients whose
    // block intersects [lo, hi) contribute a nonzero basis range sum.
    const uint64_t block = u >> j;
    const uint64_t lo_idx = (uint64_t{1} << j) + lo / block;
    const uint64_t hi_idx = (uint64_t{1} << j) + (hi - 1) / block;
    auto begin = std::lower_bound(idx.begin() + static_cast<ptrdiff_t>(first),
                                  idx.begin() + static_cast<ptrdiff_t>(last),
                                  lo_idx);
    auto end = std::upper_bound(begin, idx.begin() + static_cast<ptrdiff_t>(last),
                                hi_idx);
    for (auto it = begin; it != end; ++it) {
      const size_t pos = static_cast<size_t>(it - idx.begin());
      est += val[pos] * BasisRangeSum(*it, lo, hi, u);
    }
  }
  return est;
}

std::vector<double> Reconstruct(const HistogramSnapshot& snapshot) {
  std::vector<double> dense(snapshot.domain_size(), 0.0);
  const std::vector<uint64_t>& idx = snapshot.indices();
  const std::vector<double>& val = snapshot.values();
  for (size_t i = 0; i < idx.size(); ++i) dense[idx[i]] = val[i];
  return InverseHaar(dense);
}

double SseAgainstTrueCoefficients(const HistogramSnapshot& snapshot,
                                  const std::vector<WCoeff>& true_coeffs) {
  // Start from "drop everything" (SSE = total energy), then for each kept
  // coefficient swap w^2 for (w - what)^2. Same accumulation order as the
  // pre-snapshot implementation, so SSE figures are bit-stable across the
  // migration.
  std::unordered_map<uint64_t, double> truth;
  truth.reserve(true_coeffs.size() * 2);
  double sse = 0.0;
  for (const WCoeff& c : true_coeffs) {
    truth.emplace(c.index, c.value);
    sse += c.value * c.value;
  }
  const std::vector<uint64_t>& idx = snapshot.indices();
  const std::vector<double>& val = snapshot.values();
  for (size_t i = 0; i < idx.size(); ++i) {
    auto it = truth.find(idx[i]);
    double w = it == truth.end() ? 0.0 : it->second;
    sse -= w * w;
    double d = w - val[i];
    sse += d * d;
  }
  return sse;
}

}  // namespace wavemr
