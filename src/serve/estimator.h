#ifndef WAVEMR_SERVE_ESTIMATOR_H_
#define WAVEMR_SERVE_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "serve/snapshot.h"
#include "wavelet/coefficient.h"

namespace wavemr {

/// The single implementation of synopsis estimation math. Every consumer --
/// the query server, the bench figures' SSE columns, the CLI's --evaluate,
/// the tests -- routes through these functions, so an estimate served over
/// the wire is bit-identical to one computed next to the builder.
///
/// All of them are pure reads of an immutable snapshot: safe to call from
/// any number of threads concurrently.
///
/// Bit-identity contract: PointEstimate and RangeSum return exactly the
/// bits of the naive index-ascending loop
///     est = 0; for (i, w) in coeffs: est += w * Basis{Value,RangeSum}(i, ..)
/// (the pre-snapshot WaveletHistogram members). The error-tree layout only
/// lets them skip terms whose basis factor is exactly +-0.0, which never
/// changes an IEEE accumulator that starts at +0.0; estimator tests pin
/// this bit for bit.

/// Estimated frequency of key x. O(log u) lookups along the root-to-leaf
/// error-tree path instead of the naive O(k) sweep.
double PointEstimate(const HistogramSnapshot& snapshot, uint64_t x);

/// Estimated sum of frequencies over [lo, hi). Visits only the per-level
/// index runs whose supports overlap the range: O(log u + answer terms).
double RangeSum(const HistogramSnapshot& snapshot, uint64_t lo, uint64_t hi);

/// Full reconstructed frequency vector (length u) via the dense inverse
/// transform; O(u), intended for small domains and testing.
std::vector<double> Reconstruct(const HistogramSnapshot& snapshot);

/// Sum of squared errors between the signal the snapshot represents and the
/// true signal whose complete (nonzero) coefficient set is `true_coeffs`.
/// By Parseval: SSE = sum_{kept i} (w_i - what_i)^2 + sum_{dropped i} w_i^2.
double SseAgainstTrueCoefficients(const HistogramSnapshot& snapshot,
                                  const std::vector<WCoeff>& true_coeffs);

}  // namespace wavemr

#endif  // WAVEMR_SERVE_ESTIMATOR_H_
