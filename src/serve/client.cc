#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace wavemr {

namespace {

Status SendAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send(): " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    return Status::IOError("recv(): " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ServeClient::Connect(const std::string& host, int port) {
  Close();
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IOError("cannot resolve " + host + ": " +
                           ::gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      break;
    }
    last = Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) return last;
  return Status::OK();
}

StatusOr<std::string> ServeClient::RoundTrip(const QueryRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  const std::string frame = WrapFrame(EncodeRequest(request));
  WAVEMR_RETURN_IF_ERROR(SendAll(fd_, frame.data(), frame.size()));

  char len_bytes[sizeof(uint32_t)];
  WAVEMR_RETURN_IF_ERROR(RecvAll(fd_, len_bytes, sizeof(len_bytes)));
  uint32_t len;
  std::memcpy(&len, len_bytes, sizeof(len));
  if (len > kMaxFramePayloadBytes) {
    Close();  // stream integrity lost; don't try to resync
    return Status::IOError("oversized response frame (" + std::to_string(len) +
                           " bytes)");
  }
  std::string payload(len, '\0');
  WAVEMR_RETURN_IF_ERROR(RecvAll(fd_, payload.data(), len));
  return payload;
}

StatusOr<EstimateResult> ServeClient::Point(uint64_t x) {
  QueryRequest req;
  req.op = QueryOp::kPoint;
  req.point_x = x;
  auto payload = RoundTrip(req);
  if (!payload.ok()) return payload.status();
  return DecodeEstimateResponse(*payload);
}

StatusOr<EstimateResult> ServeClient::Range(uint64_t lo, uint64_t hi) {
  QueryRequest req;
  req.op = QueryOp::kRange;
  req.range_lo = lo;
  req.range_hi = hi;
  auto payload = RoundTrip(req);
  if (!payload.ok()) return payload.status();
  return DecodeEstimateResponse(*payload);
}

StatusOr<TopKResult> ServeClient::TopK(uint32_t count) {
  QueryRequest req;
  req.op = QueryOp::kTopK;
  req.topk_count = count;
  auto payload = RoundTrip(req);
  if (!payload.ok()) return payload.status();
  return DecodeTopKResponse(*payload);
}

StatusOr<ServeStats> ServeClient::Stats() {
  QueryRequest req;
  req.op = QueryOp::kStats;
  auto payload = RoundTrip(req);
  if (!payload.ok()) return payload.status();
  return DecodeStatsResponse(*payload);
}

StatusOr<uint64_t> ServeClient::Rebuild() {
  QueryRequest req;
  req.op = QueryOp::kRebuild;
  auto payload = RoundTrip(req);
  if (!payload.ok()) return payload.status();
  return DecodeRebuildResponse(*payload);
}

}  // namespace wavemr
