#include "serve/serve_main.h"

#include <csignal>
#include <cstdio>
#include <utility>

#include "core/failpoint.h"
#include "core/io.h"
#include "data/file_dataset.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace wavemr {

void RegisterDataFlags(FlagParser* parser, DataArgs* args) {
  parser->String("input", &args->input,
                 "binary file of fixed-length records (key first)");
  parser->String("generate", &args->generate,
                 "synthetic dataset instead of --input: zipf|worldcup");
  parser->U64("n", &args->n, "generated dataset size");
  parser->F64("alpha", &args->alpha, "generated Zipf skew");
  parser->U64("u", &args->u, "key domain size (power of two)");
  parser->U64("splits", &args->splits, "number of input splits (mappers)");
  parser->U64("record-bytes", &args->record_bytes,
              "record size of the input file (>= 4)");
  parser->U64("seed", &args->seed, "RNG seed for generation and sampling");
}

StatusOr<std::unique_ptr<Dataset>> MakeDataset(const DataArgs& args) {
  if (args.input.empty() == args.generate.empty()) {
    return Status::InvalidArgument(
        "exactly one of --input / --generate is required");
  }
  if (!args.input.empty()) {
    auto file = FileDataset::Open(args.input,
                                  static_cast<uint32_t>(args.record_bytes),
                                  args.u, args.splits);
    if (!file.ok()) return file.status();
    return std::unique_ptr<Dataset>(
        std::make_unique<FileDataset>(std::move(*file)));
  }
  if (args.generate == "zipf") {
    ZipfDatasetOptions z;
    z.num_records = args.n;
    z.domain_size = args.u;
    z.alpha = args.alpha;
    z.num_splits = args.splits;
    z.record_bytes = static_cast<uint32_t>(args.record_bytes);
    z.seed = args.seed;
    return std::unique_ptr<Dataset>(std::make_unique<ZipfDataset>(z));
  }
  if (args.generate == "worldcup") {
    WorldCupDatasetOptions w;
    w.num_records = args.n;
    w.num_clients = std::max<uint64_t>(args.u >> 6, 2);
    w.num_objects = std::min<uint64_t>(args.u, 64);
    w.num_splits = args.splits;
    w.seed = args.seed;
    return std::unique_ptr<Dataset>(std::make_unique<WorldCupDataset>(w));
  }
  return Status::InvalidArgument("unknown --generate (expected zipf|worldcup): " +
                                 args.generate);
}

void RegisterBuildFlags(FlagParser* parser, BuildArgs* args) {
  parser->String("algo", &args->algo,
                 "send-v|send-coef|h-wtopk|basic-s|improved-s|twolevel-s|"
                 "send-sketch");
  parser->U64("k", &args->k, "synopsis size (retained coefficients)");
  parser->F64("eps", &args->eps, "sampling error parameter");
  parser->I32("threads", &args->threads,
              "map-task worker threads (0 = all hardware threads; results "
              "identical for any value)");
  parser->I32("reduce-tasks", &args->reduce_tasks,
              "equi-depth reduce partitions for sorted rounds (0 = match "
              "--threads; identical results)");
  parser->U64("shuffle-buffer-bytes", &args->shuffle_buffer_bytes,
              "retained-run budget before the shuffle spills to disk (0 = "
              "CostModel default, 256 MiB; identical results)");
  parser->Bool("force-sorted-shuffle", &args->force_sorted_shuffle,
               "sorted reducer delivery on every round (routes all algorithms "
               "through the retained-run/spill path)");
  parser->String("spill-io", &args->spill_io,
                 "spill I/O backend: sync|async|auto (async overlaps spill "
                 "writes and prefetches merge reads; identical results)");
  parser->I32("io-queue-depth", &args->io_queue_depth,
              "async spill writes in flight before the driver blocks on the "
              "oldest (identical results)");
  parser->I32("io-prefetch-depth", &args->io_prefetch_depth,
              "merge-cursor blocks read ahead on the async backend (0 = "
              "inline reads; identical results)");
  parser->String("failpoints", &args->failpoints,
                 "fault-injection spec, site=action[,site=action...] -- see "
                 "docs/robustness.md (results stay bit-identical; only "
                 "recovery counters change)");
}

BuildOptions BuildArgs::ToBuildOptions(uint64_t seed) const {
  BuildOptions options;
  options.k = static_cast<size_t>(k);
  options.epsilon = eps;
  options.seed = seed;
  options.threads = threads;
  options.reduce_tasks = reduce_tasks;
  options.force_sorted_shuffle = force_sorted_shuffle;
  // The consolidated spelling: 0 falls through to the deprecated
  // CostModel::shuffle_buffer_bytes default inside the engine.
  options.io.shuffle_buffer_bytes = shuffle_buffer_bytes;
  auto backend = ParseIoBackendKind(spill_io);
  if (backend.ok()) options.io.backend = *backend;  // main validated already
  options.io.queue_depth = io_queue_depth;
  options.io.prefetch_depth = io_prefetch_depth;
  return options;
}

namespace {

int FlagError(const Status& status, const FlagParser& parser) {
  std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
               parser.Help().c_str());
  return 2;
}

}  // namespace

int ServeMain(int argc, char* const* argv, int start) {
  // A client that disconnects mid-response must not kill the server: sends
  // use MSG_NOSIGNAL, and this covers every other pipe-like write.
  std::signal(SIGPIPE, SIG_IGN);

  DataArgs data;
  BuildArgs build;
  std::string snapshot_file;
  int port = 0;
  int workers = 0;
  int max_connections = 0;
  int idle_timeout_ms = 0;
  int drain_timeout_ms = 2000;
  FlagParser parser(
      "wavemr_serve (--snapshot=FILE | --input=FILE | --generate=zipf|"
      "worldcup) [options]");
  parser.String("snapshot", &snapshot_file,
                "serve a saved snapshot file instead of building one");
  parser.I32("port", &port, "TCP port (0 = ephemeral; the bound port is "
                            "printed on startup)");
  parser.I32("workers", &workers,
             "query worker threads (0 = all hardware threads)");
  parser.I32("max-connections", &max_connections,
             "connection cap; clients past it get an Unavailable reject "
             "frame (0 = unlimited)");
  parser.I32("idle-timeout-ms", &idle_timeout_ms,
             "close connections idle this long; in-flight queries are never "
             "evicted (0 = never)");
  parser.I32("drain-timeout-ms", &drain_timeout_ms,
             "shutdown grace period for delivering in-flight responses");
  RegisterDataFlags(&parser, &data);
  RegisterBuildFlags(&parser, &build);

  Status st = parser.Parse(argc, argv, start);
  if (!st.ok()) return FlagError(st, parser);
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }
  if (!build.failpoints.empty()) {
    st = Failpoints::ArmFromSpec(build.failpoints);
    if (!st.ok()) return FlagError(st, parser);
  }
  if (auto backend = ParseIoBackendKind(build.spill_io); !backend.ok()) {
    return FlagError(backend.status(), parser);
  }

  SnapshotRegistry registry;
  QueryServer::RebuildFn rebuild;

  if (!snapshot_file.empty()) {
    if (!data.input.empty() || !data.generate.empty()) {
      return FlagError(Status::InvalidArgument(
                           "--snapshot excludes --input / --generate"),
                       parser);
    }
    auto snap = HistogramSnapshot::ReadFile(snapshot_file);
    if (!snap.ok()) {
      std::fprintf(stderr, "cannot load snapshot: %s\n",
                   snap.status().ToString().c_str());
      return 1;
    }
    registry.Publish(std::make_shared<HistogramSnapshot>(std::move(*snap)));
    // Rebuild = reload: republishes whatever the file holds now.
    rebuild = [snapshot_file](uint64_t)
        -> StatusOr<std::shared_ptr<const HistogramSnapshot>> {
      auto reloaded = HistogramSnapshot::ReadFile(snapshot_file);
      if (!reloaded.ok()) return reloaded.status();
      return std::shared_ptr<const HistogramSnapshot>(
          std::make_shared<HistogramSnapshot>(std::move(*reloaded)));
    };
  } else {
    auto dataset_or = MakeDataset(data);
    if (!dataset_or.ok()) return FlagError(dataset_or.status(), parser);
    std::shared_ptr<Dataset> dataset = std::move(*dataset_or);
    auto kind = ParseAlgorithmKind(build.algo);
    if (!kind.ok()) return FlagError(kind.status(), parser);
    auto result = BuildWaveletHistogram(*dataset, *kind,
                                        build.ToBuildOptions(data.seed));
    if (!result.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    registry.Publish(
        std::make_shared<HistogramSnapshot>(result->ToSnapshot()));
    // Rebuild = re-run the build with a fresh seed, so sampling algorithms
    // publish a visibly new version while readers keep answering.
    rebuild = [dataset, kind = *kind, build, base_seed = data.seed](
                  uint64_t count)
        -> StatusOr<std::shared_ptr<const HistogramSnapshot>> {
      auto rebuilt = BuildWaveletHistogram(
          *dataset, kind, build.ToBuildOptions(base_seed + count));
      if (!rebuilt.ok()) return rebuilt.status();
      return std::shared_ptr<const HistogramSnapshot>(
          std::make_shared<HistogramSnapshot>(rebuilt->ToSnapshot()));
    };
  }

  // Block the shutdown signals before spawning server threads so they all
  // inherit the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  ServerOptions options;
  options.port = port;
  options.workers = workers;
  options.max_connections = max_connections;
  options.idle_timeout_ms = idle_timeout_ms;
  options.drain_timeout_ms = drain_timeout_ms;
  QueryServer server(&registry, options, std::move(rebuild));
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", st.ToString().c_str());
    return 1;
  }

  {
    SnapshotRegistry::ReadGuard guard = registry.Acquire();
    std::printf("serving %s snapshot: u=%llu terms=%zu version=%llu\n",
                guard->metadata().algorithm.c_str(),
                static_cast<unsigned long long>(guard->domain_size()),
                guard->num_terms(),
                static_cast<unsigned long long>(guard.version()));
  }
  std::printf("wavemr_serve listening on port %d\n", server.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: shutting down after %llu queries\n", sig,
               static_cast<unsigned long long>(server.queries_served()));
  server.Stop();
  return 0;
}

}  // namespace wavemr
