#ifndef WAVEMR_SERVE_SERVER_H_
#define WAVEMR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "core/status.h"
#include "serve/registry.h"

namespace wavemr {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (see QueryServer::port).
  int port = 0;
  /// Worker threads answering queries; 0 = one per hardware thread.
  int workers = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Accepted-connection cap; 0 = unlimited. A client arriving at the cap
  /// gets a best-effort Unavailable reject frame and an immediate close
  /// (load shedding) instead of silently starving in the accept queue.
  int max_connections = 0;
  /// Connections with no request activity for this long are closed by the
  /// reactor; 0 = never. Connections with queued or in-flight work are
  /// never evicted, however slow their queries run.
  int idle_timeout_ms = 0;
  /// Stop() grace period: the listener closes immediately, but connections
  /// with in-flight queries get this long to receive their responses before
  /// the hard teardown.
  int drain_timeout_ms = 2000;
};

/// The wavemr_serve engine: an epoll reactor thread owns every socket
/// (accept, frame reassembly, writes the workers could not finish), a fixed
/// ThreadPool of workers answers decoded queries against whatever snapshot
/// version they pin from the SnapshotRegistry. Publishing a new version
/// never blocks the readers: a rebuild (the kRebuild op, or any external
/// publisher) swaps the epoch pointer while in-flight queries finish on the
/// version they pinned.
///
/// Request frames on one connection are answered in order (per-connection
/// dispatch queue); different connections proceed fully in parallel.
///
/// Linux-only (epoll); Start returns Unimplemented elsewhere.
class QueryServer {
 public:
  /// Rebuild hook for QueryOp::kRebuild: invoked on a worker thread with a
  /// 1-based rebuild counter; the returned snapshot is published. Leave
  /// empty to reject rebuild requests.
  using RebuildFn =
      std::function<StatusOr<std::shared_ptr<const HistogramSnapshot>>(
          uint64_t rebuild_count)>;

  /// The registry must outlive the server. Publish at least one snapshot
  /// before (or after) Start; queries before the first publish get
  /// FailedPrecondition responses.
  QueryServer(SnapshotRegistry* registry, ServerOptions options,
              RebuildFn rebuild = nullptr);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens and starts the reactor + workers. Non-blocking.
  Status Start();

  /// The bound port (resolves option port 0 after Start).
  int port() const;

  /// Total requests answered (including error responses).
  uint64_t queries_served() const;

  /// Connections rejected at the max_connections cap since Start.
  uint64_t connections_shed() const;

  /// Connections evicted by the idle timeout since Start.
  uint64_t idle_disconnects() const;

  /// Stops accepting, closes connections, joins reactor and workers.
  /// Idempotent; also run by the destructor.
  void Stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wavemr

#endif  // WAVEMR_SERVE_SERVER_H_
