#ifndef WAVEMR_SERVE_CLIENT_H_
#define WAVEMR_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "serve/protocol.h"

namespace wavemr {

/// Blocking client for the wavemr_serve wire protocol. One TCP connection;
/// each call sends a request frame and waits for its response frame, so a
/// single client issues queries strictly in order (open several clients for
/// concurrency). Not thread-safe.
///
/// Estimates come back bit-identical to the server-side computation: the
/// protocol ships raw IEEE double bits.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  /// Connects to host:port. `host` is a numeric address or name
  /// (getaddrinfo). Replaces any previous connection.
  Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Estimated frequency of key x.
  StatusOr<EstimateResult> Point(uint64_t x);
  /// Estimated sum of frequencies over [lo, hi).
  StatusOr<EstimateResult> Range(uint64_t lo, uint64_t hi);
  /// The `count` largest-magnitude retained coefficients.
  StatusOr<TopKResult> TopK(uint32_t count);
  /// Server + snapshot statistics.
  StatusOr<ServeStats> Stats();
  /// Asks the server to rebuild and publish a new snapshot version.
  StatusOr<uint64_t> Rebuild();

 private:
  /// Sends one framed request, receives one framed response payload.
  StatusOr<std::string> RoundTrip(const QueryRequest& request);

  int fd_ = -1;
};

}  // namespace wavemr

#endif  // WAVEMR_SERVE_CLIENT_H_
