#include "serve/registry.h"

#include <thread>

#include "core/bitops.h"
#include "core/logging.h"

namespace wavemr {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SnapshotRegistry::SnapshotRegistry(size_t num_slots)
    : slots_(RoundUpPow2(num_slots < 2 ? 2 : num_slots)),
      mask_(slots_.size() - 1) {}

uint64_t SnapshotRegistry::Publish(
    std::shared_ptr<const HistogramSnapshot> snapshot) {
  WAVEMR_CHECK(snapshot != nullptr) << "cannot publish a null snapshot";
  std::lock_guard<std::mutex> lock(publish_mu_);
  const uint64_t next = version_.load(std::memory_order_seq_cst) + 1;
  Slot& slot = slots_[next & mask_];
  // Drain stragglers still pinning the version this slot last held (next -
  // num_slots). Readers that pin transiently and fail validation unpin
  // immediately, so this loop only waits on genuinely held guards.
  while (slot.pins.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  slot.snapshot = std::move(snapshot);
  version_.store(next, std::memory_order_seq_cst);
  return next;
}

SnapshotRegistry::ReadGuard SnapshotRegistry::Acquire() const {
  for (;;) {
    const uint64_t v = version_.load(std::memory_order_seq_cst);
    if (v == 0) return ReadGuard();
    Slot& slot = slots_[v & mask_];
    slot.pins.fetch_add(1, std::memory_order_seq_cst);
    // Revalidate: our slot is untouched since version v as long as no
    // publisher has advanced to within one lap (see header). The seq_cst
    // fence pair with Publish makes "pin not yet visible to the publisher's
    // drain poll" imply "publisher's version store visible here".
    const uint64_t w = version_.load(std::memory_order_seq_cst);
    if (w - v <= slots_.size() - 2) {
      return ReadGuard(&slot, slot.snapshot.get(), v);
    }
    slot.pins.fetch_sub(1, std::memory_order_seq_cst);
  }
}

}  // namespace wavemr
