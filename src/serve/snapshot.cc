#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/bitops.h"
#include "core/crc32c.h"
#include "core/logging.h"
#include "histogram/algorithm.h"

namespace wavemr {

namespace {

/// "WMSNAP" + 2-digit format version, little-endian packed. Version 02
/// appended the CRC32C trailer; 01 files (no checksum) are rejected with a
/// rebuild hint rather than trusted.
constexpr uint64_t kSnapshotMagicV1 = 0x3130'50414E534D57ull;  // "WMSNAP01"
constexpr uint64_t kSnapshotMagic = 0x3230'50414E534D57ull;    // "WMSNAP02"

std::string Hex32(uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

}  // namespace

HistogramSnapshot HistogramSnapshot::FromCoefficients(uint64_t u,
                                                      std::vector<WCoeff> coeffs,
                                                      Metadata metadata) {
  WAVEMR_CHECK(IsPowerOfTwo(u)) << "domain size must be a power of two, got " << u;
  std::sort(coeffs.begin(), coeffs.end(),
            [](const WCoeff& a, const WCoeff& b) { return a.index < b.index; });
  HistogramSnapshot s;
  s.u_ = u;
  s.meta_ = std::move(metadata);
  s.indices_.reserve(coeffs.size());
  s.values_.reserve(coeffs.size());
  for (const WCoeff& c : coeffs) {
    WAVEMR_CHECK_LT(c.index, u);
    s.indices_.push_back(c.index);
    s.values_.push_back(c.value);
  }
  s.BuildIndexes();
  return s;
}

HistogramSnapshot HistogramSnapshot::FromHistogram(
    const WaveletHistogram& histogram, Metadata metadata) {
  return FromCoefficients(histogram.domain_size(), histogram.coefficients(),
                          std::move(metadata));
}

uint32_t HistogramSnapshot::num_levels() const { return Log2Floor(u_); }

void HistogramSnapshot::BuildIndexes() {
  for (size_t i = 1; i < indices_.size(); ++i) {
    WAVEMR_CHECK_LT(indices_[i - 1], indices_[i])
        << "coefficient indices must be unique";
  }
  const uint32_t levels = num_levels();
  level_offsets_.assign(levels + 2, 0);
  size_t pos = 0;
  for (uint32_t l = 0; l <= levels; ++l) {
    const uint64_t bound = uint64_t{1} << l;  // first index of detail level l
    while (pos < indices_.size() && indices_[pos] < bound) ++pos;
    level_offsets_[l + 1] = pos;
  }
  WAVEMR_CHECK_EQ(level_offsets_[levels + 1], indices_.size());

  magnitude_order_.resize(indices_.size());
  for (size_t i = 0; i < magnitude_order_.size(); ++i) {
    magnitude_order_[i] = static_cast<uint32_t>(i);
  }
  std::sort(magnitude_order_.begin(), magnitude_order_.end(),
            [this](uint32_t a, uint32_t b) {
              double ma = std::fabs(values_[a]);
              double mb = std::fabs(values_[b]);
              if (ma != mb) return ma > mb;
              return indices_[a] < indices_[b];
            });
}

std::pair<size_t, size_t> HistogramSnapshot::LevelRange(uint32_t level) const {
  WAVEMR_CHECK_LT(level, num_levels());
  return {level_offsets_[level + 1], level_offsets_[level + 2]};
}

size_t HistogramSnapshot::FindIndex(uint64_t index) const {
  auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  if (it == indices_.end() || *it != index) return npos;
  return static_cast<size_t>(it - indices_.begin());
}

std::vector<WCoeff> HistogramSnapshot::TopCoefficients(size_t count) const {
  count = std::min(count, magnitude_order_.size());
  std::vector<WCoeff> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t pos = magnitude_order_[i];
    out.push_back(WCoeff{indices_[pos], values_[pos]});
  }
  return out;
}

std::vector<WCoeff> HistogramSnapshot::Coefficients() const {
  std::vector<WCoeff> out;
  out.reserve(indices_.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    out.push_back(WCoeff{indices_[i], values_[i]});
  }
  return out;
}

void HistogramSnapshot::SerializeTo(Serializer* out) const {
  const size_t start = out->str().size();
  out->Put<uint64_t>(kSnapshotMagic);
  out->Put<uint64_t>(u_);
  out->PutVector(indices_);
  out->PutVector(values_);
  out->PutString(meta_.algorithm);
  out->Put<uint64_t>(meta_.build_comm_bytes);
  out->Put<double>(meta_.build_sim_seconds);
  // Trailer: CRC32C of every snapshot byte above, so Deserialize can tell
  // on-disk corruption apart from a version/format mismatch.
  out->Put<uint32_t>(
      Crc32c(out->str().data() + start, out->str().size() - start));
}

std::string HistogramSnapshot::Serialize() const {
  Serializer s;
  SerializeTo(&s);
  return s.Release();
}

StatusOr<HistogramSnapshot> HistogramSnapshot::Deserialize(
    const std::string& bytes) {
  Deserializer in(bytes);
  auto truncated = [] {
    return Status::InvalidArgument("snapshot bytes truncated");
  };
  if (in.remaining() < sizeof(uint64_t) + sizeof(uint32_t)) return truncated();
  const uint64_t magic = in.Get<uint64_t>();
  if (magic == kSnapshotMagicV1) {
    return Status::InvalidArgument(
        "snapshot is in the legacy WMSNAP01 format (no checksum trailer); "
        "rebuild it with `wavemr_cli build --out=...`");
  }
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument(
        "not a wavemr snapshot (bad magic; expected WMSNAP02)");
  }
  // Verify the CRC32C trailer before trusting any field: a single flipped
  // bit anywhere in the file must be rejected here, not half-parsed.
  const size_t body = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + body, sizeof(stored_crc));
  const uint32_t computed_crc = Crc32c(bytes.data(), body);
  if (stored_crc != computed_crc) {
    return Status::InvalidArgument(
        "snapshot checksum mismatch (stored " + Hex32(stored_crc) +
        ", computed " + Hex32(computed_crc) +
        "): the file is corrupt or truncated; rebuild or restore it");
  }
  if (in.remaining() < sizeof(uint64_t)) return truncated();
  const uint64_t u = in.Get<uint64_t>();
  if (!IsPowerOfTwo(u)) {
    return Status::InvalidArgument("snapshot domain size " + std::to_string(u) +
                                   " is not a power of two");
  }

  // Vectors element by element: GetVector would CHECK-abort on a truncated
  // count, and these bytes may come from disk or the network.
  auto read_count = [&](uint64_t* n, size_t elem_size) -> bool {
    if (in.remaining() < sizeof(uint64_t)) return false;
    *n = in.Get<uint64_t>();
    return in.remaining() >= *n * elem_size;
  };
  uint64_t n = 0;
  if (!read_count(&n, sizeof(uint64_t))) return truncated();
  std::vector<uint64_t> indices(n);
  for (uint64_t i = 0; i < n; ++i) indices[i] = in.Get<uint64_t>();
  uint64_t nv = 0;
  if (!read_count(&nv, sizeof(double))) return truncated();
  if (nv != n) {
    return Status::InvalidArgument("snapshot index/value count mismatch");
  }
  std::vector<double> values(nv);
  for (uint64_t i = 0; i < nv; ++i) values[i] = in.Get<double>();

  for (uint64_t i = 0; i < n; ++i) {
    if (indices[i] >= u || (i > 0 && indices[i] <= indices[i - 1])) {
      return Status::InvalidArgument(
          "snapshot coefficient indices must be unique, ascending and < u");
    }
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument("snapshot coefficient value not finite");
    }
  }

  Metadata meta;
  uint64_t name_len = 0;
  if (!read_count(&name_len, 1)) return truncated();
  meta.algorithm.resize(name_len);
  for (uint64_t i = 0; i < name_len; ++i) meta.algorithm[i] = in.Get<char>();
  if (in.remaining() < sizeof(uint64_t) + sizeof(double)) return truncated();
  meta.build_comm_bytes = in.Get<uint64_t>();
  meta.build_sim_seconds = in.Get<double>();

  HistogramSnapshot s;
  s.u_ = u;
  s.indices_ = std::move(indices);
  s.values_ = std::move(values);
  s.meta_ = std::move(meta);
  s.BuildIndexes();
  return s;
}

Status HistogramSnapshot::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  const std::string bytes = Serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

StatusOr<HistogramSnapshot> HistogramSnapshot::ReadFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return Deserialize(buf.str());
}

// Defined here rather than in histogram/builder.cc: the histogram layer
// sits below serve in the link DAG and only forward-declares the snapshot
// type; callers of ToSnapshot() include serve/snapshot.h and link the serve
// layer (the wavemr umbrella target does).
HistogramSnapshot BuildResult::ToSnapshot() const {
  HistogramSnapshot::Metadata meta;
  meta.algorithm = algorithm;
  meta.build_comm_bytes = stats.TotalCommBytes();
  meta.build_sim_seconds = stats.TotalSeconds();
  return HistogramSnapshot::FromHistogram(histogram, std::move(meta));
}

}  // namespace wavemr
