#include "serve/protocol.h"

#include "core/serialize.h"

namespace wavemr {

namespace {

/// Prefix common to every non-error response.
void PutOk(Serializer* s) { s->Put<uint8_t>(0); }

/// Consumes the status byte; returns the embedded error for code != 0.
Status ConsumeResponseStatus(Deserializer* in) {
  if (in->remaining() < 1) {
    return Status::InvalidArgument("response payload truncated");
  }
  const uint8_t code = in->Get<uint8_t>();
  if (code == 0) return Status::OK();
  std::string message = "server error";
  if (in->remaining() >= sizeof(uint64_t)) {
    const uint64_t len = in->Get<uint64_t>();
    if (in->remaining() >= len) {
      message.clear();
      for (uint64_t i = 0; i < len; ++i) message.push_back(in->Get<char>());
    }
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace

std::string EncodeRequest(const QueryRequest& request) {
  Serializer s;
  s.Put<uint8_t>(static_cast<uint8_t>(request.op));
  switch (request.op) {
    case QueryOp::kPoint:
      s.Put<uint64_t>(request.point_x);
      break;
    case QueryOp::kRange:
      s.Put<uint64_t>(request.range_lo);
      s.Put<uint64_t>(request.range_hi);
      break;
    case QueryOp::kTopK:
      s.Put<uint32_t>(request.topk_count);
      break;
    case QueryOp::kStats:
    case QueryOp::kRebuild:
      break;
  }
  return s.Release();
}

std::string EncodeEstimateResponse(double estimate, uint64_t version) {
  Serializer s;
  PutOk(&s);
  s.Put<double>(estimate);
  s.Put<uint64_t>(version);
  return s.Release();
}

std::string EncodeTopKResponse(const std::vector<WCoeff>& coefficients,
                               uint64_t version) {
  Serializer s;
  PutOk(&s);
  s.Put<uint64_t>(version);
  s.Put<uint32_t>(static_cast<uint32_t>(coefficients.size()));
  for (const WCoeff& c : coefficients) {
    s.Put<uint64_t>(c.index);
    s.Put<double>(c.value);
  }
  return s.Release();
}

std::string EncodeStatsResponse(const ServeStats& stats) {
  Serializer s;
  PutOk(&s);
  s.Put<uint64_t>(stats.version);
  s.Put<uint64_t>(stats.snapshots_published);
  s.Put<uint64_t>(stats.domain_size);
  s.Put<uint64_t>(stats.num_terms);
  s.Put<uint64_t>(stats.queries_served);
  s.PutString(stats.algorithm);
  s.Put<uint64_t>(stats.build_comm_bytes);
  s.Put<double>(stats.build_sim_seconds);
  s.Put<uint64_t>(stats.connections_shed);
  s.Put<uint64_t>(stats.idle_disconnects);
  return s.Release();
}

std::string EncodeRebuildResponse(uint64_t new_version) {
  Serializer s;
  PutOk(&s);
  s.Put<uint64_t>(new_version);
  return s.Release();
}

std::string EncodeErrorResponse(const Status& status) {
  Serializer s;
  s.Put<uint8_t>(static_cast<uint8_t>(status.code()));
  s.PutString(status.message());
  return s.Release();
}

std::string WrapFrame(const std::string& payload) {
  Serializer s;
  s.Put<uint32_t>(static_cast<uint32_t>(payload.size()));
  std::string out = s.Release();
  out += payload;
  return out;
}

StatusOr<QueryRequest> DecodeRequest(const std::string& payload) {
  Deserializer in(payload);
  if (in.remaining() < 1) {
    return Status::InvalidArgument("empty request payload");
  }
  QueryRequest req;
  const uint8_t op = in.Get<uint8_t>();
  switch (static_cast<QueryOp>(op)) {
    case QueryOp::kPoint:
      if (in.remaining() < sizeof(uint64_t)) {
        return Status::InvalidArgument("point request truncated");
      }
      req.op = QueryOp::kPoint;
      req.point_x = in.Get<uint64_t>();
      break;
    case QueryOp::kRange:
      if (in.remaining() < 2 * sizeof(uint64_t)) {
        return Status::InvalidArgument("range request truncated");
      }
      req.op = QueryOp::kRange;
      req.range_lo = in.Get<uint64_t>();
      req.range_hi = in.Get<uint64_t>();
      break;
    case QueryOp::kTopK:
      if (in.remaining() < sizeof(uint32_t)) {
        return Status::InvalidArgument("topk request truncated");
      }
      req.op = QueryOp::kTopK;
      req.topk_count = in.Get<uint32_t>();
      break;
    case QueryOp::kStats:
      req.op = QueryOp::kStats;
      break;
    case QueryOp::kRebuild:
      req.op = QueryOp::kRebuild;
      break;
    default:
      return Status::InvalidArgument("unknown query op " + std::to_string(op));
  }
  if (!in.Done()) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  return req;
}

StatusOr<EstimateResult> DecodeEstimateResponse(const std::string& payload) {
  Deserializer in(payload);
  WAVEMR_RETURN_IF_ERROR(ConsumeResponseStatus(&in));
  if (in.remaining() < sizeof(double) + sizeof(uint64_t)) {
    return Status::InvalidArgument("estimate response truncated");
  }
  EstimateResult r;
  r.estimate = in.Get<double>();
  r.version = in.Get<uint64_t>();
  return r;
}

StatusOr<TopKResult> DecodeTopKResponse(const std::string& payload) {
  Deserializer in(payload);
  WAVEMR_RETURN_IF_ERROR(ConsumeResponseStatus(&in));
  if (in.remaining() < sizeof(uint64_t) + sizeof(uint32_t)) {
    return Status::InvalidArgument("topk response truncated");
  }
  TopKResult r;
  r.version = in.Get<uint64_t>();
  const uint32_t n = in.Get<uint32_t>();
  if (in.remaining() < n * (sizeof(uint64_t) + sizeof(double))) {
    return Status::InvalidArgument("topk response truncated");
  }
  r.coefficients.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WCoeff c;
    c.index = in.Get<uint64_t>();
    c.value = in.Get<double>();
    r.coefficients.push_back(c);
  }
  return r;
}

StatusOr<ServeStats> DecodeStatsResponse(const std::string& payload) {
  Deserializer in(payload);
  WAVEMR_RETURN_IF_ERROR(ConsumeResponseStatus(&in));
  if (in.remaining() < 5 * sizeof(uint64_t)) {
    return Status::InvalidArgument("stats response truncated");
  }
  ServeStats st;
  st.version = in.Get<uint64_t>();
  st.snapshots_published = in.Get<uint64_t>();
  st.domain_size = in.Get<uint64_t>();
  st.num_terms = in.Get<uint64_t>();
  st.queries_served = in.Get<uint64_t>();
  if (in.remaining() < sizeof(uint64_t)) {
    return Status::InvalidArgument("stats response truncated");
  }
  const uint64_t name_len = in.Get<uint64_t>();
  if (in.remaining() < name_len + 3 * sizeof(uint64_t) + sizeof(double)) {
    return Status::InvalidArgument("stats response truncated");
  }
  st.algorithm.resize(name_len);
  for (uint64_t i = 0; i < name_len; ++i) st.algorithm[i] = in.Get<char>();
  st.build_comm_bytes = in.Get<uint64_t>();
  st.build_sim_seconds = in.Get<double>();
  st.connections_shed = in.Get<uint64_t>();
  st.idle_disconnects = in.Get<uint64_t>();
  return st;
}

StatusOr<uint64_t> DecodeRebuildResponse(const std::string& payload) {
  Deserializer in(payload);
  WAVEMR_RETURN_IF_ERROR(ConsumeResponseStatus(&in));
  if (in.remaining() < sizeof(uint64_t)) {
    return Status::InvalidArgument("rebuild response truncated");
  }
  return in.Get<uint64_t>();
}

}  // namespace wavemr
