#ifndef WAVEMR_SERVE_PROTOCOL_H_
#define WAVEMR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "wavelet/coefficient.h"

namespace wavemr {

/// The wavemr_serve wire protocol: length-prefixed binary frames over TCP.
///
///   frame    := uint32 payload_len (LE) | payload
///   request  := uint8 op | op-specific little-endian fields
///   response := uint8 code (StatusCode; 0 = OK) | result fields, or --
///               when code != 0 -- uint64 len | error message bytes
///
/// Requests on one connection are answered in order. All integers are
/// little-endian fixed width (core/serialize.h framing); doubles are IEEE
/// bits, so an estimate crosses the wire bit-identically.
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 20;

enum class QueryOp : uint8_t {
  kPoint = 1,    // uint64 x                -> double estimate, uint64 version
  kRange = 2,    // uint64 lo, uint64 hi    -> double estimate, uint64 version
  kTopK = 3,     // uint32 count            -> uint64 version, uint32 n,
                 //                            n * (uint64 index, double value)
  kStats = 4,    // (none)                  -> ServeStats fields
  kRebuild = 5,  // (none)                  -> uint64 new version
};

struct QueryRequest {
  QueryOp op = QueryOp::kStats;
  uint64_t point_x = 0;    // kPoint
  uint64_t range_lo = 0;   // kRange
  uint64_t range_hi = 0;   // kRange
  uint32_t topk_count = 0; // kTopK
};

/// What the kStats op reports.
struct ServeStats {
  uint64_t version = 0;             // currently served snapshot version
  uint64_t snapshots_published = 0; // total versions ever published
  uint64_t domain_size = 0;
  uint64_t num_terms = 0;
  uint64_t queries_served = 0;      // requests answered since server start
  std::string algorithm;            // builder that produced the snapshot
  uint64_t build_comm_bytes = 0;
  double build_sim_seconds = 0.0;
  /// Robustness telemetry: connections rejected at the max-connection cap
  /// (load shedding) and connections evicted by the idle timeout.
  uint64_t connections_shed = 0;
  uint64_t idle_disconnects = 0;
};

// ---- encoding (payloads; the frame length prefix is added separately) ----

std::string EncodeRequest(const QueryRequest& request);
std::string EncodeEstimateResponse(double estimate, uint64_t version);
std::string EncodeTopKResponse(const std::vector<WCoeff>& coefficients,
                               uint64_t version);
std::string EncodeStatsResponse(const ServeStats& stats);
std::string EncodeRebuildResponse(uint64_t new_version);
std::string EncodeErrorResponse(const Status& status);

/// Wraps a payload into a frame (4-byte LE length + payload).
std::string WrapFrame(const std::string& payload);

// ---- decoding; all reject truncated/oversized input with a Status ----

StatusOr<QueryRequest> DecodeRequest(const std::string& payload);

struct EstimateResult {
  double estimate = 0.0;
  uint64_t version = 0;
};
struct TopKResult {
  std::vector<WCoeff> coefficients;
  uint64_t version = 0;
};

/// Decoders for the client side: they surface a server-sent error response
/// as its embedded Status.
StatusOr<EstimateResult> DecodeEstimateResponse(const std::string& payload);
StatusOr<TopKResult> DecodeTopKResponse(const std::string& payload);
StatusOr<ServeStats> DecodeStatsResponse(const std::string& payload);
StatusOr<uint64_t> DecodeRebuildResponse(const std::string& payload);

}  // namespace wavemr

#endif  // WAVEMR_SERVE_PROTOCOL_H_
