#ifndef WAVEMR_SERVE_SNAPSHOT_H_
#define WAVEMR_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/serialize.h"
#include "core/status.h"
#include "wavelet/coefficient.h"
#include "wavelet/histogram.h"

namespace wavemr {

/// An immutable, query-optimized view of a k-term wavelet synopsis -- the
/// object the serving layer publishes and answers queries from.
///
/// Layout: the retained coefficients are stored as two parallel arrays
/// (indices ascending, values aligned) -- which is exactly the level-major
/// order of the error tree, so each detail level j occupies one contiguous
/// slice [level 2^j, 2^(j+1)) of the arrays. level_offsets() exposes the
/// slice boundaries; a point estimate binary-searches one coefficient per
/// level of the root-to-leaf path (O(log u * log k_level)), a range sum only
/// visits the per-level index runs whose supports overlap the range. A
/// precomputed magnitude ordering makes top-coefficient queries O(answer).
///
/// Snapshots never mutate after construction: every thread may read one
/// concurrently with no synchronization. Versioning is owned by
/// SnapshotRegistry (registry.h); serialization is the fixed-width
/// little-endian framing of core/serialize.h.
/// Provenance carried along with a snapshot for the stats/version query.
struct SnapshotMetadata {
  std::string algorithm;           // display name, e.g. "TwoLevel-S"
  uint64_t build_comm_bytes = 0;   // simulated wire cost of the build
  double build_sim_seconds = 0.0;  // simulated build running time
};

class HistogramSnapshot {
 public:
  using Metadata = SnapshotMetadata;

  /// An empty synopsis over the trivial domain (estimates are all zero).
  HistogramSnapshot() : u_(1) { BuildIndexes(); }

  /// coeffs need not be sorted; u must be a power of two, indices < u and
  /// unique (the builder's synopses satisfy both by construction).
  static HistogramSnapshot FromCoefficients(uint64_t u,
                                            std::vector<WCoeff> coeffs,
                                            Metadata metadata = Metadata());

  static HistogramSnapshot FromHistogram(const WaveletHistogram& histogram,
                                         Metadata metadata = Metadata());

  uint64_t domain_size() const { return u_; }
  /// log2(u): number of detail levels in the error tree.
  uint32_t num_levels() const;
  size_t num_terms() const { return indices_.size(); }
  const Metadata& metadata() const { return meta_; }

  /// Parallel coefficient arrays, ascending by index.
  const std::vector<uint64_t>& indices() const { return indices_; }
  const std::vector<double>& values() const { return values_; }

  /// Position range [first, second) of detail level j (indices in
  /// [2^j, 2^(j+1))). The overall-average coefficient (index 0), when
  /// retained, sits at position 0; has_average() tells.
  std::pair<size_t, size_t> LevelRange(uint32_t level) const;
  bool has_average() const { return !indices_.empty() && indices_[0] == 0; }

  /// Position of `index` in the arrays, or npos when not retained.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t FindIndex(uint64_t index) const;

  /// The `count` largest-magnitude coefficients, magnitude-descending
  /// (ties: lower index first). count is clamped to num_terms().
  std::vector<WCoeff> TopCoefficients(size_t count) const;

  /// The coefficients as WCoeffs (index-ascending), e.g. to rebuild a
  /// WaveletHistogram.
  std::vector<WCoeff> Coefficients() const;

  // ---- binary serialization (core/serialize.h framing) ----

  void SerializeTo(Serializer* out) const;
  std::string Serialize() const;
  /// Rejects truncated / corrupt / wrong-magic input with InvalidArgument
  /// instead of crashing -- snapshot bytes cross process boundaries.
  static StatusOr<HistogramSnapshot> Deserialize(const std::string& bytes);

  Status WriteFile(const std::string& path) const;
  static StatusOr<HistogramSnapshot> ReadFile(const std::string& path);

 private:
  void BuildIndexes();  // level offsets + magnitude order; CHECKs invariants

  uint64_t u_;
  std::vector<uint64_t> indices_;  // ascending
  std::vector<double> values_;
  /// level_offsets_[l] = first position with index >= 2^l... precisely:
  /// boundary 0 is 0; boundary l+1 is the first position whose index >= 2^l.
  /// Size num_levels()+2; detail level j = [boundary[j+1], boundary[j+2]).
  std::vector<size_t> level_offsets_;
  std::vector<uint32_t> magnitude_order_;  // positions, |value| descending
  Metadata meta_;
};

}  // namespace wavemr

#endif  // WAVEMR_SERVE_SNAPSHOT_H_
