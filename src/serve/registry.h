#ifndef WAVEMR_SERVE_REGISTRY_H_
#define WAVEMR_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/snapshot.h"

namespace wavemr {

/// Epoch-swapped snapshot publication: one writer at a time publishes a new
/// immutable HistogramSnapshot version while any number of reader threads
/// keep answering queries from whatever version they pinned -- the RCU idiom,
/// specialized to a bounded ring of versions.
///
/// Readers are lock-free: Acquire() is one epoch load, one pin increment and
/// one validating reload (it retries only when a publish races in, which is
/// bounded by the publish rate, not by other readers). Writers serialize on
/// a mutex and wait -- off the read path -- for stragglers still pinning the
/// slot being recycled.
///
/// How the ring stays safe: version v lives in slot v mod S. A publisher of
/// version t overwrites slot t mod S while the current version is t-1, so a
/// reader's pin of version v is valid only if the version it revalidates, w,
/// satisfies w - v <= S-2 (any later and the slot may be mid-overwrite).
/// The pin increment, the validating load, the publisher's version store and
/// its pin poll are all seq_cst, which closes the classic store/load race
/// between "reader pins then validates" and "writer checks pins then
/// writes". A failed validation unpins and retries.
///
/// Guards must stay shorter-lived than S-1 publishes ahead: a publisher
/// blocks (spin-yield) until the slot it recycles drains to zero pins. Hold
/// a guard per query, not per connection.
class SnapshotRegistry {
 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> pins{0};
    /// Written only by the publisher, only while pins == 0 and no reader can
    /// validate a pin on this slot (see class comment).
    std::shared_ptr<const HistogramSnapshot> snapshot;
  };

 public:
  /// `num_slots` is rounded up to a power of two, minimum 2. S slots allow
  /// S-1 versions to be concurrently pinned.
  explicit SnapshotRegistry(size_t num_slots = 8);

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Pins one published version for reading; keeps the snapshot alive and
  /// its slot unrecyclable until released/destroyed. Movable, not copyable.
  class ReadGuard {
   public:
    ReadGuard() = default;
    ~ReadGuard() { Release(); }
    ReadGuard(ReadGuard&& other) noexcept { *this = std::move(other); }
    ReadGuard& operator=(ReadGuard&& other) noexcept {
      if (this != &other) {
        Release();
        slot_ = other.slot_;
        snapshot_ = other.snapshot_;
        version_ = other.version_;
        other.slot_ = nullptr;
        other.snapshot_ = nullptr;
        other.version_ = 0;
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    explicit operator bool() const { return snapshot_ != nullptr; }
    const HistogramSnapshot* get() const { return snapshot_; }
    const HistogramSnapshot& operator*() const { return *snapshot_; }
    const HistogramSnapshot* operator->() const { return snapshot_; }
    /// Version this guard pinned (>= 1 when non-empty).
    uint64_t version() const { return version_; }

    /// Unpins early; the guard becomes empty.
    void Release() {
      if (slot_ != nullptr) {
        slot_->pins.fetch_sub(1, std::memory_order_seq_cst);
        slot_ = nullptr;
      }
      snapshot_ = nullptr;
      version_ = 0;
    }

   private:
    friend class SnapshotRegistry;
    ReadGuard(Slot* slot, const HistogramSnapshot* snapshot, uint64_t version)
        : slot_(slot), snapshot_(snapshot), version_(version) {}

    Slot* slot_ = nullptr;
    const HistogramSnapshot* snapshot_ = nullptr;
    uint64_t version_ = 0;
  };

  /// Publishes `snapshot` as the next version and returns its version number
  /// (1-based; monotonically increasing). Blocks while the recycled slot is
  /// still pinned by readers S-1 versions behind.
  uint64_t Publish(std::shared_ptr<const HistogramSnapshot> snapshot);

  /// Pins the current version for reading. Before the first Publish the
  /// guard is empty (operator bool is false).
  ReadGuard Acquire() const;

  /// Version of the most recent Publish; 0 before any. Also the count of
  /// snapshots ever published.
  uint64_t current_version() const {
    return version_.load(std::memory_order_seq_cst);
  }

  size_t num_slots() const { return slots_.size(); }

 private:
  mutable std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> version_{0};
  std::mutex publish_mu_;
};

}  // namespace wavemr

#endif  // WAVEMR_SERVE_REGISTRY_H_
