#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/failpoint.h"
#include "core/logging.h"
#include "core/thread_pool.h"
#include "serve/estimator.h"
#include "serve/protocol.h"

#ifdef __linux__
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace wavemr {

#ifdef __linux__

namespace {

uint32_t LoadLe32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct QueryServer::Impl {
  /// One client connection. The reactor thread owns fd lifecycle and the
  /// input buffer; `mu` guards the output buffer and the per-connection
  /// dispatch queue that keeps responses in request order. The fd is closed
  /// only by the destructor, after the last worker reference drops, so a
  /// worker never writes to a recycled descriptor.
  struct Conn {
    explicit Conn(int fd_in) : fd(fd_in) {}
    ~Conn() {
      if (fd >= 0) ::close(fd);
    }

    const int fd;
    std::string in;  // reactor-only
    size_t in_off = 0;

    std::mutex mu;
    std::string out;  // guarded by mu
    size_t out_off = 0;
    std::deque<std::string> pending;  // guarded by mu
    bool task_active = false;         // guarded by mu
    bool want_write = false;          // guarded by mu
    std::atomic<bool> dead{false};
    /// Last request/response activity (NowNs); drives the idle sweep.
    std::atomic<int64_t> last_activity_ns{0};
  };

  Impl(SnapshotRegistry* registry_in, ServerOptions options_in,
       RebuildFn rebuild_in)
      : registry(registry_in),
        options(options_in),
        rebuild(std::move(rebuild_in)) {}

  SnapshotRegistry* registry;
  ServerOptions options;
  RebuildFn rebuild;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  int port = 0;
  std::unique_ptr<ThreadPool> pool;
  std::thread reactor;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> rebuilds{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> idle_closed{0};
  std::unordered_map<int, std::shared_ptr<Conn>> conns;  // reactor-only

  Status Start();
  void Stop();
  void ReactorLoop();
  void SweepIdle();
  void SweepDrained();
  void Accept();
  void ReadConn(const std::shared_ptr<Conn>& conn);
  void DiscardInput(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void Dispatch(const std::shared_ptr<Conn>& conn, std::string payload);
  void DrainTask(std::shared_ptr<Conn> conn);
  void Send(const std::shared_ptr<Conn>& conn, const std::string& frame);
  void FlushLocked(Conn* conn);  // mu held
  std::string Handle(const std::string& payload);
};

Status QueryServer::Impl::Start() {
  listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::IOError("bind(port " + std::to_string(options.port) +
                           "): " + std::strerror(errno));
  }
  if (::listen(listen_fd, options.backlog) < 0) {
    return Status::IOError("listen(): " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::IOError("getsockname(): " + std::string(std::strerror(errno)));
  }
  port = ntohs(addr.sin_port);

  epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return Status::IOError("epoll_create1(): " + std::string(std::strerror(errno)));
  wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd < 0) return Status::IOError("eventfd(): " + std::string(std::strerror(errno)));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) < 0) {
    return Status::IOError("epoll_ctl(listen): " + std::string(std::strerror(errno)));
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) < 0) {
    return Status::IOError("epoll_ctl(wake): " + std::string(std::strerror(errno)));
  }

  pool = std::make_unique<ThreadPool>(options.workers);
  running.store(true);
  reactor = std::thread([this] { ReactorLoop(); });
  return Status::OK();
}

void QueryServer::Impl::ReactorLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  for (;;) {
    if (!draining && stopping.load(std::memory_order_acquire)) {
      // Graceful drain: close the listener immediately, ignore further
      // requests, but let queries already in flight deliver their
      // responses until the deadline.
      draining = true;
      drain_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(std::max(options.drain_timeout_ms, 0));
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    if (draining) {
      SweepDrained();
      if (conns.empty() || std::chrono::steady_clock::now() >= drain_deadline) {
        break;
      }
    }
    int timeout_ms = -1;
    if (draining) {
      timeout_ms = 10;
    } else if (options.idle_timeout_ms > 0) {
      // Wake often enough that eviction lands within ~1/4 timeout of due.
      timeout_ms = std::clamp(options.idle_timeout_ms / 4, 10, 1000);
    }
    const int n = ::epoll_wait(epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd) {
        uint64_t drain;
        while (::read(wake_fd, &drain, sizeof(drain)) > 0) {
        }
        continue;  // stop flag re-checked at the top of the loop
      }
      if (fd == listen_fd) {
        Accept();
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        std::lock_guard<std::mutex> lock(conn->mu);
        FlushLocked(conn.get());
      }
      if ((events[i].events & EPOLLIN) != 0) {
        // New requests are not admitted during the drain, but the socket
        // must still be read (to see EOF and to keep level-triggered epoll
        // from spinning on unread bytes).
        if (draining) {
          DiscardInput(conn);
        } else {
          ReadConn(conn);
        }
      }
    }
    if (!draining && options.idle_timeout_ms > 0) SweepIdle();
  }
  // Hard teardown on the reactor: mark every remaining connection dead so
  // workers stop writing, then drop the reactor references (fds close when
  // the last worker reference drops).
  for (auto& [fd, conn] : conns) {
    conn->dead.store(true);
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::shutdown(fd, SHUT_RDWR);
  }
  conns.clear();
  if (listen_fd >= 0) {
    ::close(listen_fd);
    listen_fd = -1;
  }
}

/// Drain-phase sweep: closes connections whose responses are fully flushed
/// (no queued requests, no worker mid-query, empty output buffer). A worker
/// holds task_active through Handle+Send, so a connection observed quiescent
/// here cannot grow new output -- request admission stopped with the drain.
void QueryServer::Impl::SweepDrained() {
  for (auto it = conns.begin(); it != conns.end();) {
    const std::shared_ptr<Conn>& conn = it->second;
    bool done;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      done = conn->pending.empty() && !conn->task_active &&
             conn->out_off == conn->out.size();
    }
    if (done || conn->dead.load()) {
      conn->dead.store(true);
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
      ::shutdown(conn->fd, SHUT_RDWR);
      it = conns.erase(it);
    } else {
      ++it;
    }
  }
}

/// Evicts connections idle past options.idle_timeout_ms. Only quiescent
/// connections qualify: queued or in-flight work keeps a connection alive
/// no matter how long its queries run.
void QueryServer::Impl::SweepIdle() {
  const int64_t cutoff =
      NowNs() - static_cast<int64_t>(options.idle_timeout_ms) * 1000000;
  for (auto it = conns.begin(); it != conns.end();) {
    const std::shared_ptr<Conn>& conn = it->second;
    bool quiescent;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      quiescent = conn->pending.empty() && !conn->task_active &&
                  conn->out_off == conn->out.size();
    }
    if (quiescent &&
        conn->last_activity_ns.load(std::memory_order_relaxed) < cutoff) {
      idle_closed.fetch_add(1, std::memory_order_relaxed);
      conn->dead.store(true);
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
      ::shutdown(conn->fd, SHUT_RDWR);
      it = conns.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryServer::Impl::Accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    if (options.max_connections > 0 &&
        conns.size() >= static_cast<size_t>(options.max_connections)) {
      // Load-shed: tell the client why before closing. Best effort -- the
      // frame is tiny, so a single non-blocking send nearly always takes
      // it; a client that cannot receive it just sees the close.
      const std::string frame = WrapFrame(EncodeErrorResponse(
          Status::Unavailable("server at max_connections=" +
                              std::to_string(options.max_connections) +
                              "; retry later")));
      (void)::send(fd, frame.data(), frame.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      shed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(fd);
    conn->last_activity_ns.store(NowNs(), std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) continue;
    conns.emplace(fd, std::move(conn));
  }
}

void QueryServer::Impl::CloseConn(const std::shared_ptr<Conn>& conn) {
  conn->dead.store(true);
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  conns.erase(conn->fd);
}

/// Drain-phase read handler: consumes and discards socket input so that a
/// level-triggered EPOLLIN cannot spin, and closes on EOF/hard error.
void QueryServer::Impl::DiscardInput(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn);  // EOF or hard error
    return;
  }
}

void QueryServer::Impl::ReadConn(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  bool got_bytes = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      got_bytes = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn);  // EOF or hard error
    return;
  }
  if (got_bytes) {
    conn->last_activity_ns.store(NowNs(), std::memory_order_relaxed);
  }
  // Reassemble complete frames and hand them to the worker pool.
  std::string& in = conn->in;
  while (in.size() - conn->in_off >= sizeof(uint32_t)) {
    const uint32_t len = LoadLe32(in.data() + conn->in_off);
    if (len > kMaxFramePayloadBytes) {
      CloseConn(conn);  // protocol violation
      return;
    }
    if (in.size() - conn->in_off < sizeof(uint32_t) + len) break;
    Dispatch(conn, in.substr(conn->in_off + sizeof(uint32_t), len));
    conn->in_off += sizeof(uint32_t) + len;
  }
  if (conn->in_off == in.size()) {
    in.clear();
    conn->in_off = 0;
  } else if (conn->in_off > size_t{64} * 1024) {
    in.erase(0, conn->in_off);
    conn->in_off = 0;
  }
}

void QueryServer::Impl::Dispatch(const std::shared_ptr<Conn>& conn,
                                 std::string payload) {
  bool submit = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->pending.push_back(std::move(payload));
    if (!conn->task_active) {
      conn->task_active = true;
      submit = true;
    }
  }
  // One drainer task per connection at a time: responses stay in request
  // order while independent connections fan out across the pool.
  if (submit) pool->Submit([this, conn] { DrainTask(conn); });
}

void QueryServer::Impl::DrainTask(std::shared_ptr<Conn> conn) {
  for (;;) {
    std::string payload;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->pending.empty() || conn->dead.load()) {
        conn->task_active = false;
        return;
      }
      payload = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    Send(conn, WrapFrame(Handle(payload)));
  }
}

std::string QueryServer::Impl::Handle(const std::string& payload) {
  queries.fetch_add(1, std::memory_order_relaxed);
  auto request = DecodeRequest(payload);
  if (!request.ok()) return EncodeErrorResponse(request.status());

  if (request->op == QueryOp::kRebuild) {
    if (!rebuild) {
      return EncodeErrorResponse(Status::Unimplemented(
          "this server was given no rebuild hook (serving a fixed snapshot)"));
    }
    const uint64_t count = rebuilds.fetch_add(1, std::memory_order_relaxed) + 1;
    auto snapshot = rebuild(count);
    if (!snapshot.ok()) return EncodeErrorResponse(snapshot.status());
    return EncodeRebuildResponse(registry->Publish(std::move(*snapshot)));
  }

  SnapshotRegistry::ReadGuard guard = registry->Acquire();
  if (!guard) {
    return EncodeErrorResponse(
        Status::FailedPrecondition("no snapshot published yet"));
  }
  const HistogramSnapshot& snap = *guard;
  switch (request->op) {
    case QueryOp::kPoint:
      if (request->point_x >= snap.domain_size()) {
        return EncodeErrorResponse(Status::OutOfRange(
            "point " + std::to_string(request->point_x) +
            " outside domain [0, " + std::to_string(snap.domain_size()) + ")"));
      }
      return EncodeEstimateResponse(PointEstimate(snap, request->point_x),
                                    guard.version());
    case QueryOp::kRange:
      if (request->range_lo > request->range_hi ||
          request->range_hi > snap.domain_size()) {
        return EncodeErrorResponse(Status::OutOfRange(
            "range [" + std::to_string(request->range_lo) + ", " +
            std::to_string(request->range_hi) + ") not within [0, " +
            std::to_string(snap.domain_size()) + ")"));
      }
      return EncodeEstimateResponse(
          RangeSum(snap, request->range_lo, request->range_hi),
          guard.version());
    case QueryOp::kTopK:
      return EncodeTopKResponse(snap.TopCoefficients(request->topk_count),
                                guard.version());
    case QueryOp::kStats: {
      ServeStats st;
      st.version = guard.version();
      st.snapshots_published = registry->current_version();
      st.domain_size = snap.domain_size();
      st.num_terms = snap.num_terms();
      st.queries_served = queries.load(std::memory_order_relaxed);
      st.algorithm = snap.metadata().algorithm;
      st.build_comm_bytes = snap.metadata().build_comm_bytes;
      st.build_sim_seconds = snap.metadata().build_sim_seconds;
      st.connections_shed = shed.load(std::memory_order_relaxed);
      st.idle_disconnects = idle_closed.load(std::memory_order_relaxed);
      return EncodeStatsResponse(st);
    }
    case QueryOp::kRebuild:
      break;  // handled above
  }
  return EncodeErrorResponse(Status::Internal("unreachable op"));
}

void QueryServer::Impl::Send(const std::shared_ptr<Conn>& conn,
                             const std::string& frame) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->dead.load()) return;
  conn->out.append(frame);
  conn->last_activity_ns.store(NowNs(), std::memory_order_relaxed);
  FlushLocked(conn.get());
}

void QueryServer::Impl::FlushLocked(Conn* conn) {
  if (conn->dead.load()) return;
  while (conn->out_off < conn->out.size()) {
    ssize_t n;
    if (const int fe = FailpointHit("serve.send"); fe != 0) {
      errno = fe;
      n = -1;
    } else {
      n = ::send(conn->fd, conn->out.data() + conn->out_off,
                 conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    }
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
        conn->want_write = true;
      }
      return;
    }
    // Hard error: mark dead; shutdown() nudges the reactor to clean up.
    conn->dead.store(true);
    ::shutdown(conn->fd, SHUT_RDWR);
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->want_write = false;
  }
}

void QueryServer::Impl::Stop() {
  if (!running.load()) return;
  stopping.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  if (reactor.joinable()) reactor.join();
  pool.reset();  // drains in-flight drainer tasks
  if (epoll_fd >= 0) ::close(epoll_fd);
  if (wake_fd >= 0) ::close(wake_fd);
  epoll_fd = -1;
  wake_fd = -1;
  running.store(false);
}

#else  // !__linux__

struct QueryServer::Impl {
  Impl(SnapshotRegistry* registry_in, ServerOptions options_in,
       RebuildFn rebuild_in)
      : registry(registry_in),
        options(options_in),
        rebuild(std::move(rebuild_in)) {}
  SnapshotRegistry* registry;
  ServerOptions options;
  RebuildFn rebuild;
  int port = 0;
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> idle_closed{0};

  Status Start() {
    return Status::Unimplemented("wavemr_serve requires Linux epoll");
  }
  void Stop() {}
};

#endif  // __linux__

QueryServer::QueryServer(SnapshotRegistry* registry, ServerOptions options,
                         RebuildFn rebuild)
    : impl_(std::make_unique<Impl>(registry, options, std::move(rebuild))) {
  WAVEMR_CHECK(registry != nullptr);
}

QueryServer::~QueryServer() { impl_->Stop(); }

Status QueryServer::Start() { return impl_->Start(); }

int QueryServer::port() const { return impl_->port; }

uint64_t QueryServer::queries_served() const {
  return impl_->queries.load(std::memory_order_relaxed);
}

uint64_t QueryServer::connections_shed() const {
  return impl_->shed.load(std::memory_order_relaxed);
}

uint64_t QueryServer::idle_disconnects() const {
  return impl_->idle_closed.load(std::memory_order_relaxed);
}

void QueryServer::Stop() { impl_->Stop(); }

}  // namespace wavemr
