#ifndef WAVEMR_SERVE_SERVE_MAIN_H_
#define WAVEMR_SERVE_SERVE_MAIN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/flags.h"
#include "core/status.h"
#include "data/dataset.h"
#include "histogram/algorithm.h"
#include "histogram/builder.h"

namespace wavemr {

/// Dataset selection shared by `wavemr_cli build` and the serve front end:
/// exactly one of --input (binary record file) or --generate (synthetic).
struct DataArgs {
  std::string input;
  std::string generate;  // "zipf" | "worldcup"
  uint64_t n = 1 << 20;
  double alpha = 1.1;
  uint64_t u = 1 << 16;
  uint64_t splits = 64;
  uint64_t record_bytes = 4;
  uint64_t seed = 42;
};

void RegisterDataFlags(FlagParser* parser, DataArgs* args);

/// Opens/generates the dataset described by `args` (validates that exactly
/// one source was selected).
StatusOr<std::unique_ptr<Dataset>> MakeDataset(const DataArgs& args);

/// Build parameters shared by `wavemr_cli build` and the serve front end.
struct BuildArgs {
  std::string algo = "twolevel-s";
  uint64_t k = 30;
  double eps = 0.01;
  int threads = 0;
  int reduce_tasks = 0;
  uint64_t shuffle_buffer_bytes = 0;  // 0 = keep the CostModel default
  bool force_sorted_shuffle = false;
  /// Spill I/O backend (--spill-io): sync|async|auto. Callers should check
  /// the spelling with ParseIoBackendKind right after flag parsing (the
  /// binaries do) -- ToBuildOptions cannot report errors.
  std::string spill_io = "auto";
  int io_queue_depth = 4;
  int io_prefetch_depth = 1;
  /// Fault-injection spec (core/failpoint.h grammar); empty = disarmed.
  /// Recovery paths keep results bit-identical, so this is safe to combine
  /// with determinism checks -- only the recovery counters change.
  std::string failpoints;

  /// Assembles BuildOptions (validated centrally by BuildOptions::Validate
  /// inside BuildWaveletHistogram; no checks here).
  BuildOptions ToBuildOptions(uint64_t seed) const;
};

void RegisterBuildFlags(FlagParser* parser, BuildArgs* args);

/// The `wavemr_serve` program (also `wavemr_cli serve`): builds or loads an
/// initial snapshot, publishes it, starts a QueryServer, prints
/// "wavemr_serve listening on port N" to stdout, and blocks until
/// SIGINT/SIGTERM. The kRebuild op republishes: from a dataset it rebuilds
/// with a fresh seed; from a --snapshot file it reloads the file.
/// Parses argv[start, argc); returns the process exit code.
int ServeMain(int argc, char* const* argv, int start);

}  // namespace wavemr

#endif  // WAVEMR_SERVE_SERVE_MAIN_H_
