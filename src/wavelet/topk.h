#ifndef WAVEMR_WAVELET_TOPK_H_
#define WAVEMR_WAVELET_TOPK_H_

#include <cstddef>
#include <vector>

#include "wavelet/coefficient.h"

namespace wavemr {

/// The k coefficients of largest |value|, sorted by descending magnitude
/// (ties broken by ascending index so results are deterministic). If
/// coeffs.size() <= k, returns all of them sorted the same way.
std::vector<WCoeff> TopKByMagnitude(std::vector<WCoeff> coeffs, size_t k);

/// The paper's Round-1 primitive: the k highest-valued and k lowest-valued
/// (most negative) entries by *signed* value. Ties broken by index.
struct TopBottomK {
  std::vector<WCoeff> top;     // descending by value
  std::vector<WCoeff> bottom;  // ascending by value
};
TopBottomK SelectTopBottomK(const std::vector<WCoeff>& coeffs, size_t k);

}  // namespace wavemr

#endif  // WAVEMR_WAVELET_TOPK_H_
