#include "wavelet/haar.h"

#include <cmath>

#include "core/bitops.h"
#include "core/logging.h"
#include "core/simd.h"

namespace wavemr {

std::vector<double> ForwardHaar(std::span<const double> v) {
  const uint64_t u = v.size();
  WAVEMR_CHECK(IsPowerOfTwo(u)) << "ForwardHaar requires power-of-two size, got " << u;
  std::vector<double> coeffs(u, 0.0);
  std::vector<double> sums(v.begin(), v.end());
  std::vector<double> scratch(u / 2);
  const uint32_t levels = Log2Floor(u);
  // Bottom-up: at step t the input buffer holds block sums of width 2^t.
  // Pairing blocks (2k, 2k+1) of width 2^t yields the detail coefficient of
  // level j = levels - t - 1 with normalization 1/sqrt(u / 2^j).
  //
  // Each pass reads one buffer and writes two others (ping-ponging
  // sums <-> scratch) instead of updating sums[] in place: with no aliasing
  // between the read and write streams the butterfly runs through the
  // dispatched SIMD kernel (core/simd.h) -- explicit AVX2/NEON lanes when
  // the host has them, the auto-vectorizable restrict loop otherwise. The
  // kernel is elementwise sub/add/mul only, so the output is bit-identical
  // to the scalar in-place form in every tier.
  const SimdKernels& simd = SimdK();
  uint64_t size = u;
  for (uint32_t t = 0; t < levels; ++t) {
    uint32_t j = levels - t - 1;
    double norm = 1.0 / std::sqrt(static_cast<double>(u >> j));
    uint64_t half = size / 2;
    simd.haar_butterfly(sums.data(), half, norm,
                        coeffs.data() + (uint64_t{1} << j), scratch.data());
    sums.swap(scratch);  // only the first `half` entries carry forward
    size = half;
  }
  coeffs[0] = sums[0] / std::sqrt(static_cast<double>(u));
  return coeffs;
}

std::vector<double> InverseHaar(std::span<const double> coeffs) {
  const uint64_t u = coeffs.size();
  WAVEMR_CHECK(IsPowerOfTwo(u)) << "InverseHaar requires power-of-two size, got " << u;
  const uint32_t levels = Log2Floor(u);
  // Top-down: reconstruct block sums. sums[k] at granularity 2^j holds the
  // total of block k (width u/2^j).
  std::vector<double> sums(u, 0.0);
  sums[0] = coeffs[0] * std::sqrt(static_cast<double>(u));
  uint64_t size = 1;
  for (uint32_t j = 0; j < levels; ++j) {
    double norm = std::sqrt(static_cast<double>(u >> j));
    // Expand in place from the back so we can reuse the same buffer.
    for (uint64_t k = size; k-- > 0;) {
      double total = sums[k];
      double d = coeffs[(uint64_t{1} << j) + k] * norm;  // right sum - left sum
      sums[2 * k] = (total - d) / 2.0;
      sums[2 * k + 1] = (total + d) / 2.0;
    }
    size *= 2;
  }
  return sums;
}

std::vector<double> PadToPow2(std::span<const double> v) {
  uint64_t n = v.size();
  uint64_t u = n == 0 ? 1 : CeilPow2(n);
  std::vector<double> out(v.begin(), v.end());
  out.resize(u, 0.0);
  return out;
}

}  // namespace wavemr
