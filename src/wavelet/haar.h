#ifndef WAVEMR_WAVELET_HAAR_H_
#define WAVEMR_WAVELET_HAAR_H_

#include <cstdint>
#include <span>
#include <vector>

namespace wavemr {

/// Dense forward Haar transform (normalized basis) in O(u) time.
/// v.size() must be a power of two. Returns the u coefficients in the
/// indexing scheme of coefficient.h; Parseval holds:
/// sum v(x)^2 == sum w_i^2 (up to floating point).
std::vector<double> ForwardHaar(std::span<const double> v);

/// Dense inverse Haar transform in O(u) time; exact inverse of ForwardHaar.
std::vector<double> InverseHaar(std::span<const double> coeffs);

/// Zero-pads v up to the next power of two (no-op if already a power of two
/// or empty -> size 1).
std::vector<double> PadToPow2(std::span<const double> v);

}  // namespace wavemr

#endif  // WAVEMR_WAVELET_HAAR_H_
