#include "wavelet/coefficient.h"

#include <cmath>

namespace wavemr {

double BasisValue(uint64_t index, uint64_t x, uint64_t u) {
  WAVEMR_DCHECK(IsPowerOfTwo(u));
  WAVEMR_DCHECK(x < u);
  if (index == 0) return 1.0 / std::sqrt(static_cast<double>(u));
  uint32_t j = Log2Floor(index);
  uint64_t k = index - (uint64_t{1} << j);
  uint64_t block = u >> j;
  uint64_t start = k * block;
  if (x < start || x >= start + block) return 0.0;
  double mag = 1.0 / std::sqrt(static_cast<double>(block));
  return (x - start < block / 2) ? -mag : mag;
}

double BasisRangeSum(uint64_t index, uint64_t lo, uint64_t hi, uint64_t u) {
  WAVEMR_DCHECK(lo <= hi);
  WAVEMR_DCHECK(hi <= u);
  if (lo >= hi) return 0.0;
  if (index == 0) {
    return static_cast<double>(hi - lo) / std::sqrt(static_cast<double>(u));
  }
  CoeffSupport s = CoefficientSupport(index, u);
  uint64_t block = s.hi - s.lo;
  uint64_t mid = s.lo + block / 2;
  // Overlap of [lo,hi) with the negative half [s.lo, mid) and the positive
  // half [mid, s.hi).
  auto overlap = [](uint64_t a_lo, uint64_t a_hi, uint64_t b_lo, uint64_t b_hi) {
    uint64_t l = std::max(a_lo, b_lo);
    uint64_t h = std::min(a_hi, b_hi);
    return h > l ? h - l : 0;
  };
  double neg = static_cast<double>(overlap(lo, hi, s.lo, mid));
  double pos = static_cast<double>(overlap(lo, hi, mid, s.hi));
  return (pos - neg) / std::sqrt(static_cast<double>(block));
}

std::vector<uint64_t> PathIndices(uint64_t x, uint64_t u) {
  WAVEMR_DCHECK(IsPowerOfTwo(u));
  WAVEMR_DCHECK(x < u);
  uint32_t levels = Log2Floor(u);
  std::vector<uint64_t> out;
  out.reserve(levels + 1);
  out.push_back(0);
  for (uint32_t j = 0; j < levels; ++j) {
    uint64_t k = x >> (levels - j);  // ancestor block of x at level j
    out.push_back((uint64_t{1} << j) + k);
  }
  return out;
}

}  // namespace wavemr
