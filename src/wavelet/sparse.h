#ifndef WAVEMR_WAVELET_SPARSE_H_
#define WAVEMR_WAVELET_SPARSE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "wavelet/coefficient.h"

namespace wavemr {

/// A sparse frequency vector: (key, weight) pairs with distinct keys over
/// domain [0, u). Weights are doubles so the same code paths serve exact
/// counts and sampled estimates.
using SparseVector = std::vector<std::pair<uint64_t, double>>;

/// Sparse forward Haar transform in O(|v| log u) time and O(output) space:
/// each nonzero entry contributes to exactly log2(u)+1 coefficients (its
/// error-tree path). This is the algorithm of Gilbert et al. [20] that the
/// paper uses inside mappers instead of the O(u) dense transform.
/// Returns the nonzero coefficients, sorted by index.
/// u must be a power of two; all keys must be < u.
std::vector<WCoeff> SparseHaar(const SparseVector& v, uint64_t u);

/// Same as SparseHaar but returns the coefficient map (useful when the
/// caller keeps accumulating).
std::unordered_map<uint64_t, double> SparseHaarMap(const SparseVector& v, uint64_t u);

/// Adds the contribution of a single point update v(x) += weight into an
/// accumulator map of coefficients. O(log u).
void AccumulatePointUpdate(uint64_t x, double weight, uint64_t u,
                           std::unordered_map<uint64_t, double>* coeffs);

/// Number of coefficient updates a point update performs (log2(u) + 1);
/// exposed so cost accounting in the MapReduce layer matches the algorithm.
uint32_t PointUpdateFanout(uint64_t u);

}  // namespace wavemr

#endif  // WAVEMR_WAVELET_SPARSE_H_
