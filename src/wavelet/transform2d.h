#ifndef WAVEMR_WAVELET_TRANSFORM2D_H_
#define WAVEMR_WAVELET_TRANSFORM2D_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "wavelet/coefficient.h"

namespace wavemr {

/// Standard 2-D Haar decomposition (Section 2.1 of the paper): a 1-D
/// transform over every row, then a 1-D transform over every column of the
/// result. Coefficient (a, b) equals psi_a^T V psi_b, so the transform stays
/// linear in v -- which is what lets H-WTopk run unchanged in 2-D.
///
/// Matrices are row-major with dimensions rows x cols, both powers of two.
std::vector<double> ForwardHaar2D(const std::vector<double>& v, uint64_t rows,
                                  uint64_t cols);

/// Exact inverse of ForwardHaar2D.
std::vector<double> InverseHaar2D(const std::vector<double>& coeffs, uint64_t rows,
                                  uint64_t cols);

/// Flattened coefficient id for the 2-D coefficient (a, b): a * cols + b.
inline uint64_t Coeff2DIndex(uint64_t a, uint64_t b, uint64_t cols) {
  return a * cols + b;
}

/// Sparse 2-D transform: each nonzero cell (x, y, weight) contributes to
/// (log2(rows)+1) * (log2(cols)+1) coefficients -- the tensor product of the
/// two 1-D error-tree paths. O(|v| log^2) time.
struct Cell2D {
  uint64_t x = 0;  // row
  uint64_t y = 0;  // column
  double weight = 0.0;
};
std::unordered_map<uint64_t, double> SparseHaar2DMap(const std::vector<Cell2D>& cells,
                                                     uint64_t rows, uint64_t cols);

/// Sorted-by-index vector form of SparseHaar2DMap.
std::vector<WCoeff> SparseHaar2D(const std::vector<Cell2D>& cells, uint64_t rows,
                                 uint64_t cols);

}  // namespace wavemr

#endif  // WAVEMR_WAVELET_TRANSFORM2D_H_
