#include "wavelet/sparse.h"

#include <algorithm>
#include <cmath>

#include "core/bitops.h"
#include "core/flat_hash.h"
#include "core/logging.h"
#include "core/simd.h"

namespace wavemr {

void AccumulatePointUpdate(uint64_t x, double weight, uint64_t u,
                           std::unordered_map<uint64_t, double>* coeffs) {
  WAVEMR_DCHECK(IsPowerOfTwo(u));
  WAVEMR_DCHECK(x < u);
  const uint32_t levels = Log2Floor(u);
  (*coeffs)[0] += weight / std::sqrt(static_cast<double>(u));
  for (uint32_t j = 0; j < levels; ++j) {
    uint64_t block = u >> j;
    uint64_t k = x / block;
    uint64_t offset = x - k * block;
    double mag = weight / std::sqrt(static_cast<double>(block));
    uint64_t index = (uint64_t{1} << j) + k;
    (*coeffs)[index] += (offset < block / 2) ? -mag : mag;
  }
}

uint32_t PointUpdateFanout(uint64_t u) { return Log2Floor(u) + 1; }

std::unordered_map<uint64_t, double> SparseHaarMap(const SparseVector& v, uint64_t u) {
  std::unordered_map<uint64_t, double> coeffs;
  coeffs.reserve(v.size() * 2);
  for (const auto& [key, weight] : v) {
    AccumulatePointUpdate(key, weight, u, &coeffs);
  }
  return coeffs;
}

std::vector<WCoeff> SparseHaar(const SparseVector& v, uint64_t u) {
  WAVEMR_DCHECK(IsPowerOfTwo(u));
  const uint32_t levels = Log2Floor(u);

  // Level-major restructuring of the per-key error-tree walk (the transform
  // is H-WTopk's round-1 bottleneck): one pass over the keys per coefficient
  // level, with that level's sqrt hoisted out of the loop and the per-key
  // block arithmetic reduced to shift/mask. The per-key index and signed
  // magnitude of each level run through the dispatched SIMD kernel
  // (core/simd.h) into flat scratch arrays -- the divide is the hot op and
  // vectorizes 4-wide -- and the map accumulation then applies them in v's
  // order. Per coefficient the contributions still arrive in v's order -- a
  // level touches disjoint indices, so key-major and level-major accumulate
  // every coefficient in the same order -- and the kernel's divide/sign-flip
  // are IEEE-exact, which keeps the result bit-identical to the scalar
  // AccumulatePointUpdate path in every tier (sparse_test proves it).
  FlatHashCounter<uint64_t, double> coeffs;
  coeffs.reserve(v.size() * 2);

  const double sqrt_u = std::sqrt(static_cast<double>(u));
  std::vector<uint64_t> keys(v.size());
  std::vector<double> weights(v.size());
  size_t n = 0;
  for (const auto& [key, weight] : v) {
    WAVEMR_DCHECK(key < u);
    coeffs[0] += weight / sqrt_u;
    keys[n] = key;
    weights[n] = weight;
    ++n;
  }
  const SimdKernels& simd = SimdK();
  std::vector<uint64_t> idx(n);
  std::vector<double> val(n);
  for (uint32_t j = 0; j < levels; ++j) {
    const uint64_t block = u >> j;
    const uint64_t half = block / 2;
    const uint64_t base = uint64_t{1} << j;
    const uint32_t shift = levels - j;  // log2(block)
    const double sqrt_block = std::sqrt(static_cast<double>(block));
    simd.sparse_level(keys.data(), weights.data(), n, shift, block - 1, half,
                      base, sqrt_block, idx.data(), val.data());
    for (size_t i = 0; i < n; ++i) {
      coeffs[idx[i]] += val[i];
    }
  }

  std::vector<WCoeff> out;
  out.reserve(coeffs.size());
  // Contributions can cancel exactly (balanced blocks); drop the zeros so
  // downstream code really sees only nonzero coefficients.
  for (const auto& [idx, val] : coeffs) {
    if (val != 0.0) out.push_back({idx, val});
  }
  std::sort(out.begin(), out.end(),
            [](const WCoeff& a, const WCoeff& b) { return a.index < b.index; });
  return out;
}

}  // namespace wavemr
