#include "wavelet/sparse.h"

#include <algorithm>
#include <cmath>

#include "core/bitops.h"
#include "core/logging.h"

namespace wavemr {

void AccumulatePointUpdate(uint64_t x, double weight, uint64_t u,
                           std::unordered_map<uint64_t, double>* coeffs) {
  WAVEMR_DCHECK(IsPowerOfTwo(u));
  WAVEMR_DCHECK(x < u);
  const uint32_t levels = Log2Floor(u);
  (*coeffs)[0] += weight / std::sqrt(static_cast<double>(u));
  for (uint32_t j = 0; j < levels; ++j) {
    uint64_t block = u >> j;
    uint64_t k = x / block;
    uint64_t offset = x - k * block;
    double mag = weight / std::sqrt(static_cast<double>(block));
    uint64_t index = (uint64_t{1} << j) + k;
    (*coeffs)[index] += (offset < block / 2) ? -mag : mag;
  }
}

uint32_t PointUpdateFanout(uint64_t u) { return Log2Floor(u) + 1; }

std::unordered_map<uint64_t, double> SparseHaarMap(const SparseVector& v, uint64_t u) {
  std::unordered_map<uint64_t, double> coeffs;
  coeffs.reserve(v.size() * 2);
  for (const auto& [key, weight] : v) {
    AccumulatePointUpdate(key, weight, u, &coeffs);
  }
  return coeffs;
}

std::vector<WCoeff> SparseHaar(const SparseVector& v, uint64_t u) {
  auto map = SparseHaarMap(v, u);
  std::vector<WCoeff> out;
  out.reserve(map.size());
  // Contributions can cancel exactly (balanced blocks); drop the zeros so
  // downstream code really sees only nonzero coefficients.
  for (const auto& [idx, val] : map) {
    if (val != 0.0) out.push_back({idx, val});
  }
  std::sort(out.begin(), out.end(),
            [](const WCoeff& a, const WCoeff& b) { return a.index < b.index; });
  return out;
}

}  // namespace wavemr
