#ifndef WAVEMR_WAVELET_HISTOGRAM_H_
#define WAVEMR_WAVELET_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "wavelet/coefficient.h"
#include "wavelet/sparse.h"

namespace wavemr {

/// A k-term wavelet synopsis of a frequency vector over domain [0, u):
/// the retained coefficients (typically the k of largest magnitude), with
/// everything else treated as zero. This is the object every algorithm in
/// the paper ultimately produces.
class WaveletHistogram {
 public:
  WaveletHistogram() : u_(1) {}

  /// coeffs need not be sorted; they are stored sorted by index. u must be a
  /// power of two and every index < u.
  WaveletHistogram(uint64_t u, std::vector<WCoeff> coeffs);

  uint64_t domain_size() const { return u_; }
  size_t num_terms() const { return coeffs_.size(); }
  const std::vector<WCoeff>& coefficients() const { return coeffs_; }

  // Estimation (point/range queries, SSE evaluation) lives in the serve
  // layer: freeze the histogram into a HistogramSnapshot (either directly or
  // via BuildResult::ToSnapshot) and use serve/estimator.h. This type stays
  // the algorithms' raw output: coefficients plus the dense reconstruction.

  /// Full reconstructed frequency vector (length u). O(u) via the dense
  /// inverse transform; intended for small domains / testing.
  std::vector<double> Reconstruct() const;

  /// Energy of the synopsis = sum of squared retained coefficients.
  double Energy() const;

 private:
  uint64_t u_;
  std::vector<WCoeff> coeffs_;  // sorted by index
};

/// SSE of the *best possible* k-term synopsis (keep the k largest magnitude
/// true coefficients): total energy minus retained energy. This is the
/// "Ideal SSE" line in Figures 6/7.
double IdealSse(const std::vector<WCoeff>& true_coeffs, size_t k);

/// Total energy sum w_i^2 of a coefficient set (== ||v||^2 by Parseval).
double TotalEnergy(const std::vector<WCoeff>& coeffs);

}  // namespace wavemr

#endif  // WAVEMR_WAVELET_HISTOGRAM_H_
