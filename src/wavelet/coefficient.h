#ifndef WAVEMR_WAVELET_COEFFICIENT_H_
#define WAVEMR_WAVELET_COEFFICIENT_H_

#include <cstdint>
#include <vector>

#include "core/bitops.h"
#include "core/logging.h"

namespace wavemr {

/// One normalized Haar wavelet coefficient. Indexing is 0-based:
///   index 0             -> the overall-average coefficient (basis 1/sqrt(u)),
///   index 2^j + k       -> the detail coefficient of level j (j = 0 ..
///                          log2(u)-1) and block k (k = 0 .. 2^j - 1).
/// This matches the paper's 1-based w_i via index = i - 1.
struct WCoeff {
  uint64_t index = 0;
  double value = 0.0;

  friend bool operator==(const WCoeff& a, const WCoeff& b) {
    return a.index == b.index && a.value == b.value;
  }
};

/// Level j of a detail coefficient; index 0 (the average) reports level 0.
inline uint32_t CoefficientLevel(uint64_t index) {
  return index == 0 ? 0 : Log2Floor(index);
}

/// Half-open support [lo, hi) of the basis vector of `index` over domain
/// [0, u). The average coefficient covers the whole domain.
struct CoeffSupport {
  uint64_t lo;
  uint64_t hi;
};

inline CoeffSupport CoefficientSupport(uint64_t index, uint64_t u) {
  WAVEMR_DCHECK(IsPowerOfTwo(u));
  if (index == 0) return {0, u};
  uint32_t j = Log2Floor(index);
  uint64_t k = index - (uint64_t{1} << j);
  uint64_t block = u >> j;  // support length u / 2^j
  return {k * block, k * block + block};
}

/// Value of the normalized basis vector psi_index at position x, i.e. the
/// weight by which v(x) contributes to coefficient `index`:
///   index 0: 1/sqrt(u) everywhere;
///   detail:  -1/sqrt(u/2^j) on the left half of its support,
///            +1/sqrt(u/2^j) on the right half, 0 outside.
double BasisValue(uint64_t index, uint64_t x, uint64_t u);

/// Sum of psi_index over the key range [lo, hi) -- the O(1) building block of
/// range-sum estimation from a wavelet synopsis.
double BasisRangeSum(uint64_t index, uint64_t lo, uint64_t hi, uint64_t u);

/// The log2(u)+1 coefficient indices whose basis vectors are non-zero at x:
/// the average plus one detail per level (the root-to-leaf path in the error
/// tree). This is the core identity behind the sparse transform, sketch
/// updates, and point reconstruction.
std::vector<uint64_t> PathIndices(uint64_t x, uint64_t u);

}  // namespace wavemr

#endif  // WAVEMR_WAVELET_COEFFICIENT_H_
