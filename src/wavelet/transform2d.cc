#include "wavelet/transform2d.h"

#include <algorithm>

#include "core/bitops.h"
#include "core/logging.h"
#include "wavelet/haar.h"

namespace wavemr {

namespace {

void CheckDims(size_t size, uint64_t rows, uint64_t cols) {
  WAVEMR_CHECK(IsPowerOfTwo(rows));
  WAVEMR_CHECK(IsPowerOfTwo(cols));
  WAVEMR_CHECK_EQ(size, rows * cols);
}

}  // namespace

std::vector<double> ForwardHaar2D(const std::vector<double>& v, uint64_t rows,
                                  uint64_t cols) {
  CheckDims(v.size(), rows, cols);
  std::vector<double> out(v.size());
  // Rows.
  std::vector<double> row(cols);
  for (uint64_t r = 0; r < rows; ++r) {
    std::copy_n(v.begin() + r * cols, cols, row.begin());
    std::vector<double> t = ForwardHaar(row);
    std::copy(t.begin(), t.end(), out.begin() + r * cols);
  }
  // Columns.
  std::vector<double> col(rows);
  for (uint64_t c = 0; c < cols; ++c) {
    for (uint64_t r = 0; r < rows; ++r) col[r] = out[r * cols + c];
    std::vector<double> t = ForwardHaar(col);
    for (uint64_t r = 0; r < rows; ++r) out[r * cols + c] = t[r];
  }
  return out;
}

std::vector<double> InverseHaar2D(const std::vector<double>& coeffs, uint64_t rows,
                                  uint64_t cols) {
  CheckDims(coeffs.size(), rows, cols);
  std::vector<double> out = coeffs;
  // Columns first (inverse order of the forward pass).
  std::vector<double> col(rows);
  for (uint64_t c = 0; c < cols; ++c) {
    for (uint64_t r = 0; r < rows; ++r) col[r] = out[r * cols + c];
    std::vector<double> t = InverseHaar(col);
    for (uint64_t r = 0; r < rows; ++r) out[r * cols + c] = t[r];
  }
  // Rows.
  std::vector<double> row(cols);
  for (uint64_t r = 0; r < rows; ++r) {
    std::copy_n(out.begin() + r * cols, cols, row.begin());
    std::vector<double> t = InverseHaar(row);
    std::copy(t.begin(), t.end(), out.begin() + r * cols);
  }
  return out;
}

std::unordered_map<uint64_t, double> SparseHaar2DMap(const std::vector<Cell2D>& cells,
                                                     uint64_t rows, uint64_t cols) {
  WAVEMR_CHECK(IsPowerOfTwo(rows));
  WAVEMR_CHECK(IsPowerOfTwo(cols));
  std::unordered_map<uint64_t, double> out;
  out.reserve(cells.size() * 4);
  for (const Cell2D& cell : cells) {
    WAVEMR_CHECK_LT(cell.x, rows);
    WAVEMR_CHECK_LT(cell.y, cols);
    std::vector<uint64_t> row_path = PathIndices(cell.x, rows);
    std::vector<uint64_t> col_path = PathIndices(cell.y, cols);
    for (uint64_t a : row_path) {
      double pa = BasisValue(a, cell.x, rows);
      for (uint64_t b : col_path) {
        double pb = BasisValue(b, cell.y, cols);
        out[Coeff2DIndex(a, b, cols)] += cell.weight * pa * pb;
      }
    }
  }
  return out;
}

std::vector<WCoeff> SparseHaar2D(const std::vector<Cell2D>& cells, uint64_t rows,
                                 uint64_t cols) {
  auto map = SparseHaar2DMap(cells, rows, cols);
  std::vector<WCoeff> out;
  out.reserve(map.size());
  for (const auto& [idx, val] : map) out.push_back({idx, val});
  std::sort(out.begin(), out.end(),
            [](const WCoeff& a, const WCoeff& b) { return a.index < b.index; });
  return out;
}

}  // namespace wavemr
