#include "wavelet/topk.h"

#include <algorithm>
#include <cmath>

namespace wavemr {

namespace {

bool MagnitudeGreater(const WCoeff& a, const WCoeff& b) {
  double ma = std::fabs(a.value), mb = std::fabs(b.value);
  if (ma != mb) return ma > mb;
  return a.index < b.index;
}

bool ValueGreater(const WCoeff& a, const WCoeff& b) {
  if (a.value != b.value) return a.value > b.value;
  return a.index < b.index;
}

bool ValueLess(const WCoeff& a, const WCoeff& b) {
  if (a.value != b.value) return a.value < b.value;
  return a.index < b.index;
}

}  // namespace

std::vector<WCoeff> TopKByMagnitude(std::vector<WCoeff> coeffs, size_t k) {
  if (coeffs.size() > k) {
    std::nth_element(coeffs.begin(), coeffs.begin() + k, coeffs.end(),
                     MagnitudeGreater);
    coeffs.resize(k);
  }
  std::sort(coeffs.begin(), coeffs.end(), MagnitudeGreater);
  return coeffs;
}

TopBottomK SelectTopBottomK(const std::vector<WCoeff>& coeffs, size_t k) {
  TopBottomK out;
  out.top = coeffs;
  if (out.top.size() > k) {
    std::nth_element(out.top.begin(), out.top.begin() + k, out.top.end(),
                     ValueGreater);
    out.top.resize(k);
  }
  std::sort(out.top.begin(), out.top.end(), ValueGreater);

  out.bottom = coeffs;
  if (out.bottom.size() > k) {
    std::nth_element(out.bottom.begin(), out.bottom.begin() + k, out.bottom.end(),
                     ValueLess);
    out.bottom.resize(k);
  }
  std::sort(out.bottom.begin(), out.bottom.end(), ValueLess);
  return out;
}

}  // namespace wavemr
