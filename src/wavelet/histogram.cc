#include "wavelet/histogram.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/bitops.h"
#include "core/logging.h"
#include "wavelet/haar.h"
#include "wavelet/topk.h"

namespace wavemr {

WaveletHistogram::WaveletHistogram(uint64_t u, std::vector<WCoeff> coeffs)
    : u_(u), coeffs_(std::move(coeffs)) {
  WAVEMR_CHECK(IsPowerOfTwo(u)) << "domain size must be a power of two, got " << u;
  for (const WCoeff& c : coeffs_) {
    WAVEMR_CHECK_LT(c.index, u_);
  }
  std::sort(coeffs_.begin(), coeffs_.end(),
            [](const WCoeff& a, const WCoeff& b) { return a.index < b.index; });
}

double WaveletHistogram::PointEstimate(uint64_t x) const {
  WAVEMR_CHECK_LT(x, u_);
  double est = 0.0;
  for (const WCoeff& c : coeffs_) {
    est += c.value * BasisValue(c.index, x, u_);
  }
  return est;
}

double WaveletHistogram::RangeSum(uint64_t lo, uint64_t hi) const {
  WAVEMR_CHECK_LE(lo, hi);
  WAVEMR_CHECK_LE(hi, u_);
  double est = 0.0;
  for (const WCoeff& c : coeffs_) {
    est += c.value * BasisRangeSum(c.index, lo, hi, u_);
  }
  return est;
}

std::vector<double> WaveletHistogram::Reconstruct() const {
  std::vector<double> dense(u_, 0.0);
  for (const WCoeff& c : coeffs_) dense[c.index] = c.value;
  return InverseHaar(dense);
}

double WaveletHistogram::Energy() const {
  double e = 0.0;
  for (const WCoeff& c : coeffs_) e += c.value * c.value;
  return e;
}

double TotalEnergy(const std::vector<WCoeff>& coeffs) {
  double e = 0.0;
  for (const WCoeff& c : coeffs) e += c.value * c.value;
  return e;
}

double SseAgainstTrueCoefficients(const WaveletHistogram& hist,
                                  const std::vector<WCoeff>& true_coeffs) {
  // Start from "drop everything" (SSE = total energy), then for each kept
  // coefficient swap w^2 for (w - what)^2.
  std::unordered_map<uint64_t, double> truth;
  truth.reserve(true_coeffs.size() * 2);
  double sse = 0.0;
  for (const WCoeff& c : true_coeffs) {
    truth.emplace(c.index, c.value);
    sse += c.value * c.value;
  }
  for (const WCoeff& kept : hist.coefficients()) {
    auto it = truth.find(kept.index);
    double w = it == truth.end() ? 0.0 : it->second;
    sse -= w * w;
    double d = w - kept.value;
    sse += d * d;
  }
  return sse;
}

double IdealSse(const std::vector<WCoeff>& true_coeffs, size_t k) {
  std::vector<WCoeff> kept = TopKByMagnitude(true_coeffs, k);
  double sse = TotalEnergy(true_coeffs) - TotalEnergy(kept);
  return sse < 0 ? 0 : sse;  // guard tiny negative from rounding
}

}  // namespace wavemr
