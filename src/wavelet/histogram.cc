#include "wavelet/histogram.h"

#include <algorithm>

#include "core/bitops.h"
#include "core/logging.h"
#include "wavelet/haar.h"
#include "wavelet/topk.h"

namespace wavemr {

WaveletHistogram::WaveletHistogram(uint64_t u, std::vector<WCoeff> coeffs)
    : u_(u), coeffs_(std::move(coeffs)) {
  WAVEMR_CHECK(IsPowerOfTwo(u)) << "domain size must be a power of two, got " << u;
  for (const WCoeff& c : coeffs_) {
    WAVEMR_CHECK_LT(c.index, u_);
  }
  std::sort(coeffs_.begin(), coeffs_.end(),
            [](const WCoeff& a, const WCoeff& b) { return a.index < b.index; });
}

std::vector<double> WaveletHistogram::Reconstruct() const {
  std::vector<double> dense(u_, 0.0);
  for (const WCoeff& c : coeffs_) dense[c.index] = c.value;
  return InverseHaar(dense);
}

double WaveletHistogram::Energy() const {
  double e = 0.0;
  for (const WCoeff& c : coeffs_) e += c.value * c.value;
  return e;
}

double TotalEnergy(const std::vector<WCoeff>& coeffs) {
  double e = 0.0;
  for (const WCoeff& c : coeffs) e += c.value * c.value;
  return e;
}

double IdealSse(const std::vector<WCoeff>& true_coeffs, size_t k) {
  std::vector<WCoeff> kept = TopKByMagnitude(true_coeffs, k);
  double sse = TotalEnergy(true_coeffs) - TotalEnergy(kept);
  return sse < 0 ? 0 : sse;  // guard tiny negative from rounding
}

}  // namespace wavemr
