#ifndef WAVEMR_SKETCH_WAVELET_GCS_H_
#define WAVEMR_SKETCH_WAVELET_GCS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sketch/group_count_sketch.h"
#include "wavelet/coefficient.h"

namespace wavemr {

/// Configuration of the hierarchical GCS wavelet tracker.
struct WaveletGcsOptions {
  uint64_t seed = 1;
  /// Median repetitions per level (t in the EDBT'06 paper).
  size_t reps = 3;
  /// Sub-buckets per bucket (c).
  size_t subbuckets = 8;
  /// Search degree bits: groups shrink by 2^degree_bits per level. 3 gives
  /// the paper's GCS-8 ("overall best per-item update cost").
  uint32_t degree_bits = 3;
  /// Total space across all levels; 0 applies the paper's recommended
  /// 20 KB * log2(u).
  uint64_t total_bytes = 0;
};

/// Wavelet-domain synopsis built from Group-Count Sketches over a dyadic
/// hierarchy of coefficient groups (Cormode et al. [13]): level 0 sketches
/// singleton coefficients, level l sketches groups of 2^(l*degree_bits)
/// consecutive coefficient indices. A data-domain point update touches
/// log2(u)+1 coefficients, each updated in every level -- this multiplicative
/// per-item cost is precisely why Send-Sketch loses the running-time race in
/// the paper's Figure 5(b).
///
/// Heavy coefficients are recovered by descending the hierarchy from the
/// root, expanding only groups whose estimated energy clears a threshold.
class WaveletGcs {
 public:
  /// Deepest supported error tree (u <= 2^60); bounds the stack buffers the
  /// bulk update path uses.
  static constexpr uint32_t kMaxTreeDepth = 60;

  WaveletGcs(uint64_t u, const WaveletGcsOptions& options);

  uint64_t domain_size() const { return u_; }
  size_t num_levels() const { return levels_.size(); }

  /// v(x) += count in the *data* domain (translates to log2(u)+1 coefficient
  /// updates).
  void UpdateData(uint64_t x, double count);

  /// w(index) += delta in the coefficient domain.
  void UpdateCoeff(uint64_t index, double delta);

  /// Point estimate of coefficient `index` from the singleton level.
  double EstimateCoeff(uint64_t index) const;

  /// Estimated total coefficient energy (from the root level's groups).
  double EstimateEnergy() const;

  /// Hierarchical search for the k coefficients of largest |estimate|. The
  /// threshold starts at energy/(2k) and halves until enough candidates
  /// emerge (bounded by max_candidates to keep the search near O(k)).
  std::vector<WCoeff> FindTopK(size_t k, size_t max_candidates = 8192) const;

  void Merge(const WaveletGcs& other);

  /// Counter updates performed per data-domain point update; used by the
  /// MapReduce layer to charge CPU faithfully.
  uint64_t CounterUpdatesPerDataPoint() const;

  /// Total and non-zero counters (a mapper ships only the non-zero ones).
  size_t NumCounters() const;
  uint64_t NonzeroCounters() const;

  /// Iterates non-zero counters as (flat_index, value) across all levels --
  /// the wire format of Send-Sketch.
  void ForEachNonzeroCounter(const std::function<void(uint64_t, double)>& fn) const;

  /// Adds `delta` into the counter with the given flat index (reducer-side
  /// merge from shuffled pairs).
  void AddToFlatCounter(uint64_t flat_index, double delta);

 private:
  uint64_t GroupAtLevel(uint64_t index, size_t level) const {
    return index >> (degree_bits_ * level);
  }
  uint64_t NumGroupsAtLevel(size_t level) const;

  uint64_t u_;
  uint32_t degree_bits_;
  std::vector<GroupCountSketch> levels_;
  std::vector<uint64_t> level_offsets_;  // flat counter index base per level
};

}  // namespace wavemr

#endif  // WAVEMR_SKETCH_WAVELET_GCS_H_
