#include "sketch/wavelet_gcs.h"

#include <algorithm>
#include <cmath>

#include "core/bitops.h"
#include "core/logging.h"
#include "wavelet/topk.h"

namespace wavemr {

WaveletGcs::WaveletGcs(uint64_t u, const WaveletGcsOptions& options)
    : u_(u), degree_bits_(options.degree_bits) {
  WAVEMR_CHECK(IsPowerOfTwo(u));
  WAVEMR_CHECK_GE(options.degree_bits, 1u);
  const uint32_t bits = Log2Floor(u);
  WAVEMR_CHECK_LE(bits, kMaxTreeDepth);
  // Levels 0..L, where the root level has at most 2^degree_bits groups.
  size_t num_levels = 1;
  while (bits > degree_bits_ * (num_levels - 1) + degree_bits_) ++num_levels;
  ++num_levels;  // include the singleton level 0 and the root

  uint64_t total_bytes = options.total_bytes;
  if (total_bytes == 0) total_bytes = 20480ull * bits;  // paper's 20KB*log2(u)
  uint64_t per_level_bytes = std::max<uint64_t>(total_bytes / num_levels, 64);

  for (size_t l = 0; l < num_levels; ++l) {
    size_t counters = per_level_bytes / sizeof(double);
    size_t buckets =
        std::max<size_t>(1, counters / (options.reps * options.subbuckets));
    level_offsets_.push_back(l == 0 ? 0
                                    : level_offsets_.back() +
                                          levels_.back().NumCounters());
    levels_.emplace_back(Mix64(options.seed ^ (l + 17)), options.reps, buckets,
                         options.subbuckets);
  }
}

uint64_t WaveletGcs::NumGroupsAtLevel(size_t level) const {
  uint64_t shift = degree_bits_ * level;
  if (shift >= 64) return 1;
  return std::max<uint64_t>(1, CeilDiv(u_, uint64_t{1} << shift));
}

void WaveletGcs::UpdateData(uint64_t x, double count) {
  const uint32_t bits = Log2Floor(u_);
  // The error-tree path of x: the average coefficient plus one detail
  // coefficient per level, in ascending index order. Built once on the
  // stack, then bulk-applied level by level -- each sketch level walks the
  // whole (sorted) path with its per-repetition hashes in registers and the
  // group bucket reused across items that share a dyadic group.
  uint64_t indices[kMaxTreeDepth + 1];
  double deltas[kMaxTreeDepth + 1];
  WAVEMR_DCHECK(bits <= kMaxTreeDepth);
  indices[0] = 0;
  deltas[0] = count / std::sqrt(static_cast<double>(u_));
  for (uint32_t j = 0; j < bits; ++j) {
    uint64_t block = u_ >> j;
    uint64_t k = x / block;
    uint64_t offset = x - k * block;
    double mag = count / std::sqrt(static_cast<double>(block));
    indices[j + 1] = (uint64_t{1} << j) + k;
    deltas[j + 1] = (offset < block / 2) ? -mag : mag;
  }
  const size_t n = bits + 1;
  for (size_t l = 0; l < levels_.size(); ++l) {
    levels_[l].UpdateBatch(indices, deltas, n,
                           static_cast<uint32_t>(degree_bits_) *
                               static_cast<uint32_t>(l));
  }
}

void WaveletGcs::UpdateCoeff(uint64_t index, double delta) {
  WAVEMR_DCHECK(index < u_);
  for (size_t l = 0; l < levels_.size(); ++l) {
    levels_[l].Update(GroupAtLevel(index, l), index, delta);
  }
}

double WaveletGcs::EstimateCoeff(uint64_t index) const {
  return levels_[0].EstimateItem(index, index);
}

double WaveletGcs::EstimateEnergy() const {
  const size_t root = levels_.size() - 1;
  uint64_t groups = NumGroupsAtLevel(root);
  double energy = 0.0;
  for (uint64_t g = 0; g < groups; ++g) energy += levels_[root].GroupEnergy(g);
  return energy;
}

std::vector<WCoeff> WaveletGcs::FindTopK(size_t k, size_t max_candidates) const {
  const size_t root = levels_.size() - 1;
  const double energy = EstimateEnergy();
  // Noise floor of a singleton energy query: a random level-0 bucket carries
  // ~energy/buckets of colliding mass, so thresholds below ~2x that admit
  // indistinguishable-from-noise candidates whose value estimates would
  // *add* error. When the sketch is too small to resolve k coefficients we
  // return fewer -- strictly better for SSE than returning noise.
  const double floor =
      2.0 * energy / static_cast<double>(levels_[0].buckets());
  double threshold = energy / (2.0 * static_cast<double>(std::max<size_t>(k, 1)));
  if (threshold < floor) threshold = floor;

  std::vector<uint64_t> candidates;
  for (int attempt = 0; attempt < 40; ++attempt) {
    candidates.clear();
    // Descend from the root, expanding groups whose energy clears the
    // threshold.
    std::vector<uint64_t> frontier;
    uint64_t root_groups = NumGroupsAtLevel(root);
    for (uint64_t g = 0; g < root_groups; ++g) {
      if (levels_[root].GroupEnergy(g) >= threshold) frontier.push_back(g);
    }
    bool overflow = false;
    for (size_t l = root; l-- > 0 && !overflow;) {
      std::vector<uint64_t> next;
      uint64_t groups_at_l = NumGroupsAtLevel(l);
      for (uint64_t g : frontier) {
        uint64_t first_child = g << degree_bits_;
        uint64_t fanout = uint64_t{1} << degree_bits_;
        for (uint64_t c = 0; c < fanout; ++c) {
          uint64_t child = first_child + c;
          if (child >= groups_at_l) break;
          if (levels_[l].GroupEnergy(child) >= threshold) next.push_back(child);
        }
        if (next.size() > max_candidates) {
          overflow = true;
          break;
        }
      }
      frontier = std::move(next);
    }
    if (!overflow) candidates = std::move(frontier);

    if (overflow) break;  // keep the last non-overflowing candidate set
    if (candidates.size() >= k || threshold <= floor) break;
    threshold = std::max(threshold / 2.0, floor);
  }

  std::vector<WCoeff> estimates;
  estimates.reserve(candidates.size());
  for (uint64_t idx : candidates) {
    if (idx >= u_) continue;
    estimates.push_back({idx, EstimateCoeff(idx)});
  }
  return TopKByMagnitude(std::move(estimates), k);
}

void WaveletGcs::Merge(const WaveletGcs& other) {
  WAVEMR_CHECK_EQ(u_, other.u_);
  WAVEMR_CHECK_EQ(levels_.size(), other.levels_.size());
  for (size_t l = 0; l < levels_.size(); ++l) levels_[l].Merge(other.levels_[l]);
}

uint64_t WaveletGcs::CounterUpdatesPerDataPoint() const {
  // log2(u)+1 coefficients per point, each updated in every level, in every
  // repetition.
  return static_cast<uint64_t>(Log2Floor(u_) + 1) * levels_.size() *
         levels_[0].reps();
}

size_t WaveletGcs::NumCounters() const {
  return level_offsets_.back() + levels_.back().NumCounters();
}

uint64_t WaveletGcs::NonzeroCounters() const {
  uint64_t n = 0;
  for (const GroupCountSketch& s : levels_) n += s.NonzeroCounters();
  return n;
}

void WaveletGcs::ForEachNonzeroCounter(
    const std::function<void(uint64_t, double)>& fn) const {
  for (size_t l = 0; l < levels_.size(); ++l) {
    for (size_t i = 0; i < levels_[l].NumCounters(); ++i) {
      double v = levels_[l].CounterAt(i);
      if (v != 0.0) fn(level_offsets_[l] + i, v);
    }
  }
}

void WaveletGcs::AddToFlatCounter(uint64_t flat_index, double delta) {
  // Locate the owning level via the offsets.
  size_t l = levels_.size() - 1;
  while (flat_index < level_offsets_[l]) --l;
  levels_[l].AddToCounter(flat_index - level_offsets_[l], delta);
}

}  // namespace wavemr
