#include "sketch/count_sketch.h"

#include <algorithm>

#include "core/logging.h"

namespace wavemr {

CountSketch::CountSketch(uint64_t seed, size_t depth, size_t width)
    : depth_(depth), width_(width), seed_(seed), table_(depth * width, 0.0) {
  WAVEMR_CHECK_GE(depth, 1u);
  WAVEMR_CHECK_GE(width, 1u);
  bucket_hash_.reserve(depth);
  sign_hash_.reserve(depth);
  for (size_t r = 0; r < depth; ++r) {
    bucket_hash_.emplace_back(Mix64(seed ^ (2 * r + 1)), 2);
    sign_hash_.emplace_back(Mix64(seed ^ (2 * r + 2)), 4);
  }
}

void CountSketch::Update(uint64_t item, double value) {
  for (size_t r = 0; r < depth_; ++r) {
    size_t bucket = bucket_hash_[r].Bucket(item, width_);
    table_[r * width_ + bucket] += sign_hash_[r].Sign(item) * value;
  }
}

double CountSketch::Estimate(uint64_t item) const {
  std::vector<double> est(depth_);
  for (size_t r = 0; r < depth_; ++r) {
    size_t bucket = bucket_hash_[r].Bucket(item, width_);
    est[r] = sign_hash_[r].Sign(item) * table_[r * width_ + bucket];
  }
  std::nth_element(est.begin(), est.begin() + est.size() / 2, est.end());
  return est[est.size() / 2];
}

void CountSketch::Merge(const CountSketch& other) {
  WAVEMR_CHECK_EQ(depth_, other.depth_);
  WAVEMR_CHECK_EQ(width_, other.width_);
  WAVEMR_CHECK_EQ(seed_, other.seed_);
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
}

uint64_t CountSketch::NonzeroCounters() const {
  uint64_t n = 0;
  for (double v : table_) n += (v != 0.0) ? 1 : 0;
  return n;
}

}  // namespace wavemr
