#include "sketch/group_count_sketch.h"

#include <algorithm>

#include "core/logging.h"

namespace wavemr {

GroupCountSketch::GroupCountSketch(uint64_t seed, size_t reps, size_t buckets,
                                   size_t subbuckets)
    : reps_(reps),
      buckets_(buckets),
      subbuckets_(subbuckets),
      seed_(seed),
      table_(reps * buckets * subbuckets, 0.0) {
  WAVEMR_CHECK_GE(reps, 1u);
  WAVEMR_CHECK_GE(buckets, 1u);
  WAVEMR_CHECK_GE(subbuckets, 1u);
  group_hash_.reserve(reps);
  item_hash_.reserve(reps);
  sign_hash_.reserve(reps);
  for (size_t r = 0; r < reps; ++r) {
    group_hash_.emplace_back(Mix64(seed ^ (3 * r + 1)), 2);
    item_hash_.emplace_back(Mix64(seed ^ (3 * r + 2)), 2);
    sign_hash_.emplace_back(Mix64(seed ^ (3 * r + 3)), 4);
  }
}

size_t GroupCountSketch::CellIndex(size_t rep, uint64_t group, uint64_t item) const {
  size_t bucket = group_hash_[rep].Bucket(group, buckets_);
  size_t sub = item_hash_[rep].Bucket(item, subbuckets_);
  return (rep * buckets_ + bucket) * subbuckets_ + sub;
}

void GroupCountSketch::Update(uint64_t group, uint64_t item, double value) {
  for (size_t r = 0; r < reps_; ++r) {
    table_[CellIndex(r, group, item)] += sign_hash_[r].Sign(item) * value;
  }
}

double GroupCountSketch::GroupEnergy(uint64_t group) const {
  std::vector<double> est(reps_);
  for (size_t r = 0; r < reps_; ++r) {
    size_t bucket = group_hash_[r].Bucket(group, buckets_);
    const double* cell = &table_[(r * buckets_ + bucket) * subbuckets_];
    double energy = 0.0;
    for (size_t s = 0; s < subbuckets_; ++s) energy += cell[s] * cell[s];
    est[r] = energy;
  }
  std::nth_element(est.begin(), est.begin() + reps_ / 2, est.end());
  return est[reps_ / 2];
}

double GroupCountSketch::EstimateItem(uint64_t group, uint64_t item) const {
  std::vector<double> est(reps_);
  for (size_t r = 0; r < reps_; ++r) {
    est[r] = sign_hash_[r].Sign(item) * table_[CellIndex(r, group, item)];
  }
  std::nth_element(est.begin(), est.begin() + reps_ / 2, est.end());
  return est[reps_ / 2];
}

void GroupCountSketch::Merge(const GroupCountSketch& other) {
  WAVEMR_CHECK_EQ(reps_, other.reps_);
  WAVEMR_CHECK_EQ(buckets_, other.buckets_);
  WAVEMR_CHECK_EQ(subbuckets_, other.subbuckets_);
  WAVEMR_CHECK_EQ(seed_, other.seed_);
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
}

uint64_t GroupCountSketch::NonzeroCounters() const {
  uint64_t n = 0;
  for (double v : table_) n += (v != 0.0) ? 1 : 0;
  return n;
}

}  // namespace wavemr
