#include "sketch/group_count_sketch.h"

#include <algorithm>

#include "core/logging.h"

namespace wavemr {

namespace {

constexpr uint64_t kPrime = PolyHash::kPrime;

// Degree-2 polynomial over GF(2^61 - 1), Horner order matching
// PolyHash::Hash so values are bit-identical.
inline uint64_t Hash2(const uint64_t c[2], uint64_t xr) {
  uint64_t acc = MulMod61(c[1], xr) + c[0];
  return acc >= kPrime ? acc - kPrime : acc;
}

// Degree-4 polynomial, same Horner order as PolyHash::Hash.
inline uint64_t Hash4(const uint64_t c[4], uint64_t xr) {
  uint64_t acc = MulMod61(c[3], xr) + c[2];
  if (acc >= kPrime) acc -= kPrime;
  acc = MulMod61(acc, xr) + c[1];
  if (acc >= kPrime) acc -= kPrime;
  acc = MulMod61(acc, xr) + c[0];
  return acc >= kPrime ? acc - kPrime : acc;
}

void CopyCoeffs(const PolyHash& hash, uint64_t* out, size_t degree) {
  const std::vector<uint64_t>& coeffs = hash.coeffs();
  WAVEMR_CHECK_EQ(coeffs.size(), degree);
  std::copy(coeffs.begin(), coeffs.end(), out);
}

}  // namespace

GroupCountSketch::GroupCountSketch(uint64_t seed, size_t reps, size_t buckets,
                                   size_t subbuckets)
    : reps_(reps),
      buckets_(buckets),
      subbuckets_(subbuckets),
      seed_(seed),
      table_(reps * buckets * subbuckets, 0.0) {
  WAVEMR_CHECK_GE(reps, 1u);
  WAVEMR_CHECK_LE(reps, kMaxReps);
  WAVEMR_CHECK_GE(buckets, 1u);
  WAVEMR_CHECK_GE(subbuckets, 1u);
  rep_hash_.resize(reps);
  for (size_t r = 0; r < reps; ++r) {
    CopyCoeffs(PolyHash(Mix64(seed ^ (3 * r + 1)), 2), rep_hash_[r].g, 2);
    CopyCoeffs(PolyHash(Mix64(seed ^ (3 * r + 2)), 2), rep_hash_[r].i, 2);
    CopyCoeffs(PolyHash(Mix64(seed ^ (3 * r + 3)), 4), rep_hash_[r].s, 4);
  }
}

void GroupCountSketch::Update(uint64_t group, uint64_t item, double value) {
  const uint64_t gr = group % kPrime;
  const uint64_t ir = item % kPrime;
  const size_t row_stride = buckets_ * subbuckets_;
  double* rep_row = table_.data();
  for (size_t r = 0; r < reps_; ++r, rep_row += row_stride) {
    const RepHash& h = rep_hash_[r];
    double* cell = rep_row + (Hash2(h.g, gr) % buckets_) * subbuckets_ +
                   Hash2(h.i, ir) % subbuckets_;
    *cell += (Hash4(h.s, ir) & 1) ? value : -value;
  }
}

template <bool kPow2Sub>
void GroupCountSketch::UpdateBatchImpl(const uint64_t* items, const double* values,
                                       size_t n, uint32_t group_shift) {
  // Blocked rep-outer loop: within a block each repetition's hash
  // coefficients stay in registers and the group bucket is reused across
  // runs of items sharing a dyadic group, while the block bound keeps the
  // item/value stream L1-resident across the `reps` passes. Per-cell add
  // order equals the scalar loop's (items in order within each rep), so
  // results are bit-identical to calling Update n times. The sub-bucket
  // reduction -- one per counter touch, the single hottest op in
  // Send-Sketch -- compiles to a mask when subbuckets is a power of two
  // (the default) instead of a runtime 64-bit division.
  constexpr size_t kBlock = 256;
  const uint64_t sub_mask = subbuckets_ - 1;  // valid only when kPow2Sub
  const size_t row_stride = buckets_ * subbuckets_;
  // Per-item hash memo for the low indices every error-tree path shares
  // (see kMemoItems). Filled on first touch with the exact hash results, so
  // memo hits and misses produce the same counter updates bit for bit. The
  // packed slot keeps the sub-bucket in 31 bits; absurdly wide tables just
  // skip the memo.
  const uint64_t memo_bound = subbuckets_ <= (uint64_t{1} << 30) ? kMemoItems : 0;
  if (memo_bound > 0 && item_memo_.empty()) {
    item_memo_.assign(reps_ * kMemoItems, kMemoEmpty);
  }
  for (size_t base = 0; base < n; base += kBlock) {
    const size_t end = std::min(n, base + kBlock);
    double* rep_row = table_.data();
    for (size_t r = 0; r < reps_; ++r, rep_row += row_stride) {
      const RepHash h = rep_hash_[r];
      uint32_t* memo_row =
          memo_bound > 0 ? item_memo_.data() + r * kMemoItems : nullptr;
      uint64_t cached_group = ~uint64_t{0};
      double* row = nullptr;
      for (size_t k = base; k < end; ++k) {
        const uint64_t item = items[k];
        const uint64_t group = group_shift >= 64 ? 0 : item >> group_shift;
        if (group != cached_group || row == nullptr) {
          cached_group = group;
          row = rep_row + (Hash2(h.g, group % kPrime) % buckets_) * subbuckets_;
        }
        uint64_t sub;
        bool positive;
        if (item < memo_bound) {
          uint32_t slot = memo_row[item];
          if (slot == kMemoEmpty) {
            const uint64_t ir = item % kPrime;
            const uint64_t ih = Hash2(h.i, ir);
            sub = kPow2Sub ? (ih & sub_mask) : (ih % subbuckets_);
            positive = (Hash4(h.s, ir) & 1) != 0;
            memo_row[item] = static_cast<uint32_t>(sub) |
                             (positive ? 0x80000000u : 0u);
          } else {
            sub = slot & 0x7FFFFFFFu;
            positive = (slot >> 31) != 0;
          }
        } else {
          const uint64_t ir = item % kPrime;
          const uint64_t ih = Hash2(h.i, ir);
          sub = kPow2Sub ? (ih & sub_mask) : (ih % subbuckets_);
          positive = (Hash4(h.s, ir) & 1) != 0;
        }
        const double value = values[k];
        row[sub] += positive ? value : -value;
      }
    }
  }
}

void GroupCountSketch::UpdateBatch(const uint64_t* items, const double* values,
                                   size_t n, uint32_t group_shift) {
  if ((subbuckets_ & (subbuckets_ - 1)) == 0) {
    UpdateBatchImpl<true>(items, values, n, group_shift);
  } else {
    UpdateBatchImpl<false>(items, values, n, group_shift);
  }
}

double GroupCountSketch::GroupEnergy(uint64_t group) const {
  double est[kMaxReps];
  const uint64_t gr = group % kPrime;
  for (size_t r = 0; r < reps_; ++r) {
    size_t bucket = Hash2(rep_hash_[r].g, gr) % buckets_;
    const double* cell = &table_[(r * buckets_ + bucket) * subbuckets_];
    double energy = 0.0;
    for (size_t s = 0; s < subbuckets_; ++s) energy += cell[s] * cell[s];
    est[r] = energy;
  }
  std::nth_element(est, est + reps_ / 2, est + reps_);
  return est[reps_ / 2];
}

double GroupCountSketch::EstimateItem(uint64_t group, uint64_t item) const {
  double est[kMaxReps];
  const uint64_t gr = group % kPrime;
  const uint64_t ir = item % kPrime;
  for (size_t r = 0; r < reps_; ++r) {
    const RepHash& h = rep_hash_[r];
    const double cell = table_[(r * buckets_ + Hash2(h.g, gr) % buckets_) *
                                   subbuckets_ +
                               Hash2(h.i, ir) % subbuckets_];
    est[r] = (Hash4(h.s, ir) & 1) ? cell : -cell;
  }
  std::nth_element(est, est + reps_ / 2, est + reps_);
  return est[reps_ / 2];
}

void GroupCountSketch::Merge(const GroupCountSketch& other) {
  // Structural assertions up front (equal table sizes do NOT imply equal
  // geometry -- 2x8x4 and 4x4x4 tables are both 64 cells), then one tight
  // pointer loop over the counters.
  WAVEMR_CHECK_EQ(seed_, other.seed_);
  WAVEMR_CHECK_EQ(reps_, other.reps_);
  WAVEMR_CHECK_EQ(buckets_, other.buckets_);
  WAVEMR_CHECK_EQ(subbuckets_, other.subbuckets_);
  const double* src = other.table_.data();
  double* dst = table_.data();
  const size_t n = table_.size();
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

uint64_t GroupCountSketch::NonzeroCounters() const {
  uint64_t n = 0;
  for (double v : table_) n += (v != 0.0) ? 1 : 0;
  return n;
}

}  // namespace wavemr
