#include "sketch/group_count_sketch.h"

#include <algorithm>

#include "core/logging.h"
#include "core/simd.h"

namespace wavemr {

namespace {

constexpr uint64_t kPrime = PolyHash::kPrime;

// Degree-2/4 polynomials over GF(2^61 - 1) in the exact Horner order of
// PolyHash::Hash (shared with the SIMD scalar reference via core/hash.h),
// so values are bit-identical however they are computed.
inline uint64_t Hash2(const uint64_t c[2], uint64_t xr) {
  return PolyHash2(c, xr);
}

inline uint64_t Hash4(const uint64_t c[4], uint64_t xr) {
  return PolyHash4(c, xr);
}

void CopyCoeffs(const PolyHash& hash, uint64_t* out, size_t degree) {
  const std::vector<uint64_t>& coeffs = hash.coeffs();
  WAVEMR_CHECK_EQ(coeffs.size(), degree);
  std::copy(coeffs.begin(), coeffs.end(), out);
}

}  // namespace

GroupCountSketch::GroupCountSketch(uint64_t seed, size_t reps, size_t buckets,
                                   size_t subbuckets)
    : reps_(reps),
      buckets_(buckets),
      subbuckets_(subbuckets),
      seed_(seed),
      table_(reps * buckets * subbuckets, 0.0) {
  WAVEMR_CHECK_GE(reps, 1u);
  WAVEMR_CHECK_LE(reps, kMaxReps);
  WAVEMR_CHECK_GE(buckets, 1u);
  WAVEMR_CHECK_GE(subbuckets, 1u);
  rep_hash_.resize(reps);
  for (size_t r = 0; r < reps; ++r) {
    CopyCoeffs(PolyHash(Mix64(seed ^ (3 * r + 1)), 2), rep_hash_[r].g, 2);
    CopyCoeffs(PolyHash(Mix64(seed ^ (3 * r + 2)), 2), rep_hash_[r].i, 2);
    CopyCoeffs(PolyHash(Mix64(seed ^ (3 * r + 3)), 4), rep_hash_[r].s, 4);
  }
  // Lane-major coefficient copy for the 4-wide query kernels, padded with
  // the last rep so a partial final chunk still reads valid coefficients.
  const size_t padded = (reps + 3) & ~size_t{3};
  lanes_.g0.resize(padded);
  lanes_.g1.resize(padded);
  lanes_.i0.resize(padded);
  lanes_.i1.resize(padded);
  lanes_.s0.resize(padded);
  lanes_.s1.resize(padded);
  lanes_.s2.resize(padded);
  lanes_.s3.resize(padded);
  for (size_t r = 0; r < padded; ++r) {
    const RepHash& h = rep_hash_[std::min(r, reps - 1)];
    lanes_.g0[r] = h.g[0];
    lanes_.g1[r] = h.g[1];
    lanes_.i0[r] = h.i[0];
    lanes_.i1[r] = h.i[1];
    lanes_.s0[r] = h.s[0];
    lanes_.s1[r] = h.s[1];
    lanes_.s2[r] = h.s[2];
    lanes_.s3[r] = h.s[3];
  }
}

void GroupCountSketch::Update(uint64_t group, uint64_t item, double value) {
  const uint64_t gr = group % kPrime;
  const uint64_t ir = item % kPrime;
  const size_t row_stride = buckets_ * subbuckets_;
  double* rep_row = table_.data();
  for (size_t r = 0; r < reps_; ++r, rep_row += row_stride) {
    const RepHash& h = rep_hash_[r];
    double* cell = rep_row + (Hash2(h.g, gr) % buckets_) * subbuckets_ +
                   Hash2(h.i, ir) % subbuckets_;
    *cell += (Hash4(h.s, ir) & 1) ? value : -value;
  }
}

template <bool kPow2Sub>
void GroupCountSketch::UpdateBatchImpl(const uint64_t* items, const double* values,
                                       size_t n, uint32_t group_shift) {
  // Blocked rep-outer loop: within a block each repetition's hash
  // coefficients stay in registers and the group bucket is reused across
  // runs of items sharing a dyadic group, while the block bound keeps the
  // item/value stream L1-resident across the `reps` passes. Per-cell add
  // order equals the scalar loop's (items in order within each rep), so
  // results are bit-identical to calling Update n times. The sub-bucket
  // reduction -- one per counter touch, the single hottest op in
  // Send-Sketch -- compiles to a mask when subbuckets is a power of two
  // (the default) instead of a runtime 64-bit division.
  constexpr size_t kBlock = 256;
  WAVEMR_DCHECK(subbuckets_ >= 1);
  // The mask form of the sub-bucket reduction only exists for power-of-two
  // widths; keep it visibly dead (zero) otherwise.
  const uint64_t sub_mask = kPow2Sub ? subbuckets_ - 1 : 0;
  const size_t row_stride = buckets_ * subbuckets_;
  // Per-item hash memo for the low indices every error-tree path shares
  // (see kMemoItems). Filled on first touch with the exact hash results, so
  // memo hits and misses produce the same counter updates bit for bit. The
  // packed slot keeps the sub-bucket in 31 bits; absurdly wide tables just
  // skip the memo.
  const uint64_t memo_bound = subbuckets_ <= (uint64_t{1} << 30) ? kMemoItems : 0;
  if (memo_bound > 0 && item_memo_.empty()) {
    item_memo_.assign(reps_ * kMemoItems, kMemoEmpty);
  }
  for (size_t base = 0; base < n; base += kBlock) {
    const size_t end = std::min(n, base + kBlock);
    double* rep_row = table_.data();
    for (size_t r = 0; r < reps_; ++r, rep_row += row_stride) {
      const RepHash h = rep_hash_[r];
      uint32_t* memo_row =
          memo_bound > 0 ? item_memo_.data() + r * kMemoItems : nullptr;
      uint64_t cached_group = ~uint64_t{0};
      double* row = nullptr;
      for (size_t k = base; k < end; ++k) {
        const uint64_t item = items[k];
        const uint64_t group = group_shift >= 64 ? 0 : item >> group_shift;
        if (group != cached_group || row == nullptr) {
          cached_group = group;
          row = rep_row + (Hash2(h.g, group % kPrime) % buckets_) * subbuckets_;
        }
        uint64_t sub;
        bool positive;
        if (item < memo_bound) {
          uint32_t slot = memo_row[item];
          if (slot == kMemoEmpty) {
            const uint64_t ir = item % kPrime;
            const uint64_t ih = Hash2(h.i, ir);
            sub = kPow2Sub ? (ih & sub_mask) : (ih % subbuckets_);
            positive = (Hash4(h.s, ir) & 1) != 0;
            memo_row[item] = static_cast<uint32_t>(sub) |
                             (positive ? 0x80000000u : 0u);
          } else {
            sub = slot & 0x7FFFFFFFu;
            positive = (slot >> 31) != 0;
          }
        } else {
          const uint64_t ir = item % kPrime;
          const uint64_t ih = Hash2(h.i, ir);
          sub = kPow2Sub ? (ih & sub_mask) : (ih % subbuckets_);
          positive = (Hash4(h.s, ir) & 1) != 0;
        }
        const double value = values[k];
        row[sub] += positive ? value : -value;
      }
    }
  }
}

void GroupCountSketch::UpdateBatch(const uint64_t* items, const double* values,
                                   size_t n, uint32_t group_shift) {
  const SimdKernels& k = SimdK();
  if (k.tier != SimdTier::kScalar && subbuckets_ <= (uint64_t{1} << 30)) {
    UpdateBatchSimd(k, items, values, n, group_shift);
    return;
  }
  if ((subbuckets_ & (subbuckets_ - 1)) == 0) {
    UpdateBatchImpl<true>(items, values, n, group_shift);
  } else {
    UpdateBatchImpl<false>(items, values, n, group_shift);
  }
}

void GroupCountSketch::UpdateBatchSimd(const SimdKernels& k,
                                       const uint64_t* items,
                                       const double* values, size_t n,
                                       uint32_t group_shift) {
  // Same blocked rep-outer shape as UpdateBatchImpl, split into two passes
  // per (block, rep): pass 1 resolves every item's packed (sign, sub-bucket)
  // slot -- memo hits by lookup, misses gathered densely and hashed with ONE
  // gcs_sub_sign_block call -- and pass 2 applies the adds in the original
  // item order with the cached group row. One indirect call per (block, rep)
  // is what makes the vector tier pay off: at 4-lane granularity the
  // uninlinable dispatch call costs more than the vector hash saves. Hash
  // values are integers and the kernel is exact, so pass 2 touches the same
  // cells with the same values in the same order as the scalar loop: the
  // table stays bit-identical.
  constexpr size_t kBlock = 256;
  WAVEMR_DCHECK(subbuckets_ >= 1);
  const bool pow2 = (subbuckets_ & (subbuckets_ - 1)) == 0;
  const uint64_t sub_mask = pow2 ? subbuckets_ - 1 : 0;
  const size_t row_stride = buckets_ * subbuckets_;
  const uint64_t memo_bound = kMemoItems;  // subbuckets_ <= 2^30 checked by caller
  if (item_memo_.empty()) {
    item_memo_.assign(reps_ * kMemoItems, kMemoEmpty);
  }
  uint32_t packed[kBlock];
  uint64_t pend_item[kBlock];
  uint32_t pend_slot[kBlock];
  uint16_t pend_pos[kBlock];
  for (size_t base = 0; base < n; base += kBlock) {
    const size_t end = std::min(n, base + kBlock);
    double* rep_row = table_.data();
    for (size_t r = 0; r < reps_; ++r, rep_row += row_stride) {
      const RepHash h = rep_hash_[r];
      uint32_t* memo_row = item_memo_.data() + r * kMemoItems;
      // Pass 1: pack (sign, sub) per item.
      size_t npend = 0;
      for (size_t i = base; i < end; ++i) {
        const uint64_t item = items[i];
        if (item < memo_bound) {
          uint32_t slot = memo_row[item];
          if (slot == kMemoEmpty) {
            // Scalar fill: bit-identical to the vector kernel by contract
            // (tests/core/simd_test.cc), and misses happen at most
            // kMemoItems times per repetition.
            const uint64_t ir = item % kPrime;
            const uint64_t ih = Hash2(h.i, ir);
            const uint64_t sub = pow2 ? (ih & sub_mask) : (ih % subbuckets_);
            const bool positive = (Hash4(h.s, ir) & 1) != 0;
            slot = static_cast<uint32_t>(sub) | (positive ? 0x80000000u : 0u);
            memo_row[item] = slot;
          }
          packed[i - base] = slot;
        } else {
          pend_item[npend] = item;
          pend_pos[npend] = static_cast<uint16_t>(i - base);
          ++npend;
        }
      }
      if (npend > 0) {
        k.gcs_sub_sign_block(h.i, h.s, pend_item, npend, subbuckets_, sub_mask,
                             pend_slot);
        for (size_t j = 0; j < npend; ++j) packed[pend_pos[j]] = pend_slot[j];
      }
      // Pass 2: apply in input order with the group row cached across runs.
      uint64_t cached_group = ~uint64_t{0};
      double* row = nullptr;
      for (size_t i = base; i < end; ++i) {
        const uint64_t item = items[i];
        const uint64_t group = group_shift >= 64 ? 0 : item >> group_shift;
        if (group != cached_group || row == nullptr) {
          cached_group = group;
          row = rep_row + (Hash2(h.g, group % kPrime) % buckets_) * subbuckets_;
        }
        const uint32_t slot = packed[i - base];
        const double value = values[i];
        row[slot & 0x7FFFFFFFu] += (slot >> 31) != 0 ? value : -value;
      }
    }
  }
}

double GroupCountSketch::GroupEnergy(uint64_t group) const {
  // Group hashes run 4 repetitions per vector lane-group; the per-bucket
  // sum of squares goes through the dispatch kernel, whose fixed
  // accumulation order is identical in every tier (core/simd.h), so the
  // estimate is the same bit pattern whatever tier is active.
  const SimdKernels& k = SimdK();
  double est[kMaxReps];
  uint64_t hg[kMaxReps];
  const uint64_t gr = group % kPrime;
  const uint64_t xg[4] = {gr, gr, gr, gr};
  for (size_t r0 = 0; r0 < reps_; r0 += 4) {
    k.hash2_x4(&lanes_.g0[r0], &lanes_.g1[r0], xg, &hg[r0]);
  }
  for (size_t r = 0; r < reps_; ++r) {
    const size_t bucket = hg[r] % buckets_;
    const double* cell = &table_[(r * buckets_ + bucket) * subbuckets_];
    est[r] = k.sum_squares(cell, subbuckets_);
  }
  std::nth_element(est, est + reps_ / 2, est + reps_);
  return est[reps_ / 2];
}

double GroupCountSketch::EstimateItem(uint64_t group, uint64_t item) const {
  // All three hash families run 4 repetitions per vector lane-group (the
  // coefficient lanes were transposed at construction); the gathers and the
  // median stay scalar. Hash values are exact, so estimates are bit-equal
  // to the per-rep scalar loop in every tier.
  const SimdKernels& k = SimdK();
  double est[kMaxReps];
  uint64_t hg[kMaxReps], hi[kMaxReps], hs[kMaxReps];
  const uint64_t gr = group % kPrime;
  const uint64_t ir = item % kPrime;
  const uint64_t xg[4] = {gr, gr, gr, gr};
  const uint64_t xi[4] = {ir, ir, ir, ir};
  for (size_t r0 = 0; r0 < reps_; r0 += 4) {
    k.hash2_x4(&lanes_.g0[r0], &lanes_.g1[r0], xg, &hg[r0]);
    k.hash2_x4(&lanes_.i0[r0], &lanes_.i1[r0], xi, &hi[r0]);
    k.hash4_x4(&lanes_.s0[r0], &lanes_.s1[r0], &lanes_.s2[r0], &lanes_.s3[r0],
               xi, &hs[r0]);
  }
  for (size_t r = 0; r < reps_; ++r) {
    const double cell = table_[(r * buckets_ + hg[r] % buckets_) * subbuckets_ +
                               hi[r] % subbuckets_];
    est[r] = (hs[r] & 1) ? cell : -cell;
  }
  std::nth_element(est, est + reps_ / 2, est + reps_);
  return est[reps_ / 2];
}

void GroupCountSketch::Merge(const GroupCountSketch& other) {
  // Structural assertions up front (equal table sizes do NOT imply equal
  // geometry -- 2x8x4 and 4x4x4 tables are both 64 cells), then one tight
  // pointer loop over the counters.
  WAVEMR_CHECK_EQ(seed_, other.seed_);
  WAVEMR_CHECK_EQ(reps_, other.reps_);
  WAVEMR_CHECK_EQ(buckets_, other.buckets_);
  WAVEMR_CHECK_EQ(subbuckets_, other.subbuckets_);
  const double* src = other.table_.data();
  double* dst = table_.data();
  const size_t n = table_.size();
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

uint64_t GroupCountSketch::NonzeroCounters() const {
  uint64_t n = 0;
  for (double v : table_) n += (v != 0.0) ? 1 : 0;
  return n;
}

}  // namespace wavemr
