#ifndef WAVEMR_SKETCH_AMS_SKETCH_H_
#define WAVEMR_SKETCH_AMS_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/hash.h"

namespace wavemr {

/// AMS "tug-of-war" sketch (Alon-Matias-Szegedy): depth x width atomic
/// sketches z = sum_i v(i) * xi(i) with 4-wise independent signs. F2 (and
/// point values) are estimated as medians of row means. Every update touches
/// *every* counter, which is exactly the per-item cost problem the GCS
/// sketch was invented to fix (paper Section 4 / related work [20], [13]).
class AmsSketch {
 public:
  AmsSketch(uint64_t seed, size_t depth, size_t width);

  void Update(uint64_t item, double value);

  /// Estimate of sum_i v(i)^2 (the signal energy).
  double EstimateF2() const;

  /// Estimate of v(item).
  double EstimatePoint(uint64_t item) const;

  void Merge(const AmsSketch& other);

  size_t depth() const { return depth_; }
  size_t width() const { return width_; }

 private:
  size_t depth_;
  size_t width_;
  uint64_t seed_;
  std::vector<PolyHash> sign_hash_;  // one 4-wise hash per cell
  std::vector<double> table_;
};

}  // namespace wavemr

#endif  // WAVEMR_SKETCH_AMS_SKETCH_H_
