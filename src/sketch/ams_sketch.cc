#include "sketch/ams_sketch.h"

#include <algorithm>

#include "core/logging.h"

namespace wavemr {

AmsSketch::AmsSketch(uint64_t seed, size_t depth, size_t width)
    : depth_(depth), width_(width), seed_(seed), table_(depth * width, 0.0) {
  WAVEMR_CHECK_GE(depth, 1u);
  WAVEMR_CHECK_GE(width, 1u);
  sign_hash_.reserve(depth * width);
  for (size_t i = 0; i < depth * width; ++i) {
    sign_hash_.emplace_back(Mix64(seed ^ (i + 1)), 4);
  }
}

void AmsSketch::Update(uint64_t item, double value) {
  for (size_t i = 0; i < table_.size(); ++i) {
    table_[i] += sign_hash_[i].Sign(item) * value;
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> row_means(depth_);
  for (size_t r = 0; r < depth_; ++r) {
    double mean = 0.0;
    for (size_t c = 0; c < width_; ++c) {
      double z = table_[r * width_ + c];
      mean += z * z;
    }
    row_means[r] = mean / static_cast<double>(width_);
  }
  std::nth_element(row_means.begin(), row_means.begin() + depth_ / 2, row_means.end());
  return row_means[depth_ / 2];
}

double AmsSketch::EstimatePoint(uint64_t item) const {
  std::vector<double> row_means(depth_);
  for (size_t r = 0; r < depth_; ++r) {
    double mean = 0.0;
    for (size_t c = 0; c < width_; ++c) {
      size_t i = r * width_ + c;
      mean += sign_hash_[i].Sign(item) * table_[i];
    }
    row_means[r] = mean / static_cast<double>(width_);
  }
  std::nth_element(row_means.begin(), row_means.begin() + depth_ / 2, row_means.end());
  return row_means[depth_ / 2];
}

void AmsSketch::Merge(const AmsSketch& other) {
  WAVEMR_CHECK_EQ(depth_, other.depth_);
  WAVEMR_CHECK_EQ(width_, other.width_);
  WAVEMR_CHECK_EQ(seed_, other.seed_);
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
}

}  // namespace wavemr
