#ifndef WAVEMR_SKETCH_GROUP_COUNT_SKETCH_H_
#define WAVEMR_SKETCH_GROUP_COUNT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/hash.h"

namespace wavemr {

/// Group-Count Sketch (Cormode, Garofalakis, Sacharidis; EDBT'06): estimates
/// the L2^2 energy of *groups* of items. Each of `reps` repetitions hashes a
/// group to one of `buckets`, and the items of a group to one of `subbuckets`
/// inside it, with a 4-wise sign:
///     counters[rep][h_rep(group)][f_rep(item)] += sign_rep(item) * value.
/// GroupEnergy(g) = median over reps of the summed squares of g's bucket.
/// Linear in the input, so local sketches merge by addition.
///
/// The update kernel is the map-side unit of cost in Send-Sketch, so it is
/// laid out for throughput: each repetition's three polynomial hashes live
/// in one flat 64-byte record (no per-call vector indirection), Update
/// resolves the repetition's bucket row pointer once, and UpdateBatch
/// amortizes the group hash across runs of items sharing a group (sorted
/// batches -- the wavelet hierarchy's natural order -- hash each group
/// once per repetition).
class GroupCountSketch {
 public:
  /// Median buffers in the query path live on the stack; reps is tiny in
  /// every published configuration (t = 3..7).
  static constexpr size_t kMaxReps = 64;

  GroupCountSketch(uint64_t seed, size_t reps, size_t buckets, size_t subbuckets);

  void Update(uint64_t group, uint64_t item, double value);

  /// Bulk weighted update: applies values[k] to items[k], whose group is
  /// items[k] >> group_shift (the dyadic grouping the wavelet hierarchy
  /// uses). Ascending items maximize group-hash reuse; any order is correct.
  void UpdateBatch(const uint64_t* items, const double* values, size_t n,
                   uint32_t group_shift);

  /// Estimate of sum over items i in `group` of value(i)^2.
  double GroupEnergy(uint64_t group) const;

  /// Count-Sketch-style point estimate of a single item's value (use when
  /// groups are singletons, i.e. at the leaf level of a hierarchy).
  double EstimateItem(uint64_t group, uint64_t item) const;

  void Merge(const GroupCountSketch& other);

  size_t reps() const { return reps_; }
  size_t buckets() const { return buckets_; }
  size_t subbuckets() const { return subbuckets_; }
  size_t NumCounters() const { return table_.size(); }
  uint64_t NonzeroCounters() const;
  double CounterAt(size_t flat_index) const { return table_[flat_index]; }
  void AddToCounter(size_t flat_index, double delta) { table_[flat_index] += delta; }

  /// Items below this bound get their per-repetition (sub-bucket, sign)
  /// hash results memoized on first touch. The wavelet hierarchy feeds
  /// UpdateBatch error-tree paths whose low coefficient indices (the top
  /// levels of the tree) repeat across every data point's path, so most
  /// Hash2/Hash4 work in Send-Sketch's map phase hits the memo.
  static constexpr uint64_t kMemoItems = 1024;

 private:
  template <bool kPow2Sub>
  void UpdateBatchImpl(const uint64_t* items, const double* values, size_t n,
                       uint32_t group_shift);

  /// SIMD-tier batch update (core/simd.h): hashes memo-missing items through
  /// the active vector kernel 4 lanes at a time, then applies the adds in the
  /// scalar loop's exact per-cell order, so the table stays bit-identical to
  /// UpdateBatchImpl for any input. Requires subbuckets_ <= 2^30 (the packed
  /// slot bound); UpdateBatch falls back to the scalar path otherwise.
  void UpdateBatchSimd(const struct SimdKernels& k, const uint64_t* items,
                       const double* values, size_t n, uint32_t group_shift);

  /// One repetition's hash functions, flattened: the 2-wise group and item
  /// polynomials and the 4-wise sign polynomial, coefficients c0-first.
  /// Exactly the coefficients PolyHash would draw, so hash values (and
  /// therefore sketch contents) are independent of the kernel layout.
  struct RepHash {
    uint64_t g[2];
    uint64_t i[2];
    uint64_t s[4];
  };

  /// Structure-of-arrays copy of rep_hash_, padded to a multiple of 4
  /// repetitions (pad lanes replicate the last rep; their results are
  /// discarded), so the query path can feed coefficient lanes straight into
  /// the 4-wide hash kernels without per-call marshalling.
  struct RepHashLanes {
    std::vector<uint64_t> g0, g1, i0, i1, s0, s1, s2, s3;
  };

  size_t reps_;
  size_t buckets_;
  size_t subbuckets_;
  uint64_t seed_;
  std::vector<RepHash> rep_hash_;
  RepHashLanes lanes_;
  std::vector<double> table_;  // reps x buckets x subbuckets

  /// Lazily built memo, reps x kMemoItems: bit 31 = sign, low bits = the
  /// item's sub-bucket. kMemoEmpty marks an unfilled slot. Values are the
  /// exact Hash2/Hash4 results, so memoized updates are bit-identical to
  /// recomputed ones. Instances are task-private (one sketch per mapper),
  /// so the memo needs no synchronization.
  static constexpr uint32_t kMemoEmpty = 0xFFFFFFFFu;
  std::vector<uint32_t> item_memo_;
};

}  // namespace wavemr

#endif  // WAVEMR_SKETCH_GROUP_COUNT_SKETCH_H_
