#ifndef WAVEMR_SKETCH_GROUP_COUNT_SKETCH_H_
#define WAVEMR_SKETCH_GROUP_COUNT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/hash.h"

namespace wavemr {

/// Group-Count Sketch (Cormode, Garofalakis, Sacharidis; EDBT'06): estimates
/// the L2^2 energy of *groups* of items. Each of `reps` repetitions hashes a
/// group to one of `buckets`, and the items of a group to one of `subbuckets`
/// inside it, with a 4-wise sign:
///     counters[rep][h_rep(group)][f_rep(item)] += sign_rep(item) * value.
/// GroupEnergy(g) = median over reps of the summed squares of g's bucket.
/// Linear in the input, so local sketches merge by addition.
class GroupCountSketch {
 public:
  GroupCountSketch(uint64_t seed, size_t reps, size_t buckets, size_t subbuckets);

  void Update(uint64_t group, uint64_t item, double value);

  /// Estimate of sum over items i in `group` of value(i)^2.
  double GroupEnergy(uint64_t group) const;

  /// Count-Sketch-style point estimate of a single item's value (use when
  /// groups are singletons, i.e. at the leaf level of a hierarchy).
  double EstimateItem(uint64_t group, uint64_t item) const;

  void Merge(const GroupCountSketch& other);

  size_t reps() const { return reps_; }
  size_t buckets() const { return buckets_; }
  size_t subbuckets() const { return subbuckets_; }
  size_t NumCounters() const { return table_.size(); }
  uint64_t NonzeroCounters() const;
  double CounterAt(size_t flat_index) const { return table_[flat_index]; }
  void AddToCounter(size_t flat_index, double delta) { table_[flat_index] += delta; }

 private:
  size_t CellIndex(size_t rep, uint64_t group, uint64_t item) const;

  size_t reps_;
  size_t buckets_;
  size_t subbuckets_;
  uint64_t seed_;
  std::vector<PolyHash> group_hash_;  // 2-wise per rep
  std::vector<PolyHash> item_hash_;   // 2-wise per rep
  std::vector<PolyHash> sign_hash_;   // 4-wise per rep
  std::vector<double> table_;         // reps x buckets x subbuckets
};

}  // namespace wavemr

#endif  // WAVEMR_SKETCH_GROUP_COUNT_SKETCH_H_
