#ifndef WAVEMR_SKETCH_COUNT_SKETCH_H_
#define WAVEMR_SKETCH_COUNT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/hash.h"

namespace wavemr {

/// Count-Sketch (Charikar-Chen-Farach-Colton): d rows of w counters; row r
/// adds sign_r(i) * value at bucket h_r(i). Point estimates are medians of
/// per-row estimates; the sketch is linear, so sketches over disjoint data
/// partitions merge by addition -- the property Send-Sketch relies on.
class CountSketch {
 public:
  CountSketch(uint64_t seed, size_t depth, size_t width);

  void Update(uint64_t item, double value);
  double Estimate(uint64_t item) const;

  /// Adds other into this sketch; dimensions and seed must match.
  void Merge(const CountSketch& other);

  size_t depth() const { return depth_; }
  size_t width() const { return width_; }
  const std::vector<double>& counters() const { return table_; }

  /// Number of non-zero counters (what a mapper actually ships).
  uint64_t NonzeroCounters() const;

 private:
  size_t depth_;
  size_t width_;
  uint64_t seed_;
  std::vector<PolyHash> bucket_hash_;  // 2-wise per row
  std::vector<PolyHash> sign_hash_;    // 4-wise per row
  std::vector<double> table_;          // depth x width, row-major
};

}  // namespace wavemr

#endif  // WAVEMR_SKETCH_COUNT_SKETCH_H_
