#ifndef WAVEMR_MAPREDUCE_STATE_STORE_H_
#define WAVEMR_MAPREDUCE_STATE_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/status.h"

namespace wavemr {

/// Persistent per-task state across MapReduce rounds -- the paper's trick of
/// writing an HDFS file named after the split id from the Mapper's Close
/// interface (Appendix A). Because Hadoop writes HDFS files locally first,
/// this costs local disk IO, not network; the job engine charges it to the
/// task accordingly.
///
/// Default mode keeps blobs in memory (fast, used by benchmarks); disk mode
/// (`StateStore(dir)`) round-trips real files, mirroring the deployment.
///
/// Thread-safe: concurrent map tasks save and load their per-split state
/// under one internal mutex (distinct splits use distinct keys, but the
/// bookkeeping maps are shared).
class StateStore {
 public:
  /// In-memory store.
  StateStore() = default;

  /// Disk-backed store rooted at `dir` (created if missing). Files are named
  /// by sanitized state keys.
  explicit StateStore(std::string dir);

  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  Status Put(const std::string& name, const std::string& blob);
  StatusOr<std::string> Get(const std::string& name) const;
  bool Contains(const std::string& name) const;
  Status Remove(const std::string& name);

  /// Total bytes currently stored (for reporting "state file" footprint).
  uint64_t TotalBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }

  bool disk_backed() const { return !dir_.empty(); }

 private:
  std::string FilePath(const std::string& name) const;

  std::string dir_;  // empty => in-memory

  mutable std::mutex mu_;  // guards everything below
  std::map<std::string, std::string> blobs_;       // in-memory mode
  std::map<std::string, uint64_t> disk_sizes_;     // disk mode bookkeeping
  uint64_t total_bytes_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_STATE_STORE_H_
