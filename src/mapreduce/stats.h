#ifndef WAVEMR_MAPREDUCE_STATS_H_
#define WAVEMR_MAPREDUCE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/counters.h"

namespace wavemr {

/// Work performed by one task; converted to seconds by the CostModel.
struct TaskCost {
  uint64_t records_read = 0;
  uint64_t disk_bytes = 0;   // split scan + state IO + sampled pages
  double cpu_ns = 0.0;       // engine- and algorithm-charged CPU
  uint64_t pairs_emitted = 0;
};

/// Measured + simulated outcome of one MapReduce round.
struct RoundStats {
  std::string name;
  uint64_t map_tasks = 0;
  uint64_t shuffle_pairs = 0;     // pairs leaving mappers (post-combine)
  uint64_t shuffle_bytes = 0;     // wire bytes of those pairs
  uint64_t broadcast_bytes = 0;   // job config + distributed cache replication
  double map_makespan_s = 0.0;
  double shuffle_s = 0.0;
  double reduce_s = 0.0;
  double overhead_s = 0.0;
  double TotalSeconds() const {
    return overhead_s + map_makespan_s + shuffle_s + reduce_s;
  }
  uint64_t CommBytes() const { return shuffle_bytes + broadcast_bytes; }
};

/// Aggregate over all rounds of one algorithm execution.
struct JobStats {
  std::vector<RoundStats> rounds;
  Counters counters;

  uint64_t TotalCommBytes() const {
    uint64_t b = 0;
    for (const RoundStats& r : rounds) b += r.CommBytes();
    return b;
  }
  double TotalSeconds() const {
    double s = 0.0;
    for (const RoundStats& r : rounds) s += r.TotalSeconds();
    return s;
  }
  size_t NumRounds() const { return rounds.size(); }
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_STATS_H_
