#ifndef WAVEMR_MAPREDUCE_STATS_H_
#define WAVEMR_MAPREDUCE_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/counters.h"

namespace wavemr {

/// Work performed by one task; converted to seconds by the CostModel.
struct TaskCost {
  uint64_t records_read = 0;
  uint64_t disk_bytes = 0;   // split scan + state IO + sampled pages
  double cpu_ns = 0.0;       // engine- and algorithm-charged CPU
  uint64_t pairs_emitted = 0;
};

/// Measured + simulated outcome of one MapReduce round.
struct RoundStats {
  std::string name;
  uint64_t map_tasks = 0;
  uint64_t shuffle_pairs = 0;     // pairs leaving mappers (post-combine)
  uint64_t shuffle_bytes = 0;     // wire bytes of those pairs
  uint64_t broadcast_bytes = 0;   // job config + distributed cache replication
  double map_makespan_s = 0.0;
  double shuffle_s = 0.0;
  double reduce_s = 0.0;
  double overhead_s = 0.0;
  /// Real (not simulated) wall-clock of the map phase: dispatching every map
  /// task and merging its output into the reducer. This is the quantity the
  /// perf-smoke CI gate tracks; it varies with --threads while everything
  /// above stays bit-identical.
  double map_wall_ms = 0.0;
  /// Real wall-clock of the sorted-shuffle merge + reduce delivery (0 for
  /// streaming rounds); varies with --reduce-tasks, results do not.
  double reduce_wall_ms = 0.0;
  /// Threads the engine actually used for this round's map tasks.
  int threads_used = 1;
  /// Equi-depth reduce partitions the sorted merge ran with (1 = the classic
  /// single driver-thread merge; streaming rounds always report 1).
  int reduce_tasks_used = 1;
  /// Planned pair counts of the largest and smallest equi-depth reduce
  /// range. Boundaries sit at exact global ranks r*n/R, so max - min <= 1
  /// whenever n >= R; the max/min ratio (ReduceRangeSpread) is the
  /// load-balance figure the skew bench gates. Deterministic for a given
  /// (dataset, reduce_tasks) -- planned counts, not scheduling outcomes.
  uint64_t reduce_range_max_pairs = 0;
  uint64_t reduce_range_min_pairs = 0;
  /// Sub-ranges finished reduce workers stole from stragglers' unclaimed
  /// tails. Schedule-dependent like reduce_wall_ms -- stealing moves
  /// wall-clock, never bytes -- so determinism checks must skip it.
  uint64_t reduce_steals = 0;
  /// External shuffle spill: files written this round, bytes written to them
  /// (framing included), and payload bytes the merge read back from disk.
  uint64_t spill_files = 0;
  uint64_t spill_bytes = 0;
  uint64_t spill_read_bytes = 0;
  /// Spill writes that exhausted their IO retries and fell back to keeping
  /// the run resident (ShufflePlane pinning -- results unchanged), and
  /// transient-errno retries spill writes performed. Recovery telemetry,
  /// not cost: a healthy disk reports 0/0.
  uint64_t spill_fallbacks = 0;
  uint64_t spill_retries = 0;
  /// Simulated seconds of spill IO (CostModel::disk_spill_mbps over bytes
  /// written + read), reported separately: TotalSeconds deliberately
  /// excludes it so the headline simulated seconds are bit-identical across
  /// {no spill, forced spill} and stay comparable to the paper's in-memory
  /// shuffle numbers.
  double spill_s = 0.0;
  double TotalSeconds() const {
    return overhead_s + map_makespan_s + shuffle_s + reduce_s;
  }
  uint64_t CommBytes() const { return shuffle_bytes + broadcast_bytes; }
  /// max/min planned pairs per reduce range; 0 when undefined (some range
  /// planned empty, or a streaming/single-range round).
  double ReduceRangeSpread() const {
    if (reduce_range_min_pairs == 0) return 0.0;
    return static_cast<double>(reduce_range_max_pairs) /
           static_cast<double>(reduce_range_min_pairs);
  }
};

/// Aggregate over all rounds of one algorithm execution.
///
/// Round appends go through AddRound, which is safe to call from concurrent
/// drivers sharing one JobStats; `counters` is itself thread-safe.
struct JobStats {
  std::vector<RoundStats> rounds;
  Counters counters;

  JobStats() = default;
  JobStats(const JobStats& other)
      : rounds(other.SnapshotRounds()), counters(other.counters) {}
  JobStats(JobStats&& other) noexcept
      : rounds(other.SnapshotRounds()), counters(std::move(other.counters)) {}
  JobStats& operator=(const JobStats& other) {
    if (this != &other) {
      auto snapshot = other.SnapshotRounds();
      std::lock_guard<std::mutex> lock(rounds_mu_);
      rounds = std::move(snapshot);
      counters = other.counters;
    }
    return *this;
  }
  JobStats& operator=(JobStats&& other) noexcept { return *this = other; }

  void AddRound(RoundStats round) {
    std::lock_guard<std::mutex> lock(rounds_mu_);
    rounds.push_back(std::move(round));
  }

  uint64_t TotalCommBytes() const {
    uint64_t b = 0;
    for (const RoundStats& r : rounds) b += r.CommBytes();
    return b;
  }
  double TotalSeconds() const {
    double s = 0.0;
    for (const RoundStats& r : rounds) s += r.TotalSeconds();
    return s;
  }
  double TotalMapWallMs() const {
    double ms = 0.0;
    for (const RoundStats& r : rounds) ms += r.map_wall_ms;
    return ms;
  }
  uint64_t TotalSpillFiles() const {
    uint64_t n = 0;
    for (const RoundStats& r : rounds) n += r.spill_files;
    return n;
  }
  uint64_t TotalSpillBytes() const {
    uint64_t b = 0;
    for (const RoundStats& r : rounds) b += r.spill_bytes;
    return b;
  }
  double TotalSpillSeconds() const {
    double s = 0.0;
    for (const RoundStats& r : rounds) s += r.spill_s;
    return s;
  }
  uint64_t TotalSpillFallbacks() const {
    uint64_t n = 0;
    for (const RoundStats& r : rounds) n += r.spill_fallbacks;
    return n;
  }
  uint64_t TotalSpillRetries() const {
    uint64_t n = 0;
    for (const RoundStats& r : rounds) n += r.spill_retries;
    return n;
  }
  size_t NumRounds() const { return rounds.size(); }

 private:
  std::vector<RoundStats> SnapshotRounds() const {
    std::lock_guard<std::mutex> lock(rounds_mu_);
    return rounds;
  }

  mutable std::mutex rounds_mu_;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_STATS_H_
