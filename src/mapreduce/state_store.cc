#include "mapreduce/state_store.h"

#include <cstdio>
#include <filesystem>

#include "core/logging.h"

namespace fs = std::filesystem;

namespace wavemr {

namespace {

std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
                   c == '_' || c == '.')
                      ? c
                      : '_');
  }
  return out;
}

}  // namespace

StateStore::StateStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  WAVEMR_CHECK(!ec) << "cannot create state dir " << dir_ << ": " << ec.message();
}

StateStore::~StateStore() {
  if (!dir_.empty()) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort
  }
}

std::string StateStore::FilePath(const std::string& name) const {
  return dir_ + "/" + Sanitize(name);
}

Status StateStore::Put(const std::string& name, const std::string& blob) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    auto it = blobs_.find(name);
    if (it != blobs_.end()) total_bytes_ -= it->second.size();
    total_bytes_ += blob.size();
    blobs_[name] = blob;
    return Status::OK();
  }
  std::FILE* f = std::fopen(FilePath(name).c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot write state " + name);
  size_t n = blob.empty() ? 0 : std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (n != blob.size()) return Status::IOError("short state write " + name);
  auto it = disk_sizes_.find(name);
  if (it != disk_sizes_.end()) total_bytes_ -= it->second;
  disk_sizes_[name] = blob.size();
  total_bytes_ += blob.size();
  return Status::OK();
}

StatusOr<std::string> StateStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    auto it = blobs_.find(name);
    if (it == blobs_.end()) return Status::NotFound("state: " + name);
    return it->second;
  }
  auto it = disk_sizes_.find(name);
  if (it == disk_sizes_.end()) return Status::NotFound("state: " + name);
  std::FILE* f = std::fopen(FilePath(name).c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot read state " + name);
  std::string blob(it->second, '\0');
  size_t n = blob.empty() ? 0 : std::fread(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (n != blob.size()) return Status::IOError("short state read " + name);
  return blob;
}

bool StateStore::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_.empty() ? blobs_.count(name) > 0 : disk_sizes_.count(name) > 0;
}

Status StateStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    auto it = blobs_.find(name);
    if (it == blobs_.end()) return Status::NotFound("state: " + name);
    total_bytes_ -= it->second.size();
    blobs_.erase(it);
    return Status::OK();
  }
  auto it = disk_sizes_.find(name);
  if (it == disk_sizes_.end()) return Status::NotFound("state: " + name);
  total_bytes_ -= it->second;
  disk_sizes_.erase(it);
  std::error_code ec;
  fs::remove(FilePath(name), ec);
  return ec ? Status::IOError("cannot remove state " + name) : Status::OK();
}

}  // namespace wavemr
