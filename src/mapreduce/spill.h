#ifndef WAVEMR_MAPREDUCE_SPILL_H_
#define WAVEMR_MAPREDUCE_SPILL_H_

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/crc32c.h"
#include "core/failpoint.h"
#include "core/logging.h"
#include "core/status.h"

namespace wavemr {

/// External shuffle spill files.
///
/// When a sorted round's retained map-output runs outgrow
/// CostModel::shuffle_buffer_bytes, the ShufflePlane serializes whole runs
/// to temp files in the columnar framing below and frees their memory; the
/// loser-tree merge then streams them back through FileRunCursor, so the
/// merged output is bit-identical to the all-in-memory path (same keys, same
/// run-ordinal tie-breaks, same within-run order). This is Hadoop's
/// map-output spill/merge pipeline made literal: sorted on-disk runs,
/// file-backed cursors, k-way merge.
///
/// File framing (host-endian; spill files never outlive the process):
///
///   [u64 magic][u64 n][u32 sizeof(K)][u32 sizeof(V)]   24-byte header
///   [K keys:   n * sizeof(K)]                          key block
///   [V values: n * sizeof(V)]                          value block
///   [u32 key_crc   * nblocks]                          CRC32C per 4096-pair
///   [u32 value_crc * nblocks]                          column block
///   [u32 footer_crc]                                   CRC32C of the two
///                                                      CRC arrays
///
/// with nblocks = ceil(n / kSpillIndexBlockPairs). The key and value blocks
/// stay columnar -- a cursor's refill reads a block of keys and a block of
/// values with two contiguous freads, and the on-disk lower-bound search for
/// reduce partitioning touches only the key block. Every read path verifies
/// the block checksums, so a torn or bit-flipped spill file is detected
/// (SpillIoError) instead of silently corrupting the merge.
///
/// IO failure contract: writes return typed IoResults (the shuffle plane
/// degrades to keeping the run resident -- see ShufflePlane); reads throw
/// SpillIoError, which the job engine's existing exception path turns into a
/// clean abort with spill files removed. Transient errno (EINTR/EAGAIN, and
/// ENOSPC on writes) is retried with exponential backoff per SpillIoPolicy
/// before either outcome. Fault injection hooks: failpoint sites
/// `spill.write.{open,write,close}` and `spill.read.{open,read}`
/// (core/failpoint.h, catalog in docs/robustness.md).

inline constexpr uint64_t kSpillMagic = 0x57564d5250494c32ull;  // "WVMRPIL2"
inline constexpr uint64_t kSpillHeaderBytes = 24;

/// Sparse key-index and checksum granularity: one sampled key and one CRC32C
/// per column per this many pairs. Kept equal to FileRunCursor's refill
/// block so an index hit brackets exactly one cursor block and a refill
/// verifies exactly one checksum. 4096 * 8 bytes of samples per 4096 *
/// 16-byte block = 0.05% memory overhead on the spilled payload.
inline constexpr uint64_t kSpillIndexBlockPairs = 4096;

/// Checksummed blocks in a file of `num_pairs` pairs.
inline uint64_t SpillNumBlocks(uint64_t num_pairs) {
  return (num_pairs + kSpillIndexBlockPairs - 1) / kSpillIndexBlockPairs;
}

/// Total on-disk size of a spill file holding `num_pairs` K/V pairs.
template <typename K, typename V>
uint64_t SpillFileBytes(uint64_t num_pairs) {
  return kSpillHeaderBytes + num_pairs * (sizeof(K) + sizeof(V)) +
         (2 * SpillNumBlocks(num_pairs) + 1) * sizeof(uint32_t);
}

/// Typed outcome of one spill IO operation. `op` says which syscall family
/// failed (kNone = success); `err` carries errno when the OS produced one
/// (0 for pure format/checksum violations).
struct IoResult {
  enum class Op {
    kNone = 0,  // success
    kOpen,
    kSeek,
    kRead,
    kWrite,
    kClose,
    kChecksum,  // stored CRC32C does not match the bytes read
    kFormat,    // truncated file / bad magic / header mismatch
  };

  Op op = Op::kNone;
  int err = 0;
  std::string detail;

  bool ok() const { return op == Op::kNone; }

  static const char* OpName(Op op) {
    switch (op) {
      case Op::kNone: return "ok";
      case Op::kOpen: return "open";
      case Op::kSeek: return "seek";
      case Op::kRead: return "read";
      case Op::kWrite: return "write";
      case Op::kClose: return "close";
      case Op::kChecksum: return "checksum";
      case Op::kFormat: return "format";
    }
    return "unknown";
  }

  std::string ToString() const {
    if (ok()) return "ok";
    std::string out = "spill ";
    out += OpName(op);
    out += " error";
    if (err != 0) {
      out += " (";
      out += std::strerror(err);
      out += ")";
    }
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    return out;
  }

  Status ToStatus() const {
    return ok() ? Status::OK() : Status::IOError(ToString());
  }
};

/// Thrown by the spill read paths (cursors, probes) on IO failure or
/// detected corruption. The job engine already unwinds exceptions cleanly
/// (spill files are deleted by ShufflePlane/SpillDir RAII), so a bad disk
/// aborts the build with a typed, actionable error instead of wrong results.
class SpillIoError : public std::runtime_error {
 public:
  explicit SpillIoError(IoResult io)
      : std::runtime_error(io.ToString()), io_(std::move(io)) {}
  const IoResult& io() const { return io_; }

 private:
  IoResult io_;
};

/// Retry budget for transient spill IO errno. An attempt that fails with a
/// transient code is retried after an exponentially growing backoff, up to
/// max_attempts total tries; everything else (and exhaustion) surfaces the
/// typed error to the caller.
struct SpillIoPolicy {
  int max_attempts = 4;
  int backoff_initial_us = 100;  // doubles per retry: 100, 200, 400, ...

  /// ENOSPC counts as transient on the write path: spills race with other
  /// tenants of the temp volume and space can free up between attempts.
  /// (If it does not, exhaustion lands in the resident-run fallback.)
  static bool IsTransient(int err) {
    return err == EINTR || err == EAGAIN || err == ENOSPC || err == ENOBUFS;
  }

  void BackoffSleep(int attempt) const {
    const int64_t us = static_cast<int64_t>(backoff_initial_us) << attempt;
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
};

template <typename K>
class SpillKeyProbe;

/// Metadata the plane keeps per spilled run: enough to merge and partition
/// it without re-reading the header.
struct SpillFileInfo {
  std::filesystem::path path;
  uint64_t num_pairs = 0;
  uint64_t min_key = 0;  // keys.front() at spill time (0 when empty)
  uint64_t max_key = 0;  // keys.back() at spill time
  uint64_t file_bytes = 0;
  /// keys[b * kSpillIndexBlockPairs] for each block b, recorded at spill
  /// time (unsigned integral keys only, like min/max). Lets rank and
  /// partition probes bracket any lower bound inside one block without
  /// touching the file.
  std::vector<uint64_t> block_keys;
};

namespace internal {

inline uint64_t SpillKeyOffset() { return kSpillHeaderBytes; }

template <typename K, typename V>
uint64_t SpillValueOffset(uint64_t num_pairs) {
  return kSpillHeaderBytes + num_pairs * sizeof(K);
}

inline IoResult SpillFail(IoResult::Op op, int err, std::string detail) {
  IoResult r;
  r.op = op;
  r.err = err;
  r.detail = std::move(detail);
  return r;
}

/// Shared read-side handle: opens a spill file (with retry on transient
/// errno), validates the header against the caller's SpillFileInfo, loads
/// and verifies the checksum footer, and serves positioned reads. All
/// failures throw SpillIoError. `expect_vsize` = 0 skips the value-size
/// check (SpillKeyProbe does not know V; it takes the on-disk size as
/// authoritative for computing the footer offset).
class SpillReadHandle {
 public:
  SpillReadHandle() = default;
  ~SpillReadHandle() {
    if (file_ != nullptr) std::fclose(file_);
  }
  SpillReadHandle(SpillReadHandle&& other) noexcept { *this = std::move(other); }
  SpillReadHandle& operator=(SpillReadHandle&& other) noexcept {
    if (this != &other) {
      if (file_ != nullptr) std::fclose(file_);
      file_ = other.file_;
      other.file_ = nullptr;
      path_ = std::move(other.path_);
      num_pairs_ = other.num_pairs_;
      ksize_ = other.ksize_;
      vsize_ = other.vsize_;
      key_crcs_ = std::move(other.key_crcs_);
      value_crcs_ = std::move(other.value_crcs_);
    }
    return *this;
  }
  SpillReadHandle(const SpillReadHandle&) = delete;
  SpillReadHandle& operator=(const SpillReadHandle&) = delete;

  bool open() const { return file_ != nullptr; }
  uint64_t num_pairs() const { return num_pairs_; }
  uint32_t ksize() const { return ksize_; }
  uint32_t vsize() const { return vsize_; }
  const std::vector<uint32_t>& key_crcs() const { return key_crcs_; }
  const std::vector<uint32_t>& value_crcs() const { return value_crcs_; }

  void Open(const SpillFileInfo& info, uint32_t expect_ksize,
            uint32_t expect_vsize, const SpillIoPolicy& policy) {
    path_ = info.path.string();
    policy_ = policy;
    for (int attempt = 0;; ++attempt) {
      const int fe = FailpointHit("spill.read.open");
      file_ = fe != 0 ? nullptr : std::fopen(path_.c_str(), "rb");
      if (file_ != nullptr) break;
      const int err = fe != 0 ? fe : errno;
      if (SpillIoPolicy::IsTransient(err) && attempt + 1 < policy_.max_attempts) {
        policy_.BackoffSleep(attempt);
        continue;
      }
      throw SpillIoError(
          SpillFail(IoResult::Op::kOpen, err, "cannot open spill file " + path_));
    }
    uint64_t header[2] = {0, 0};
    uint32_t sizes[2] = {0, 0};
    ReadAt(0, header, sizeof(header), "spill header");
    ReadAt(sizeof(header), sizes, sizeof(sizes), "spill header");
    if (header[0] != kSpillMagic) {
      throw SpillIoError(SpillFail(
          IoResult::Op::kFormat, 0,
          "bad spill magic in " + path_ + " (not a WVMRPIL2 spill file)"));
    }
    if (header[1] != info.num_pairs) {
      throw SpillIoError(SpillFail(
          IoResult::Op::kFormat, 0,
          "spill pair-count mismatch in " + path_ + ": header says " +
              std::to_string(header[1]) + ", expected " +
              std::to_string(info.num_pairs)));
    }
    if (sizes[0] != expect_ksize ||
        (expect_vsize != 0 && sizes[1] != expect_vsize) || sizes[1] == 0) {
      throw SpillIoError(SpillFail(IoResult::Op::kFormat, 0,
                                   "spill record-size mismatch in " + path_));
    }
    num_pairs_ = header[1];
    ksize_ = sizes[0];
    vsize_ = sizes[1];
    LoadFooter();
  }

  /// Positioned read of exactly `bytes`; retries transient errno per policy,
  /// throws SpillIoError(kFormat) on EOF (truncation) and kRead/kSeek on
  /// hard errors.
  void ReadAt(uint64_t offset, void* out, size_t bytes, const char* what) {
    for (int attempt = 0;; ++attempt) {
      const int fe = FailpointHit("spill.read.read");
      int err = 0;
      if (fe != 0) {
        err = fe;
      } else if (fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
        err = errno;
        throw SpillIoError(SpillFail(IoResult::Op::kSeek, err,
                                     std::string(what) + " in " + path_));
      } else {
        std::clearerr(file_);
        if (std::fread(out, 1, bytes, file_) == bytes) return;
        if (std::feof(file_)) {
          throw SpillIoError(
              SpillFail(IoResult::Op::kFormat, 0,
                        "truncated spill file " + path_ + " (short read of " +
                            what + ")"));
        }
        err = errno;
      }
      if (SpillIoPolicy::IsTransient(err) && attempt + 1 < policy_.max_attempts) {
        std::clearerr(file_);
        policy_.BackoffSleep(attempt);
        continue;
      }
      throw SpillIoError(SpillFail(IoResult::Op::kRead, err,
                                   std::string(what) + " in " + path_));
    }
  }

  /// Verifies one column block against its stored checksum.
  void VerifyBlock(const std::vector<uint32_t>& crcs, uint64_t block,
                   const void* data, size_t bytes, const char* column) const {
    const uint32_t computed = Crc32c(data, bytes);
    if (block < crcs.size() && crcs[block] == computed) return;
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "%s block %llu checksum mismatch (stored 0x%08x, computed "
                  "0x%08x)",
                  column, static_cast<unsigned long long>(block),
                  block < crcs.size() ? crcs[block] : 0u, computed);
    throw SpillIoError(
        SpillFail(IoResult::Op::kChecksum, 0, std::string(msg) + " in " + path_));
  }

 private:
  void LoadFooter() {
    const uint64_t nblocks = SpillNumBlocks(num_pairs_);
    const uint64_t footer_off =
        kSpillHeaderBytes + num_pairs_ * (uint64_t{ksize_} + vsize_);
    std::vector<uint32_t> footer(2 * nblocks + 1);
    ReadAt(footer_off, footer.data(), footer.size() * sizeof(uint32_t),
           "spill checksum footer");
    const uint32_t computed =
        Crc32c(footer.data(), 2 * nblocks * sizeof(uint32_t));
    if (footer[2 * nblocks] != computed) {
      char msg[128];
      std::snprintf(msg, sizeof(msg),
                    "spill footer checksum mismatch (stored 0x%08x, computed "
                    "0x%08x)",
                    footer[2 * nblocks], computed);
      throw SpillIoError(SpillFail(IoResult::Op::kChecksum, 0,
                                   std::string(msg) + " in " + path_));
    }
    key_crcs_.assign(footer.begin(), footer.begin() + nblocks);
    value_crcs_.assign(footer.begin() + nblocks, footer.begin() + 2 * nblocks);
  }

  std::FILE* file_ = nullptr;
  std::string path_;
  SpillIoPolicy policy_;
  uint64_t num_pairs_ = 0;
  uint32_t ksize_ = 0;
  uint32_t vsize_ = 0;
  std::vector<uint32_t> key_crcs_;
  std::vector<uint32_t> value_crcs_;
};

}  // namespace internal

/// Outcome of WriteSpillFile: `io.ok()` on success with the final file size;
/// on failure the partial file has already been deleted. `retries` counts
/// re-attempts actually performed (0 = first try succeeded / failed hard).
struct SpillWriteResult {
  IoResult io;
  uint64_t file_bytes = 0;
  uint32_t retries = 0;
};

namespace internal {

/// One write attempt. On failure the stream is closed but the partial file
/// is left for the caller (the retry loop) to delete.
template <typename K, typename V>
IoResult WriteSpillFileOnce(const std::filesystem::path& path, const K* keys,
                            const V* values, uint64_t n,
                            const std::vector<uint32_t>& footer) {
  const std::string name = path.string();
  int fe = FailpointHit("spill.write.open");
  std::FILE* f = fe != 0 ? nullptr : std::fopen(name.c_str(), "wb");
  if (f == nullptr) {
    return SpillFail(IoResult::Op::kOpen, fe != 0 ? fe : errno,
                     "cannot create spill file " + name);
  }
  const uint64_t magic = kSpillMagic;
  const uint32_t ksize = sizeof(K);
  const uint32_t vsize = sizeof(V);
  errno = 0;
  fe = FailpointHit("spill.write.write");
  bool ok = fe == 0;
  ok = ok && std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
       std::fwrite(&n, sizeof(n), 1, f) == 1 &&
       std::fwrite(&ksize, sizeof(ksize), 1, f) == 1 &&
       std::fwrite(&vsize, sizeof(vsize), 1, f) == 1;
  if (ok && n > 0) {
    ok = std::fwrite(keys, sizeof(K), n, f) == n &&
         std::fwrite(values, sizeof(V), n, f) == n;
  }
  ok = ok && std::fwrite(footer.data(), sizeof(uint32_t), footer.size(), f) ==
                 footer.size();
  if (!ok) {
    const int err = fe != 0 ? fe : (errno != 0 ? errno : EIO);
    std::fclose(f);
    return SpillFail(IoResult::Op::kWrite, err,
                     "short write to spill file " + name);
  }
  fe = FailpointHit("spill.write.close");
  if (fe != 0) {
    std::fclose(f);
    return SpillFail(IoResult::Op::kClose, fe, "cannot close spill file " + name);
  }
  errno = 0;
  if (std::fclose(f) != 0) {
    return SpillFail(IoResult::Op::kClose, errno != 0 ? errno : EIO,
                     "cannot close spill file " + name);
  }
  return IoResult{};
}

}  // namespace internal

/// Writes one sorted run's columns to `path` in the checksummed WVMRPIL2
/// framing. Keys and values must be trivially copyable (every shuffle value
/// in this codebase is a packed POD message).
///
/// Never aborts on IO failure: transient errno is retried per `policy`
/// (each retry rewrites from scratch), any partial file is deleted before
/// returning, and the typed IoResult lets the caller degrade -- the shuffle
/// plane's response is to keep the run resident (ShufflePlane fallback)
/// rather than lose data or kill the job.
template <typename K, typename V>
SpillWriteResult WriteSpillFile(const std::filesystem::path& path,
                                const K* keys, const V* values, uint64_t n,
                                const SpillIoPolicy& policy = SpillIoPolicy()) {
  static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>,
                "spill framing memcpys raw columns");
  // Checksums are over the in-memory columns, computed once across retries:
  // what lands on disk must match what the writer held, not what a previous
  // torn attempt wrote.
  const uint64_t nblocks = SpillNumBlocks(n);
  std::vector<uint32_t> footer(2 * nblocks + 1);
  for (uint64_t b = 0; b < nblocks; ++b) {
    const uint64_t lo = b * kSpillIndexBlockPairs;
    const uint64_t cnt = std::min(kSpillIndexBlockPairs, n - lo);
    footer[b] = Crc32c(keys + lo, cnt * sizeof(K));
    footer[nblocks + b] = Crc32c(values + lo, cnt * sizeof(V));
  }
  footer[2 * nblocks] = Crc32c(footer.data(), 2 * nblocks * sizeof(uint32_t));

  SpillWriteResult result;
  for (int attempt = 0;; ++attempt) {
    result.io = internal::WriteSpillFileOnce<K, V>(path, keys, values, n, footer);
    if (result.io.ok()) {
      result.file_bytes = SpillFileBytes<K, V>(n);
      result.retries = static_cast<uint32_t>(attempt);
      return result;
    }
    // Never leave a torn file behind: a later open would read garbage or a
    // directory sweep would double-count it.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (!SpillIoPolicy::IsTransient(result.io.err) ||
        attempt + 1 >= policy.max_attempts) {
      result.retries = static_cast<uint32_t>(attempt);
      return result;
    }
    policy.BackoffSleep(attempt);
  }
}

/// Streaming block cursor over an index range [begin, end) of one spill
/// file's pairs. Each cursor owns its FILE*, so cursors over the same file
/// (one per reduce partition) are safe to advance from different threads.
/// NextBlock loads (keys, values) pairs into owned buffers and hands out raw
/// column pointers -- the same shape RunMerger's resident cursors have, so
/// file-backed and in-memory runs merge through one loser tree.
///
/// Reads are always whole checksum blocks (kSpillIndexBlockPairs pairs,
/// cached), verified against the stored CRC32C before any byte is served; a
/// refill request is clamped to the current block's end, so callers see at
/// most block_pairs pairs per call but possibly fewer. IO failures and
/// corruption throw SpillIoError.
template <typename K, typename V>
class FileRunCursor {
 public:
  /// Upper bound on pairs per refill: 4096 * (8 + 8) bytes = 64 KiB per
  /// column pair for the common u64/u64 shuffle -- big enough to amortize
  /// fread, small enough that R cursors * 2 columns stay cache-friendly.
  static constexpr uint64_t kDefaultBlockPairs = 4096;

  FileRunCursor(const SpillFileInfo& info, uint64_t begin, uint64_t end,
                uint64_t block_pairs = kDefaultBlockPairs,
                const SpillIoPolicy& policy = SpillIoPolicy())
      : num_pairs_(info.num_pairs),
        pos_(begin),
        end_(end < info.num_pairs ? end : info.num_pairs),
        block_pairs_(block_pairs == 0 ? 1 : block_pairs) {
    static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>);
    WAVEMR_CHECK(begin <= end_) << "inverted spill cursor range";
    handle_.Open(info, sizeof(K), sizeof(V), policy);
    const uint64_t buf = std::min<uint64_t>(kSpillIndexBlockPairs, num_pairs_);
    keys_.resize(static_cast<size_t>(buf));
    values_.resize(static_cast<size_t>(buf));
  }

  FileRunCursor(const FileRunCursor&) = delete;
  FileRunCursor& operator=(const FileRunCursor&) = delete;

  uint64_t remaining() const { return end_ - pos_; }

  /// Loads the next slice of the range. Returns the number of pairs loaded
  /// (0 at end of range); *keys/*values point at the cursor-owned buffers
  /// and stay valid until the next NextBlock call.
  uint64_t NextBlock(const K** keys, const V** values) {
    uint64_t want = remaining() < block_pairs_ ? remaining() : block_pairs_;
    if (want == 0) return 0;
    const uint64_t block = pos_ / kSpillIndexBlockPairs;
    const uint64_t block_lo = block * kSpillIndexBlockPairs;
    const uint64_t block_hi =
        std::min(block_lo + kSpillIndexBlockPairs, num_pairs_);
    want = std::min(want, block_hi - pos_);
    LoadBlock(block, block_lo, block_hi);
    *keys = keys_.data() + (pos_ - block_lo);
    *values = values_.data() + (pos_ - block_lo);
    pos_ += want;
    return want;
  }

  /// First index in [0, num_pairs) whose key is >= `key` -- std::lower_bound
  /// over the sorted on-disk key block, one verified key block read per
  /// probed block. Used by the driver to slice a spilled run into reduce
  /// partitions without streaming it. The stored key bounds short-circuit
  /// the common partition boundaries (entirely before or after this run)
  /// with zero IO. Repeat callers should hold their own SpillKeyProbe to
  /// reuse the handle and block cache.
  static uint64_t LowerBoundIndex(const SpillFileInfo& info, const K& key) {
    SpillKeyProbe<K> probe(info);
    return probe.LowerBound(key);
  }

  /// First index in [0, num_pairs) whose key is > `key` -- std::upper_bound
  /// over the sorted on-disk key block. For the unsigned integral keys the
  /// shuffle uses this is LowerBoundIndex of key+1 (the all-ones key maps to
  /// the end), so it inherits the same zero-IO min/max short-circuits. The
  /// equi-depth partitioner needs both bounds to size a spilled run's
  /// key-equal group without streaming it.
  static uint64_t UpperBoundIndex(const SpillFileInfo& info, const K& key) {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    if (key == std::numeric_limits<K>::max()) return info.num_pairs;
    return LowerBoundIndex(info, static_cast<K>(key + 1));
  }

 private:
  void LoadBlock(uint64_t block, uint64_t block_lo, uint64_t block_hi) {
    if (block == loaded_block_) return;
    const uint64_t count = block_hi - block_lo;
    handle_.ReadAt(internal::SpillKeyOffset() + block_lo * sizeof(K),
                   keys_.data(), count * sizeof(K), "spill key block");
    handle_.VerifyBlock(handle_.key_crcs(), block, keys_.data(),
                        count * sizeof(K), "spill key");
    handle_.ReadAt(internal::SpillValueOffset<K, V>(num_pairs_) +
                       block_lo * sizeof(V),
                   values_.data(), count * sizeof(V), "spill value block");
    handle_.VerifyBlock(handle_.value_crcs(), block, values_.data(),
                        count * sizeof(V), "spill value");
    loaded_block_ = block;
  }

  internal::SpillReadHandle handle_;
  uint64_t num_pairs_;
  uint64_t pos_;
  uint64_t end_;
  uint64_t block_pairs_;
  uint64_t loaded_block_ = std::numeric_limits<uint64_t>::max();
  std::vector<K> keys_;
  std::vector<V> values_;
};

/// Random-access lower/upper-bound probes over one spill file's sorted key
/// block, sharing one open handle across calls. The `*Bounds` variants
/// answer from SpillFileInfo's in-memory sparse block index alone -- zero
/// IO, the true index bracketed inside one kSpillIndexBlockPairs block --
/// which is what the equi-depth rank search wants: most binary-search steps
/// are decided by the bracket, and only the final refinements pay a read.
/// The exact variants read whole checksum-verified key blocks and cache the
/// last one, so probing the same region repeatedly (rank search convergence,
/// the lower/upper pair sizing a key group) costs a single fread; without
/// the sparse index a lower bound degrades to a binary search over verified
/// blocks (log(nblocks) reads).
///
/// One probe is single-threaded; concurrent reduce tasks each build their
/// own (same ownership rule as FileRunCursor). The index/bounds shortcuts
/// need unsigned integral keys (the partitioning key contract); LowerBound
/// itself works for any trivially copyable ordered key.
template <typename K>
class SpillKeyProbe {
 public:
  struct IndexBounds {
    uint64_t min;  // true index is >= min
    uint64_t max;  // ... and <= max; min == max means exact already
  };

  explicit SpillKeyProbe(const SpillFileInfo& info,
                         const SpillIoPolicy& policy = SpillIoPolicy())
      : info_(&info), policy_(policy) {
    static_assert(std::is_trivially_copyable_v<K>);
  }

  SpillKeyProbe(SpillKeyProbe&& other) noexcept = default;
  SpillKeyProbe(const SpillKeyProbe&) = delete;
  SpillKeyProbe& operator=(const SpillKeyProbe&) = delete;
  SpillKeyProbe& operator=(SpillKeyProbe&&) = delete;

  /// Brackets LowerBound(key) using only min/max and the sparse block index
  /// -- no IO. (Without the unsigned-integral key contract the bracket is
  /// the whole file.)
  IndexBounds LowerBoundBounds(const K& key) const {
    const SpillFileInfo& in = *info_;
    if constexpr (std::is_integral_v<K> && std::is_unsigned_v<K>) {
      if (in.num_pairs == 0 || static_cast<uint64_t>(key) <= in.min_key) {
        return IndexBounds{0, 0};
      }
      if (static_cast<uint64_t>(key) > in.max_key) {
        return IndexBounds{in.num_pairs, in.num_pairs};
      }
      if (in.block_keys.empty()) return IndexBounds{0, in.num_pairs};
      // First block whose leading key is >= key; j >= 1 because block 0
      // leads with min_key < key. The answer sits after block j-1's leading
      // key and no later than block j's start.
      const uint64_t j = static_cast<uint64_t>(
          std::lower_bound(in.block_keys.begin(), in.block_keys.end(),
                           static_cast<uint64_t>(key)) -
          in.block_keys.begin());
      const uint64_t lo = (j - 1) * kSpillIndexBlockPairs + 1;
      const uint64_t hi = j < in.block_keys.size() ? j * kSpillIndexBlockPairs
                                                   : in.num_pairs;
      return IndexBounds{lo, hi};
    } else {
      return IndexBounds{0, in.num_pairs};
    }
  }

  /// Brackets UpperBound(key) (first index with key strictly greater).
  IndexBounds UpperBoundBounds(const K& key) const {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    if (key == std::numeric_limits<K>::max()) {
      return IndexBounds{info_->num_pairs, info_->num_pairs};
    }
    return LowerBoundBounds(static_cast<K>(key + 1));
  }

  /// Exact std::lower_bound index over the on-disk key block: at most one
  /// verified block read (cached) when the sparse index is present.
  uint64_t LowerBound(const K& key) {
    const IndexBounds b = LowerBoundBounds(key);
    uint64_t lo = b.min;
    uint64_t hi = b.max;
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (KeyAt(mid) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Exact std::upper_bound index; for the unsigned keys this is
  /// LowerBound(key + 1), sharing the cached block when both land together.
  uint64_t UpperBound(const K& key) {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    if (key == std::numeric_limits<K>::max()) return info_->num_pairs;
    return LowerBound(static_cast<K>(key + 1));
  }

 private:
  /// Key at pair index `i`, served from the cached checksum block (loaded
  /// and verified on miss).
  K KeyAt(uint64_t i) {
    const uint64_t block = i / kSpillIndexBlockPairs;
    if (block != cached_block_) {
      EnsureOpen();
      const uint64_t lo = block * kSpillIndexBlockPairs;
      const uint64_t count =
          std::min(kSpillIndexBlockPairs, info_->num_pairs - lo);
      cache_.resize(static_cast<size_t>(count));
      handle_.ReadAt(internal::SpillKeyOffset() + lo * sizeof(K), cache_.data(),
                     count * sizeof(K), "spill key block");
      handle_.VerifyBlock(handle_.key_crcs(), block, cache_.data(),
                          count * sizeof(K), "spill key");
      cached_block_ = block;
    }
    return cache_[static_cast<size_t>(i - cached_block_ * kSpillIndexBlockPairs)];
  }

  void EnsureOpen() {
    if (handle_.open()) return;
    handle_.Open(*info_, sizeof(K), /*expect_vsize=*/0, policy_);
  }

  const SpillFileInfo* info_;
  SpillIoPolicy policy_;
  internal::SpillReadHandle handle_;
  uint64_t cached_block_ = std::numeric_limits<uint64_t>::max();
  std::vector<K> cache_;
};

/// Lazily created process-unique temp directory for one MrEnv's spill files
/// (the analog of a task tracker's mapred.local.dir). The directory and
/// anything left inside it are removed when the env dies; individual rounds
/// delete their own files as they finish (ShufflePlane is RAII over its
/// spills), so the recursive remove is the backstop for crashes inside
/// algorithm code, not the primary cleanup path.
class SpillDir {
 public:
  SpillDir() = default;
  ~SpillDir() { Remove(); }

  SpillDir(const SpillDir&) = delete;
  SpillDir& operator=(const SpillDir&) = delete;

  /// Unique file path inside the (created-on-first-use) directory.
  std::filesystem::path NextFilePath(const std::string& tag) {
    EnsureCreated();
    return dir_ / (tag + "-" + std::to_string(next_file_++) + ".spill");
  }

  /// True once a spill has forced the directory into existence.
  bool created() const { return created_; }
  const std::filesystem::path& path() const { return dir_; }

  /// Deletes the directory tree; safe to call repeatedly.
  void Remove() {
    if (!created_) return;
    std::error_code ec;  // best effort: never throw from a destructor path
    std::filesystem::remove_all(dir_, ec);
    created_ = false;
  }

 private:
  void EnsureCreated() {
    if (created_) return;
    static std::atomic<uint64_t> counter{0};
    const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
    dir_ = std::filesystem::temp_directory_path() /
           ("wavemr-spill-" + std::to_string(::getpid()) + "-" + std::to_string(id));
    std::filesystem::create_directories(dir_);
    created_ = true;
  }

  std::filesystem::path dir_;
  bool created_ = false;
  uint64_t next_file_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_SPILL_H_
