#ifndef WAVEMR_MAPREDUCE_SPILL_H_
#define WAVEMR_MAPREDUCE_SPILL_H_

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/crc32c.h"
#include "core/failpoint.h"
#include "core/io.h"
#include "core/logging.h"
#include "core/status.h"

namespace wavemr {

/// External shuffle spill files.
///
/// When a sorted round's retained map-output runs outgrow
/// CostModel::shuffle_buffer_bytes, the ShufflePlane serializes whole runs
/// to temp files in the columnar framing below and frees their memory; the
/// loser-tree merge then streams them back through FileRunCursor, so the
/// merged output is bit-identical to the all-in-memory path (same keys, same
/// run-ordinal tie-breaks, same within-run order). This is Hadoop's
/// map-output spill/merge pipeline made literal: sorted on-disk runs,
/// file-backed cursors, k-way merge.
///
/// File framing (host-endian; spill files never outlive the process):
///
///   [u64 magic][u64 n][u32 sizeof(K)][u32 sizeof(V)]   24-byte header
///   [K keys:   n * sizeof(K)]                          key block
///   [V values: n * sizeof(V)]                          value block
///   [u32 key_crc   * nblocks]                          CRC32C per 4096-pair
///   [u32 value_crc * nblocks]                          column block
///   [u32 footer_crc]                                   CRC32C of the two
///                                                      CRC arrays
///
/// with nblocks = ceil(n / kSpillIndexBlockPairs). The key and value blocks
/// stay columnar -- a cursor's refill reads a block of keys and a block of
/// values with two contiguous freads, and the on-disk lower-bound search for
/// reduce partitioning touches only the key block. Every read path verifies
/// the block checksums, so a torn or bit-flipped spill file is detected
/// (SpillIoError) instead of silently corrupting the merge.
///
/// IO failure contract: writes return typed IoResults (the shuffle plane
/// degrades to keeping the run resident -- see ShufflePlane); reads throw
/// SpillIoError, which the job engine's existing exception path turns into a
/// clean abort with spill files removed. Transient errno (EINTR/EAGAIN, and
/// ENOSPC on writes) is retried with exponential backoff per
/// IoOptions::retry (IoRetryPolicy, core/io.h) before either outcome -- sync
/// and async paths share that one classification table. Fault injection
/// hooks: failpoint sites `spill.write.{open,write,close}` and
/// `spill.read.{open,read}` fire on every backend; the async-only sites
/// `spill.write.submit`, `spill.write.complete` (shuffle.h) and
/// `spill.read.prefetch` (FileRunCursor) fire inside the overlapped plane
/// (core/failpoint.h, catalog in docs/robustness.md).

inline constexpr uint64_t kSpillMagic = 0x57564d5250494c32ull;  // "WVMRPIL2"
inline constexpr uint64_t kSpillHeaderBytes = 24;

/// Sparse key-index and checksum granularity: one sampled key and one CRC32C
/// per column per this many pairs. Kept equal to FileRunCursor's refill
/// block so an index hit brackets exactly one cursor block and a refill
/// verifies exactly one checksum. 4096 * 8 bytes of samples per 4096 *
/// 16-byte block = 0.05% memory overhead on the spilled payload.
inline constexpr uint64_t kSpillIndexBlockPairs = 4096;

/// Checksummed blocks in a file of `num_pairs` pairs.
inline uint64_t SpillNumBlocks(uint64_t num_pairs) {
  return (num_pairs + kSpillIndexBlockPairs - 1) / kSpillIndexBlockPairs;
}

/// Total on-disk size of a spill file holding `num_pairs` K/V pairs.
template <typename K, typename V>
uint64_t SpillFileBytes(uint64_t num_pairs) {
  return kSpillHeaderBytes + num_pairs * (sizeof(K) + sizeof(V)) +
         (2 * SpillNumBlocks(num_pairs) + 1) * sizeof(uint32_t);
}

/// Thrown by the spill read paths (cursors, probes) on IO failure or
/// detected corruption. The job engine already unwinds exceptions cleanly
/// (spill files are deleted by ShufflePlane/SpillDir RAII), so a bad disk
/// aborts the build with a typed, actionable error instead of wrong results.
/// Wraps the core IoResult (core/io.h), which both backends share.
class SpillIoError : public std::runtime_error {
 public:
  explicit SpillIoError(IoResult io)
      : std::runtime_error(io.ToString()), io_(std::move(io)) {}
  const IoResult& io() const { return io_; }

 private:
  IoResult io_;
};

/// Deprecated spelling: the retry policy moved to core/io.h (IoRetryPolicy,
/// carried inside IoOptions) so sync and async paths share one transient
/// table. Old call sites keep compiling through this alias.
using SpillIoPolicy = IoRetryPolicy;

template <typename K>
class SpillKeyProbe;

/// Metadata the plane keeps per spilled run: enough to merge and partition
/// it without re-reading the header.
struct SpillFileInfo {
  std::filesystem::path path;
  uint64_t num_pairs = 0;
  uint64_t min_key = 0;  // keys.front() at spill time (0 when empty)
  uint64_t max_key = 0;  // keys.back() at spill time
  uint64_t file_bytes = 0;
  /// keys[b * kSpillIndexBlockPairs] for each block b, recorded at spill
  /// time (unsigned integral keys only, like min/max). Lets rank and
  /// partition probes bracket any lower bound inside one block without
  /// touching the file.
  std::vector<uint64_t> block_keys;
};

namespace internal {

inline uint64_t SpillKeyOffset() { return kSpillHeaderBytes; }

template <typename K, typename V>
uint64_t SpillValueOffset(uint64_t num_pairs) {
  return kSpillHeaderBytes + num_pairs * sizeof(K);
}

inline IoResult SpillFail(IoResult::Op op, int err, std::string detail) {
  IoResult r;
  r.op = op;
  r.err = err;
  r.detail = std::move(detail);
  return r;
}

/// Shared read-side handle: opens a spill file (with retry on transient
/// errno), validates the header against the caller's SpillFileInfo, loads
/// and verifies the checksum footer, and serves positioned reads.
///
/// Every operation exists in two spellings that share one body: Try*
/// returns a typed IoResult (the IoBackend seam -- async prefetch jobs must
/// never throw across threads), and the bare name throws SpillIoError for
/// the legacy inline paths. Reads go through positional pread on the owned
/// fd, so once Open succeeds concurrent TryReadAt calls (prefetch slots in
/// flight) are safe without any cursor-level locking.
///
/// `expect_vsize` = 0 skips the value-size check (SpillKeyProbe does not
/// know V; it takes the on-disk size as authoritative for computing the
/// footer offset).
class SpillReadHandle {
 public:
  SpillReadHandle() = default;
  ~SpillReadHandle() {
    if (fd_ >= 0) ::close(fd_);
  }
  SpillReadHandle(SpillReadHandle&& other) noexcept { *this = std::move(other); }
  SpillReadHandle& operator=(SpillReadHandle&& other) noexcept {
    if (this != &other) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = other.fd_;
      other.fd_ = -1;
      path_ = std::move(other.path_);
      num_pairs_ = other.num_pairs_;
      ksize_ = other.ksize_;
      vsize_ = other.vsize_;
      key_crcs_ = std::move(other.key_crcs_);
      value_crcs_ = std::move(other.value_crcs_);
    }
    return *this;
  }
  SpillReadHandle(const SpillReadHandle&) = delete;
  SpillReadHandle& operator=(const SpillReadHandle&) = delete;

  bool open() const { return fd_ >= 0; }
  uint64_t num_pairs() const { return num_pairs_; }
  uint32_t ksize() const { return ksize_; }
  uint32_t vsize() const { return vsize_; }
  const std::vector<uint32_t>& key_crcs() const { return key_crcs_; }
  const std::vector<uint32_t>& value_crcs() const { return value_crcs_; }

  /// Typed open: never throws. On failure the handle stays closed.
  IoResult TryOpen(const SpillFileInfo& info, uint32_t expect_ksize,
                   uint32_t expect_vsize, const IoRetryPolicy& policy) {
    path_ = info.path.string();
    policy_ = policy;
    for (int attempt = 0;; ++attempt) {
      const int fe = FailpointHit("spill.read.open");
      fd_ = fe != 0 ? -1 : ::open(path_.c_str(), O_RDONLY);
      if (fd_ >= 0) break;
      const int err = fe != 0 ? fe : errno;
      if (IoRetryPolicy::IsTransient(err) && attempt + 1 < policy_.max_attempts) {
        policy_.BackoffSleep(attempt);
        continue;
      }
      return SpillFail(IoResult::Op::kOpen, err,
                       "cannot open spill file " + path_);
    }
    uint64_t header[2] = {0, 0};
    uint32_t sizes[2] = {0, 0};
    IoResult r = TryReadAt(0, header, sizeof(header), "spill header");
    if (r.ok()) r = TryReadAt(sizeof(header), sizes, sizeof(sizes), "spill header");
    if (r.ok() && header[0] != kSpillMagic) {
      r = SpillFail(IoResult::Op::kFormat, 0,
                    "bad spill magic in " + path_ +
                        " (not a WVMRPIL2 spill file)");
    }
    if (r.ok() && header[1] != info.num_pairs) {
      r = SpillFail(IoResult::Op::kFormat, 0,
                    "spill pair-count mismatch in " + path_ + ": header says " +
                        std::to_string(header[1]) + ", expected " +
                        std::to_string(info.num_pairs));
    }
    if (r.ok() && (sizes[0] != expect_ksize ||
                   (expect_vsize != 0 && sizes[1] != expect_vsize) ||
                   sizes[1] == 0)) {
      r = SpillFail(IoResult::Op::kFormat, 0,
                    "spill record-size mismatch in " + path_);
    }
    if (r.ok()) {
      num_pairs_ = header[1];
      ksize_ = sizes[0];
      vsize_ = sizes[1];
      r = TryLoadFooter();
    }
    if (!r.ok()) {
      ::close(fd_);
      fd_ = -1;
    }
    return r;
  }

  void Open(const SpillFileInfo& info, uint32_t expect_ksize,
            uint32_t expect_vsize, const IoRetryPolicy& policy) {
    IoResult r = TryOpen(info, expect_ksize, expect_vsize, policy);
    if (!r.ok()) throw SpillIoError(std::move(r));
  }

  /// Positioned read of exactly `bytes` via pread (safe from concurrent
  /// prefetch jobs); retries transient errno per policy. Returns kFormat on
  /// EOF (truncation) and kRead on hard errors.
  IoResult TryReadAt(uint64_t offset, void* out, size_t bytes,
                     const char* what) const {
    for (int attempt = 0;; ++attempt) {
      const int fe = FailpointHit("spill.read.read");
      int err = 0;
      if (fe != 0) {
        err = fe;
      } else {
        size_t done = 0;
        while (done < bytes) {
          const ssize_t got =
              ::pread(fd_, static_cast<char*>(out) + done, bytes - done,
                      static_cast<off_t>(offset + done));
          if (got > 0) {
            done += static_cast<size_t>(got);
            continue;
          }
          if (got == 0) {
            return SpillFail(IoResult::Op::kFormat, 0,
                             "truncated spill file " + path_ +
                                 " (short read of " + what + ")");
          }
          err = errno;
          break;
        }
        if (done == bytes) return IoResult{};
      }
      if (IoRetryPolicy::IsTransient(err) && attempt + 1 < policy_.max_attempts) {
        policy_.BackoffSleep(attempt);
        continue;
      }
      return SpillFail(IoResult::Op::kRead, err,
                       std::string(what) + " in " + path_);
    }
  }

  void ReadAt(uint64_t offset, void* out, size_t bytes, const char* what) const {
    IoResult r = TryReadAt(offset, out, bytes, what);
    if (!r.ok()) throw SpillIoError(std::move(r));
  }

  /// Verifies one column block against its stored checksum.
  IoResult TryVerifyBlock(const std::vector<uint32_t>& crcs, uint64_t block,
                          const void* data, size_t bytes,
                          const char* column) const {
    const uint32_t computed = Crc32c(data, bytes);
    if (block < crcs.size() && crcs[block] == computed) return IoResult{};
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "%s block %llu checksum mismatch (stored 0x%08x, computed "
                  "0x%08x)",
                  column, static_cast<unsigned long long>(block),
                  block < crcs.size() ? crcs[block] : 0u, computed);
    return SpillFail(IoResult::Op::kChecksum, 0,
                     std::string(msg) + " in " + path_);
  }

  void VerifyBlock(const std::vector<uint32_t>& crcs, uint64_t block,
                   const void* data, size_t bytes, const char* column) const {
    IoResult r = TryVerifyBlock(crcs, block, data, bytes, column);
    if (!r.ok()) throw SpillIoError(std::move(r));
  }

 private:
  IoResult TryLoadFooter() {
    const uint64_t nblocks = SpillNumBlocks(num_pairs_);
    const uint64_t footer_off =
        kSpillHeaderBytes + num_pairs_ * (uint64_t{ksize_} + vsize_);
    std::vector<uint32_t> footer(2 * nblocks + 1);
    IoResult r = TryReadAt(footer_off, footer.data(),
                           footer.size() * sizeof(uint32_t),
                           "spill checksum footer");
    if (!r.ok()) return r;
    const uint32_t computed =
        Crc32c(footer.data(), 2 * nblocks * sizeof(uint32_t));
    if (footer[2 * nblocks] != computed) {
      char msg[128];
      std::snprintf(msg, sizeof(msg),
                    "spill footer checksum mismatch (stored 0x%08x, computed "
                    "0x%08x)",
                    footer[2 * nblocks], computed);
      return SpillFail(IoResult::Op::kChecksum, 0,
                       std::string(msg) + " in " + path_);
    }
    key_crcs_.assign(footer.begin(), footer.begin() + nblocks);
    value_crcs_.assign(footer.begin() + nblocks, footer.begin() + 2 * nblocks);
    return IoResult{};
  }

  int fd_ = -1;
  std::string path_;
  IoRetryPolicy policy_;
  uint64_t num_pairs_ = 0;
  uint32_t ksize_ = 0;
  uint32_t vsize_ = 0;
  std::vector<uint32_t> key_crcs_;
  std::vector<uint32_t> value_crcs_;
};

}  // namespace internal

/// Outcome of WriteSpillFile: `io.ok()` on success with the final file size;
/// on failure the partial file has already been deleted. `retries` counts
/// re-attempts actually performed (0 = first try succeeded / failed hard).
struct SpillWriteResult {
  IoResult io;
  uint64_t file_bytes = 0;
  uint32_t retries = 0;
};

namespace internal {

/// One write attempt. On failure the stream is closed but the partial file
/// is left for the caller (the retry loop) to delete.
template <typename K, typename V>
IoResult WriteSpillFileOnce(const std::filesystem::path& path, const K* keys,
                            const V* values, uint64_t n,
                            const std::vector<uint32_t>& footer) {
  const std::string name = path.string();
  int fe = FailpointHit("spill.write.open");
  std::FILE* f = fe != 0 ? nullptr : std::fopen(name.c_str(), "wb");
  if (f == nullptr) {
    return SpillFail(IoResult::Op::kOpen, fe != 0 ? fe : errno,
                     "cannot create spill file " + name);
  }
  const uint64_t magic = kSpillMagic;
  const uint32_t ksize = sizeof(K);
  const uint32_t vsize = sizeof(V);
  errno = 0;
  fe = FailpointHit("spill.write.write");
  bool ok = fe == 0;
  ok = ok && std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
       std::fwrite(&n, sizeof(n), 1, f) == 1 &&
       std::fwrite(&ksize, sizeof(ksize), 1, f) == 1 &&
       std::fwrite(&vsize, sizeof(vsize), 1, f) == 1;
  if (ok && n > 0) {
    ok = std::fwrite(keys, sizeof(K), n, f) == n &&
         std::fwrite(values, sizeof(V), n, f) == n;
  }
  ok = ok && std::fwrite(footer.data(), sizeof(uint32_t), footer.size(), f) ==
                 footer.size();
  if (!ok) {
    const int err = fe != 0 ? fe : (errno != 0 ? errno : EIO);
    std::fclose(f);
    return SpillFail(IoResult::Op::kWrite, err,
                     "short write to spill file " + name);
  }
  fe = FailpointHit("spill.write.close");
  if (fe != 0) {
    std::fclose(f);
    return SpillFail(IoResult::Op::kClose, fe, "cannot close spill file " + name);
  }
  errno = 0;
  if (std::fclose(f) != 0) {
    return SpillFail(IoResult::Op::kClose, errno != 0 ? errno : EIO,
                     "cannot close spill file " + name);
  }
  return IoResult{};
}

}  // namespace internal

/// The checksum footer for one run's columns: per-block CRC32C of the key
/// and value columns plus the footer CRC, in on-disk layout. Computed by the
/// *owner* of the columns -- on the async path the driver runs this before
/// submission, so what lands on disk provably matches what the plane held
/// when it decided to spill, not whatever a worker later observed.
template <typename K, typename V>
std::vector<uint32_t> ComputeSpillFooter(const K* keys, const V* values,
                                         uint64_t n) {
  const uint64_t nblocks = SpillNumBlocks(n);
  std::vector<uint32_t> footer(2 * nblocks + 1);
  for (uint64_t b = 0; b < nblocks; ++b) {
    const uint64_t lo = b * kSpillIndexBlockPairs;
    const uint64_t cnt = std::min(kSpillIndexBlockPairs, n - lo);
    footer[b] = Crc32c(keys + lo, cnt * sizeof(K));
    footer[nblocks + b] = Crc32c(values + lo, cnt * sizeof(V));
  }
  footer[2 * nblocks] = Crc32c(footer.data(), 2 * nblocks * sizeof(uint32_t));
  return footer;
}

/// Retrying write body shared by the inline and worker-side paths: each
/// retry rewrites from scratch, any partial file is deleted before
/// returning, and the outcome is a typed result -- never a throw, so it is
/// safe as an IoBackend job body. The footer must come from
/// ComputeSpillFooter over the same columns.
template <typename K, typename V>
SpillWriteResult WriteSpillFileWithFooter(const std::filesystem::path& path,
                                          const K* keys, const V* values,
                                          uint64_t n,
                                          const std::vector<uint32_t>& footer,
                                          const IoRetryPolicy& policy) {
  static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>,
                "spill framing memcpys raw columns");
  SpillWriteResult result;
  for (int attempt = 0;; ++attempt) {
    result.io = internal::WriteSpillFileOnce<K, V>(path, keys, values, n, footer);
    if (result.io.ok()) {
      result.file_bytes = SpillFileBytes<K, V>(n);
      result.retries = static_cast<uint32_t>(attempt);
      return result;
    }
    // Never leave a torn file behind: a later open would read garbage or a
    // directory sweep would double-count it.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (!IoRetryPolicy::IsTransient(result.io.err) ||
        attempt + 1 >= policy.max_attempts) {
      result.retries = static_cast<uint32_t>(attempt);
      return result;
    }
    policy.BackoffSleep(attempt);
  }
}

/// Writes one sorted run's columns to `path` in the checksummed WVMRPIL2
/// framing. Keys and values must be trivially copyable (every shuffle value
/// in this codebase is a packed POD message).
///
/// Never aborts on IO failure: transient errno is retried per `policy`
/// (each retry rewrites from scratch), any partial file is deleted before
/// returning, and the typed IoResult lets the caller degrade -- the shuffle
/// plane's response is to keep the run resident (ShufflePlane fallback)
/// rather than lose data or kill the job.
template <typename K, typename V>
SpillWriteResult WriteSpillFile(const std::filesystem::path& path,
                                const K* keys, const V* values, uint64_t n,
                                const IoRetryPolicy& policy = IoRetryPolicy()) {
  // Checksums are over the in-memory columns, computed once across retries:
  // what lands on disk must match what the writer held, not what a previous
  // torn attempt wrote.
  const std::vector<uint32_t> footer = ComputeSpillFooter<K, V>(keys, values, n);
  return WriteSpillFileWithFooter<K, V>(path, keys, values, n, footer, policy);
}

/// Streaming block cursor over an index range [begin, end) of one spill
/// file's pairs. Each cursor owns its fd, so cursors over the same file
/// (one per reduce partition) are safe to advance from different threads.
/// NextBlock loads (keys, values) pairs into owned buffers and hands out raw
/// column pointers -- the same shape RunMerger's resident cursors have, so
/// file-backed and in-memory runs merge through one loser tree.
///
/// Reads are always whole checksum blocks (kSpillIndexBlockPairs pairs,
/// cached), verified against the stored CRC32C before any byte is served; a
/// refill request is clamped to the current block's end, so callers see at
/// most block_pairs pairs per call but possibly fewer. IO failures and
/// corruption throw SpillIoError.
///
/// On an async IoBackend the cursor prefetches: up to
/// IoOptions::prefetch_depth upcoming checksum blocks are read and
/// CRC-verified by I/O workers (failpoint `spill.read.prefetch`) while the
/// loser tree drains the current block. Blocks are consumed strictly in
/// order, so the handoff point is deterministic -- a prefetched block's
/// failure or corruption is rethrown as SpillIoError exactly when NextBlock
/// first touches that block, the same observable point as the inline path.
/// Buffers come from the backend's IoBufferArena and recycle as the cursor
/// advances.
template <typename K, typename V>
class FileRunCursor {
 public:
  /// Upper bound on pairs per refill: 4096 * (8 + 8) bytes = 64 KiB per
  /// column pair for the common u64/u64 shuffle -- big enough to amortize
  /// the read, small enough that R cursors * 2 columns stay cache-friendly.
  static constexpr uint64_t kDefaultBlockPairs = 4096;

  FileRunCursor(const SpillFileInfo& info, uint64_t begin, uint64_t end,
                uint64_t block_pairs = kDefaultBlockPairs,
                const IoRetryPolicy& policy = IoRetryPolicy(),
                IoBackend* io = nullptr)
      : FileRunCursor(info, begin, end, block_pairs, policy, io, nullptr) {}

  /// Typed construction through the IoBackend seam: open/header/footer
  /// failures come back as a Status instead of a SpillIoError throw.
  static StatusOr<std::unique_ptr<FileRunCursor>> Create(
      const SpillFileInfo& info, uint64_t begin, uint64_t end,
      uint64_t block_pairs = kDefaultBlockPairs,
      const IoRetryPolicy& policy = IoRetryPolicy(), IoBackend* io = nullptr) {
    IoResult open_result;
    auto cursor = std::unique_ptr<FileRunCursor>(new FileRunCursor(
        info, begin, end, block_pairs, policy, io, &open_result));
    if (!open_result.ok()) return open_result.ToStatus();
    return cursor;
  }

  FileRunCursor(const FileRunCursor&) = delete;
  FileRunCursor& operator=(const FileRunCursor&) = delete;

  ~FileRunCursor() {
    // In-flight prefetch jobs capture slot pointers; they must finish
    // before the slots (and the handle's fd) die.
    for (auto& slot : pending_) slot->ticket.Wait();
  }

  uint64_t remaining() const { return end_ - pos_; }

  /// Checksum blocks currently read ahead (telemetry for tests).
  size_t prefetch_in_flight() const { return pending_.size(); }

  /// Loads the next slice of the range. Returns the number of pairs loaded
  /// (0 at end of range); *keys/*values point at the cursor-owned buffers
  /// and stay valid until the next NextBlock call.
  uint64_t NextBlock(const K** keys, const V** values) {
    uint64_t want = remaining() < block_pairs_ ? remaining() : block_pairs_;
    if (want == 0) return 0;
    const uint64_t block = pos_ / kSpillIndexBlockPairs;
    const uint64_t block_lo = block * kSpillIndexBlockPairs;
    const uint64_t block_hi =
        std::min(block_lo + kSpillIndexBlockPairs, num_pairs_);
    want = std::min(want, block_hi - pos_);
    LoadBlock(block, block_lo, block_hi);
    *keys = reinterpret_cast<const K*>(cur_keys_.data()) + (pos_ - block_lo);
    *values =
        reinterpret_cast<const V*>(cur_values_.data()) + (pos_ - block_lo);
    pos_ += want;
    return want;
  }

  /// First index in [0, num_pairs) whose key is >= `key` -- std::lower_bound
  /// over the sorted on-disk key block, one verified key block read per
  /// probed block. Used by the driver to slice a spilled run into reduce
  /// partitions without streaming it. The stored key bounds short-circuit
  /// the common partition boundaries (entirely before or after this run)
  /// with zero IO. Repeat callers should hold their own SpillKeyProbe to
  /// reuse the handle and block cache.
  static uint64_t LowerBoundIndex(const SpillFileInfo& info, const K& key) {
    SpillKeyProbe<K> probe(info);
    return probe.LowerBound(key);
  }

  /// First index in [0, num_pairs) whose key is > `key` -- std::upper_bound
  /// over the sorted on-disk key block. For the unsigned integral keys the
  /// shuffle uses this is LowerBoundIndex of key+1 (the all-ones key maps to
  /// the end), so it inherits the same zero-IO min/max short-circuits. The
  /// equi-depth partitioner needs both bounds to size a spilled run's
  /// key-equal group without streaming it.
  static uint64_t UpperBoundIndex(const SpillFileInfo& info, const K& key) {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    if (key == std::numeric_limits<K>::max()) return info.num_pairs;
    return LowerBoundIndex(info, static_cast<K>(key + 1));
  }

 private:
  /// One prefetched checksum block in flight: the job fills keys/values and
  /// records its outcome in `result`; the consumer serializes on `ticket`.
  struct Slot {
    uint64_t block = 0;
    IoBuffer keys;
    IoBuffer values;
    IoResult result;
    IoTicket ticket;
  };

  /// Shared body. With `open_result` != nullptr failures land there (the
  /// typed Create path); otherwise they throw SpillIoError (legacy ctor).
  FileRunCursor(const SpillFileInfo& info, uint64_t begin, uint64_t end,
                uint64_t block_pairs, const IoRetryPolicy& policy,
                IoBackend* io, IoResult* open_result)
      : io_(io != nullptr ? io : DefaultSyncIoBackend()),
        num_pairs_(info.num_pairs),
        pos_(begin),
        end_(end < info.num_pairs ? end : info.num_pairs),
        block_pairs_(block_pairs == 0 ? 1 : block_pairs) {
    static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>);
    WAVEMR_CHECK(begin <= end_) << "inverted spill cursor range";
    IoResult r = handle_.TryOpen(info, sizeof(K), sizeof(V), policy);
    if (!r.ok()) {
      if (open_result != nullptr) {
        *open_result = std::move(r);
        return;
      }
      throw SpillIoError(std::move(r));
    }
    if (open_result != nullptr) *open_result = IoResult{};
    if (io_->async() && pos_ < end_) {
      prefetch_depth_ = std::max(0, io_->options().prefetch_depth);
    }
    next_prefetch_block_ = pos_ / kSpillIndexBlockPairs;
    SubmitPrefetch();
  }

  /// Reads + CRC-verifies one whole checksum block into caller storage.
  /// Never throws (runs on I/O workers as well as inline).
  IoResult TryLoadBlockInto(uint64_t block, std::byte* kout,
                            std::byte* vout) const {
    const uint64_t lo = block * kSpillIndexBlockPairs;
    const uint64_t count = std::min(kSpillIndexBlockPairs, num_pairs_ - lo);
    IoResult r =
        handle_.TryReadAt(internal::SpillKeyOffset() + lo * sizeof(K), kout,
                          count * sizeof(K), "spill key block");
    if (!r.ok()) return r;
    r = handle_.TryVerifyBlock(handle_.key_crcs(), block, kout,
                               count * sizeof(K), "spill key");
    if (!r.ok()) return r;
    r = handle_.TryReadAt(
        internal::SpillValueOffset<K, V>(num_pairs_) + lo * sizeof(V), vout,
        count * sizeof(V), "spill value block");
    if (!r.ok()) return r;
    return handle_.TryVerifyBlock(handle_.value_crcs(), block, vout,
                                  count * sizeof(V), "spill value");
  }

  /// Tops the pipeline back up to prefetch_depth_ slots. At most
  /// prefetch_depth_ jobs are ever in flight per cursor and all are
  /// submitted from the consuming thread, so a stalled backend can delay but
  /// never deadlock the merge.
  void SubmitPrefetch() {
    if (prefetch_depth_ == 0) return;
    const uint64_t last_block = (end_ - 1) / kSpillIndexBlockPairs;
    while (pending_.size() < static_cast<size_t>(prefetch_depth_) &&
           next_prefetch_block_ <= last_block) {
      auto slot = std::make_unique<Slot>();
      slot->block = next_prefetch_block_++;
      const uint64_t lo = slot->block * kSpillIndexBlockPairs;
      const uint64_t count = std::min(kSpillIndexBlockPairs, num_pairs_ - lo);
      slot->keys = io_->arena().Acquire(count * sizeof(K));
      slot->values = io_->arena().Acquire(count * sizeof(V));
      Slot* raw = slot.get();
      slot->ticket = io_->Submit([this, raw] {
        const IoRetryPolicy& policy = io_->options().retry;
        for (int attempt = 0;; ++attempt) {
          const int fe = FailpointHit("spill.read.prefetch");
          if (fe == 0) break;
          if (IoRetryPolicy::IsTransient(fe) &&
              attempt + 1 < policy.max_attempts) {
            policy.BackoffSleep(attempt);
            continue;
          }
          raw->result = internal::SpillFail(
              IoResult::Op::kRead, fe,
              "prefetch of spill block " + std::to_string(raw->block));
          return;
        }
        raw->result =
            TryLoadBlockInto(raw->block, raw->keys.data(), raw->values.data());
      });
      pending_.push_back(std::move(slot));
    }
  }

  void LoadBlock(uint64_t block, uint64_t block_lo, uint64_t block_hi) {
    if (block == loaded_block_) return;
    if (prefetch_depth_ > 0) {
      // Blocks are consumed in strictly increasing order (refills are
      // clamped to checksum-block boundaries); skipped slots cannot happen,
      // but drain defensively rather than desync the pipeline.
      while (!pending_.empty() && pending_.front()->block < block) {
        pending_.front()->ticket.Wait();
        pending_.pop_front();
      }
      WAVEMR_CHECK(!pending_.empty() && pending_.front()->block == block)
          << "spill prefetch pipeline out of sync";
      std::unique_ptr<Slot> slot = std::move(pending_.front());
      pending_.pop_front();
      slot->ticket.Wait();
      if (!slot->result.ok()) {
        // Same observable point as the inline path: the error surfaces when
        // the merge first needs this block, CRC-checked before handoff.
        throw SpillIoError(std::move(slot->result));
      }
      cur_keys_ = std::move(slot->keys);
      cur_values_ = std::move(slot->values);
      loaded_block_ = block;
      SubmitPrefetch();
      return;
    }
    // Inline path: same bytes, same failpoint sites as the pre-async engine.
    if (!cur_keys_) {
      const uint64_t buf = std::min<uint64_t>(kSpillIndexBlockPairs, num_pairs_);
      cur_keys_ = io_->arena().Acquire(buf * sizeof(K));
      cur_values_ = io_->arena().Acquire(buf * sizeof(V));
    }
    (void)block_lo;
    (void)block_hi;
    IoResult r = TryLoadBlockInto(block, cur_keys_.data(), cur_values_.data());
    if (!r.ok()) throw SpillIoError(std::move(r));
    loaded_block_ = block;
  }

  IoBackend* io_;
  internal::SpillReadHandle handle_;
  uint64_t num_pairs_;
  uint64_t pos_;
  uint64_t end_;
  uint64_t block_pairs_;
  uint64_t loaded_block_ = std::numeric_limits<uint64_t>::max();
  int prefetch_depth_ = 0;
  uint64_t next_prefetch_block_ = 0;
  IoBuffer cur_keys_;
  IoBuffer cur_values_;
  std::deque<std::unique_ptr<Slot>> pending_;
};

/// Random-access lower/upper-bound probes over one spill file's sorted key
/// block, sharing one open handle across calls. The `*Bounds` variants
/// answer from SpillFileInfo's in-memory sparse block index alone -- zero
/// IO, the true index bracketed inside one kSpillIndexBlockPairs block --
/// which is what the equi-depth rank search wants: most binary-search steps
/// are decided by the bracket, and only the final refinements pay a read.
/// The exact variants read whole checksum-verified key blocks and cache the
/// last one, so probing the same region repeatedly (rank search convergence,
/// the lower/upper pair sizing a key group) costs a single fread; without
/// the sparse index a lower bound degrades to a binary search over verified
/// blocks (log(nblocks) reads).
///
/// One probe is single-threaded; concurrent reduce tasks each build their
/// own (same ownership rule as FileRunCursor). The index/bounds shortcuts
/// need unsigned integral keys (the partitioning key contract); LowerBound
/// itself works for any trivially copyable ordered key.
template <typename K>
class SpillKeyProbe {
 public:
  struct IndexBounds {
    uint64_t min;  // true index is >= min
    uint64_t max;  // ... and <= max; min == max means exact already
  };

  explicit SpillKeyProbe(const SpillFileInfo& info,
                         const SpillIoPolicy& policy = SpillIoPolicy())
      : info_(&info), policy_(policy) {
    static_assert(std::is_trivially_copyable_v<K>);
  }

  SpillKeyProbe(SpillKeyProbe&& other) noexcept = default;
  SpillKeyProbe(const SpillKeyProbe&) = delete;
  SpillKeyProbe& operator=(const SpillKeyProbe&) = delete;
  SpillKeyProbe& operator=(SpillKeyProbe&&) = delete;

  /// Brackets LowerBound(key) using only min/max and the sparse block index
  /// -- no IO. (Without the unsigned-integral key contract the bracket is
  /// the whole file.)
  IndexBounds LowerBoundBounds(const K& key) const {
    const SpillFileInfo& in = *info_;
    if constexpr (std::is_integral_v<K> && std::is_unsigned_v<K>) {
      if (in.num_pairs == 0 || static_cast<uint64_t>(key) <= in.min_key) {
        return IndexBounds{0, 0};
      }
      if (static_cast<uint64_t>(key) > in.max_key) {
        return IndexBounds{in.num_pairs, in.num_pairs};
      }
      if (in.block_keys.empty()) return IndexBounds{0, in.num_pairs};
      // First block whose leading key is >= key; j >= 1 because block 0
      // leads with min_key < key. The answer sits after block j-1's leading
      // key and no later than block j's start.
      const uint64_t j = static_cast<uint64_t>(
          std::lower_bound(in.block_keys.begin(), in.block_keys.end(),
                           static_cast<uint64_t>(key)) -
          in.block_keys.begin());
      const uint64_t lo = (j - 1) * kSpillIndexBlockPairs + 1;
      const uint64_t hi = j < in.block_keys.size() ? j * kSpillIndexBlockPairs
                                                   : in.num_pairs;
      return IndexBounds{lo, hi};
    } else {
      return IndexBounds{0, in.num_pairs};
    }
  }

  /// Brackets UpperBound(key) (first index with key strictly greater).
  IndexBounds UpperBoundBounds(const K& key) const {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    if (key == std::numeric_limits<K>::max()) {
      return IndexBounds{info_->num_pairs, info_->num_pairs};
    }
    return LowerBoundBounds(static_cast<K>(key + 1));
  }

  /// Exact std::lower_bound index over the on-disk key block: at most one
  /// verified block read (cached) when the sparse index is present.
  uint64_t LowerBound(const K& key) {
    const IndexBounds b = LowerBoundBounds(key);
    uint64_t lo = b.min;
    uint64_t hi = b.max;
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (KeyAt(mid) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Exact std::upper_bound index; for the unsigned keys this is
  /// LowerBound(key + 1), sharing the cached block when both land together.
  uint64_t UpperBound(const K& key) {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    if (key == std::numeric_limits<K>::max()) return info_->num_pairs;
    return LowerBound(static_cast<K>(key + 1));
  }

 private:
  /// Key at pair index `i`, served from the cached checksum block (loaded
  /// and verified on miss).
  K KeyAt(uint64_t i) {
    const uint64_t block = i / kSpillIndexBlockPairs;
    if (block != cached_block_) {
      EnsureOpen();
      const uint64_t lo = block * kSpillIndexBlockPairs;
      const uint64_t count =
          std::min(kSpillIndexBlockPairs, info_->num_pairs - lo);
      cache_.resize(static_cast<size_t>(count));
      handle_.ReadAt(internal::SpillKeyOffset() + lo * sizeof(K), cache_.data(),
                     count * sizeof(K), "spill key block");
      handle_.VerifyBlock(handle_.key_crcs(), block, cache_.data(),
                          count * sizeof(K), "spill key");
      cached_block_ = block;
    }
    return cache_[static_cast<size_t>(i - cached_block_ * kSpillIndexBlockPairs)];
  }

  void EnsureOpen() {
    if (handle_.open()) return;
    handle_.Open(*info_, sizeof(K), /*expect_vsize=*/0, policy_);
  }

  const SpillFileInfo* info_;
  SpillIoPolicy policy_;
  internal::SpillReadHandle handle_;
  uint64_t cached_block_ = std::numeric_limits<uint64_t>::max();
  std::vector<K> cache_;
};

/// Lazily created process-unique temp directory for one MrEnv's spill files
/// (the analog of a task tracker's mapred.local.dir). The directory and
/// anything left inside it are removed when the env dies; individual rounds
/// delete their own files as they finish (ShufflePlane is RAII over its
/// spills), so the recursive remove is the backstop for crashes inside
/// algorithm code, not the primary cleanup path.
class SpillDir {
 public:
  SpillDir() = default;
  ~SpillDir() { Remove(); }

  SpillDir(const SpillDir&) = delete;
  SpillDir& operator=(const SpillDir&) = delete;

  /// Unique file path inside the (created-on-first-use) directory.
  std::filesystem::path NextFilePath(const std::string& tag) {
    EnsureCreated();
    return dir_ / (tag + "-" + std::to_string(next_file_++) + ".spill");
  }

  /// True once a spill has forced the directory into existence.
  bool created() const { return created_; }
  const std::filesystem::path& path() const { return dir_; }

  /// Deletes the directory tree; safe to call repeatedly.
  void Remove() {
    if (!created_) return;
    std::error_code ec;  // best effort: never throw from a destructor path
    std::filesystem::remove_all(dir_, ec);
    created_ = false;
  }

 private:
  void EnsureCreated() {
    if (created_) return;
    static std::atomic<uint64_t> counter{0};
    const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
    dir_ = std::filesystem::temp_directory_path() /
           ("wavemr-spill-" + std::to_string(::getpid()) + "-" + std::to_string(id));
    std::filesystem::create_directories(dir_);
    created_ = true;
  }

  std::filesystem::path dir_;
  bool created_ = false;
  uint64_t next_file_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_SPILL_H_
