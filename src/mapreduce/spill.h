#ifndef WAVEMR_MAPREDUCE_SPILL_H_
#define WAVEMR_MAPREDUCE_SPILL_H_

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <system_error>
#include <type_traits>
#include <vector>

#include "core/logging.h"

namespace wavemr {

/// External shuffle spill files.
///
/// When a sorted round's retained map-output runs outgrow
/// CostModel::shuffle_buffer_bytes, the ShufflePlane serializes whole runs
/// to temp files in the columnar framing below and frees their memory; the
/// loser-tree merge then streams them back through FileRunCursor, so the
/// merged output is bit-identical to the all-in-memory path (same keys, same
/// run-ordinal tie-breaks, same within-run order). This is Hadoop's
/// map-output spill/merge pipeline made literal: sorted on-disk runs,
/// file-backed cursors, k-way merge.
///
/// File framing (host-endian; spill files never outlive the process):
///
///   [u64 magic][u64 n][u32 sizeof(K)][u32 sizeof(V)]   24-byte header
///   [K keys:   n * sizeof(K)]                          key block
///   [V values: n * sizeof(V)]                          value block
///
/// The key and value blocks stay columnar -- a cursor's refill reads a block
/// of keys and a block of values with two contiguous freads, and the
/// on-disk lower-bound search for reduce partitioning touches only the key
/// block.

inline constexpr uint64_t kSpillMagic = 0x57564d5250494c31ull;  // "WVMRPIL1"
inline constexpr uint64_t kSpillHeaderBytes = 24;

/// Sparse key-index granularity: one sampled key per this many pairs. Kept
/// equal to FileRunCursor's refill block so an index hit brackets exactly
/// one cursor block. 4096 * 8 bytes of samples per 4096 * 16-byte block =
/// 0.05% memory overhead on the spilled payload.
inline constexpr uint64_t kSpillIndexBlockPairs = 4096;

/// Metadata the plane keeps per spilled run: enough to merge and partition
/// it without re-reading the header.
struct SpillFileInfo {
  std::filesystem::path path;
  uint64_t num_pairs = 0;
  uint64_t min_key = 0;  // keys.front() at spill time (0 when empty)
  uint64_t max_key = 0;  // keys.back() at spill time
  uint64_t file_bytes = 0;
  /// keys[b * kSpillIndexBlockPairs] for each block b, recorded at spill
  /// time (unsigned integral keys only, like min/max). Lets rank and
  /// partition probes bracket any lower bound inside one block without
  /// touching the file.
  std::vector<uint64_t> block_keys;
};

template <typename K>
class SpillKeyProbe;

namespace internal {

inline uint64_t SpillKeyOffset() { return kSpillHeaderBytes; }

template <typename K, typename V>
uint64_t SpillValueOffset(uint64_t num_pairs) {
  return kSpillHeaderBytes + num_pairs * sizeof(K);
}

}  // namespace internal

/// Writes one sorted run's columns to `path`. Returns the file size in
/// bytes. Keys and values must be trivially copyable (every shuffle value in
/// this codebase is a packed POD message).
template <typename K, typename V>
uint64_t WriteSpillFile(const std::filesystem::path& path, const K* keys,
                        const V* values, uint64_t n) {
  static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>,
                "spill framing memcpys raw columns");
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  WAVEMR_CHECK(f != nullptr) << "cannot create spill file " << path.string();
  const uint64_t magic = kSpillMagic;
  const uint32_t ksize = sizeof(K);
  const uint32_t vsize = sizeof(V);
  bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
            std::fwrite(&n, sizeof(n), 1, f) == 1 &&
            std::fwrite(&ksize, sizeof(ksize), 1, f) == 1 &&
            std::fwrite(&vsize, sizeof(vsize), 1, f) == 1;
  if (n > 0) {
    ok = ok && std::fwrite(keys, sizeof(K), n, f) == n &&
         std::fwrite(values, sizeof(V), n, f) == n;
  }
  ok = std::fclose(f) == 0 && ok;
  WAVEMR_CHECK(ok) << "short write to spill file " << path.string();
  return kSpillHeaderBytes + n * (sizeof(K) + sizeof(V));
}

/// Streaming block cursor over an index range [begin, end) of one spill
/// file's pairs. Each cursor owns its FILE*, so cursors over the same file
/// (one per reduce partition) are safe to advance from different threads.
/// NextBlock loads up to block_pairs (keys, values) pairs into owned
/// buffers and hands out raw column pointers -- the same shape RunMerger's
/// resident cursors have, so file-backed and in-memory runs merge through
/// one loser tree.
template <typename K, typename V>
class FileRunCursor {
 public:
  /// Pairs per refill: 4096 * (8 + 8) bytes = 64 KiB per column pair for the
  /// common u64/u64 shuffle -- big enough to amortize fread, small enough
  /// that R cursors * 2 columns stay cache-friendly.
  static constexpr uint64_t kDefaultBlockPairs = 4096;

  FileRunCursor(const SpillFileInfo& info, uint64_t begin, uint64_t end,
                uint64_t block_pairs = kDefaultBlockPairs)
      : num_pairs_(info.num_pairs),
        pos_(begin),
        end_(end < info.num_pairs ? end : info.num_pairs),
        block_pairs_(block_pairs == 0 ? 1 : block_pairs) {
    static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>);
    WAVEMR_CHECK(begin <= end_) << "inverted spill cursor range";
    file_ = std::fopen(info.path.string().c_str(), "rb");
    WAVEMR_CHECK(file_ != nullptr) << "cannot open spill file "
                                   << info.path.string();
    uint64_t header[2] = {0, 0};
    uint32_t sizes[2] = {0, 0};
    WAVEMR_CHECK(std::fread(header, sizeof(uint64_t), 2, file_) == 2 &&
                 std::fread(sizes, sizeof(uint32_t), 2, file_) == 2)
        << "truncated spill header " << info.path.string();
    WAVEMR_CHECK(header[0] == kSpillMagic) << "bad spill magic";
    WAVEMR_CHECK(header[1] == info.num_pairs) << "spill pair-count mismatch";
    WAVEMR_CHECK(sizes[0] == sizeof(K) && sizes[1] == sizeof(V))
        << "spill record-size mismatch";
    keys_.resize(static_cast<size_t>(block_pairs_));
    values_.resize(static_cast<size_t>(block_pairs_));
  }

  ~FileRunCursor() {
    if (file_ != nullptr) std::fclose(file_);
  }

  FileRunCursor(const FileRunCursor&) = delete;
  FileRunCursor& operator=(const FileRunCursor&) = delete;

  uint64_t remaining() const { return end_ - pos_; }

  /// Loads the next block of the range. Returns the number of pairs loaded
  /// (0 at end of range); *keys/*values point at the cursor-owned buffers
  /// and stay valid until the next NextBlock call.
  uint64_t NextBlock(const K** keys, const V** values) {
    const uint64_t want = remaining() < block_pairs_ ? remaining() : block_pairs_;
    if (want == 0) return 0;
    ReadColumn(internal::SpillKeyOffset() + pos_ * sizeof(K), keys_.data(),
               sizeof(K), want);
    ReadColumn(internal::SpillValueOffset<K, V>(num_pairs_) + pos_ * sizeof(V),
               values_.data(), sizeof(V), want);
    pos_ += want;
    *keys = keys_.data();
    *values = values_.data();
    return want;
  }

  /// First index in [0, num_pairs) whose key is >= `key` -- std::lower_bound
  /// over the sorted on-disk key block, one key-sized read per probe. Used
  /// by the driver to slice a spilled run into reduce partitions without
  /// streaming it. The stored key bounds short-circuit the common partition
  /// boundaries (entirely before or after this run) with zero IO.
  static uint64_t LowerBoundIndex(const SpillFileInfo& info, const K& key) {
    static_assert(std::is_trivially_copyable_v<K>);
    if constexpr (std::is_integral_v<K> && std::is_unsigned_v<K>) {
      // One-shot probe: block-index bracketing + a single block read. Repeat
      // callers should hold their own SpillKeyProbe to reuse the handle.
      SpillKeyProbe<K> probe(info);
      return probe.LowerBound(key);
    } else {
      std::FILE* f = std::fopen(info.path.string().c_str(), "rb");
      WAVEMR_CHECK(f != nullptr) << "cannot open spill file "
                                 << info.path.string();
      uint64_t lo = 0;
      uint64_t hi = info.num_pairs;
      while (lo < hi) {
        const uint64_t mid = lo + (hi - lo) / 2;
        K probe;
        WAVEMR_CHECK(fseeko(f, static_cast<off_t>(internal::SpillKeyOffset() +
                                                  mid * sizeof(K)),
                            SEEK_SET) == 0 &&
                     std::fread(&probe, sizeof(K), 1, f) == 1)
            << "short read in spill lower-bound " << info.path.string();
        if (probe < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      std::fclose(f);
      return lo;
    }
  }

  /// First index in [0, num_pairs) whose key is > `key` -- std::upper_bound
  /// over the sorted on-disk key block. For the unsigned integral keys the
  /// shuffle uses this is LowerBoundIndex of key+1 (the all-ones key maps to
  /// the end), so it inherits the same zero-IO min/max short-circuits. The
  /// equi-depth partitioner needs both bounds to size a spilled run's
  /// key-equal group without streaming it.
  static uint64_t UpperBoundIndex(const SpillFileInfo& info, const K& key) {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    if (key == std::numeric_limits<K>::max()) return info.num_pairs;
    return LowerBoundIndex(info, static_cast<K>(key + 1));
  }

 private:
  void ReadColumn(uint64_t byte_offset, void* out, size_t elem_size,
                  uint64_t count) {
    // fseeko/off_t: spill files are sized by the data, not by LONG_MAX --
    // multi-GiB offsets are the design point of the external shuffle.
    WAVEMR_CHECK(fseeko(file_, static_cast<off_t>(byte_offset), SEEK_SET) == 0 &&
                 std::fread(out, elem_size, count, file_) == count)
        << "short read from spill file";
  }

  std::FILE* file_ = nullptr;
  uint64_t num_pairs_;
  uint64_t pos_;
  uint64_t end_;
  uint64_t block_pairs_;
  std::vector<K> keys_;
  std::vector<V> values_;
};

/// Random-access lower/upper-bound probes over one spill file's sorted key
/// block, sharing one open handle across calls. The `*Bounds` variants
/// answer from SpillFileInfo's in-memory sparse block index alone -- zero
/// IO, the true index bracketed inside one kSpillIndexBlockPairs block --
/// which is what the equi-depth rank search wants: most binary-search steps
/// are decided by the bracket, and only the final refinements pay a read.
/// The exact variants read at most one key block per call and cache it, so
/// probing the same region repeatedly (rank search convergence, the
/// lower/upper pair sizing a key group) costs a single fread.
///
/// One probe is single-threaded; concurrent reduce tasks each build their
/// own (same ownership rule as FileRunCursor). Unsigned integral keys only
/// -- the partitioning key contract.
template <typename K>
class SpillKeyProbe {
 public:
  struct IndexBounds {
    uint64_t min;  // true index is >= min
    uint64_t max;  // ... and <= max; min == max means exact already
  };

  explicit SpillKeyProbe(const SpillFileInfo& info) : info_(&info) {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
  }

  ~SpillKeyProbe() {
    if (file_ != nullptr) std::fclose(file_);
  }

  SpillKeyProbe(SpillKeyProbe&& other) noexcept
      : info_(other.info_),
        file_(other.file_),
        cache_begin_(other.cache_begin_),
        cache_end_(other.cache_end_),
        cache_(std::move(other.cache_)) {
    other.file_ = nullptr;
  }
  SpillKeyProbe(const SpillKeyProbe&) = delete;
  SpillKeyProbe& operator=(const SpillKeyProbe&) = delete;
  SpillKeyProbe& operator=(SpillKeyProbe&&) = delete;

  /// Brackets LowerBound(key) using only min/max and the sparse block index
  /// -- no IO.
  IndexBounds LowerBoundBounds(const K& key) const {
    const SpillFileInfo& in = *info_;
    if (in.num_pairs == 0 || static_cast<uint64_t>(key) <= in.min_key) {
      return IndexBounds{0, 0};
    }
    if (static_cast<uint64_t>(key) > in.max_key) {
      return IndexBounds{in.num_pairs, in.num_pairs};
    }
    if (in.block_keys.empty()) return IndexBounds{0, in.num_pairs};
    // First block whose leading key is >= key; j >= 1 because block 0 leads
    // with min_key < key. The answer sits after block j-1's leading key and
    // no later than block j's start.
    const uint64_t j = static_cast<uint64_t>(
        std::lower_bound(in.block_keys.begin(), in.block_keys.end(),
                         static_cast<uint64_t>(key)) -
        in.block_keys.begin());
    const uint64_t lo = (j - 1) * kSpillIndexBlockPairs + 1;
    const uint64_t hi = j < in.block_keys.size() ? j * kSpillIndexBlockPairs
                                                 : in.num_pairs;
    return IndexBounds{lo, hi};
  }

  /// Brackets UpperBound(key) (first index with key strictly greater).
  IndexBounds UpperBoundBounds(const K& key) const {
    if (key == std::numeric_limits<K>::max()) {
      return IndexBounds{info_->num_pairs, info_->num_pairs};
    }
    return LowerBoundBounds(static_cast<K>(key + 1));
  }

  /// Exact std::lower_bound index over the on-disk key block: at most one
  /// block read (cached) when the sparse index is present.
  uint64_t LowerBound(const K& key) {
    const IndexBounds b = LowerBoundBounds(key);
    if (b.min == b.max) return b.min;
    if (info_->block_keys.empty()) return ProbeLowerBound(key, b.min, b.max);
    LoadKeys(b.min, b.max);
    const auto it = std::lower_bound(cache_.begin(), cache_.end(), key);
    return b.min + static_cast<uint64_t>(it - cache_.begin());
  }

  /// Exact std::upper_bound index; for the unsigned keys this is
  /// LowerBound(key + 1), sharing the cached block when both land together.
  uint64_t UpperBound(const K& key) {
    if (key == std::numeric_limits<K>::max()) return info_->num_pairs;
    return LowerBound(static_cast<K>(key + 1));
  }

 private:
  /// No sparse index (legacy info): seek-probe binary search on the shared
  /// handle over index range [lo, hi).
  uint64_t ProbeLowerBound(const K& key, uint64_t lo, uint64_t hi) {
    EnsureOpen();
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      K probe;
      WAVEMR_CHECK(fseeko(file_,
                          static_cast<off_t>(internal::SpillKeyOffset() +
                                             mid * sizeof(K)),
                          SEEK_SET) == 0 &&
                   std::fread(&probe, sizeof(K), 1, file_) == 1)
          << "short read in spill probe " << info_->path.string();
      if (probe < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void LoadKeys(uint64_t begin, uint64_t end) {
    if (begin == cache_begin_ && end == cache_end_) return;
    EnsureOpen();
    cache_.resize(static_cast<size_t>(end - begin));
    WAVEMR_CHECK(fseeko(file_,
                        static_cast<off_t>(internal::SpillKeyOffset() +
                                           begin * sizeof(K)),
                        SEEK_SET) == 0 &&
                 std::fread(cache_.data(), sizeof(K), cache_.size(), file_) ==
                     cache_.size())
        << "short key-block read from " << info_->path.string();
    cache_begin_ = begin;
    cache_end_ = end;
  }

  void EnsureOpen() {
    if (file_ != nullptr) return;
    file_ = std::fopen(info_->path.string().c_str(), "rb");
    WAVEMR_CHECK(file_ != nullptr)
        << "cannot open spill file " << info_->path.string();
  }

  const SpillFileInfo* info_;
  std::FILE* file_ = nullptr;
  uint64_t cache_begin_ = 1;  // impossible range: nothing cached yet
  uint64_t cache_end_ = 0;
  std::vector<K> cache_;
};

/// Lazily created process-unique temp directory for one MrEnv's spill files
/// (the analog of a task tracker's mapred.local.dir). The directory and
/// anything left inside it are removed when the env dies; individual rounds
/// delete their own files as they finish (ShufflePlane is RAII over its
/// spills), so the recursive remove is the backstop for crashes inside
/// algorithm code, not the primary cleanup path.
class SpillDir {
 public:
  SpillDir() = default;
  ~SpillDir() { Remove(); }

  SpillDir(const SpillDir&) = delete;
  SpillDir& operator=(const SpillDir&) = delete;

  /// Unique file path inside the (created-on-first-use) directory.
  std::filesystem::path NextFilePath(const std::string& tag) {
    EnsureCreated();
    return dir_ / (tag + "-" + std::to_string(next_file_++) + ".spill");
  }

  /// True once a spill has forced the directory into existence.
  bool created() const { return created_; }
  const std::filesystem::path& path() const { return dir_; }

  /// Deletes the directory tree; safe to call repeatedly.
  void Remove() {
    if (!created_) return;
    std::error_code ec;  // best effort: never throw from a destructor path
    std::filesystem::remove_all(dir_, ec);
    created_ = false;
  }

 private:
  void EnsureCreated() {
    if (created_) return;
    static std::atomic<uint64_t> counter{0};
    const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
    dir_ = std::filesystem::temp_directory_path() /
           ("wavemr-spill-" + std::to_string(::getpid()) + "-" + std::to_string(id));
    std::filesystem::create_directories(dir_);
    created_ = true;
  }

  std::filesystem::path dir_;
  bool created_ = false;
  uint64_t next_file_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_SPILL_H_
