#ifndef WAVEMR_MAPREDUCE_STEAL_H_
#define WAVEMR_MAPREDUCE_STEAL_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "core/logging.h"

namespace wavemr {

/// Rank-space scheduler for the equi-depth partitioned reduce.
///
/// The driver slices a sorted round's merged stream into R chunks at exact
/// global ranks (ShufflePlane::CutForRank) and runs W workers against this
/// scheduler. A worker first takes an unstarted chunk and claims it in
/// contiguous rank slices; when no unstarted chunk remains, NextChunk
/// steals: it splits the chunk with the most unclaimed work at the rank
/// midpoint of its remaining tail and hands the upper half to the thief as
/// a new chunk. Victims notice the theft because their chunk's `end`
/// shrank -- each ClaimSlice re-reads it under the lock.
///
/// Every claimed slice is a disjoint contiguous rank interval, and the
/// union of all slices handed out tiles the initial chunks exactly, no
/// matter how claims and steals interleave. Stage each slice's merged
/// pairs, deliver staged slices in ascending begin-rank order, and the
/// result is the single merge's stream bit for bit -- work stealing moves
/// wall-clock, never bytes.
class RankStealScheduler {
 public:
  struct Slice {
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// `bounds`: R+1 ascending chunk boundaries (bounds[r], bounds[r+1]] --
  /// typically the equi-depth ranks r*n/R. `slice_pairs` is the claim
  /// granularity; a victim can lose at most its unclaimed tail, so smaller
  /// slices mean finer-grained stealing at the cost of more cut searches.
  /// Chunks with fewer than `min_steal_pairs` unclaimed pairs are not worth
  /// splitting and are never chosen as victims.
  RankStealScheduler(const std::vector<uint64_t>& bounds, uint64_t slice_pairs,
                     uint64_t min_steal_pairs)
      : slice_pairs_(slice_pairs == 0 ? 1 : slice_pairs),
        min_steal_pairs_(min_steal_pairs < 2 ? 2 : min_steal_pairs) {
    WAVEMR_CHECK(bounds.size() >= 2) << "scheduler needs at least one chunk";
    chunks_.reserve(bounds.size() - 1);
    for (size_t r = 0; r + 1 < bounds.size(); ++r) {
      WAVEMR_CHECK(bounds[r] <= bounds[r + 1]) << "descending chunk bounds";
      chunks_.push_back(Chunk{bounds[r], bounds[r + 1], /*started=*/false});
    }
  }

  /// Hands out the lowest unstarted non-empty chunk, or -- when none
  /// remain -- steals the upper half of the chunk with the largest
  /// unclaimed tail (ties to the lowest index). Returns false when no
  /// chunk has work left anywhere.
  bool NextChunk(size_t* chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return false;
    while (next_unstarted_ < chunks_.size()) {
      Chunk& c = chunks_[next_unstarted_];
      const size_t idx = next_unstarted_++;
      // Skip planned-empty ranges, and stolen chunks (appended past the
      // original scan position already started by their thief).
      if (c.started || c.cursor >= c.end) continue;
      c.started = true;
      *chunk = idx;
      return true;
    }
    // Steal: split the biggest straggler's unclaimed tail at its midpoint.
    size_t victim = chunks_.size();
    uint64_t victim_tail = 0;
    for (size_t i = 0; i < chunks_.size(); ++i) {
      const uint64_t tail = chunks_[i].end - chunks_[i].cursor;
      if (tail >= min_steal_pairs_ && tail > victim_tail) {
        victim = i;
        victim_tail = tail;
      }
    }
    if (victim == chunks_.size()) return false;
    Chunk& v = chunks_[victim];
    const uint64_t mid = v.cursor + (v.end - v.cursor) / 2;
    const uint64_t stolen_end = v.end;
    v.end = mid;
    chunks_.push_back(Chunk{mid, stolen_end, /*started=*/true});
    ++steals_;
    *chunk = chunks_.size() - 1;
    return true;
  }

  /// Claims the next contiguous rank slice of `chunk`: at most slice_pairs
  /// pairs, never past a concurrent thief's split point. False once the
  /// chunk has no unclaimed ranks left (go back to NextChunk).
  bool ClaimSlice(size_t chunk, Slice* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return false;
    Chunk& c = chunks_[chunk];
    if (c.cursor >= c.end) return false;
    const uint64_t take =
        c.end - c.cursor < slice_pairs_ ? c.end - c.cursor : slice_pairs_;
    out->begin = c.cursor;
    out->end = c.cursor + take;
    c.cursor += take;
    return true;
  }

  /// Error path: abandon all unclaimed work. NextChunk and ClaimSlice
  /// return false from now on, so workers drain out without touching the
  /// plane again.
  void Abort() {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }

  uint64_t steals() const {
    std::lock_guard<std::mutex> lock(mu_);
    return steals_;
  }

  size_t num_chunks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return chunks_.size();
  }

 private:
  struct Chunk {
    uint64_t cursor;  // next unclaimed rank
    uint64_t end;     // shrinks when a thief splits this chunk
    bool started;
  };

  mutable std::mutex mu_;
  std::vector<Chunk> chunks_;
  size_t next_unstarted_ = 0;
  const uint64_t slice_pairs_;
  const uint64_t min_steal_pairs_;
  uint64_t steals_ = 0;
  bool aborted_ = false;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_STEAL_H_
