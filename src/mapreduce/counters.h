#ifndef WAVEMR_MAPREDUCE_COUNTERS_H_
#define WAVEMR_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

namespace wavemr {

/// Hadoop-style named counters, aggregated across tasks and rounds.
class Counters {
 public:
  void Add(const std::string& name, uint64_t delta) { values_[name] += delta; }
  uint64_t Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  const std::map<std::string, uint64_t>& values() const { return values_; }
  void MergeFrom(const Counters& other) {
    for (const auto& [k, v] : other.values_) values_[k] += v;
  }

 private:
  std::map<std::string, uint64_t> values_;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_COUNTERS_H_
