#ifndef WAVEMR_MAPREDUCE_COUNTERS_H_
#define WAVEMR_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace wavemr {

/// Hadoop-style named counters, aggregated across tasks and rounds.
///
/// Thread-safe: concurrent map tasks increment shared counters (the engine
/// also gives each task a private Counters that it merges in split order,
/// but algorithm code is free to hit the shared instance directly). Counter
/// values are sums, so accumulation order never affects the result.
///
/// Engine-maintained counters (all deterministic for any threads /
/// reduce-tasks at a fixed shuffle buffer budget):
///   map_records_read, map_output_pairs, combine_output_pairs,
///   shuffle_pairs,
///   shuffle_spill_events  -- Accepts that crossed the buffer budget,
///   shuffle_spill_files   -- spill files actually written,
///   shuffle_spill_bytes   -- bytes written to them (framing included).
///
/// Recovery counters (absent on a healthy disk; environment-dependent, so
/// determinism checks must skip them -- they never change result bits):
///   shuffle_spill_fallbacks -- spill writes that exhausted retries and kept
///                              the run resident (ShufflePlane pinning),
///   shuffle_spill_retries   -- transient-errno retries of spill writes.
class Counters {
 public:
  Counters() = default;
  Counters(const Counters& other) : values_(other.Snapshot()) {}
  Counters(Counters&& other) noexcept : values_(other.Snapshot()) {}
  Counters& operator=(const Counters& other) {
    if (this != &other) {
      auto snapshot = other.Snapshot();
      std::lock_guard<std::mutex> lock(mu_);
      values_ = std::move(snapshot);
    }
    return *this;
  }
  Counters& operator=(Counters&& other) noexcept { return *this = other; }

  void Add(const std::string& name, uint64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] += delta;
  }
  uint64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  /// Consistent copy of all counters (the live map cannot be handed out by
  /// reference without racing concurrent Add calls).
  std::map<std::string, uint64_t> values() const { return Snapshot(); }

  void MergeFrom(const Counters& other) {
    auto snapshot = other.Snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [k, v] : snapshot) values_[k] += v;
  }

 private:
  std::map<std::string, uint64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

  mutable std::mutex mu_;
  std::map<std::string, uint64_t> values_;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_COUNTERS_H_
