#ifndef WAVEMR_MAPREDUCE_SPLIT_ACCESS_H_
#define WAVEMR_MAPREDUCE_SPLIT_ACCESS_H_

#include <algorithm>
#include <cstdint>
#include <utility>

#include "data/dataset.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/stats.h"

namespace wavemr {

/// A Mapper's cost-accounted view of its input split. The engine hands every
/// mapper one of these instead of a raw Dataset so that whatever the
/// algorithm does -- full scans (Send-V, H-WTopk round 1), random sampling
/// (the samplers' RandomRecordReader), or nothing at all (H-WTopk rounds
/// 2-3, which only read state files) -- is charged consistently.
class SplitAccess {
 public:
  /// Keys delivered per ScanBatches callback (one Dataset::ReadKeys call).
  static constexpr uint64_t kScanBatch = kKeyBatchSize;

  SplitAccess(const Dataset& dataset, uint64_t split, const CostModel& cost_model,
              TaskCost* cost)
      : dataset_(dataset), split_(split), cost_model_(cost_model), cost_(cost) {}

  uint64_t split_id() const { return split_; }
  uint64_t num_records() const { return dataset_.SplitRecords(split_); }
  uint64_t split_bytes() const { return dataset_.SplitBytes(split_); }
  const DatasetInfo& dataset_info() const { return dataset_.info(); }

  /// Sequential scan of every record in chunks: `fn(const uint64_t* keys,
  /// uint64_t n)` is invoked with batches of up to kScanBatch keys in record
  /// order. Templated on the callback so the per-batch call inlines -- this
  /// is the data plane's hot path. Charges disk for the whole split and base
  /// map CPU per record, exactly like the per-key Scan.
  template <typename BatchFn>
  void ScanBatches(BatchFn&& fn) {
    ChargeSequentialScan();
    ForEachKeyBatch(dataset_, split_, std::forward<BatchFn>(fn));
  }

  /// Per-key sequential scan: thin adapter over ScanBatches for call sites
  /// that want one key at a time. `fn(uint64_t key)` still inlines; only
  /// prefer ScanBatches when the loop body wants the whole chunk.
  template <typename KeyFn>
  void Scan(KeyFn&& fn) {
    ScanBatches([&fn](const uint64_t* keys, uint64_t n) {
      for (uint64_t i = 0; i < n; ++i) fn(keys[i]);
    });
  }

  /// Random access to one record's key. Charges CPU only; use
  /// ChargeRandomRead once with the total sample count for the disk side.
  uint64_t KeyAt(uint64_t index) {
    cost_->records_read += 1;
    cost_->cpu_ns += cost_model_.map_cpu_ns_per_record;
    return dataset_.KeyAt(split_, index);
  }

  /// Disk charge for reading `sample_count` records at sorted random
  /// offsets: one page each, capped at the split size (dense sampling
  /// degrades to a sequential scan).
  void ChargeRandomRead(uint64_t sample_count) {
    double pages = static_cast<double>(sample_count) * cost_model_.seek_page_bytes;
    cost_->disk_bytes += static_cast<uint64_t>(
        std::min(pages, static_cast<double>(split_bytes())));
  }

 private:
  void ChargeSequentialScan() {
    cost_->disk_bytes += split_bytes();
    uint64_t n = num_records();
    cost_->records_read += n;
    cost_->cpu_ns += static_cast<double>(n) * cost_model_.map_cpu_ns_per_record;
  }

  const Dataset& dataset_;
  uint64_t split_;
  const CostModel& cost_model_;
  TaskCost* cost_;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_SPLIT_ACCESS_H_
