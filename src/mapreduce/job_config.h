#ifndef WAVEMR_MAPREDUCE_JOB_CONFIG_H_
#define WAVEMR_MAPREDUCE_JOB_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/status.h"

namespace wavemr {

/// The small key-value blob Hadoop ships to every task at job start. The
/// paper uses it for broadcasting thresholds (T1/m) to Round-2/3 mappers.
/// Its size counts toward communication (it is replicated to every slave).
class JobConfig {
 public:
  void SetString(const std::string& key, std::string value);
  void SetUint(const std::string& key, uint64_t value);
  void SetDouble(const std::string& key, double value);

  StatusOr<std::string> GetString(const std::string& key) const;
  StatusOr<uint64_t> GetUint(const std::string& key) const;
  StatusOr<double> GetDouble(const std::string& key) const;
  bool Contains(const std::string& key) const { return entries_.count(key) > 0; }

  /// Serialized size used for broadcast accounting.
  uint64_t ByteSize() const;

  void Clear() { entries_.clear(); }

 private:
  std::map<std::string, std::string> entries_;
};

/// Hadoop's Distributed Cache: named blobs submitted at the master and
/// replicated to every slave before the round runs. The paper broadcasts the
/// Round-3 candidate set R through it. Blob bytes * num_slaves count toward
/// communication, once, in the round after the blob is added.
class DistributedCache {
 public:
  void Put(const std::string& name, std::string blob);
  StatusOr<std::string> Get(const std::string& name) const;
  bool Contains(const std::string& name) const { return blobs_.count(name) > 0; }

  /// Bytes added since the last TakeNewBytes() call; used by the job driver
  /// to account the broadcast exactly once.
  uint64_t TakeNewBytes();

 private:
  std::map<std::string, std::string> blobs_;
  uint64_t new_bytes_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_JOB_CONFIG_H_
