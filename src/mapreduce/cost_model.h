#ifndef WAVEMR_MAPREDUCE_COST_MODEL_H_
#define WAVEMR_MAPREDUCE_COST_MODEL_H_

#include <cstdint>

namespace wavemr {

/// Translates *measured* work (records scanned, bytes moved, CPU operations
/// charged by algorithm code) into simulated wall-clock seconds on the
/// paper's cluster. Everything the algorithms report as "communication" is
/// measured from the actual pairs they emit; only seconds are modeled.
///
/// Constants approximate a 2011-era Hadoop 0.20.2 deployment (JVM task
/// startup, hash-map-per-record map loops, a 100 Mbps shared switch), which
/// is what the paper ran on. Their absolute values matter less than their
/// ratios; see DESIGN.md ("Substitutions").
struct CostModel {
  /// Sequential local-disk scan rate (MB/s) for reading splits/state files.
  double disk_mbps = 80.0;

  /// Full network bandwidth of the switch, megabits/s (the paper's 100 Mbps).
  double network_mbps = 100.0;

  /// Fraction of the network available to this job (the paper's B knob;
  /// default 50% simulating a busy shared cluster).
  double bandwidth_fraction = 0.5;

  /// Fixed per-MapReduce-round overhead (job setup, scheduling).
  double job_overhead_s = 8.0;

  /// Per-map-task overhead (task launch; Hadoop starts a JVM per task).
  double task_overhead_s = 0.3;

  /// Base CPU cost to ingest one record in a Mapper (read + parse + one
  /// hash-map update, the common pattern in every algorithm here).
  double map_cpu_ns_per_record = 600.0;

  /// CPU cost to emit one intermediate pair (serialize + partition + buffer).
  double emit_cpu_ns_per_pair = 150.0;

  /// CPU cost for the Reducer to absorb one intermediate pair.
  double reduce_cpu_ns_per_pair = 200.0;

  /// In-memory budget for the map-output runs a sorted shuffle retains on
  /// the driver before the plane spills to disk (Hadoop's io.sort.mb analog,
  /// applied to the whole round). Crossing the budget counts a spill event
  /// and evicts the largest retained runs to temp spill files; the merge
  /// streams them back, bit-identical to the all-in-memory path. 0 disables
  /// the check (never spill).
  ///
  /// Deprecated spelling: prefer IoOptions::shuffle_buffer_bytes
  /// (BuildOptions::io / MrEnv::io), which wins whenever it is nonzero --
  /// this field remains the default the consolidated knob inherits (see
  /// MrEnv::ResolvedShuffleBufferBytes).
  uint64_t shuffle_buffer_bytes = uint64_t{256} << 20;

  /// Sequential local-disk rate (MB/s) for the external shuffle's spill
  /// writes and merge read-back. Spill time is *measured* from the bytes
  /// actually moved and reported separately (RoundStats::spill_s) -- it is
  /// NOT folded into TotalSeconds, so the headline simulated seconds stay
  /// bit-identical across buffer sizes and the paper's in-memory-shuffle
  /// numbers remain comparable.
  double disk_spill_mbps = 80.0;

  /// Bytes of sequential disk transfer charged per randomly sampled record
  /// (one page); total random-read cost is capped at the split size, since
  /// sorted-offset sampling degrades to a sequential scan when dense.
  double seek_page_bytes = 65536.0;

  /// Multiplier on all *work* time (disk, CPU, network) but not on the fixed
  /// per-round/per-task overheads. Benchmarks set it to n_paper / n_bench so
  /// that a proportionally scaled-down dataset yields paper-scale seconds:
  /// per-record and per-byte costs are linear in the data, so scaling the
  /// rates is equivalent to scaling the data back up (DESIGN.md section 1).
  double time_scale = 1.0;

  /// Seconds to move `bytes` across the network share of this job.
  double NetworkSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) * 8.0 /
           (network_mbps * 1e6 * bandwidth_fraction);
  }

  /// Seconds of sequential disk transfer for `bytes`.
  double DiskSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / (disk_mbps * 1e6);
  }

  /// Seconds of spill-disk transfer for `bytes` (external shuffle IO).
  double SpillDiskSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / (disk_spill_mbps * 1e6);
  }
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_COST_MODEL_H_
