#include "mapreduce/cluster.h"

#include <queue>

#include "core/logging.h"

namespace wavemr {

int ClusterSpec::TotalMapSlots() const {
  int total = 0;
  for (const NodeSpec& n : slaves) total += n.map_slots;
  return total;
}

ClusterSpec ClusterSpec::PaperCluster() {
  ClusterSpec spec;
  auto add = [&spec](const std::string& prefix, int count, double speed) {
    for (int i = 0; i < count; ++i) {
      spec.slaves.push_back({prefix + std::to_string(i), speed, 2});
    }
  };
  add("cfg1-xeon5120-", 9, 1.0);
  add("cfg2-e5405-", 3, 1.15);   // 4th cfg2 machine is the master
  add("cfg3-e5506-", 2, 1.35);
  add("cfg4-core2-", 1, 0.9);
  spec.reducer_slave = 12;  // first cfg3 machine
  WAVEMR_CHECK_EQ(spec.slaves.size(), 15u);
  return spec;
}

ClusterSpec ClusterSpec::Uniform(size_t num_slaves, double speed, int map_slots) {
  WAVEMR_CHECK_GE(num_slaves, 1u);
  ClusterSpec spec;
  for (size_t i = 0; i < num_slaves; ++i) {
    spec.slaves.push_back({"node-" + std::to_string(i), speed, map_slots});
  }
  spec.reducer_slave = 0;
  return spec;
}

double ScheduleMakespan(const ClusterSpec& cluster,
                        const std::vector<double>& task_seconds) {
  WAVEMR_CHECK(!cluster.slaves.empty());
  // Min-heap of (available_time, node_index), one entry per slot.
  using Slot = std::pair<double, size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> slots;
  for (size_t n = 0; n < cluster.slaves.size(); ++n) {
    for (int s = 0; s < cluster.slaves[n].map_slots; ++s) slots.push({0.0, n});
  }
  double makespan = 0.0;
  for (double work : task_seconds) {
    auto [avail, node] = slots.top();
    slots.pop();
    double finish = avail + work / cluster.slaves[node].speed;
    makespan = std::max(makespan, finish);
    slots.push({finish, node});
  }
  return makespan;
}

}  // namespace wavemr
