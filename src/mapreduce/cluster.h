#ifndef WAVEMR_MAPREDUCE_CLUSTER_H_
#define WAVEMR_MAPREDUCE_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wavemr {

/// One slave machine (TaskTracker + DataNode).
struct NodeSpec {
  std::string name;
  /// Relative CPU speed (1.0 = the paper's Xeon 5120 baseline). Task
  /// durations divide by this.
  double speed = 1.0;
  /// Concurrent map tasks this node runs.
  int map_slots = 2;
};

/// The cluster the jobs are simulated on: a set of slaves plus the index of
/// the slave that hosts the single Reducer (the paper pins the Reducer to a
/// designated machine via a customized JobTracker scheduler).
struct ClusterSpec {
  std::vector<NodeSpec> slaves;
  size_t reducer_slave = 0;

  int TotalMapSlots() const;
  double ReducerSpeed() const { return slaves[reducer_slave].speed; }
  size_t NumSlaves() const { return slaves.size(); }

  /// The paper's heterogeneous 16-machine cluster: the master (JobTracker +
  /// NameNode, config 2) is not a slave; 15 slaves remain -- 9x config 1
  /// (Xeon 5120 1.86 GHz), 3x config 2 (Xeon E5405 2 GHz), 2x config 3
  /// (Xeon E5506 2.13 GHz, one of which hosts the Reducer), 1x config 4
  /// (Core2 6300 1.86 GHz).
  static ClusterSpec PaperCluster();

  /// A homogeneous cluster, for tests and ablations.
  static ClusterSpec Uniform(size_t num_slaves, double speed = 1.0, int map_slots = 2);
};

/// Greedy slot scheduler: tasks (given as durations *at reference speed
/// 1.0*) are assigned in order to the earliest-available map slot; a task on
/// node d takes duration / d.speed. Returns the makespan in seconds.
/// This models Hadoop's wave-by-wave map execution, including the straggler
/// effect of slow nodes that the paper's heterogeneous cluster exhibits.
double ScheduleMakespan(const ClusterSpec& cluster,
                        const std::vector<double>& task_seconds);

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_CLUSTER_H_
