#ifndef WAVEMR_MAPREDUCE_JOB_H_
#define WAVEMR_MAPREDUCE_JOB_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/flat_hash.h"
#include "core/io.h"
#include "core/logging.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "data/dataset.h"
#include "mapreduce/cluster.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/counters.h"
#include "mapreduce/job_config.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill.h"
#include "mapreduce/split_access.h"
#include "mapreduce/state_store.h"
#include "mapreduce/stats.h"
#include "mapreduce/steal.h"

namespace wavemr {

/// Shared runtime of one algorithm execution: the simulated cluster, the
/// cost model, the two master->worker broadcast channels (JobConfig and
/// DistributedCache), per-task persistent state, counters, and the
/// accumulated per-round statistics. Multi-round algorithms (H-WTopk) reuse
/// one MrEnv across their rounds, exactly like the paper reuses the
/// JobTracker + state files across its three MapReduce jobs.
struct MrEnv {
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  CostModel cost_model;
  JobConfig config;
  DistributedCache cache;
  StateStore state;
  JobStats stats;

  /// Map tasks per round to execute concurrently: 1 = serial (the default),
  /// 0 = ThreadPool::DefaultThreadCount(), N > 1 = a pool of N workers. Any
  /// value produces bit-identical results; only wall-clock changes.
  int threads = 1;

  /// Equi-depth reduce partitions for sorted rounds: 0 = match the round's
  /// map thread count, N >= 1 = exactly N partitions. Any value produces
  /// bit-identical results (partitions are disjoint global-rank ranges
  /// delivered in rank order, exactly the full merge's stream); only
  /// wall-clock changes.
  int reduce_tasks = 0;

  /// Temp directory for external shuffle spill files, lazily created on the
  /// first real spill and removed (recursively) when the env dies. Rounds
  /// delete their own files as they complete -- including on exceptions --
  /// so the env-level remove is the crash backstop, not the cleanup path.
  SpillDir spill_dir;

  /// Consolidated spill I/O knobs (backend, queue/prefetch depth, retry,
  /// buffer override). Every round's ShufflePlane and file cursor runs on
  /// the backend these options name; any choice is bit-identical, only
  /// wall-clock changes.
  IoOptions io;

  /// Retained-run budget for sorted shuffles: IoOptions wins when set,
  /// otherwise the deprecated CostModel::shuffle_buffer_bytes spelling.
  uint64_t ResolvedShuffleBufferBytes() const {
    return io.shuffle_buffer_bytes != 0 ? io.shuffle_buffer_bytes
                                        : cost_model.shuffle_buffer_bytes;
  }

  /// Lazily created I/O engine named by `io`, shared by all rounds (the
  /// async backend's workers persist across H-WTopk's three rounds, like
  /// the map pool).
  IoBackend* EnsureIoBackend() {
    if (io_backend_ == nullptr) io_backend_ = MakeIoBackend(io);
    return io_backend_.get();
  }

  /// Lazily created worker pool, reused across rounds (H-WTopk runs three
  /// rounds on one MrEnv; respawning threads per round would dominate small
  /// jobs).
  ThreadPool* EnsurePool(int num_threads) {
    if (pool_ == nullptr || pool_->num_threads() != num_threads) {
      pool_ = std::make_unique<ThreadPool>(num_threads);
    }
    return pool_.get();
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<IoBackend> io_backend_;
};

namespace internal {

/// Emit sink that appends pairs verbatim to the task's columnar run, in
/// emit order (no combiner).
template <typename K2, typename V2>
class BufferSink {
 public:
  explicit BufferSink(ShuffleRun<K2, V2>* out) : out_(out) {}
  void Emit(const K2& key, const V2& value) { out_->Append(key, value); }

 private:
  ShuffleRun<K2, V2>* out_;
};

/// Emit sink that merges values with equal keys inside the task before the
/// shuffle (Hadoop's Combiner), accumulating into a flat open-addressing
/// table; the engine flushes it at task close. The combiner function is only
/// reached on duplicate keys -- first-time keys are a single probe.
template <typename K2, typename V2>
class CombineSink {
 public:
  explicit CombineSink(const std::function<V2(const V2&, const V2&)>* combiner)
      : combiner_(combiner) {}

  void Emit(const K2& key, const V2& value) {
    auto [slot, inserted] = buffer_.FindOrEmplace(key, value);
    if (!inserted) *slot = (*combiner_)(*slot, value);
  }

  const FlatHashCounter<K2, V2>& buffer() const { return buffer_; }

 private:
  FlatHashCounter<K2, V2> buffer_;
  const std::function<V2(const V2&, const V2&)>* combiner_;
};

/// Everything one map task produces, buffered on its worker thread and
/// merged by the driver in split-index order. Buffering per task (instead of
/// absorbing into the reducer from the mapper thread) is what makes the
/// round's outcome independent of task completion order. Under a sorted
/// shuffle the run is already key-sorted by the worker thread, so the
/// driver's only serial work is the k-way merge.
template <typename K2, typename V2>
struct MapTaskOutput {
  TaskCost cost;
  Counters counters;             // task-private counter increments
  ShuffleRun<K2, V2> run;        // post-combine, columnar, in emit order
  uint64_t combine_output_pairs = 0;
  bool combined = false;
};

/// Outcome of one sorted-round delivery: the partition count actually used
/// plus the planned per-range load and the steal count for RoundStats.
struct SortedMergeResult {
  int reduce_tasks_used = 1;
  uint64_t range_max_pairs = 0;  // planned pairs in the largest range
  uint64_t range_min_pairs = 0;  // planned pairs in the smallest range
  uint64_t steals = 0;           // schedule-dependent; wall-clock only
};

/// Sorted-round delivery: merges the plane's retained + spilled runs into
/// `absorb`, split into `reduce_tasks` equi-depth partitions at exact
/// global ranks r*n/R (ShufflePlane::CutForRank binary-searches every
/// resident run in memory and every spilled run on disk), so each range
/// holds n/R pairs within one regardless of key skew -- equal-width key
/// spans left Zipf workloads with nearly all pairs in the low ranges, and
/// degenerated to a single range when every key was equal. Parallel
/// delivery claims ranges in rank slices through a RankStealScheduler:
/// finished workers steal the upper half of a straggler's unclaimed tail
/// and merge it through the same loser tree. Workers stage each slice's
/// pairs in columnar buffers and the driver absorbs staged slices in
/// ascending rank order -- exactly the stream a single full merge
/// delivers, so results are bit-identical for every (reduce_tasks,
/// threads, buffer size, steal schedule) combination.
///
/// `steal_slice_pairs` overrides the claim granularity (0 = auto); tests
/// use tiny slices to force many-slice, steal-heavy schedules.
template <typename K, typename V, typename Absorb>
SortedMergeResult DeliverSortedMerge(ShufflePlane<K, V>& plane, MrEnv* env,
                                     int reduce_tasks, int pool_threads,
                                     Absorb&& absorb,
                                     uint64_t steal_slice_pairs = 0) {
  SortedMergeResult result;
  if constexpr (std::is_integral_v<K> && std::is_unsigned_v<K>) {
    const uint64_t n = plane.pairs();
    if (reduce_tasks > 1 && n > 0) {
      const int R = reduce_tasks;
      // Equi-depth boundaries at exact global ranks. When n < R the excess
      // ranges are planned empty (duplicate bounds) and skipped below.
      std::vector<uint64_t> bounds(static_cast<size_t>(R) + 1);
      for (int r = 0; r <= R; ++r) {
        bounds[static_cast<size_t>(r)] = static_cast<uint64_t>(
            (static_cast<unsigned __int128>(n) * static_cast<unsigned>(r)) /
            static_cast<unsigned>(R));
      }
      result.reduce_tasks_used = R;
      result.range_max_pairs = 0;
      result.range_min_pairs = n;
      for (int r = 0; r < R; ++r) {
        const uint64_t c = bounds[r + 1] - bounds[r];
        result.range_max_pairs = std::max(result.range_max_pairs, c);
        result.range_min_pairs = std::min(result.range_min_pairs, c);
      }
      if (pool_threads > 1) {
        struct Staged {
          std::vector<K> keys;
          std::vector<V> values;
        };
        // Claim granularity: coarse enough that the per-slice cut searches
        // are noise, fine enough that a straggler's tail is worth stealing.
        const uint64_t slice =
            steal_slice_pairs > 0
                ? steal_slice_pairs
                : std::max<uint64_t>(
                      4096, n / (static_cast<uint64_t>(R) * 8));
        RankStealScheduler sched(bounds, slice, 2 * slice);
        ThreadPool* pool = env->EnsurePool(pool_threads);
        std::mutex mu;
        std::condition_variable cv;
        std::map<uint64_t, Staged> staged;  // begin rank -> merged slice
        uint64_t staged_pairs = 0;          // payload pairs parked in `staged`
        uint64_t frontier = 0;              // next rank the driver absorbs
        bool stop = false;
        std::exception_ptr worker_error;
        // Bounded staging, like the old sliding window: workers park at
        // most ~2 slices per thread ahead of the driver, so peak staging
        // memory stays a small slice-sized fraction of the merged payload
        // even when one worker races far ahead of the absorb frontier.
        const uint64_t staged_cap =
            slice * (2 * static_cast<uint64_t>(pool_threads) + 2);
        auto worker = [&] {
          try {
            size_t chunk = 0;
            while (sched.NextChunk(&chunk)) {
              MergeCut<K> lo_cut;
              uint64_t lo_rank = 0;
              bool have_lo = false;
              RankStealScheduler::Slice sl;
              while (sched.ClaimSlice(chunk, &sl)) {
                // Consecutive slices of one chunk share a boundary: reuse
                // the previous upper cut instead of re-searching.
                if (!have_lo || lo_rank != sl.begin) {
                  lo_cut = plane.CutForRank(sl.begin);
                }
                const bool has_hi = sl.end < n;
                MergeCut<K> hi_cut;
                if (has_hi) hi_cut = plane.CutForRank(sl.end);
                Staged s;
                s.keys.reserve(sl.end - sl.begin);
                s.values.reserve(sl.end - sl.begin);
                plane.MergeCutRange(lo_cut, has_hi, hi_cut,
                                    [&s](const K& k, const V& v) {
                                      s.keys.push_back(k);
                                      s.values.push_back(v);
                                    });
                {
                  std::unique_lock<std::mutex> lock(mu);
                  // The slice the driver is waiting for must never block
                  // on the cap, or the pipeline deadlocks.
                  cv.wait(lock, [&] {
                    return stop || sl.begin == frontier ||
                           staged_pairs < staged_cap;
                  });
                  if (stop) return;
                  staged_pairs += s.keys.size();
                  staged.emplace(sl.begin, std::move(s));
                }
                cv.notify_all();
                lo_cut = hi_cut;
                lo_rank = sl.end;
                have_lo = has_hi;
              }
            }
          } catch (...) {
            sched.Abort();
            {
              std::lock_guard<std::mutex> lock(mu);
              if (!worker_error) worker_error = std::current_exception();
              stop = true;
            }
            cv.notify_all();
          }
        };
        const int workers = pool_threads < R ? pool_threads : R;
        std::vector<std::future<void>> futs;
        futs.reserve(static_cast<size_t>(workers));
        for (int w = 0; w < workers; ++w) futs.push_back(pool->Submit(worker));
        try {
          std::unique_lock<std::mutex> lock(mu);
          while (frontier < n) {
            cv.wait(lock,
                    [&] { return stop || staged.count(frontier) > 0; });
            if (stop) break;
            auto it = staged.find(frontier);
            Staged s = std::move(it->second);
            staged.erase(it);
            staged_pairs -= s.keys.size();
            const uint64_t next = frontier + s.keys.size();
            lock.unlock();
            cv.notify_all();  // a cap-blocked worker can park a slice now
            for (size_t i = 0; i < s.keys.size(); ++i) {
              absorb(s.keys[i], s.values[i]);
            }
            lock.lock();
            frontier = next;
            cv.notify_all();  // the worker holding rank `next` may be waiting
          }
        } catch (...) {
          // The reducer threw on the driver. Running workers reference this
          // frame's plane and locals; stop them and wait them out before
          // the frame unwinds.
          sched.Abort();
          {
            std::lock_guard<std::mutex> lock(mu);
            stop = true;
          }
          cv.notify_all();
          for (auto& f : futs) {
            if (f.valid()) f.wait();
          }
          throw;
        }
        for (auto& f : futs) f.get();
        if (worker_error) std::rethrow_exception(worker_error);
        result.steals = sched.steals();
      } else {
        // Serial: deliver each range straight into the reducer -- no
        // staging memory, no scheduler, same stream. Adjacent ranges share
        // a boundary cut, so each boundary is searched once.
        MergeCut<K> lo_cut;
        uint64_t lo_rank = 0;
        bool have_lo = false;
        for (int r = 0; r < R; ++r) {
          const uint64_t b = bounds[r];
          const uint64_t e = bounds[r + 1];
          if (b == e) continue;  // planned-empty range (n < R)
          if (!have_lo || lo_rank != b) lo_cut = plane.CutForRank(b);
          const bool has_hi = e < n;
          MergeCut<K> hi_cut;
          if (has_hi) hi_cut = plane.CutForRank(e);
          plane.MergeCutRange(lo_cut, has_hi, hi_cut, absorb);
          lo_cut = hi_cut;
          lo_rank = e;
          have_lo = has_hi;
        }
      }
      return result;
    }
  }
  (void)env;
  (void)pool_threads;
  (void)steal_slice_pairs;
  plane.Merge(absorb);
  result.range_max_pairs = plane.pairs();
  result.range_min_pairs = plane.pairs();
  return result;
}

}  // namespace internal

/// Context handed to a Mapper: its input split, the broadcast channels,
/// persistent state, counters, and the Emit sink. All interactions are cost
/// accounted. One MapContext is confined to its map task's thread.
///
/// Sink is a compile-time parameter (BufferSink or CombineSink), so Emit is
/// a fully inlined store/probe -- no std::function hop per pair. Emitted
/// pair counts accumulate locally and reach the task Counters in one Add at
/// close (the engine calls FlushEmitCount), not one locked lookup per pair.
template <typename K2, typename V2, typename Sink>
class MapContext {
 public:
  MapContext(SplitAccess* input, MrEnv* env, TaskCost* cost, Counters* counters,
             Sink* sink)
      : input_(input), env_(env), cost_(cost), counters_(counters), sink_(sink),
        emit_cpu_ns_(env->cost_model.emit_cpu_ns_per_pair) {}

  /// Emits an intermediate pair (charged per pair; wire bytes are accounted
  /// after the optional combine stage).
  void Emit(const K2& key, const V2& value) {
    cost_->cpu_ns += emit_cpu_ns_;
    ++emitted_pairs_;
    sink_->Emit(key, value);
  }

  /// Charges algorithm-specific CPU work (e.g. a local wavelet transform).
  void ChargeCpuNs(double ns) { cost_->cpu_ns += ns; }

  SplitAccess& input() { return *input_; }
  uint64_t split_id() const { return input_->split_id(); }
  const JobConfig& config() const { return env_->config; }
  const DistributedCache& cache() const { return env_->cache; }
  Counters& counters() { return *counters_; }
  const CostModel& cost_model() const { return env_->cost_model; }

  /// Persistent state for this split across rounds (the paper's per-split
  /// HDFS state file written from Close). Charged as local disk IO.
  void SaveState(const std::string& blob) {
    cost_->disk_bytes += blob.size();
    WAVEMR_CHECK(env_->state.Put(StateKey(), blob).ok());
  }
  StatusOr<std::string> LoadState() {
    auto blob = env_->state.Get(StateKey());
    if (blob.ok()) cost_->disk_bytes += blob->size();
    return blob;
  }
  bool HasState() const { return env_->state.Contains(StateKey()); }

  /// Folds the locally counted emits into the task Counters; called once by
  /// the engine after Mapper::Run returns.
  void FlushEmitCount() {
    if (emitted_pairs_ > 0) counters_->Add("map_output_pairs", emitted_pairs_);
    emitted_pairs_ = 0;
  }

 private:
  std::string StateKey() const {
    return "split-" + std::to_string(input_->split_id());
  }

  SplitAccess* input_;
  MrEnv* env_;
  TaskCost* cost_;
  Counters* counters_;
  Sink* sink_;
  double emit_cpu_ns_;
  uint64_t emitted_pairs_ = 0;
};

/// A map task. One instance is created per split per round; Run() owns the
/// whole task lifecycle (the paper's Map-per-record plus Close pattern).
/// Instances run concurrently under --threads > 1, so a Mapper must not
/// mutate state shared across splits (the MapContext channels are safe).
///
/// The engine instantiates one of two statically-typed contexts per task --
/// buffered emit or in-task combine -- so Run is overloaded per sink type.
/// Derive from MapperBase and implement a single `template <typename Ctx>
/// void RunImpl(Ctx&)`; the base forwards both overloads.
template <typename K2, typename V2>
class Mapper {
 public:
  using BufferContext = MapContext<K2, V2, internal::BufferSink<K2, V2>>;
  using CombineContext = MapContext<K2, V2, internal::CombineSink<K2, V2>>;

  virtual ~Mapper() = default;
  virtual void Run(BufferContext& ctx) = 0;
  virtual void Run(CombineContext& ctx) = 0;
};

/// CRTP adapter: routes both statically-typed Run overloads into the derived
/// class's single RunImpl template, so mapper code is written once and the
/// emit path still inlines for either sink.
template <typename Derived, typename K2, typename V2>
class MapperBase : public Mapper<K2, V2> {
 public:
  void Run(typename Mapper<K2, V2>::BufferContext& ctx) override {
    static_cast<Derived*>(this)->RunImpl(ctx);
  }
  void Run(typename Mapper<K2, V2>::CombineContext& ctx) override {
    static_cast<Derived*>(this)->RunImpl(ctx);
  }
};

/// Context handed to the (single) Reducer.
template <typename K2, typename V2>
class ReduceContext {
 public:
  ReduceContext(MrEnv* env, TaskCost* cost) : env_(env), cost_(cost) {}

  void ChargeCpuNs(double ns) { cost_->cpu_ns += ns; }
  const JobConfig& config() const { return env_->config; }
  Counters& counters() { return env_->stats.counters; }
  const CostModel& cost_model() const { return env_->cost_model; }

  /// The reducer may publish a blob for the *next* round's mappers (the
  /// paper writes the candidate set R to HDFS; the master moves it into the
  /// Distributed Cache). Broadcast bytes are charged when that round runs.
  void PublishToCache(const std::string& name, std::string blob) {
    env_->cache.Put(name, std::move(blob));
  }

  /// Coordinator state persisted on the reducer's machine across rounds.
  void SaveState(const std::string& blob) {
    cost_->disk_bytes += blob.size();
    WAVEMR_CHECK(env_->state.Put("coordinator", blob).ok());
  }
  StatusOr<std::string> LoadState() {
    auto blob = env_->state.Get("coordinator");
    if (blob.ok()) cost_->disk_bytes += blob->size();
    return blob;
  }

 private:
  MrEnv* env_;
  TaskCost* cost_;
};

/// The single reduce task, in streaming form: Start, one Absorb per
/// intermediate pair, Finish. With JobPlan::sorted_shuffle the engine
/// delivers pairs grouped and sorted by key (Hadoop's semantics); otherwise
/// pairs stream in split-index order. Start runs exactly once, before any
/// map task, in both modes -- it may read prior-round state but never this
/// round's map output. The reducer always runs on the driver thread, so it
/// needs no synchronization of its own.
template <typename K2, typename V2>
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Start(ReduceContext<K2, V2>& ctx) { (void)ctx; }
  virtual void Absorb(const K2& key, const V2& value, ReduceContext<K2, V2>& ctx) = 0;
  virtual void Finish(ReduceContext<K2, V2>& ctx) = 0;
};

/// Declarative description of one MapReduce round.
template <typename K2, typename V2>
struct JobPlan {
  std::string name = "round";

  /// Creates the map task for a split. Required. Called on the driver
  /// thread; the returned Mapper runs on a worker thread.
  std::function<std::unique_ptr<Mapper<K2, V2>>(uint64_t split)> mapper_factory;

  /// The single reducer (the paper's coordinator). Owned by the caller so
  /// the algorithm can read results out of it after the round. Required.
  Reducer<K2, V2>* reducer = nullptr;

  /// Wire size of one whole run of shuffled pairs, called once per map
  /// task's post-combine output with the packed key/value columns; defaults
  /// to n * (sizeof(K2) + sizeof(V2)). The paper's accounting (4-byte keys,
  /// 4-byte local counts, 8-byte coefficients) plugs in here as a bulk
  /// formula -- or a loop over the columns when per-pair sizes vary.
  std::function<uint64_t(const K2* keys, const V2* values, size_t n)> wire_bytes;

  /// Optional combine function: merges values with equal keys inside each
  /// map task before the shuffle (Hadoop's Combiner). Shuffle bytes are
  /// counted after combining.
  std::function<V2(const V2&, const V2&)> combiner;

  /// Deliver pairs to the reducer grouped and sorted by key (Hadoop's
  /// reducer contract): each map task sorts its own run on its worker
  /// thread and the driver merges the runs with a loser tree.
  bool sorted_shuffle = false;
};

/// Executes one round over all splits of `dataset` and appends a RoundStats
/// to env->stats. Mapper/reducer code runs for real; seconds are simulated
/// per the CostModel.
///
/// Parallel execution: with env->threads != 1 map tasks run on a ThreadPool
/// (env->threads == 0 means hardware concurrency). Each task emits into a
/// private columnar ShuffleRun (sorted on the worker under sorted_shuffle);
/// the driver hands runs to the ShufflePlane in split-index order, so
/// shuffle accounting, counters, and reducer results are bit-identical for
/// every thread count. Sorted rounds additionally partition the merge into
/// env->reduce_tasks equi-depth global-rank ranges (0 = one per map thread)
/// executed on the same pool with work stealing, and spill retained runs past
/// CostModel::shuffle_buffer_bytes to env->spill_dir -- neither changes any
/// result bit (see internal::DeliverSortedMerge and ShufflePlane).
template <typename K2, typename V2>
RoundStats RunRound(const JobPlan<K2, V2>& plan, const Dataset& dataset, MrEnv* env) {
  WAVEMR_CHECK(plan.mapper_factory != nullptr);
  WAVEMR_CHECK(plan.reducer != nullptr);

  const uint64_t num_splits = dataset.info().num_splits;

  RoundStats round;
  round.name = plan.name;
  round.overhead_s = env->cost_model.job_overhead_s;
  round.map_tasks = num_splits;

  // Master -> slaves broadcast. Only *data-dependent* broadcast counts as
  // communication: distributed-cache blobs, replicated to every slave, are
  // charged once, in the first round after they are added. The Job
  // Configuration ships with every Hadoop job regardless of algorithm (the
  // paper does not count it either); its transfer time is part of the
  // per-round job overhead.
  uint64_t slaves = env->cluster.NumSlaves();
  round.broadcast_bytes = env->cache.TakeNewBytes() * slaves;

  typename ShufflePlane<K2, V2>::WireFn wire = plan.wire_bytes;
  if (!wire) {
    wire = [](const K2*, const V2*, size_t n) -> uint64_t {
      return n * (sizeof(K2) + sizeof(V2));
    };
  }

  TaskCost reduce_cost;
  ReduceContext<K2, V2> reduce_ctx(env, &reduce_cost);

  // The plane owns run collection, wire accounting, spilling, and delivery:
  // streaming planes absorb each run the moment the driver merges it (and
  // free it); sorted planes retain the worker-sorted runs -- evicting the
  // largest ones to env->spill_dir when they outgrow the buffer budget --
  // for the loser-tree merge.
  ShufflePlane<K2, V2> plane(wire, plan.sorted_shuffle,
                             SpillPolicy{env->ResolvedShuffleBufferBytes()},
                             &env->spill_dir, env->EnsureIoBackend());
  auto absorb = [&](const K2& k, const V2& v) {
    plan.reducer->Absorb(k, v, reduce_ctx);
  };

  // The reducer starts exactly once, before any map task runs, in both
  // delivery modes: Start may only depend on prior-round state, never on
  // this round's map output, so giving it one fixed lifecycle point keeps
  // reducers that allocate or load state in Start single-shot.
  plan.reducer->Start(reduce_ctx);

  using TaskOutput = internal::MapTaskOutput<K2, V2>;

  // Runs one map task end to end; called on a worker thread (or inline when
  // serial). Touches only the task's own output, the immutable dataset, and
  // the thread-safe MrEnv channels (config/cache/state). Under a sorted
  // shuffle the run sort happens here too -- on the already-parallel map
  // side, off the serial driver path.
  auto run_map_task = [&plan, &dataset, env](uint64_t split) {
    TaskOutput out;
    SplitAccess access(dataset, split, env->cost_model, &out.cost);
    std::unique_ptr<Mapper<K2, V2>> mapper = plan.mapper_factory(split);
    if (plan.combiner) {
      // Combine inside the task: aggregate emissions by key, flush at Close.
      internal::CombineSink<K2, V2> sink(&plan.combiner);
      typename Mapper<K2, V2>::CombineContext ctx(&access, env, &out.cost,
                                                  &out.counters, &sink);
      mapper->Run(ctx);
      ctx.FlushEmitCount();
      out.combined = true;
      out.combine_output_pairs = sink.buffer().size();
      out.run.Reserve(sink.buffer().size());
      for (const auto& [k, v] : sink.buffer()) out.run.Append(k, v);
    } else {
      internal::BufferSink<K2, V2> sink(&out.run);
      typename Mapper<K2, V2>::BufferContext ctx(&access, env, &out.cost,
                                                 &out.counters, &sink);
      mapper->Run(ctx);
      ctx.FlushEmitCount();
    }
    if (plan.sorted_shuffle) out.run.SortByKey();
    return out;
  };

  const int requested = env->threads;
  const int pool_threads = requested == 0 ? ThreadPool::DefaultThreadCount() : requested;
  const bool parallel = pool_threads > 1 && num_splits > 1;
  round.threads_used = parallel ? pool_threads : 1;
  // Recorded like Hadoop's mapreduce.job.* keys so tasks and post-run
  // inspection can see the round's parallelism. Written before any task
  // launches; the config is immutable while mappers run.
  env->config.SetUint("wavemr.threads", static_cast<uint64_t>(round.threads_used));

  const auto map_start = std::chrono::steady_clock::now();

  std::vector<std::future<TaskOutput>> pending;
  if (parallel) {
    ThreadPool* pool = env->EnsurePool(pool_threads);
    pending.reserve(num_splits);
    for (uint64_t split = 0; split < num_splits; ++split) {
      pending.push_back(pool->Submit([&run_map_task, split] {
        return run_map_task(split);
      }));
    }
  }

  // Deterministic merge: absorb each task's buffered output in split-index
  // order (mapper exceptions resurface here, also in split order).
  std::vector<double> task_seconds;
  task_seconds.reserve(num_splits);
  for (uint64_t split = 0; split < num_splits; ++split) {
    TaskOutput out;
    if (parallel) {
      try {
        out = pending[split].get();
      } catch (...) {
        // Queued/running tasks reference this frame's run_map_task; they
        // must all finish before the frame unwinds.
        for (uint64_t rest = split + 1; rest < num_splits; ++rest) {
          pending[rest].wait();
        }
        throw;
      }
    } else {
      out = run_map_task(split);
    }
    env->stats.counters.MergeFrom(out.counters);
    if (out.combined) {
      env->stats.counters.Add("combine_output_pairs", out.combine_output_pairs);
    }
    reduce_cost.cpu_ns += static_cast<double>(out.run.size()) *
                          env->cost_model.reduce_cpu_ns_per_pair;
    plane.Accept(std::move(out.run), absorb);

    task_seconds.push_back(env->cost_model.task_overhead_s +
                           env->cost_model.time_scale *
                               (env->cost_model.DiskSeconds(out.cost.disk_bytes) +
                                out.cost.cpu_ns * 1e-9));
    env->stats.counters.Add("map_records_read", out.cost.records_read);
  }

  round.map_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                map_start)
          .count();

  if (plan.sorted_shuffle) {
    const int reduce_tasks =
        env->reduce_tasks > 0 ? env->reduce_tasks : round.threads_used;
    const auto reduce_start = std::chrono::steady_clock::now();
    const internal::SortedMergeResult merged = internal::DeliverSortedMerge(
        plane, env, reduce_tasks, pool_threads, absorb);
    round.reduce_tasks_used = merged.reduce_tasks_used;
    round.reduce_range_max_pairs = merged.range_max_pairs;
    round.reduce_range_min_pairs = merged.range_min_pairs;
    round.reduce_steals = merged.steals;
    round.reduce_wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - reduce_start)
                               .count();
    // Like "wavemr.threads": record what actually ran (partitioning can
    // fall back to a single merge, e.g. on an empty shuffle).
    env->config.SetUint("wavemr.reduce_tasks",
                        static_cast<uint64_t>(round.reduce_tasks_used));
  }
  plan.reducer->Finish(reduce_ctx);

  round.shuffle_pairs = plane.pairs();
  round.shuffle_bytes = plane.wire_bytes();
  round.spill_files = plane.spill_files();
  round.spill_bytes = plane.spill_bytes();
  // Every spilled payload byte is read back exactly once by the merge,
  // independent of partition count or cursor block size -- charge the
  // deterministic quantity, not the block-rounded fread total.
  round.spill_read_bytes = plane.spill_payload_bytes();
  round.spill_s = env->cost_model.time_scale *
                  env->cost_model.SpillDiskSeconds(round.spill_bytes +
                                                   round.spill_read_bytes);
  if (plane.spill_events() > 0) {
    env->stats.counters.Add("shuffle_spill_events", plane.spill_events());
  }
  if (plane.spill_files() > 0) {
    env->stats.counters.Add("shuffle_spill_files", plane.spill_files());
    env->stats.counters.Add("shuffle_spill_bytes", plane.spill_bytes());
  }
  round.spill_fallbacks = plane.spill_fallbacks();
  round.spill_retries = plane.spill_retries();
  if (plane.spill_fallbacks() > 0) {
    env->stats.counters.Add("shuffle_spill_fallbacks", plane.spill_fallbacks());
  }
  if (plane.spill_retries() > 0) {
    env->stats.counters.Add("shuffle_spill_retries", plane.spill_retries());
  }

  round.map_makespan_s = ScheduleMakespan(env->cluster, task_seconds);
  round.shuffle_s =
      env->cost_model.time_scale *
      env->cost_model.NetworkSeconds(round.shuffle_bytes + round.broadcast_bytes);
  round.reduce_s = env->cost_model.time_scale *
                   (env->cost_model.DiskSeconds(reduce_cost.disk_bytes) +
                    reduce_cost.cpu_ns * 1e-9) /
                   env->cluster.ReducerSpeed();

  env->stats.counters.Add("shuffle_pairs", round.shuffle_pairs);
  env->stats.AddRound(round);
  return round;
}

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_JOB_H_
