#include "mapreduce/job_config.h"

#include <charconv>
#include <cstdio>

namespace wavemr {

void JobConfig::SetString(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
}

void JobConfig::SetUint(const std::string& key, uint64_t value) {
  entries_[key] = std::to_string(value);
}

void JobConfig::SetDouble(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  entries_[key] = buf;
}

StatusOr<std::string> JobConfig::GetString(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("config key: " + key);
  return it->second;
}

StatusOr<uint64_t> JobConfig::GetUint(const std::string& key) const {
  auto s = GetString(key);
  if (!s.ok()) return s.status();
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s->data(), s->data() + s->size(), v);
  if (ec != std::errc() || ptr != s->data() + s->size()) {
    return Status::InvalidArgument("config key not a uint: " + key);
  }
  return v;
}

StatusOr<double> JobConfig::GetDouble(const std::string& key) const {
  auto s = GetString(key);
  if (!s.ok()) return s.status();
  char* end = nullptr;
  double v = std::strtod(s->c_str(), &end);
  if (end != s->c_str() + s->size()) {
    return Status::InvalidArgument("config key not a double: " + key);
  }
  return v;
}

uint64_t JobConfig::ByteSize() const {
  uint64_t total = 0;
  for (const auto& [k, v] : entries_) total += k.size() + v.size() + 8;
  return total;
}

void DistributedCache::Put(const std::string& name, std::string blob) {
  auto it = blobs_.find(name);
  if (it != blobs_.end()) {
    new_bytes_ += blob.size();
    it->second = std::move(blob);
  } else {
    new_bytes_ += blob.size();
    blobs_.emplace(name, std::move(blob));
  }
}

StatusOr<std::string> DistributedCache::Get(const std::string& name) const {
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return Status::NotFound("cache blob: " + name);
  return it->second;
}

uint64_t DistributedCache::TakeNewBytes() {
  uint64_t b = new_bytes_;
  new_bytes_ = 0;
  return b;
}

}  // namespace wavemr
