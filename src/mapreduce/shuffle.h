#ifndef WAVEMR_MAPREDUCE_SHUFFLE_H_
#define WAVEMR_MAPREDUCE_SHUFFLE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/io.h"
#include "core/logging.h"
#include "mapreduce/spill.h"

namespace wavemr {

/// Columnar shuffle data plane.
///
/// The paper's algorithms are shuffle-bound by design (Send-V ships one
/// (key, count) pair per distinct key per split; H-WTopk's three rounds
/// hinge on shuffle volume), so the engine's intermediate representation is
/// laid out for the merge loop, not for convenience: each map task emits
/// into a ShuffleRun of packed parallel keys[] / values[] arrays, sorts its
/// own run on the worker thread when the round wants Hadoop's sorted
/// delivery, and the driver merges the per-task runs with a loser tree --
/// the structure Hadoop's framework uses over map-output spill files. When
/// the retained runs outgrow the SpillPolicy budget the plane writes whole
/// runs to temp spill files (mapreduce/spill.h) and the same loser tree
/// merges file-backed and resident runs, so a shuffle larger than RAM
/// produces bit-identical output to the all-in-memory path.

// ---------------------------------------------------------------------------
// ShuffleRun: one map task's packed intermediate output.
// ---------------------------------------------------------------------------

/// Packed columnar run of intermediate (key, value) pairs, in emit order.
/// keys[i] and values[i] form pair i; the arrays always have equal length.
template <typename K, typename V>
struct ShuffleRun {
  std::vector<K> keys;
  std::vector<V> values;
  /// Set by SortByKey; a sorted plane only merges sorted runs.
  bool sorted = false;

  size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  void Reserve(size_t n) {
    keys.reserve(n);
    values.reserve(n);
  }

  void Append(const K& key, const V& value) {
    keys.push_back(key);
    values.push_back(value);
    sorted = false;  // appending past a sort invalidates it
  }

  /// Payload bytes this run holds in memory (what a spill would write).
  uint64_t PayloadBytes() const {
    return static_cast<uint64_t>(size()) * (sizeof(K) + sizeof(V));
  }

  /// Stable sort by key: the resulting permutation is exactly what
  /// std::stable_sort over the equivalent pair vector would produce, so a
  /// tie-broken merge of sorted runs reproduces the old engine's global
  /// stable_sort bit for bit. Unsigned integer keys (every shuffle key in
  /// this codebase) take an LSD radix path -- O(n) passes over contiguous
  /// columns instead of a comparison sort over strided pairs.
  void SortByKey() {
    if (sorted) return;
    if (keys.size() > 1) {
      if constexpr (std::is_integral_v<K> && std::is_unsigned_v<K>) {
        RadixSortByKey();
      } else {
        PermutationSortByKey();
      }
    }
    sorted = true;
  }

 private:
  /// LSD radix sort, one 8-bit digit per pass, skipping passes above the
  /// highest set bit of any key (Zipf keys of a 2^17 domain take 3 passes,
  /// not 8) and passes where every key shares the digit. Counting sort per
  /// digit is stable, so the composition is a stable sort by the full key.
  void RadixSortByKey() {
    const size_t n = keys.size();
    K seen = 0;
    for (const K& k : keys) seen |= k;
    std::vector<K> key_scratch(n);
    std::vector<V> value_scratch(n);
    std::vector<K>* src_k = &keys;
    std::vector<K>* dst_k = &key_scratch;
    std::vector<V>* src_v = &values;
    std::vector<V>* dst_v = &value_scratch;
    for (unsigned shift = 0; shift < 8 * sizeof(K); shift += 8) {
      if ((seen >> shift) == 0) break;  // no key has bits at or above shift
      size_t count[256] = {};
      const K* sk = src_k->data();
      for (size_t i = 0; i < n; ++i) ++count[(sk[i] >> shift) & 0xFF];
      if (count[(sk[0] >> shift) & 0xFF] == n) continue;  // single digit
      size_t offsets[256];
      size_t total = 0;
      for (size_t d = 0; d < 256; ++d) {
        offsets[d] = total;
        total += count[d];
      }
      const V* sv = src_v->data();
      K* dk = dst_k->data();
      V* dv = dst_v->data();
      for (size_t i = 0; i < n; ++i) {
        const size_t pos = offsets[(sk[i] >> shift) & 0xFF]++;
        dk[pos] = sk[i];
        dv[pos] = sv[i];
      }
      std::swap(src_k, dst_k);
      std::swap(src_v, dst_v);
    }
    if (src_k != &keys) {
      keys.swap(key_scratch);
      values.swap(value_scratch);
    }
  }

  /// Fallback for non-radix-sortable keys: stable-sort an index permutation,
  /// then gather both columns through it.
  void PermutationSortByKey() {
    const size_t n = keys.size();
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    const K* k = keys.data();
    std::stable_sort(order.begin(), order.end(),
                     [k](uint32_t a, uint32_t b) { return k[a] < k[b]; });
    std::vector<K> sorted_keys(n);
    std::vector<V> sorted_values(n);
    for (size_t i = 0; i < n; ++i) {
      sorted_keys[i] = keys[order[i]];
      sorted_values[i] = values[order[i]];
    }
    keys.swap(sorted_keys);
    values.swap(sorted_values);
  }
};

// ---------------------------------------------------------------------------
// RunMerger: loser-tree k-way merge over sorted runs.
// ---------------------------------------------------------------------------

/// One input to the merge: either a resident slice of a sorted columnar run
/// (keys/values/n) or a file-backed cursor over a spilled run. `ordinal` is
/// the run's arrival index at the plane -- the merge tie-break -- so a run
/// merges identically whether it stayed resident or went to disk.
template <typename K, typename V>
struct MergeInput {
  const K* keys = nullptr;
  const V* values = nullptr;
  size_t n = 0;
  FileRunCursor<K, V>* file = nullptr;  // non-null: stream blocks from disk
  uint32_t ordinal = 0;
};

/// Merges R stably-sorted columnar runs (resident or file-backed) in
/// (key, ordinal) order: equal keys drain lower-ordinal runs first, and each
/// run preserves its internal order, so the merged stream equals
/// std::stable_sort over the runs' concatenation in ordinal order.
///
/// Delivery is adaptively block-wise: the default loop replays once per
/// equal-key group, but when the same run keeps winning (kGallopStreak
/// consecutive replays -- a skewed or key-clustered run) it computes the
/// runner-up bound (the best head among the leaves the winner defeated on
/// its root path) and bulk-drains the winner's whole remaining prefix up to
/// that bound with a galloping search over its key column -- one tree walk
/// per *prefix* instead of one per pair. Galloping keeps the search cost
/// O(log prefix), so uniform workloads never pay for the block path while
/// run-partitioned key ranges collapse to a streak of bulk copies.
/// DrainPerPair keeps the classic loop as the reference (and the bench
/// floor) for the block-wise path.
template <typename K, typename V>
class RunMerger {
 public:
  explicit RunMerger(const std::vector<ShuffleRun<K, V>>& runs) {
    std::vector<MergeInput<K, V>> inputs;
    inputs.reserve(runs.size());
    for (uint32_t r = 0; r < runs.size(); ++r) {
      WAVEMR_DCHECK(runs[r].sorted || runs[r].size() < 2);
      inputs.push_back(MergeInput<K, V>{runs[r].keys.data(), runs[r].values.data(),
                                        runs[r].size(), nullptr, r});
    }
    Init(inputs);
  }

  explicit RunMerger(const std::vector<MergeInput<K, V>>& inputs) { Init(inputs); }

  /// Consecutive wins by one run before Drain switches from per-group
  /// replay to the galloped block drain for that run.
  static constexpr uint32_t kGallopStreak = 4;

  /// Pops every pair into `consume(key, value)` in merged order (adaptive
  /// block-wise delivery; identical stream to DrainPerPair).
  template <typename Consumer>
  void Drain(Consumer&& consume) {
    const uint32_t leaves = static_cast<uint32_t>(cursors_.size());
    if (leaves == 0) return;
    if (leaves == 1) {
      DrainAll(cursors_[0], consume);
      return;
    }
    uint32_t prev = leaves;  // not a valid leaf
    uint32_t streak = 0;
    while (!Exhausted(winner_)) {
      Cursor& c = cursors_[winner_];
      if (winner_ == prev) {
        ++streak;
      } else {
        prev = winner_;
        streak = 0;
      }
      if (streak >= kGallopStreak) {
        streak = 0;
        const uint32_t ru = RunnerUp(winner_);
        if (Exhausted(ru)) {
          // No live contender: the winner owns the rest of the stream.
          DrainAll(c, consume);
        } else {
          // Every other live head is >= the runner-up's head under (key,
          // ordinal) order, so the winner keeps winning for its whole prefix
          // of keys < bound -- or <= bound when it also wins the tie-break.
          const K bound = *cursors_[ru].key;
          const bool wins_ties = c.run < cursors_[ru].run;
          for (;;) {
            const K* stop = GallopStop(c.key, c.end, bound, wins_ties);
            const size_t take = static_cast<size_t>(stop - c.key);
            for (size_t i = 0; i < take; ++i) consume(c.key[i], c.value[i]);
            c.key += take;
            c.value += take;
            if (c.key != c.end) break;                       // ends in block
            if (c.file == nullptr || !RefillFile(c)) break;  // run exhausted
            // Refilled from disk: the prefix may continue into this block.
            if (wins_ties ? (bound < *c.key) : !(*c.key < bound)) break;
          }
        }
      } else {
        const K current = *c.key;
        do {
          consume(*c.key, *c.value);
          AdvanceOne(c);
        } while (c.key != c.end && *c.key == current);
      }
      Replay(winner_);
    }
  }

  /// Reference delivery: one loser-tree replay per equal-key group, pairs
  /// consumed one at a time. Same output stream as Drain.
  template <typename Consumer>
  void DrainPerPair(Consumer&& consume) {
    const uint32_t leaves = static_cast<uint32_t>(cursors_.size());
    if (leaves == 0) return;
    if (leaves == 1) {
      DrainAll(cursors_[0], consume);
      return;
    }
    while (!Exhausted(winner_)) {
      Cursor& c = cursors_[winner_];
      // Drain the winner's whole prefix of equal keys before replaying the
      // tree: every other live run's head is either > this key or == with a
      // higher ordinal (a lower one would have won instead).
      const K current = *c.key;
      do {
        consume(*c.key, *c.value);
        AdvanceOne(c);
      } while (c.key != c.end && *c.key == current);
      Replay(winner_);
    }
  }

 private:
  struct Cursor {
    const K* key;
    const K* end;
    const V* value;
    uint32_t run;                  // merge ordinal; the tie-break
    FileRunCursor<K, V>* file;     // non-null: refill from disk at block end
  };

  void Init(const std::vector<MergeInput<K, V>>& inputs) {
    cursors_.reserve(inputs.size());
    for (const MergeInput<K, V>& in : inputs) {
      if (in.file != nullptr) {
        Cursor c{nullptr, nullptr, nullptr, in.ordinal, in.file};
        if (!RefillFile(c)) continue;  // empty range
        cursors_.push_back(c);
      } else {
        if (in.n == 0) continue;
        cursors_.push_back(Cursor{in.keys, in.keys + in.n, in.values, in.ordinal,
                                  nullptr});
      }
    }
    BuildTree();
  }

  bool Exhausted(uint32_t leaf) const {
    return cursors_[leaf].key == cursors_[leaf].end;
  }

  /// Loads the cursor's next disk block; false at end of the file range.
  /// Invariant everywhere else: a cursor with key == end is truly exhausted.
  static bool RefillFile(Cursor& c) {
    const K* keys = nullptr;
    const V* values = nullptr;
    const uint64_t got = c.file->NextBlock(&keys, &values);
    if (got == 0) {
      c.key = c.end = nullptr;
      c.value = nullptr;
      return false;
    }
    c.key = keys;
    c.end = keys + got;
    c.value = values;
    return true;
  }

  /// Advances one pair, refilling across disk-block boundaries.
  static void AdvanceOne(Cursor& c) {
    ++c.key;
    ++c.value;
    if (c.key == c.end && c.file != nullptr) RefillFile(c);
  }

  /// First element of [begin, end) past the winning prefix: keys < bound
  /// (exclusive) or <= bound (inclusive). begin is known to qualify.
  /// Galloping (exponential probe, then bounded binary search) keeps the
  /// cost O(log prefix) instead of O(log block), so short prefixes stay
  /// cheap and long ones amortize to a bulk copy.
  static const K* GallopStop(const K* begin, const K* end, const K& bound,
                             bool inclusive) {
    const size_t n = static_cast<size_t>(end - begin);
    size_t off = 1;
    if (inclusive) {
      while (off < n && !(bound < begin[off])) off <<= 1;
    } else {
      while (off < n && begin[off] < bound) off <<= 1;
    }
    const K* lo = begin + (off >> 1);
    const K* hi = begin + (off < n ? off : n);
    return inclusive ? std::upper_bound(lo, hi, bound)
                     : std::lower_bound(lo, hi, bound);
  }

  /// Consumes everything the cursor has left.
  template <typename Consumer>
  static void DrainAll(Cursor& c, Consumer&& consume) {
    for (;;) {
      const size_t n = static_cast<size_t>(c.end - c.key);
      for (size_t i = 0; i < n; ++i) consume(c.key[i], c.value[i]);
      c.key = c.end;
      if (c.file == nullptr || !RefillFile(c)) return;
    }
  }

  /// True when leaf `a` wins the match against leaf `b`: smaller head key,
  /// ties to the lower ordinal; exhausted leaves always lose.
  bool Beats(uint32_t a, uint32_t b) const {
    const bool ae = Exhausted(a);
    const bool be = Exhausted(b);
    if (ae || be) return !ae;
    const K& ka = *cursors_[a].key;
    const K& kb = *cursors_[b].key;
    if (ka != kb) return ka < kb;
    return cursors_[a].run < cursors_[b].run;
  }

  /// Best head among the leaves the winner defeated: they sit exactly on
  /// its root path, and every other live leaf lost (transitively) to one of
  /// them, so the returned leaf's head lower-bounds all non-winner heads.
  uint32_t RunnerUp(uint32_t leaf) const {
    const uint32_t leaves = static_cast<uint32_t>(cursors_.size());
    uint32_t best = loser_[(leaf + leaves) >> 1];
    for (uint32_t t = (leaf + leaves) >> 2; t >= 1; t >>= 1) {
      if (Beats(loser_[t], best)) best = loser_[t];
    }
    return best;
  }

  /// Bottom-up build: compute subtree winners, store the loser of each
  /// internal match. Leaves 0..R-1 are tree positions R..2R-1; node t's
  /// parent is t/2.
  void BuildTree() {
    const uint32_t leaves = static_cast<uint32_t>(cursors_.size());
    if (leaves < 2) return;
    loser_.assign(leaves, 0);
    std::vector<uint32_t> winner(2 * leaves);
    for (uint32_t r = 0; r < leaves; ++r) winner[leaves + r] = r;
    for (uint32_t t = leaves - 1; t >= 1; --t) {
      const uint32_t a = winner[2 * t];
      const uint32_t b = winner[2 * t + 1];
      winner[t] = Beats(a, b) ? a : b;
      loser_[t] = Beats(a, b) ? b : a;
    }
    winner_ = winner[1];
  }

  /// After the winning leaf advanced, replay its root path: every contender
  /// it previously beat sits exactly on that path.
  void Replay(uint32_t leaf) {
    const uint32_t leaves = static_cast<uint32_t>(cursors_.size());
    uint32_t w = leaf;
    for (uint32_t t = (leaf + leaves) >> 1; t >= 1; t >>= 1) {
      if (Beats(loser_[t], w)) std::swap(w, loser_[t]);
    }
    winner_ = w;
  }

  std::vector<Cursor> cursors_;
  std::vector<uint32_t> loser_;  // loser_[t]: losing leaf of internal node t
  uint32_t winner_ = 0;
};

// ---------------------------------------------------------------------------
// SpillPolicy: byte budget for retained runs.
// ---------------------------------------------------------------------------

/// Byte budget for the runs a sorted shuffle retains in memory before the
/// plane spills them to disk (Hadoop's io.sort.mb analog, sized from the
/// CostModel). Crossing the budget both counts a spill event and -- when the
/// plane has a SpillDir -- serializes the largest retained runs until the
/// resident footprint fits again.
struct SpillPolicy {
  /// 0 = unbounded (never spill).
  uint64_t buffer_bytes = 0;

  bool ShouldSpill(uint64_t resident_bytes) const {
    return buffer_bytes > 0 && resident_bytes > buffer_bytes;
  }
};

// ---------------------------------------------------------------------------
// MergeCut: a position in the merged stream addressed by content.
// ---------------------------------------------------------------------------

/// A cut point in a sorted plane's merged output, addressed by content
/// rather than by index: every pair before the cut either has key < `key`,
/// or has key == `key` and comes from a run with ordinal < `ordinal`, or is
/// one of the first `offset` key-equal pairs of run `ordinal`. Because the
/// loser-tree merge delivers equal keys as whole runs in ordinal order
/// (with within-run order preserved), each global rank r in [0, n] maps to
/// exactly one cut -- so cuts can slice the merged stream at arbitrary pair
/// counts. That is what lets equi-depth reduce partitions split a hot key's
/// duplicates across ranges, where a key-range boundary cannot.
template <typename K>
struct MergeCut {
  K key{};
  uint32_t ordinal = 0;  // run owning the pair at the cut
  uint64_t offset = 0;   // pairs of that run's key-equal group before the cut

  friend bool operator==(const MergeCut& a, const MergeCut& b) {
    return a.key == b.key && a.ordinal == b.ordinal && a.offset == b.offset;
  }
};

// ---------------------------------------------------------------------------
// ShufflePlane: run collection, wire accounting, spill, delivery.
// ---------------------------------------------------------------------------

/// Owns one round's shuffle: accepts each map task's run in split-index
/// order, accounts its wire bytes in bulk (one callback per run, not one
/// per pair), spills the largest retained runs to disk when they outgrow
/// the SpillPolicy budget, and delivers pairs to the reducer either
/// streaming (unsorted planes absorb a run the moment it arrives and free
/// it) or via the loser-tree merge over all retained + spilled runs
/// (sorted planes). The plane deletes its spill files in its destructor, so
/// a reducer exception unwinding RunRound leaves no files behind.
///
/// On an async IoBackend, spill serialization moves off the driver: victim
/// selection, SpillFileInfo metadata, and the WVMRPIL2 CRC footer are all
/// computed at submission time on the driver (so *what* spills and what the
/// checksums protect is decided identically to the sync plane), then the
/// retrying file write runs on an I/O worker while the driver keeps
/// absorbing map output. At most IoOptions::queue_depth writes are in
/// flight; outcomes are collected in submission order before the first read
/// -- merge, rank probe, counter, or destruction -- so every observable
/// (synopses, counters, spill files on disk) is bit-identical to the sync
/// backend. A write that fails after retries re-pins its run resident at
/// collection, the same graceful degradation as the sync path. Failpoints:
/// `spill.write.submit` (submission rejected -> immediate resident
/// fallback) and `spill.write.complete` (completed write forced to fail,
/// file removed).
template <typename K, typename V>
class ShufflePlane {
 public:
  /// Wire bytes of a whole run: called once per run with the packed columns.
  using WireFn = std::function<uint64_t(const K* keys, const V* values, size_t n)>;

  /// Without a SpillDir the plane only counts would-spill events (the
  /// pre-external behavior unit tests pin); with one it spills for real.
  /// `io` = nullptr runs on the process-wide sync backend.
  ShufflePlane(WireFn wire, bool sorted, SpillPolicy spill,
               SpillDir* spill_dir = nullptr, IoBackend* io = nullptr)
      : wire_(std::move(wire)), sorted_(sorted), spill_(spill),
        spill_dir_(spill_dir),
        io_(io != nullptr ? io : DefaultSyncIoBackend()) {}

  ~ShufflePlane() {
    // In-flight async writes capture pointers into in_flight_; they must
    // land (and register their files in spilled_) before cleanup, so even a
    // mid-round unwind leaves zero files behind.
    EnsureSpillsComplete();
    DeleteSpillFiles();
  }

  ShufflePlane(const ShufflePlane&) = delete;
  ShufflePlane& operator=(const ShufflePlane&) = delete;

  /// Accounts `run` and either streams it into `absorb(key, value)` now
  /// (unsorted plane) or retains it for Merge. Call in split-index order;
  /// delivery and accounting order is what makes rounds thread-independent.
  template <typename Absorb>
  void Accept(ShuffleRun<K, V>&& run, Absorb&& absorb) {
    const size_t n = run.size();
    pairs_ += n;
    wire_bytes_ += wire_(run.keys.data(), run.values.data(), n);
    if (!sorted_) {
      const K* k = run.keys.data();
      const V* v = run.values.data();
      for (size_t i = 0; i < n; ++i) absorb(k[i], v[i]);
      return;  // streaming: the run dies here, nothing is retained
    }
    WAVEMR_DCHECK(run.sorted || n < 2) << "sorted plane fed an unsorted run";
    resident_bytes_ += run.PayloadBytes();
    resident_.push_back(Retained{next_ordinal_++, std::move(run)});
    if (spill_.ShouldSpill(resident_bytes_)) {
      ++spill_events_;
      SpillUntilWithinBudget();
    }
  }

  /// Sorted plane: loser-tree merge of every retained + spilled run into
  /// `absorb(key, value)`, grouped and sorted by key.
  template <typename Absorb>
  void Merge(Absorb&& absorb) {
    MergeImpl(/*bounded=*/false, K{}, /*has_hi=*/false, K{},
              std::forward<Absorb>(absorb));
  }

  /// Merges only the pairs with key in [lo, hi) -- or [lo, inf) when
  /// has_hi is false -- preserving the exact order the full Merge would
  /// deliver them in. Each call opens its own file cursors, so disjoint
  /// ranges can merge concurrently (the key-range partitioned reduce).
  template <typename Absorb>
  void MergeRange(const K& lo, bool has_hi, const K& hi, Absorb&& absorb) const {
    MergeImpl(/*bounded=*/true, lo, has_hi, hi, std::forward<Absorb>(absorb));
  }

  /// Pairs whose key is < `key` (inclusive=false) or <= `key` (true),
  /// summed across every retained and spilled run. One in-memory
  /// binary search per resident run, one on-disk probe sequence per
  /// spilled run. Unsigned integral keys only.
  uint64_t RankOfKey(const K& key, bool inclusive) const {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    EnsureSpillsComplete();
    std::vector<SpillKeyProbe<K>> probes = MakeSpillProbes();
    return RankOfKeyWith(probes, key, inclusive);
  }

  /// The cut exactly `rank` pairs into the merged stream, 0 <= rank <
  /// pairs(). Binary-searches the key domain for the key owning that rank
  /// (O(log key-span) RankOfKey probes), then walks that key's per-run
  /// group sizes in ordinal order to place the cut inside the key's
  /// duplicates. The end-of-stream position has no cut; callers express it
  /// as an unbounded upper end (has_hi == false). Sorted planes with
  /// unsigned integral keys only.
  MergeCut<K> CutForRank(uint64_t rank) const {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    EnsureSpillsComplete();
    WAVEMR_CHECK(rank < pairs_) << "cut rank past the merged stream";
    K lo{};
    K hi{};
    WAVEMR_CHECK(KeyBounds(&lo, &hi)) << "cut requested on an empty plane";
    // One probe set for the whole search: each spilled run's handle stays
    // open and its last-read key block stays cached across every step.
    std::vector<SpillKeyProbe<K>> probes = MakeSpillProbes();
    // Smallest key with more than `rank` pairs at or below it: the key of
    // the pair at global position `rank`.
    while (lo < hi) {
      const K mid = lo + (hi - lo) / 2;
      if (RankExceeds(probes, mid, rank)) {
        hi = mid;
      } else {
        lo = static_cast<K>(mid + 1);
      }
    }
    MergeCut<K> cut;
    cut.key = lo;
    // Distribute the remaining offset across the key's duplicates, walking
    // runs in ordinal order -- the order the merge drains equal keys in.
    uint64_t remaining = rank - RankOfKeyWith(probes, lo, /*inclusive=*/false);
    std::vector<std::pair<uint32_t, uint64_t>> groups;  // (ordinal, group size)
    for (const Retained& r : resident_) {
      const K* begin = r.run.keys.data();
      const K* end = begin + r.run.size();
      const uint64_t g = static_cast<uint64_t>(
          std::upper_bound(begin, end, lo) - std::lower_bound(begin, end, lo));
      if (g > 0) groups.emplace_back(r.ordinal, g);
    }
    for (size_t i = 0; i < spilled_.size(); ++i) {
      const uint64_t g = probes[i].UpperBound(lo) - probes[i].LowerBound(lo);
      if (g > 0) groups.emplace_back(spilled_[i].ordinal, g);
    }
    std::sort(groups.begin(), groups.end());
    for (const auto& [ordinal, g] : groups) {
      if (remaining < g) {
        cut.ordinal = ordinal;
        cut.offset = remaining;
        return cut;
      }
      remaining -= g;
    }
    WAVEMR_CHECK(false) << "rank walk overran its key group";
    return cut;
  }

  /// Merges only the pairs between cut `lo` and cut `hi` -- or from `lo` to
  /// the end when has_hi is false -- preserving the exact order the full
  /// Merge delivers them in. Disjoint adjacent cut ranges concatenate to
  /// the single-merge stream, including through the middle of a run of
  /// duplicate keys (where MergeRange cannot place a boundary). Thread-safe
  /// like MergeRange: each call opens its own file cursors.
  template <typename Absorb>
  void MergeCutRange(const MergeCut<K>& lo, bool has_hi, const MergeCut<K>& hi,
                     Absorb&& absorb) const {
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K>,
                  "rank partitioning is defined over unsigned integral keys");
    EnsureSpillsComplete();
    std::vector<MergeInput<K, V>> inputs;
    std::vector<std::unique_ptr<FileRunCursor<K, V>>> cursors;
    inputs.reserve(resident_.size() + spilled_.size());
    for (const Retained& r : resident_) {
      const K* begin = r.run.keys.data();
      const uint64_t s = ResidentCutIndex(r, lo);
      const uint64_t e = has_hi ? ResidentCutIndex(r, hi) : r.run.size();
      inputs.push_back(MergeInput<K, V>{begin + s, r.run.values.data() + s,
                                        static_cast<size_t>(e - s), nullptr,
                                        r.ordinal});
    }
    for (const Spilled& s : spilled_) {
      // One probe per run resolves both endpoints: shared handle, and the
      // hi lookup usually hits the key block the lo lookup cached.
      SpillKeyProbe<K> probe(s.info);
      const uint64_t begin = SpilledCutIndex(s, lo, probe);
      const uint64_t end =
          has_hi ? SpilledCutIndex(s, hi, probe) : s.info.num_pairs;
      cursors.push_back(std::make_unique<FileRunCursor<K, V>>(
          s.info, begin, end, FileRunCursor<K, V>::kDefaultBlockPairs,
          io_->options().retry, io_));
      inputs.push_back(
          MergeInput<K, V>{nullptr, nullptr, 0, cursors.back().get(), s.ordinal});
    }
    std::sort(inputs.begin(), inputs.end(),
              [](const MergeInput<K, V>& a, const MergeInput<K, V>& b) {
                return a.ordinal < b.ordinal;
              });
    RunMerger<K, V> merger(inputs);
    merger.Drain(absorb);
  }

  /// Smallest and largest key across all retained + spilled pairs; false
  /// when the plane holds no pairs. Sorted planes only.
  bool KeyBounds(K* min_key, K* max_key) const {
    EnsureSpillsComplete();
    bool any = false;
    for (const Retained& r : resident_) {
      if (r.run.empty()) continue;
      const K lo = r.run.keys.front();
      const K hi = r.run.keys.back();
      if (!any || lo < *min_key) *min_key = lo;
      if (!any || *max_key < hi) *max_key = hi;
      any = true;
    }
    if constexpr (std::is_integral_v<K> && std::is_unsigned_v<K>) {
      for (const Spilled& s : spilled_) {
        if (s.info.num_pairs == 0) continue;
        const K lo = static_cast<K>(s.info.min_key);
        const K hi = static_cast<K>(s.info.max_key);
        if (!any || lo < *min_key) *min_key = lo;
        if (!any || *max_key < hi) *max_key = hi;
        any = true;
      }
    }
    return any;
  }

  uint64_t pairs() const { return pairs_; }
  uint64_t wire_bytes() const { return wire_bytes_; }
  uint64_t resident_bytes() const {
    EnsureSpillsComplete();
    return resident_bytes_;
  }
  uint64_t spill_events() const { return spill_events_; }
  uint64_t spill_files() const {
    EnsureSpillsComplete();
    return spill_files_;
  }
  /// Bytes written to spill files (framing included).
  uint64_t spill_bytes() const {
    EnsureSpillsComplete();
    return spill_bytes_;
  }
  /// Payload bytes living in spill files -- what every full merge reads
  /// back, independent of reduce partitioning or cursor block size.
  uint64_t spill_payload_bytes() const {
    EnsureSpillsComplete();
    return spill_payload_bytes_;
  }
  /// Spill attempts that exhausted their IO retries and fell back to
  /// retaining the run resident (results stay bit-identical; see Retained).
  uint64_t spill_fallbacks() const {
    EnsureSpillsComplete();
    return spill_fallbacks_;
  }
  /// Transient-errno retries performed by spill writes (successful or not).
  uint64_t spill_retries() const {
    EnsureSpillsComplete();
    return spill_retries_;
  }
  size_t num_runs() const {
    EnsureSpillsComplete();
    return resident_.size() + spilled_.size();
  }

 private:
  struct Retained {
    uint32_t ordinal;
    ShuffleRun<K, V> run;
    /// A spill attempt on this run exhausted its IO retries. The run stays
    /// resident for the rest of the round and is never offered as a spill
    /// victim again -- its bytes permanently occupy budget, shrinking the
    /// effective buffer (graceful degradation instead of an aborted job).
    bool pinned = false;
  };
  struct Spilled {
    uint32_t ordinal;
    SpillFileInfo info;
  };
  /// One async spill write in flight: the run's columns (moved out of
  /// resident_ at submission, so victim selection stays deterministic), the
  /// driver-computed metadata + CRC footer, and the worker-side outcome.
  /// unique_ptr-held so the job's captured pointer survives deque churn.
  struct InFlightSpill {
    uint32_t ordinal = 0;
    ShuffleRun<K, V> run;
    SpillFileInfo info;
    std::vector<uint32_t> footer;
    SpillWriteResult result;
    IoTicket ticket;
  };

  /// Spills the largest resident runs (ties to the lower ordinal, so the
  /// choice is deterministic) until the footprint fits the budget again.
  /// Largest-first minimizes file count for a given number of bytes evicted
  /// -- the same policy Hadoop's merge uses to pick spill victims.
  void SpillUntilWithinBudget() {
    if constexpr (std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>) {
      if (spill_dir_ == nullptr) return;  // counting-only plane
      while (spill_.ShouldSpill(resident_bytes_) && !resident_.empty()) {
        size_t victim = resident_.size();
        for (size_t i = 0; i < resident_.size(); ++i) {
          if (resident_[i].pinned || resident_[i].run.empty()) continue;
          if (victim == resident_.size() ||
              resident_[i].run.PayloadBytes() >
                  resident_[victim].run.PayloadBytes()) {
            victim = i;
          }
        }
        // Everything left is empty or pinned by a failed spill: over budget
        // but nothing evictable. Carry on resident.
        if (victim == resident_.size()) break;
        SpillRun(victim);
      }
    }
  }

  void SpillRun(size_t idx) {
    if (io_->async()) {
      // Collecting may re-pin a failed run into resident_ (reallocation), so
      // make room in the queue before touching resident_[idx].
      const size_t depth =
          static_cast<size_t>(std::max(1, io_->options().queue_depth));
      while (in_flight_.size() >= depth) CollectFront();
    }
    Retained& r = resident_[idx];
    SpillFileInfo info;
    info.path = spill_dir_->NextFilePath("run-" + std::to_string(r.ordinal));
    info.num_pairs = r.run.size();
    if constexpr (std::is_integral_v<K> && std::is_unsigned_v<K>) {
      info.min_key = static_cast<uint64_t>(r.run.keys.front());
      info.max_key = static_cast<uint64_t>(r.run.keys.back());
      // Sparse key index for rank/partition probes: the run is sorted and
      // in memory right now, so sampling block-leading keys is free.
      info.block_keys.reserve(
          static_cast<size_t>((info.num_pairs + kSpillIndexBlockPairs - 1) /
                              kSpillIndexBlockPairs));
      for (uint64_t b = 0; b * kSpillIndexBlockPairs < info.num_pairs; ++b) {
        info.block_keys.push_back(
            static_cast<uint64_t>(r.run.keys[b * kSpillIndexBlockPairs]));
      }
    }
    if (io_->async()) {
      const int fe = FailpointHit("spill.write.submit");
      if (fe != 0) {
        // Submission rejected: same degradation as a failed write, decided
        // before the run leaves resident_.
        r.pinned = true;
        ++spill_fallbacks_;
        WAVEMR_LOG(Warning)
            << internal::SpillFail(IoResult::Op::kWrite, fe,
                                   "spill submission rejected for " +
                                       info.path.string())
                   .ToString()
            << "; retaining run " << r.ordinal << " resident ("
            << r.run.PayloadBytes() << " bytes pinned)";
        return;
      }
      auto fl = std::make_unique<InFlightSpill>();
      fl->ordinal = r.ordinal;
      fl->info = std::move(info);
      fl->run = std::move(r.run);
      // The run leaves the resident set *now*: later victim selection (and
      // the budget check driving it) sees exactly what the sync plane would.
      resident_bytes_ -= fl->run.PayloadBytes();
      resident_.erase(resident_.begin() + static_cast<ptrdiff_t>(idx));
      // CRC before submission: the footer covers the columns as the driver
      // holds them at the spill decision, so worker-side corruption of any
      // kind is detectable at read-back.
      fl->footer = ComputeSpillFooter<K, V>(fl->run.keys.data(),
                                            fl->run.values.data(),
                                            fl->run.size());
      InFlightSpill* raw = fl.get();
      const IoRetryPolicy policy = io_->options().retry;
      fl->ticket = io_->Submit([raw, policy] {
        raw->result = WriteSpillFileWithFooter<K, V>(
            raw->info.path, raw->run.keys.data(), raw->run.values.data(),
            raw->run.size(), raw->footer, policy);
      });
      in_flight_.push_back(std::move(fl));
      has_in_flight_.store(true, std::memory_order_release);
      return;
    }
    const SpillWriteResult w =
        WriteSpillFile<K, V>(info.path, r.run.keys.data(),
                             r.run.values.data(), r.run.size(),
                             io_->options().retry);
    spill_retries_ += w.retries;
    if (!w.io.ok()) {
      // Degrade instead of dying: WriteSpillFile already deleted the partial
      // file, the columns are still resident, and resident vs spilled runs
      // merge bit-identically -- so pin the run in memory and move on. The
      // fallback is observable only through counters (and a shrunken
      // effective buffer).
      r.pinned = true;
      ++spill_fallbacks_;
      WAVEMR_LOG(Warning) << w.io.ToString() << "; retaining run "
                          << r.ordinal << " resident ("
                          << r.run.PayloadBytes() << " bytes pinned)";
      return;
    }
    info.file_bytes = w.file_bytes;
    ++spill_files_;
    spill_bytes_ += info.file_bytes;
    spill_payload_bytes_ += r.run.PayloadBytes();
    resident_bytes_ -= r.run.PayloadBytes();
    spilled_.push_back(Spilled{r.ordinal, std::move(info)});
    resident_.erase(resident_.begin() + static_cast<ptrdiff_t>(idx));
  }

  /// Lands the oldest in-flight write: waits its ticket, applies the
  /// counters the sync path would have applied at write time (collection
  /// order is submission order, so the healthy-path totals match exactly),
  /// and either registers the spill file or re-pins the run resident.
  void CollectFront() {
    std::unique_ptr<InFlightSpill> fl = std::move(in_flight_.front());
    in_flight_.pop_front();
    fl->ticket.Wait();
    const int fe = FailpointHit("spill.write.complete");
    if (fe != 0) {
      // Completion rejected: whatever landed on disk is torn as far as the
      // plane is concerned. Remove it and take the failure path.
      std::error_code ec;
      std::filesystem::remove(fl->info.path, ec);
      fl->result.io = internal::SpillFail(
          IoResult::Op::kWrite, fe,
          "spill completion rejected for " + fl->info.path.string());
    }
    spill_retries_ += fl->result.retries;
    if (!fl->result.io.ok()) {
      WAVEMR_LOG(Warning) << fl->result.io.ToString() << "; retaining run "
                          << fl->ordinal << " resident ("
                          << fl->run.PayloadBytes() << " bytes pinned)";
      ++spill_fallbacks_;
      resident_bytes_ += fl->run.PayloadBytes();
      resident_.push_back(Retained{fl->ordinal, std::move(fl->run), true});
      return;
    }
    fl->info.file_bytes = fl->result.file_bytes;
    ++spill_files_;
    spill_bytes_ += fl->info.file_bytes;
    spill_payload_bytes_ += fl->run.PayloadBytes();
    spilled_.push_back(Spilled{fl->ordinal, std::move(fl->info)});
  }

  /// Barrier between the write plane and every reader: all in-flight spill
  /// writes land before merges, rank probes, counters, or destruction look
  /// at plane state. Cheap atomic fast path; the mutex makes the collection
  /// safe to reach from concurrent reduce workers (their acquire load
  /// observes all mutations the collecting thread published).
  void EnsureSpillsComplete() const {
    if (!has_in_flight_.load(std::memory_order_acquire)) return;
    auto* self = const_cast<ShufflePlane*>(this);
    std::lock_guard<std::mutex> lock(self->collect_mu_);
    while (!self->in_flight_.empty()) self->CollectFront();
    self->has_in_flight_.store(false, std::memory_order_release);
  }

  /// Index of cut `c` inside resident run `r`: runs with ordinal below the
  /// cut's contribute their whole key-equal group, the owning run
  /// contributes its first `offset` duplicates, later runs contribute none.
  uint64_t ResidentCutIndex(const Retained& r, const MergeCut<K>& c) const {
    const K* begin = r.run.keys.data();
    const K* end = begin + r.run.size();
    if (r.ordinal < c.ordinal) {
      return static_cast<uint64_t>(std::upper_bound(begin, end, c.key) - begin);
    }
    const uint64_t lower =
        static_cast<uint64_t>(std::lower_bound(begin, end, c.key) - begin);
    return r.ordinal == c.ordinal ? lower + c.offset : lower;
  }

  /// Same placement rule over a spilled run's on-disk key block.
  uint64_t SpilledCutIndex(const Spilled& s, const MergeCut<K>& c,
                           SpillKeyProbe<K>& probe) const {
    if (s.ordinal < c.ordinal) return probe.UpperBound(c.key);
    const uint64_t lower = probe.LowerBound(c.key);
    return s.ordinal == c.ordinal ? lower + c.offset : lower;
  }

  /// One probe per spilled run, aligned with spilled_'s order.
  std::vector<SpillKeyProbe<K>> MakeSpillProbes() const {
    std::vector<SpillKeyProbe<K>> probes;
    probes.reserve(spilled_.size());
    for (const Spilled& s : spilled_) probes.emplace_back(s.info);
    return probes;
  }

  /// RankOfKey through a caller-owned probe set (handles and block caches
  /// persist across calls).
  uint64_t RankOfKeyWith(std::vector<SpillKeyProbe<K>>& probes, const K& key,
                         bool inclusive) const {
    uint64_t rank = ResidentRankOfKey(key, inclusive);
    for (SpillKeyProbe<K>& p : probes) {
      rank += inclusive ? p.UpperBound(key) : p.LowerBound(key);
    }
    return rank;
  }

  uint64_t ResidentRankOfKey(const K& key, bool inclusive) const {
    uint64_t rank = 0;
    for (const Retained& r : resident_) {
      const K* begin = r.run.keys.data();
      const K* end = begin + r.run.size();
      rank += static_cast<uint64_t>(
          (inclusive ? std::upper_bound(begin, end, key)
                     : std::lower_bound(begin, end, key)) -
          begin);
    }
    return rank;
  }

  /// Decides RankOfKey(key, inclusive=true) > rank with as little IO as
  /// possible: resident ranks plus each spilled run's sparse-index bracket
  /// first (zero IO), exact per-run reads only while `rank` still falls
  /// inside the uncertainty interval. In the rank binary search almost
  /// every step is decided by the brackets alone.
  bool RankExceeds(std::vector<SpillKeyProbe<K>>& probes, const K& key,
                   uint64_t rank) const {
    uint64_t min_sum = ResidentRankOfKey(key, /*inclusive=*/true);
    uint64_t max_sum = min_sum;
    for (const SpillKeyProbe<K>& p : probes) {
      const auto b = p.UpperBoundBounds(key);
      min_sum += b.min;
      max_sum += b.max;
    }
    if (min_sum > rank) return true;
    if (max_sum <= rank) return false;
    for (SpillKeyProbe<K>& p : probes) {
      const auto b = p.UpperBoundBounds(key);
      if (b.min == b.max) continue;
      const uint64_t exact = p.UpperBound(key);
      min_sum += exact - b.min;
      max_sum -= b.max - exact;
      if (min_sum > rank) return true;
      if (max_sum <= rank) return false;
    }
    return min_sum > rank;
  }

  template <typename Absorb>
  void MergeImpl(bool bounded, const K& lo, bool has_hi, const K& hi,
                 Absorb&& absorb) const {
    EnsureSpillsComplete();
    std::vector<MergeInput<K, V>> inputs;
    std::vector<std::unique_ptr<FileRunCursor<K, V>>> cursors;
    inputs.reserve(resident_.size() + spilled_.size());
    for (const Retained& r : resident_) {
      const K* begin = r.run.keys.data();
      const K* end = begin + r.run.size();
      const K* s = bounded ? std::lower_bound(begin, end, lo) : begin;
      const K* e = (bounded && has_hi) ? std::lower_bound(s, end, hi) : end;
      inputs.push_back(MergeInput<K, V>{
          s, r.run.values.data() + (s - begin), static_cast<size_t>(e - s),
          nullptr, r.ordinal});
    }
    for (const Spilled& s : spilled_) {
      const uint64_t begin =
          bounded ? FileRunCursor<K, V>::LowerBoundIndex(s.info, lo) : 0;
      const uint64_t end = (bounded && has_hi)
                               ? FileRunCursor<K, V>::LowerBoundIndex(s.info, hi)
                               : s.info.num_pairs;
      cursors.push_back(std::make_unique<FileRunCursor<K, V>>(
          s.info, begin, end, FileRunCursor<K, V>::kDefaultBlockPairs,
          io_->options().retry, io_));
      inputs.push_back(
          MergeInput<K, V>{nullptr, nullptr, 0, cursors.back().get(), s.ordinal});
    }
    // Ordinal order keeps the loser tree's leaf numbering deterministic
    // (inputs arrive resident-then-spilled above, not in arrival order).
    std::sort(inputs.begin(), inputs.end(),
              [](const MergeInput<K, V>& a, const MergeInput<K, V>& b) {
                return a.ordinal < b.ordinal;
              });
    RunMerger<K, V> merger(inputs);
    merger.Drain(absorb);
  }

  void DeleteSpillFiles() {
    for (const Spilled& s : spilled_) {
      std::error_code ec;  // best effort; SpillDir removal is the backstop
      std::filesystem::remove(s.info.path, ec);
    }
    spilled_.clear();
  }

  WireFn wire_;
  bool sorted_;
  SpillPolicy spill_;
  SpillDir* spill_dir_;
  IoBackend* io_;
  std::deque<std::unique_ptr<InFlightSpill>> in_flight_;
  std::atomic<bool> has_in_flight_{false};
  std::mutex collect_mu_;
  std::vector<Retained> resident_;  // sorted planes only
  std::vector<Spilled> spilled_;
  uint32_t next_ordinal_ = 0;
  uint64_t pairs_ = 0;
  uint64_t wire_bytes_ = 0;
  uint64_t resident_bytes_ = 0;
  uint64_t spill_events_ = 0;
  uint64_t spill_files_ = 0;
  uint64_t spill_bytes_ = 0;
  uint64_t spill_payload_bytes_ = 0;
  uint64_t spill_fallbacks_ = 0;
  uint64_t spill_retries_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_SHUFFLE_H_
