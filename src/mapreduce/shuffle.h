#ifndef WAVEMR_MAPREDUCE_SHUFFLE_H_
#define WAVEMR_MAPREDUCE_SHUFFLE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/logging.h"

namespace wavemr {

/// Columnar shuffle data plane.
///
/// The paper's algorithms are shuffle-bound by design (Send-V ships one
/// (key, count) pair per distinct key per split; H-WTopk's three rounds
/// hinge on shuffle volume), so the engine's intermediate representation is
/// laid out for the merge loop, not for convenience: each map task emits
/// into a ShuffleRun of packed parallel keys[] / values[] arrays, sorts its
/// own run on the worker thread when the round wants Hadoop's sorted
/// delivery, and the driver merges the per-task runs with a loser tree --
/// the structure Hadoop's framework uses over map-output spill files. The
/// columnar layout halves the merge loop's cache traffic for small keys
/// (the comparison path touches only the key column) and gives the run
/// sort a radix-sortable contiguous key array instead of 16-byte pairs.

// ---------------------------------------------------------------------------
// ShuffleRun: one map task's packed intermediate output.
// ---------------------------------------------------------------------------

/// Packed columnar run of intermediate (key, value) pairs, in emit order.
/// keys[i] and values[i] form pair i; the arrays always have equal length.
template <typename K, typename V>
struct ShuffleRun {
  std::vector<K> keys;
  std::vector<V> values;
  /// Set by SortByKey; a sorted plane only merges sorted runs.
  bool sorted = false;

  size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  void Reserve(size_t n) {
    keys.reserve(n);
    values.reserve(n);
  }

  void Append(const K& key, const V& value) {
    keys.push_back(key);
    values.push_back(value);
    sorted = false;  // appending past a sort invalidates it
  }

  /// Payload bytes this run holds in memory (what a spill would write).
  uint64_t PayloadBytes() const {
    return static_cast<uint64_t>(size()) * (sizeof(K) + sizeof(V));
  }

  /// Stable sort by key: the resulting permutation is exactly what
  /// std::stable_sort over the equivalent pair vector would produce, so a
  /// tie-broken merge of sorted runs reproduces the old engine's global
  /// stable_sort bit for bit. Unsigned integer keys (every shuffle key in
  /// this codebase) take an LSD radix path -- O(n) passes over contiguous
  /// columns instead of a comparison sort over strided pairs.
  void SortByKey() {
    if (sorted) return;
    if (keys.size() > 1) {
      if constexpr (std::is_integral_v<K> && std::is_unsigned_v<K>) {
        RadixSortByKey();
      } else {
        PermutationSortByKey();
      }
    }
    sorted = true;
  }

 private:
  /// LSD radix sort, one 8-bit digit per pass, skipping passes above the
  /// highest set bit of any key (Zipf keys of a 2^17 domain take 3 passes,
  /// not 8) and passes where every key shares the digit. Counting sort per
  /// digit is stable, so the composition is a stable sort by the full key.
  void RadixSortByKey() {
    const size_t n = keys.size();
    K seen = 0;
    for (const K& k : keys) seen |= k;
    std::vector<K> key_scratch(n);
    std::vector<V> value_scratch(n);
    std::vector<K>* src_k = &keys;
    std::vector<K>* dst_k = &key_scratch;
    std::vector<V>* src_v = &values;
    std::vector<V>* dst_v = &value_scratch;
    for (unsigned shift = 0; shift < 8 * sizeof(K); shift += 8) {
      if ((seen >> shift) == 0) break;  // no key has bits at or above shift
      size_t count[256] = {};
      const K* sk = src_k->data();
      for (size_t i = 0; i < n; ++i) ++count[(sk[i] >> shift) & 0xFF];
      if (count[(sk[0] >> shift) & 0xFF] == n) continue;  // single digit
      size_t offsets[256];
      size_t total = 0;
      for (size_t d = 0; d < 256; ++d) {
        offsets[d] = total;
        total += count[d];
      }
      const V* sv = src_v->data();
      K* dk = dst_k->data();
      V* dv = dst_v->data();
      for (size_t i = 0; i < n; ++i) {
        const size_t pos = offsets[(sk[i] >> shift) & 0xFF]++;
        dk[pos] = sk[i];
        dv[pos] = sv[i];
      }
      std::swap(src_k, dst_k);
      std::swap(src_v, dst_v);
    }
    if (src_k != &keys) {
      keys.swap(key_scratch);
      values.swap(value_scratch);
    }
  }

  /// Fallback for non-radix-sortable keys: stable-sort an index permutation,
  /// then gather both columns through it.
  void PermutationSortByKey() {
    const size_t n = keys.size();
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    const K* k = keys.data();
    std::stable_sort(order.begin(), order.end(),
                     [k](uint32_t a, uint32_t b) { return k[a] < k[b]; });
    std::vector<K> sorted_keys(n);
    std::vector<V> sorted_values(n);
    for (size_t i = 0; i < n; ++i) {
      sorted_keys[i] = keys[order[i]];
      sorted_values[i] = values[order[i]];
    }
    keys.swap(sorted_keys);
    values.swap(sorted_values);
  }
};

// ---------------------------------------------------------------------------
// RunMerger: loser-tree k-way merge over sorted runs.
// ---------------------------------------------------------------------------

/// Merges R stably-sorted columnar runs in (key, run-index) order: equal
/// keys drain lower-indexed runs first, and each run preserves its internal
/// order, so the merged stream equals std::stable_sort over the runs'
/// concatenation in run-index order. log2(R) key comparisons per pair (the
/// replayed path of a loser tree), touching only the key columns.
template <typename K, typename V>
class RunMerger {
 public:
  explicit RunMerger(const std::vector<ShuffleRun<K, V>>& runs) {
    cursors_.reserve(runs.size());
    for (uint32_t r = 0; r < runs.size(); ++r) {
      WAVEMR_DCHECK(runs[r].sorted || runs[r].size() < 2);
      if (runs[r].empty()) continue;
      cursors_.push_back(Cursor{runs[r].keys.data(),
                                runs[r].keys.data() + runs[r].size(),
                                runs[r].values.data(), r});
    }
    BuildTree();
  }

  /// Pops every pair into `consume(key, value)` in merged order.
  template <typename Consumer>
  void Drain(Consumer&& consume) {
    const uint32_t leaves = static_cast<uint32_t>(cursors_.size());
    if (leaves == 0) return;
    if (leaves == 1) {
      Cursor& c = cursors_[0];
      for (; c.key != c.end; ++c.key, ++c.value) consume(*c.key, *c.value);
      return;
    }
    while (!Exhausted(winner_)) {
      Cursor& c = cursors_[winner_];
      // Drain the winner's whole prefix of equal keys before replaying the
      // tree: every other live run's head is either > this key or == with a
      // higher run index (a lower one would have won instead), so the
      // winner keeps winning while its key does not change.
      const K current = *c.key;
      do {
        consume(*c.key, *c.value);
        ++c.key;
        ++c.value;
      } while (c.key != c.end && *c.key == current);
      Replay(winner_);
    }
  }

 private:
  struct Cursor {
    const K* key;
    const K* end;
    const V* value;
    uint32_t run;  // original run index; the merge tie-break
  };

  bool Exhausted(uint32_t leaf) const {
    return cursors_[leaf].key == cursors_[leaf].end;
  }

  /// True when leaf `a` wins the match against leaf `b`: smaller head key,
  /// ties to the lower original run index; exhausted leaves always lose.
  bool Beats(uint32_t a, uint32_t b) const {
    const bool ae = Exhausted(a);
    const bool be = Exhausted(b);
    if (ae || be) return !ae;
    const K& ka = *cursors_[a].key;
    const K& kb = *cursors_[b].key;
    if (ka != kb) return ka < kb;
    return cursors_[a].run < cursors_[b].run;
  }

  /// Bottom-up build: compute subtree winners, store the loser of each
  /// internal match. Leaves 0..R-1 are tree positions R..2R-1; node t's
  /// parent is t/2.
  void BuildTree() {
    const uint32_t leaves = static_cast<uint32_t>(cursors_.size());
    if (leaves < 2) return;
    loser_.assign(leaves, 0);
    std::vector<uint32_t> winner(2 * leaves);
    for (uint32_t r = 0; r < leaves; ++r) winner[leaves + r] = r;
    for (uint32_t t = leaves - 1; t >= 1; --t) {
      const uint32_t a = winner[2 * t];
      const uint32_t b = winner[2 * t + 1];
      winner[t] = Beats(a, b) ? a : b;
      loser_[t] = Beats(a, b) ? b : a;
    }
    winner_ = winner[1];
  }

  /// After the winning leaf advanced, replay its root path: every contender
  /// it previously beat sits exactly on that path.
  void Replay(uint32_t leaf) {
    const uint32_t leaves = static_cast<uint32_t>(cursors_.size());
    uint32_t w = leaf;
    for (uint32_t t = (leaf + leaves) >> 1; t >= 1; t >>= 1) {
      if (Beats(loser_[t], w)) std::swap(w, loser_[t]);
    }
    winner_ = w;
  }

  std::vector<Cursor> cursors_;
  std::vector<uint32_t> loser_;  // loser_[t]: losing leaf of internal node t
  uint32_t winner_ = 0;
};

// ---------------------------------------------------------------------------
// SpillPolicy: byte budget for retained runs.
// ---------------------------------------------------------------------------

/// Byte budget for the runs a sorted shuffle retains in memory before the
/// plane would spill them to disk (Hadoop's io.sort.mb analog, sized from
/// the CostModel). Spilling itself is a later PR: today the plane counts
/// would-spill events so large shuffles are visible in counters, and the
/// decision point is already in place.
struct SpillPolicy {
  /// 0 = unbounded (never spill).
  uint64_t buffer_bytes = 0;

  bool ShouldSpill(uint64_t resident_bytes) const {
    return buffer_bytes > 0 && resident_bytes > buffer_bytes;
  }
};

// ---------------------------------------------------------------------------
// ShufflePlane: run collection, wire accounting, delivery.
// ---------------------------------------------------------------------------

/// Owns one round's shuffle: accepts each map task's run in split-index
/// order, accounts its wire bytes in bulk (one callback per run, not one
/// per pair), and delivers pairs to the reducer either streaming (unsorted
/// planes absorb a run the moment it arrives and free it) or via the
/// loser-tree merge over all retained runs (sorted planes).
template <typename K, typename V>
class ShufflePlane {
 public:
  /// Wire bytes of a whole run: called once per run with the packed columns.
  using WireFn = std::function<uint64_t(const K* keys, const V* values, size_t n)>;

  ShufflePlane(WireFn wire, bool sorted, SpillPolicy spill)
      : wire_(std::move(wire)), sorted_(sorted), spill_(spill) {}

  /// Accounts `run` and either streams it into `absorb(key, value)` now
  /// (unsorted plane) or retains it for Merge. Call in split-index order;
  /// delivery and accounting order is what makes rounds thread-independent.
  template <typename Absorb>
  void Accept(ShuffleRun<K, V>&& run, Absorb&& absorb) {
    const size_t n = run.size();
    pairs_ += n;
    wire_bytes_ += wire_(run.keys.data(), run.values.data(), n);
    if (!sorted_) {
      const K* k = run.keys.data();
      const V* v = run.values.data();
      for (size_t i = 0; i < n; ++i) absorb(k[i], v[i]);
      return;  // streaming: the run dies here, nothing is retained
    }
    WAVEMR_DCHECK(run.sorted || n < 2) << "sorted plane fed an unsorted run";
    resident_bytes_ += run.PayloadBytes();
    if (spill_.ShouldSpill(resident_bytes_)) ++spill_events_;
    runs_.push_back(std::move(run));
  }

  /// Sorted plane: loser-tree merge of every retained run into
  /// `absorb(key, value)`, grouped and sorted by key.
  template <typename Absorb>
  void Merge(Absorb&& absorb) {
    RunMerger<K, V> merger(runs_);
    merger.Drain(absorb);
  }

  uint64_t pairs() const { return pairs_; }
  uint64_t wire_bytes() const { return wire_bytes_; }
  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t spill_events() const { return spill_events_; }
  size_t num_runs() const { return runs_.size(); }

 private:
  WireFn wire_;
  bool sorted_;
  SpillPolicy spill_;
  std::vector<ShuffleRun<K, V>> runs_;  // sorted planes only
  uint64_t pairs_ = 0;
  uint64_t wire_bytes_ = 0;
  uint64_t resident_bytes_ = 0;
  uint64_t spill_events_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_MAPREDUCE_SHUFFLE_H_
