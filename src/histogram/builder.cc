#include "histogram/builder.h"

#include "approx/samplers.h"
#include "approx/send_sketch.h"
#include "core/logging.h"
#include "exact/h_wtopk.h"
#include "exact/send_coef.h"
#include "exact/send_v.h"

namespace wavemr {

const char* AlgorithmName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSendV:
      return "Send-V";
    case AlgorithmKind::kSendCoef:
      return "Send-Coef";
    case AlgorithmKind::kHWTopk:
      return "H-WTopk";
    case AlgorithmKind::kBasicS:
      return "Basic-S";
    case AlgorithmKind::kImprovedS:
      return "Improved-S";
    case AlgorithmKind::kTwoLevelS:
      return "TwoLevel-S";
    case AlgorithmKind::kSendSketch:
      return "Send-Sketch";
  }
  return "Unknown";
}

std::unique_ptr<HistogramAlgorithm> MakeAlgorithm(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSendV:
      return std::make_unique<SendV>();
    case AlgorithmKind::kSendCoef:
      return std::make_unique<SendCoef>();
    case AlgorithmKind::kHWTopk:
      return std::make_unique<HWTopk>();
    case AlgorithmKind::kBasicS:
      return std::make_unique<BasicSampling>();
    case AlgorithmKind::kImprovedS:
      return std::make_unique<ImprovedSampling>();
    case AlgorithmKind::kTwoLevelS:
      return std::make_unique<TwoLevelSampling>();
    case AlgorithmKind::kSendSketch:
      return std::make_unique<SendSketch>();
  }
  WAVEMR_LOG(Fatal) << "unknown algorithm kind";
  return nullptr;
}

StatusOr<BuildResult> BuildWaveletHistogram(const Dataset& dataset,
                                            AlgorithmKind kind,
                                            const BuildOptions& options) {
  return MakeAlgorithm(kind)->Build(dataset, options);
}

std::vector<AlgorithmKind> AllAlgorithms() {
  return {AlgorithmKind::kSendV,     AlgorithmKind::kSendCoef,
          AlgorithmKind::kHWTopk,    AlgorithmKind::kBasicS,
          AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS,
          AlgorithmKind::kSendSketch};
}

std::vector<AlgorithmKind> ExactAlgorithms() {
  return {AlgorithmKind::kSendV, AlgorithmKind::kSendCoef, AlgorithmKind::kHWTopk};
}

std::vector<AlgorithmKind> ApproximateAlgorithms() {
  return {AlgorithmKind::kBasicS, AlgorithmKind::kImprovedS,
          AlgorithmKind::kTwoLevelS, AlgorithmKind::kSendSketch};
}

}  // namespace wavemr
