#include "histogram/builder.h"

#include <cmath>

#include "approx/samplers.h"
#include "approx/send_sketch.h"
#include "core/logging.h"
#include "exact/h_wtopk.h"
#include "exact/send_coef.h"
#include "exact/send_v.h"

namespace wavemr {

Status BuildOptions::Validate() const {
  // k == 0 is deliberately legal: it builds an empty synopsis (see the
  // edge-case tests); k is unsigned so there is no negative case to reject.
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "BuildOptions.epsilon must be a finite value > 0 (sampling rate is "
        "1/(epsilon^2 n)); got " + std::to_string(epsilon));
  }
  if (threads < 0) {
    return Status::InvalidArgument(
        "BuildOptions.threads must be >= 0 (0 = one per hardware thread); "
        "got " + std::to_string(threads));
  }
  if (reduce_tasks < 0) {
    return Status::InvalidArgument(
        "BuildOptions.reduce_tasks must be >= 0 (0 = match the map thread "
        "count); got " + std::to_string(reduce_tasks));
  }
  if (cost_model.shuffle_buffer_bytes == 0) {
    return Status::InvalidArgument(
        "BuildOptions.cost_model.shuffle_buffer_bytes must be > 0 (the "
        "shuffle needs at least one buffered run before spilling)");
  }
  WAVEMR_RETURN_IF_ERROR(io.Validate());
  return Status::OK();
}

const char* AlgorithmName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSendV:
      return "Send-V";
    case AlgorithmKind::kSendCoef:
      return "Send-Coef";
    case AlgorithmKind::kHWTopk:
      return "H-WTopk";
    case AlgorithmKind::kBasicS:
      return "Basic-S";
    case AlgorithmKind::kImprovedS:
      return "Improved-S";
    case AlgorithmKind::kTwoLevelS:
      return "TwoLevel-S";
    case AlgorithmKind::kSendSketch:
      return "Send-Sketch";
  }
  return "Unknown";
}

std::unique_ptr<HistogramAlgorithm> MakeAlgorithm(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSendV:
      return std::make_unique<SendV>();
    case AlgorithmKind::kSendCoef:
      return std::make_unique<SendCoef>();
    case AlgorithmKind::kHWTopk:
      return std::make_unique<HWTopk>();
    case AlgorithmKind::kBasicS:
      return std::make_unique<BasicSampling>();
    case AlgorithmKind::kImprovedS:
      return std::make_unique<ImprovedSampling>();
    case AlgorithmKind::kTwoLevelS:
      return std::make_unique<TwoLevelSampling>();
    case AlgorithmKind::kSendSketch:
      return std::make_unique<SendSketch>();
  }
  WAVEMR_LOG(Fatal) << "unknown algorithm kind";
  return nullptr;
}

StatusOr<AlgorithmKind> ParseAlgorithmKind(const std::string& name) {
  if (name == "send-v") return AlgorithmKind::kSendV;
  if (name == "send-coef") return AlgorithmKind::kSendCoef;
  if (name == "h-wtopk") return AlgorithmKind::kHWTopk;
  if (name == "basic-s") return AlgorithmKind::kBasicS;
  if (name == "improved-s") return AlgorithmKind::kImprovedS;
  if (name == "twolevel-s") return AlgorithmKind::kTwoLevelS;
  if (name == "send-sketch") return AlgorithmKind::kSendSketch;
  return Status::InvalidArgument(
      "unknown algorithm (expected send-v|send-coef|h-wtopk|basic-s|"
      "improved-s|twolevel-s|send-sketch): " + name);
}

StatusOr<BuildResult> BuildWaveletHistogram(const Dataset& dataset,
                                            AlgorithmKind kind,
                                            const BuildOptions& options) {
  WAVEMR_RETURN_IF_ERROR(options.Validate());
  auto result = MakeAlgorithm(kind)->Build(dataset, options);
  if (result.ok()) result->algorithm = AlgorithmName(kind);
  return result;
}

std::vector<AlgorithmKind> AllAlgorithms() {
  return {AlgorithmKind::kSendV,     AlgorithmKind::kSendCoef,
          AlgorithmKind::kHWTopk,    AlgorithmKind::kBasicS,
          AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS,
          AlgorithmKind::kSendSketch};
}

std::vector<AlgorithmKind> ExactAlgorithms() {
  return {AlgorithmKind::kSendV, AlgorithmKind::kSendCoef, AlgorithmKind::kHWTopk};
}

std::vector<AlgorithmKind> ApproximateAlgorithms() {
  return {AlgorithmKind::kBasicS, AlgorithmKind::kImprovedS,
          AlgorithmKind::kTwoLevelS, AlgorithmKind::kSendSketch};
}

}  // namespace wavemr
