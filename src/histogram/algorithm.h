#ifndef WAVEMR_HISTOGRAM_ALGORITHM_H_
#define WAVEMR_HISTOGRAM_ALGORITHM_H_

#include <cstdint>
#include <string>

#include "core/io.h"
#include "core/status.h"
#include "data/dataset.h"
#include "mapreduce/cluster.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/stats.h"
#include "sketch/wavelet_gcs.h"
#include "wavelet/histogram.h"

namespace wavemr {

class HistogramSnapshot;  // serve/snapshot.h; definition lives in the serve layer

/// Knobs shared by every histogram-construction algorithm. Defaults mirror
/// the paper's defaults (k=30, epsilon scaled to the dataset, the 16-machine
/// cluster, 50% available bandwidth).
struct BuildOptions {
  /// Number of retained wavelet coefficients (the paper's k, default 30).
  size_t k = 30;

  /// Sampling error parameter (sampling algorithms): level-1 rate is
  /// p = min(1, 1/(epsilon^2 n)).
  double epsilon = 0.01;

  /// Randomness for samplers and sketches; fixed seed => reproducible runs.
  uint64_t seed = 123;

  /// Worker threads for map-task execution: 1 = serial (default), 0 = one
  /// per hardware thread, N > 1 = a pool of N. Results are bit-identical for
  /// every value; only wall-clock changes (see mapreduce/job.h RunRound).
  int threads = 1;

  /// Key-range reduce partitions for sorted-shuffle rounds: 0 = match the
  /// round's map thread count (default), N >= 1 = exactly N. Bit-identical
  /// results for every value, like threads.
  int reduce_tasks = 0;

  /// Force Hadoop's sorted reducer delivery on every round, including the
  /// rounds that default to streaming delivery (Send-V, the samplers,
  /// Send-Sketch). Changes the order pairs reach the reducer -- so results
  /// may differ from the streaming default -- but stays deterministic, and
  /// routes every algorithm through the retained-run/spill path (the
  /// spill-stress CI lane uses it to exercise external spills everywhere).
  bool force_sorted_shuffle = false;

  /// GCS configuration for Send-Sketch (total_bytes 0 = paper's rule).
  WaveletGcsOptions gcs;

  /// Simulated execution environment.
  ClusterSpec cluster = ClusterSpec::PaperCluster();
  CostModel cost_model;

  /// Spill I/O plane: backend selection (--spill-io), queue/prefetch depth,
  /// retry budget, and the consolidated shuffle-buffer override (0 inherits
  /// the deprecated CostModel::shuffle_buffer_bytes). Bit-identical results
  /// for every setting; only wall-clock changes.
  IoOptions io;

  // ---- ablation switches (DESIGN.md section 5) ----

  /// Send-V: emit one (x,1) pair per record and rely on the engine Combiner
  /// instead of aggregating in the mapper's hash map (Hadoop's default
  /// pipeline). Wire cost identical when the combiner is on.
  bool send_v_emit_per_record = false;
  /// Send-V: disable combining entirely (per-record pairs hit the network).
  bool send_v_disable_combiner = false;
  /// Exact mappers: use the dense O(u) local transform instead of the
  /// O(|v| log u) sparse one (cost-accounting ablation; same results).
  bool use_dense_local_transform = false;

  /// Checks every knob and returns an actionable InvalidArgument for the
  /// first bad one. BuildWaveletHistogram calls this once up front; callers
  /// assembling options by hand (CLIs, benches) need no checks of their own.
  Status Validate() const;
};

/// What every algorithm returns: the k-term synopsis plus the measured
/// communication and simulated running time.
struct BuildResult {
  WaveletHistogram histogram;
  JobStats stats;
  /// Display name of the algorithm that built this ("TwoLevel-S", ...);
  /// filled in by BuildWaveletHistogram.
  std::string algorithm;

  /// Freezes the result into an immutable, versionable HistogramSnapshot for
  /// the serve layer (defined in serve/snapshot.cc; link wavemr_serve).
  HistogramSnapshot ToSnapshot() const;
};

/// Interface of the seven algorithms evaluated in the paper.
class HistogramAlgorithm {
 public:
  virtual ~HistogramAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual StatusOr<BuildResult> Build(const Dataset& dataset,
                                      const BuildOptions& options) = 0;
};

/// CPU cost constants charged by algorithm code on top of the engine's
/// per-record / per-pair baselines (CostModel). One "coefficient op" is a
/// hash-map update inside a transform; sketch counter updates are cheaper
/// (array writes after two hashes).
inline constexpr double kCoeffOpNs = 25.0;
inline constexpr double kSketchCounterNs = 150.0;  // Java-era hashed update
inline constexpr double kStateEntryNs = 10.0;
inline constexpr double kTopKSelectNs = 15.0;

}  // namespace wavemr

#endif  // WAVEMR_HISTOGRAM_ALGORITHM_H_
