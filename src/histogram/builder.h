#ifndef WAVEMR_HISTOGRAM_BUILDER_H_
#define WAVEMR_HISTOGRAM_BUILDER_H_

#include <memory>
#include <vector>

#include "histogram/algorithm.h"

namespace wavemr {

/// The seven algorithms evaluated in the paper.
enum class AlgorithmKind {
  kSendV,        // exact baseline: local frequency vectors
  kSendCoef,     // exact baseline: local coefficients
  kHWTopk,       // exact, 3-round modified TPUT (the paper's contribution)
  kBasicS,       // sampling baseline
  kImprovedS,    // sampling baseline with local threshold (biased)
  kTwoLevelS,    // two-level sampling (the paper's contribution)
  kSendSketch,   // GCS-sketch per split, merged at the reducer
};

/// Display name matching the paper's figures ("Send-V", "TwoLevel-S", ...).
const char* AlgorithmName(AlgorithmKind kind);

/// Parses the CLI spelling ("send-v", "twolevel-s", ...); the inverse of the
/// tools' --algo flag. InvalidArgument lists the accepted names.
StatusOr<AlgorithmKind> ParseAlgorithmKind(const std::string& name);

/// Factory for a fresh algorithm instance.
std::unique_ptr<HistogramAlgorithm> MakeAlgorithm(AlgorithmKind kind);

/// One-call convenience: build a k-term wavelet histogram of `dataset` with
/// the chosen algorithm under the simulated cluster in `options`.
StatusOr<BuildResult> BuildWaveletHistogram(const Dataset& dataset,
                                            AlgorithmKind kind,
                                            const BuildOptions& options);

/// All kinds, in the paper's presentation order.
std::vector<AlgorithmKind> AllAlgorithms();

/// The exact methods / the approximate methods.
std::vector<AlgorithmKind> ExactAlgorithms();
std::vector<AlgorithmKind> ApproximateAlgorithms();

}  // namespace wavemr

#endif  // WAVEMR_HISTOGRAM_BUILDER_H_
