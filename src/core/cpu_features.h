#ifndef WAVEMR_CORE_CPU_FEATURES_H_
#define WAVEMR_CORE_CPU_FEATURES_H_

namespace wavemr {

/// Result of the process-wide CPU capability probe. Probed exactly once (on
/// first use) and shared by every runtime-dispatched kernel family: the
/// CRC32C hardware path in core/crc32c.cc and the SIMD kernel tier in
/// core/simd.h both key off this struct instead of issuing their own CPUID /
/// getauxval calls.
struct CpuFeatures {
  bool sse42 = false;      ///< x86 SSE4.2 (hardware CRC32C instruction).
  bool avx2 = false;       ///< x86 AVX2 (4x 64-bit integer / 4x double lanes).
  bool neon = false;       ///< AArch64 Advanced SIMD (baseline on AArch64).
  bool arm_crc32 = false;  ///< AArch64 CRC32 extension.
};

/// The probed features of this machine. First call runs the probe; later
/// calls return the cached result. Thread-safe.
const CpuFeatures& GetCpuFeatures();

/// Vector instruction tiers the SIMD kernel table can be compiled for. A
/// binary only ever contains the tiers its target architecture can express
/// (AVX2 on x86-64 via per-function target attributes, NEON on AArch64);
/// kScalar is always present and is the bit-identity reference.
enum class SimdTier { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Stable lowercase name for logs / bench output: "scalar", "avx2", "neon".
const char* SimdTierName(SimdTier tier);

/// Resolves a WAVEMR_SIMD request string against the probed features.
/// Accepted requests: "auto" (or null/empty) picks the best supported tier,
/// "avx2" / "neon" force that tier when the hardware and build support it
/// (degrading to scalar when not), "scalar" forces the fallback. Anything
/// else is treated as "auto". Pure function so tests can exercise every
/// combination without touching the environment.
SimdTier ResolveSimdTier(const char* request, const CpuFeatures& cpu);

/// Best tier this binary + hardware supports, ignoring WAVEMR_SIMD.
SimdTier BestSimdTier();

/// The tier the process starts with: ResolveSimdTier(getenv("WAVEMR_SIMD")).
/// Computed once; the test-only override in core/simd.h layers on top of
/// this rather than mutating it.
SimdTier ActiveSimdTier();

}  // namespace wavemr

#endif  // WAVEMR_CORE_CPU_FEATURES_H_
