#include "core/failpoint.h"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <mutex>

namespace wavemr {
namespace failpoint_internal {

std::atomic<int> g_armed{-1};

namespace {

enum class Mode { kError, kTimes, kEvery };

struct Site {
  Mode mode = Mode::kError;
  uint64_t n = 0;  // kTimes: trips remaining budget; kEvery: period
  int err = EIO;
  bool armed = true;
  uint64_t hits = 0;
  uint64_t trips = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;  // ordered for stable AllStats output
  bool env_parsed = false;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: failpoints live process-long
  return *r;
}

// Recomputes the fast-path arming count. Caller holds registry().mu.
void PublishArmedCount(Registry& r) {
  int armed = 0;
  for (const auto& [name, site] : r.sites)
    if (site.armed) ++armed;
  g_armed.store(armed, std::memory_order_relaxed);
}

bool ParseErrno(const std::string& tok, int* out) {
  static const std::map<std::string, int> kNames = {
      {"EIO", EIO},       {"ENOSPC", ENOSPC},
      {"EINTR", EINTR},   {"EAGAIN", EAGAIN},
      {"EPIPE", EPIPE},   {"ECONNRESET", ECONNRESET},
  };
  auto it = kNames.find(tok);
  if (it != kNames.end()) {
    *out = it->second;
    return true;
  }
  if (tok.empty()) return false;
  char* end = nullptr;
  long v = std::strtol(tok.c_str(), &end, 10);
  if (*end != '\0' || v <= 0 || v > 4096) return false;
  *out = static_cast<int>(v);
  return true;
}

// Parses one "site=action" term into the registry. Caller holds mu.
Status ApplyTerm(Registry& r, const std::string& term) {
  auto bad = [&term](const std::string& why) {
    return Status::InvalidArgument("bad failpoint term \"" + term +
                                   "\": " + why);
  };
  const size_t eq = term.find('=');
  if (eq == std::string::npos || eq == 0)
    return bad("expected site=action");
  const std::string site = term.substr(0, eq);
  std::vector<std::string> parts;
  for (size_t pos = eq + 1; pos <= term.size();) {
    const size_t colon = term.find(':', pos);
    const size_t end = colon == std::string::npos ? term.size() : colon;
    parts.push_back(term.substr(pos, end - pos));
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (parts.empty() || parts[0].empty()) return bad("missing action");
  const std::string& action = parts[0];

  if (action == "off") {
    if (parts.size() != 1) return bad("off takes no arguments");
    auto it = r.sites.find(site);
    if (it != r.sites.end()) it->second.armed = false;
    return Status::OK();
  }

  Site s;
  size_t err_idx = 1;
  if (action == "error") {
    s.mode = Mode::kError;
  } else if (action == "once") {
    s.mode = Mode::kTimes;
    s.n = 1;
  } else if (action == "times" || action == "every") {
    s.mode = action == "times" ? Mode::kTimes : Mode::kEvery;
    if (parts.size() < 2) return bad(action + " needs a count");
    char* end = nullptr;
    long n = std::strtol(parts[1].c_str(), &end, 10);
    if (parts[1].empty() || *end != '\0' || n < 1)
      return bad("count must be a positive integer");
    s.n = static_cast<uint64_t>(n);
    err_idx = 2;
  } else {
    return bad("unknown action \"" + action + "\"");
  }
  if (parts.size() > err_idx + 1) return bad("too many arguments");
  if (parts.size() == err_idx + 1 && !ParseErrno(parts[err_idx], &s.err))
    return bad("bad errno \"" + parts[err_idx] + "\"");

  // Fresh arming resets the site's counters so every:N phases predictably.
  r.sites[site] = s;
  return Status::OK();
}

// Caller holds mu. Parses WAVEMR_FAILPOINTS exactly once; a malformed env
// spec is ignored (tests can't observe stderr here, and dying in a library
// constructor over an env typo would be worse than not injecting).
void EnsureEnvParsed(Registry& r) {
  if (r.env_parsed) return;
  r.env_parsed = true;
  const char* env = std::getenv("WAVEMR_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') {
    PublishArmedCount(r);
    return;
  }
  const std::string spec(env);
  for (size_t pos = 0; pos <= spec.size();) {
    const size_t comma = spec.find(',', pos);
    const size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > pos) (void)ApplyTerm(r, spec.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  PublishArmedCount(r);
}

}  // namespace

int HitSlow(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  EnsureEnvParsed(r);
  auto it = r.sites.find(site);
  if (it == r.sites.end() || !it->second.armed) return 0;
  Site& s = it->second;
  ++s.hits;
  switch (s.mode) {
    case Mode::kError:
      ++s.trips;
      return s.err;
    case Mode::kTimes:
      if (s.trips < s.n) {
        ++s.trips;
        return s.err;
      }
      return 0;
    case Mode::kEvery:
      if (s.hits % s.n == 0) {
        ++s.trips;
        return s.err;
      }
      return 0;
  }
  return 0;
}

}  // namespace failpoint_internal

Status Failpoints::ArmFromSpec(const std::string& spec) {
#if defined(WAVEMR_FAILPOINTS_DISABLED)
  (void)spec;
  return Status::FailedPrecondition(
      "failpoints compiled out (-DWAVEMR_FAILPOINTS=OFF)");
#else
  auto& r = failpoint_internal::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  failpoint_internal::EnsureEnvParsed(r);
  const auto backup = r.sites;  // a bad term rolls the whole spec back
  Status st = Status::OK();
  for (size_t pos = 0; pos <= spec.size() && st.ok();) {
    const size_t comma = spec.find(',', pos);
    const size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > pos) {
      st = failpoint_internal::ApplyTerm(r, spec.substr(pos, end - pos));
    } else if (!spec.empty()) {
      // "" is a no-op, but "a=error,," has an empty term: reject the typo.
      st = Status::InvalidArgument("empty term in failpoint spec \"" + spec +
                                   "\"");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (!st.ok()) r.sites = backup;
  failpoint_internal::PublishArmedCount(r);
  return st;
#endif
}

void Failpoints::Disarm(const std::string& site) {
  auto& r = failpoint_internal::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  failpoint_internal::EnsureEnvParsed(r);
  auto it = r.sites.find(site);
  if (it != r.sites.end()) it->second.armed = false;
  failpoint_internal::PublishArmedCount(r);
}

void Failpoints::DisarmAll() {
  auto& r = failpoint_internal::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  failpoint_internal::EnsureEnvParsed(r);
  r.sites.clear();
  failpoint_internal::PublishArmedCount(r);
}

Failpoints::SiteStats Failpoints::StatsFor(const std::string& site) {
  auto& r = failpoint_internal::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  SiteStats out;
  out.site = site;
  auto it = r.sites.find(site);
  if (it != r.sites.end()) {
    out.hits = it->second.hits;
    out.trips = it->second.trips;
  }
  return out;
}

std::vector<Failpoints::SiteStats> Failpoints::AllStats() {
  auto& r = failpoint_internal::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<SiteStats> out;
  out.reserve(r.sites.size());
  for (const auto& [name, site] : r.sites)
    out.push_back(SiteStats{name, site.hits, site.trips});
  return out;
}

uint64_t Failpoints::TotalTrips() {
  auto& r = failpoint_internal::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  uint64_t total = 0;
  for (const auto& [name, site] : r.sites) total += site.trips;
  return total;
}

}  // namespace wavemr
