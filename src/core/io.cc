#include "core/io.h"

#include <algorithm>

namespace wavemr {

const char* IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kSync: return "sync";
    case IoBackendKind::kAsync: return "async";
    case IoBackendKind::kAuto: return "auto";
  }
  return "unknown";
}

StatusOr<IoBackendKind> ParseIoBackendKind(const std::string& name) {
  if (name == "sync") return IoBackendKind::kSync;
  if (name == "async") return IoBackendKind::kAsync;
  if (name == "auto") return IoBackendKind::kAuto;
  return Status::InvalidArgument(
      "spill-io backend must be one of sync|async|auto; got \"" + name + "\"");
}

Status IoOptions::Validate() const {
  if (queue_depth < 1 || queue_depth > 1024) {
    return Status::InvalidArgument(
        "IoOptions.queue_depth must be in [1, 1024] (spill writes in flight); "
        "got " +
        std::to_string(queue_depth));
  }
  if (prefetch_depth < 0 || prefetch_depth > 64) {
    return Status::InvalidArgument(
        "IoOptions.prefetch_depth must be in [0, 64] (0 disables merge "
        "prefetch); got " +
        std::to_string(prefetch_depth));
  }
  if (retry.max_attempts < 1) {
    return Status::InvalidArgument(
        "IoOptions.retry.max_attempts must be >= 1 (total tries, not "
        "retries); got " +
        std::to_string(retry.max_attempts));
  }
  if (retry.backoff_initial_us < 0) {
    return Status::InvalidArgument(
        "IoOptions.retry.backoff_initial_us must be >= 0; got " +
        std::to_string(retry.backoff_initial_us));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IoBufferArena
// ---------------------------------------------------------------------------

void IoBuffer::Release() {
  if (arena_ != nullptr && data_ != nullptr) {
    arena_->Recycle(std::move(data_), capacity_);
  }
  arena_ = nullptr;
  data_.reset();
  capacity_ = 0;
}

IoBuffer IoBufferArena::Acquire(size_t min_bytes) {
  if (min_bytes == 0) min_bytes = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // free_ is sorted by capacity: the first entry that fits is the best fit.
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->first >= min_bytes) {
        const size_t capacity = it->first;
        std::unique_ptr<std::byte[]> data = std::move(it->second);
        free_.erase(it);
        reuses_.fetch_add(1, std::memory_order_relaxed);
        return IoBuffer(this, std::move(data), capacity);
      }
    }
  }
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return IoBuffer(this, std::make_unique<std::byte[]>(min_bytes), min_bytes);
}

void IoBufferArena::Recycle(std::unique_ptr<std::byte[]> data,
                            size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= kMaxFreeBuffers) return;  // drop: storage frees here
  auto it = std::lower_bound(
      free_.begin(), free_.end(), capacity,
      [](const auto& entry, size_t cap) { return entry.first < cap; });
  free_.insert(it, std::make_pair(capacity, std::move(data)));
}

// ---------------------------------------------------------------------------
// SyncIoBackend
// ---------------------------------------------------------------------------

SyncIoBackend::SyncIoBackend(IoOptions options)
    : IoBackend(std::move(options)) {}

IoTicket SyncIoBackend::Submit(std::function<void()> job) {
  job();
  std::promise<void> done;
  done.set_value();
  return IoTicket(done.get_future());
}

// ---------------------------------------------------------------------------
// AsyncIoBackend
// ---------------------------------------------------------------------------

AsyncIoBackend::AsyncIoBackend(IoOptions options)
    : IoBackend(std::move(options)) {
  // One worker per in-flight slot keeps the queue drained at full depth;
  // clamp so a large --io-queue-depth bounds memory, not thread count.
  const int workers =
      std::clamp(this->options().queue_depth, 1, 16);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncIoBackend::~AsyncIoBackend() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

IoTicket AsyncIoBackend::Submit(std::function<void()> job) {
  // packaged_task is move-only; std::function needs copyable callables.
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(job));
  IoTicket ticket(task->get_future());
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([task] { (*task)(); });
  }
  cv_.notify_one();
  return ticket;
}

void AsyncIoBackend::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || queue_head_ < queue_.size(); });
      if (queue_head_ >= queue_.size()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_[queue_head_]);
      ++queue_head_;
      if (queue_head_ == queue_.size()) {
        queue_.clear();
        queue_head_ = 0;
      }
    }
    job();  // jobs never throw (IoBackend contract)
  }
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

std::unique_ptr<IoBackend> MakeIoBackend(const IoOptions& options) {
  switch (options.ResolvedBackend()) {
    case IoBackendKind::kAsync:
      return std::make_unique<AsyncIoBackend>(options);
    case IoBackendKind::kSync:
    case IoBackendKind::kAuto:  // ResolvedBackend never returns kAuto
      break;
  }
  return std::make_unique<SyncIoBackend>(options);
}

IoBackend* DefaultSyncIoBackend() {
  static SyncIoBackend* backend = new SyncIoBackend();
  return backend;
}

}  // namespace wavemr
