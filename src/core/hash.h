#ifndef WAVEMR_CORE_HASH_H_
#define WAVEMR_CORE_HASH_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace wavemr {

/// Polynomial hash over the Mersenne prime 2^61 - 1 with k random
/// coefficients, giving a k-wise independent family. Sketches (Count-Sketch,
/// AMS, GCS) need 2- and 4-wise independence for their variance guarantees;
/// this is the standard construction used by streaming implementations.
class PolyHash {
 public:
  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

  /// degree k >= 1: number of coefficients (k-wise independence).
  PolyHash(uint64_t seed, int degree);

  /// Raw hash value in [0, 2^61 - 1).
  uint64_t Hash(uint64_t x) const;

  /// Hash reduced to [0, range).
  uint64_t Bucket(uint64_t x, uint64_t range) const { return Hash(x) % range; }

  /// +1/-1 sign derived from the low bit of the hash.
  int Sign(uint64_t x) const { return (Hash(x) & 1) ? 1 : -1; }

  /// The polynomial's coefficients, c0 first. Exposed so kernels that batch
  /// many evaluations (the GCS update loop) can copy them into flat arrays
  /// and skip the per-call vector indirection while producing identical
  /// hash values.
  const std::vector<uint64_t>& coeffs() const { return coeffs_; }

 private:
  std::vector<uint64_t> coeffs_;
};

/// Multiplies a*b mod (2^61 - 1) without overflow using 128-bit arithmetic.
/// Returns the canonical residue (< 2^61 - 1 for in-range inputs). Inline so
/// the batched sketch kernels and the SIMD scalar reference (core/simd.cc)
/// share one definition that the compiler can fold into their loops.
inline uint64_t MulMod61(uint64_t a, uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod & PolyHash::kPrime);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t res = lo + hi;
  if (res >= PolyHash::kPrime) res -= PolyHash::kPrime;
  return res;
}

/// Degree-2 polynomial c0 + c1*x over GF(2^61 - 1) for pre-reduced
/// xr < 2^61 - 1, in the exact Horner order of PolyHash::Hash so values are
/// bit-identical to PolyHash(seed, 2).Hash(x). Coefficients c0-first, as
/// returned by PolyHash::coeffs().
inline uint64_t PolyHash2(const uint64_t c[2], uint64_t xr) {
  uint64_t acc = MulMod61(c[1], xr) + c[0];
  return acc >= PolyHash::kPrime ? acc - PolyHash::kPrime : acc;
}

/// Degree-4 polynomial, same Horner order (and per-step conditional
/// subtraction) as PolyHash::Hash with 4 coefficients.
inline uint64_t PolyHash4(const uint64_t c[4], uint64_t xr) {
  uint64_t acc = MulMod61(c[3], xr) + c[2];
  if (acc >= PolyHash::kPrime) acc -= PolyHash::kPrime;
  acc = MulMod61(acc, xr) + c[1];
  if (acc >= PolyHash::kPrime) acc -= PolyHash::kPrime;
  acc = MulMod61(acc, xr) + c[0];
  return acc >= PolyHash::kPrime ? acc - PolyHash::kPrime : acc;
}

}  // namespace wavemr

#endif  // WAVEMR_CORE_HASH_H_
