#ifndef WAVEMR_CORE_IO_H_
#define WAVEMR_CORE_IO_H_

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/status.h"

namespace wavemr {

/// Asynchronous I/O data plane.
///
/// Everything that moves spill bytes between memory and disk goes through
/// one pluggable seam, IoBackend, so the engine has exactly two data paths
/// that share one typed error table:
///
///   - SyncIoBackend: the reference. Submit() runs the job inline on the
///     calling thread; behavior is byte-for-byte the pre-async engine.
///   - AsyncIoBackend: a submission queue drained by dedicated I/O worker
///     threads. The shuffle plane overlaps spill serialization with map
///     absorption, and FileRunCursor prefetches its next checksum block
///     while the loser-tree merge drains the current one.
///
/// The async engine is the portable worker-thread implementation: read jobs
/// use positional pread (thread-safe on a shared fd), write jobs stream with
/// buffered stdio. The seam deliberately admits kernel submission engines --
/// an io_uring backend slots in behind the same Submit() contract when
/// <liburing.h> is available at build time (it is not baked into the CI
/// image, and glibc's POSIX AIO is itself a hidden worker-thread pool, so
/// the explicit pool is the honest default).
///
/// Contract every backend must keep (docs/async-io.md):
///   - Jobs never throw; failures travel as IoResult values in job state.
///   - Submit() returns a waitable IoTicket; Wait() is the only completion
///     point. Callers own job lifetime: a job's captured state must outlive
///     its ticket's Wait().
///   - Results are bit-identical across backends for every workload: the
///     async plane changes only *when* bytes move, never what they contain
///     or the order consumers observe them in.

// ---------------------------------------------------------------------------
// IoResult: the typed outcome of one I/O operation.
// ---------------------------------------------------------------------------

/// Typed outcome of one spill I/O operation. `op` says which syscall family
/// failed (kNone = success); `err` carries errno when the OS produced one
/// (0 for pure format/checksum violations). Shared by the sync and async
/// paths -- there is exactly one error-classification table.
struct IoResult {
  enum class Op {
    kNone = 0,  // success
    kOpen,
    kSeek,
    kRead,
    kWrite,
    kClose,
    kChecksum,  // stored CRC32C does not match the bytes read
    kFormat,    // truncated file / bad magic / header mismatch
  };

  Op op = Op::kNone;
  int err = 0;
  std::string detail;

  bool ok() const { return op == Op::kNone; }

  static const char* OpName(Op op) {
    switch (op) {
      case Op::kNone: return "ok";
      case Op::kOpen: return "open";
      case Op::kSeek: return "seek";
      case Op::kRead: return "read";
      case Op::kWrite: return "write";
      case Op::kClose: return "close";
      case Op::kChecksum: return "checksum";
      case Op::kFormat: return "format";
    }
    return "unknown";
  }

  std::string ToString() const {
    if (ok()) return "ok";
    std::string out = "spill ";
    out += OpName(op);
    out += " error";
    if (err != 0) {
      out += " (";
      out += std::strerror(err);
      out += ")";
    }
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    return out;
  }

  Status ToStatus() const {
    return ok() ? Status::OK() : Status::IOError(ToString());
  }
};

// ---------------------------------------------------------------------------
// IoRetryPolicy: one transient-errno table for every path.
// ---------------------------------------------------------------------------

/// Retry budget for transient I/O errno. An attempt that fails with a
/// transient code is retried after an exponentially growing backoff, up to
/// max_attempts total tries; everything else (and exhaustion) surfaces the
/// typed error to the caller.
struct IoRetryPolicy {
  int max_attempts = 4;
  int backoff_initial_us = 100;  // doubles per retry: 100, 200, 400, ...

  /// ENOSPC counts as transient on the write path: spills race with other
  /// tenants of the temp volume and space can free up between attempts.
  /// (If it does not, exhaustion lands in the resident-run fallback.)
  static bool IsTransient(int err) {
    return err == EINTR || err == EAGAIN || err == ENOSPC || err == ENOBUFS;
  }

  void BackoffSleep(int attempt) const {
    const int64_t us = static_cast<int64_t>(backoff_initial_us) << attempt;
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
};

// ---------------------------------------------------------------------------
// IoOptions: the consolidated I/O knobs.
// ---------------------------------------------------------------------------

/// Which I/O engine the spill data plane runs on.
enum class IoBackendKind {
  kSync,   // inline reference path (no overlap)
  kAsync,  // submission queue + I/O workers (overlapped writes, prefetch)
  kAuto,   // best engine available on this build (currently kAsync)
};

const char* IoBackendKindName(IoBackendKind kind);

/// Parses "sync" | "async" | "auto" (the --spill-io flag values).
StatusOr<IoBackendKind> ParseIoBackendKind(const std::string& name);

/// Every knob of the spill I/O plane in one struct, plumbed BuildOptions ->
/// MrEnv -> ShufflePlane/FileRunCursor. Consolidates what used to be spread
/// over CostModel::shuffle_buffer_bytes (still honored as the deprecated
/// spelling) and the per-call SpillIoPolicy retry arguments.
struct IoOptions {
  /// Engine selection (--spill-io). kAuto resolves via ResolvedBackend().
  IoBackendKind backend = IoBackendKind::kAuto;

  /// Retained-run budget before a sorted shuffle spills to disk. 0 = inherit
  /// the deprecated CostModel::shuffle_buffer_bytes (which still defaults to
  /// 256 MiB); nonzero here wins over the CostModel field.
  uint64_t shuffle_buffer_bytes = 0;

  /// Maximum spill writes in flight on the async backend (--io-queue-depth).
  /// Bounds the run columns pinned in memory awaiting serialization; the
  /// submitter blocks on the oldest write once the queue is full.
  int queue_depth = 4;

  /// Checksum blocks each file cursor reads ahead of the merge
  /// (--io-prefetch-depth). 0 disables prefetch even on the async backend
  /// (reads happen inline, exactly the sync path). 1 = double buffering.
  int prefetch_depth = 1;

  /// Transient-errno retry budget shared by every spill read and write.
  IoRetryPolicy retry;

  /// Checks every knob and returns an actionable InvalidArgument for the
  /// first bad one (same contract as BuildOptions::Validate, which calls
  /// this).
  Status Validate() const;

  /// kAuto resolved to a concrete engine: the overlapped worker-thread
  /// backend. (Overlap pays even on one CPU -- the driver computes while the
  /// kernel moves bytes -- and bit-identity makes the choice invisible.)
  IoBackendKind ResolvedBackend() const {
    return backend == IoBackendKind::kAuto ? IoBackendKind::kAsync : backend;
  }
};

// ---------------------------------------------------------------------------
// IoBufferArena: recycling block-buffer pool.
// ---------------------------------------------------------------------------

class IoBufferArena;

/// RAII lease on one arena buffer. Destruction (or Release) returns the
/// storage to the arena's freelist for the next Acquire; holding the IoBuffer
/// is what keeps the bytes valid -- never retain a raw data() pointer past
/// the lease (the ASan lanes run the arena tests to catch exactly that).
class IoBuffer {
 public:
  IoBuffer() = default;
  IoBuffer(IoBuffer&& other) noexcept { *this = std::move(other); }
  IoBuffer& operator=(IoBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      arena_ = other.arena_;
      data_ = std::move(other.data_);
      capacity_ = other.capacity_;
      other.arena_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }
  IoBuffer(const IoBuffer&) = delete;
  IoBuffer& operator=(const IoBuffer&) = delete;
  ~IoBuffer() { Release(); }

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  size_t capacity() const { return capacity_; }
  explicit operator bool() const { return data_ != nullptr; }

  /// Returns the storage to the arena now (idempotent).
  void Release();

 private:
  friend class IoBufferArena;
  IoBuffer(IoBufferArena* arena, std::unique_ptr<std::byte[]> data,
           size_t capacity)
      : arena_(arena), data_(std::move(data)), capacity_(capacity) {}

  IoBufferArena* arena_ = nullptr;
  std::unique_ptr<std::byte[]> data_;
  size_t capacity_ = 0;
};

/// Thread-safe recycling pool for I/O staging buffers. Acquire hands out the
/// smallest free buffer that fits (best fit) or allocates a fresh one;
/// releasing recycles the storage instead of freeing it, so a merge over R
/// file cursors reuses a few block-sized allocations for the whole round
/// instead of mallocing per refill. The freelist is bounded; releases past
/// the bound free their storage.
class IoBufferArena {
 public:
  /// Freelist bound: enough for every cursor of a wide merge to park its
  /// slots between rounds without holding unbounded memory.
  static constexpr size_t kMaxFreeBuffers = 64;

  IoBufferArena() = default;
  IoBufferArena(const IoBufferArena&) = delete;
  IoBufferArena& operator=(const IoBufferArena&) = delete;

  /// A buffer with capacity >= min_bytes (recycled when one fits).
  IoBuffer Acquire(size_t min_bytes);

  /// Lifetime telemetry (tests assert reuse actually happens).
  uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }
  uint64_t reuses() const { return reuses_.load(std::memory_order_relaxed); }

 private:
  friend class IoBuffer;
  void Recycle(std::unique_ptr<std::byte[]> data, size_t capacity);

  std::mutex mu_;
  /// (capacity, storage), kept sorted by capacity for best-fit Acquire.
  std::vector<std::pair<size_t, std::unique_ptr<std::byte[]>>> free_;
  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> reuses_{0};
};

// ---------------------------------------------------------------------------
// IoBackend: the pluggable engine.
// ---------------------------------------------------------------------------

/// Waitable handle for one submitted job. Wait() blocks until the job body
/// finished (immediately satisfied on the sync backend); a default-
/// constructed ticket is not valid.
class IoTicket {
 public:
  IoTicket() = default;
  explicit IoTicket(std::future<void> done) : done_(std::move(done)) {}

  bool valid() const { return done_.valid(); }
  void Wait() {
    if (done_.valid()) done_.get();
  }

 private:
  std::future<void> done_;
};

/// The pluggable I/O engine. One instance is shared by a whole MrEnv (all
/// rounds, all planes, all cursors); implementations are thread-safe.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual const char* name() const = 0;

  /// True when Submit actually overlaps: jobs run on I/O workers and the
  /// caller continues. False = the sync reference (jobs ran inline before
  /// Submit returned; consumers skip their overlap machinery entirely).
  virtual bool async() const = 0;

  /// Schedules `job`. Jobs must not throw: failures are recorded in the
  /// job's own captured state as IoResult values and surfaced by the
  /// consumer at its deterministic observation point.
  virtual IoTicket Submit(std::function<void()> job) = 0;

  /// The options this backend was built with (queue/prefetch depth, retry).
  const IoOptions& options() const { return options_; }

  /// Shared staging-buffer pool for this backend's consumers.
  IoBufferArena& arena() { return arena_; }

 protected:
  explicit IoBackend(IoOptions options) : options_(std::move(options)) {}

 private:
  IoOptions options_;
  IoBufferArena arena_;
};

/// Reference backend: Submit runs the job inline. Zero threads, zero
/// reordering -- byte-for-byte the pre-async engine, kept selectable forever
/// as the bit-identity baseline (--spill-io=sync).
class SyncIoBackend : public IoBackend {
 public:
  explicit SyncIoBackend(IoOptions options = IoOptions());
  const char* name() const override { return "sync"; }
  bool async() const override { return false; }
  IoTicket Submit(std::function<void()> job) override;
};

/// Overlapped backend: a bounded submission queue drained by dedicated I/O
/// worker threads (one per queue_depth slot, clamped). Jobs run in
/// submission order per worker but complete in any order; consumers
/// serialize on their tickets.
class AsyncIoBackend : public IoBackend {
 public:
  explicit AsyncIoBackend(IoOptions options = IoOptions());
  ~AsyncIoBackend() override;
  const char* name() const override { return "async"; }
  bool async() const override { return true; }
  IoTicket Submit(std::function<void()> job) override;

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> queue_;  // guarded by mu_
  size_t queue_head_ = 0;                     // guarded by mu_
  bool stop_ = false;                         // guarded by mu_
  std::vector<std::thread> workers_;
};

/// Builds the backend `options.ResolvedBackend()` names.
std::unique_ptr<IoBackend> MakeIoBackend(const IoOptions& options);

/// Process-wide sync backend used when a caller passes no backend (planes
/// and cursors constructed by tests/benches keep their old signatures).
IoBackend* DefaultSyncIoBackend();

}  // namespace wavemr

#endif  // WAVEMR_CORE_IO_H_
