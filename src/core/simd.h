#ifndef WAVEMR_CORE_SIMD_H_
#define WAVEMR_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "core/cpu_features.h"

namespace wavemr {

/// Runtime-dispatched SIMD kernel table for the sketch + wavelet hot loops.
///
/// One table exists per tier the binary can express (always kScalar; kAvx2 on
/// x86-64 via per-function target attributes, kNeon on AArch64). The active
/// table is chosen once at startup from the shared CPU probe
/// (core/cpu_features.h) and the WAVEMR_SIMD override, then read through
/// SimdK(). Every kernel is bit-identity-constrained: for any input, every
/// tier must produce exactly the same bytes as the scalar table, so swapping
/// tiers can never change a synopsis, an SSE, or a counter anywhere in the
/// engine. Integer kernels are exact by construction; the floating-point
/// kernels fix an evaluation order (documented per kernel) that every tier
/// implements, and simd.cc is compiled with -ffp-contract=off so no tier
/// silently fuses a multiply-add the others kept separate.
///
/// This is also the seam a GPU backend would plug into: docs/simd.md
/// describes the contract a kCuda/kOpenCL table would have to satisfy.
struct SimdKernels {
  /// Tier this table implements (for logs and tier-guarded gates).
  SimdTier tier;

  // --- Mersenne-61 integer hash lanes (GCS / sketch math) -----------------
  // All inputs must be < 2^61; outputs are the canonical residue mod
  // 2^61 - 1, bit-identical to core/hash.h MulMod61 / PolyHash::Hash.

  /// out[l] = a[l] * b[l] mod (2^61 - 1).
  void (*mulmod61_x4)(const uint64_t a[4], const uint64_t b[4],
                      uint64_t out[4]);

  /// Degree-2 polynomial per lane: out[l] = (c1[l]*x[l] + c0[l]) mod p,
  /// Horner order matching PolyHash::Hash.
  void (*hash2_x4)(const uint64_t c0[4], const uint64_t c1[4],
                   const uint64_t x[4], uint64_t out[4]);

  /// Degree-4 polynomial per lane, same Horner order (and the same
  /// conditional subtraction after every step) as PolyHash::Hash.
  void (*hash4_x4)(const uint64_t c0[4], const uint64_t c1[4],
                   const uint64_t c2[4], const uint64_t c3[4],
                   const uint64_t x[4], uint64_t out[4]);

  /// GCS per-item hash for one repetition: for 4 items with broadcast
  /// coefficients, out[l] = sub | (sign << 31) where
  ///   sub  = Hash2(ci, items[l] % p) & sub_mask     (sub_mask != 0), or
  ///          Hash2(ci, items[l] % p) % subbuckets   (sub_mask == 0)
  ///   sign = Hash4(cs, items[l] % p) & 1.
  /// This is exactly the packed memo-slot format of
  /// GroupCountSketch::UpdateBatchImpl; callers must ensure
  /// subbuckets <= 2^30 so sub fits in 31 bits.
  void (*gcs_sub_sign_x4)(const uint64_t ci[2], const uint64_t cs[4],
                          const uint64_t items[4], uint64_t subbuckets,
                          uint64_t sub_mask, uint32_t out[4]);

  /// Block form of gcs_sub_sign_x4: out[i] for i in [0, n), any n. Exists so
  /// the update loop pays one indirect call per (block, repetition) instead
  /// of one per 4 items -- at 4-lane granularity the call overhead eats the
  /// vector win. Same packed-slot contract; vector tiers run whole lane
  /// groups and finish the tail scalar (exact integers, so the seam is
  /// invisible).
  void (*gcs_sub_sign_block)(const uint64_t ci[2], const uint64_t cs[4],
                             const uint64_t* items, size_t n,
                             uint64_t subbuckets, uint64_t sub_mask,
                             uint32_t* out);

  // --- double kernels (wavelet math) --------------------------------------

  /// One ForwardHaar level: for k in [0, half),
  ///   out_coeffs[k] = (in[2k+1] - in[2k]) * norm;
  ///   out_sums[k]   = in[2k] + in[2k+1];
  /// Elementwise sub/add/mul only, so every tier is IEEE-exact equal.
  /// out_coeffs/out_sums must not alias in.
  void (*haar_butterfly)(const double* in, size_t half, double norm,
                         double* out_coeffs, double* out_sums);

  /// Sum of squares with the fixed 4-accumulator order
  ///   (acc0 + acc2) + (acc1 + acc3), then the remainder tail in sequence,
  /// where acc_l sums v[l], v[l+4], v[l+8], ... Every tier implements this
  /// exact association (it is the natural AVX2 horizontal sum), so the
  /// scalar table uses it too.
  double (*sum_squares)(const double* v, size_t n);

  /// One SparseHaar coefficient level: for i in [0, n),
  ///   k        = keys[i] >> shift;
  ///   offset   = keys[i] & block_mask;
  ///   mag      = weights[i] / sqrt_block;
  ///   idx_out[i] = base + k;
  ///   val_out[i] = offset < half ? -mag : mag;
  /// Division and sign flip are IEEE-exact, so tiers agree bit for bit. The
  /// caller applies idx/val to the coefficient map in input order.
  void (*sparse_level)(const uint64_t* keys, const double* weights, size_t n,
                       uint32_t shift, uint64_t block_mask, uint64_t half,
                       uint64_t base, double sqrt_block, uint64_t* idx_out,
                       double* val_out);
};

/// Table for a specific tier. Requesting a tier the binary was not compiled
/// for returns the scalar table.
const SimdKernels& SimdKernelsFor(SimdTier tier);

/// The active table: SimdKernelsFor(ActiveSimdTier()) unless a test override
/// is installed. One atomic load; callers in hot loops should still hoist
/// the reference out of their innermost loop.
const SimdKernels& SimdK();

/// Test hook: repoint SimdK() at the given tier's table (process-wide).
/// Lets bit-identity tests compare tiers in one process without re-exec.
void OverrideSimdTierForTest(SimdTier tier);

}  // namespace wavemr

#endif  // WAVEMR_CORE_SIMD_H_
