#ifndef WAVEMR_CORE_STATUS_H_
#define WAVEMR_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace wavemr {

/// Error categories used throughout the library. Modeled after the
/// RocksDB/Abseil convention: recoverable errors travel through Status,
/// programming errors abort through CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
  kUnimplemented,
  kUnavailable,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error result. The library does not use
/// exceptions; every fallible operation returns Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. `value()` aborts if the
/// StatusOr holds an error; check `ok()` first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl
      : repr_(std::move(status)) {}
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl
      : repr_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define WAVEMR_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::wavemr::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace wavemr

#endif  // WAVEMR_CORE_STATUS_H_
