#ifndef WAVEMR_CORE_FAILPOINT_H_
#define WAVEMR_CORE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace wavemr {

/// Fault-injection failpoints.
///
/// A failpoint is a named site in production code where a test (or an
/// operator chasing a bug) can inject an errno without touching the code
/// under test. Sites are plain string literals checked at the point of the
/// real syscall:
///
///   if (int fe = FailpointHit("spill.write.write")) { fail with errno fe; }
///
/// Nothing trips unless a site is armed, either programmatically
/// (Failpoints::ArmFromSpec, used by tests) or externally via the
/// WAVEMR_FAILPOINTS environment variable / the --failpoints CLI flag.
/// The spec grammar is a comma-separated list of site=action terms:
///
///   spec    := term ("," term)*
///   term    := site "=" action
///   action  := "error" [":" err]        trip on every hit
///            | "once" [":" err]         trip on the first hit only
///            | "times" ":" N [":" err]  trip on the first N hits
///            | "every" ":" N [":" err]  trip on every Nth hit (N >= 1)
///            | "off"                    disarm the site
///   err     := decimal errno | EIO | ENOSPC | EINTR | EAGAIN | EPIPE
///              | ECONNRESET               (default EIO)
///
/// e.g. WAVEMR_FAILPOINTS='spill.write.write=error:ENOSPC' makes every
/// spill-file body write fail with ENOSPC, which the shuffle plane must
/// absorb by retaining runs resident (docs/robustness.md has the full site
/// catalog and the recovery each site proves).
///
/// Cost when disarmed: one relaxed atomic load per hit. Builds configured
/// with -DWAVEMR_FAILPOINTS=OFF compile every site to a constant 0 and the
/// arming API to no-ops.
class Failpoints {
 public:
  struct SiteStats {
    std::string site;
    uint64_t hits = 0;   // times the armed site was evaluated
    uint64_t trips = 0;  // times it actually injected a failure
  };

  /// Arms/disarms sites per the spec grammar above. Invalid specs return
  /// InvalidArgument and leave the registry unchanged.
  static Status ArmFromSpec(const std::string& spec);

  /// Disarms one site / every site. Counters for disarmed sites are kept
  /// until DisarmAll, which clears everything.
  static void Disarm(const std::string& site);
  static void DisarmAll();

  /// Stats for one site (zeros if never armed) or every site ever armed.
  static SiteStats StatsFor(const std::string& site);
  static std::vector<SiteStats> AllStats();

  /// Total injected failures across all sites since the last DisarmAll.
  static uint64_t TotalTrips();
};

namespace failpoint_internal {
// < 0 until the WAVEMR_FAILPOINTS env var has been consulted; afterwards the
// number of currently armed sites.
extern std::atomic<int> g_armed;
int HitSlow(const char* site);
}  // namespace failpoint_internal

/// Returns the errno to inject at `site` (0 = proceed normally). The
/// disarmed fast path is a single relaxed load.
inline int FailpointHit(const char* site) {
#if defined(WAVEMR_FAILPOINTS_DISABLED)
  (void)site;
  return 0;
#else
  const int armed =
      failpoint_internal::g_armed.load(std::memory_order_relaxed);
  if (armed == 0) return 0;
  return failpoint_internal::HitSlow(site);
#endif
}

}  // namespace wavemr

#endif  // WAVEMR_CORE_FAILPOINT_H_
