#include "core/hash.h"

#include "core/logging.h"

namespace wavemr {

PolyHash::PolyHash(uint64_t seed, int degree) {
  WAVEMR_CHECK_GE(degree, 1);
  Rng rng(seed);
  coeffs_.reserve(static_cast<size_t>(degree));
  for (int i = 0; i < degree; ++i) {
    coeffs_.push_back(rng.NextU64() % kPrime);
  }
  // The leading coefficient must be nonzero for full independence.
  if (coeffs_.back() == 0) coeffs_.back() = 1;
}

uint64_t PolyHash::Hash(uint64_t x) const {
  uint64_t xr = x % kPrime;
  // Horner evaluation: c0 + c1*x + c2*x^2 + ...
  uint64_t acc = 0;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = MulMod61(acc, xr);
    acc += coeffs_[i];
    if (acc >= kPrime) acc -= kPrime;
  }
  return acc;
}

}  // namespace wavemr
