#ifndef WAVEMR_CORE_LOGGING_H_
#define WAVEMR_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace wavemr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Collects a log line via operator<< and emits it (to stderr) on
/// destruction; aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Minimum level actually emitted; default kInfo. Not thread-safe to set
/// concurrently with logging (set it once at startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

#define WAVEMR_LOG(level)                                                    \
  ::wavemr::internal_logging::LogMessage(::wavemr::LogLevel::k##level,      \
                                         __FILE__, __LINE__)

/// CHECK aborts on violated invariants. These are programming errors, not
/// recoverable conditions (those return Status).
#define WAVEMR_CHECK(cond)                                       \
  if (!(cond))                                                   \
  WAVEMR_LOG(Fatal) << "Check failed: " #cond " "

#define WAVEMR_CHECK_OP(a, b, op)                                            \
  if (!((a)op(b)))                                                           \
  WAVEMR_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a)        \
                    << " vs " << (b) << ") "

#define WAVEMR_CHECK_EQ(a, b) WAVEMR_CHECK_OP(a, b, ==)
#define WAVEMR_CHECK_NE(a, b) WAVEMR_CHECK_OP(a, b, !=)
#define WAVEMR_CHECK_LT(a, b) WAVEMR_CHECK_OP(a, b, <)
#define WAVEMR_CHECK_LE(a, b) WAVEMR_CHECK_OP(a, b, <=)
#define WAVEMR_CHECK_GT(a, b) WAVEMR_CHECK_OP(a, b, >)
#define WAVEMR_CHECK_GE(a, b) WAVEMR_CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define WAVEMR_DCHECK(cond) \
  if (false) WAVEMR_LOG(Fatal)
#else
#define WAVEMR_DCHECK(cond) WAVEMR_CHECK(cond)
#endif

}  // namespace wavemr

#endif  // WAVEMR_CORE_LOGGING_H_
