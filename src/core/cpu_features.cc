#include "core/cpu_features.h"

#include <cstdlib>
#include <cstring>

#include "core/logging.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
// getauxval HWCAP bits; defined here so older libc headers still build.
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1UL << 1)
#endif
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1UL << 7)
#endif
#endif

namespace wavemr {
namespace {

CpuFeatures Probe() {
  CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  f.sse42 = __builtin_cpu_supports("sse4.2");
  f.avx2 = __builtin_cpu_supports("avx2");
#endif
#if defined(__aarch64__)
#if defined(__linux__)
  unsigned long hwcap = getauxval(AT_HWCAP);
  f.neon = (hwcap & HWCAP_ASIMD) != 0;
  f.arm_crc32 = (hwcap & HWCAP_CRC32) != 0;
#else
  // Advanced SIMD is architecturally mandatory on AArch64; CRC32 is only
  // assumed when the whole binary was compiled for it.
  f.neon = true;
#if defined(__ARM_FEATURE_CRC32)
  f.arm_crc32 = true;
#endif
#endif
#endif
  return f;
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kScalar:
      break;
  }
  return "scalar";
}

SimdTier ResolveSimdTier(const char* request, const CpuFeatures& cpu) {
  const SimdTier best = cpu.avx2   ? SimdTier::kAvx2
                        : cpu.neon ? SimdTier::kNeon
                                   : SimdTier::kScalar;
  if (request == nullptr || request[0] == '\0') return best;
  if (std::strcmp(request, "scalar") == 0) return SimdTier::kScalar;
  if (std::strcmp(request, "avx2") == 0)
    return cpu.avx2 ? SimdTier::kAvx2 : SimdTier::kScalar;
  if (std::strcmp(request, "neon") == 0)
    return cpu.neon ? SimdTier::kNeon : SimdTier::kScalar;
  // "auto" and anything unrecognized fall through to the best tier.
  return best;
}

SimdTier BestSimdTier() {
  return ResolveSimdTier(nullptr, GetCpuFeatures());
}

SimdTier ActiveSimdTier() {
  static const SimdTier tier = [] {
    const char* request = std::getenv("WAVEMR_SIMD");
    SimdTier resolved = ResolveSimdTier(request, GetCpuFeatures());
    if (request != nullptr && request[0] != '\0' &&
        std::strcmp(request, "auto") != 0 &&
        std::strcmp(request, SimdTierName(resolved)) != 0) {
      WAVEMR_LOG(Warning) << "WAVEMR_SIMD=" << request
                          << " not supported on this host/build; using "
                          << SimdTierName(resolved);
    }
    return resolved;
  }();
  return tier;
}

}  // namespace wavemr
