#ifndef WAVEMR_CORE_THREAD_POOL_H_
#define WAVEMR_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace wavemr {

/// Fixed-size worker pool. Tasks are plain callables; Submit returns a
/// std::future that carries the task's result or its exception, so callers
/// can both wait for and order completions deterministically (the job engine
/// absorbs map-task results in split-index order regardless of which worker
/// finished first).
///
/// The pool is deliberately minimal: no work stealing, no priorities, no
/// resizing. Map tasks in this codebase are coarse (a whole input split), so
/// a mutex-guarded deque is nowhere near the bottleneck.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(int num_threads = 0);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency, clamped to >= 1.
  static int DefaultThreadCount();

  /// Schedules `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` are captured and rethrown from future::get().
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  bool stop_ = false;                        // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace wavemr

#endif  // WAVEMR_CORE_THREAD_POOL_H_
