#include "core/crc32c.h"

#include <cstring>

#include "core/cpu_features.h"

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define WAVEMR_CRC32C_ARM 1
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <nmmintrin.h>
#define WAVEMR_CRC32C_X86 1
#endif

namespace wavemr {
namespace {

// ---------------------------------------------------------------------------
// Software fallback: slicing-by-8 over the reflected Castagnoli polynomial.
// Tables are built once at first use (256 entries x 8 slices, 8 KiB).
// ---------------------------------------------------------------------------

struct Crc32cTables {
  uint32_t t[8][256];
  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j)
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i)
      for (int s = 1; s < 8; ++s)
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
  }
};

uint32_t Crc32cSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  static const Crc32cTables tables;
  const auto& t = tables.t;
  crc = ~crc;
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= crc;
    crc = t[7][w & 0xFF] ^ t[6][(w >> 8) & 0xFF] ^ t[5][(w >> 16) & 0xFF] ^
          t[4][(w >> 24) & 0xFF] ^ t[3][(w >> 32) & 0xFF] ^
          t[2][(w >> 40) & 0xFF] ^ t[1][(w >> 48) & 0xFF] ^ t[0][w >> 56];
    p += 8;
    n -= 8;
  }
  while (n--) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

// ---------------------------------------------------------------------------
// Hardware paths. x86 compiles the SSE4.2 body with a per-function target
// attribute and selects it at runtime via the shared core/cpu_features probe
// (the same one the SIMD kernel tier keys off), so the default build (plain
// x86-64 baseline) still benefits on capable machines.
// ---------------------------------------------------------------------------

#if WAVEMR_CRC32C_X86
__attribute__((target("sse4.2"))) uint32_t Crc32cSse42(uint32_t crc,
                                                       const uint8_t* p,
                                                       size_t n) {
  uint64_t c = ~crc;
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n--) c32 = _mm_crc32_u8(c32, *p++);
  return ~c32;
}
#endif

#if WAVEMR_CRC32C_ARM
uint32_t Crc32cArm(uint32_t crc, const uint8_t* p, size_t n) {
  uint32_t c = ~crc;
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    c = __crc32cd(c, w);
    p += 8;
    n -= 8;
  }
  while (n--) c = __crc32cb(c, *p++);
  return ~c;
}
#endif

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
#if WAVEMR_CRC32C_ARM
  if (GetCpuFeatures().arm_crc32) return Crc32cArm(crc, p, n);
#endif
#if WAVEMR_CRC32C_X86
  if (GetCpuFeatures().sse42) return Crc32cSse42(crc, p, n);
#endif
  return Crc32cSoftware(crc, p, n);
}

}  // namespace wavemr
