#include "core/thread_pool.h"

#include <algorithm>

#include "core/logging.h"

namespace wavemr {

int ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    WAVEMR_CHECK(!stop_) << "Submit on a stopped ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and no work left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace wavemr
