#ifndef WAVEMR_CORE_FLAGS_H_
#define WAVEMR_CORE_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace wavemr {

/// Declarative command-line flag parser shared by the wavemr tools.
///
/// Register typed bindings, then Parse. Every `--name=value` (or bare
/// `--name` for bools) must match a registered flag: an unknown flag is a
/// hard InvalidArgument, with a "did you mean --x" hint when a registered
/// name is within edit distance 3. `--help` / `-h` stop parsing and set
/// help_requested(); the caller prints Help() and exits 0.
class FlagParser {
 public:
  /// `usage` is the first line of Help(), e.g.
  /// "wavemr_cli build (--input=FILE | --generate=zipf|worldcup) [options]".
  explicit FlagParser(std::string usage) : usage_(std::move(usage)) {}

  /// Bindings point at caller-owned storage, which also supplies the
  /// default value shown in Help(). The target must outlive Parse.
  void String(const std::string& name, std::string* out,
              const std::string& help);
  void U64(const std::string& name, uint64_t* out, const std::string& help);
  void I32(const std::string& name, int* out, const std::string& help);
  void F64(const std::string& name, double* out, const std::string& help);
  /// Bools accept bare `--name` as well as `--name=true|false|1|0`.
  void Bool(const std::string& name, bool* out, const std::string& help);

  /// Parses argv[start, argc). Positional (non `--`) arguments are rejected.
  Status Parse(int argc, char* const* argv, int start = 1);

  bool help_requested() const { return help_requested_; }

  /// Usage line + one aligned row per flag with its help and default.
  std::string Help() const;

 private:
  enum class Kind { kString, kU64, kI32, kF64, kBool };
  struct Flag {
    std::string name;
    std::string help;
    Kind kind;
    void* target;
  };

  Status SetValue(const Flag& flag, const std::string& value);
  const Flag* Find(const std::string& name) const;
  std::string Suggest(const std::string& name) const;

  std::string usage_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace wavemr

#endif  // WAVEMR_CORE_FLAGS_H_
