#ifndef WAVEMR_CORE_SERIALIZE_H_
#define WAVEMR_CORE_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/logging.h"

namespace wavemr {

/// Minimal little-endian POD serialization used for split state files and
/// the distributed cache. Fixed-width only; no varints -- sizes here feed the
/// communication accounting, so they must be predictable.
class Serializer {
 public:
  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &v, sizeof(T));
  }

  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put<uint64_t>(v.size());
    size_t off = buf_.size();
    buf_.resize(off + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(buf_.data() + off, v.data(), v.size() * sizeof(T));
  }

  /// Length-prefixed (uint64) byte string.
  void PutString(const std::string& s) {
    Put<uint64_t>(s.size());
    buf_.append(s);
  }

  const std::string& str() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  std::string buf_;
};

class Deserializer {
 public:
  explicit Deserializer(const std::string& buf) : buf_(buf) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    WAVEMR_CHECK_LE(pos_ + sizeof(T), buf_.size());
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> GetVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = Get<uint64_t>();
    WAVEMR_CHECK_LE(pos_ + n * sizeof(T), buf_.size());
    std::vector<T> v(n);
    if (n > 0) std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// Inverse of Serializer::PutString.
  std::string GetString() {
    uint64_t n = Get<uint64_t>();
    WAVEMR_CHECK_LE(pos_ + n, buf_.size());
    std::string s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  bool Done() const { return pos_ == buf_.size(); }

  /// Bytes left to consume. Get/GetVector CHECK-abort past the end, so
  /// callers parsing untrusted bytes (snapshot files, wire frames) validate
  /// against remaining() first and return Status instead of crashing.
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::string& buf_;
  size_t pos_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_CORE_SERIALIZE_H_
