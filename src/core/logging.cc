#include "core/logging.h"

#include <cstdio>
#include <cstdlib>

namespace wavemr {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace wavemr
