#include "core/simd.h"

#include <atomic>

#include "core/hash.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define WAVEMR_SIMD_X86 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define WAVEMR_SIMD_NEON 1
#endif

// This file is compiled with -ffp-contract=off (see src/core/CMakeLists.txt):
// the floating-point kernels promise a fixed evaluation order across tiers,
// and a silently fused multiply-add in the scalar fallback would break the
// bit-identity contract against explicit-intrinsic tiers.

namespace wavemr {
namespace {

constexpr uint64_t kPrime = PolyHash::kPrime;

// ===========================================================================
// Scalar tier. This is the bit-identity reference every other tier is tested
// against; it leans on the shared inline helpers in core/hash.h so it is the
// same arithmetic the rest of the engine uses.
// ===========================================================================

void MulMod61X4Scalar(const uint64_t a[4], const uint64_t b[4],
                      uint64_t out[4]) {
  for (int l = 0; l < 4; ++l) out[l] = MulMod61(a[l], b[l]);
}

void Hash2X4Scalar(const uint64_t c0[4], const uint64_t c1[4],
                   const uint64_t x[4], uint64_t out[4]) {
  for (int l = 0; l < 4; ++l) {
    const uint64_t c[2] = {c0[l], c1[l]};
    out[l] = PolyHash2(c, x[l]);
  }
}

void Hash4X4Scalar(const uint64_t c0[4], const uint64_t c1[4],
                   const uint64_t c2[4], const uint64_t c3[4],
                   const uint64_t x[4], uint64_t out[4]) {
  for (int l = 0; l < 4; ++l) {
    const uint64_t c[4] = {c0[l], c1[l], c2[l], c3[l]};
    out[l] = PolyHash4(c, x[l]);
  }
}

void GcsSubSignX4Scalar(const uint64_t ci[2], const uint64_t cs[4],
                        const uint64_t items[4], uint64_t subbuckets,
                        uint64_t sub_mask, uint32_t out[4]) {
  for (int l = 0; l < 4; ++l) {
    const uint64_t ir = items[l] % kPrime;
    const uint64_t ih = PolyHash2(ci, ir);
    const uint64_t sub = sub_mask != 0 ? (ih & sub_mask) : (ih % subbuckets);
    const bool positive = (PolyHash4(cs, ir) & 1) != 0;
    out[l] = static_cast<uint32_t>(sub) | (positive ? 0x80000000u : 0u);
  }
}

void GcsSubSignBlockScalar(const uint64_t ci[2], const uint64_t cs[4],
                           const uint64_t* items, size_t n,
                           uint64_t subbuckets, uint64_t sub_mask,
                           uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t ir = items[i] % kPrime;
    const uint64_t ih = PolyHash2(ci, ir);
    const uint64_t sub = sub_mask != 0 ? (ih & sub_mask) : (ih % subbuckets);
    const bool positive = (PolyHash4(cs, ir) & 1) != 0;
    out[i] = static_cast<uint32_t>(sub) | (positive ? 0x80000000u : 0u);
  }
}

void HaarButterflyScalar(const double* in, size_t half, double norm,
                         double* out_coeffs, double* out_sums) {
  const double* __restrict src = in;
  double* __restrict coeffs = out_coeffs;
  double* __restrict sums = out_sums;
  for (size_t k = 0; k < half; ++k) {
    const double left = src[2 * k];
    const double right = src[2 * k + 1];
    coeffs[k] = (right - left) * norm;
    sums[k] = left + right;
  }
}

double SumSquaresScalar(const double* v, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += v[i] * v[i];
    acc1 += v[i + 1] * v[i + 1];
    acc2 += v[i + 2] * v[i + 2];
    acc3 += v[i + 3] * v[i + 3];
  }
  double r = (acc0 + acc2) + (acc1 + acc3);
  for (; i < n; ++i) r += v[i] * v[i];
  return r;
}

void SparseLevelScalar(const uint64_t* keys, const double* weights, size_t n,
                       uint32_t shift, uint64_t block_mask, uint64_t half,
                       uint64_t base, double sqrt_block, uint64_t* idx_out,
                       double* val_out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = keys[i] >> shift;
    const uint64_t offset = keys[i] & block_mask;
    const double mag = weights[i] / sqrt_block;
    idx_out[i] = base + k;
    val_out[i] = offset < half ? -mag : mag;
  }
}

constexpr SimdKernels kScalarTable = {
    SimdTier::kScalar,    MulMod61X4Scalar,     Hash2X4Scalar,
    Hash4X4Scalar,        GcsSubSignX4Scalar,   GcsSubSignBlockScalar,
    HaarButterflyScalar,  SumSquaresScalar,     SparseLevelScalar,
};

// ===========================================================================
// AVX2 tier (x86-64). Compiled with per-function target attributes so the
// binary keeps its plain x86-64 baseline; dispatch guarantees these only run
// on machines with AVX2.
//
// Mersenne-61 modular multiply without a 64x64->128 vector instruction:
// split a = a0 + a1*2^32 (a1 < 2^29 since a < 2^61) and likewise b, then
//   a*b = ll + mid*2^32 + hh*2^64,   ll = a0*b0 < 2^64,
//                                    mid = a0*b1 + a1*b0 < 2^62,
//                                    hh = a1*b1 < 2^58.
// Reduce with 2^61 = 1 (mod p), so 2^64 = 8 and, writing
// mid = m_lo + m_hi*2^29 (m_lo < 2^29), mid*2^32 = m_lo*2^32 + m_hi (mod p):
//   sum = (ll & p) + (ll >> 61) + (m_lo << 32) + (m_hi) + (hh << 3) < 3*2^61.
// A final fold (sum & p) + (sum >> 61) lands below 2p, and one conditional
// subtract yields the canonical residue -- exactly MulMod61's result. Every
// intermediate stays below 2^63, so the signed 64-bit compares AVX2 offers
// are safe for the unsigned values involved.
// ===========================================================================

#if WAVEMR_SIMD_X86

__attribute__((target("avx2"))) inline __m256i MulMod61Avx2(__m256i a,
                                                            __m256i b) {
  const __m256i prime = _mm256_set1_epi64x(static_cast<long long>(kPrime));
  const __m256i mask29 = _mm256_set1_epi64x((int64_t{1} << 29) - 1);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i mid =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i sum = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_and_si256(ll, prime), _mm256_srli_epi64(ll, 61)),
      _mm256_add_epi64(
          _mm256_add_epi64(
              _mm256_slli_epi64(_mm256_and_si256(mid, mask29), 32),
              _mm256_srli_epi64(mid, 29)),
          _mm256_slli_epi64(hh, 3)));
  const __m256i r = _mm256_add_epi64(_mm256_and_si256(sum, prime),
                                     _mm256_srli_epi64(sum, 61));
  const __m256i ge = _mm256_cmpgt_epi64(
      r, _mm256_set1_epi64x(static_cast<long long>(kPrime - 1)));
  return _mm256_sub_epi64(r, _mm256_and_si256(ge, prime));
}

/// Conditional subtract for values < 2p: the add step of a Horner round.
__attribute__((target("avx2"))) inline __m256i Mod61CondSubAvx2(__m256i acc) {
  const __m256i prime = _mm256_set1_epi64x(static_cast<long long>(kPrime));
  const __m256i ge = _mm256_cmpgt_epi64(
      acc, _mm256_set1_epi64x(static_cast<long long>(kPrime - 1)));
  return _mm256_sub_epi64(acc, _mm256_and_si256(ge, prime));
}

/// x mod p for arbitrary uint64 lanes: fold the top 3 bits down (2^61 = 1).
__attribute__((target("avx2"))) inline __m256i Mod61FoldAvx2(__m256i x) {
  const __m256i prime = _mm256_set1_epi64x(static_cast<long long>(kPrime));
  const __m256i folded = _mm256_add_epi64(_mm256_and_si256(x, prime),
                                          _mm256_srli_epi64(x, 61));
  return Mod61CondSubAvx2(folded);
}

__attribute__((target("avx2"))) inline __m256i Hash2Avx2(__m256i c0,
                                                         __m256i c1,
                                                         __m256i x) {
  return Mod61CondSubAvx2(_mm256_add_epi64(MulMod61Avx2(c1, x), c0));
}

/// Lazily-reduced modular multiply for Horner chains: returns a value
/// congruent to a*b mod p that is < 2^61 + 4 (one fold, no conditional
/// subtract). Callers may add a canonical coefficient and feed the sum
/// (< 2^62 + 4) straight back in as `a`; `b` must be < 2^61 + 8 and b_hi must
/// be b >> 32 (passed in so a per-item chain hoists it). Every intermediate
/// stays below 2^63, the bound the limb decomposition needs. The chain's
/// final value is canonicalized once (fold + conditional subtract), so the
/// result is still bit-identical to the step-canonical scalar Horner.
__attribute__((target("avx2"))) inline __m256i MulMod61LazyAvx2(__m256i a,
                                                                __m256i b,
                                                                __m256i b_hi) {
  const __m256i prime = _mm256_set1_epi64x(static_cast<long long>(kPrime));
  const __m256i mask29 = _mm256_set1_epi64x((int64_t{1} << 29) - 1);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i mid =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i sum = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_and_si256(ll, prime), _mm256_srli_epi64(ll, 61)),
      _mm256_add_epi64(
          _mm256_add_epi64(
              _mm256_slli_epi64(_mm256_and_si256(mid, mask29), 32),
              _mm256_srli_epi64(mid, 29)),
          _mm256_slli_epi64(hh, 3)));
  return _mm256_add_epi64(_mm256_and_si256(sum, prime),
                          _mm256_srli_epi64(sum, 61));
}

/// Canonicalize a lazily-reduced value < 2^62 + 4: one fold lands below
/// 2^61 + 2 (< 2p), one conditional subtract lands on the canonical residue.
__attribute__((target("avx2"))) inline __m256i Mod61CanonAvx2(__m256i x) {
  const __m256i prime = _mm256_set1_epi64x(static_cast<long long>(kPrime));
  return Mod61CondSubAvx2(_mm256_add_epi64(_mm256_and_si256(x, prime),
                                           _mm256_srli_epi64(x, 61)));
}

__attribute__((target("avx2"))) inline __m256i Hash4Avx2(__m256i c0,
                                                         __m256i c1,
                                                         __m256i c2,
                                                         __m256i c3,
                                                         __m256i x) {
  __m256i acc = Mod61CondSubAvx2(_mm256_add_epi64(MulMod61Avx2(c3, x), c2));
  acc = Mod61CondSubAvx2(_mm256_add_epi64(MulMod61Avx2(acc, x), c1));
  return Mod61CondSubAvx2(_mm256_add_epi64(MulMod61Avx2(acc, x), c0));
}

__attribute__((target("avx2"))) void MulMod61X4Avx2(const uint64_t a[4],
                                                    const uint64_t b[4],
                                                    uint64_t out[4]) {
  const __m256i av =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i bv =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), MulMod61Avx2(av, bv));
}

__attribute__((target("avx2"))) void Hash2X4Avx2(const uint64_t c0[4],
                                                 const uint64_t c1[4],
                                                 const uint64_t x[4],
                                                 uint64_t out[4]) {
  const __m256i c0v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c0));
  const __m256i c1v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c1));
  const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      Hash2Avx2(c0v, c1v, xv));
}

__attribute__((target("avx2"))) void Hash4X4Avx2(const uint64_t c0[4],
                                                 const uint64_t c1[4],
                                                 const uint64_t c2[4],
                                                 const uint64_t c3[4],
                                                 const uint64_t x[4],
                                                 uint64_t out[4]) {
  const __m256i c0v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c0));
  const __m256i c1v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c1));
  const __m256i c2v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c2));
  const __m256i c3v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c3));
  const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      Hash4Avx2(c0v, c1v, c2v, c3v, xv));
}

__attribute__((target("avx2"))) void GcsSubSignX4Avx2(
    const uint64_t ci[2], const uint64_t cs[4], const uint64_t items[4],
    uint64_t subbuckets, uint64_t sub_mask, uint32_t out[4]) {
  const __m256i ir = Mod61FoldAvx2(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items)));
  const __m256i ih =
      Hash2Avx2(_mm256_set1_epi64x(static_cast<long long>(ci[0])),
                _mm256_set1_epi64x(static_cast<long long>(ci[1])), ir);
  const __m256i sh =
      Hash4Avx2(_mm256_set1_epi64x(static_cast<long long>(cs[0])),
                _mm256_set1_epi64x(static_cast<long long>(cs[1])),
                _mm256_set1_epi64x(static_cast<long long>(cs[2])),
                _mm256_set1_epi64x(static_cast<long long>(cs[3])), ir);
  alignas(32) uint64_t subs[4];
  alignas(32) uint64_t signs[4];
  if (sub_mask != 0) {
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(subs),
        _mm256_and_si256(ih,
                         _mm256_set1_epi64x(static_cast<long long>(sub_mask))));
  } else {
    _mm256_store_si256(reinterpret_cast<__m256i*>(subs), ih);
    for (int l = 0; l < 4; ++l) subs[l] %= subbuckets;
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(signs), sh);
  for (int l = 0; l < 4; ++l) {
    out[l] = static_cast<uint32_t>(subs[l]) |
             ((signs[l] & 1) != 0 ? 0x80000000u : 0u);
  }
}

/// Both GCS hashes of one lane group, through the lazily-reduced Horner
/// chain: intermediates stay partially reduced (< 2^62 + 4) and only the
/// chain ends are canonicalized, which is where all the conditional
/// subtracts the step-canonical form pays for drop out. The item residue is
/// itself lazy (one fold of the raw item) -- the polynomial only depends on
/// x mod p, and MulMod61LazyAvx2 accepts b < 2^61 + 8.
__attribute__((target("avx2"))) inline void GcsHashGroupAvx2(
    __m256i xv, __m256i ci0, __m256i ci1, __m256i cs0, __m256i cs1,
    __m256i cs2, __m256i cs3, __m256i* h2, __m256i* h4) {
  const __m256i primev = _mm256_set1_epi64x(static_cast<long long>(kPrime));
  const __m256i xr = _mm256_add_epi64(_mm256_and_si256(xv, primev),
                                      _mm256_srli_epi64(xv, 61));
  const __m256i xh = _mm256_srli_epi64(xr, 32);
  *h2 = Mod61CanonAvx2(_mm256_add_epi64(MulMod61LazyAvx2(ci1, xr, xh), ci0));
  __m256i acc = _mm256_add_epi64(MulMod61LazyAvx2(cs3, xr, xh), cs2);
  acc = _mm256_add_epi64(MulMod61LazyAvx2(acc, xr, xh), cs1);
  acc = _mm256_add_epi64(MulMod61LazyAvx2(acc, xr, xh), cs0);
  *h4 = Mod61CanonAvx2(acc);
}

__attribute__((target("avx2"))) void GcsSubSignBlockAvx2(
    const uint64_t ci[2], const uint64_t cs[4], const uint64_t* items,
    size_t n, uint64_t subbuckets, uint64_t sub_mask, uint32_t* out) {
  // Broadcast coefficients hoisted out of the loop: this is the form the
  // update path calls once per (block, repetition), so the per-call setup
  // amortizes over up to a whole block of items.
  const __m256i ci0 = _mm256_set1_epi64x(static_cast<long long>(ci[0]));
  const __m256i ci1 = _mm256_set1_epi64x(static_cast<long long>(ci[1]));
  const __m256i cs0 = _mm256_set1_epi64x(static_cast<long long>(cs[0]));
  const __m256i cs1 = _mm256_set1_epi64x(static_cast<long long>(cs[1]));
  const __m256i cs2 = _mm256_set1_epi64x(static_cast<long long>(cs[2]));
  const __m256i cs3 = _mm256_set1_epi64x(static_cast<long long>(cs[3]));
  const __m256i maskv =
      _mm256_set1_epi64x(static_cast<long long>(sub_mask));
  const __m256i onev = _mm256_set1_epi64x(1);
  // Gathers the low 32 bits of each 64-bit lane into lanes 0-3.
  const __m256i narrow = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  if (sub_mask != 0) {
    // Pow2 sub-bucket path packs entirely in vector registers: sub fits in
    // 30 bits and the sign lands on bit 31, so (ih & mask) | ((sh & 1) << 31)
    // is the memo slot already; narrow each 64-bit lane to 32 bits and store
    // 4 slots at once. Two independent lane groups per iteration so the long
    // modular-multiply dependency chains overlap.
    for (; i + 8 <= n; i += 8) {
      __m256i h2a, h4a, h2b, h4b;
      GcsHashGroupAvx2(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i)),
          ci0, ci1, cs0, cs1, cs2, cs3, &h2a, &h4a);
      GcsHashGroupAvx2(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i + 4)),
          ci0, ci1, cs0, cs1, cs2, cs3, &h2b, &h4b);
      const __m256i pa = _mm256_or_si256(
          _mm256_and_si256(h2a, maskv),
          _mm256_slli_epi64(_mm256_and_si256(h4a, onev), 31));
      const __m256i pb = _mm256_or_si256(
          _mm256_and_si256(h2b, maskv),
          _mm256_slli_epi64(_mm256_and_si256(h4b, onev), 31));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + i),
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(pa, narrow)));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + i + 4),
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(pb, narrow)));
    }
    for (; i + 4 <= n; i += 4) {
      __m256i h2, h4;
      GcsHashGroupAvx2(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i)),
          ci0, ci1, cs0, cs1, cs2, cs3, &h2, &h4);
      const __m256i p = _mm256_or_si256(
          _mm256_and_si256(h2, maskv),
          _mm256_slli_epi64(_mm256_and_si256(h4, onev), 31));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + i),
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(p, narrow)));
    }
  } else {
    // Non-pow2 sub-bucket counts need a 64-bit modulo, which AVX2 has no
    // vector form for: hash in lanes, reduce and pack through the stack.
    for (; i + 4 <= n; i += 4) {
      __m256i h2, h4;
      GcsHashGroupAvx2(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i)),
          ci0, ci1, cs0, cs1, cs2, cs3, &h2, &h4);
      alignas(32) uint64_t subs[4];
      alignas(32) uint64_t signs[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(subs), h2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(signs), h4);
      for (int l = 0; l < 4; ++l) {
        out[i + l] = static_cast<uint32_t>(subs[l] % subbuckets) |
                     ((signs[l] & 1) != 0 ? 0x80000000u : 0u);
      }
    }
  }
  // Scalar tail: exact integers, so the lane/tail seam cannot show.
  for (; i < n; ++i) {
    const uint64_t ir = items[i] % kPrime;
    const uint64_t ih = PolyHash2(ci, ir);
    const uint64_t sub = sub_mask != 0 ? (ih & sub_mask) : (ih % subbuckets);
    const bool positive = (PolyHash4(cs, ir) & 1) != 0;
    out[i] = static_cast<uint32_t>(sub) | (positive ? 0x80000000u : 0u);
  }
}

__attribute__((target("avx2"))) void HaarButterflyAvx2(const double* in,
                                                       size_t half,
                                                       double norm,
                                                       double* out_coeffs,
                                                       double* out_sums) {
  const __m256d normv = _mm256_set1_pd(norm);
  size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    // in[2k..2k+7] = e0..e7; unpack gives [e0,e4,e2,e6] / [e1,e5,e3,e7],
    // the cross-lane permute restores index order before the butterfly.
    const __m256d v0 = _mm256_loadu_pd(in + 2 * k);
    const __m256d v1 = _mm256_loadu_pd(in + 2 * k + 4);
    const __m256d lefts = _mm256_permute4x64_pd(_mm256_unpacklo_pd(v0, v1),
                                                _MM_SHUFFLE(3, 1, 2, 0));
    const __m256d rights = _mm256_permute4x64_pd(_mm256_unpackhi_pd(v0, v1),
                                                 _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(out_coeffs + k,
                     _mm256_mul_pd(_mm256_sub_pd(rights, lefts), normv));
    _mm256_storeu_pd(out_sums + k, _mm256_add_pd(lefts, rights));
  }
  for (; k < half; ++k) {
    const double left = in[2 * k];
    const double right = in[2 * k + 1];
    out_coeffs[k] = (right - left) * norm;
    out_sums[k] = left + right;
  }
}

__attribute__((target("avx2"))) double SumSquaresAvx2(const double* v,
                                                      size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x, x));
  }
  // Horizontal sum (acc0 + acc2) + (acc1 + acc3) -- the order the scalar
  // table reproduces.
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double r = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; i < n; ++i) r += v[i] * v[i];
  return r;
}

__attribute__((target("avx2"))) void SparseLevelAvx2(
    const uint64_t* keys, const double* weights, size_t n, uint32_t shift,
    uint64_t block_mask, uint64_t half, uint64_t base, double sqrt_block,
    uint64_t* idx_out, double* val_out) {
  const __m128i shiftv = _mm_cvtsi64_si128(static_cast<long long>(shift));
  const __m256i maskv =
      _mm256_set1_epi64x(static_cast<long long>(block_mask));
  const __m256i halfv = _mm256_set1_epi64x(static_cast<long long>(half));
  const __m256i basev = _mm256_set1_epi64x(static_cast<long long>(base));
  const __m256d sqrtbv = _mm256_set1_pd(sqrt_block);
  const __m256d signbit = _mm256_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i key =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i idx =
        _mm256_add_epi64(basev, _mm256_srl_epi64(key, shiftv));
    const __m256i offset = _mm256_and_si256(key, maskv);
    // offset, half < 2^61, so the signed compare is safe.
    const __m256i lt = _mm256_cmpgt_epi64(halfv, offset);
    const __m256d mag = _mm256_div_pd(_mm256_loadu_pd(weights + i), sqrtbv);
    const __m256d flip = _mm256_and_pd(_mm256_castsi256_pd(lt), signbit);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx_out + i), idx);
    _mm256_storeu_pd(val_out + i, _mm256_xor_pd(mag, flip));
  }
  for (; i < n; ++i) {
    const uint64_t k = keys[i] >> shift;
    const uint64_t offset = keys[i] & block_mask;
    const double mag = weights[i] / sqrt_block;
    idx_out[i] = base + k;
    val_out[i] = offset < half ? -mag : mag;
  }
}

const SimdKernels kAvx2Table = {
    SimdTier::kAvx2,    MulMod61X4Avx2,     Hash2X4Avx2,
    Hash4X4Avx2,        GcsSubSignX4Avx2,   GcsSubSignBlockAvx2,
    HaarButterflyAvx2,  SumSquaresAvx2,     SparseLevelAvx2,
};

#endif  // WAVEMR_SIMD_X86

// ===========================================================================
// NEON tier (AArch64). Advanced SIMD is 128-bit, so every 4-lane kernel runs
// as two 2-lane halves; the modular-multiply limb decomposition and the
// floating-point evaluation orders are the same as the AVX2 tier (the
// sum-of-squares accumulators pair up so the final combine still evaluates
// (acc0 + acc2) + (acc1 + acc3)).
// ===========================================================================

#if WAVEMR_SIMD_NEON

inline uint64x2_t Mod61CondSubNeon(uint64x2_t acc) {
  const uint64x2_t prime = vdupq_n_u64(kPrime);
  const uint64x2_t ge = vcgeq_u64(acc, prime);
  return vsubq_u64(acc, vandq_u64(ge, prime));
}

inline uint64x2_t MulMod61Neon(uint64x2_t a, uint64x2_t b) {
  const uint64x2_t prime = vdupq_n_u64(kPrime);
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t ll = vmull_u32(a_lo, b_lo);
  const uint64x2_t mid =
      vaddq_u64(vmull_u32(a_lo, b_hi), vmull_u32(a_hi, b_lo));
  const uint64x2_t hh = vmull_u32(a_hi, b_hi);
  const uint64x2_t sum = vaddq_u64(
      vaddq_u64(vandq_u64(ll, prime), vshrq_n_u64(ll, 61)),
      vaddq_u64(
          vaddq_u64(
              vshlq_n_u64(vandq_u64(mid, vdupq_n_u64((uint64_t{1} << 29) - 1)),
                          32),
              vshrq_n_u64(mid, 29)),
          vshlq_n_u64(hh, 3)));
  const uint64x2_t r =
      vaddq_u64(vandq_u64(sum, prime), vshrq_n_u64(sum, 61));
  return Mod61CondSubNeon(r);
}

inline uint64x2_t Mod61FoldNeon(uint64x2_t x) {
  const uint64x2_t prime = vdupq_n_u64(kPrime);
  return Mod61CondSubNeon(
      vaddq_u64(vandq_u64(x, prime), vshrq_n_u64(x, 61)));
}

inline uint64x2_t Hash2Neon(uint64x2_t c0, uint64x2_t c1, uint64x2_t x) {
  return Mod61CondSubNeon(vaddq_u64(MulMod61Neon(c1, x), c0));
}

inline uint64x2_t Hash4Neon(uint64x2_t c0, uint64x2_t c1, uint64x2_t c2,
                            uint64x2_t c3, uint64x2_t x) {
  uint64x2_t acc = Mod61CondSubNeon(vaddq_u64(MulMod61Neon(c3, x), c2));
  acc = Mod61CondSubNeon(vaddq_u64(MulMod61Neon(acc, x), c1));
  return Mod61CondSubNeon(vaddq_u64(MulMod61Neon(acc, x), c0));
}

void MulMod61X4Neon(const uint64_t a[4], const uint64_t b[4],
                    uint64_t out[4]) {
  vst1q_u64(out, MulMod61Neon(vld1q_u64(a), vld1q_u64(b)));
  vst1q_u64(out + 2, MulMod61Neon(vld1q_u64(a + 2), vld1q_u64(b + 2)));
}

void Hash2X4Neon(const uint64_t c0[4], const uint64_t c1[4],
                 const uint64_t x[4], uint64_t out[4]) {
  vst1q_u64(out, Hash2Neon(vld1q_u64(c0), vld1q_u64(c1), vld1q_u64(x)));
  vst1q_u64(out + 2, Hash2Neon(vld1q_u64(c0 + 2), vld1q_u64(c1 + 2),
                               vld1q_u64(x + 2)));
}

void Hash4X4Neon(const uint64_t c0[4], const uint64_t c1[4],
                 const uint64_t c2[4], const uint64_t c3[4],
                 const uint64_t x[4], uint64_t out[4]) {
  vst1q_u64(out, Hash4Neon(vld1q_u64(c0), vld1q_u64(c1), vld1q_u64(c2),
                           vld1q_u64(c3), vld1q_u64(x)));
  vst1q_u64(out + 2,
            Hash4Neon(vld1q_u64(c0 + 2), vld1q_u64(c1 + 2), vld1q_u64(c2 + 2),
                      vld1q_u64(c3 + 2), vld1q_u64(x + 2)));
}

void GcsSubSignX4Neon(const uint64_t ci[2], const uint64_t cs[4],
                      const uint64_t items[4], uint64_t subbuckets,
                      uint64_t sub_mask, uint32_t out[4]) {
  const uint64x2_t ci0 = vdupq_n_u64(ci[0]);
  const uint64x2_t ci1 = vdupq_n_u64(ci[1]);
  const uint64x2_t cs0 = vdupq_n_u64(cs[0]);
  const uint64x2_t cs1 = vdupq_n_u64(cs[1]);
  const uint64x2_t cs2 = vdupq_n_u64(cs[2]);
  const uint64x2_t cs3 = vdupq_n_u64(cs[3]);
  uint64_t subs[4];
  uint64_t signs[4];
  for (int h = 0; h < 2; ++h) {
    const uint64x2_t ir = Mod61FoldNeon(vld1q_u64(items + 2 * h));
    uint64x2_t ih = Hash2Neon(ci0, ci1, ir);
    const uint64x2_t sh = Hash4Neon(cs0, cs1, cs2, cs3, ir);
    if (sub_mask != 0) ih = vandq_u64(ih, vdupq_n_u64(sub_mask));
    vst1q_u64(subs + 2 * h, ih);
    vst1q_u64(signs + 2 * h, sh);
  }
  for (int l = 0; l < 4; ++l) {
    const uint64_t sub = sub_mask != 0 ? subs[l] : subs[l] % subbuckets;
    out[l] = static_cast<uint32_t>(sub) |
             ((signs[l] & 1) != 0 ? 0x80000000u : 0u);
  }
}

void GcsSubSignBlockNeon(const uint64_t ci[2], const uint64_t cs[4],
                         const uint64_t* items, size_t n, uint64_t subbuckets,
                         uint64_t sub_mask, uint32_t* out) {
  const uint64x2_t ci0 = vdupq_n_u64(ci[0]);
  const uint64x2_t ci1 = vdupq_n_u64(ci[1]);
  const uint64x2_t cs0 = vdupq_n_u64(cs[0]);
  const uint64x2_t cs1 = vdupq_n_u64(cs[1]);
  const uint64x2_t cs2 = vdupq_n_u64(cs[2]);
  const uint64x2_t cs3 = vdupq_n_u64(cs[3]);
  const uint64x2_t maskv = vdupq_n_u64(sub_mask);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t ir = Mod61FoldNeon(vld1q_u64(items + i));
    uint64x2_t ih = Hash2Neon(ci0, ci1, ir);
    const uint64x2_t sh = Hash4Neon(cs0, cs1, cs2, cs3, ir);
    if (sub_mask != 0) ih = vandq_u64(ih, maskv);
    uint64_t subs[2], signs[2];
    vst1q_u64(subs, ih);
    vst1q_u64(signs, sh);
    for (int l = 0; l < 2; ++l) {
      const uint64_t sub = sub_mask != 0 ? subs[l] : subs[l] % subbuckets;
      out[i + l] = static_cast<uint32_t>(sub) |
                   ((signs[l] & 1) != 0 ? 0x80000000u : 0u);
    }
  }
  for (; i < n; ++i) {
    const uint64_t ir = items[i] % kPrime;
    const uint64_t ih = PolyHash2(ci, ir);
    const uint64_t sub = sub_mask != 0 ? (ih & sub_mask) : (ih % subbuckets);
    const bool positive = (PolyHash4(cs, ir) & 1) != 0;
    out[i] = static_cast<uint32_t>(sub) | (positive ? 0x80000000u : 0u);
  }
}

void HaarButterflyNeon(const double* in, size_t half, double norm,
                       double* out_coeffs, double* out_sums) {
  const float64x2_t normv = vdupq_n_f64(norm);
  size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const float64x2x2_t de = vld2q_f64(in + 2 * k);  // val[0]=lefts val[1]=rights
    vst1q_f64(out_coeffs + k,
              vmulq_f64(vsubq_f64(de.val[1], de.val[0]), normv));
    vst1q_f64(out_sums + k, vaddq_f64(de.val[0], de.val[1]));
  }
  for (; k < half; ++k) {
    const double left = in[2 * k];
    const double right = in[2 * k + 1];
    out_coeffs[k] = (right - left) * norm;
    out_sums[k] = left + right;
  }
}

double SumSquaresNeon(const double* v, size_t n) {
  float64x2_t acc_a = vdupq_n_f64(0.0);  // lanes (acc0, acc1)
  float64x2_t acc_b = vdupq_n_f64(0.0);  // lanes (acc2, acc3)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t xa = vld1q_f64(v + i);
    const float64x2_t xb = vld1q_f64(v + i + 2);
    acc_a = vaddq_f64(acc_a, vmulq_f64(xa, xa));
    acc_b = vaddq_f64(acc_b, vmulq_f64(xb, xb));
  }
  const float64x2_t pair = vaddq_f64(acc_a, acc_b);  // (a0+a2, a1+a3)
  double r = vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
  for (; i < n; ++i) r += v[i] * v[i];
  return r;
}

void SparseLevelNeon(const uint64_t* keys, const double* weights, size_t n,
                     uint32_t shift, uint64_t block_mask, uint64_t half,
                     uint64_t base, double sqrt_block, uint64_t* idx_out,
                     double* val_out) {
  const int64x2_t negshift = vdupq_n_s64(-static_cast<int64_t>(shift));
  const uint64x2_t maskv = vdupq_n_u64(block_mask);
  const uint64x2_t halfv = vdupq_n_u64(half);
  const uint64x2_t basev = vdupq_n_u64(base);
  const uint64x2_t signbit = vdupq_n_u64(uint64_t{1} << 63);
  const float64x2_t sqrtbv = vdupq_n_f64(sqrt_block);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t key = vld1q_u64(keys + i);
    const uint64x2_t idx = vaddq_u64(basev, vshlq_u64(key, negshift));
    const uint64x2_t lt = vcltq_u64(vandq_u64(key, maskv), halfv);
    const float64x2_t mag = vdivq_f64(vld1q_f64(weights + i), sqrtbv);
    const float64x2_t val = vreinterpretq_f64_u64(
        veorq_u64(vreinterpretq_u64_f64(mag), vandq_u64(lt, signbit)));
    vst1q_u64(idx_out + i, idx);
    vst1q_f64(val_out + i, val);
  }
  for (; i < n; ++i) {
    const uint64_t k = keys[i] >> shift;
    const uint64_t offset = keys[i] & block_mask;
    const double mag = weights[i] / sqrt_block;
    idx_out[i] = base + k;
    val_out[i] = offset < half ? -mag : mag;
  }
}

const SimdKernels kNeonTable = {
    SimdTier::kNeon,    MulMod61X4Neon,     Hash2X4Neon,
    Hash4X4Neon,        GcsSubSignX4Neon,   GcsSubSignBlockNeon,
    HaarButterflyNeon,  SumSquaresNeon,     SparseLevelNeon,
};

#endif  // WAVEMR_SIMD_NEON

std::atomic<const SimdKernels*> g_active{nullptr};

}  // namespace

const SimdKernels& SimdKernelsFor(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2:
#if WAVEMR_SIMD_X86
      return kAvx2Table;
#else
      break;
#endif
    case SimdTier::kNeon:
#if WAVEMR_SIMD_NEON
      return kNeonTable;
#else
      break;
#endif
    case SimdTier::kScalar:
      break;
  }
  return kScalarTable;
}

const SimdKernels& SimdK() {
  const SimdKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = &SimdKernelsFor(ActiveSimdTier());
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

void OverrideSimdTierForTest(SimdTier tier) {
  g_active.store(&SimdKernelsFor(tier), std::memory_order_release);
}

}  // namespace wavemr
