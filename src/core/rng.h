#ifndef WAVEMR_CORE_RNG_H_
#define WAVEMR_CORE_RNG_H_

#include <cstdint>

namespace wavemr {

/// Finalizer from SplitMix64 / MurmurHash3: a high-quality 64-bit mixer.
constexpr uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Sequential SplitMix64 generator. Fast, seedable, and good enough for the
/// sampling experiments in this library (we never need crypto strength).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next pseudo-random 64-bit value.
  uint64_t NextU64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); bound must be > 0. Uses rejection to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// A stateless, counter-based random stream: Stream(seed, index) yields an
/// independent-looking generator for each index. This is what makes datasets
/// in this library *deterministically random-accessible*: record i of split j
/// can be regenerated in O(1) without scanning, which the RandomRecordReader
/// (paper Appendix B) relies on.
class CounterRng {
 public:
  CounterRng(uint64_t seed, uint64_t stream, uint64_t counter)
      : base_(Mix64(seed ^ Mix64(stream ^ 0x5bf03635f0935ad5ULL)) ^
              Mix64(counter ^ 0x27220a95fe1cbf45ULL)),
        i_(0) {}

  uint64_t NextU64() { return Mix64(base_ + (++i_) * 0x9e3779b97f4a7c15ULL); }

  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t base_;
  uint64_t i_;
};

/// Pseudo-random permutation of [0, 2^bits) built from a 4-round Feistel
/// network. Used to scatter Zipf ranks over the key domain so that frequency
/// is not a monotone function of key value (see DESIGN.md).
class FeistelPermutation {
 public:
  /// bits must be in [2, 62] and even behaviour is handled internally.
  FeistelPermutation(uint64_t seed, uint32_t bits);

  /// Maps x in [0, 2^bits) to a unique value in the same range.
  uint64_t Apply(uint64_t x) const;

  /// Inverse mapping.
  uint64_t Invert(uint64_t y) const;

  uint32_t bits() const { return bits_; }

 private:
  static constexpr int kRounds = 4;
  uint32_t bits_;
  uint32_t half_bits_;
  uint64_t half_mask_;
  uint64_t keys_[kRounds];
};

}  // namespace wavemr

#endif  // WAVEMR_CORE_RNG_H_
