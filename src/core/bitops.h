#ifndef WAVEMR_CORE_BITOPS_H_
#define WAVEMR_CORE_BITOPS_H_

#include <bit>
#include <cstdint>

#include "core/logging.h"

namespace wavemr {

/// True if x is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); requires x > 0.
constexpr uint32_t Log2Floor(uint64_t x) {
  return 63 - static_cast<uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)); requires x > 0. Log2Ceil(1) == 0.
constexpr uint32_t Log2Ceil(uint64_t x) {
  return x <= 1 ? 0 : Log2Floor(x - 1) + 1;
}

/// Smallest power of two >= x; requires x >= 1 and x <= 2^63.
constexpr uint64_t CeilPow2(uint64_t x) { return uint64_t{1} << Log2Ceil(x); }

/// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace wavemr

#endif  // WAVEMR_CORE_BITOPS_H_
