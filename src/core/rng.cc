#include "core/rng.h"

#include "core/logging.h"

namespace wavemr {

uint64_t Rng::NextBounded(uint64_t bound) {
  WAVEMR_CHECK_GT(bound, 0u);
  // Rejection sampling on the top bits to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

FeistelPermutation::FeistelPermutation(uint64_t seed, uint32_t bits) : bits_(bits) {
  WAVEMR_CHECK_GE(bits, 2u);
  WAVEMR_CHECK_LE(bits, 62u);
  // Round up to an even bit count internally; Apply() cycles values that
  // fall outside [0, 2^bits) back into range (cycle-walking).
  half_bits_ = (bits + 1) / 2;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
  for (int r = 0; r < kRounds; ++r) {
    keys_[r] = Mix64(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(r + 1)));
  }
}

uint64_t FeistelPermutation::Apply(uint64_t x) const {
  const uint64_t domain = uint64_t{1} << bits_;
  WAVEMR_DCHECK(x < domain);
  // Cycle-walk: the Feistel network permutes [0, 2^(2*half_bits)); repeat
  // until the image lands back inside [0, 2^bits).
  uint64_t v = x;
  do {
    uint64_t left = v >> half_bits_;
    uint64_t right = v & half_mask_;
    for (int r = 0; r < kRounds; ++r) {
      uint64_t f = Mix64(right ^ keys_[r]) & half_mask_;
      uint64_t new_left = right;
      right = left ^ f;
      left = new_left;
    }
    v = (left << half_bits_) | right;
  } while (v >= domain);
  return v;
}

uint64_t FeistelPermutation::Invert(uint64_t y) const {
  const uint64_t domain = uint64_t{1} << bits_;
  WAVEMR_DCHECK(y < domain);
  uint64_t v = y;
  do {
    uint64_t left = v >> half_bits_;
    uint64_t right = v & half_mask_;
    for (int r = kRounds - 1; r >= 0; --r) {
      uint64_t f = Mix64(left ^ keys_[r]) & half_mask_;
      uint64_t new_right = left;
      left = right ^ f;
      right = new_right;
    }
    v = (left << half_bits_) | right;
  } while (v >= domain);
  return v;
}

}  // namespace wavemr
