#ifndef WAVEMR_CORE_FLAT_HASH_H_
#define WAVEMR_CORE_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <utility>
#include <vector>

#include "core/bitops.h"
#include "core/rng.h"

namespace wavemr {

/// Open-addressing hash map tuned for the map-side hot path: integer keys,
/// power-of-two capacity, Mix64-scrambled linear probing, and no tombstones
/// (the data plane only ever inserts and accumulates -- erase is not
/// supported, which is what makes probe sequences never degrade). Compared
/// to std::unordered_map this removes the per-node allocation and the
/// pointer chase per lookup; slots live in one contiguous array.
///
/// K must be convertible to uint64_t (all shuffle keys in this codebase are
/// integers); V must be default-constructible. Iteration is in slot order,
/// which is deterministic for a given insertion sequence -- the engine
/// relies on that for bit-identical results across thread counts.
template <typename K, typename V>
class FlatHashCounter {
 public:
  using value_type = std::pair<K, V>;

  FlatHashCounter() = default;

  FlatHashCounter(std::initializer_list<value_type> init) {
    reserve(init.size());
    for (const value_type& kv : init) *FindOrEmplace(kv.first, kv.second).first = kv.second;
  }

  /// Pre-sizes the table for `n` distinct keys without rehashing.
  void reserve(size_t n) {
    size_t needed = NormalizeCapacity(n);
    if (needed > capacity()) Rehash(needed);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Find-or-default-insert, unordered_map-style.
  V& operator[](const K& key) { return *FindOrEmplace(key, V{}).first; }

  /// Returns (pointer to value, inserted). When the key is new its value is
  /// copy-initialized from `init`.
  std::pair<V*, bool> FindOrEmplace(const K& key, const V& init) {
    if (2 * (size_ + 1) > capacity()) Rehash(NormalizeCapacity(size_ + 1));
    size_t i = ProbeStart(key);
    while (used_[i]) {
      if (slots_[i].first == key) return {&slots_[i].second, false};
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].first = key;
    slots_[i].second = init;
    ++size_;
    return {&slots_[i].second, true};
  }

  /// Checked lookup; the key must be present.
  const V& at(const K& key) const {
    const V* v = Find(key);
    WAVEMR_CHECK(v != nullptr);
    return *v;
  }

  /// Returns the value for `key`, or nullptr when absent.
  const V* Find(const K& key) const {
    if (slots_.empty()) return nullptr;
    size_t i = ProbeStart(key);
    while (used_[i]) {
      if (slots_[i].first == key) return &slots_[i].second;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  /// Forward iteration over occupied slots, in slot order. Yields
  /// std::pair<K, V>& so structured bindings and ->first/->second match the
  /// std::unordered_map call sites this replaces.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::pair<K, V>;
    using difference_type = std::ptrdiff_t;
    using pointer = const value_type*;
    using reference = const value_type&;

    const_iterator(const FlatHashCounter* map, size_t index)
        : map_(map), index_(index) {
      SkipEmpty();
    }
    const value_type& operator*() const { return map_->slots_[index_]; }
    const value_type* operator->() const { return &map_->slots_[index_]; }
    const_iterator& operator++() {
      ++index_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return index_ == o.index_; }
    bool operator!=(const const_iterator& o) const { return index_ != o.index_; }

   private:
    void SkipEmpty() {
      while (index_ < map_->slots_.size() && !map_->used_[index_]) ++index_;
    }
    const FlatHashCounter* map_;
    size_t index_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  const_iterator find(const K& key) const {
    if (!slots_.empty()) {
      size_t i = ProbeStart(key);
      while (used_[i]) {
        if (slots_[i].first == key) return const_iterator(this, i);
        i = (i + 1) & mask_;
      }
    }
    return end();
  }

  /// Order-independent equality (slot order differs with insertion history).
  bool operator==(const FlatHashCounter& other) const {
    if (size_ != other.size_) return false;
    for (const value_type& kv : *this) {
      const V* v = other.Find(kv.first);
      if (v == nullptr || !(*v == kv.second)) return false;
    }
    return true;
  }
  bool operator!=(const FlatHashCounter& other) const { return !(*this == other); }

 private:
  static size_t NormalizeCapacity(size_t n) {
    // Load factor <= 0.5: fast probes, and the doubling keeps slot order a
    // pure function of the key sequence.
    uint64_t target = 2 * static_cast<uint64_t>(n);
    if (target < kMinCapacity) target = kMinCapacity;
    return static_cast<size_t>(CeilPow2(target));
  }

  size_t ProbeStart(const K& key) const {
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(key))) & mask_;
  }

  void Rehash(size_t new_capacity) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(new_capacity, value_type{});
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (size_t s = 0; s < old_slots.size(); ++s) {
      if (!old_used[s]) continue;
      size_t i = ProbeStart(old_slots[s].first);
      while (used_[i]) i = (i + 1) & mask_;
      used_[i] = 1;
      slots_[i] = std::move(old_slots[s]);
    }
  }

  static constexpr size_t kMinCapacity = 16;

  std::vector<value_type> slots_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace wavemr

#endif  // WAVEMR_CORE_FLAT_HASH_H_
