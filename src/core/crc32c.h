#ifndef WAVEMR_CORE_CRC32C_H_
#define WAVEMR_CORE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace wavemr {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum guarding spill-file blocks and snapshot footers
/// (docs/file-formats.md). Uses the SSE4.2 / ARMv8 CRC instructions when the
/// running CPU has them (runtime-dispatched, no special build flags needed)
/// and a slicing-by-8 table fallback otherwise; both paths produce identical
/// values, so files written on one machine verify on any other.
///
/// Crc32cExtend continues a running checksum: `Crc32cExtend(Crc32c(a), b)`
/// equals `Crc32c(concat(a, b))`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace wavemr

#endif  // WAVEMR_CORE_CRC32C_H_
