#include "core/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/logging.h"

namespace wavemr {

namespace {

/// Classic dynamic-programming edit distance, capped inputs (flag names are
/// short, so the quadratic cost is irrelevant).
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') return false;
  *out = v;
  return true;
}

bool ParseI32(const std::string& s, int* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

void FlagParser::String(const std::string& name, std::string* out,
                        const std::string& help) {
  WAVEMR_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Kind::kString, out});
}

void FlagParser::U64(const std::string& name, uint64_t* out,
                     const std::string& help) {
  WAVEMR_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Kind::kU64, out});
}

void FlagParser::I32(const std::string& name, int* out,
                     const std::string& help) {
  WAVEMR_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Kind::kI32, out});
}

void FlagParser::F64(const std::string& name, double* out,
                     const std::string& help) {
  WAVEMR_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Kind::kF64, out});
}

void FlagParser::Bool(const std::string& name, bool* out,
                      const std::string& help) {
  WAVEMR_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Kind::kBool, out});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string FlagParser::Suggest(const std::string& name) const {
  const Flag* best = nullptr;
  size_t best_dist = 4;  // only suggest within edit distance 3
  for (const Flag& f : flags_) {
    const size_t d = EditDistance(name, f.name);
    if (d < best_dist) {
      best_dist = d;
      best = &f;
    }
  }
  if (best == nullptr) return "";
  return " (did you mean --" + best->name + "?)";
}

Status FlagParser::SetValue(const Flag& flag, const std::string& value) {
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Kind::kU64:
      if (!ParseU64(value, static_cast<uint64_t*>(flag.target))) {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects a non-negative integer, got "
                                       "\"" + value + "\"");
      }
      return Status::OK();
    case Kind::kI32:
      if (!ParseI32(value, static_cast<int*>(flag.target))) {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects an integer, got \"" + value +
                                       "\"");
      }
      return Status::OK();
    case Kind::kF64:
      if (!ParseF64(value, static_cast<double*>(flag.target))) {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects a number, got \"" + value +
                                       "\"");
      }
      return Status::OK();
    case Kind::kBool:
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects true|false, got \"" + value +
                                       "\"");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagParser::Parse(int argc, char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      return Status::InvalidArgument("unexpected argument: " + arg +
                                     " (flags look like --name=value)");
    }
    const size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name + Suggest(name));
    }
    if (eq == std::string::npos) {
      if (flag->kind != Kind::kBool) {
        return Status::InvalidArgument("--" + name +
                                       " requires a value: --" + name +
                                       "=...");
      }
      *static_cast<bool*>(flag->target) = true;
      continue;
    }
    WAVEMR_RETURN_IF_ERROR(SetValue(*flag, arg.substr(eq + 1)));
  }
  return Status::OK();
}

std::string FlagParser::Help() const {
  std::string out = "usage: " + usage_ + "\n";
  size_t width = 0;
  for (const Flag& f : flags_) width = std::max(width, f.name.size());
  for (const Flag& f : flags_) {
    std::string default_str;
    switch (f.kind) {
      case Kind::kString: {
        const auto& v = *static_cast<const std::string*>(f.target);
        if (!v.empty()) default_str = "default " + v;
        break;
      }
      case Kind::kU64:
        default_str = "default " +
                      std::to_string(*static_cast<const uint64_t*>(f.target));
        break;
      case Kind::kI32:
        default_str =
            "default " + std::to_string(*static_cast<const int*>(f.target));
        break;
      case Kind::kF64: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "default %g",
                      *static_cast<const double*>(f.target));
        default_str = buf;
        break;
      }
      case Kind::kBool:
        break;  // bools default to false; stating it is noise
    }
    out += "  --" + f.name + std::string(width - f.name.size() + 2, ' ') +
           f.help;
    if (!default_str.empty()) out += " (" + default_str + ")";
    out += "\n";
  }
  out += "  --help" + std::string(width > 4 ? width - 4 + 2 : 2, ' ') +
         "show this message\n";
  return out;
}

}  // namespace wavemr
