#ifndef WAVEMR_EXACT_H_WTOPK_H_
#define WAVEMR_EXACT_H_WTOPK_H_

#include "histogram/algorithm.h"

namespace wavemr {

/// The paper's exact algorithm (Section 3 + Appendix A): a three-round
/// modified TPUT over local wavelet coefficients, handling positive and
/// negative scores and maximizing |aggregate|.
///
///   Round 1: each split computes its local coefficients (sparse transform),
///            emits its k highest and k lowest, marking the k-th of each so
///            the coordinator learns the per-split bounds w~+_j / w~-_j;
///            unemitted coefficients are persisted in the split's state file.
///   Round 2: T1/m is broadcast via the Job Configuration; splits emit every
///            unsent coefficient with |w| > T1/m; the coordinator refines
///            bounds to +-(missing * T1/m), computes T2, prunes, and
///            publishes the candidate set R through the Distributed Cache.
///   Round 3: splits emit their remaining scores for items in R; the
///            coordinator now has exact sums and returns the top-k by
///            magnitude.
///
/// The result is exactly the best k-term representation (ties broken
/// arbitrarily, as in any top-k).
class HWTopk : public HistogramAlgorithm {
 public:
  std::string name() const override { return "H-WTopk"; }
  StatusOr<BuildResult> Build(const Dataset& dataset,
                              const BuildOptions& options) override;
};

}  // namespace wavemr

#endif  // WAVEMR_EXACT_H_WTOPK_H_
