#ifndef WAVEMR_EXACT_H_WTOPK2D_H_
#define WAVEMR_EXACT_H_WTOPK2D_H_

#include <vector>

#include "core/status.h"
#include "exact/tput.h"
#include "wavelet/transform2d.h"

namespace wavemr {

/// The paper's multi-dimensional extension of H-WTopk (Section 3): the 2-D
/// transform is linear, so any 2-D coefficient is still the sum of the
/// corresponding local 2-D coefficients, and the same two-sided TPUT finds
/// the top-k by magnitude. This entry point runs the coordinator protocol
/// over per-split 2-D cell lists; the returned TputResult carries the
/// per-round message counts (the communication the MapReduce rounds would
/// shuffle).
struct Topk2DResult {
  /// Flattened coefficient ids (Coeff2DIndex) with exact values, descending
  /// by |value|.
  std::vector<WCoeff> topk;
  TputResult protocol;
};

/// splits[j] holds split j's nonzero cells (x < rows, y < cols; rows and
/// cols powers of two). k is the synopsis size.
StatusOr<Topk2DResult> HWTopk2D(const std::vector<std::vector<Cell2D>>& splits,
                                uint64_t rows, uint64_t cols, size_t k);

}  // namespace wavemr

#endif  // WAVEMR_EXACT_H_WTOPK2D_H_
