#include "exact/send_v.h"

#include <algorithm>

#include "core/flat_hash.h"
#include "mapreduce/job.h"
#include "wavelet/sparse.h"
#include "wavelet/topk.h"

namespace wavemr {

namespace {

// K2 = key x, V2 = local count. The paper represents v(x) with 4-byte ints
// in mappers (8-byte at the reducer), so a pair costs 4 + 4 bytes on the
// wire.
constexpr uint64_t kPairBytes = 8;

class SendVMapper : public MapperBase<SendVMapper, uint64_t, uint64_t> {
 public:
  explicit SendVMapper(bool emit_per_record) : emit_per_record_(emit_per_record) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    if (emit_per_record_) {
      // Hadoop's default pipeline: one pair per record; the engine-side
      // Combiner (if enabled) merges them before the shuffle.
      ctx.input().ScanBatches([&ctx](const uint64_t* keys, uint64_t n) {
        for (uint64_t i = 0; i < n; ++i) ctx.Emit(keys[i], 1);
      });
      return;
    }
    // The paper's pattern: aggregate in a hash map, emit from Close.
    FlatHashCounter<uint64_t, uint64_t> freq;
    freq.reserve(std::min(ctx.input().num_records(),
                          ctx.input().dataset_info().domain_size));
    ctx.input().ScanBatches([&freq](const uint64_t* keys, uint64_t n) {
      for (uint64_t i = 0; i < n; ++i) ++freq[keys[i]];
    });
    for (const auto& [key, count] : freq) ctx.Emit(key, count);
  }

 private:
  bool emit_per_record_;
};

class SendVReducer : public Reducer<uint64_t, uint64_t> {
 public:
  explicit SendVReducer(const BuildOptions& options) : options_(options) {}

  void Absorb(const uint64_t& key, const uint64_t& count,
              ReduceContext<uint64_t, uint64_t>& ctx) override {
    (void)ctx;
    freq_[key] += count;
  }

  void Finish(ReduceContext<uint64_t, uint64_t>& ctx) override {
    // Centralized best k-term representation over the aggregated v.
    SparseVector v;
    v.reserve(freq_.size());
    for (const auto& [key, count] : freq_) {
      v.emplace_back(key, static_cast<double>(count));
    }
    ctx.ChargeCpuNs(static_cast<double>(v.size()) * PointUpdateFanout(u_) *
                    kCoeffOpNs);
    std::vector<WCoeff> coeffs = SparseHaar(v, u_);
    ctx.ChargeCpuNs(static_cast<double>(coeffs.size()) * kTopKSelectNs);
    result_ = TopKByMagnitude(std::move(coeffs), options_.k);
  }

  void set_domain(uint64_t u) { u_ = u; }
  std::vector<WCoeff> TakeResult() { return std::move(result_); }

 private:
  BuildOptions options_;
  uint64_t u_ = 1;
  FlatHashCounter<uint64_t, uint64_t> freq_;
  std::vector<WCoeff> result_;
};

}  // namespace

StatusOr<BuildResult> SendV::Build(const Dataset& dataset, const BuildOptions& options) {
  MrEnv env;
  env.cluster = options.cluster;
  env.cost_model = options.cost_model;
  env.io = options.io;
  env.threads = options.threads;
  env.reduce_tasks = options.reduce_tasks;

  SendVReducer reducer(options);
  reducer.set_domain(dataset.info().domain_size);

  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "send-v";
  plan.mapper_factory = [&options](uint64_t) {
    return std::make_unique<SendVMapper>(options.send_v_emit_per_record);
  };
  plan.reducer = &reducer;
  plan.wire_bytes = [](const uint64_t*, const uint64_t*, size_t n) {
    return n * kPairBytes;
  };
  if (options.send_v_emit_per_record && !options.send_v_disable_combiner) {
    plan.combiner = [](const uint64_t& a, const uint64_t& b) { return a + b; };
  }
  plan.sorted_shuffle = options.force_sorted_shuffle;

  RunRound(plan, dataset, &env);

  BuildResult result;
  result.histogram = WaveletHistogram(dataset.info().domain_size, reducer.TakeResult());
  result.stats = std::move(env.stats);
  return result;
}

}  // namespace wavemr
