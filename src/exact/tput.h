#ifndef WAVEMR_EXACT_TPUT_H_
#define WAVEMR_EXACT_TPUT_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wavemr {

/// Local score table of one node: item -> score. Items absent from every
/// node score zero.
using LocalScores = std::unordered_map<uint64_t, double>;

/// Result of a distributed top-k run, with per-round message counts so the
/// algorithm's communication behaviour can be studied (and benchmarked)
/// independently of the MapReduce plumbing.
struct TputResult {
  /// Exact aggregate of every item that survived to round 3, in descending
  /// |score| (the first k are the answer).
  std::vector<std::pair<uint64_t, double>> topk;
  uint64_t round1_messages = 0;
  uint64_t round2_messages = 0;
  uint64_t round3_messages = 0;
  double t1 = 0.0;  // round-1 pruning threshold
  double t2 = 0.0;  // round-2 refined threshold
  uint64_t Messages() const {
    return round1_messages + round2_messages + round3_messages;
  }
};

/// Classic TPUT (Cao & Wang, PODC'04): exact top-k by *signed sum* over
/// non-negative scores, three rounds. Provided as the baseline the paper's
/// modification departs from; CHECK-fails if any score is negative.
TputResult ClassicTput(const std::vector<LocalScores>& nodes, size_t k);

/// The paper's modified TPUT (Section 3): handles positive and negative
/// scores and returns the top-k aggregates of largest |sum|, by interleaving
/// two TPUT instances (upper bound tau+ from the k-th highest unseen scores,
/// lower bound tau- from the k-th lowest; magnitude lower bound
/// tau = 0 if the bounds straddle zero, else min(|tau+|, |tau-|)).
TputResult TwoSidedTput(const std::vector<LocalScores>& nodes, size_t k);

/// Brute-force reference: exact aggregates sorted by descending magnitude.
std::vector<std::pair<uint64_t, double>> ExactTopKByMagnitude(
    const std::vector<LocalScores>& nodes, size_t k);

}  // namespace wavemr

#endif  // WAVEMR_EXACT_TPUT_H_
