#ifndef WAVEMR_EXACT_SEND_COEF_H_
#define WAVEMR_EXACT_SEND_COEF_H_

#include "histogram/algorithm.h"

namespace wavemr {

/// The paper's second baseline (Section 3): because the transform is linear,
/// w_i = sum_j <v_j, psi_i>, so each mapper computes its *local* wavelet
/// coefficients and emits every nonzero (i, w_{i,j}); the reducer sums them
/// and selects the top-k. The number of nonzero local coefficients grows
/// like |v_j| log u, so Send-Coef loses to Send-V at every tested domain
/// size (Figure 12) -- which is why the paper drops it from the other plots.
class SendCoef : public HistogramAlgorithm {
 public:
  std::string name() const override { return "Send-Coef"; }
  StatusOr<BuildResult> Build(const Dataset& dataset,
                              const BuildOptions& options) override;
};

}  // namespace wavemr

#endif  // WAVEMR_EXACT_SEND_COEF_H_
