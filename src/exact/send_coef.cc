#include "exact/send_coef.h"

#include <algorithm>

#include "core/flat_hash.h"
#include "mapreduce/job.h"
#include "wavelet/haar.h"
#include "wavelet/sparse.h"
#include "wavelet/topk.h"

namespace wavemr {

namespace {

// K2 = coefficient index (4 bytes on the wire), V2 = 8-byte double.
constexpr uint64_t kPairBytes = 12;

class SendCoefMapper : public MapperBase<SendCoefMapper, uint64_t, double> {
 public:
  explicit SendCoefMapper(const BuildOptions& options) : options_(options) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    const uint64_t u = ctx.input().dataset_info().domain_size;
    FlatHashCounter<uint64_t, uint64_t> freq;
    freq.reserve(std::min(ctx.input().num_records(), u));
    ctx.input().ScanBatches([&freq](const uint64_t* keys, uint64_t n) {
      for (uint64_t i = 0; i < n; ++i) ++freq[keys[i]];
    });

    if (options_.use_dense_local_transform) {
      // Ablation: the O(u) centralized transform of [26] instead of the
      // O(|v_j| log u) streaming transform of [20] (Appendix A discussion).
      std::vector<double> dense(u, 0.0);
      for (const auto& [key, count] : freq) dense[key] = static_cast<double>(count);
      ctx.ChargeCpuNs(static_cast<double>(u) * kCoeffOpNs);
      std::vector<double> coeffs = ForwardHaar(dense);
      for (uint64_t i = 0; i < u; ++i) {
        if (coeffs[i] != 0.0) ctx.Emit(i, coeffs[i]);
      }
      return;
    }

    SparseVector v;
    v.reserve(freq.size());
    for (const auto& [key, count] : freq) {
      v.emplace_back(key, static_cast<double>(count));
    }
    ctx.ChargeCpuNs(static_cast<double>(v.size()) * PointUpdateFanout(u) * kCoeffOpNs);
    for (const WCoeff& c : SparseHaar(v, u)) ctx.Emit(c.index, c.value);
  }

 private:
  BuildOptions options_;
};

class SendCoefReducer : public Reducer<uint64_t, double> {
 public:
  explicit SendCoefReducer(size_t k) : k_(k) {}

  void Absorb(const uint64_t& index, const double& value,
              ReduceContext<uint64_t, double>& ctx) override {
    (void)ctx;
    sums_[index] += value;
  }

  void Finish(ReduceContext<uint64_t, double>& ctx) override {
    std::vector<WCoeff> coeffs;
    coeffs.reserve(sums_.size());
    for (const auto& [idx, val] : sums_) coeffs.push_back({idx, val});
    ctx.ChargeCpuNs(static_cast<double>(coeffs.size()) * kTopKSelectNs);
    result_ = TopKByMagnitude(std::move(coeffs), k_);
  }

  std::vector<WCoeff> TakeResult() { return std::move(result_); }

 private:
  size_t k_;
  FlatHashCounter<uint64_t, double> sums_;
  std::vector<WCoeff> result_;
};

}  // namespace

StatusOr<BuildResult> SendCoef::Build(const Dataset& dataset,
                                      const BuildOptions& options) {
  MrEnv env;
  env.cluster = options.cluster;
  env.cost_model = options.cost_model;
  env.io = options.io;
  env.threads = options.threads;
  env.reduce_tasks = options.reduce_tasks;

  SendCoefReducer reducer(options.k);

  JobPlan<uint64_t, double> plan;
  plan.name = "send-coef";
  plan.mapper_factory = [&options](uint64_t) {
    return std::make_unique<SendCoefMapper>(options);
  };
  plan.reducer = &reducer;
  plan.wire_bytes = [](const uint64_t*, const double*, size_t n) {
    return n * kPairBytes;
  };
  // Hadoop's reducer contract: coefficient partials arrive grouped and
  // sorted by index; each map task sorts its run on its worker thread.
  plan.sorted_shuffle = true;

  RunRound(plan, dataset, &env);

  BuildResult result;
  result.histogram = WaveletHistogram(dataset.info().domain_size, reducer.TakeResult());
  result.stats = std::move(env.stats);
  return result;
}

}  // namespace wavemr
