#include "exact/tput.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "core/logging.h"

namespace wavemr {

namespace {

bool MagnitudeGreater(const std::pair<uint64_t, double>& a,
                      const std::pair<uint64_t, double>& b) {
  double ma = std::fabs(a.second), mb = std::fabs(b.second);
  if (ma != mb) return ma > mb;
  return a.first < b.first;
}

// k-th largest element of vals (1-based); 0 if fewer than k values.
double KthLargest(std::vector<double> vals, size_t k) {
  if (vals.size() < k || k == 0) return 0.0;
  std::nth_element(vals.begin(), vals.begin() + (k - 1), vals.end(),
                   std::greater<>());
  return vals[k - 1];
}

}  // namespace

std::vector<std::pair<uint64_t, double>> ExactTopKByMagnitude(
    const std::vector<LocalScores>& nodes, size_t k) {
  std::unordered_map<uint64_t, double> total;
  for (const LocalScores& node : nodes) {
    for (const auto& [item, score] : node) total[item] += score;
  }
  std::vector<std::pair<uint64_t, double>> all(total.begin(), total.end());
  std::sort(all.begin(), all.end(), MagnitudeGreater);
  if (all.size() > k) all.resize(k);
  return all;
}

TputResult ClassicTput(const std::vector<LocalScores>& nodes, size_t k) {
  const size_t m = nodes.size();
  TputResult result;

  // Round 1: each node sends its k highest-scored items.
  struct Seen {
    double partial = 0.0;
    std::vector<bool> from;
  };
  std::unordered_map<uint64_t, Seen> seen;
  std::vector<double> kth_high(m, 0.0);

  for (size_t j = 0; j < m; ++j) {
    std::vector<std::pair<uint64_t, double>> local(nodes[j].begin(), nodes[j].end());
    for (const auto& [item, score] : local) {
      WAVEMR_CHECK_GE(score, 0.0) << "ClassicTput requires non-negative scores";
    }
    size_t take = std::min(local.size(), k);
    std::partial_sort(local.begin(), local.begin() + take, local.end(),
                      [](const auto& a, const auto& b) { return a.second > b.second; });
    kth_high[j] = local.size() >= k ? local[k - 1].second : 0.0;
    for (size_t t = 0; t < take; ++t) {
      auto& s = seen[local[t].first];
      if (s.from.empty()) s.from.assign(m, false);
      s.partial += local[t].second;
      s.from[j] = true;
      ++result.round1_messages;
    }
  }

  // T1 = k-th largest partial sum (missing scores assumed 0).
  {
    std::vector<double> partials;
    partials.reserve(seen.size());
    for (const auto& [item, s] : seen) partials.push_back(s.partial);
    result.t1 = KthLargest(std::move(partials), k);
  }

  // Round 2: each node sends every item with score > T1/m not sent before.
  double threshold = result.t1 / static_cast<double>(m);
  for (size_t j = 0; j < m; ++j) {
    for (const auto& [item, score] : nodes[j]) {
      auto it = seen.find(item);
      bool already = it != seen.end() && !it->second.from.empty() && it->second.from[j];
      if (already || score <= threshold) continue;
      auto& s = seen[item];
      if (s.from.empty()) s.from.assign(m, false);
      s.partial += score;
      s.from[j] = true;
      ++result.round2_messages;
    }
  }

  // T2 and pruning with refined upper bounds.
  {
    std::vector<double> partials;
    partials.reserve(seen.size());
    for (const auto& [item, s] : seen) partials.push_back(s.partial);
    result.t2 = KthLargest(std::move(partials), k);
  }
  std::unordered_set<uint64_t> candidates;
  for (const auto& [item, s] : seen) {
    size_t missing = 0;
    for (bool got : s.from) missing += got ? 0 : 1;
    double upper = s.partial + static_cast<double>(missing) * threshold;
    if (upper >= result.t2) candidates.insert(item);
  }

  // Round 3: fetch remaining scores of candidates.
  for (uint64_t item : candidates) {
    auto& s = seen[item];
    for (size_t j = 0; j < m; ++j) {
      if (s.from[j]) continue;
      auto it = nodes[j].find(item);
      if (it != nodes[j].end()) {
        s.partial += it->second;
        ++result.round3_messages;
      }
      s.from[j] = true;
    }
  }

  std::vector<std::pair<uint64_t, double>> finals;
  finals.reserve(candidates.size());
  for (uint64_t item : candidates) finals.emplace_back(item, seen[item].partial);
  std::sort(finals.begin(), finals.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (finals.size() > k) finals.resize(k);
  result.topk = std::move(finals);
  return result;
}

TputResult TwoSidedTput(const std::vector<LocalScores>& nodes, size_t k) {
  const size_t m = nodes.size();
  TputResult result;

  struct Seen {
    double partial = 0.0;
    std::vector<bool> from;  // from[j]: node j's exact score known
  };
  std::unordered_map<uint64_t, Seen> seen;
  std::vector<double> kth_high(m, 0.0);  // w~+_j
  std::vector<double> kth_low(m, 0.0);   // w~-_j

  auto record = [&](uint64_t item, size_t node, double score, uint64_t* counter) {
    auto& s = seen[item];
    if (s.from.empty()) s.from.assign(m, false);
    if (s.from[node]) return;
    s.partial += score;
    s.from[node] = true;
    ++*counter;
  };

  // ---- Round 1: k highest and k lowest per node. Zero scores of absent
  // items participate implicitly: if a node has fewer than k positive
  // (negative) scores, its k-th highest (lowest) bound is 0.
  for (size_t j = 0; j < m; ++j) {
    std::vector<std::pair<uint64_t, double>> pos, neg;
    for (const auto& [item, score] : nodes[j]) {
      if (score > 0) pos.emplace_back(item, score);
      if (score < 0) neg.emplace_back(item, score);
    }
    size_t tp = std::min(pos.size(), k);
    std::partial_sort(pos.begin(), pos.begin() + tp, pos.end(),
                      [](const auto& a, const auto& b) { return a.second > b.second; });
    size_t tn = std::min(neg.size(), k);
    std::partial_sort(neg.begin(), neg.begin() + tn, neg.end(),
                      [](const auto& a, const auto& b) { return a.second < b.second; });
    kth_high[j] = pos.size() >= k ? pos[k - 1].second : 0.0;
    kth_low[j] = neg.size() >= k ? neg[k - 1].second : 0.0;
    for (size_t t = 0; t < tp; ++t) {
      record(pos[t].first, j, pos[t].second, &result.round1_messages);
    }
    for (size_t t = 0; t < tn; ++t) {
      record(neg[t].first, j, neg[t].second, &result.round1_messages);
    }
  }

  double total_high = 0.0, total_low = 0.0;
  for (size_t j = 0; j < m; ++j) {
    total_high += kth_high[j];
    total_low += kth_low[j];
  }

  // tau(x) = 0 if the bounds straddle zero, else min(|tau+|, |tau-|).
  auto magnitude_lower_bound = [](double tau_plus, double tau_minus) {
    if ((tau_plus >= 0) != (tau_minus >= 0)) return 0.0;
    return std::min(std::fabs(tau_plus), std::fabs(tau_minus));
  };

  {
    std::vector<double> taus;
    taus.reserve(seen.size());
    for (const auto& [item, s] : seen) {
      double tau_plus = s.partial, tau_minus = s.partial;
      // Add the per-node k-th bounds for nodes that did not send x.
      tau_plus += total_high;
      tau_minus += total_low;
      for (size_t j = 0; j < m; ++j) {
        if (s.from[j]) {
          tau_plus -= kth_high[j];
          tau_minus -= kth_low[j];
        }
      }
      taus.push_back(magnitude_lower_bound(tau_plus, tau_minus));
    }
    result.t1 = KthLargest(std::move(taus), k);
  }

  // ---- Round 2: every item with |score| > T1/m, unless already sent.
  const double threshold = result.t1 / static_cast<double>(m);
  for (size_t j = 0; j < m; ++j) {
    for (const auto& [item, score] : nodes[j]) {
      auto it = seen.find(item);
      bool already = it != seen.end() && it->second.from[j];
      if (already || std::fabs(score) <= threshold) continue;
      record(item, j, score, &result.round2_messages);
    }
  }

  // Refined bounds: unseen local scores now bounded by +-T1/m.
  std::vector<uint64_t> candidates;
  {
    std::vector<double> taus;
    taus.reserve(seen.size());
    std::vector<std::pair<uint64_t, double>> prune_bound;  // item -> tau'
    for (const auto& [item, s] : seen) {
      size_t missing = 0;
      for (bool got : s.from) missing += got ? 0 : 1;
      double slack = static_cast<double>(missing) * threshold;
      double tau_plus = s.partial + slack;
      double tau_minus = s.partial - slack;
      taus.push_back(magnitude_lower_bound(tau_plus, tau_minus));
      prune_bound.emplace_back(item,
                               std::max(std::fabs(tau_plus), std::fabs(tau_minus)));
    }
    result.t2 = KthLargest(taus, k);
    for (const auto& [item, bound] : prune_bound) {
      if (bound >= result.t2) candidates.push_back(item);
    }
  }

  // ---- Round 3: fetch candidates' remaining scores; aggregates now exact.
  for (uint64_t item : candidates) {
    auto& s = seen[item];
    for (size_t j = 0; j < m; ++j) {
      if (s.from[j]) continue;
      auto it = nodes[j].find(item);
      if (it != nodes[j].end()) {
        s.partial += it->second;
        ++result.round3_messages;
      }
      s.from[j] = true;
    }
  }

  std::vector<std::pair<uint64_t, double>> finals;
  finals.reserve(candidates.size());
  for (uint64_t item : candidates) finals.emplace_back(item, seen[item].partial);
  std::sort(finals.begin(), finals.end(), MagnitudeGreater);
  if (finals.size() > k) finals.resize(k);
  result.topk = std::move(finals);
  return result;
}

}  // namespace wavemr
