#ifndef WAVEMR_EXACT_SEND_V_H_
#define WAVEMR_EXACT_SEND_V_H_

#include "histogram/algorithm.h"

namespace wavemr {

/// The paper's first baseline (Section 3): every mapper computes its local
/// frequency vector v_j and emits one (x, v_j(x)) pair per distinct key; the
/// single reducer aggregates the global frequency vector and runs the
/// centralized best-k-term algorithm. Exact, one round, O(m u) pairs in the
/// worst case -- the communication hog every other method is measured
/// against.
class SendV : public HistogramAlgorithm {
 public:
  std::string name() const override { return "Send-V"; }
  StatusOr<BuildResult> Build(const Dataset& dataset,
                              const BuildOptions& options) override;
};

}  // namespace wavemr

#endif  // WAVEMR_EXACT_SEND_V_H_
