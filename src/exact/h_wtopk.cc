#include "exact/h_wtopk.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/flat_hash.h"
#include "core/serialize.h"
#include "mapreduce/job.h"
#include "wavelet/haar.h"
#include "wavelet/sparse.h"
#include "wavelet/topk.h"

namespace wavemr {

namespace {

// Intermediate value: (split j, w_{i,j}) with flags marking the sender's
// k-th highest / k-th lowest coefficient. The paper encodes the marks by
// offsetting j by m or 2m; the wire size is the same 4+4+8 = 16 bytes
// either way (key included).
struct HwMsg {
  uint32_t split = 0;
  double value = 0.0;
  uint8_t flags = 0;
};
constexpr uint8_t kMarksKthHigh = 1;
constexpr uint8_t kMarksKthLow = 2;
constexpr uint64_t kPairBytes = 16;

constexpr char kConfigT1OverM[] = "hwtopk.t1_over_m";
constexpr char kCacheCandidates[] = "hwtopk.R";

// ---------------------------------------------------------------------------
// Split state file: the not-yet-sent local coefficients.
// ---------------------------------------------------------------------------

std::string SerializeCoeffs(const std::vector<WCoeff>& coeffs) {
  Serializer s;
  s.Put<uint64_t>(coeffs.size());
  for (const WCoeff& c : coeffs) {
    s.Put<uint64_t>(c.index);
    s.Put<double>(c.value);
  }
  return s.Release();
}

std::vector<WCoeff> DeserializeCoeffs(const std::string& blob) {
  Deserializer d(blob);
  uint64_t n = d.Get<uint64_t>();
  std::vector<WCoeff> coeffs(n);
  for (uint64_t i = 0; i < n; ++i) {
    coeffs[i].index = d.Get<uint64_t>();
    coeffs[i].value = d.Get<double>();
  }
  return coeffs;
}

// ---------------------------------------------------------------------------
// Coordinator state, persisted on the reducer machine between rounds.
// ---------------------------------------------------------------------------

struct CoordItem {
  double partial = 0.0;
  std::vector<bool> from;  // from[j]: split j's exact score is in `partial`
};

struct CoordState {
  uint64_t m = 0;
  double t1 = 0.0;
  std::unordered_map<uint64_t, CoordItem> items;

  std::string Serialize() const {
    Serializer s;
    s.Put<uint64_t>(m);
    s.Put<double>(t1);
    s.Put<uint64_t>(items.size());
    for (const auto& [index, item] : items) {
      s.Put<uint64_t>(index);
      s.Put<double>(item.partial);
      // Bit-packed sender set.
      uint64_t words = (m + 63) / 64;
      for (uint64_t w = 0; w < words; ++w) {
        uint64_t bits = 0;
        for (uint64_t b = 0; b < 64 && w * 64 + b < m; ++b) {
          if (item.from[w * 64 + b]) bits |= uint64_t{1} << b;
        }
        s.Put<uint64_t>(bits);
      }
    }
    return s.Release();
  }

  static CoordState Deserialize(const std::string& blob) {
    Deserializer d(blob);
    CoordState state;
    state.m = d.Get<uint64_t>();
    state.t1 = d.Get<double>();
    uint64_t n = d.Get<uint64_t>();
    state.items.reserve(n * 2);
    uint64_t words = (state.m + 63) / 64;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t index = d.Get<uint64_t>();
      CoordItem item;
      item.partial = d.Get<double>();
      item.from.assign(state.m, false);
      for (uint64_t w = 0; w < words; ++w) {
        uint64_t bits = d.Get<uint64_t>();
        for (uint64_t b = 0; b < 64 && w * 64 + b < state.m; ++b) {
          item.from[w * 64 + b] = (bits >> b) & 1;
        }
      }
      state.items.emplace(index, std::move(item));
    }
    return state;
  }
};

// tau(x) = 0 when the bounds straddle zero, else min(|tau+|, |tau-|).
double MagnitudeLowerBound(double tau_plus, double tau_minus) {
  if ((tau_plus >= 0) != (tau_minus >= 0)) return 0.0;
  return std::min(std::fabs(tau_plus), std::fabs(tau_minus));
}

double KthLargest(std::vector<double> vals, size_t k) {
  if (vals.size() < k || k == 0) return 0.0;
  std::nth_element(vals.begin(), vals.begin() + (k - 1), vals.end(),
                   std::greater<>());
  return vals[k - 1];
}

// ---------------------------------------------------------------------------
// Round 1
// ---------------------------------------------------------------------------

class Round1Mapper : public MapperBase<Round1Mapper, uint64_t, HwMsg> {
 public:
  Round1Mapper(uint64_t split, const BuildOptions& options)
      : split_(static_cast<uint32_t>(split)), options_(options) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    const uint64_t u = ctx.input().dataset_info().domain_size;
    FlatHashCounter<uint64_t, uint64_t> freq;
    freq.reserve(std::min(ctx.input().num_records(), u));
    ctx.input().ScanBatches([&freq](const uint64_t* keys, uint64_t n) {
      for (uint64_t i = 0; i < n; ++i) ++freq[keys[i]];
    });

    std::vector<WCoeff> coeffs;
    if (options_.use_dense_local_transform) {
      std::vector<double> dense(u, 0.0);
      for (const auto& [key, count] : freq) dense[key] = static_cast<double>(count);
      ctx.ChargeCpuNs(static_cast<double>(u) * kCoeffOpNs);
      std::vector<double> w = ForwardHaar(dense);
      for (uint64_t i = 0; i < u; ++i) {
        if (w[i] != 0.0) coeffs.push_back({i, w[i]});
      }
    } else {
      SparseVector v;
      v.reserve(freq.size());
      for (const auto& [key, count] : freq) {
        v.emplace_back(key, static_cast<double>(count));
      }
      ctx.ChargeCpuNs(static_cast<double>(v.size()) * PointUpdateFanout(u) *
                      kCoeffOpNs);
      coeffs = SparseHaar(v, u);
    }
    ctx.ChargeCpuNs(static_cast<double>(coeffs.size()) * kTopKSelectNs);

    // k highest positive and k lowest negative coefficients. Absent
    // coefficients are exactly zero, so when a split has fewer than k
    // positive (negative) entries the k-th bound is 0 and no mark is sent;
    // the coordinator defaults those bounds to 0.
    const size_t k = options_.k;
    std::vector<WCoeff> pos, neg;
    for (const WCoeff& c : coeffs) {
      (c.value > 0 ? pos : neg).push_back(c);
    }
    size_t tp = std::min(pos.size(), k);
    std::partial_sort(pos.begin(), pos.begin() + tp, pos.end(),
                      [](const WCoeff& a, const WCoeff& b) {
                        if (a.value != b.value) return a.value > b.value;
                        return a.index < b.index;
                      });
    size_t tn = std::min(neg.size(), k);
    std::partial_sort(neg.begin(), neg.begin() + tn, neg.end(),
                      [](const WCoeff& a, const WCoeff& b) {
                        if (a.value != b.value) return a.value < b.value;
                        return a.index < b.index;
                      });

    FlatHashCounter<uint64_t, uint8_t> emitted;  // index -> flags
    emitted.reserve(tp + tn);
    for (size_t t = 0; t < tp; ++t) {
      uint8_t flags = (t == k - 1 && pos.size() >= k) ? kMarksKthHigh : 0;
      emitted.FindOrEmplace(pos[t].index, flags);
    }
    for (size_t t = 0; t < tn; ++t) {
      uint8_t flags = (t == k - 1 && neg.size() >= k) ? kMarksKthLow : 0;
      auto [slot, inserted] = emitted.FindOrEmplace(neg[t].index, flags);
      if (!inserted) *slot |= flags;  // cannot happen (sign-disjoint)
    }

    std::vector<WCoeff> unsent;
    unsent.reserve(coeffs.size() - emitted.size());
    for (const WCoeff& c : coeffs) {
      const uint8_t* flags = emitted.Find(c.index);
      if (flags == nullptr) {
        unsent.push_back(c);
      } else {
        ctx.Emit(c.index, HwMsg{split_, c.value, *flags});
      }
    }
    ctx.SaveState(SerializeCoeffs(unsent));
  }

 private:
  uint32_t split_;
  const BuildOptions& options_;
};

class Round1Reducer : public Reducer<uint64_t, HwMsg> {
 public:
  Round1Reducer(uint64_t m, size_t k) : m_(m), k_(k) {
    kth_high_.assign(m, 0.0);
    kth_low_.assign(m, 0.0);
    state_.m = m;
  }

  void Absorb(const uint64_t& index, const HwMsg& msg,
              ReduceContext<uint64_t, HwMsg>& ctx) override {
    (void)ctx;
    CoordItem& item = state_.items[index];
    if (item.from.empty()) item.from.assign(m_, false);
    if (!item.from[msg.split]) {
      item.partial += msg.value;
      item.from[msg.split] = true;
    }
    if (msg.flags & kMarksKthHigh) kth_high_[msg.split] = msg.value;
    if (msg.flags & kMarksKthLow) kth_low_[msg.split] = msg.value;
  }

  void Finish(ReduceContext<uint64_t, HwMsg>& ctx) override {
    double total_high = 0.0, total_low = 0.0;
    for (uint64_t j = 0; j < m_; ++j) {
      total_high += kth_high_[j];
      total_low += kth_low_[j];
    }
    std::vector<double> taus;
    taus.reserve(state_.items.size());
    for (const auto& [index, item] : state_.items) {
      double tau_plus = item.partial + total_high;
      double tau_minus = item.partial + total_low;
      for (uint64_t j = 0; j < m_; ++j) {
        if (item.from[j]) {
          tau_plus -= kth_high_[j];
          tau_minus -= kth_low_[j];
        }
      }
      taus.push_back(MagnitudeLowerBound(tau_plus, tau_minus));
    }
    ctx.ChargeCpuNs(static_cast<double>(state_.items.size()) * m_ * 2.0);
    state_.t1 = KthLargest(std::move(taus), k_);
    ctx.SaveState(state_.Serialize());
  }

  double t1() const { return state_.t1; }

 private:
  uint64_t m_;
  size_t k_;
  std::vector<double> kth_high_, kth_low_;
  CoordState state_;
};

// ---------------------------------------------------------------------------
// Round 2
// ---------------------------------------------------------------------------

class Round2Mapper : public MapperBase<Round2Mapper, uint64_t, HwMsg> {
 public:
  explicit Round2Mapper(uint64_t split) : split_(static_cast<uint32_t>(split)) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    // No input-split scan in this round: only the state file is read.
    auto blob = ctx.LoadState();
    WAVEMR_CHECK(blob.ok()) << "round-2 mapper missing split state";
    std::vector<WCoeff> coeffs = DeserializeCoeffs(*blob);
    double threshold = ctx.config().GetDouble(kConfigT1OverM).value();
    ctx.ChargeCpuNs(static_cast<double>(coeffs.size()) * kStateEntryNs);

    std::vector<WCoeff> unsent;
    unsent.reserve(coeffs.size());
    for (const WCoeff& c : coeffs) {
      if (std::fabs(c.value) > threshold) {
        ctx.Emit(c.index, HwMsg{split_, c.value, 0});
      } else {
        unsent.push_back(c);
      }
    }
    ctx.SaveState(SerializeCoeffs(unsent));
  }

 private:
  uint32_t split_;
};

class Round2Reducer : public Reducer<uint64_t, HwMsg> {
 public:
  explicit Round2Reducer(size_t k) : k_(k) {}

  void Start(ReduceContext<uint64_t, HwMsg>& ctx) override {
    auto blob = ctx.LoadState();
    WAVEMR_CHECK(blob.ok()) << "round-2 reducer missing coordinator state";
    state_ = CoordState::Deserialize(*blob);
  }

  void Absorb(const uint64_t& index, const HwMsg& msg,
              ReduceContext<uint64_t, HwMsg>& ctx) override {
    (void)ctx;
    CoordItem& item = state_.items[index];
    if (item.from.empty()) item.from.assign(state_.m, false);
    if (!item.from[msg.split]) {
      item.partial += msg.value;
      item.from[msg.split] = true;
    }
  }

  void Finish(ReduceContext<uint64_t, HwMsg>& ctx) override {
    const double threshold = state_.t1 / static_cast<double>(state_.m);
    std::vector<double> taus;
    std::vector<std::pair<uint64_t, double>> prune_bound;
    taus.reserve(state_.items.size());
    prune_bound.reserve(state_.items.size());
    for (const auto& [index, item] : state_.items) {
      uint64_t missing = 0;
      for (bool got : item.from) missing += got ? 0 : 1;
      double slack = static_cast<double>(missing) * threshold;
      double tau_plus = item.partial + slack;
      double tau_minus = item.partial - slack;
      taus.push_back(MagnitudeLowerBound(tau_plus, tau_minus));
      prune_bound.emplace_back(index,
                               std::max(std::fabs(tau_plus), std::fabs(tau_minus)));
    }
    ctx.ChargeCpuNs(static_cast<double>(state_.items.size()) * state_.m);
    t2_ = KthLargest(taus, k_);

    // Keep only candidates: items whose refined bound can still reach T2.
    std::vector<uint32_t> candidates;
    for (const auto& [index, bound] : prune_bound) {
      if (bound >= t2_) {
        candidates.push_back(static_cast<uint32_t>(index));
      } else {
        state_.items.erase(index);
      }
    }
    std::sort(candidates.begin(), candidates.end());

    // Publish R through the Distributed Cache (4 bytes per candidate id,
    // like the paper's 4-byte coefficient indices).
    Serializer s;
    for (uint32_t c : candidates) s.Put<uint32_t>(c);
    ctx.PublishToCache(kCacheCandidates, s.Release());
    ctx.SaveState(state_.Serialize());
  }

  double t2() const { return t2_; }

 private:
  size_t k_;
  double t2_ = 0.0;
  CoordState state_;
};

// ---------------------------------------------------------------------------
// Round 3
// ---------------------------------------------------------------------------

class Round3Mapper : public MapperBase<Round3Mapper, uint64_t, HwMsg> {
 public:
  explicit Round3Mapper(uint64_t split) : split_(static_cast<uint32_t>(split)) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    auto blob = ctx.LoadState();
    WAVEMR_CHECK(blob.ok()) << "round-3 mapper missing split state";
    std::vector<WCoeff> coeffs = DeserializeCoeffs(*blob);

    auto cache_blob = ctx.cache().Get(kCacheCandidates);
    WAVEMR_CHECK(cache_blob.ok()) << "round-3 mapper missing candidate set";
    Deserializer d(*cache_blob);
    FlatHashCounter<uint64_t, uint8_t> in_r;
    while (!d.Done()) in_r.FindOrEmplace(d.Get<uint32_t>(), 1);

    ctx.ChargeCpuNs(static_cast<double>(coeffs.size()) * kStateEntryNs);
    // Everything left in the state file was never sent (|w| <= T1/m); emit
    // the candidates' scores so the coordinator can finalize exact sums.
    for (const WCoeff& c : coeffs) {
      if (in_r.Find(c.index) != nullptr) ctx.Emit(c.index, HwMsg{split_, c.value, 0});
    }
  }

 private:
  uint32_t split_;
};

class Round3Reducer : public Reducer<uint64_t, HwMsg> {
 public:
  explicit Round3Reducer(size_t k) : k_(k) {}

  void Start(ReduceContext<uint64_t, HwMsg>& ctx) override {
    auto blob = ctx.LoadState();
    WAVEMR_CHECK(blob.ok()) << "round-3 reducer missing coordinator state";
    state_ = CoordState::Deserialize(*blob);
  }

  void Absorb(const uint64_t& index, const HwMsg& msg,
              ReduceContext<uint64_t, HwMsg>& ctx) override {
    (void)ctx;
    auto it = state_.items.find(index);
    if (it == state_.items.end()) return;  // not a candidate
    if (!it->second.from[msg.split]) {
      it->second.partial += msg.value;
      it->second.from[msg.split] = true;
    }
  }

  void Finish(ReduceContext<uint64_t, HwMsg>& ctx) override {
    std::vector<WCoeff> finals;
    finals.reserve(state_.items.size());
    for (const auto& [index, item] : state_.items) {
      finals.push_back({index, item.partial});
    }
    ctx.ChargeCpuNs(static_cast<double>(finals.size()) * kTopKSelectNs);
    result_ = TopKByMagnitude(std::move(finals), k_);
  }

  std::vector<WCoeff> TakeResult() { return std::move(result_); }

 private:
  size_t k_;
  CoordState state_;
  std::vector<WCoeff> result_;
};

}  // namespace

StatusOr<BuildResult> HWTopk::Build(const Dataset& dataset,
                                    const BuildOptions& options) {
  MrEnv env;
  env.cluster = options.cluster;
  env.cost_model = options.cost_model;
  env.io = options.io;
  env.threads = options.threads;
  env.reduce_tasks = options.reduce_tasks;

  const uint64_t m = dataset.info().num_splits;
  if (dataset.info().domain_size > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("H-WTopk wire format assumes u <= 2^32");
  }
  auto wire = [](const uint64_t*, const HwMsg*, size_t n) { return n * kPairBytes; };

  // ---- Round 1.
  Round1Reducer r1(m, options.k);
  {
    JobPlan<uint64_t, HwMsg> plan;
    plan.name = "h-wtopk-round1";
    plan.mapper_factory = [&options](uint64_t split) {
      return std::make_unique<Round1Mapper>(split, options);
    };
    plan.reducer = &r1;
    plan.wire_bytes = wire;
    // All three rounds use Hadoop's sorted delivery: messages for one
    // coefficient index arrive grouped (splits in ascending order within a
    // group), which is the access pattern the coordinator state wants.
    plan.sorted_shuffle = true;
    RunRound(plan, dataset, &env);
  }

  // The driver ships T1/m to every round-2 task via the Job Configuration.
  env.config.SetDouble(kConfigT1OverM, r1.t1() / static_cast<double>(m));

  // ---- Round 2.
  Round2Reducer r2(options.k);
  {
    JobPlan<uint64_t, HwMsg> plan;
    plan.name = "h-wtopk-round2";
    plan.mapper_factory = [](uint64_t split) {
      return std::make_unique<Round2Mapper>(split);
    };
    plan.reducer = &r2;
    plan.wire_bytes = wire;
    plan.sorted_shuffle = true;
    RunRound(plan, dataset, &env);
  }

  // ---- Round 3.
  Round3Reducer r3(options.k);
  {
    JobPlan<uint64_t, HwMsg> plan;
    plan.name = "h-wtopk-round3";
    plan.mapper_factory = [](uint64_t split) {
      return std::make_unique<Round3Mapper>(split);
    };
    plan.reducer = &r3;
    plan.wire_bytes = wire;
    plan.sorted_shuffle = true;
    RunRound(plan, dataset, &env);
  }

  BuildResult result;
  result.histogram = WaveletHistogram(dataset.info().domain_size, r3.TakeResult());
  result.stats = std::move(env.stats);
  return result;
}

}  // namespace wavemr
