#include "exact/h_wtopk2d.h"

#include "core/bitops.h"

namespace wavemr {

StatusOr<Topk2DResult> HWTopk2D(const std::vector<std::vector<Cell2D>>& splits,
                                uint64_t rows, uint64_t cols, size_t k) {
  if (!IsPowerOfTwo(rows) || !IsPowerOfTwo(cols)) {
    return Status::InvalidArgument("2-D domain sides must be powers of two");
  }
  // Local 2-D transforms: each split's nonzero coefficients become its local
  // score table; the coordinator protocol is dimension-agnostic from here.
  std::vector<LocalScores> nodes;
  nodes.reserve(splits.size());
  for (const std::vector<Cell2D>& cells : splits) {
    for (const Cell2D& cell : cells) {
      if (cell.x >= rows || cell.y >= cols) {
        return Status::InvalidArgument("cell outside the 2-D domain");
      }
    }
    LocalScores scores;
    for (const auto& [index, value] : SparseHaar2DMap(cells, rows, cols)) {
      if (value != 0.0) scores.emplace(index, value);
    }
    nodes.push_back(std::move(scores));
  }

  Topk2DResult result;
  result.protocol = TwoSidedTput(nodes, k);
  result.topk.reserve(result.protocol.topk.size());
  for (const auto& [index, value] : result.protocol.topk) {
    result.topk.push_back({index, value});
  }
  return result;
}

}  // namespace wavemr
