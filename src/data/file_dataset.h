#ifndef WAVEMR_DATA_FILE_DATASET_H_
#define WAVEMR_DATA_FILE_DATASET_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/dataset.h"

namespace wavemr {

/// Writes keys as a fixed-length-record binary file (the on-disk format the
/// paper stores its datasets in).
Status WriteFixedRecordFile(const std::string& path, const std::vector<uint64_t>& keys,
                            uint32_t record_bytes);

/// Reads an entire file into memory.
StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Dataset backed by a binary file of fixed-length records, divided into m
/// contiguous splits (record-aligned byte ranges) like HDFS chunks with
/// replication 1. The file is loaded into memory on open; intended for
/// tests and examples, not the synthetic-at-scale benchmarks.
class FileDataset : public Dataset {
 public:
  static StatusOr<FileDataset> Open(const std::string& path, uint32_t record_bytes,
                                    uint64_t domain_size, uint64_t num_splits);

  const DatasetInfo& info() const override { return info_; }
  uint64_t SplitRecords(uint64_t split) const override;
  uint64_t ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                    uint64_t capacity) const override;
  uint64_t KeyAt(uint64_t split, uint64_t index) const override;

 private:
  FileDataset() = default;

  uint64_t SplitStartRecord(uint64_t split) const;

  std::vector<uint8_t> bytes_;
  DatasetInfo info_;
};

}  // namespace wavemr

#endif  // WAVEMR_DATA_FILE_DATASET_H_
