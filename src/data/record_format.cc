#include "data/record_format.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <queue>
#include <unordered_set>

#include "core/logging.h"

namespace wavemr {

namespace {

uint32_t LoadU32(std::span<const uint8_t> bytes, uint64_t off) {
  uint32_t v;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}

void StoreU32(std::vector<uint8_t>* out, uint32_t v) {
  size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

}  // namespace

// ------------------------------------------------------------ fixed length

std::vector<uint8_t> EncodeFixedRecords(const std::vector<uint64_t>& keys,
                                        uint32_t record_bytes) {
  WAVEMR_CHECK_GE(record_bytes, 4u);
  std::vector<uint8_t> out(keys.size() * record_bytes, 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    WAVEMR_CHECK_LE(keys[i], 0xFFFFFFFFu);
    uint32_t k = static_cast<uint32_t>(keys[i]);
    std::memcpy(out.data() + i * record_bytes, &k, sizeof(k));
  }
  return out;
}

FixedRecordReader::FixedRecordReader(std::span<const uint8_t> bytes,
                                     uint32_t record_bytes)
    : bytes_(bytes), record_bytes_(record_bytes) {
  WAVEMR_CHECK_GE(record_bytes, 4u);
  WAVEMR_CHECK_EQ(bytes.size() % record_bytes, 0u);
  num_records_ = bytes.size() / record_bytes;
}

std::optional<uint64_t> FixedRecordReader::Next() {
  if (pos_ >= num_records_) return std::nullopt;
  return KeyAt(pos_++);
}

uint64_t FixedRecordReader::KeyAt(uint64_t i) const {
  WAVEMR_CHECK_LT(i, num_records_);
  return LoadU32(bytes_, i * record_bytes_);
}

// --------------------------------------------------------- variable length

StatusOr<std::vector<uint8_t>> EncodeVarRecords(const std::vector<VarRecord>& records) {
  std::vector<uint8_t> out;
  for (const VarRecord& rec : records) {
    if (rec.payload.size() < 4) {
      return Status::InvalidArgument("payload must hold at least the 4 key bytes");
    }
    if (rec.payload.size() >= (1u << 24)) {
      return Status::InvalidArgument("payload too large for delimiter-free length");
    }
    for (char c : rec.payload) {
      if (static_cast<uint8_t>(c) == kVarRecordDelimiter) {
        return Status::InvalidArgument("payload contains the delimiter byte");
      }
    }
    size_t off = out.size();
    out.resize(off + rec.payload.size());
    std::memcpy(out.data() + off, rec.payload.data(), rec.payload.size());
    // Patch the first 4 payload bytes with the key.
    uint32_t k = static_cast<uint32_t>(rec.key);
    std::memcpy(out.data() + off, &k, sizeof(k));
    StoreU32(&out, static_cast<uint32_t>(rec.payload.size()));
    out.push_back(kVarRecordDelimiter);
  }
  return out;
}

VarRecord MakeVarRecord(uint64_t key, uint32_t payload_bytes) {
  WAVEMR_CHECK_GE(payload_bytes, 4u);
  VarRecord rec;
  rec.key = key;
  rec.payload.assign(payload_bytes, '\x2A');  // filler != delimiter
  uint32_t k = static_cast<uint32_t>(key);
  // Key bytes may not contain the delimiter either; keys < 2^24 with the
  // high byte zeroed are always safe. Callers with larger keys must ensure
  // no byte equals 0xFF; we CHECK it here.
  std::memcpy(rec.payload.data(), &k, sizeof(k));
  for (int i = 0; i < 4; ++i) {
    WAVEMR_CHECK_NE(static_cast<uint8_t>(rec.payload[i]), kVarRecordDelimiter)
        << "key byte collides with delimiter: " << key;
  }
  return rec;
}

std::optional<VarRecordReader::View> VarRecordReader::Next() {
  auto view = RecordContaining(pos_);
  if (!view.has_value()) return std::nullopt;
  pos_ = view->start_offset + view->payload.size() + 5;  // past trailer
  return view;
}

std::optional<VarRecordReader::View> VarRecordReader::RecordContaining(
    uint64_t off) const {
  if (off >= bytes_.size()) return std::nullopt;
  // Forward scan to the first delimiter: by format construction this is the
  // trailer of the record containing `off`.
  uint64_t d = off;
  while (d < bytes_.size() && bytes_[d] != kVarRecordDelimiter) ++d;
  if (d >= bytes_.size()) return std::nullopt;  // trailing garbage
  WAVEMR_CHECK_GE(d, 4u) << "corrupt variable-length split";
  uint32_t len = LoadU32(bytes_, d - 4);
  WAVEMR_CHECK_GE(d - 4, len) << "corrupt record length";
  uint64_t start = d - 4 - len;
  View view;
  view.start_offset = start;
  view.payload = bytes_.subspan(start, len);
  view.key = LoadU32(bytes_, start);
  return view;
}

// ------------------------------------------------------------- sampling

std::vector<uint64_t> SampleDistinctIndices(uint64_t n, uint64_t count, Rng& rng) {
  std::vector<uint64_t> out;
  if (count >= n) {
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  // Floyd's algorithm: exactly `count` distinct values, O(count) expected.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(count * 2);
  for (uint64_t j = n - count; j < n; ++j) {
    uint64_t t = rng.NextBounded(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> SampleVarRecordOffsets(std::span<const uint8_t> bytes,
                                             uint64_t count, Rng& rng) {
  VarRecordReader reader(bytes);
  const uint64_t size = bytes.size();
  if (size == 0 || count == 0) return {};

  // Q: pending random byte offsets, smallest first (the paper's priority
  // queue); H: start offsets of records already sampled.
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> pending;
  std::map<uint64_t, uint64_t> sampled;  // start -> record end (exclusive)
  for (uint64_t i = 0; i < count; ++i) pending.push(rng.NextBounded(size));

  // A redraw bound keeps the loop finite when count approaches the number of
  // records; after the bound we fall back to a sweep over unsampled records.
  uint64_t redraws_left = 16 * count + 64;
  while (!pending.empty()) {
    uint64_t off = pending.top();
    pending.pop();
    auto view = reader.RecordContaining(off);
    if (!view.has_value()) {
      // Offset in trailing bytes; wrap to the head of the split.
      if (redraws_left > 0) {
        --redraws_left;
        pending.push(rng.NextBounded(size));
      }
      continue;
    }
    uint64_t start = view->start_offset;
    uint64_t end = start + view->payload.size() + 5;
    if (sampled.emplace(start, end).second) continue;  // fresh record
    // Duplicate: redraw an offset outside all sampled intervals, as in
    // Appendix B.
    if (redraws_left == 0) continue;
    for (; redraws_left > 0; --redraws_left) {
      uint64_t fresh = rng.NextBounded(size);
      auto it = sampled.upper_bound(fresh);
      bool covered = false;
      if (it != sampled.begin()) {
        --it;
        covered = fresh < it->second;
      }
      if (!covered) {
        pending.push(fresh);
        break;
      }
    }
  }

  std::vector<uint64_t> out;
  out.reserve(sampled.size());
  for (const auto& [start, end] : sampled) out.push_back(start);
  return out;
}

}  // namespace wavemr
