#ifndef WAVEMR_DATA_FREQUENCY_H_
#define WAVEMR_DATA_FREQUENCY_H_

#include <cstdint>
#include <vector>

#include "core/flat_hash.h"
#include "data/dataset.h"
#include "wavelet/coefficient.h"
#include "wavelet/sparse.h"

namespace wavemr {

/// Key -> count map (a sparse frequency vector with integer counts). Backed
/// by the open-addressing FlatHashCounter: counting a record is one probe in
/// a contiguous table instead of a node allocation + pointer chase.
using FrequencyMap = FlatHashCounter<uint64_t, uint64_t>;

/// Exact global frequency vector v of the dataset (scans every split).
FrequencyMap BuildFrequencyMap(const Dataset& dataset);

/// Exact local frequency vector v_j of one split.
FrequencyMap BuildSplitFrequencyMap(const Dataset& dataset, uint64_t split);

/// Converts counts to the (key, weight) form the wavelet code consumes.
SparseVector ToSparseVector(const FrequencyMap& freq);

/// Exact (nonzero) wavelet coefficients of the dataset's frequency vector.
/// Uses the O(|v| log u) sparse transform; the ground truth for SSE.
std::vector<WCoeff> TrueCoefficients(const Dataset& dataset);

/// Number of distinct keys in the dataset (scans every split).
uint64_t CountDistinctKeys(const Dataset& dataset);

}  // namespace wavemr

#endif  // WAVEMR_DATA_FREQUENCY_H_
