#include "data/zipf.h"

namespace wavemr {

ZipfDistribution::ZipfDistribution(uint64_t num_elements, double alpha)
    : n_(num_elements), alpha_(alpha) {
  WAVEMR_CHECK_GE(num_elements, 1u);
  WAVEMR_CHECK_GT(alpha, 0.0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

double ZipfDistribution::Pmf(uint64_t k) const {
  WAVEMR_CHECK_GE(k, 1u);
  WAVEMR_CHECK_LE(k, n_);
  double norm = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    norm += std::pow(static_cast<double>(i), -alpha_);
  }
  return std::pow(static_cast<double>(k), -alpha_) / norm;
}

}  // namespace wavemr
