#ifndef WAVEMR_DATA_ZIPF_H_
#define WAVEMR_DATA_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "core/logging.h"

namespace wavemr {

/// Zipf(alpha) sampler over ranks {1, ..., n} using Hoermann's
/// rejection-inversion method: O(1) expected time per sample and O(1) memory
/// for *any* domain size -- no alias table. This is what lets datasets in
/// this library expose random access to individual records (needed by the
/// paper's RandomRecordReader) without materializing anything.
///
/// P(rank = k) is proportional to k^-alpha; alpha > 0 (alpha == 1 handled via
/// series expansions).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t num_elements, double alpha);

  uint64_t num_elements() const { return n_; }
  double alpha() const { return alpha_; }

  /// Draws one rank in [1, n]. RngT must provide double NextDouble() in
  /// [0,1). Expected < 2 uniforms per draw.
  template <typename RngT>
  uint64_t Sample(RngT& rng) const {
    if (n_ == 1) return 1;
    for (;;) {
      double u = h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
      double x = HIntegralInverse(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      if (static_cast<double>(k) - x <= s_) return k;
      if (u >= HIntegral(static_cast<double>(k) + 0.5) - H(static_cast<double>(k))) {
        return k;
      }
    }
  }

  /// Exact probability of rank k (for tests): k^-alpha / H_n(alpha).
  /// O(n) the first call per distribution would be needed for the constant,
  /// so this recomputes the normalizer every call -- use on small n only.
  double Pmf(uint64_t k) const;

 private:
  // h(x) = x^-alpha; HIntegral is its antiderivative; both written with
  // expm1/log1p helpers so alpha == 1 is continuous.
  double H(double x) const { return std::exp(-alpha_ * std::log(x)); }
  double HIntegral(double x) const {
    double log_x = std::log(x);
    return Helper2((1.0 - alpha_) * log_x) * log_x;
  }
  double HIntegralInverse(double x) const {
    double t = x * (1.0 - alpha_);
    if (t < -1.0) t = -1.0;  // guard rounding at the left boundary
    return std::exp(Helper1(t) * x);
  }
  static double Helper1(double x) {
    return std::fabs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0 + x * x / 3.0;
  }
  static double Helper2(double x) {
    return std::fabs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0 + x * x / 6.0;
  }

  uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace wavemr

#endif  // WAVEMR_DATA_ZIPF_H_
