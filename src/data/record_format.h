#ifndef WAVEMR_DATA_RECORD_FORMAT_H_
#define WAVEMR_DATA_RECORD_FORMAT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/status.h"

namespace wavemr {

// --------------------------------------------------------------------------
// Fixed-length records (the paper's default: a 4-byte key plus padding).
// --------------------------------------------------------------------------

/// Encodes keys as fixed-size records: little-endian uint32 key followed by
/// zero padding up to record_bytes (>= 4). Keys must fit in 32 bits.
std::vector<uint8_t> EncodeFixedRecords(const std::vector<uint64_t>& keys,
                                        uint32_t record_bytes);

/// Reader over a fixed-length-record split. Supports both sequential reads
/// and O(1) random access -- exactly the contract the paper's
/// RandomInputFile format needs.
class FixedRecordReader {
 public:
  FixedRecordReader(std::span<const uint8_t> bytes, uint32_t record_bytes);

  uint64_t num_records() const { return num_records_; }

  /// Sequential: returns the next key or nullopt at end-of-split.
  std::optional<uint64_t> Next();

  /// Random access to record i's key.
  uint64_t KeyAt(uint64_t i) const;

  void Reset() { pos_ = 0; }

 private:
  std::span<const uint8_t> bytes_;
  uint32_t record_bytes_;
  uint64_t num_records_;
  uint64_t pos_ = 0;  // record index
};

// --------------------------------------------------------------------------
// Variable-length records (paper Appendix B).
//
// Layout per record: payload (len bytes) | uint32 len | delimiter 0xFF.
// Constraint (documented in the paper as "a few-bytes look-ahead"): neither
// payload bytes nor the length field may contain the delimiter byte, so a
// forward scan from any offset inside a record finds that record's trailer.
// We enforce it by requiring payload bytes != 0xFF and len < 2^24.
// The first 4 payload bytes are the little-endian record key.
// --------------------------------------------------------------------------

inline constexpr uint8_t kVarRecordDelimiter = 0xFF;

struct VarRecord {
  uint64_t key = 0;
  std::string payload;  // includes the 4 key bytes
};

/// Encodes records in the variable-length format. Returns InvalidArgument if
/// a payload contains the delimiter byte or is too large.
StatusOr<std::vector<uint8_t>> EncodeVarRecords(const std::vector<VarRecord>& records);

/// Builds a valid variable-length payload of exactly `payload_bytes` (>= 4)
/// for the given key (filler avoids the delimiter byte).
VarRecord MakeVarRecord(uint64_t key, uint32_t payload_bytes);

/// Sequential reader for the variable-length format.
class VarRecordReader {
 public:
  explicit VarRecordReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  /// Next record (key + payload view) or nullopt at end.
  struct View {
    uint64_t key;
    std::span<const uint8_t> payload;
    uint64_t start_offset;  // byte offset of the record in the split
  };
  std::optional<View> Next();

  void Reset() { pos_ = 0; }

  /// Resolves the record containing byte offset `off` by scanning forward to
  /// its trailer (the Appendix B look-ahead trick). Returns nullopt past the
  /// last record.
  std::optional<View> RecordContaining(uint64_t off) const;

 private:
  std::span<const uint8_t> bytes_;
  uint64_t pos_ = 0;  // byte offset
};

// --------------------------------------------------------------------------
// Random sampling of records from a split.
// --------------------------------------------------------------------------

/// Draws `count` distinct indices uniformly from [0, n) and returns them in
/// ascending order (the paper keeps sampled offsets in a priority queue so
/// the split is read in one forward pass). count may exceed n, in which case
/// all indices are returned. Sampling is *without replacement*, matching the
/// paper's RandomRecordReader.
std::vector<uint64_t> SampleDistinctIndices(uint64_t n, uint64_t count, Rng& rng);

/// Appendix B algorithm for variable-length records: sample `count` distinct
/// records by drawing random byte offsets, resolving each to its containing
/// record, and re-drawing offsets that land in already-sampled records
/// (tracking sampled intervals in a heap-ordered structure). Returns the
/// sampled records' start offsets in ascending order.
std::vector<uint64_t> SampleVarRecordOffsets(std::span<const uint8_t> bytes,
                                             uint64_t count, Rng& rng);

}  // namespace wavemr

#endif  // WAVEMR_DATA_RECORD_FORMAT_H_
