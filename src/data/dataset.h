#ifndef WAVEMR_DATA_DATASET_H_
#define WAVEMR_DATA_DATASET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "data/zipf.h"

namespace wavemr {

/// Static description of a dataset living in the (simulated) distributed
/// file system: n records with integer keys from [0, u), stored as m splits
/// of fixed-size binary records.
struct DatasetInfo {
  uint64_t num_records = 0;  // n
  uint64_t domain_size = 1;  // u, a power of two
  uint64_t num_splits = 1;   // m
  uint32_t record_bytes = 4;  // on-disk record size (key + payload)
  uint32_t key_bytes = 4;     // wire size of a key in emitted pairs
};

/// Abstract dataset: what a Hadoop InputFormat sees. Implementations must be
/// deterministic: ScanSplit visits records in "file order", and KeyAt(j, i)
/// returns the key of the i-th record of split j -- the primitive the
/// paper's RandomRecordReader needs (seek to a random record).
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual const DatasetInfo& info() const = 0;

  /// Number of records in split j (splits may be uneven).
  virtual uint64_t SplitRecords(uint64_t split) const = 0;

  /// Sequential scan of split j in record order.
  virtual void ScanSplit(uint64_t split,
                         const std::function<void(uint64_t key)>& fn) const = 0;

  /// Random access to the key of record `index` (0-based) of split j.
  virtual uint64_t KeyAt(uint64_t split, uint64_t index) const = 0;

  /// Bytes of split j on disk.
  uint64_t SplitBytes(uint64_t split) const {
    return SplitRecords(split) * info().record_bytes;
  }
};

/// Parameters of a synthetic Zipf dataset (the paper's default workload).
struct ZipfDatasetOptions {
  uint64_t num_records = 1 << 22;
  uint64_t domain_size = 1 << 18;  // power of two
  double alpha = 1.1;
  uint64_t num_splits = 128;
  uint32_t record_bytes = 4;
  uint64_t seed = 42;
  /// Scatter Zipf ranks over the key domain with a Feistel permutation so
  /// frequency is not monotone in key value (see DESIGN.md). The paper's
  /// permutation of record order falls out of the counter-based generation.
  bool permute_keys = true;
};

/// Deterministic generated Zipf dataset: record (j, i) is produced by an
/// independent counter-based RNG stream, so both sequential scans and O(1)
/// random access are exactly reproducible without storing anything.
class ZipfDataset : public Dataset {
 public:
  explicit ZipfDataset(const ZipfDatasetOptions& options);

  const DatasetInfo& info() const override { return info_; }
  uint64_t SplitRecords(uint64_t split) const override;
  void ScanSplit(uint64_t split,
                 const std::function<void(uint64_t)>& fn) const override;
  uint64_t KeyAt(uint64_t split, uint64_t index) const override;

 private:
  uint64_t RankToKey(uint64_t rank) const;

  ZipfDatasetOptions options_;
  DatasetInfo info_;
  ZipfDistribution zipf_;
  FeistelPermutation perm_;
};

/// Synthetic stand-in for the WorldCup'98 click log (Figures 17-19): records
/// carry 10 4-byte attributes; the key is the "clientobject" pair
/// client_id x object_id, both Zipf-distributed, scattered over the domain.
struct WorldCupDatasetOptions {
  uint64_t num_records = 1 << 22;
  uint64_t num_clients = 1 << 10;   // power of two
  uint64_t num_objects = 1 << 8;    // power of two; u = clients * objects
  double client_alpha = 1.2;        // client activity skew
  double object_alpha = 1.0;        // object popularity skew
  uint64_t num_splits = 128;
  uint64_t seed = 7;
};

class WorldCupDataset : public Dataset {
 public:
  explicit WorldCupDataset(const WorldCupDatasetOptions& options);

  const DatasetInfo& info() const override { return info_; }
  uint64_t SplitRecords(uint64_t split) const override;
  void ScanSplit(uint64_t split,
                 const std::function<void(uint64_t)>& fn) const override;
  uint64_t KeyAt(uint64_t split, uint64_t index) const override;

 private:
  WorldCupDatasetOptions options_;
  DatasetInfo info_;
  ZipfDistribution client_zipf_;
  ZipfDistribution object_zipf_;
  FeistelPermutation perm_;
};

/// Fully materialized dataset for unit tests: explicit keys per split.
class InMemoryDataset : public Dataset {
 public:
  InMemoryDataset(std::vector<std::vector<uint64_t>> splits, uint64_t domain_size,
                  uint32_t record_bytes = 4);

  const DatasetInfo& info() const override { return info_; }
  uint64_t SplitRecords(uint64_t split) const override;
  void ScanSplit(uint64_t split,
                 const std::function<void(uint64_t)>& fn) const override;
  uint64_t KeyAt(uint64_t split, uint64_t index) const override;

 private:
  std::vector<std::vector<uint64_t>> splits_;
  DatasetInfo info_;
};

}  // namespace wavemr

#endif  // WAVEMR_DATA_DATASET_H_
