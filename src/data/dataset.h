#ifndef WAVEMR_DATA_DATASET_H_
#define WAVEMR_DATA_DATASET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/rng.h"
#include "data/zipf.h"

namespace wavemr {

/// Static description of a dataset living in the (simulated) distributed
/// file system: n records with integer keys from [0, u), stored as m splits
/// of fixed-size binary records.
struct DatasetInfo {
  uint64_t num_records = 0;  // n
  uint64_t domain_size = 1;  // u, a power of two
  uint64_t num_splits = 1;   // m
  uint32_t record_bytes = 4;  // on-disk record size (key + payload)
  uint32_t key_bytes = 4;     // wire size of a key in emitted pairs
};

/// Abstract dataset: what a Hadoop InputFormat sees. Implementations must be
/// deterministic: ScanSplit visits records in "file order", and KeyAt(j, i)
/// returns the key of the i-th record of split j -- the primitive the
/// paper's RandomRecordReader needs (seek to a random record).
///
/// ReadKeys is the batch primitive the hot path is built on: the engine
/// pulls keys in chunks of a few thousand, paying one virtual call per chunk
/// instead of one std::function call per record (SplitAccess::ScanBatches).
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual const DatasetInfo& info() const = 0;

  /// Number of records in split j (splits may be uneven).
  virtual uint64_t SplitRecords(uint64_t split) const = 0;

  /// Fills `out` with up to `capacity` keys of split j starting at record
  /// `start` (in record order); returns the number written -- 0 only at the
  /// end of the split. Thread-safe for concurrent map tasks.
  virtual uint64_t ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                            uint64_t capacity) const = 0;

  /// Sequential scan of split j in record order (per-key convenience
  /// adapter over ReadKeys; the engine hot path uses ReadKeys directly).
  void ScanSplit(uint64_t split, const std::function<void(uint64_t key)>& fn) const;

  /// Random access to the key of record `index` (0-based) of split j.
  virtual uint64_t KeyAt(uint64_t split, uint64_t index) const = 0;

  /// Bytes of split j on disk.
  uint64_t SplitBytes(uint64_t split) const {
    return SplitRecords(split) * info().record_bytes;
  }
};

/// Keys pulled per Dataset::ReadKeys call by the chunked scan helpers: large
/// enough to amortize the virtual dispatch, small enough to stay L1/L2
/// resident (16 KB).
inline constexpr uint64_t kKeyBatchSize = 2048;

/// Drains split j of `dataset` through a stack buffer, invoking
/// `fn(const uint64_t* keys, uint64_t n)` per chunk. The one batched scan
/// loop behind Dataset::ScanSplit, the frequency builders, and
/// SplitAccess::ScanBatches.
template <typename BatchFn>
void ForEachKeyBatch(const Dataset& dataset, uint64_t split, BatchFn&& fn) {
  uint64_t buffer[kKeyBatchSize];
  uint64_t start = 0;
  for (;;) {
    uint64_t got = dataset.ReadKeys(split, start, buffer, kKeyBatchSize);
    if (got == 0) return;
    fn(static_cast<const uint64_t*>(buffer), got);
    start += got;
  }
}

/// Lazily materialized per-split key store shared by the generated datasets.
/// Generating a synthetic record is ~140 ns (counter RNG + rejection
/// sampling + Feistel scatter) -- two orders of magnitude more than reading
/// it from memory, which is what a real deployment does after the first HDFS
/// read lands in the page cache. Each split is generated exactly once, by
/// the first scanner that touches it (concurrent map tasks materialize
/// disjoint splits in parallel); afterwards every scan is a memcpy.
class SplitKeyCache {
 public:
  explicit SplitKeyCache(uint64_t num_splits)
      : flags_(num_splits), splits_(num_splits) {}

  /// Returns split j's keys, materializing via `generate(out)` on first use.
  /// `generate` must append exactly the split's keys in record order.
  const std::vector<uint64_t>& Get(
      uint64_t split, const std::function<void(std::vector<uint64_t>*)>& generate) const {
    std::call_once(flags_[split], [&] { generate(&splits_[split]); });
    return splits_[split];
  }

 private:
  mutable std::deque<std::once_flag> flags_;   // deque: once_flag is immovable
  mutable std::vector<std::vector<uint64_t>> splits_;
};

/// Parameters of a synthetic Zipf dataset (the paper's default workload).
struct ZipfDatasetOptions {
  uint64_t num_records = 1 << 22;
  uint64_t domain_size = 1 << 18;  // power of two
  double alpha = 1.1;
  uint64_t num_splits = 128;
  uint32_t record_bytes = 4;
  uint64_t seed = 42;
  /// Scatter Zipf ranks over the key domain with a Feistel permutation so
  /// frequency is not monotone in key value (see DESIGN.md). The paper's
  /// permutation of record order falls out of the counter-based generation.
  bool permute_keys = true;
  /// Materialize each split's keys on first scan (8 bytes per record). Turn
  /// off only when memory is tighter than CPU; generated keys are identical
  /// either way.
  bool cache_keys = true;
};

/// Deterministic generated Zipf dataset: record (j, i) is produced by an
/// independent counter-based RNG stream, so both sequential scans and O(1)
/// random access are exactly reproducible without storing anything.
class ZipfDataset : public Dataset {
 public:
  explicit ZipfDataset(const ZipfDatasetOptions& options);

  const DatasetInfo& info() const override { return info_; }
  uint64_t SplitRecords(uint64_t split) const override;
  uint64_t ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                    uint64_t capacity) const override;
  uint64_t KeyAt(uint64_t split, uint64_t index) const override;

 private:
  uint64_t RankToKey(uint64_t rank) const;
  void GenerateSplit(uint64_t split, std::vector<uint64_t>* out) const;

  ZipfDatasetOptions options_;
  DatasetInfo info_;
  ZipfDistribution zipf_;
  FeistelPermutation perm_;
  std::unique_ptr<SplitKeyCache> cache_;  // null when cache_keys is off
};

/// Synthetic stand-in for the WorldCup'98 click log (Figures 17-19): records
/// carry 10 4-byte attributes; the key is the "clientobject" pair
/// client_id x object_id, both Zipf-distributed, scattered over the domain.
struct WorldCupDatasetOptions {
  uint64_t num_records = 1 << 22;
  uint64_t num_clients = 1 << 10;   // power of two
  uint64_t num_objects = 1 << 8;    // power of two; u = clients * objects
  double client_alpha = 1.2;        // client activity skew
  double object_alpha = 1.0;        // object popularity skew
  uint64_t num_splits = 128;
  uint64_t seed = 7;
  /// See ZipfDatasetOptions::cache_keys.
  bool cache_keys = true;
};

class WorldCupDataset : public Dataset {
 public:
  explicit WorldCupDataset(const WorldCupDatasetOptions& options);

  const DatasetInfo& info() const override { return info_; }
  uint64_t SplitRecords(uint64_t split) const override;
  uint64_t ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                    uint64_t capacity) const override;
  uint64_t KeyAt(uint64_t split, uint64_t index) const override;

 private:
  void GenerateSplit(uint64_t split, std::vector<uint64_t>* out) const;

  WorldCupDatasetOptions options_;
  DatasetInfo info_;
  ZipfDistribution client_zipf_;
  ZipfDistribution object_zipf_;
  FeistelPermutation perm_;
  std::unique_ptr<SplitKeyCache> cache_;
};

/// Fully materialized dataset for unit tests: explicit keys per split.
class InMemoryDataset : public Dataset {
 public:
  InMemoryDataset(std::vector<std::vector<uint64_t>> splits, uint64_t domain_size,
                  uint32_t record_bytes = 4);

  const DatasetInfo& info() const override { return info_; }
  uint64_t SplitRecords(uint64_t split) const override;
  uint64_t ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                    uint64_t capacity) const override;
  uint64_t KeyAt(uint64_t split, uint64_t index) const override;

 private:
  std::vector<std::vector<uint64_t>> splits_;
  DatasetInfo info_;
};

}  // namespace wavemr

#endif  // WAVEMR_DATA_DATASET_H_
