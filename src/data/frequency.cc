#include "data/frequency.h"

#include <algorithm>

namespace wavemr {

namespace {

// Batched counting loop shared by the builders: one virtual ReadKeys call
// per chunk, one probe per record.
void CountSplit(const Dataset& dataset, uint64_t split, FrequencyMap* freq) {
  ForEachKeyBatch(dataset, split, [freq](const uint64_t* keys, uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) ++(*freq)[keys[i]];
  });
}

}  // namespace

FrequencyMap BuildFrequencyMap(const Dataset& dataset) {
  FrequencyMap freq;
  freq.reserve(std::min(dataset.info().num_records, dataset.info().domain_size));
  for (uint64_t j = 0; j < dataset.info().num_splits; ++j) {
    CountSplit(dataset, j, &freq);
  }
  return freq;
}

FrequencyMap BuildSplitFrequencyMap(const Dataset& dataset, uint64_t split) {
  FrequencyMap freq;
  freq.reserve(std::min(dataset.SplitRecords(split), dataset.info().domain_size));
  CountSplit(dataset, split, &freq);
  return freq;
}

SparseVector ToSparseVector(const FrequencyMap& freq) {
  SparseVector v;
  v.reserve(freq.size());
  for (const auto& [key, count] : freq) {
    v.emplace_back(key, static_cast<double>(count));
  }
  return v;
}

std::vector<WCoeff> TrueCoefficients(const Dataset& dataset) {
  FrequencyMap freq = BuildFrequencyMap(dataset);
  return SparseHaar(ToSparseVector(freq), dataset.info().domain_size);
}

uint64_t CountDistinctKeys(const Dataset& dataset) {
  return BuildFrequencyMap(dataset).size();
}

}  // namespace wavemr
