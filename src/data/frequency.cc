#include "data/frequency.h"

namespace wavemr {

FrequencyMap BuildFrequencyMap(const Dataset& dataset) {
  FrequencyMap freq;
  for (uint64_t j = 0; j < dataset.info().num_splits; ++j) {
    dataset.ScanSplit(j, [&freq](uint64_t key) { ++freq[key]; });
  }
  return freq;
}

FrequencyMap BuildSplitFrequencyMap(const Dataset& dataset, uint64_t split) {
  FrequencyMap freq;
  dataset.ScanSplit(split, [&freq](uint64_t key) { ++freq[key]; });
  return freq;
}

SparseVector ToSparseVector(const FrequencyMap& freq) {
  SparseVector v;
  v.reserve(freq.size());
  for (const auto& [key, count] : freq) {
    v.emplace_back(key, static_cast<double>(count));
  }
  return v;
}

std::vector<WCoeff> TrueCoefficients(const Dataset& dataset) {
  FrequencyMap freq = BuildFrequencyMap(dataset);
  return SparseHaar(ToSparseVector(freq), dataset.info().domain_size);
}

uint64_t CountDistinctKeys(const Dataset& dataset) {
  return BuildFrequencyMap(dataset).size();
}

}  // namespace wavemr
