#include "data/file_dataset.h"

#include <cstdio>
#include <cstring>

#include "core/bitops.h"
#include "core/logging.h"
#include "data/record_format.h"

namespace wavemr {

Status WriteFixedRecordFile(const std::string& path, const std::vector<uint64_t>& keys,
                            uint32_t record_bytes) {
  std::vector<uint8_t> bytes = EncodeFixedRecords(keys, record_bytes);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::IOError("short write: " + path);
  return Status::OK();
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) return Status::IOError("short read: " + path);
  return bytes;
}

StatusOr<FileDataset> FileDataset::Open(const std::string& path, uint32_t record_bytes,
                                        uint64_t domain_size, uint64_t num_splits) {
  if (!IsPowerOfTwo(domain_size)) {
    return Status::InvalidArgument("domain_size must be a power of two");
  }
  if (num_splits == 0) return Status::InvalidArgument("num_splits must be >= 1");
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() % record_bytes != 0) {
    return Status::InvalidArgument("file size not a multiple of record size");
  }
  FileDataset ds;
  ds.bytes_ = std::move(*bytes);
  ds.info_.num_records = ds.bytes_.size() / record_bytes;
  ds.info_.domain_size = domain_size;
  ds.info_.num_splits = num_splits;
  ds.info_.record_bytes = record_bytes;
  return ds;
}

uint64_t FileDataset::SplitStartRecord(uint64_t split) const {
  uint64_t n = info_.num_records, m = info_.num_splits;
  uint64_t base = n / m, extra = n % m;
  // First `extra` splits hold base+1 records.
  return split * base + std::min<uint64_t>(split, extra);
}

uint64_t FileDataset::SplitRecords(uint64_t split) const {
  WAVEMR_CHECK_LT(split, info_.num_splits);
  return SplitStartRecord(split + 1) - SplitStartRecord(split);
}

uint64_t FileDataset::KeyAt(uint64_t split, uint64_t index) const {
  WAVEMR_CHECK_LT(index, SplitRecords(split));
  uint64_t rec = SplitStartRecord(split) + index;
  uint32_t key;
  std::memcpy(&key, bytes_.data() + rec * info_.record_bytes, sizeof(key));
  return key;
}

uint64_t FileDataset::ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                               uint64_t capacity) const {
  uint64_t n = SplitRecords(split);
  if (start >= n) return 0;
  uint64_t count = std::min<uint64_t>(capacity, n - start);
  uint64_t first = SplitStartRecord(split) + start;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t key;
    std::memcpy(&key, bytes_.data() + (first + i) * info_.record_bytes, sizeof(key));
    out[i] = key;
  }
  return count;
}

}  // namespace wavemr
