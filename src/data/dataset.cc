#include "data/dataset.h"

#include <algorithm>
#include <cstring>

#include "core/bitops.h"
#include "core/logging.h"

namespace wavemr {

namespace {

// Records are dealt to splits as evenly as possible: the first
// (n mod m) splits get one extra record.
uint64_t RecordsInSplit(uint64_t n, uint64_t m, uint64_t split) {
  WAVEMR_CHECK_LT(split, m);
  uint64_t base = n / m;
  return base + (split < n % m ? 1 : 0);
}

// Serves a ReadKeys request out of a fully materialized key vector.
uint64_t CopyKeys(const std::vector<uint64_t>& keys, uint64_t start, uint64_t* out,
                  uint64_t capacity) {
  if (start >= keys.size()) return 0;
  uint64_t n = std::min<uint64_t>(capacity, keys.size() - start);
  std::memcpy(out, keys.data() + start, n * sizeof(uint64_t));
  return n;
}

}  // namespace

void Dataset::ScanSplit(uint64_t split,
                        const std::function<void(uint64_t)>& fn) const {
  ForEachKeyBatch(*this, split, [&fn](const uint64_t* keys, uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) fn(keys[i]);
  });
}

// ---------------------------------------------------------------- ZipfDataset

ZipfDataset::ZipfDataset(const ZipfDatasetOptions& options)
    : options_(options),
      zipf_(options.domain_size, options.alpha),
      perm_(options.seed ^ 0xfeedface12345678ULL, Log2Floor(options.domain_size)) {
  WAVEMR_CHECK(IsPowerOfTwo(options.domain_size));
  WAVEMR_CHECK_GE(options.domain_size, 4u);
  WAVEMR_CHECK_GE(options.num_splits, 1u);
  WAVEMR_CHECK_GE(options.record_bytes, 4u);
  info_.num_records = options.num_records;
  info_.domain_size = options.domain_size;
  info_.num_splits = options.num_splits;
  info_.record_bytes = options.record_bytes;
  if (options.cache_keys) {
    cache_ = std::make_unique<SplitKeyCache>(options.num_splits);
  }
}

uint64_t ZipfDataset::SplitRecords(uint64_t split) const {
  return RecordsInSplit(options_.num_records, options_.num_splits, split);
}

uint64_t ZipfDataset::RankToKey(uint64_t rank) const {
  // rank is 1-based; keys are 0-based.
  uint64_t key = rank - 1;
  return options_.permute_keys ? perm_.Apply(key) : key;
}

uint64_t ZipfDataset::KeyAt(uint64_t split, uint64_t index) const {
  WAVEMR_DCHECK(index < SplitRecords(split));
  CounterRng rng(options_.seed, split, index);
  return RankToKey(zipf_.Sample(rng));
}

void ZipfDataset::GenerateSplit(uint64_t split, std::vector<uint64_t>* out) const {
  uint64_t n = SplitRecords(split);
  out->resize(n);
  uint64_t* keys = out->data();
  for (uint64_t i = 0; i < n; ++i) keys[i] = KeyAt(split, i);
}

uint64_t ZipfDataset::ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                               uint64_t capacity) const {
  if (cache_ != nullptr) {
    const std::vector<uint64_t>& keys = cache_->Get(
        split, [this, split](std::vector<uint64_t>* v) { GenerateSplit(split, v); });
    return CopyKeys(keys, start, out, capacity);
  }
  uint64_t n = SplitRecords(split);
  if (start >= n) return 0;
  uint64_t count = std::min<uint64_t>(capacity, n - start);
  for (uint64_t i = 0; i < count; ++i) out[i] = KeyAt(split, start + i);
  return count;
}

// ----------------------------------------------------------- WorldCupDataset

WorldCupDataset::WorldCupDataset(const WorldCupDatasetOptions& options)
    : options_(options),
      client_zipf_(options.num_clients, options.client_alpha),
      object_zipf_(options.num_objects, options.object_alpha),
      perm_(options.seed ^ 0xabcdef0122334455ULL,
            Log2Floor(options.num_clients * options.num_objects)) {
  WAVEMR_CHECK(IsPowerOfTwo(options.num_clients));
  WAVEMR_CHECK(IsPowerOfTwo(options.num_objects));
  info_.num_records = options.num_records;
  info_.domain_size = options.num_clients * options.num_objects;
  info_.num_splits = options.num_splits;
  info_.record_bytes = 40;  // the WorldCup schema: 10 x 4-byte fields
  if (options.cache_keys) {
    cache_ = std::make_unique<SplitKeyCache>(options.num_splits);
  }
}

uint64_t WorldCupDataset::SplitRecords(uint64_t split) const {
  return RecordsInSplit(options_.num_records, options_.num_splits, split);
}

uint64_t WorldCupDataset::KeyAt(uint64_t split, uint64_t index) const {
  WAVEMR_DCHECK(index < SplitRecords(split));
  CounterRng rng(options_.seed, split, index);
  uint64_t client = client_zipf_.Sample(rng) - 1;
  uint64_t object = object_zipf_.Sample(rng) - 1;
  return perm_.Apply(client * options_.num_objects + object);
}

void WorldCupDataset::GenerateSplit(uint64_t split,
                                    std::vector<uint64_t>* out) const {
  uint64_t n = SplitRecords(split);
  out->resize(n);
  uint64_t* keys = out->data();
  for (uint64_t i = 0; i < n; ++i) keys[i] = KeyAt(split, i);
}

uint64_t WorldCupDataset::ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                                   uint64_t capacity) const {
  if (cache_ != nullptr) {
    const std::vector<uint64_t>& keys = cache_->Get(
        split, [this, split](std::vector<uint64_t>* v) { GenerateSplit(split, v); });
    return CopyKeys(keys, start, out, capacity);
  }
  uint64_t n = SplitRecords(split);
  if (start >= n) return 0;
  uint64_t count = std::min<uint64_t>(capacity, n - start);
  for (uint64_t i = 0; i < count; ++i) out[i] = KeyAt(split, start + i);
  return count;
}

// ----------------------------------------------------------- InMemoryDataset

InMemoryDataset::InMemoryDataset(std::vector<std::vector<uint64_t>> splits,
                                 uint64_t domain_size, uint32_t record_bytes)
    : splits_(std::move(splits)) {
  WAVEMR_CHECK(IsPowerOfTwo(domain_size));
  uint64_t n = 0;
  for (const auto& s : splits_) {
    for (uint64_t key : s) WAVEMR_CHECK_LT(key, domain_size);
    n += s.size();
  }
  info_.num_records = n;
  info_.domain_size = domain_size;
  info_.num_splits = splits_.size();
  info_.record_bytes = record_bytes;
}

uint64_t InMemoryDataset::SplitRecords(uint64_t split) const {
  WAVEMR_CHECK_LT(split, splits_.size());
  return splits_[split].size();
}

uint64_t InMemoryDataset::KeyAt(uint64_t split, uint64_t index) const {
  WAVEMR_CHECK_LT(split, splits_.size());
  WAVEMR_CHECK_LT(index, splits_[split].size());
  return splits_[split][index];
}

uint64_t InMemoryDataset::ReadKeys(uint64_t split, uint64_t start, uint64_t* out,
                                   uint64_t capacity) const {
  WAVEMR_CHECK_LT(split, splits_.size());
  return CopyKeys(splits_[split], start, out, capacity);
}

}  // namespace wavemr
