#include "approx/send_sketch.h"

#include <algorithm>

#include "core/flat_hash.h"
#include "core/rng.h"
#include "mapreduce/job.h"
#include "sketch/wavelet_gcs.h"

namespace wavemr {

namespace {

// Wire: 4-byte counter id + 8-byte double (the paper represents sketch
// entries as 8-byte doubles).
constexpr uint64_t kPairBytes = 12;

class SketchMapper : public MapperBase<SketchMapper, uint64_t, double> {
 public:
  SketchMapper(uint64_t u, const WaveletGcsOptions& gcs_options)
      : u_(u), gcs_options_(gcs_options) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    FlatHashCounter<uint64_t, uint64_t> freq;
    freq.reserve(std::min(ctx.input().num_records(), u_));
    ctx.input().ScanBatches([&freq](const uint64_t* keys, uint64_t n) {
      for (uint64_t i = 0; i < n; ++i) ++freq[keys[i]];
    });

    WaveletGcs sketch(u_, gcs_options_);
    // One sketch update per distinct key, weighted by its count.
    ctx.ChargeCpuNs(static_cast<double>(freq.size()) *
                    static_cast<double>(sketch.CounterUpdatesPerDataPoint()) *
                    kSketchCounterNs);
    for (const auto& [key, count] : freq) {
      sketch.UpdateData(key, static_cast<double>(count));
    }
    sketch.ForEachNonzeroCounter(
        [&ctx](uint64_t flat_index, double value) { ctx.Emit(flat_index, value); });
  }

 private:
  uint64_t u_;
  WaveletGcsOptions gcs_options_;
};

class SketchReducer : public Reducer<uint64_t, double> {
 public:
  SketchReducer(uint64_t u, size_t k, const WaveletGcsOptions& gcs_options)
      : k_(k), sketch_(u, gcs_options) {}

  void Absorb(const uint64_t& flat_index, const double& value,
              ReduceContext<uint64_t, double>& ctx) override {
    (void)ctx;
    sketch_.AddToFlatCounter(flat_index, value);
  }

  void Finish(ReduceContext<uint64_t, double>& ctx) override {
    // Hierarchical search: a few group-energy queries per expanded node.
    result_ = sketch_.FindTopK(k_);
    ctx.ChargeCpuNs(static_cast<double>(k_) * 64.0 * kSketchCounterNs);
  }

  std::vector<WCoeff> TakeResult() { return std::move(result_); }

 private:
  size_t k_;
  WaveletGcs sketch_;
  std::vector<WCoeff> result_;
};

}  // namespace

StatusOr<BuildResult> SendSketch::Build(const Dataset& dataset,
                                        const BuildOptions& options) {
  MrEnv env;
  env.cluster = options.cluster;
  env.cost_model = options.cost_model;
  env.io = options.io;
  env.threads = options.threads;
  env.reduce_tasks = options.reduce_tasks;

  const uint64_t u = dataset.info().domain_size;
  // All mappers and the reducer must draw identical hash functions; derive
  // the sketch seed from the run seed.
  WaveletGcsOptions gcs = options.gcs;
  gcs.seed = Mix64(options.seed ^ 0x9c75e5eed123ULL);

  SketchReducer reducer(u, options.k, gcs);
  JobPlan<uint64_t, double> plan;
  plan.name = "send-sketch";
  plan.mapper_factory = [u, gcs](uint64_t) {
    return std::make_unique<SketchMapper>(u, gcs);
  };
  plan.reducer = &reducer;
  plan.wire_bytes = [](const uint64_t*, const double*, size_t n) {
    return n * kPairBytes;
  };
  plan.sorted_shuffle = options.force_sorted_shuffle;
  RunRound(plan, dataset, &env);

  BuildResult result;
  result.histogram = WaveletHistogram(u, reducer.TakeResult());
  result.stats = std::move(env.stats);
  return result;
}

}  // namespace wavemr
