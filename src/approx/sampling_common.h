#ifndef WAVEMR_APPROX_SAMPLING_COMMON_H_
#define WAVEMR_APPROX_SAMPLING_COMMON_H_

#include <cstdint>
#include <vector>

#include "core/flat_hash.h"
#include "mapreduce/job.h"
#include "wavelet/coefficient.h"

namespace wavemr {

/// The level-1 sample of one split: the frequency vector s_j of t_j records
/// drawn without replacement via sorted random offsets (the paper's
/// RandomRecordReader; Appendix B).
struct LocalSample {
  FlatHashCounter<uint64_t, uint64_t> counts;  // s_j(x)
  uint64_t t_j = 0;                            // records sampled
};

/// Draws the level-1 sample with per-record probability p (t_j = round(p *
/// n_j) records without replacement -- the paper notes coin-flip sampling
/// and sampling without replacement behave identically here). Charges the
/// random-read cost to the task.
LocalSample DrawLevelOneSample(SplitAccess& input, double p, uint64_t seed);

/// Level-1 sampling probability p = min(1, 1/(eps^2 n)).
double LevelOneProbability(double epsilon, uint64_t num_records);

/// Shared reducer tail: estimated frequency vector -> sparse transform ->
/// top-k, charging the transform CPU. `vhat` maps key -> estimated v(x).
std::vector<WCoeff> TopKFromEstimatedFrequencies(
    const FlatHashCounter<uint64_t, double>& vhat, uint64_t u, size_t k,
    const std::function<void(double)>& charge_cpu_ns);

}  // namespace wavemr

#endif  // WAVEMR_APPROX_SAMPLING_COMMON_H_
