#ifndef WAVEMR_APPROX_SEND_SKETCH_H_
#define WAVEMR_APPROX_SEND_SKETCH_H_

#include "histogram/algorithm.h"

namespace wavemr {

/// Send-Sketch (Section 4, "system issues"): each mapper scans its split,
/// builds the local frequency vector, feeds it into a local GCS wavelet
/// sketch (one update per *distinct* key -- the paper's first optimization),
/// and ships only the non-zero sketch counters (the second optimization).
/// The reducer merges the m linear sketches and extracts the top-k
/// coefficients by hierarchical search. One round, but the per-item sketch
/// update cost makes it the slowest method in the paper's Figure 5(b).
class SendSketch : public HistogramAlgorithm {
 public:
  std::string name() const override { return "Send-Sketch"; }
  StatusOr<BuildResult> Build(const Dataset& dataset,
                              const BuildOptions& options) override;
};

}  // namespace wavemr

#endif  // WAVEMR_APPROX_SEND_SKETCH_H_
