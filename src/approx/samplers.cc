#include "approx/samplers.h"

#include <cmath>

#include "approx/sampling_common.h"
#include "core/rng.h"
#include "mapreduce/job.h"

namespace wavemr {

namespace {

// Wire sizes follow the paper's accounting: 4-byte keys, 4-byte sample
// counts; a (x, NULL) pair carries only the key.
constexpr uint64_t kKeyCountBytes = 8;
constexpr uint64_t kKeyNullBytes = 4;

// ---------------------------------------------------------------- Basic-S

class BasicMapper : public MapperBase<BasicMapper, uint64_t, uint64_t> {
 public:
  BasicMapper(double p, uint64_t seed) : p_(p), seed_(seed) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    LocalSample sample = DrawLevelOneSample(ctx.input(), p_, seed_);
    for (const auto& [key, count] : sample.counts) ctx.Emit(key, count);
  }

 private:
  double p_;
  uint64_t seed_;
};

class BasicReducer : public Reducer<uint64_t, uint64_t> {
 public:
  BasicReducer(uint64_t u, size_t k, double p) : u_(u), k_(k), p_(p) {}

  void Absorb(const uint64_t& key, const uint64_t& count,
              ReduceContext<uint64_t, uint64_t>& ctx) override {
    (void)ctx;
    s_[key] += count;
  }

  void Finish(ReduceContext<uint64_t, uint64_t>& ctx) override {
    FlatHashCounter<uint64_t, double> vhat;
    vhat.reserve(s_.size());
    for (const auto& [key, count] : s_) {
      vhat[key] = static_cast<double>(count) / p_;  // unbiased v(x) estimate
    }
    result_ = TopKFromEstimatedFrequencies(
        vhat, u_, k_, [&ctx](double ns) { ctx.ChargeCpuNs(ns); });
  }

  std::vector<WCoeff> TakeResult() { return std::move(result_); }

 private:
  uint64_t u_;
  size_t k_;
  double p_;
  FlatHashCounter<uint64_t, uint64_t> s_;
  std::vector<WCoeff> result_;
};

// -------------------------------------------------------------- Improved-S

class ImprovedMapper : public MapperBase<ImprovedMapper, uint64_t, uint64_t> {
 public:
  ImprovedMapper(double p, double epsilon, uint64_t seed)
      : p_(p), epsilon_(epsilon), seed_(seed) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    LocalSample sample = DrawLevelOneSample(ctx.input(), p_, seed_);
    // Only keys with s_j(x) >= eps * t_j are shipped; at most 1/eps of them.
    double threshold = epsilon_ * static_cast<double>(sample.t_j);
    for (const auto& [key, count] : sample.counts) {
      if (static_cast<double>(count) >= threshold) ctx.Emit(key, count);
    }
  }

 private:
  double p_;
  double epsilon_;
  uint64_t seed_;
};

// ------------------------------------------------------------- TwoLevel-S

// Value of a TwoLevel-S pair: an exact sample count, or NULL (the
// second-level survival token). count == 0 encodes NULL.
struct TwoLevelMsg {
  uint32_t count = 0;
  bool is_null() const { return count == 0; }
};

class TwoLevelMapper : public MapperBase<TwoLevelMapper, uint64_t, TwoLevelMsg> {
 public:
  TwoLevelMapper(double p, double epsilon, uint64_t m, uint64_t seed)
      : p_(p), epsilon_(epsilon), m_(m), seed_(seed) {}

  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    LocalSample sample = DrawLevelOneSample(ctx.input(), p_, seed_);
    const double eps_sqrt_m = epsilon_ * std::sqrt(static_cast<double>(m_));
    const double threshold = 1.0 / eps_sqrt_m;
    // The survival coin for a light key is drawn from a stream keyed by
    // (seed, split, key), so the sampled set is a pure function of the data
    // -- independent of the hash map's iteration order.
    const uint64_t coin_seed = Mix64(seed_ ^ 0x7c0ffee5u ^ (ctx.split_id() + 1));
    for (const auto& [key, count] : sample.counts) {
      if (static_cast<double>(count) >= threshold) {
        // Heavy in this split: ship the exact count.
        ctx.Emit(key, TwoLevelMsg{static_cast<uint32_t>(count)});
      } else {
        Rng rng(Mix64(coin_seed ^ key));
        if (rng.Bernoulli(eps_sqrt_m * static_cast<double>(count))) {
          // Light: survives level 2 with probability proportional to its
          // frequency relative to 1/(eps sqrt(m)); ship (x, NULL).
          ctx.Emit(key, TwoLevelMsg{0});
        }
      }
    }
  }

 private:
  double p_;
  double epsilon_;
  uint64_t m_;
  uint64_t seed_;
};

class TwoLevelReducer : public Reducer<uint64_t, TwoLevelMsg> {
 public:
  TwoLevelReducer(uint64_t u, size_t k, double p, double epsilon, uint64_t m)
      : u_(u), k_(k), p_(p), eps_sqrt_m_(epsilon * std::sqrt(static_cast<double>(m))) {}

  void Absorb(const uint64_t& key, const TwoLevelMsg& msg,
              ReduceContext<uint64_t, TwoLevelMsg>& ctx) override {
    (void)ctx;
    Entry& e = entries_[key];
    if (msg.is_null()) {
      e.null_count += 1;  // M(x)
    } else {
      e.rho += msg.count;  // rho(x)
    }
  }

  void Finish(ReduceContext<uint64_t, TwoLevelMsg>& ctx) override {
    FlatHashCounter<uint64_t, double> vhat;
    vhat.reserve(entries_.size());
    for (const auto& [key, e] : entries_) {
      double s_hat =
          static_cast<double>(e.rho) + static_cast<double>(e.null_count) / eps_sqrt_m_;
      vhat[key] = s_hat / p_;
    }
    result_ = TopKFromEstimatedFrequencies(
        vhat, u_, k_, [&ctx](double ns) { ctx.ChargeCpuNs(ns); });
  }

  std::vector<WCoeff> TakeResult() { return std::move(result_); }

 private:
  struct Entry {
    uint64_t rho = 0;
    uint64_t null_count = 0;
  };
  uint64_t u_;
  size_t k_;
  double p_;
  double eps_sqrt_m_;
  FlatHashCounter<uint64_t, Entry> entries_;
  std::vector<WCoeff> result_;
};

}  // namespace

StatusOr<BuildResult> BasicSampling::Build(const Dataset& dataset,
                                           const BuildOptions& options) {
  MrEnv env;
  env.cluster = options.cluster;
  env.cost_model = options.cost_model;
  env.io = options.io;
  env.threads = options.threads;
  env.reduce_tasks = options.reduce_tasks;
  const double p = LevelOneProbability(options.epsilon, dataset.info().num_records);

  BasicReducer reducer(dataset.info().domain_size, options.k, p);
  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "basic-s";
  plan.mapper_factory = [&options, p](uint64_t) {
    return std::make_unique<BasicMapper>(p, options.seed);
  };
  plan.reducer = &reducer;
  plan.wire_bytes = [](const uint64_t*, const uint64_t*, size_t n) {
    return n * kKeyCountBytes;
  };
  plan.sorted_shuffle = options.force_sorted_shuffle;
  RunRound(plan, dataset, &env);

  BuildResult result;
  result.histogram = WaveletHistogram(dataset.info().domain_size, reducer.TakeResult());
  result.stats = std::move(env.stats);
  return result;
}

StatusOr<BuildResult> ImprovedSampling::Build(const Dataset& dataset,
                                              const BuildOptions& options) {
  MrEnv env;
  env.cluster = options.cluster;
  env.cost_model = options.cost_model;
  env.io = options.io;
  env.threads = options.threads;
  env.reduce_tasks = options.reduce_tasks;
  const double p = LevelOneProbability(options.epsilon, dataset.info().num_records);

  // Improved-S reuses Basic-S's reducer: sum received counts, scale by 1/p.
  // The bias comes from what the mappers never send.
  BasicReducer reducer(dataset.info().domain_size, options.k, p);
  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "improved-s";
  plan.mapper_factory = [&options, p](uint64_t) {
    return std::make_unique<ImprovedMapper>(p, options.epsilon, options.seed);
  };
  plan.reducer = &reducer;
  plan.wire_bytes = [](const uint64_t*, const uint64_t*, size_t n) {
    return n * kKeyCountBytes;
  };
  plan.sorted_shuffle = options.force_sorted_shuffle;
  RunRound(plan, dataset, &env);

  BuildResult result;
  result.histogram = WaveletHistogram(dataset.info().domain_size, reducer.TakeResult());
  result.stats = std::move(env.stats);
  return result;
}

StatusOr<BuildResult> TwoLevelSampling::Build(const Dataset& dataset,
                                              const BuildOptions& options) {
  MrEnv env;
  env.cluster = options.cluster;
  env.cost_model = options.cost_model;
  env.io = options.io;
  env.threads = options.threads;
  env.reduce_tasks = options.reduce_tasks;
  const uint64_t m = dataset.info().num_splits;
  const double p = LevelOneProbability(options.epsilon, dataset.info().num_records);

  // n and eps reach the mappers through the Job Configuration, as in
  // Appendix B.
  env.config.SetUint("sampling.n", dataset.info().num_records);
  env.config.SetDouble("sampling.epsilon", options.epsilon);

  TwoLevelReducer reducer(dataset.info().domain_size, options.k, p, options.epsilon, m);
  JobPlan<uint64_t, TwoLevelMsg> plan;
  plan.name = "twolevel-s";
  plan.mapper_factory = [&options, p, m](uint64_t) {
    return std::make_unique<TwoLevelMapper>(p, options.epsilon, m, options.seed);
  };
  plan.reducer = &reducer;
  plan.wire_bytes = [](const uint64_t*, const TwoLevelMsg* msgs, size_t n) {
    uint64_t bytes = 0;
    for (size_t i = 0; i < n; ++i) {
      bytes += msgs[i].is_null() ? kKeyNullBytes : kKeyCountBytes;
    }
    return bytes;
  };
  plan.sorted_shuffle = options.force_sorted_shuffle;
  RunRound(plan, dataset, &env);

  BuildResult result;
  result.histogram = WaveletHistogram(dataset.info().domain_size, reducer.TakeResult());
  result.stats = std::move(env.stats);
  return result;
}

}  // namespace wavemr
