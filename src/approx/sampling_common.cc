#include "approx/sampling_common.h"

#include <cmath>

#include "core/rng.h"
#include "data/record_format.h"
#include "histogram/algorithm.h"
#include "wavelet/sparse.h"
#include "wavelet/topk.h"

namespace wavemr {

double LevelOneProbability(double epsilon, uint64_t num_records) {
  double p = 1.0 / (epsilon * epsilon * static_cast<double>(num_records));
  return p > 1.0 ? 1.0 : p;
}

LocalSample DrawLevelOneSample(SplitAccess& input, double p, uint64_t seed) {
  LocalSample sample;
  uint64_t n_j = input.num_records();
  uint64_t t_j = static_cast<uint64_t>(std::llround(p * static_cast<double>(n_j)));
  if (t_j > n_j) t_j = n_j;
  sample.t_j = t_j;
  if (t_j == 0) return sample;

  Rng rng(Mix64(seed ^ (input.split_id() * 0x9e3779b97f4a7c15ULL + 1)));
  std::vector<uint64_t> offsets = SampleDistinctIndices(n_j, t_j, rng);
  sample.counts.reserve(t_j * 2);
  for (uint64_t off : offsets) {
    ++sample.counts[input.KeyAt(off)];
  }
  input.ChargeRandomRead(t_j);
  return sample;
}

std::vector<WCoeff> TopKFromEstimatedFrequencies(
    const FlatHashCounter<uint64_t, double>& vhat, uint64_t u, size_t k,
    const std::function<void(double)>& charge_cpu_ns) {
  SparseVector v;
  v.reserve(vhat.size());
  for (const auto& [key, est] : vhat) {
    if (est != 0.0) v.emplace_back(key, est);
  }
  charge_cpu_ns(static_cast<double>(v.size()) * PointUpdateFanout(u) * kCoeffOpNs);
  std::vector<WCoeff> coeffs = SparseHaar(v, u);
  charge_cpu_ns(static_cast<double>(coeffs.size()) * kTopKSelectNs);
  return TopKByMagnitude(std::move(coeffs), k);
}

}  // namespace wavemr
