#ifndef WAVEMR_APPROX_SAMPLERS_H_
#define WAVEMR_APPROX_SAMPLERS_H_

#include "histogram/algorithm.h"

namespace wavemr {

/// Basic-S (Section 4): level-1 sample at rate p = 1/(eps^2 n); every
/// sampled key is shipped with its local sample count (aggregated per split
/// by the Combine step, as the paper's "straightforward improvement").
/// Unbiased, O(1/eps^2) communication worst case.
class BasicSampling : public HistogramAlgorithm {
 public:
  std::string name() const override { return "Basic-S"; }
  StatusOr<BuildResult> Build(const Dataset& dataset,
                              const BuildOptions& options) override;
};

/// Improved-S: a split only ships keys with s_j(x) >= eps * t_j, keeping
/// total communication at O(m/eps) -- but the estimator becomes biased
/// (small counts are silently dropped), which is what ruins its SSE in
/// Figures 6/7.
class ImprovedSampling : public HistogramAlgorithm {
 public:
  std::string name() const override { return "Improved-S"; }
  StatusOr<BuildResult> Build(const Dataset& dataset,
                              const BuildOptions& options) override;
};

/// TwoLevel-S (the paper's contribution, Section 4 + Appendix B): keys with
/// s_j(x) >= 1/(eps sqrt(m)) ship their exact count; lighter keys survive
/// into a second-level Bernoulli sample with probability
/// eps*sqrt(m)*s_j(x) and ship as (x, NULL). The reducer's estimator
/// s_hat(x) = rho(x) + M/(eps sqrt(m)) is unbiased with sd <= 1/eps
/// (Theorem 1), v_hat = s_hat / p (Corollary 1), and total communication is
/// O(sqrt(m)/eps) (Theorem 3).
class TwoLevelSampling : public HistogramAlgorithm {
 public:
  std::string name() const override { return "TwoLevel-S"; }
  StatusOr<BuildResult> Build(const Dataset& dataset,
                              const BuildOptions& options) override;
};

}  // namespace wavemr

#endif  // WAVEMR_APPROX_SAMPLERS_H_
