// Two-dimensional wavelet histogram (paper Sections 2.1 and 3,
// "multi-dimensional wavelets"): a synthetic network-traffic matrix keyed by
// (source, destination), summarized by the top-k 2-D Haar coefficients.
// Because the 2-D transform is still linear in v, local coefficients add
// across splits exactly like in 1-D -- demonstrated here by comparing the
// distributed sum-of-local-transforms against the direct transform.
//
//   ./examples/multidim
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "core/rng.h"
#include "data/zipf.h"
#include "wavelet/topk.h"
#include "wavelet/transform2d.h"

int main() {
  using namespace wavemr;

  const uint64_t kSrc = 64, kDst = 64;   // 64x64 traffic matrix
  const uint64_t kRecords = 200000;
  const uint64_t kSplits = 8;

  // Synthetic flows: Zipf-popular sources talk to Zipf-popular destinations.
  ZipfDistribution src_zipf(kSrc, 1.2), dst_zipf(kDst, 1.0);
  std::vector<std::vector<Cell2D>> split_cells(kSplits);
  std::vector<double> matrix(kSrc * kDst, 0.0);
  for (uint64_t i = 0; i < kRecords; ++i) {
    CounterRng rng(2024, i % kSplits, i / kSplits);
    uint64_t s = src_zipf.Sample(rng) - 1;
    uint64_t t = dst_zipf.Sample(rng) - 1;
    split_cells[i % kSplits].push_back({s, t, 1.0});
    matrix[s * kDst + t] += 1.0;
  }

  // Distributed path: 2-D sparse transform per split, summed at a
  // "coordinator" (what Send-Coef / H-WTopk would shuffle in 2-D).
  std::unordered_map<uint64_t, double> summed;
  for (const auto& cells : split_cells) {
    for (const auto& [idx, val] : SparseHaar2DMap(cells, kSrc, kDst)) {
      summed[idx] += val;
    }
  }

  // Centralized reference: dense 2-D transform of the full matrix.
  std::vector<double> dense = ForwardHaar2D(matrix, kSrc, kDst);
  double max_diff = 0.0;
  for (uint64_t a = 0; a < kSrc; ++a) {
    for (uint64_t b = 0; b < kDst; ++b) {
      uint64_t id = Coeff2DIndex(a, b, kDst);
      double got = summed.count(id) ? summed[id] : 0.0;
      max_diff = std::max(max_diff, std::fabs(got - dense[a * kDst + b]));
    }
  }
  std::printf("distributed vs centralized 2-D coefficients: max |diff| = %.2e\n",
              max_diff);

  // Keep the top-k coefficients and reconstruct.
  const size_t kTerms = 48;
  std::vector<WCoeff> all;
  for (const auto& [idx, val] : summed) {
    if (val != 0.0) all.push_back({idx, val});
  }
  std::vector<WCoeff> kept = TopKByMagnitude(all, kTerms);
  std::vector<double> synopsis(kSrc * kDst, 0.0);
  for (const WCoeff& c : kept) synopsis[c.index] = c.value;
  std::vector<double> recon = InverseHaar2D(synopsis, kSrc, kDst);

  double sse = 0.0, energy = 0.0;
  for (size_t i = 0; i < matrix.size(); ++i) {
    double d = recon[i] - matrix[i];
    sse += d * d;
    energy += matrix[i] * matrix[i];
  }
  std::printf("%zu-term 2-D synopsis of a %llux%llu matrix: SSE/energy = %.4f\n",
              kTerms, static_cast<unsigned long long>(kSrc),
              static_cast<unsigned long long>(kDst), sse / energy);

  // A block range query: traffic from top-8 sources to top-8 destinations.
  double exact = 0.0, est = 0.0;
  for (uint64_t s = 0; s < 8; ++s) {
    for (uint64_t t = 0; t < 8; ++t) {
      exact += matrix[s * kDst + t];
      est += recon[s * kDst + t];
    }
  }
  std::printf("block query [0,8)x[0,8): exact %.0f, synopsis estimate %.0f\n",
              exact, est);
  return 0;
}
