// Quickstart: build an approximate wavelet histogram of a Zipf dataset with
// TwoLevel-S (the paper's recommended method) and poke at the result.
//
//   ./examples/quickstart
#include <cstdio>

#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/estimator.h"
#include "serve/snapshot.h"

int main() {
  using namespace wavemr;

  // A 1M-record Zipf(1.1) dataset over 2^16 keys, stored as 32 splits of the
  // simulated distributed file system.
  ZipfDatasetOptions data;
  data.num_records = 1 << 20;
  data.domain_size = 1 << 16;
  data.alpha = 1.1;
  data.num_splits = 32;
  // Monotone key layout (frequency decreasing in key): coarse coefficients
  // then dominate the synopsis, which is the textbook range-selectivity
  // setting. The default (permuted) layout concentrates the synopsis on
  // per-key spikes instead.
  data.permute_keys = false;
  ZipfDataset dataset(data);

  // Build a 30-term synopsis with two-level sampling: one MapReduce round,
  // O(sqrt(m)/eps) communication (Theorem 3).
  BuildOptions options;
  options.k = 30;
  options.epsilon = 0.01;
  auto result = BuildWaveletHistogram(dataset, AlgorithmKind::kTwoLevelS, options);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Estimation goes through the serve layer's snapshot + estimator (the same
  // code path wavemr_serve answers queries with).
  HistogramSnapshot hist = result->ToSnapshot();
  std::printf("built a %zu-term wavelet histogram over [0, %llu)\n",
              hist.num_terms(),
              static_cast<unsigned long long>(hist.domain_size()));
  std::printf("communication: %llu bytes   simulated time: %.1f s   rounds: %zu\n\n",
              static_cast<unsigned long long>(result->stats.TotalCommBytes()),
              result->stats.TotalSeconds(), result->stats.NumRounds());

  // Compare a few point and range estimates against the exact answers.
  FrequencyMap truth = BuildFrequencyMap(dataset);
  uint64_t heavy = 0, best = 0;
  for (const auto& [key, count] : truth) {
    if (count > best) {
      best = count;
      heavy = key;
    }
  }
  std::printf("heaviest key %llu: true frequency %llu, estimate %.0f\n",
              static_cast<unsigned long long>(heavy),
              static_cast<unsigned long long>(best), PointEstimate(hist, heavy));

  uint64_t u = dataset.info().domain_size;
  for (uint64_t lo : {uint64_t{0}, u / 4, u / 2}) {
    uint64_t hi = lo + u / 4;
    uint64_t exact = 0;
    for (const auto& [key, count] : truth) {
      if (key >= lo && key < hi) exact += count;
    }
    std::printf("range [%llu, %llu): true count %llu, estimate %.0f\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(exact), RangeSum(hist, lo, hi));
  }

  // And the quality metric the paper uses: SSE vs the best possible k terms.
  std::vector<WCoeff> coeffs = TrueCoefficients(dataset);
  std::printf("\nSSE: %.3e (best possible with k=%zu terms: %.3e)\n",
              SseAgainstTrueCoefficients(hist, coeffs), options.k,
              IdealSse(coeffs, options.k));
  return 0;
}
