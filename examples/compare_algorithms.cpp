// Runs all seven algorithms from the paper over the same dataset and prints
// the three-way comparison (communication, simulated time, SSE) -- a
// miniature of the paper's Figures 5 and 6 in one table.
//
//   ./examples/compare_algorithms
#include <cstdio>

#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/estimator.h"
#include "serve/snapshot.h"

int main() {
  using namespace wavemr;

  ZipfDatasetOptions data;
  data.num_records = 1 << 21;
  data.domain_size = 1 << 16;
  data.alpha = 1.1;
  data.num_splits = 48;
  ZipfDataset dataset(data);

  BuildOptions options;
  options.k = 30;
  options.epsilon = 0.008;
  options.gcs.total_bytes = 64 * 1024;

  std::vector<WCoeff> truth = TrueCoefficients(dataset);
  double ideal = IdealSse(truth, options.k);

  std::printf("n=%llu  u=%llu  m=%llu  k=%zu  eps=%g\n",
              static_cast<unsigned long long>(dataset.info().num_records),
              static_cast<unsigned long long>(dataset.info().domain_size),
              static_cast<unsigned long long>(dataset.info().num_splits),
              options.k, options.epsilon);
  std::printf("ideal SSE (best possible k-term synopsis): %.3e\n\n", ideal);
  std::printf("%-12s %7s %14s %12s %14s\n", "algorithm", "rounds", "comm (bytes)",
              "time (s)", "SSE");

  for (AlgorithmKind kind : AllAlgorithms()) {
    auto result = BuildWaveletHistogram(dataset, kind, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", AlgorithmName(kind),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %7zu %14llu %12.1f %14.3e\n", AlgorithmName(kind),
                result->stats.NumRounds(),
                static_cast<unsigned long long>(result->stats.TotalCommBytes()),
                result->stats.TotalSeconds(),
                SseAgainstTrueCoefficients(result->ToSnapshot(), truth));
  }

  std::printf(
      "\nExact methods (Send-V, Send-Coef, H-WTopk) hit the ideal SSE;\n"
      "H-WTopk does so with orders of magnitude less communication.\n"
      "TwoLevel-S gets within a few percent of ideal for a tiny fraction\n"
      "of the cost -- the paper's conclusion.\n");
  return 0;
}
