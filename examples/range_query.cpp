// Range selectivity estimation -- the application wavelet histograms were
// introduced for (Matias, Vitter, Wang; SIGMOD'98). Builds the *exact* best
// k-term histogram with H-WTopk and evaluates range-count queries against
// ground truth at several synopsis sizes.
//
//   ./examples/range_query
#include <cmath>
#include <cstdio>

#include "core/rng.h"
#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/estimator.h"
#include "serve/snapshot.h"

int main() {
  using namespace wavemr;

  ZipfDatasetOptions data;
  data.num_records = 1 << 20;
  data.domain_size = 1 << 15;
  data.alpha = 0.8;  // moderate skew: the classic selectivity benchmark setting
  data.num_splits = 24;
  data.seed = 9;
  data.permute_keys = false;  // monotone layout: the selectivity use case
  ZipfDataset dataset(data);
  const uint64_t u = dataset.info().domain_size;

  // Exact prefix sums for ground truth.
  FrequencyMap freq = BuildFrequencyMap(dataset);
  std::vector<double> prefix(u + 1, 0.0);
  for (uint64_t x = 0; x < u; ++x) {
    auto it = freq.find(x);
    prefix[x + 1] = prefix[x] + (it == freq.end() ? 0.0 : it->second);
  }

  std::printf("range-count estimation with exact best-k-term histograms\n");
  std::printf("(errors are |estimate - exact| / n, i.e. selectivity error)\n");
  std::printf("%-6s  %-14s  %-14s\n", "k", "avg sel error", "max sel error");
  const double n = static_cast<double>(dataset.info().num_records);
  for (size_t k : {8u, 16u, 32u, 64u, 128u}) {
    BuildOptions options;
    options.k = k;
    auto result = BuildWaveletHistogram(dataset, AlgorithmKind::kHWTopk, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    HistogramSnapshot hist = result->ToSnapshot();

    Rng rng(k);
    double sum_err = 0.0, max_err = 0.0;
    const int kQueries = 200;
    for (int q = 0; q < kQueries; ++q) {
      uint64_t a = rng.NextBounded(u), b = rng.NextBounded(u);
      if (a > b) std::swap(a, b);
      ++b;
      double exact = prefix[b] - prefix[a];
      double est = RangeSum(hist, a, b);
      double err = std::fabs(est - exact) / n;
      sum_err += err;
      max_err = std::max(max_err, err);
    }
    std::printf("%-6zu  %-14.6f  %-14.6f\n", k, sum_err / kQueries, max_err);
  }
  std::printf("\nlarger k => better selectivity estimates.\n");
  return 0;
}
