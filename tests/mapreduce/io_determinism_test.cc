// --spill-io=sync vs --spill-io=async must be invisible in every output:
// the async data plane (core/io.h) promises bit-identical synopses,
// counters, and shuffle accounting for all 7 algorithms, across the same
// threads x reduce-tasks x spill knobs the SIMD determinism suite exercises.
// This is the acceptance gate for the overlapped spill writes and the merge
// read-ahead: they may only change *when* bytes move, never what any
// observer sees.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/io.h"
#include "data/dataset.h"
#include "histogram/builder.h"

namespace wavemr {
namespace {

ZipfDataset TestDataset() {
  ZipfDatasetOptions opt;
  opt.num_records = 1 << 14;
  opt.domain_size = 1 << 10;
  opt.alpha = 1.1;
  opt.num_splits = 16;
  opt.seed = 97;
  return ZipfDataset(opt);
}

struct Case {
  AlgorithmKind kind;
  int threads;
  int reduce_tasks = 0;
  uint64_t shuffle_buffer_bytes = 0;  // 0 = default budget (no spill)
  int prefetch_depth = 1;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string algo = AlgorithmName(info.param.kind);
  for (char& c : algo) {
    if (c == '-') c = '_';
  }
  std::string name = algo + "_t" + std::to_string(info.param.threads);
  if (info.param.reduce_tasks > 0) {
    name += "_r" + std::to_string(info.param.reduce_tasks);
  }
  if (info.param.shuffle_buffer_bytes > 0) name += "_spill";
  if (info.param.prefetch_depth != 1) {
    name += "_p" + std::to_string(info.param.prefetch_depth);
  }
  return name;
}

BuildResult BuildOnBackend(const Dataset& ds, const Case& c,
                           IoBackendKind backend) {
  BuildOptions opt;
  opt.k = 20;
  opt.epsilon = 0.05;
  opt.seed = 1234;
  opt.threads = c.threads;
  opt.reduce_tasks = c.reduce_tasks;
  opt.io.backend = backend;
  opt.io.prefetch_depth = c.prefetch_depth;
  opt.io.retry.backoff_initial_us = 0;
  // Forced spills go through the consolidated IoOptions knob so the new
  // spelling is what this suite proves bit-identical.
  if (c.shuffle_buffer_bytes > 0) {
    opt.io.shuffle_buffer_bytes = c.shuffle_buffer_bytes;
  }
  auto result = BuildWaveletHistogram(ds, c.kind, opt);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

class SyncVsAsyncIoTest : public testing::TestWithParam<Case> {};

TEST_P(SyncVsAsyncIoTest, BitIdenticalAcrossBackends) {
  const Case param = GetParam();
  ZipfDataset ds = TestDataset();

  BuildResult sync = BuildOnBackend(ds, param, IoBackendKind::kSync);
  BuildResult async = BuildOnBackend(ds, param, IoBackendKind::kAsync);

  // Identical synopses: same coefficients, bit for bit.
  const auto& want = sync.histogram.coefficients();
  const auto& got = async.histogram.coefficients();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].index, got[i].index) << "coefficient " << i;
    ASSERT_EQ(want[i].value, got[i].value) << "coefficient " << i;
  }

  // Identical counters -- including every spill count, so what spilled and
  // what stayed resident matched decision for decision.
  EXPECT_EQ(sync.stats.counters.values(), async.stats.counters.values());

  // Identical per-round shuffle/broadcast accounting and simulated time.
  ASSERT_EQ(sync.stats.NumRounds(), async.stats.NumRounds());
  for (size_t r = 0; r < sync.stats.rounds.size(); ++r) {
    const RoundStats& a = sync.stats.rounds[r];
    const RoundStats& b = async.stats.rounds[r];
    EXPECT_EQ(a.shuffle_pairs, b.shuffle_pairs) << "round " << r;
    EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes) << "round " << r;
    EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes) << "round " << r;
    EXPECT_EQ(a.map_tasks, b.map_tasks) << "round " << r;
    EXPECT_DOUBLE_EQ(a.map_makespan_s, b.map_makespan_s) << "round " << r;
    EXPECT_DOUBLE_EQ(a.TotalSeconds(), b.TotalSeconds()) << "round " << r;
  }
}

const std::vector<AlgorithmKind>& AllKinds() {
  static const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kSendV,     AlgorithmKind::kSendCoef,
      AlgorithmKind::kHWTopk,    AlgorithmKind::kBasicS,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS,
      AlgorithmKind::kSendSketch};
  return kinds;
}

// Every algorithm under: serial; threaded + partitioned reduce; threaded +
// partitioned reduce + forced spill (the case where the async plane actually
// overlaps writes and prefetches merge reads). The exact algorithms add a
// deep-prefetch spill case -- their sorted rounds are the heaviest spill
// users -- and one prefetch-disabled case to pin the depth-0 inline path.
std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (AlgorithmKind kind : AllKinds()) {
    cases.push_back(Case{kind, /*threads=*/1, /*reduce_tasks=*/1});
    cases.push_back(Case{kind, /*threads=*/4, /*reduce_tasks=*/4});
    cases.push_back(Case{kind, /*threads=*/4, /*reduce_tasks=*/2,
                         /*shuffle_buffer_bytes=*/4096});
  }
  for (AlgorithmKind kind :
       {AlgorithmKind::kSendCoef, AlgorithmKind::kHWTopk}) {
    cases.push_back(Case{kind, /*threads=*/4, /*reduce_tasks=*/2,
                         /*shuffle_buffer_bytes=*/4096,
                         /*prefetch_depth=*/4});
    cases.push_back(Case{kind, /*threads=*/2, /*reduce_tasks=*/2,
                         /*shuffle_buffer_bytes=*/4096,
                         /*prefetch_depth=*/0});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SyncVsAsyncIoTest,
                         testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace wavemr
