// Fault injection against the spill data plane: failpoint-driven write
// failures (retry, retry exhaustion, the resident fallback that keeps
// results bit-identical), and checksum/truncation detection on reads.
#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/failpoint.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "mapreduce/job.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill.h"

namespace wavemr {
namespace {

namespace fs = std::filesystem;

using TestRun = ShuffleRun<uint64_t, uint64_t>;

class SpillFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }

  /// No-backoff policy so retry tests run instantly.
  static SpillIoPolicy FastPolicy() {
    SpillIoPolicy p;
    p.backoff_initial_us = 0;
    return p;
  }

  TestRun MakeRun(uint64_t seed, size_t len) {
    Rng rng(seed);
    TestRun run;
    for (size_t i = 0; i < len; ++i) run.Append(rng.NextBounded(1 << 20), i);
    run.SortByKey();
    return run;
  }

  SpillFileInfo WriteGood(const TestRun& run) {
    SpillFileInfo info;
    info.path = dir_.NextFilePath("fault");
    info.num_pairs = run.size();
    if (!run.empty()) {
      info.min_key = run.keys.front();
      info.max_key = run.keys.back();
    }
    const SpillWriteResult w = WriteSpillFile<uint64_t, uint64_t>(
        info.path, run.keys.data(), run.values.data(), run.size());
    EXPECT_TRUE(w.io.ok()) << w.io.ToString();
    info.file_bytes = w.file_bytes;
    return info;
  }

  static uint64_t DrainCursor(const SpillFileInfo& info) {
    FileRunCursor<uint64_t, uint64_t> cursor(info, 0, info.num_pairs);
    const uint64_t* k = nullptr;
    const uint64_t* v = nullptr;
    uint64_t total = 0;
    for (uint64_t got; (got = cursor.NextBlock(&k, &v)) > 0;) total += got;
    return total;
  }

  /// XORs one on-disk byte with `mask` (read-modify-write, so the mutation
  /// always changes the stored value).
  static void FlipByte(const fs::path& path, std::streamoff off, char mask) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(off);
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ mask);
    f.seekp(off);
    f.write(&byte, 1);
  }

  SpillDir dir_;
};

// ---------------------------------------------------------------------------
// Write-path injection.
// ---------------------------------------------------------------------------

TEST_F(SpillFaultTest, PersistentEnospcFailsAndDeletesPartialFile) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.write.write=error:ENOSPC").ok());
  TestRun run = MakeRun(1, 1000);
  const fs::path path = dir_.NextFilePath("enospc");
  const SpillWriteResult w = WriteSpillFile<uint64_t, uint64_t>(
      path, run.keys.data(), run.values.data(), run.size(), FastPolicy());
  EXPECT_FALSE(w.io.ok());
  EXPECT_EQ(w.io.err, ENOSPC);
  EXPECT_EQ(w.retries, FastPolicy().max_attempts - 1u) << "all retries spent";
  EXPECT_FALSE(fs::exists(path)) << "partial file must not survive a failure";
}

TEST_F(SpillFaultTest, TransientFailureRetriesThenSucceeds) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.write.write=once:ENOSPC").ok());
  TestRun run = MakeRun(2, 500);
  const fs::path path = dir_.NextFilePath("transient");
  const SpillWriteResult w = WriteSpillFile<uint64_t, uint64_t>(
      path, run.keys.data(), run.values.data(), run.size(), FastPolicy());
  ASSERT_TRUE(w.io.ok()) << w.io.ToString();
  EXPECT_EQ(w.retries, 1u);
  // The retried file is complete and fully readable.
  SpillFileInfo info;
  info.path = path;
  info.num_pairs = run.size();
  info.min_key = run.keys.front();
  info.max_key = run.keys.back();
  info.file_bytes = w.file_bytes;
  EXPECT_EQ(DrainCursor(info), run.size());
}

TEST_F(SpillFaultTest, NonTransientErrnoFailsWithoutRetry) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.write.write=error:EIO").ok());
  TestRun run = MakeRun(3, 100);
  const fs::path path = dir_.NextFilePath("eio");
  const SpillWriteResult w = WriteSpillFile<uint64_t, uint64_t>(
      path, run.keys.data(), run.values.data(), run.size(), FastPolicy());
  EXPECT_FALSE(w.io.ok());
  EXPECT_EQ(w.io.err, EIO);
  EXPECT_EQ(w.retries, 0u) << "EIO is not transient";
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(SpillFaultTest, OpenAndCloseFailpointsAreReachable) {
  TestRun run = MakeRun(4, 50);
  for (const char* spec :
       {"spill.write.open=error:EIO", "spill.write.close=error:EIO"}) {
    Failpoints::DisarmAll();
    ASSERT_TRUE(Failpoints::ArmFromSpec(spec).ok());
    const fs::path path = dir_.NextFilePath("oc");
    const SpillWriteResult w = WriteSpillFile<uint64_t, uint64_t>(
        path, run.keys.data(), run.values.data(), run.size(), FastPolicy());
    EXPECT_FALSE(w.io.ok()) << spec;
    EXPECT_FALSE(fs::exists(path)) << spec;
  }
}

// ---------------------------------------------------------------------------
// Read-path detection: corruption and truncation are errors, never silent.
// ---------------------------------------------------------------------------

TEST_F(SpillFaultTest, BitFlipInKeyColumnIsDetected) {
  TestRun run = MakeRun(5, 6000);  // spans two checksum blocks
  SpillFileInfo info = WriteGood(run);
  // Flip one bit in the first key.
  FlipByte(info.path, kSpillHeaderBytes, 0x01);
  try {
    DrainCursor(info);
    FAIL() << "corrupt key column read back without error";
  } catch (const SpillIoError& e) {
    EXPECT_EQ(e.io().op, IoResult::Op::kChecksum) << e.what();
  }
}

TEST_F(SpillFaultTest, BitFlipInValueColumnIsDetected) {
  TestRun run = MakeRun(6, 1000);
  SpillFileInfo info = WriteGood(run);
  const std::streamoff value_col =
      kSpillHeaderBytes + static_cast<std::streamoff>(run.size() * 8);
  FlipByte(info.path, value_col + 40, '\x80');
  EXPECT_THROW(DrainCursor(info), SpillIoError);
}

TEST_F(SpillFaultTest, TruncatedFileIsDetected) {
  TestRun run = MakeRun(7, 1000);
  SpillFileInfo info = WriteGood(run);
  fs::resize_file(info.path, info.file_bytes / 2);
  EXPECT_THROW(DrainCursor(info), SpillIoError);
}

TEST_F(SpillFaultTest, CorruptFooterIsDetectedAtOpen) {
  TestRun run = MakeRun(8, 100);
  SpillFileInfo info = WriteGood(run);
  // Flip a bit in the stored key-block CRC (footer starts after the columns).
  FlipByte(info.path,
           static_cast<std::streamoff>(kSpillHeaderBytes + run.size() * 16),
           0x01);
  EXPECT_THROW(DrainCursor(info), SpillIoError);
}

TEST_F(SpillFaultTest, ProbeDetectsCorruptionToo) {
  TestRun run = MakeRun(9, 3000);
  SpillFileInfo info = WriteGood(run);
  FlipByte(info.path, static_cast<std::streamoff>(kSpillHeaderBytes + 8 * 100),
           '\x7f');
  SpillKeyProbe<uint64_t> probe(info);
  EXPECT_THROW(probe.LowerBound(run.keys[100]), SpillIoError);
}

TEST_F(SpillFaultTest, ReadFailpointsSurfaceAsSpillIoError) {
  TestRun run = MakeRun(10, 500);
  SpillFileInfo info = WriteGood(run);
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.read.open=error:EIO").ok());
  EXPECT_THROW(DrainCursor(info), SpillIoError);
  Failpoints::DisarmAll();
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.read.read=error:EIO").ok());
  EXPECT_THROW(DrainCursor(info), SpillIoError);
}

// ---------------------------------------------------------------------------
// Graceful degradation: a full disk pins runs resident; results match the
// healthy run bit for bit.
// ---------------------------------------------------------------------------

class EmitManyMapper : public MapperBase<EmitManyMapper, uint64_t, uint64_t> {
 public:
  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    for (uint64_t i = 0; i < 256; ++i) {
      ctx.Emit((ctx.split_id() * 977 + i * 131) % 1024, i);
    }
  }
};

class CollectingReducer : public Reducer<uint64_t, uint64_t> {
 public:
  void Absorb(const uint64_t& k, const uint64_t& v,
              ReduceContext<uint64_t, uint64_t>&) override {
    pairs.emplace_back(k, v);
  }
  void Finish(ReduceContext<uint64_t, uint64_t>&) override {}
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
};

std::vector<std::pair<uint64_t, uint64_t>> RunSpillingJob(MrEnv* env) {
  CollectingReducer reducer;
  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "fault-identity";
  plan.mapper_factory = [](uint64_t) {
    return std::make_unique<EmitManyMapper>();
  };
  plan.reducer = &reducer;
  plan.sorted_shuffle = true;
  std::vector<std::vector<uint64_t>> splits(8, std::vector<uint64_t>{1, 2, 3});
  InMemoryDataset ds(std::move(splits), 1024);
  RunRound(plan, ds, env);
  return std::move(reducer.pairs);
}

TEST_F(SpillFaultTest, EnospcEverywhereKeepsResultsBitIdentical) {
  MrEnv clean_env;
  clean_env.cost_model.shuffle_buffer_bytes = 1024;  // forces real spills
  const auto clean = RunSpillingJob(&clean_env);
  ASSERT_GT(clean_env.stats.counters.Get("shuffle_spill_files"), 0u);
  EXPECT_EQ(clean_env.stats.counters.Get("shuffle_spill_fallbacks"), 0u);

  // Same job with every spill write failing: the plane must pin runs
  // resident and deliver the same pairs in the same order.
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.write.write=error:ENOSPC").ok());
  MrEnv faulty_env;
  faulty_env.cost_model.shuffle_buffer_bytes = 1024;
  const auto faulty = RunSpillingJob(&faulty_env);
  Failpoints::DisarmAll();

  EXPECT_GT(faulty_env.stats.counters.Get("shuffle_spill_fallbacks"), 0u);
  EXPECT_EQ(faulty_env.stats.counters.Get("shuffle_spill_files"), 0u);
  ASSERT_EQ(faulty.size(), clean.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    ASSERT_EQ(faulty[i], clean[i]) << "pair " << i << " diverged";
  }
  // No torn spill files left behind.
  if (faulty_env.spill_dir.created()) {
    size_t files = 0;
    for (const auto& entry :
         fs::directory_iterator(faulty_env.spill_dir.path())) {
      (void)entry;
      ++files;
    }
    EXPECT_EQ(files, 0u);
  }
}

TEST_F(SpillFaultTest, ShufflePlaneCountsFallbacksAndRetries) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.write.write=error:ENOSPC").ok());
  MrEnv env;
  ShufflePlane<uint64_t, uint64_t> plane(
      [](const uint64_t*, const uint64_t*, size_t n) { return 16 * n; },
      /*sorted=*/true, SpillPolicy{64}, &env.spill_dir);
  for (uint64_t r = 0; r < 4; ++r) {
    TestRun run = MakeRun(20 + r, 100);
    plane.Accept(std::move(run), [](const uint64_t&, const uint64_t&) {});
  }
  EXPECT_EQ(plane.spill_files(), 0u);
  EXPECT_GT(plane.spill_fallbacks(), 0u);
  EXPECT_GT(plane.spill_retries(), 0u) << "ENOSPC is transient, so the "
                                          "plane retried before pinning";
}

}  // namespace
}  // namespace wavemr
