// Equi-depth reduce partitioning: MergeCut / CutForRank boundary-selection
// properties, spilled-vs-resident boundary agreement, the all-equal-keys
// regression, and bit-identity of DeliverSortedMerge under steal-heavy
// schedules. The load-balance claim under test: boundaries at exact global
// ranks r*n/R hold every range within one pair of n/R no matter how skewed
// the key distribution is -- Zipf, constant, or adversarial.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "mapreduce/job.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill.h"

namespace wavemr {
namespace {

using Pair = std::pair<uint64_t, uint64_t>;
using Plane = ShufflePlane<uint64_t, uint64_t>;
using Run = ShuffleRun<uint64_t, uint64_t>;

uint64_t WirePairs(const uint64_t*, const uint64_t*, size_t n) {
  return uint64_t{8} * n;
}

// Values are globally unique sequence numbers across all runs, so any
// ordering or placement deviation between two delivery paths is visible.
std::vector<Run> SequencedRuns(const std::vector<std::vector<uint64_t>>& keys) {
  std::vector<Run> runs(keys.size());
  uint64_t sequence = 0;
  for (size_t q = 0; q < keys.size(); ++q) {
    for (uint64_t k : keys[q]) runs[q].Append(k, sequence++);
  }
  return runs;
}

// Zipf-ish skew: run q holds keys floor(domain / rank^s) style -- most mass
// on a handful of low keys, a long sparse tail.
std::vector<std::vector<uint64_t>> ZipfKeySets(uint64_t seed, size_t num_runs,
                                               size_t run_len,
                                               uint64_t domain) {
  Rng rng(seed);
  std::vector<std::vector<uint64_t>> sets(num_runs);
  for (auto& set : sets) {
    for (size_t i = 0; i < run_len; ++i) {
      // Inverse-power sample: u in (0,1], key ~ domain * u^3 biases hard
      // toward 0 (roughly s=1.2-flavored head-heaviness is all we need).
      const double u =
          (static_cast<double>(rng.NextBounded(1u << 20)) + 1.0) /
          static_cast<double>(1u << 20);
      set.push_back(static_cast<uint64_t>(
          static_cast<double>(domain - 1) * u * u * u));
    }
  }
  return sets;
}

void FillPlane(Plane* plane, std::vector<Run> runs) {
  for (auto& run : runs) {
    run.SortByKey();
    plane->Accept(std::move(run), [](const uint64_t&, const uint64_t&) {
      FAIL() << "sorted plane must not stream at Accept";
    });
  }
}

std::vector<Pair> FullMerge(Plane& plane) {
  std::vector<Pair> out;
  plane.Merge(
      [&out](const uint64_t& k, const uint64_t& v) { out.emplace_back(k, v); });
  return out;
}

// Per-range pair counts when the plane is split at ranks r*n/R and each
// range is delivered via MergeCutRange; also appends everything delivered
// to `stream` so callers can check concatenation order.
std::vector<uint64_t> CutRangeCounts(const Plane& plane, int R,
                                     std::vector<Pair>* stream) {
  const uint64_t n = plane.pairs();
  std::vector<uint64_t> counts;
  for (int r = 0; r < R; ++r) {
    const uint64_t b = n * static_cast<uint64_t>(r) / static_cast<uint64_t>(R);
    const uint64_t e =
        n * static_cast<uint64_t>(r + 1) / static_cast<uint64_t>(R);
    if (b == e) {
      counts.push_back(0);
      continue;
    }
    const MergeCut<uint64_t> lo = plane.CutForRank(b);
    const bool has_hi = e < n;
    const MergeCut<uint64_t> hi =
        has_hi ? plane.CutForRank(e) : MergeCut<uint64_t>{};
    uint64_t delivered = 0;
    plane.MergeCutRange(lo, has_hi, hi,
                        [&](const uint64_t& k, const uint64_t& v) {
                          ++delivered;
                          if (stream != nullptr) stream->emplace_back(k, v);
                        });
    counts.push_back(delivered);
  }
  return counts;
}

// ---------------------------------------------------------------------------
// Boundary selection properties.
// ---------------------------------------------------------------------------

// The headline property: on skewed (Zipf-ish), constant, and adversarial
// run sets, equi-depth boundaries keep max/min per-range pair counts within
// 2x (they are in fact within one pair of each other), and the delivered
// ranges concatenate to the single-merge stream.
TEST(EquiDepthTest, BoundariesBalanceSkewedConstantAndAdversarialRuns) {
  struct Case {
    const char* name;
    std::vector<std::vector<uint64_t>> key_sets;
  };
  std::vector<Case> cases;
  cases.push_back({"zipf", ZipfKeySets(7, 6, 400, uint64_t{1} << 32)});
  cases.push_back(
      {"constant", {std::vector<uint64_t>(500, 42), std::vector<uint64_t>(300, 42)}});
  // Adversarial: one run owns a single hot key repeated, the other a wide
  // uniform stripe far above it -- equal-width would put everything in one
  // range of R.
  {
    std::vector<uint64_t> hot(700, 3);
    std::vector<uint64_t> stripe;
    for (uint64_t i = 0; i < 300; ++i) {
      stripe.push_back((uint64_t{1} << 60) + i * 1000003);
    }
    cases.push_back({"adversarial", {hot, stripe}});
  }

  for (const auto& c : cases) {
    Plane plane(WirePairs, /*sorted=*/true, SpillPolicy{0}, nullptr);
    FillPlane(&plane, SequencedRuns(c.key_sets));
    const std::vector<Pair> want = FullMerge(plane);
    for (int R : {2, 4, 8}) {
      std::vector<Pair> stream;
      const std::vector<uint64_t> counts = CutRangeCounts(plane, R, &stream);
      EXPECT_EQ(stream, want) << c.name << " R=" << R;
      const uint64_t max = *std::max_element(counts.begin(), counts.end());
      const uint64_t min = *std::min_element(counts.begin(), counts.end());
      ASSERT_GT(min, 0u) << c.name << " R=" << R;
      EXPECT_LE(max, 2 * min) << c.name << " R=" << R;
      EXPECT_LE(max - min, 1u)
          << c.name << " R=" << R << ": exact ranks are within one pair";
    }
  }
}

TEST(EquiDepthTest, CutForRankPrefixMatchesMergePrefix) {
  Plane plane(WirePairs, true, SpillPolicy{0}, nullptr);
  FillPlane(&plane, SequencedRuns(ZipfKeySets(11, 5, 200, 1u << 20)));
  const std::vector<Pair> want = FullMerge(plane);
  const uint64_t n = plane.pairs();
  const MergeCut<uint64_t> begin = plane.CutForRank(0);
  for (uint64_t rank : {uint64_t{1}, n / 7, n / 3, n / 2, n - 1}) {
    const MergeCut<uint64_t> cut = plane.CutForRank(rank);
    std::vector<Pair> prefix;
    plane.MergeCutRange(begin, /*has_hi=*/true, cut,
                        [&prefix](const uint64_t& k, const uint64_t& v) {
                          prefix.emplace_back(k, v);
                        });
    ASSERT_EQ(prefix.size(), rank) << "rank " << rank;
    for (uint64_t i = 0; i < rank; ++i) {
      EXPECT_EQ(prefix[i], want[i]) << "rank " << rank << " pair " << i;
    }
  }
}

// Spilled and resident planes over the same runs must agree on every
// boundary cut and deliver identical cut ranges -- the on-disk
// LowerBound/UpperBound probes are the same binary search as the in-memory
// one.
TEST(EquiDepthTest, SpilledAndResidentPlanesAgreeOnBoundaries) {
  for (uint64_t seed : {5u, 23u, 71u}) {
    auto key_sets = ZipfKeySets(seed, 6, 250, 1u << 24);
    SpillDir dir;
    Plane spilled(WirePairs, true, SpillPolicy{/*buffer_bytes=*/256}, &dir);
    Plane resident(WirePairs, true, SpillPolicy{0}, nullptr);
    FillPlane(&spilled, SequencedRuns(key_sets));
    FillPlane(&resident, SequencedRuns(key_sets));
    ASSERT_GT(spilled.spill_files(), 0u) << "seed " << seed;
    ASSERT_EQ(spilled.pairs(), resident.pairs());

    const uint64_t n = resident.pairs();
    for (uint64_t rank : {uint64_t{0}, uint64_t{1}, n / 5, n / 2, n - 1}) {
      const MergeCut<uint64_t> a = spilled.CutForRank(rank);
      const MergeCut<uint64_t> b = resident.CutForRank(rank);
      EXPECT_TRUE(a == b) << "seed " << seed << " rank " << rank << ": ("
                          << a.key << "," << a.ordinal << "," << a.offset
                          << ") vs (" << b.key << "," << b.ordinal << ","
                          << b.offset << ")";
    }
    for (int R : {3, 8}) {
      std::vector<Pair> sa, sb;
      CutRangeCounts(spilled, R, &sa);
      CutRangeCounts(resident, R, &sb);
      EXPECT_EQ(sa, sb) << "seed " << seed << " R=" << R;
    }
  }
}

// ---------------------------------------------------------------------------
// DeliverSortedMerge: the regression and the bit-identity property.
// ---------------------------------------------------------------------------

struct DeliverOutcome {
  std::vector<Pair> stream;
  internal::SortedMergeResult result;
};

DeliverOutcome Deliver(const std::vector<std::vector<uint64_t>>& key_sets,
                       int reduce_tasks, int pool_threads,
                       uint64_t spill_budget, uint64_t steal_slice_pairs) {
  MrEnv env;
  Plane plane(WirePairs, true, SpillPolicy{spill_budget},
              spill_budget > 0 ? &env.spill_dir : nullptr);
  FillPlane(&plane, SequencedRuns(key_sets));
  DeliverOutcome out;
  out.result = internal::DeliverSortedMerge(
      plane, &env, reduce_tasks, pool_threads,
      [&out](const uint64_t& k, const uint64_t& v) {
        out.stream.emplace_back(k, v);
      },
      steal_slice_pairs);
  return out;
}

// Regression (ISSUE 7 satellite): with every key equal, the old equal-width
// partitioner saw min_key == max_key and collapsed to one range. Rank
// boundaries split the duplicates evenly across all R ranges.
TEST(EquiDepthTest, AllEqualKeysStillSplitAcrossRanges) {
  std::vector<std::vector<uint64_t>> key_sets = {
      std::vector<uint64_t>(600, 9), std::vector<uint64_t>(400, 9)};
  for (int threads : {1, 4}) {
    const DeliverOutcome out = Deliver(key_sets, /*reduce_tasks=*/4, threads,
                                       /*spill_budget=*/0,
                                       /*steal_slice_pairs=*/0);
    EXPECT_EQ(out.result.reduce_tasks_used, 4) << "threads " << threads;
    EXPECT_EQ(out.result.range_max_pairs, 250u) << "threads " << threads;
    EXPECT_EQ(out.result.range_min_pairs, 250u) << "threads " << threads;
    ASSERT_EQ(out.stream.size(), 1000u);
    for (uint64_t i = 0; i < 1000; ++i) {
      EXPECT_EQ(out.stream[i], Pair(9, i)) << "pair " << i;
    }
  }
}

// Bit-identity across every (threads, reduce_tasks, spill, slice size)
// combination, including slice sizes small enough to force steal-heavy
// schedules: the delivered stream must equal the single full merge.
TEST(EquiDepthTest, WorkStealingSchedulesAreBitIdenticalToSingleMerge) {
  auto key_sets = ZipfKeySets(31, 5, 300, 1u << 28);
  const DeliverOutcome reference =
      Deliver(key_sets, /*reduce_tasks=*/1, /*pool_threads=*/1, 0, 0);
  ASSERT_EQ(reference.result.reduce_tasks_used, 1);
  for (int threads : {1, 2, 4, 8}) {
    for (int R : {2, 4, 8}) {
      for (uint64_t budget : {uint64_t{0}, uint64_t{512}}) {
        for (uint64_t slice : {uint64_t{0}, uint64_t{64}, uint64_t{7}}) {
          const DeliverOutcome out = Deliver(key_sets, R, threads, budget, slice);
          EXPECT_EQ(out.stream, reference.stream)
              << "threads=" << threads << " R=" << R << " budget=" << budget
              << " slice=" << slice;
          EXPECT_EQ(out.result.reduce_tasks_used, R);
          EXPECT_LE(out.result.range_max_pairs,
                    out.result.range_min_pairs + 1);
        }
      }
    }
  }
}

// Planned range loads surface in RoundStats fields via SortedMergeResult
// even when n does not divide evenly.
TEST(EquiDepthTest, RangeLoadStatsReportExactPlannedCounts) {
  std::vector<std::vector<uint64_t>> key_sets = {{1, 2, 3, 4, 5, 6, 7}};
  const DeliverOutcome out = Deliver(key_sets, 3, 1, 0, 0);
  EXPECT_EQ(out.result.range_max_pairs, 3u);  // 7 = 2 + 3 + 2 at ranks 2,4
  EXPECT_EQ(out.result.range_min_pairs, 2u);
  EXPECT_EQ(out.stream.size(), 7u);
}

}  // namespace
}  // namespace wavemr
