#include "mapreduce/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/rng.h"

namespace wavemr {
namespace {

using Pair = std::pair<uint64_t, uint64_t>;

// Reference semantics the plane must reproduce: concatenate the runs in run
// order and stable-sort by key (exactly what the old engine's driver did).
std::vector<Pair> StableSortedConcatenation(
    const std::vector<ShuffleRun<uint64_t, uint64_t>>& runs) {
  std::vector<Pair> all;
  for (const auto& run : runs) {
    for (size_t i = 0; i < run.size(); ++i) {
      all.emplace_back(run.keys[i], run.values[i]);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Pair& a, const Pair& b) { return a.first < b.first; });
  return all;
}

// Random runs with heavy key duplication (small key domain) so stability is
// actually exercised; values are globally unique sequence numbers, which
// makes any ordering deviation visible.
std::vector<ShuffleRun<uint64_t, uint64_t>> RandomRuns(uint64_t seed,
                                                       size_t num_runs,
                                                       size_t max_run_len,
                                                       uint64_t key_domain) {
  Rng rng(seed);
  std::vector<ShuffleRun<uint64_t, uint64_t>> runs(num_runs);
  uint64_t sequence = 0;
  for (auto& run : runs) {
    const size_t len = rng.NextBounded(max_run_len + 1);  // empty runs allowed
    for (size_t i = 0; i < len; ++i) {
      run.Append(rng.NextBounded(key_domain), sequence++);
    }
  }
  return runs;
}

TEST(ShuffleRunTest, SortByKeyMatchesStableSortBitwise) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (uint64_t domain : {uint64_t{1}, uint64_t{7}, uint64_t{1} << 16,
                            uint64_t{1} << 40}) {
      auto runs = RandomRuns(seed ^ domain, 1, 3000, domain);
      ShuffleRun<uint64_t, uint64_t>& run = runs[0];

      std::vector<Pair> want;
      for (size_t i = 0; i < run.size(); ++i) {
        want.emplace_back(run.keys[i], run.values[i]);
      }
      std::stable_sort(want.begin(), want.end(), [](const Pair& a, const Pair& b) {
        return a.first < b.first;
      });

      run.SortByKey();
      ASSERT_EQ(run.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(run.keys[i], want[i].first) << "pair " << i;
        EXPECT_EQ(run.values[i], want[i].second) << "pair " << i;
      }
      EXPECT_TRUE(run.sorted);
    }
  }
}

TEST(ShuffleRunTest, SortIsIdempotentAndHandlesEdges) {
  ShuffleRun<uint64_t, uint64_t> empty;
  empty.SortByKey();
  EXPECT_TRUE(empty.sorted);
  EXPECT_TRUE(empty.empty());

  ShuffleRun<uint64_t, uint64_t> one;
  one.Append(42, 7);
  one.SortByKey();
  one.SortByKey();
  EXPECT_EQ(one.keys[0], 42u);
  EXPECT_EQ(one.values[0], 7u);
}

// The satellite property test: merging R randomly sized sorted runs equals
// stable_sort of their concatenation -- duplicate keys drain lower-indexed
// runs first and preserve within-run order, empty runs are skipped.
TEST(RunMergerTest, MergeEqualsStableSortOfConcatenation) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const size_t num_runs = 1 + (seed % 9);  // 1..9 runs
    auto runs = RandomRuns(seed * 1000, num_runs, 400, /*key_domain=*/32);
    std::vector<Pair> want = StableSortedConcatenation(runs);

    for (auto& run : runs) run.SortByKey();
    RunMerger<uint64_t, uint64_t> merger(runs);
    std::vector<Pair> got;
    merger.Drain([&got](const uint64_t& k, const uint64_t& v) {
      got.emplace_back(k, v);
    });

    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "seed " << seed << " pair " << i;
    }
  }
}

TEST(RunMergerTest, AllRunsEmptyOrNoRuns) {
  std::vector<ShuffleRun<uint64_t, uint64_t>> none;
  RunMerger<uint64_t, uint64_t> empty_merger(none);
  size_t count = 0;
  empty_merger.Drain([&count](const uint64_t&, const uint64_t&) { ++count; });
  EXPECT_EQ(count, 0u);

  std::vector<ShuffleRun<uint64_t, uint64_t>> empties(5);
  RunMerger<uint64_t, uint64_t> merger(empties);
  merger.Drain([&count](const uint64_t&, const uint64_t&) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(RunMergerTest, TieBreakPrefersLowerRunIndex) {
  // Three runs of the same single key: values must drain in run order.
  std::vector<ShuffleRun<uint64_t, uint64_t>> runs(3);
  for (uint64_t r = 0; r < 3; ++r) {
    runs[r].Append(5, r * 10);
    runs[r].Append(5, r * 10 + 1);
    runs[r].SortByKey();
  }
  RunMerger<uint64_t, uint64_t> merger(runs);
  std::vector<uint64_t> values;
  merger.Drain([&values](const uint64_t&, const uint64_t& v) {
    values.push_back(v);
  });
  EXPECT_EQ(values, (std::vector<uint64_t>{0, 1, 10, 11, 20, 21}));
}

TEST(ShufflePlaneTest, StreamingPlaneDeliversInRunOrderAndAccounts) {
  ShufflePlane<uint64_t, uint64_t> plane(
      [](const uint64_t*, const uint64_t*, size_t n) { return uint64_t{8} * n; },
      /*sorted=*/false, SpillPolicy{0});
  auto runs = RandomRuns(77, 4, 50, 16);
  std::vector<Pair> want;
  for (const auto& run : runs) {
    for (size_t i = 0; i < run.size(); ++i) {
      want.emplace_back(run.keys[i], run.values[i]);
    }
  }
  std::vector<Pair> got;
  uint64_t total = 0;
  for (auto& run : runs) {
    total += run.size();
    plane.Accept(std::move(run),
                 [&got](const uint64_t& k, const uint64_t& v) {
                   got.emplace_back(k, v);
                 });
  }
  EXPECT_EQ(got, want);  // emit order within runs, run order across them
  EXPECT_EQ(plane.pairs(), total);
  EXPECT_EQ(plane.wire_bytes(), 8 * total);
  EXPECT_EQ(plane.num_runs(), 0u);  // streaming planes retain nothing
  EXPECT_EQ(plane.spill_events(), 0u);
}

TEST(ShufflePlaneTest, SortedPlaneMergesAndCountsWouldSpills) {
  // Budget below one run's payload: every retained run past the first
  // trips the would-spill check.
  ShufflePlane<uint64_t, uint64_t> plane(
      [](const uint64_t*, const uint64_t*, size_t n) { return uint64_t{8} * n; },
      /*sorted=*/true, SpillPolicy{/*buffer_bytes=*/100});
  auto runs = RandomRuns(99, 3, 40, 8);
  std::vector<Pair> want = StableSortedConcatenation(runs);
  uint64_t resident = 0;
  uint64_t expect_spills = 0;
  for (auto& run : runs) {
    run.SortByKey();
    resident += run.PayloadBytes();
    if (resident > 100) ++expect_spills;
  }
  for (auto& run : runs) {
    plane.Accept(std::move(run), [](const uint64_t&, const uint64_t&) {
      FAIL() << "sorted plane must not stream at Accept";
    });
  }
  EXPECT_EQ(plane.num_runs(), 3u);
  EXPECT_EQ(plane.spill_events(), expect_spills);

  std::vector<Pair> got;
  plane.Merge([&got](const uint64_t& k, const uint64_t& v) {
    got.emplace_back(k, v);
  });
  EXPECT_EQ(got, want);
}

TEST(SpillPolicyTest, ZeroBudgetNeverSpills) {
  SpillPolicy unbounded{0};
  EXPECT_FALSE(unbounded.ShouldSpill(uint64_t{1} << 40));
  SpillPolicy tight{64};
  EXPECT_FALSE(tight.ShouldSpill(64));
  EXPECT_TRUE(tight.ShouldSpill(65));
}

// The two delivery modes are different loops over the same loser tree; the
// stream must be bit-identical on every workload shape -- uniform duplicate
// keys, run-disjoint key ranges (the streak/gallop path), single runs.
TEST(RunMergerTest, BlockwiseDrainMatchesPerPairReplay) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const size_t num_runs = 1 + (seed % 7);
    // Alternate workloads: tiny key domain (heavy ties) vs per-run disjoint
    // ranges (long winner streaks).
    std::vector<ShuffleRun<uint64_t, uint64_t>> runs;
    if (seed % 2 == 0) {
      runs = RandomRuns(seed * 31, num_runs, 500, /*key_domain=*/16);
    } else {
      Rng rng(seed * 31);
      runs.resize(num_runs);
      uint64_t sequence = 0;
      for (size_t r = 0; r < num_runs; ++r) {
        const size_t len = rng.NextBounded(501);
        for (size_t i = 0; i < len; ++i) {
          runs[r].Append(r * 1000 + rng.NextBounded(1000), sequence++);
        }
      }
    }
    for (auto& run : runs) run.SortByKey();

    std::vector<Pair> blockwise, per_pair;
    RunMerger<uint64_t, uint64_t> m1(runs);
    m1.Drain([&blockwise](const uint64_t& k, const uint64_t& v) {
      blockwise.emplace_back(k, v);
    });
    RunMerger<uint64_t, uint64_t> m2(runs);
    m2.DrainPerPair([&per_pair](const uint64_t& k, const uint64_t& v) {
      per_pair.emplace_back(k, v);
    });
    EXPECT_EQ(blockwise, per_pair) << "seed " << seed;
    EXPECT_EQ(blockwise, StableSortedConcatenation(runs)) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Real spilling: merge over a mix of resident and file-backed runs.
// ---------------------------------------------------------------------------

// The satellite property test: a plane under a tiny budget spills real
// files, and Merge still equals stable_sort of the runs' concatenation --
// including empty runs and duplicate keys -- with the spill counters
// reporting the eviction.
TEST(ShufflePlaneTest, MergeWithRealSpillEqualsStableSort) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SpillDir dir;
    ShufflePlane<uint64_t, uint64_t> plane(
        [](const uint64_t*, const uint64_t*, size_t n) { return uint64_t{8} * n; },
        /*sorted=*/true, SpillPolicy{/*buffer_bytes=*/512}, &dir);
    const size_t num_runs = 2 + (seed % 8);
    auto runs = RandomRuns(seed * 131, num_runs, 120, /*key_domain=*/24);
    std::vector<Pair> want = StableSortedConcatenation(runs);
    uint64_t total = 0;
    for (auto& run : runs) {
      total += run.size();
      run.SortByKey();
      plane.Accept(std::move(run), [](const uint64_t&, const uint64_t&) {
        FAIL() << "sorted plane must not stream at Accept";
      });
    }
    if (total * 16 > 512) {
      EXPECT_GT(plane.spill_files(), 0u) << "seed " << seed;
      EXPECT_GT(plane.spill_bytes(), 0u) << "seed " << seed;
    }
    EXPECT_EQ(plane.num_runs(), num_runs);
    EXPECT_LE(plane.resident_bytes(), 512u) << "largest-first eviction";

    std::vector<Pair> got;
    plane.Merge([&got](const uint64_t& k, const uint64_t& v) {
      got.emplace_back(k, v);
    });
    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    EXPECT_EQ(got, want) << "seed " << seed;
  }
}

// Spilling must not change a single delivered bit relative to the unbounded
// (all-resident) plane, for the full merge and for every partition split.
TEST(ShufflePlaneTest, SpilledAndResidentPlanesDeliverIdenticalStreams) {
  for (uint64_t seed : {3u, 17u, 99u}) {
    auto runs = RandomRuns(seed, 6, 200, /*key_domain=*/64);
    for (auto& run : runs) run.SortByKey();

    SpillDir dir;
    ShufflePlane<uint64_t, uint64_t> spilled(
        [](const uint64_t*, const uint64_t*, size_t n) { return uint64_t{8} * n; },
        true, SpillPolicy{256}, &dir);
    ShufflePlane<uint64_t, uint64_t> resident(
        [](const uint64_t*, const uint64_t*, size_t n) { return uint64_t{8} * n; },
        true, SpillPolicy{0}, nullptr);
    for (auto& run : runs) {
      auto copy = run;
      spilled.Accept(std::move(copy), [](const uint64_t&, const uint64_t&) {});
      resident.Accept(std::move(run), [](const uint64_t&, const uint64_t&) {});
    }

    std::vector<Pair> a, b;
    spilled.Merge([&a](const uint64_t& k, const uint64_t& v) { a.emplace_back(k, v); });
    resident.Merge([&b](const uint64_t& k, const uint64_t& v) { b.emplace_back(k, v); });
    EXPECT_EQ(a, b) << "seed " << seed;

    // Partitioned delivery: concatenating MergeRange over any key split
    // reproduces the full merge exactly, resident or spilled.
    for (uint64_t R : {2u, 3u, 8u}) {
      std::vector<Pair> parts;
      uint64_t min_key = 0, max_key = 0;
      ASSERT_TRUE(spilled.KeyBounds(&min_key, &max_key));
      const uint64_t span = max_key - min_key + 1;
      for (uint64_t r = 0; r < R; ++r) {
        const uint64_t lo = min_key + span * r / R;
        if (r + 1 < R) {
          spilled.MergeRange(lo, true, min_key + span * (r + 1) / R,
                             [&parts](const uint64_t& k, const uint64_t& v) {
                               parts.emplace_back(k, v);
                             });
        } else {
          spilled.MergeRange(lo, false, 0,
                             [&parts](const uint64_t& k, const uint64_t& v) {
                               parts.emplace_back(k, v);
                             });
        }
      }
      EXPECT_EQ(parts, b) << "seed " << seed << " R " << R;
    }
  }
}

TEST(ShufflePlaneTest, CountingOnlyPlaneWithoutDirNeverWritesFiles) {
  // The pre-external behavior: no SpillDir means would-spill accounting
  // only, runs stay resident.
  ShufflePlane<uint64_t, uint64_t> plane(
      [](const uint64_t*, const uint64_t*, size_t n) { return uint64_t{8} * n; },
      true, SpillPolicy{16}, nullptr);
  auto runs = RandomRuns(5, 3, 40, 8);
  for (auto& run : runs) {
    run.SortByKey();
    plane.Accept(std::move(run), [](const uint64_t&, const uint64_t&) {});
  }
  EXPECT_GT(plane.spill_events(), 0u);
  EXPECT_EQ(plane.spill_files(), 0u);
  EXPECT_EQ(plane.spill_bytes(), 0u);
}

}  // namespace
}  // namespace wavemr
