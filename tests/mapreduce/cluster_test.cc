#include "mapreduce/cluster.h"

#include <gtest/gtest.h>

namespace wavemr {
namespace {

TEST(ClusterTest, PaperClusterShape) {
  ClusterSpec spec = ClusterSpec::PaperCluster();
  EXPECT_EQ(spec.NumSlaves(), 15u);  // 16 machines minus the master
  EXPECT_EQ(spec.TotalMapSlots(), 30);
  // The reducer is pinned on a config-3 (fastest) machine.
  EXPECT_DOUBLE_EQ(spec.ReducerSpeed(), 1.35);
  int cfg1 = 0;
  for (const NodeSpec& n : spec.slaves) cfg1 += n.speed == 1.0;
  EXPECT_EQ(cfg1, 9);
}

TEST(ClusterTest, UniformCluster) {
  ClusterSpec spec = ClusterSpec::Uniform(4, 2.0, 3);
  EXPECT_EQ(spec.NumSlaves(), 4u);
  EXPECT_EQ(spec.TotalMapSlots(), 12);
  EXPECT_DOUBLE_EQ(spec.ReducerSpeed(), 2.0);
}

TEST(SchedulerTest, SingleSlotIsSequential) {
  ClusterSpec spec = ClusterSpec::Uniform(1, 1.0, 1);
  EXPECT_DOUBLE_EQ(ScheduleMakespan(spec, {1.0, 2.0, 3.0}), 6.0);
}

TEST(SchedulerTest, PerfectParallelism) {
  ClusterSpec spec = ClusterSpec::Uniform(3, 1.0, 1);
  EXPECT_DOUBLE_EQ(ScheduleMakespan(spec, {2.0, 2.0, 2.0}), 2.0);
}

TEST(SchedulerTest, WavesOfEqualTasks) {
  // 8 unit tasks on 3 slots: ceil(8/3) = 3 waves.
  ClusterSpec spec = ClusterSpec::Uniform(3, 1.0, 1);
  std::vector<double> tasks(8, 1.0);
  EXPECT_DOUBLE_EQ(ScheduleMakespan(spec, tasks), 3.0);
}

TEST(SchedulerTest, FasterNodeFinishesFirstAndTakesMore) {
  // Node A speed 2 (slot x1), node B speed 1 (slot x1); 4 unit tasks.
  // Greedy: t=0 both take one (A finishes 0.5, B at 1.0); A takes 3rd
  // (finishes 1.0); 4th goes to earliest slot -> A at 1.0 -> finishes 1.5.
  ClusterSpec spec;
  spec.slaves = {{"fast", 2.0, 1}, {"slow", 1.0, 1}};
  std::vector<double> tasks(4, 1.0);
  EXPECT_DOUBLE_EQ(ScheduleMakespan(spec, tasks), 1.5);
}

TEST(SchedulerTest, EmptyTaskListIsZero) {
  ClusterSpec spec = ClusterSpec::Uniform(2);
  EXPECT_DOUBLE_EQ(ScheduleMakespan(spec, {}), 0.0);
}

TEST(SchedulerTest, MultipleSlotsPerNode) {
  ClusterSpec spec = ClusterSpec::Uniform(1, 1.0, 2);
  // Two slots on one node: 4 unit tasks -> 2 waves.
  EXPECT_DOUBLE_EQ(ScheduleMakespan(spec, {1, 1, 1, 1}), 2.0);
}

}  // namespace
}  // namespace wavemr
