#include "mapreduce/job.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "data/dataset.h"

namespace wavemr {
namespace {

// Word-count-style fixture: count keys across splits.
class CountMapper : public MapperBase<CountMapper, uint64_t, uint64_t> {
 public:
  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    ctx.input().Scan([&ctx](uint64_t key) { ctx.Emit(key, 1); });
  }
};

class CountReducer : public Reducer<uint64_t, uint64_t> {
 public:
  void Absorb(const uint64_t& k, const uint64_t& v,
              ReduceContext<uint64_t, uint64_t>& ctx) override {
    (void)ctx;
    counts[k] += v;
    absorbed.emplace_back(k, v);
  }
  void Finish(ReduceContext<uint64_t, uint64_t>& ctx) override { (void)ctx; }

  std::map<uint64_t, uint64_t> counts;
  std::vector<std::pair<uint64_t, uint64_t>> absorbed;
};

InMemoryDataset TinyDataset() {
  return InMemoryDataset({{3, 1, 3}, {1, 1}, {7}}, 8);
}

JobPlan<uint64_t, uint64_t> CountPlan(CountReducer* reducer) {
  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "count";
  plan.mapper_factory = [](uint64_t) { return std::make_unique<CountMapper>(); };
  plan.reducer = reducer;
  plan.wire_bytes = [](const uint64_t*, const uint64_t*, size_t n) {
    return uint64_t{8} * n;
  };
  return plan;
}

TEST(JobEngineTest, CountsAreCorrect) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  CountReducer reducer;
  RunRound(CountPlan(&reducer), ds, &env);
  EXPECT_EQ(reducer.counts[1], 3u);
  EXPECT_EQ(reducer.counts[3], 2u);
  EXPECT_EQ(reducer.counts[7], 1u);
}

TEST(JobEngineTest, ShuffleAccountingWithoutCombiner) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  CountReducer reducer;
  RoundStats round = RunRound(CountPlan(&reducer), ds, &env);
  // One pair per record: 6 records * 8 bytes.
  EXPECT_EQ(round.shuffle_pairs, 6u);
  EXPECT_EQ(round.shuffle_bytes, 48u);
  EXPECT_EQ(round.map_tasks, 3u);
  EXPECT_EQ(env.stats.counters.Get("map_output_pairs"), 6u);
  EXPECT_EQ(env.stats.counters.Get("map_records_read"), 6u);
}

TEST(JobEngineTest, CombinerReducesShuffle) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  CountReducer reducer;
  auto plan = CountPlan(&reducer);
  plan.combiner = [](const uint64_t& a, const uint64_t& b) { return a + b; };
  RoundStats round = RunRound(plan, ds, &env);
  // Distinct keys per split: {3,1}, {1}, {7} -> 4 pairs.
  EXPECT_EQ(round.shuffle_pairs, 4u);
  EXPECT_EQ(round.shuffle_bytes, 32u);
  // Results identical to the uncombined run.
  EXPECT_EQ(reducer.counts[1], 3u);
  EXPECT_EQ(reducer.counts[3], 2u);
  EXPECT_EQ(env.stats.counters.Get("map_output_pairs"), 6u);      // pre-combine
  EXPECT_EQ(env.stats.counters.Get("combine_output_pairs"), 4u);  // post-combine
}

TEST(JobEngineTest, SortedShuffleDeliversKeyOrder) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  CountReducer reducer;
  auto plan = CountPlan(&reducer);
  plan.sorted_shuffle = true;
  RunRound(plan, ds, &env);
  ASSERT_EQ(reducer.absorbed.size(), 6u);
  for (size_t i = 1; i < reducer.absorbed.size(); ++i) {
    EXPECT_LE(reducer.absorbed[i - 1].first, reducer.absorbed[i].first);
  }
  EXPECT_EQ(reducer.counts[1], 3u);
}

// Regression for the Start-ordering bug: the streaming path used to call
// Start before mapping while the sorted path called it after the map phase
// (and the old sorted path could have re-run a pre-sort Start's
// allocations). Both delivery modes must call Start exactly once, before
// any Absorb, with Finish exactly once after everything.
class LifecycleReducer : public Reducer<uint64_t, uint64_t> {
 public:
  void Start(ReduceContext<uint64_t, uint64_t>& ctx) override {
    (void)ctx;
    ++starts;
    baseline.push_back(0);  // Start-time allocation: doubled if Start re-ran
  }
  void Absorb(const uint64_t& k, const uint64_t& v,
              ReduceContext<uint64_t, uint64_t>& ctx) override {
    (void)k;
    (void)v;
    (void)ctx;
    if (starts != 1 || finishes != 0) ++out_of_order_absorbs;
    ++absorbs;
  }
  void Finish(ReduceContext<uint64_t, uint64_t>& ctx) override {
    (void)ctx;
    ++finishes;
  }

  int starts = 0;
  int absorbs = 0;
  int finishes = 0;
  int out_of_order_absorbs = 0;
  std::vector<int> baseline;
};

TEST(JobEngineTest, StartRunsOnceBeforeAbsorbsInBothDeliveryModes) {
  InMemoryDataset ds = TinyDataset();
  for (bool sorted : {false, true}) {
    MrEnv env;
    LifecycleReducer reducer;
    JobPlan<uint64_t, uint64_t> plan;
    plan.name = sorted ? "lifecycle-sorted" : "lifecycle-streaming";
    plan.mapper_factory = [](uint64_t) { return std::make_unique<CountMapper>(); };
    plan.reducer = &reducer;
    plan.sorted_shuffle = sorted;
    RunRound(plan, ds, &env);
    EXPECT_EQ(reducer.starts, 1) << "sorted=" << sorted;
    EXPECT_EQ(reducer.finishes, 1) << "sorted=" << sorted;
    EXPECT_EQ(reducer.absorbs, 6) << "sorted=" << sorted;
    EXPECT_EQ(reducer.out_of_order_absorbs, 0) << "sorted=" << sorted;
    EXPECT_EQ(reducer.baseline.size(), 1u) << "sorted=" << sorted;
  }
}

TEST(JobEngineTest, SimulatedTimeIsPositiveAndDecomposed) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  CountReducer reducer;
  RoundStats round = RunRound(CountPlan(&reducer), ds, &env);
  EXPECT_GT(round.map_makespan_s, 0.0);
  EXPECT_GT(round.shuffle_s, 0.0);
  EXPECT_GE(round.reduce_s, 0.0);
  EXPECT_DOUBLE_EQ(round.overhead_s, env.cost_model.job_overhead_s);
  EXPECT_GT(round.TotalSeconds(), env.cost_model.job_overhead_s);
  EXPECT_EQ(env.stats.NumRounds(), 1u);
  EXPECT_DOUBLE_EQ(env.stats.TotalSeconds(), round.TotalSeconds());
}

TEST(JobEngineTest, LowerBandwidthSlowsShuffleOnly) {
  InMemoryDataset ds = TinyDataset();
  CountReducer r1, r2;
  MrEnv fast, slow;
  fast.cost_model.bandwidth_fraction = 1.0;
  slow.cost_model.bandwidth_fraction = 0.1;
  RoundStats a = RunRound(CountPlan(&r1), ds, &fast);
  RoundStats b = RunRound(CountPlan(&r2), ds, &slow);
  EXPECT_DOUBLE_EQ(a.map_makespan_s, b.map_makespan_s);
  EXPECT_NEAR(b.shuffle_s, a.shuffle_s * 10.0, 1e-9);
}

TEST(JobEngineTest, BroadcastBytesChargeCacheOnce) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  env.config.SetUint("x", 5);  // config is not data communication
  env.cache.Put("blob", std::string(100, 'a'));
  CountReducer reducer;
  RoundStats round = RunRound(CountPlan(&reducer), ds, &env);
  uint64_t slaves = env.cluster.NumSlaves();
  EXPECT_EQ(round.broadcast_bytes, 100 * slaves);

  // The cache blob is charged only once.
  CountReducer reducer2;
  RoundStats round2 = RunRound(CountPlan(&reducer2), ds, &env);
  EXPECT_EQ(round2.broadcast_bytes, 0u);

  // A blob added between rounds is charged in the next round.
  env.cache.Put("r3", std::string(40, 'b'));
  CountReducer reducer3;
  RoundStats round3 = RunRound(CountPlan(&reducer3), ds, &env);
  EXPECT_EQ(round3.broadcast_bytes, 40 * slaves);
}

// State round-trip: mapper saves in round 1, loads in round 2.
class SaveMapper : public MapperBase<SaveMapper, uint64_t, uint64_t> {
 public:
  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    ctx.SaveState("state-of-" + std::to_string(ctx.split_id()));
  }
};

class LoadMapper : public MapperBase<LoadMapper, uint64_t, uint64_t> {
 public:
  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    auto blob = ctx.LoadState();
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(*blob, "state-of-" + std::to_string(ctx.split_id()));
    ctx.Emit(ctx.split_id(), 1);
  }
};

TEST(JobEngineTest, SplitStatePersistsAcrossRounds) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  CountReducer r1, r2;
  JobPlan<uint64_t, uint64_t> save;
  save.name = "save";
  save.mapper_factory = [](uint64_t) { return std::make_unique<SaveMapper>(); };
  save.reducer = &r1;
  RunRound(save, ds, &env);

  JobPlan<uint64_t, uint64_t> load;
  load.name = "load";
  load.mapper_factory = [](uint64_t) { return std::make_unique<LoadMapper>(); };
  load.reducer = &r2;
  RoundStats round = RunRound(load, ds, &env);
  EXPECT_EQ(round.shuffle_pairs, 3u);  // one per split; all states found
  EXPECT_EQ(env.stats.NumRounds(), 2u);
}

TEST(JobEngineTest, ParallelRoundMatchesSerial) {
  InMemoryDataset ds = TinyDataset();
  MrEnv serial_env, parallel_env;
  parallel_env.threads = 8;
  CountReducer serial_red, parallel_red;
  RoundStats a = RunRound(CountPlan(&serial_red), ds, &serial_env);
  RoundStats b = RunRound(CountPlan(&parallel_red), ds, &parallel_env);
  EXPECT_EQ(serial_red.counts, parallel_red.counts);
  EXPECT_EQ(serial_red.absorbed, parallel_red.absorbed);  // split-order merge
  EXPECT_EQ(a.shuffle_pairs, b.shuffle_pairs);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_DOUBLE_EQ(a.map_makespan_s, b.map_makespan_s);
  EXPECT_EQ(serial_env.stats.counters.values(),
            parallel_env.stats.counters.values());
  EXPECT_EQ(b.threads_used, 8);
  EXPECT_EQ(a.threads_used, 1);
}

TEST(JobEngineTest, ParallelStateRoundTrip) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  env.threads = 4;
  CountReducer r1, r2;
  JobPlan<uint64_t, uint64_t> save;
  save.name = "save";
  save.mapper_factory = [](uint64_t) { return std::make_unique<SaveMapper>(); };
  save.reducer = &r1;
  RunRound(save, ds, &env);

  JobPlan<uint64_t, uint64_t> load;
  load.name = "load";
  load.mapper_factory = [](uint64_t) { return std::make_unique<LoadMapper>(); };
  load.reducer = &r2;
  RoundStats round = RunRound(load, ds, &env);
  EXPECT_EQ(round.shuffle_pairs, 3u);
  // Pool persists across rounds on one MrEnv.
  EXPECT_EQ(round.threads_used, 4);
}

// Local classes cannot hold member templates, so the CRTP mappers used by
// the tests below live at namespace scope.
class ThrowingMapper : public MapperBase<ThrowingMapper, uint64_t, uint64_t> {
 public:
  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    if (ctx.split_id() == 1) throw std::runtime_error("split 1 failed");
    ctx.Emit(ctx.split_id(), 1);
  }
};

class ExpensiveMapper : public MapperBase<ExpensiveMapper, uint64_t, uint64_t> {
 public:
  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    ctx.ChargeCpuNs(5e9);  // 5 simulated seconds
  }
};

TEST(JobEngineTest, MapperExceptionPropagatesFromParallelRound) {
  // Many more splits than workers, failing early: the engine must drain the
  // still-queued tasks before unwinding (they reference RunRound's frame).
  std::vector<std::vector<uint64_t>> splits(32, std::vector<uint64_t>{1});
  InMemoryDataset ds(std::move(splits), 8);
  MrEnv env;
  env.threads = 2;
  CountReducer reducer;
  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "throwing";
  plan.mapper_factory = [](uint64_t) { return std::make_unique<ThrowingMapper>(); };
  plan.reducer = &reducer;
  EXPECT_THROW(RunRound(plan, ds, &env), std::runtime_error);
}

TEST(JobEngineTest, PartitionedReduceDeliversTheExactSingleMergeStream) {
  // Wider dataset so 8 key-range partitions are non-trivial.
  std::vector<std::vector<uint64_t>> splits;
  for (uint64_t j = 0; j < 6; ++j) {
    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < 40; ++i) keys.push_back((j * 977 + i * 131) % 256);
    splits.push_back(std::move(keys));
  }
  InMemoryDataset ds(std::move(splits), 256);

  MrEnv reference_env;
  reference_env.reduce_tasks = 1;
  CountReducer reference;
  auto ref_plan = CountPlan(&reference);
  ref_plan.sorted_shuffle = true;
  RoundStats ref_round = RunRound(ref_plan, ds, &reference_env);
  EXPECT_EQ(ref_round.reduce_tasks_used, 1);

  for (int reduce_tasks : {2, 4, 8}) {
    for (int threads : {1, 4}) {
      MrEnv env;
      env.threads = threads;
      env.reduce_tasks = reduce_tasks;
      CountReducer reducer;
      auto plan = CountPlan(&reducer);
      plan.sorted_shuffle = true;
      RoundStats round = RunRound(plan, ds, &env);
      EXPECT_EQ(round.reduce_tasks_used, reduce_tasks)
          << "threads " << threads;
      // The absorbed sequence -- not just the aggregates -- is identical.
      EXPECT_EQ(reducer.absorbed, reference.absorbed)
          << "reduce_tasks " << reduce_tasks << " threads " << threads;
      EXPECT_EQ(reducer.counts, reference.counts);
      EXPECT_EQ(env.config.GetUint("wavemr.reduce_tasks").value(),
                static_cast<uint64_t>(reduce_tasks));
    }
  }
}

TEST(JobEngineTest, ReduceTasksDefaultMatchesThreadCount) {
  InMemoryDataset ds = TinyDataset();
  MrEnv env;
  env.threads = 2;  // reduce_tasks stays 0 -> match the round's threads
  CountReducer reducer;
  auto plan = CountPlan(&reducer);
  plan.sorted_shuffle = true;
  RoundStats round = RunRound(plan, ds, &env);
  EXPECT_EQ(round.reduce_tasks_used, 2);
  EXPECT_EQ(round.spill_files, 0u);  // default budget: nothing spilled
  // Streaming rounds ignore reduce partitioning entirely.
  MrEnv streaming_env;
  streaming_env.threads = 4;
  CountReducer streaming_reducer;
  RoundStats streaming = RunRound(CountPlan(&streaming_reducer), ds, &streaming_env);
  EXPECT_EQ(streaming.reduce_tasks_used, 1);
}

TEST(JobEngineTest, SpillStatsFlowIntoRoundAndCounters) {
  std::vector<std::vector<uint64_t>> splits(6, std::vector<uint64_t>{});
  for (uint64_t j = 0; j < splits.size(); ++j) {
    for (uint64_t i = 0; i < 64; ++i) splits[j].push_back((j * 31 + i) % 128);
  }
  InMemoryDataset ds(std::move(splits), 128);
  MrEnv env;
  env.cost_model.shuffle_buffer_bytes = 512;
  CountReducer reducer;
  auto plan = CountPlan(&reducer);
  plan.sorted_shuffle = true;
  RoundStats round = RunRound(plan, ds, &env);
  EXPECT_GT(round.spill_files, 0u);
  EXPECT_GT(round.spill_bytes, 0u);
  EXPECT_GT(round.spill_read_bytes, 0u);
  EXPECT_GT(round.spill_s, 0.0);
  EXPECT_EQ(env.stats.counters.Get("shuffle_spill_files"), round.spill_files);
  EXPECT_EQ(env.stats.counters.Get("shuffle_spill_bytes"), round.spill_bytes);
  // TotalSeconds deliberately excludes spill_s (see RoundStats::spill_s).
  EXPECT_DOUBLE_EQ(round.TotalSeconds(), round.overhead_s + round.map_makespan_s +
                                             round.shuffle_s + round.reduce_s);
}

TEST(JobEngineTest, ChargedCpuShowsUpInMakespan) {
  InMemoryDataset ds = TinyDataset();

  MrEnv env;
  CountReducer reducer;
  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "expensive";
  plan.mapper_factory = [](uint64_t) { return std::make_unique<ExpensiveMapper>(); };
  plan.reducer = &reducer;
  RoundStats round = RunRound(plan, ds, &env);
  // 3 tasks of >=5s on a 30-slot cluster: one wave, bounded below by the
  // slowest node's 5 / speed.
  EXPECT_GT(round.map_makespan_s, 3.0);
}

}  // namespace
}  // namespace wavemr
