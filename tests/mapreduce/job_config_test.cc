#include "mapreduce/job_config.h"

#include <gtest/gtest.h>

namespace wavemr {
namespace {

TEST(JobConfigTest, TypedRoundTrips) {
  JobConfig config;
  config.SetUint("m", 200);
  config.SetDouble("t1_over_m", 3.141592653589793);
  config.SetString("job", "h-wtopk");
  EXPECT_EQ(config.GetUint("m").value(), 200u);
  EXPECT_DOUBLE_EQ(config.GetDouble("t1_over_m").value(), 3.141592653589793);
  EXPECT_EQ(config.GetString("job").value(), "h-wtopk");
}

TEST(JobConfigTest, MissingKeyIsNotFound) {
  JobConfig config;
  EXPECT_EQ(config.GetUint("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(config.Contains("nope"));
}

TEST(JobConfigTest, TypeMismatchIsInvalidArgument) {
  JobConfig config;
  config.SetString("s", "abc");
  EXPECT_EQ(config.GetUint("s").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(config.GetDouble("s").status().code(), StatusCode::kInvalidArgument);
}

TEST(JobConfigTest, ByteSizeGrowsWithContent) {
  JobConfig config;
  uint64_t empty = config.ByteSize();
  config.SetUint("some.key", 12345);
  EXPECT_GT(config.ByteSize(), empty);
}

TEST(DistributedCacheTest, PutGet) {
  DistributedCache cache;
  cache.Put("R", "abc");
  EXPECT_EQ(cache.Get("R").value(), "abc");
  EXPECT_FALSE(cache.Get("missing").ok());
  EXPECT_TRUE(cache.Contains("R"));
}

TEST(DistributedCacheTest, NewBytesAccountedOnce) {
  DistributedCache cache;
  cache.Put("R", std::string(100, 'x'));
  EXPECT_EQ(cache.TakeNewBytes(), 100u);
  EXPECT_EQ(cache.TakeNewBytes(), 0u);  // already broadcast
  cache.Put("S", std::string(50, 'y'));
  cache.Put("R", std::string(10, 'z'));  // replaced blob re-broadcasts
  EXPECT_EQ(cache.TakeNewBytes(), 60u);
}

}  // namespace
}  // namespace wavemr
