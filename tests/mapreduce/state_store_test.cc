#include "mapreduce/state_store.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace wavemr {
namespace {

TEST(StateStoreTest, InMemoryPutGetRemove) {
  StateStore store;
  EXPECT_FALSE(store.Contains("split-1"));
  ASSERT_TRUE(store.Put("split-1", "hello").ok());
  EXPECT_TRUE(store.Contains("split-1"));
  EXPECT_EQ(store.Get("split-1").value(), "hello");
  EXPECT_EQ(store.TotalBytes(), 5u);
  ASSERT_TRUE(store.Put("split-1", "hi").ok());  // overwrite shrinks
  EXPECT_EQ(store.TotalBytes(), 2u);
  ASSERT_TRUE(store.Remove("split-1").ok());
  EXPECT_FALSE(store.Contains("split-1"));
  EXPECT_EQ(store.Get("split-1").status().code(), StatusCode::kNotFound);
}

TEST(StateStoreTest, DiskBackedRoundTrip) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("wavemr_state_" + std::to_string(::getpid())))
                        .string();
  {
    StateStore store(dir);
    EXPECT_TRUE(store.disk_backed());
    std::string blob(1000, '\x7');
    blob[10] = '\0';  // binary-safe
    ASSERT_TRUE(store.Put("split-3", blob).ok());
    EXPECT_EQ(store.Get("split-3").value(), blob);
    EXPECT_EQ(store.TotalBytes(), 1000u);
    ASSERT_TRUE(store.Remove("split-3").ok());
    EXPECT_FALSE(store.Contains("split-3"));
  }
  // Destructor cleans the directory.
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(StateStoreTest, NamesAreSanitized) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("wavemr_state2_" + std::to_string(::getpid())))
                        .string();
  StateStore store(dir);
  ASSERT_TRUE(store.Put("weird/..name", "x").ok());
  EXPECT_EQ(store.Get("weird/..name").value(), "x");
}

TEST(StateStoreTest, EmptyBlob) {
  StateStore store;
  ASSERT_TRUE(store.Put("e", "").ok());
  EXPECT_EQ(store.Get("e").value(), "");
}

}  // namespace
}  // namespace wavemr
