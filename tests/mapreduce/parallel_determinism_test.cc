// The engine's core guarantee: for any --threads value, every algorithm
// produces bit-identical histograms, counters, and shuffle accounting,
// because map outputs are absorbed in split-index order regardless of which
// worker finished first.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "histogram/builder.h"

namespace wavemr {
namespace {

ZipfDataset TestDataset() {
  ZipfDatasetOptions opt;
  opt.num_records = 1 << 14;
  opt.domain_size = 1 << 10;
  opt.alpha = 1.1;
  opt.num_splits = 16;
  opt.seed = 97;
  return ZipfDataset(opt);
}

BuildResult BuildWith(const Dataset& ds, AlgorithmKind kind, int threads,
                      int reduce_tasks = 0, uint64_t shuffle_buffer_bytes = 0) {
  BuildOptions opt;
  opt.k = 20;
  opt.epsilon = 0.05;
  opt.seed = 1234;
  opt.threads = threads;
  opt.reduce_tasks = reduce_tasks;
  if (shuffle_buffer_bytes > 0) {
    opt.cost_model.shuffle_buffer_bytes = shuffle_buffer_bytes;
  }
  auto result = BuildWaveletHistogram(ds, kind, opt);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

struct Case {
  AlgorithmKind kind;
  int threads;
  int reduce_tasks = 0;
  /// 0 = CostModel default (no spill at this workload size); a tiny value
  /// forces real spill files on every sorted round.
  uint64_t shuffle_buffer_bytes = 0;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string algo = AlgorithmName(info.param.kind);
  for (char& c : algo) {
    if (c == '-') c = '_';
  }
  std::string name = algo + "_t" + std::to_string(info.param.threads);
  if (info.param.reduce_tasks > 0) {
    name += "_r" + std::to_string(info.param.reduce_tasks);
  }
  if (info.param.shuffle_buffer_bytes > 0) name += "_spill";
  return name;
}

class ParallelDeterminismTest : public testing::TestWithParam<Case> {};

TEST_P(ParallelDeterminismTest, MatchesSerialExecution) {
  const Case param = GetParam();
  ZipfDataset ds = TestDataset();

  // The fixed reference: serial map, single reduce partition, unbounded
  // shuffle buffer. Every scheduling/spill knob must reproduce it exactly.
  BuildResult serial = BuildWith(ds, param.kind, /*threads=*/1,
                                 /*reduce_tasks=*/1);
  BuildResult threaded = BuildWith(ds, param.kind, param.threads,
                                   param.reduce_tasks,
                                   param.shuffle_buffer_bytes);

  // Identical histograms: same coefficients, bit-for-bit.
  const auto& want = serial.histogram.coefficients();
  const auto& got = threaded.histogram.coefficients();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].index, got[i].index) << "coefficient " << i;
    EXPECT_EQ(want[i].value, got[i].value) << "coefficient " << i;
  }

  // Identical counters. Spill counters are a function of the buffer budget
  // (they appear when a tiny buffer forces the external path), so they are
  // compared only when both runs used the same budget; everything else must
  // match exactly in every case.
  auto serial_counters = serial.stats.counters.values();
  auto threaded_counters = threaded.stats.counters.values();
  if (param.shuffle_buffer_bytes > 0) {
    auto strip_spill = [](std::map<std::string, uint64_t>* counters) {
      for (auto it = counters->begin(); it != counters->end();) {
        if (it->first.rfind("shuffle_spill", 0) == 0) {
          it = counters->erase(it);
        } else {
          ++it;
        }
      }
    };
    strip_spill(&serial_counters);
    strip_spill(&threaded_counters);
  }
  EXPECT_EQ(serial_counters, threaded_counters);

  // Identical per-round shuffle/broadcast accounting and simulated time.
  ASSERT_EQ(serial.stats.NumRounds(), threaded.stats.NumRounds());
  for (size_t r = 0; r < serial.stats.rounds.size(); ++r) {
    const RoundStats& a = serial.stats.rounds[r];
    const RoundStats& b = threaded.stats.rounds[r];
    EXPECT_EQ(a.shuffle_pairs, b.shuffle_pairs) << "round " << r;
    EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes) << "round " << r;
    EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes) << "round " << r;
    EXPECT_EQ(a.map_tasks, b.map_tasks) << "round " << r;
    EXPECT_DOUBLE_EQ(a.map_makespan_s, b.map_makespan_s) << "round " << r;
    EXPECT_DOUBLE_EQ(a.TotalSeconds(), b.TotalSeconds()) << "round " << r;
  }
}

const std::vector<AlgorithmKind>& AllKinds() {
  static const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kSendV,     AlgorithmKind::kSendCoef,
      AlgorithmKind::kHWTopk,    AlgorithmKind::kBasicS,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS,
      AlgorithmKind::kSendSketch};
  return kinds;
}

// The full cross product: every algorithm (streaming and sorted shuffle
// planes, combiner and stateful multi-round paths) must be bit-identical
// at every thread count the columnar shuffle plane schedules differently.
std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (AlgorithmKind kind : AllKinds()) {
    for (int threads : {1, 2, 4, 8}) {
      cases.push_back(Case{kind, threads});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ParallelDeterminismTest,
                         testing::ValuesIn(AllCases()), CaseName);

// Key-range partitioned parallel reduce: every algorithm x reduce-tasks
// {1, 2, 4, 8} (at 4 map threads, so partition merges really run on the
// pool) must reproduce the single-partition serial reference.
std::vector<Case> ReduceTaskCases() {
  std::vector<Case> cases;
  for (AlgorithmKind kind : AllKinds()) {
    for (int reduce_tasks : {1, 2, 4, 8}) {
      cases.push_back(Case{kind, /*threads=*/4, reduce_tasks});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ReduceTasks, ParallelDeterminismTest,
                         testing::ValuesIn(ReduceTaskCases()), CaseName);

// External spill: a 4 KiB buffer forces every sorted round to write real
// spill files; results -- including simulated seconds, which deliberately
// exclude the separately-reported spill IO time -- must not move a bit,
// with and without partitioned reduce on top.
std::vector<Case> SpillCases() {
  std::vector<Case> cases;
  for (AlgorithmKind kind : AllKinds()) {
    for (int reduce_tasks : {1, 4}) {
      cases.push_back(Case{kind, /*threads=*/4, reduce_tasks,
                           /*shuffle_buffer_bytes=*/4096});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ForcedSpill, ParallelDeterminismTest,
                         testing::ValuesIn(SpillCases()), CaseName);

// Sorted-shuffle algorithms under a forced-tiny buffer must actually hit
// the external path (the determinism suite above would pass vacuously if
// spilling never engaged).
TEST(SpillEngagementTest, SortedAlgorithmsSpillUnderTinyBuffer) {
  ZipfDataset ds = TestDataset();
  for (AlgorithmKind kind : {AlgorithmKind::kSendCoef, AlgorithmKind::kHWTopk}) {
    BuildResult r = BuildWith(ds, kind, /*threads=*/2, /*reduce_tasks=*/2,
                              /*shuffle_buffer_bytes=*/4096);
    EXPECT_GT(r.stats.counters.Get("shuffle_spill_files"), 0u)
        << AlgorithmName(kind);
    EXPECT_GT(r.stats.TotalSpillBytes(), 0u) << AlgorithmName(kind);
    EXPECT_GT(r.stats.TotalSpillSeconds(), 0.0) << AlgorithmName(kind);

    // At a fixed budget the spill decisions happen at the driver's
    // split-order Accept, so the spill counters themselves are also
    // schedule-independent: full counter equality across threads and
    // reduce-task counts.
    BuildResult other = BuildWith(ds, kind, /*threads=*/8, /*reduce_tasks=*/8,
                                  /*shuffle_buffer_bytes=*/4096);
    EXPECT_EQ(r.stats.counters.values(), other.stats.counters.values())
        << AlgorithmName(kind);
  }
}

// threads=0 means "all hardware threads"; it must obey the same guarantee.
TEST(ParallelDeterminismTest, HardwareDefaultMatchesSerial) {
  ZipfDataset ds = TestDataset();
  BuildResult serial = BuildWith(ds, AlgorithmKind::kSendV, 1);
  BuildResult automatic = BuildWith(ds, AlgorithmKind::kSendV, 0);
  ASSERT_EQ(serial.histogram.coefficients().size(),
            automatic.histogram.coefficients().size());
  for (size_t i = 0; i < serial.histogram.coefficients().size(); ++i) {
    EXPECT_EQ(serial.histogram.coefficients()[i].value,
              automatic.histogram.coefficients()[i].value);
  }
  EXPECT_EQ(serial.stats.counters.values(), automatic.stats.counters.values());
}

}  // namespace
}  // namespace wavemr
