// The engine's core guarantee: for any --threads value, every algorithm
// produces bit-identical histograms, counters, and shuffle accounting,
// because map outputs are absorbed in split-index order regardless of which
// worker finished first.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "histogram/builder.h"

namespace wavemr {
namespace {

ZipfDataset TestDataset() {
  ZipfDatasetOptions opt;
  opt.num_records = 1 << 14;
  opt.domain_size = 1 << 10;
  opt.alpha = 1.1;
  opt.num_splits = 16;
  opt.seed = 97;
  return ZipfDataset(opt);
}

BuildResult BuildWith(const Dataset& ds, AlgorithmKind kind, int threads) {
  BuildOptions opt;
  opt.k = 20;
  opt.epsilon = 0.05;
  opt.seed = 1234;
  opt.threads = threads;
  auto result = BuildWaveletHistogram(ds, kind, opt);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

struct Case {
  AlgorithmKind kind;
  int threads;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string algo = AlgorithmName(info.param.kind);
  for (char& c : algo) {
    if (c == '-') c = '_';
  }
  return algo + "_t" + std::to_string(info.param.threads);
}

class ParallelDeterminismTest : public testing::TestWithParam<Case> {};

TEST_P(ParallelDeterminismTest, MatchesSerialExecution) {
  const Case param = GetParam();
  ZipfDataset ds = TestDataset();

  BuildResult serial = BuildWith(ds, param.kind, /*threads=*/1);
  BuildResult threaded = BuildWith(ds, param.kind, param.threads);

  // Identical histograms: same coefficients, bit-for-bit.
  const auto& want = serial.histogram.coefficients();
  const auto& got = threaded.histogram.coefficients();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].index, got[i].index) << "coefficient " << i;
    EXPECT_EQ(want[i].value, got[i].value) << "coefficient " << i;
  }

  // Identical counters (exact equality of the whole map).
  EXPECT_EQ(serial.stats.counters.values(), threaded.stats.counters.values());

  // Identical per-round shuffle/broadcast accounting and simulated time.
  ASSERT_EQ(serial.stats.NumRounds(), threaded.stats.NumRounds());
  for (size_t r = 0; r < serial.stats.rounds.size(); ++r) {
    const RoundStats& a = serial.stats.rounds[r];
    const RoundStats& b = threaded.stats.rounds[r];
    EXPECT_EQ(a.shuffle_pairs, b.shuffle_pairs) << "round " << r;
    EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes) << "round " << r;
    EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes) << "round " << r;
    EXPECT_EQ(a.map_tasks, b.map_tasks) << "round " << r;
    EXPECT_DOUBLE_EQ(a.map_makespan_s, b.map_makespan_s) << "round " << r;
    EXPECT_DOUBLE_EQ(a.TotalSeconds(), b.TotalSeconds()) << "round " << r;
  }
}

// The full cross product: every algorithm (streaming and sorted shuffle
// planes, combiner and stateful multi-round paths) must be bit-identical
// at every thread count the columnar shuffle plane schedules differently.
std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (AlgorithmKind kind :
       {AlgorithmKind::kSendV, AlgorithmKind::kSendCoef, AlgorithmKind::kHWTopk,
        AlgorithmKind::kBasicS, AlgorithmKind::kImprovedS,
        AlgorithmKind::kTwoLevelS, AlgorithmKind::kSendSketch}) {
    for (int threads : {1, 2, 4, 8}) {
      cases.push_back(Case{kind, threads});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ParallelDeterminismTest,
                         testing::ValuesIn(AllCases()), CaseName);

// threads=0 means "all hardware threads"; it must obey the same guarantee.
TEST(ParallelDeterminismTest, HardwareDefaultMatchesSerial) {
  ZipfDataset ds = TestDataset();
  BuildResult serial = BuildWith(ds, AlgorithmKind::kSendV, 1);
  BuildResult automatic = BuildWith(ds, AlgorithmKind::kSendV, 0);
  ASSERT_EQ(serial.histogram.coefficients().size(),
            automatic.histogram.coefficients().size());
  for (size_t i = 0; i < serial.histogram.coefficients().size(); ++i) {
    EXPECT_EQ(serial.histogram.coefficients()[i].value,
              automatic.histogram.coefficients()[i].value);
  }
  EXPECT_EQ(serial.stats.counters.values(), automatic.stats.counters.values());
}

}  // namespace
}  // namespace wavemr
