// WAVEMR_SIMD=scalar vs WAVEMR_SIMD=auto must be invisible in every output:
// the SIMD kernel tier (core/simd.h) promises bit-identical synopses,
// counters, and shuffle accounting for all 7 algorithms, across the same
// threads x reduce-tasks x spill knobs the parallel-determinism suite
// exercises. This drives the same guarantee in-process via the tier
// override (the CI simd-scalar lane covers the env-var path end to end).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/simd.h"
#include "data/dataset.h"
#include "histogram/builder.h"

namespace wavemr {
namespace {

ZipfDataset TestDataset() {
  ZipfDatasetOptions opt;
  opt.num_records = 1 << 14;
  opt.domain_size = 1 << 10;
  opt.alpha = 1.1;
  opt.num_splits = 16;
  opt.seed = 97;
  return ZipfDataset(opt);
}

struct Case {
  AlgorithmKind kind;
  int threads;
  int reduce_tasks = 0;
  uint64_t shuffle_buffer_bytes = 0;  // 0 = default budget (no spill)
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::string algo = AlgorithmName(info.param.kind);
  for (char& c : algo) {
    if (c == '-') c = '_';
  }
  std::string name = algo + "_t" + std::to_string(info.param.threads);
  if (info.param.reduce_tasks > 0) {
    name += "_r" + std::to_string(info.param.reduce_tasks);
  }
  if (info.param.shuffle_buffer_bytes > 0) name += "_spill";
  return name;
}

BuildResult BuildUnderTier(const Dataset& ds, const Case& c, SimdTier tier) {
  OverrideSimdTierForTest(tier);
  BuildOptions opt;
  opt.k = 20;
  opt.epsilon = 0.05;
  opt.seed = 1234;
  opt.threads = c.threads;
  opt.reduce_tasks = c.reduce_tasks;
  if (c.shuffle_buffer_bytes > 0) {
    opt.cost_model.shuffle_buffer_bytes = c.shuffle_buffer_bytes;
  }
  auto result = BuildWaveletHistogram(ds, c.kind, opt);
  OverrideSimdTierForTest(ActiveSimdTier());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

class SimdScalarVsAutoTest : public testing::TestWithParam<Case> {};

TEST_P(SimdScalarVsAutoTest, BitIdenticalAcrossTiers) {
  const Case param = GetParam();
  ZipfDataset ds = TestDataset();

  BuildResult scalar = BuildUnderTier(ds, param, SimdTier::kScalar);
  BuildResult vector = BuildUnderTier(ds, param, BestSimdTier());

  // Identical synopses: same coefficients, bit for bit.
  const auto& want = scalar.histogram.coefficients();
  const auto& got = vector.histogram.coefficients();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].index, got[i].index) << "coefficient " << i;
    ASSERT_EQ(want[i].value, got[i].value) << "coefficient " << i;
  }

  // Identical counters (includes every communication and spill count).
  EXPECT_EQ(scalar.stats.counters.values(), vector.stats.counters.values());

  // Identical per-round shuffle/broadcast bytes and simulated time.
  ASSERT_EQ(scalar.stats.NumRounds(), vector.stats.NumRounds());
  for (size_t r = 0; r < scalar.stats.rounds.size(); ++r) {
    const RoundStats& a = scalar.stats.rounds[r];
    const RoundStats& b = vector.stats.rounds[r];
    EXPECT_EQ(a.shuffle_pairs, b.shuffle_pairs) << "round " << r;
    EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes) << "round " << r;
    EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes) << "round " << r;
    EXPECT_EQ(a.map_tasks, b.map_tasks) << "round " << r;
    EXPECT_DOUBLE_EQ(a.map_makespan_s, b.map_makespan_s) << "round " << r;
    EXPECT_DOUBLE_EQ(a.TotalSeconds(), b.TotalSeconds()) << "round " << r;
  }
}

const std::vector<AlgorithmKind>& AllKinds() {
  static const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kSendV,     AlgorithmKind::kSendCoef,
      AlgorithmKind::kHWTopk,    AlgorithmKind::kBasicS,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS,
      AlgorithmKind::kSendSketch};
  return kinds;
}

// Every algorithm under: serial; threaded + partitioned reduce; threaded +
// partitioned reduce + forced spill. (The threads/reduce knobs themselves
// are already proven schedule-invariant by parallel_determinism_test; here
// they make sure no tier-dependent code hides behind a scheduling path.)
std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (AlgorithmKind kind : AllKinds()) {
    cases.push_back(Case{kind, /*threads=*/1, /*reduce_tasks=*/1});
    cases.push_back(Case{kind, /*threads=*/4, /*reduce_tasks=*/4});
    cases.push_back(Case{kind, /*threads=*/4, /*reduce_tasks=*/2,
                         /*shuffle_buffer_bytes=*/4096});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SimdScalarVsAutoTest,
                         testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace wavemr
