// The async spill data plane end to end: overlapped spill writes must be
// invisible in every observable (merged stream, counters, files on disk),
// prefetched merge reads must surface corruption at the same point the
// inline path would, the buffer arena must actually recycle (the ASan lanes
// run this file to catch use-after-recycle), and every exit path -- clean,
// aborted, failing -- must leave the spill directory empty.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "core/failpoint.h"
#include "core/io.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "mapreduce/job.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill.h"

namespace wavemr {
namespace {

namespace fs = std::filesystem;

using TestRun = ShuffleRun<uint64_t, uint64_t>;
using Plane = ShufflePlane<uint64_t, uint64_t>;
using Pair = std::pair<uint64_t, uint64_t>;

IoOptions AsyncOptions(int queue_depth = 4, int prefetch_depth = 2) {
  IoOptions options;
  options.backend = IoBackendKind::kAsync;
  options.queue_depth = queue_depth;
  options.prefetch_depth = prefetch_depth;
  options.retry.backoff_initial_us = 0;  // retry tests run instantly
  return options;
}

size_t FilesIn(const fs::path& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

class AsyncSpillTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }

  TestRun MakeRun(uint64_t seed, size_t len) {
    Rng rng(seed);
    TestRun run;
    for (size_t i = 0; i < len; ++i) run.Append(rng.NextBounded(1 << 20), i);
    run.SortByKey();
    return run;
  }

  /// Feeds `num_runs` deterministic runs into a fresh plane on `io` with a
  /// budget small enough that most of them spill.
  std::unique_ptr<Plane> FillPlane(SpillDir* dir, IoBackend* io,
                                   size_t num_runs = 8,
                                   size_t run_len = 2000) {
    auto plane = std::make_unique<Plane>(
        [](const uint64_t*, const uint64_t*, size_t n) { return 16 * n; },
        /*sorted=*/true, SpillPolicy{run_len * 16}, dir, io);
    for (uint64_t r = 0; r < num_runs; ++r) {
      plane->Accept(MakeRun(100 + r, run_len),
                    [](const uint64_t&, const uint64_t&) {});
    }
    return plane;
  }

  static std::vector<Pair> Drain(const Plane& plane) {
    std::vector<Pair> out;
    const_cast<Plane&>(plane).Merge(
        [&out](const uint64_t& k, const uint64_t& v) { out.emplace_back(k, v); });
    return out;
  }

  static void FlipByte(const fs::path& path, std::streamoff off, char mask) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(off);
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ mask);
    f.seekp(off);
    f.write(&byte, 1);
  }

  SpillFileInfo WriteGood(SpillDir* dir, const TestRun& run) {
    SpillFileInfo info;
    info.path = dir->NextFilePath("async");
    info.num_pairs = run.size();
    if (!run.empty()) {
      info.min_key = run.keys.front();
      info.max_key = run.keys.back();
    }
    const SpillWriteResult w = WriteSpillFile<uint64_t, uint64_t>(
        info.path, run.keys.data(), run.values.data(), run.size());
    EXPECT_TRUE(w.io.ok()) << w.io.ToString();
    info.file_bytes = w.file_bytes;
    return info;
  }
};

// ---------------------------------------------------------------------------
// Bit-identity: the async plane's every observable matches the sync plane.
// ---------------------------------------------------------------------------

TEST_F(AsyncSpillTest, AsyncPlaneMatchesSyncPlaneBitForBit) {
  SpillDir sync_dir;
  SyncIoBackend sync_io;
  auto sync_plane = FillPlane(&sync_dir, &sync_io);
  const std::vector<Pair> want = Drain(*sync_plane);
  ASSERT_GT(sync_plane->spill_files(), 0u) << "budget must force real spills";

  SpillDir async_dir;
  AsyncIoBackend async_io(AsyncOptions());
  auto async_plane = FillPlane(&async_dir, &async_io);
  const std::vector<Pair> got = Drain(*async_plane);

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "pair " << i << " diverged";
  }
  // Same spill accounting: what spilled, how much, and how big.
  EXPECT_EQ(async_plane->spill_files(), sync_plane->spill_files());
  EXPECT_EQ(async_plane->spill_bytes(), sync_plane->spill_bytes());
  EXPECT_EQ(async_plane->spill_payload_bytes(),
            sync_plane->spill_payload_bytes());
  EXPECT_EQ(async_plane->spill_events(), sync_plane->spill_events());
  EXPECT_EQ(async_plane->resident_bytes(), sync_plane->resident_bytes());
  EXPECT_EQ(async_plane->spill_fallbacks(), 0u);
}

TEST_F(AsyncSpillTest, OrdinalOrderSurvivesConcurrentWrites) {
  // A deep queue lets many writes race on the workers; collection must
  // still register files in submission (= ordinal) order, which RankOfKey
  // and CutForRank depend on for probe/spilled_ index pairing.
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions(/*queue_depth=*/8, /*prefetch_depth=*/2));
  auto plane = FillPlane(&dir, &io, /*num_runs=*/16, /*run_len=*/3000);
  ASSERT_GT(plane->spill_files(), 4u);

  // Rank probes agree with the merged stream under any cut, which only
  // holds when spilled_[i] pairs with the i-th probe in ordinal order.
  const std::vector<Pair> all = Drain(*plane);
  const uint64_t mid_rank = all.size() / 2;
  const MergeCut<uint64_t> cut = plane->CutForRank(mid_rank);
  std::vector<Pair> head;
  plane->MergeCutRange(MergeCut<uint64_t>{}, /*has_hi=*/true, cut,
                       [&head](const uint64_t& k, const uint64_t& v) {
                         head.emplace_back(k, v);
                       });
  ASSERT_EQ(head.size(), mid_rank);
  for (size_t i = 0; i < head.size(); ++i) {
    ASSERT_EQ(head[i], all[i]) << "cut stream diverged at " << i;
  }
}

// ---------------------------------------------------------------------------
// Prefetch: corruption and failures surface at the deterministic handoff.
// ---------------------------------------------------------------------------

TEST_F(AsyncSpillTest, PrefetchedBlockCorruptionIsDetected) {
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions());
  TestRun run = MakeRun(7, 3 * 4096 + 100);  // four checksum blocks
  SpillFileInfo info = WriteGood(&dir, run);
  // Corrupt a key byte in the *third* block: the cursor prefetches it while
  // the merge drains earlier blocks, but the CRC failure must only surface
  // when NextBlock reaches that block.
  FlipByte(info.path,
           static_cast<std::streamoff>(kSpillHeaderBytes + 2 * 4096 * 8 + 24),
           0x01);
  FileRunCursor<uint64_t, uint64_t> cursor(
      info, 0, info.num_pairs, FileRunCursor<uint64_t, uint64_t>::kDefaultBlockPairs,
      io.options().retry, &io);
  const uint64_t* k = nullptr;
  const uint64_t* v = nullptr;
  uint64_t consumed = 0;
  try {
    for (uint64_t got; (got = cursor.NextBlock(&k, &v)) > 0;) consumed += got;
    FAIL() << "corrupt prefetched block read back without error";
  } catch (const SpillIoError& e) {
    EXPECT_EQ(e.io().op, IoResult::Op::kChecksum) << e.what();
    EXPECT_EQ(consumed, 2 * 4096u)
        << "both healthy blocks served before the corrupt one failed";
  }
}

TEST_F(AsyncSpillTest, PrefetchPipelineActuallyReadsAhead) {
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions(/*queue_depth=*/4, /*prefetch_depth=*/3));
  TestRun run = MakeRun(8, 6 * 4096);
  SpillFileInfo info = WriteGood(&dir, run);
  FileRunCursor<uint64_t, uint64_t> cursor(
      info, 0, info.num_pairs, FileRunCursor<uint64_t, uint64_t>::kDefaultBlockPairs,
      io.options().retry, &io);
  EXPECT_EQ(cursor.prefetch_in_flight(), 3u) << "pipeline primed at open";
  const uint64_t* k = nullptr;
  const uint64_t* v = nullptr;
  uint64_t total = 0;
  for (uint64_t got; (got = cursor.NextBlock(&k, &v)) > 0;) total += got;
  EXPECT_EQ(total, run.size());
}

TEST_F(AsyncSpillTest, PrefetchDepthZeroReadsInline) {
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions(/*queue_depth=*/4, /*prefetch_depth=*/0));
  TestRun run = MakeRun(9, 2 * 4096);
  SpillFileInfo info = WriteGood(&dir, run);
  FileRunCursor<uint64_t, uint64_t> cursor(
      info, 0, info.num_pairs, FileRunCursor<uint64_t, uint64_t>::kDefaultBlockPairs,
      io.options().retry, &io);
  EXPECT_EQ(cursor.prefetch_in_flight(), 0u);
  const uint64_t* k = nullptr;
  const uint64_t* v = nullptr;
  uint64_t total = 0;
  for (uint64_t got; (got = cursor.NextBlock(&k, &v)) > 0;) total += got;
  EXPECT_EQ(total, run.size());
}

// ---------------------------------------------------------------------------
// Arena: buffers recycle across the merge, and the lease discipline holds
// (this test is in the ASan lane: a use-after-recycle would be a heap error).
// ---------------------------------------------------------------------------

TEST_F(AsyncSpillTest, ArenaRecyclesBuffersAcrossBlocks) {
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions(/*queue_depth=*/2, /*prefetch_depth=*/1));
  TestRun run = MakeRun(10, 8 * 4096);
  SpillFileInfo info = WriteGood(&dir, run);
  {
    FileRunCursor<uint64_t, uint64_t> cursor(
        info, 0, info.num_pairs,
        FileRunCursor<uint64_t, uint64_t>::kDefaultBlockPairs,
        io.options().retry, &io);
    const uint64_t* k = nullptr;
    const uint64_t* v = nullptr;
    uint64_t i = 0;
    for (uint64_t got; (got = cursor.NextBlock(&k, &v)) > 0;) {
      // Touch every served byte while the lease is live: under ASan a
      // recycled-too-early buffer turns this into a hard failure.
      for (uint64_t j = 0; j < got; ++j, ++i) {
        ASSERT_EQ(k[j], run.keys[i]);
        ASSERT_EQ(v[j], run.values[i]);
      }
    }
    ASSERT_EQ(i, run.size());
  }
  // 8 blocks consumed through a depth-1 pipeline: far fewer allocations
  // than 2 columns x 8 blocks means the freelist did its job.
  EXPECT_GT(io.arena().reuses(), 0u);
  EXPECT_LE(io.arena().allocations(), 6u)
      << "alloc per block means recycling is broken";
}

// ---------------------------------------------------------------------------
// Exit paths: the spill directory is empty no matter how the round ends.
// ---------------------------------------------------------------------------

TEST_F(AsyncSpillTest, CleanExitLeavesSpillDirEmpty) {
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions());
  {
    auto plane = FillPlane(&dir, &io);
    ASSERT_GT(plane->spill_files(), 0u);
    ASSERT_TRUE(dir.created());
    EXPECT_GT(FilesIn(dir.path()), 0u);
    (void)Drain(*plane);
  }  // plane destructor: EnsureSpillsComplete + DeleteSpillFiles
  EXPECT_EQ(FilesIn(dir.path()), 0u);
}

TEST_F(AsyncSpillTest, AbortWithWritesInFlightLeavesSpillDirEmpty) {
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions(/*queue_depth=*/8));
  {
    // Destroy the plane right after Accept, with writes still possibly in
    // flight and no merge ever run -- the mid-round unwind path.
    auto plane = FillPlane(&dir, &io, /*num_runs=*/12, /*run_len=*/4000);
    (void)plane;
  }
  ASSERT_TRUE(dir.created());
  EXPECT_EQ(FilesIn(dir.path()), 0u)
      << "in-flight async writes must land and be deleted before the plane dies";
}

TEST_F(AsyncSpillTest, ReducerExceptionUnwindLeavesSpillDirEmpty) {
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions());
  try {
    auto plane = FillPlane(&dir, &io);
    plane->Merge([](const uint64_t&, const uint64_t&) {
      throw std::runtime_error("reducer died");
    });
    FAIL() << "merge should have rethrown";
  } catch (const std::runtime_error&) {
  }
  ASSERT_TRUE(dir.created());
  EXPECT_EQ(FilesIn(dir.path()), 0u);
}

TEST_F(AsyncSpillTest, ExhaustedRetriesLeaveSpillDirEmpty) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.write.write=error:ENOSPC").ok());
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions());
  {
    auto plane = FillPlane(&dir, &io);
    EXPECT_EQ(plane->spill_files(), 0u);
    EXPECT_GT(plane->spill_fallbacks(), 0u);
    EXPECT_GT(plane->spill_retries(), 0u) << "ENOSPC is transient: retried "
                                             "on the worker before pinning";
    Failpoints::DisarmAll();
    // Degraded but correct: the pinned-resident plane still merges fine.
    const std::vector<Pair> got = Drain(*plane);
    EXPECT_EQ(got.size(), 8u * 2000u);
  }
  if (dir.created()) EXPECT_EQ(FilesIn(dir.path()), 0u);
}

// ---------------------------------------------------------------------------
// The async failpoint sites.
// ---------------------------------------------------------------------------

TEST_F(AsyncSpillTest, SubmitFailpointPinsRunBeforeSubmission) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.write.submit=error:EIO").ok());
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions());
  auto plane = FillPlane(&dir, &io);
  EXPECT_EQ(plane->spill_files(), 0u) << "every submission was rejected";
  EXPECT_GT(plane->spill_fallbacks(), 0u);
  EXPECT_EQ(plane->spill_retries(), 0u) << "rejected before any write ran";
  Failpoints::DisarmAll();
  EXPECT_EQ(Drain(*plane).size(), 8u * 2000u);
  if (dir.created()) EXPECT_EQ(FilesIn(dir.path()), 0u);
}

TEST_F(AsyncSpillTest, CompleteFailpointRemovesFileAndFallsBack) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.write.complete=once:EIO").ok());
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions());
  auto plane = FillPlane(&dir, &io);
  const uint64_t files = plane->spill_files();  // forces collection
  EXPECT_GT(plane->spill_fallbacks(), 0u) << "one completion was rejected";
  Failpoints::DisarmAll();
  // On-disk file count matches the registered count: the rejected write's
  // file was removed at collection, not leaked.
  ASSERT_TRUE(dir.created());
  EXPECT_EQ(FilesIn(dir.path()), files);
  // And the plane still merges everything (rejected run went resident).
  EXPECT_EQ(Drain(*plane).size(), 8u * 2000u);
}

TEST_F(AsyncSpillTest, PrefetchFailpointRetriesTransientErrno) {
  SpillDir dir;
  AsyncIoBackend io(AsyncOptions());
  TestRun run = MakeRun(11, 2 * 4096);
  SpillFileInfo info = WriteGood(&dir, run);
  // Transient once: the prefetch job retries in place and succeeds.
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.read.prefetch=once:EAGAIN").ok());
  {
    FileRunCursor<uint64_t, uint64_t> cursor(
        info, 0, info.num_pairs,
        FileRunCursor<uint64_t, uint64_t>::kDefaultBlockPairs,
        io.options().retry, &io);
    const uint64_t* k = nullptr;
    const uint64_t* v = nullptr;
    uint64_t total = 0;
    for (uint64_t got; (got = cursor.NextBlock(&k, &v)) > 0;) total += got;
    EXPECT_EQ(total, run.size());
  }
  Failpoints::DisarmAll();
  // Persistent EIO: surfaces as SpillIoError at the block handoff.
  ASSERT_TRUE(Failpoints::ArmFromSpec("spill.read.prefetch=error:EIO").ok());
  FileRunCursor<uint64_t, uint64_t> cursor(
      info, 0, info.num_pairs,
      FileRunCursor<uint64_t, uint64_t>::kDefaultBlockPairs,
      io.options().retry, &io);
  const uint64_t* k = nullptr;
  const uint64_t* v = nullptr;
  try {
    cursor.NextBlock(&k, &v);
    FAIL() << "failed prefetch served data";
  } catch (const SpillIoError& e) {
    EXPECT_EQ(e.io().op, IoResult::Op::kRead);
    EXPECT_EQ(e.io().err, EIO);
  }
}

// ---------------------------------------------------------------------------
// Typed construction through the seam.
// ---------------------------------------------------------------------------

TEST_F(AsyncSpillTest, CursorCreateReturnsStatusInsteadOfThrowing) {
  SpillDir dir;
  TestRun run = MakeRun(12, 100);
  SpillFileInfo info = WriteGood(&dir, run);
  auto good = FileRunCursor<uint64_t, uint64_t>::Create(info, 0, info.num_pairs);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  info.path = dir.path() / "does-not-exist.spill";
  auto bad = FileRunCursor<uint64_t, uint64_t>::Create(info, 0, info.num_pairs);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("open"), std::string::npos)
      << bad.status().ToString();
}

// ---------------------------------------------------------------------------
// Full-engine smoke: MrEnv wires IoOptions through to the plane.
// ---------------------------------------------------------------------------

class EmitManyMapper : public MapperBase<EmitManyMapper, uint64_t, uint64_t> {
 public:
  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    for (uint64_t i = 0; i < 512; ++i) {
      ctx.Emit((ctx.split_id() * 977 + i * 131) % 2048, i);
    }
  }
};

class CollectingReducer : public Reducer<uint64_t, uint64_t> {
 public:
  void Absorb(const uint64_t& k, const uint64_t& v,
              ReduceContext<uint64_t, uint64_t>&) override {
    pairs.emplace_back(k, v);
  }
  void Finish(ReduceContext<uint64_t, uint64_t>&) override {}
  std::vector<Pair> pairs;
};

std::vector<Pair> RunSpillingJob(MrEnv* env) {
  CollectingReducer reducer;
  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "async-identity";
  plan.mapper_factory = [](uint64_t) {
    return std::make_unique<EmitManyMapper>();
  };
  plan.reducer = &reducer;
  plan.sorted_shuffle = true;
  std::vector<std::vector<uint64_t>> splits(8, std::vector<uint64_t>{1, 2, 3});
  InMemoryDataset ds(std::move(splits), 2048);
  RunRound(plan, ds, env);
  return std::move(reducer.pairs);
}

TEST_F(AsyncSpillTest, MrEnvRoundMatchesAcrossBackendsAndShuffleBufferKnob) {
  MrEnv sync_env;
  sync_env.io.backend = IoBackendKind::kSync;
  // The consolidated knob, not the deprecated CostModel field.
  sync_env.io.shuffle_buffer_bytes = 2048;
  ASSERT_EQ(sync_env.ResolvedShuffleBufferBytes(), 2048u);
  const auto want = RunSpillingJob(&sync_env);
  ASSERT_GT(sync_env.stats.counters.Get("shuffle_spill_files"), 0u);

  MrEnv async_env;
  async_env.io.backend = IoBackendKind::kAsync;
  async_env.io.shuffle_buffer_bytes = 2048;
  const auto got = RunSpillingJob(&async_env);

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "pair " << i << " diverged";
  }
  EXPECT_EQ(async_env.stats.counters.values(),
            sync_env.stats.counters.values());
  // Both spill dirs end the test empty (their planes died with the rounds).
  if (sync_env.spill_dir.created()) {
    EXPECT_EQ(FilesIn(sync_env.spill_dir.path()), 0u);
  }
  if (async_env.spill_dir.created()) {
    EXPECT_EQ(FilesIn(async_env.spill_dir.path()), 0u);
  }
}

}  // namespace
}  // namespace wavemr
