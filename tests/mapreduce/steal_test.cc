// RankStealScheduler invariants: every slice handed out is a disjoint
// contiguous rank interval, the union of all slices tiles the initial
// chunks exactly (under any interleaving, including concurrent ones), steals
// split the largest unclaimed tail at its midpoint, and Abort drains
// everything. These are the properties that make work stealing a pure
// wall-clock lever -- absorb staged slices in rank order and the stream is
// the single merge's, bit for bit.

#include "mapreduce/steal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace wavemr {
namespace {

using Slice = RankStealScheduler::Slice;

// Drives one scheduler to exhaustion from a single thread, interleaving
// chunk ownership round-robin across `drivers` simulated workers so steals
// and victim shrinkage happen deterministically. Returns every claimed
// slice in claim order.
std::vector<Slice> DrainRoundRobin(RankStealScheduler* sched, int drivers) {
  struct Worker {
    bool has_chunk = false;
    size_t chunk = 0;
  };
  std::vector<Worker> workers(static_cast<size_t>(drivers));
  std::vector<Slice> claimed;
  int idle_streak = 0;
  size_t w = 0;
  while (idle_streak < drivers) {
    Worker& me = workers[w % workers.size()];
    ++w;
    if (!me.has_chunk) me.has_chunk = sched->NextChunk(&me.chunk);
    if (!me.has_chunk) {
      ++idle_streak;
      continue;
    }
    Slice sl;
    if (sched->ClaimSlice(me.chunk, &sl)) {
      claimed.push_back(sl);
      idle_streak = 0;
    } else {
      me.has_chunk = false;
    }
  }
  return claimed;
}

// Sorting claimed slices by begin rank must tile [lo, hi) with no gaps and
// no overlaps.
void ExpectTiles(std::vector<Slice> slices, uint64_t lo, uint64_t hi) {
  std::sort(slices.begin(), slices.end(),
            [](const Slice& a, const Slice& b) { return a.begin < b.begin; });
  uint64_t at = lo;
  for (const Slice& s : slices) {
    ASSERT_EQ(s.begin, at) << "gap or overlap at rank " << at;
    ASSERT_GT(s.end, s.begin) << "empty slice handed out";
    at = s.end;
  }
  EXPECT_EQ(at, hi) << "work left unclaimed";
}

TEST(RankStealSchedulerTest, SingleWorkerDrainsAllChunksInRankOrder) {
  RankStealScheduler sched({0, 100, 250, 300}, /*slice_pairs=*/32,
                           /*min_steal_pairs=*/64);
  const std::vector<Slice> slices = DrainRoundRobin(&sched, 1);
  ExpectTiles(slices, 0, 300);
  // One worker never steals: its own chunks always have work before the
  // steal path is reached.
  EXPECT_EQ(sched.steals(), 0u);
  // A single worker claims in strictly ascending rank order.
  for (size_t i = 1; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].begin, slices[i - 1].end);
  }
}

TEST(RankStealSchedulerTest, StealsSplitLargestTailAtMidpointAndStillTile) {
  // Two chunks, one huge: the second simulated worker exhausts its small
  // chunk and must steal from the straggler.
  RankStealScheduler sched({0, 1000, 1016}, /*slice_pairs=*/16,
                           /*min_steal_pairs=*/32);
  const std::vector<Slice> slices = DrainRoundRobin(&sched, 2);
  ExpectTiles(slices, 0, 1016);
  EXPECT_GT(sched.steals(), 0u);
  EXPECT_EQ(sched.num_chunks(), 2 + sched.steals());
}

TEST(RankStealSchedulerTest, EmptyChunksAreSkippedNotStarted) {
  // Equi-depth bounds with n < R plan duplicate boundaries -> empty chunks.
  RankStealScheduler sched({0, 1, 1, 1, 2}, /*slice_pairs=*/8,
                           /*min_steal_pairs=*/2);
  const std::vector<Slice> slices = DrainRoundRobin(&sched, 3);
  ExpectTiles(slices, 0, 2);
  EXPECT_EQ(slices.size(), 2u);
}

TEST(RankStealSchedulerTest, MinStealFloorStopsSplittingSmallTails) {
  // One chunk of 10 pairs with a high steal floor: the second worker finds
  // nothing to steal and goes idle instead of splitting a tiny tail.
  RankStealScheduler sched({0, 10}, /*slice_pairs=*/1,
                           /*min_steal_pairs=*/64);
  size_t chunk = 0;
  ASSERT_TRUE(sched.NextChunk(&chunk));
  size_t thief_chunk = 0;
  EXPECT_FALSE(sched.NextChunk(&thief_chunk)) << "stole below the floor";
  Slice sl;
  uint64_t total = 0;
  while (sched.ClaimSlice(chunk, &sl)) total += sl.end - sl.begin;
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(sched.steals(), 0u);
}

TEST(RankStealSchedulerTest, AbortDrainsAllWork) {
  RankStealScheduler sched({0, 100}, 8, 16);
  size_t chunk = 0;
  ASSERT_TRUE(sched.NextChunk(&chunk));
  Slice sl;
  ASSERT_TRUE(sched.ClaimSlice(chunk, &sl));
  sched.Abort();
  EXPECT_FALSE(sched.ClaimSlice(chunk, &sl));
  EXPECT_FALSE(sched.NextChunk(&chunk));
}

// Concurrent stress: real threads hammer NextChunk/ClaimSlice; the claimed
// slices must still tile the rank space exactly. Run under TSan in CI.
TEST(RankStealSchedulerTest, ConcurrentClaimsTileExactly) {
  for (int trial = 0; trial < 8; ++trial) {
    const uint64_t n = 10000 + static_cast<uint64_t>(trial) * 977;
    std::vector<uint64_t> bounds;
    for (int r = 0; r <= 8; ++r) {
      bounds.push_back(n * static_cast<uint64_t>(r) / 8);
    }
    RankStealScheduler sched(bounds, /*slice_pairs=*/37,
                             /*min_steal_pairs=*/74);
    std::mutex mu;
    std::vector<Slice> claimed;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        size_t chunk = 0;
        while (sched.NextChunk(&chunk)) {
          Slice sl;
          while (sched.ClaimSlice(chunk, &sl)) {
            std::lock_guard<std::mutex> lock(mu);
            claimed.push_back(sl);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    ExpectTiles(claimed, 0, n);
  }
}

}  // namespace
}  // namespace wavemr
