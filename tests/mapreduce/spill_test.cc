// External shuffle spill: file framing round-trip, on-disk partitioning,
// temp-dir lifetime, and the bugfix guarantee that spill files are cleaned
// up on every path -- normal completion, reducer exception, and mid-round
// destruction.
#include "mapreduce/spill.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "mapreduce/job.h"
#include "mapreduce/shuffle.h"

namespace wavemr {
namespace {

namespace fs = std::filesystem;

using TestRun = ShuffleRun<uint64_t, uint64_t>;

TestRun RandomSortedRun(uint64_t seed, size_t len, uint64_t key_domain) {
  Rng rng(seed);
  TestRun run;
  for (size_t i = 0; i < len; ++i) {
    run.Append(rng.NextBounded(key_domain), seed * 1000000 + i);
  }
  run.SortByKey();
  return run;
}

SpillFileInfo WriteRun(SpillDir* dir, const TestRun& run) {
  SpillFileInfo info;
  info.path = dir->NextFilePath("test-run");
  info.num_pairs = run.size();
  if (!run.empty()) {
    info.min_key = run.keys.front();
    info.max_key = run.keys.back();
  }
  const SpillWriteResult w = WriteSpillFile<uint64_t, uint64_t>(
      info.path, run.keys.data(), run.values.data(), run.size());
  EXPECT_TRUE(w.io.ok()) << w.io.ToString();
  info.file_bytes = w.file_bytes;
  return info;
}

std::vector<std::pair<uint64_t, uint64_t>> ReadBack(const SpillFileInfo& info,
                                                    uint64_t begin, uint64_t end,
                                                    uint64_t block_pairs) {
  FileRunCursor<uint64_t, uint64_t> cursor(info, begin, end, block_pairs);
  std::vector<std::pair<uint64_t, uint64_t>> out;
  const uint64_t* keys = nullptr;
  const uint64_t* values = nullptr;
  for (uint64_t got; (got = cursor.NextBlock(&keys, &values)) > 0;) {
    for (uint64_t i = 0; i < got; ++i) out.emplace_back(keys[i], values[i]);
  }
  return out;
}

// The satellite property test: write runs -> FileRunCursor read-back ==
// original, across run lengths (including empty), duplicate-heavy key
// domains, and block sizes that do and do not divide the run length.
TEST(SpillFileTest, RoundTripMatchesOriginal) {
  SpillDir dir;
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}, size_t{4097}}) {
      for (uint64_t domain : {uint64_t{1}, uint64_t{13}, uint64_t{1} << 30}) {
        TestRun run = RandomSortedRun(seed ^ (domain + len), len, domain);
        SpillFileInfo info = WriteRun(&dir, run);
        EXPECT_EQ(info.file_bytes, (SpillFileBytes<uint64_t, uint64_t>(len)));
        EXPECT_EQ(info.file_bytes, fs::file_size(info.path));
        for (uint64_t block : {uint64_t{1}, uint64_t{64}, uint64_t{100000}}) {
          auto got = ReadBack(info, 0, run.size(), block);
          ASSERT_EQ(got.size(), run.size());
          for (size_t i = 0; i < run.size(); ++i) {
            EXPECT_EQ(got[i].first, run.keys[i]) << "pair " << i;
            EXPECT_EQ(got[i].second, run.values[i]) << "pair " << i;
          }
        }
      }
    }
  }
}

TEST(SpillFileTest, SubrangeCursorReadsExactSlice) {
  SpillDir dir;
  TestRun run = RandomSortedRun(9, 500, 64);
  SpillFileInfo info = WriteRun(&dir, run);
  auto got = ReadBack(info, 100, 350, /*block_pairs=*/32);
  ASSERT_EQ(got.size(), 250u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, run.keys[100 + i]);
    EXPECT_EQ(got[i].second, run.values[100 + i]);
  }
  // Degenerate slices.
  EXPECT_TRUE(ReadBack(info, 200, 200, 32).empty());
  EXPECT_TRUE(ReadBack(info, 500, 500, 32).empty());
}

TEST(SpillFileTest, LowerBoundIndexMatchesInMemorySearch) {
  SpillDir dir;
  TestRun run = RandomSortedRun(11, 777, 50);  // heavy duplication
  SpillFileInfo info = WriteRun(&dir, run);
  for (uint64_t key = 0; key <= 51; ++key) {
    const uint64_t want = static_cast<uint64_t>(
        std::lower_bound(run.keys.begin(), run.keys.end(), key) -
        run.keys.begin());
    EXPECT_EQ((FileRunCursor<uint64_t, uint64_t>::LowerBoundIndex(info, key)),
              want)
        << "key " << key;
  }

  TestRun empty;
  empty.SortByKey();
  SpillFileInfo einfo = WriteRun(&dir, empty);
  EXPECT_EQ((FileRunCursor<uint64_t, uint64_t>::LowerBoundIndex(einfo, 0)), 0u);
}

TEST(SpillDirTest, LazyCreationAndRemoval) {
  fs::path where;
  {
    SpillDir dir;
    EXPECT_FALSE(dir.created());  // nothing touched the filesystem yet
    fs::path file = dir.NextFilePath("x");
    EXPECT_TRUE(dir.created());
    where = dir.path();
    EXPECT_TRUE(fs::exists(where));
    EXPECT_EQ(file.parent_path(), where);
    // Distinct names for distinct files.
    EXPECT_NE(file, dir.NextFilePath("x"));
  }
  EXPECT_FALSE(fs::exists(where));  // destructor removed the tree
}

// ---------------------------------------------------------------------------
// Cleanup through the engine: every exit path leaves the spill dir empty.
// ---------------------------------------------------------------------------

size_t FilesIn(const fs::path& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

class EmitManyMapper : public MapperBase<EmitManyMapper, uint64_t, uint64_t> {
 public:
  template <typename Ctx>
  void RunImpl(Ctx& ctx) {
    // 256 pairs * 16 bytes per split: far past the tiny test budget.
    for (uint64_t i = 0; i < 256; ++i) {
      ctx.Emit((ctx.split_id() * 977 + i * 131) % 1024, i);
    }
  }
};

class NullReducer : public Reducer<uint64_t, uint64_t> {
 public:
  void Absorb(const uint64_t&, const uint64_t&,
              ReduceContext<uint64_t, uint64_t>&) override {}
  void Finish(ReduceContext<uint64_t, uint64_t>&) override {}
};

class ThrowingFinishReducer : public Reducer<uint64_t, uint64_t> {
 public:
  void Absorb(const uint64_t&, const uint64_t&,
              ReduceContext<uint64_t, uint64_t>&) override {}
  void Finish(ReduceContext<uint64_t, uint64_t>&) override {
    throw std::runtime_error("reducer failed");
  }
};

JobPlan<uint64_t, uint64_t> SpillingPlan(Reducer<uint64_t, uint64_t>* reducer) {
  JobPlan<uint64_t, uint64_t> plan;
  plan.name = "spilling";
  plan.mapper_factory = [](uint64_t) { return std::make_unique<EmitManyMapper>(); };
  plan.reducer = reducer;
  plan.sorted_shuffle = true;
  return plan;
}

InMemoryDataset SpillDataset() {
  std::vector<std::vector<uint64_t>> splits(8, std::vector<uint64_t>{1, 2, 3});
  return InMemoryDataset(std::move(splits), 1024);
}

TEST(SpillCleanupTest, NormalCompletionLeavesDirEmpty) {
  InMemoryDataset ds = SpillDataset();
  MrEnv env;
  env.cost_model.shuffle_buffer_bytes = 1024;  // forces real spills
  NullReducer reducer;
  RunRound(SpillingPlan(&reducer), ds, &env);
  EXPECT_GT(env.stats.counters.Get("shuffle_spill_files"), 0u);
  ASSERT_TRUE(env.spill_dir.created());
  EXPECT_EQ(FilesIn(env.spill_dir.path()), 0u);
}

TEST(SpillCleanupTest, ThrowingReducerLeavesDirEmpty) {
  InMemoryDataset ds = SpillDataset();
  MrEnv env;
  env.cost_model.shuffle_buffer_bytes = 1024;
  ThrowingFinishReducer reducer;
  EXPECT_THROW(RunRound(SpillingPlan(&reducer), ds, &env), std::runtime_error);
  ASSERT_TRUE(env.spill_dir.created());
  EXPECT_EQ(FilesIn(env.spill_dir.path()), 0u);  // plane RAII deleted them
}

TEST(SpillCleanupTest, MidRoundDestructionRemovesEverything) {
  fs::path where;
  {
    // A plane destroyed with undelivered spills (what an exception between
    // Accept and Merge leaves behind) must delete its files itself.
    MrEnv env;
    ShufflePlane<uint64_t, uint64_t> plane(
        [](const uint64_t*, const uint64_t*, size_t n) { return 16 * n; },
        /*sorted=*/true, SpillPolicy{64}, &env.spill_dir);
    for (uint64_t r = 0; r < 4; ++r) {
      TestRun run = RandomSortedRun(r, 100, 32);
      plane.Accept(std::move(run), [](const uint64_t&, const uint64_t&) {});
    }
    EXPECT_GT(plane.spill_files(), 0u);
    ASSERT_TRUE(env.spill_dir.created());
    where = env.spill_dir.path();
    // plane destructor runs first (declared later), then the env's dir.
  }
  EXPECT_FALSE(fs::exists(where));
}

}  // namespace
}  // namespace wavemr
