#include "core/serialize.h"

#include <gtest/gtest.h>

namespace wavemr {
namespace {

TEST(SerializeTest, RoundTripsScalars) {
  Serializer s;
  s.Put<uint64_t>(42);
  s.Put<double>(3.25);
  s.Put<uint8_t>(7);
  Deserializer d(s.str());
  EXPECT_EQ(d.Get<uint64_t>(), 42u);
  EXPECT_EQ(d.Get<double>(), 3.25);
  EXPECT_EQ(d.Get<uint8_t>(), 7);
  EXPECT_TRUE(d.Done());
}

TEST(SerializeTest, RoundTripsVectors) {
  Serializer s;
  std::vector<uint32_t> v = {1, 2, 3, 4, 5};
  std::vector<double> w = {0.5, -1.5};
  s.PutVector(v);
  s.PutVector(w);
  s.PutVector(std::vector<uint64_t>{});
  Deserializer d(s.str());
  EXPECT_EQ(d.GetVector<uint32_t>(), v);
  EXPECT_EQ(d.GetVector<double>(), w);
  EXPECT_TRUE(d.GetVector<uint64_t>().empty());
  EXPECT_TRUE(d.Done());
}

TEST(SerializeTest, SizeIsPredictable) {
  Serializer s;
  s.Put<uint64_t>(1);
  s.PutVector(std::vector<uint32_t>(10, 9));
  // 8 + (8 length + 10*4 payload)
  EXPECT_EQ(s.str().size(), 8u + 8u + 40u);
}

}  // namespace
}  // namespace wavemr
