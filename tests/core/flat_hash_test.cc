#include "core/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "data/zipf.h"

namespace wavemr {
namespace {

// Reference-checks a FlatHashCounter against std::unordered_map after an
// identical sequence of increments.
void ExpectMatches(const FlatHashCounter<uint64_t, uint64_t>& flat,
                   const std::unordered_map<uint64_t, uint64_t>& ref) {
  ASSERT_EQ(flat.size(), ref.size());
  for (const auto& [key, value] : ref) {
    const uint64_t* got = flat.Find(key);
    ASSERT_NE(got, nullptr) << "missing key " << key;
    EXPECT_EQ(*got, value) << "key " << key;
  }
  // Iteration covers exactly the inserted keys.
  uint64_t seen = 0;
  for (const auto& [key, value] : flat) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "phantom key " << key;
    EXPECT_EQ(value, it->second);
    ++seen;
  }
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatHashCounterTest, EmptyBehaves) {
  FlatHashCounter<uint64_t, uint64_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_EQ(map.begin(), map.end());
  EXPECT_EQ(map.find(42), map.end());
}

TEST(FlatHashCounterTest, CountingMatchesUnorderedMapUniformKeys) {
  FlatHashCounter<uint64_t, uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(123);
  for (int i = 0; i < 200000; ++i) {
    uint64_t key = rng.NextBounded(50000);
    ++flat[key];
    ++ref[key];
  }
  ExpectMatches(flat, ref);
}

TEST(FlatHashCounterTest, CountingMatchesUnorderedMapZipfKeys) {
  // Skewed keys: a few keys absorb most increments, the tail exercises
  // growth with many near-singleton entries (the map-side workload).
  FlatHashCounter<uint64_t, uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;
  ZipfDistribution zipf(1 << 16, 1.1);
  Rng rng(7);
  for (int i = 0; i < 150000; ++i) {
    uint64_t key = zipf.Sample(rng);
    ++flat[key];
    ++ref[key];
  }
  ExpectMatches(flat, ref);
}

TEST(FlatHashCounterTest, ResizeBoundariesPreserveContents) {
  // Insert exactly around every doubling threshold (load factor 1/2 of a
  // power-of-two capacity) and verify contents at each boundary.
  FlatHashCounter<uint64_t, uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;
  for (uint64_t i = 0; i < 5000; ++i) {
    uint64_t key = Mix64(i) >> 16;  // scrambled but reproducible
    flat[key] = i;
    ref[key] = i;
    bool at_boundary =
        flat.capacity() != 0 && (2 * flat.size() == flat.capacity() ||
                                 2 * (flat.size() + 1) > flat.capacity());
    if (at_boundary) ExpectMatches(flat, ref);
  }
  ExpectMatches(flat, ref);
}

TEST(FlatHashCounterTest, ReservePreallocatesAndKeepsSemantics) {
  FlatHashCounter<uint64_t, uint64_t> flat;
  flat.reserve(10000);
  size_t cap = flat.capacity();
  EXPECT_GE(cap, 20000u);  // load factor <= 1/2
  std::unordered_map<uint64_t, uint64_t> ref;
  for (uint64_t i = 0; i < 10000; ++i) {
    ++flat[i * 977];
    ++ref[i * 977];
  }
  EXPECT_EQ(flat.capacity(), cap);  // no rehash happened
  ExpectMatches(flat, ref);
}

TEST(FlatHashCounterTest, FindOrEmplaceReportsInsertion) {
  FlatHashCounter<uint64_t, uint64_t> flat;
  auto [v1, inserted1] = flat.FindOrEmplace(9, 5);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*v1, 5u);
  auto [v2, inserted2] = flat.FindOrEmplace(9, 11);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 5u);  // existing value untouched
  *v2 += 1;
  EXPECT_EQ(flat.at(9), 6u);
}

TEST(FlatHashCounterTest, InitializerListAndEquality) {
  FlatHashCounter<uint64_t, uint64_t> a = {{5, 3}, {9, 1}};
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at(5), 3u);
  EXPECT_EQ(a.at(9), 1u);

  // Equality is order-independent: build the same contents the other way.
  FlatHashCounter<uint64_t, uint64_t> b;
  b[9] = 1;
  b[5] = 3;
  EXPECT_EQ(a, b);
  b[5] = 4;
  EXPECT_NE(a, b);
  b[5] = 3;
  b[6] = 0;
  EXPECT_NE(a, b);  // extra key, even with zero value
}

TEST(FlatHashCounterTest, NonTrivialValueType) {
  struct Acc {
    uint64_t hits = 0;
    double weight = 0.0;
  };
  FlatHashCounter<uint64_t, Acc> flat;
  for (uint64_t i = 0; i < 1000; ++i) {
    Acc& a = flat[i % 37];
    a.hits += 1;
    a.weight += 0.5;
  }
  EXPECT_EQ(flat.size(), 37u);
  for (const auto& [key, acc] : flat) {
    EXPECT_GE(acc.hits, 27u);
    EXPECT_DOUBLE_EQ(acc.weight, 0.5 * static_cast<double>(acc.hits));
  }
}

TEST(FlatHashCounterTest, DeterministicIterationForSameInsertSequence) {
  auto build = [] {
    FlatHashCounter<uint64_t, uint64_t> m;
    Rng rng(55);
    for (int i = 0; i < 20000; ++i) ++m[rng.NextBounded(3000)];
    return m;
  };
  FlatHashCounter<uint64_t, uint64_t> a = build();
  FlatHashCounter<uint64_t, uint64_t> b = build();
  std::vector<std::pair<uint64_t, uint64_t>> order_a(a.begin(), a.end());
  std::vector<std::pair<uint64_t, uint64_t>> order_b(b.begin(), b.end());
  EXPECT_EQ(order_a, order_b);  // slot order is a pure function of the data
}

}  // namespace
}  // namespace wavemr
