#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace wavemr {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, ZeroRequestsDefaultSize) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, ZeroTasksShutsDownCleanly) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  // Destructor joins idle workers without deadlock.
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(2);
  std::vector<std::future<uint64_t>> futures;
  for (uint64_t i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);  // results arrive in submit order
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task keeps serving.
  auto after = pool.Submit([] { return 11; });
  EXPECT_EQ(after.get(), 11);
}

TEST(ThreadPoolTest, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&running, &peak] {
      int now = ++running;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --running;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
  }  // destructor must wait for all 10, not drop the queue
  EXPECT_EQ(done.load(), 10);
}

}  // namespace
}  // namespace wavemr
