#include "core/status.h"

#include <gtest/gtest.h>

namespace wavemr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::OK();
}

Status Outer(bool fail) {
  WAVEMR_RETURN_IF_ERROR(Inner(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace wavemr
