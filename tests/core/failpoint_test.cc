#include "core/failpoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <thread>
#include <vector>

namespace wavemr {
namespace {

// Every test leaves the global registry clean for the next one.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedSiteNeverTrips) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(FailpointHit("test.never.armed"), 0);
  }
  EXPECT_EQ(Failpoints::TotalTrips(), 0u);
}

TEST_F(FailpointTest, ErrorModeTripsEveryHitWithDefaultEio) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.a=error").ok());
  EXPECT_EQ(FailpointHit("test.a"), EIO);
  EXPECT_EQ(FailpointHit("test.a"), EIO);
  EXPECT_EQ(FailpointHit("test.other"), 0);
  const auto stats = Failpoints::StatsFor("test.a");
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.trips, 2u);
}

TEST_F(FailpointTest, NamedAndNumericErrnos) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.a=error:ENOSPC").ok());
  EXPECT_EQ(FailpointHit("test.a"), ENOSPC);
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.a=error:EPIPE").ok());
  EXPECT_EQ(FailpointHit("test.a"), EPIPE);
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.a=error:5").ok());
  EXPECT_EQ(FailpointHit("test.a"), 5);
}

TEST_F(FailpointTest, OnceTripsExactlyOnce) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.once=once:ENOSPC").ok());
  EXPECT_EQ(FailpointHit("test.once"), ENOSPC);
  EXPECT_EQ(FailpointHit("test.once"), 0);
  EXPECT_EQ(FailpointHit("test.once"), 0);
  EXPECT_EQ(Failpoints::StatsFor("test.once").trips, 1u);
}

TEST_F(FailpointTest, TimesTripsFirstN) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.t=times:3:EINTR").ok());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(FailpointHit("test.t"), EINTR);
  EXPECT_EQ(FailpointHit("test.t"), 0);
  EXPECT_EQ(Failpoints::StatsFor("test.t").trips, 3u);
}

TEST_F(FailpointTest, EveryTripsPeriodically) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.e=every:3").ok());
  int trips = 0;
  for (int i = 0; i < 9; ++i) {
    if (FailpointHit("test.e") != 0) ++trips;
  }
  EXPECT_EQ(trips, 3);
}

TEST_F(FailpointTest, OffDisarmsWithinSpec) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.a=error,test.a=off").ok());
  EXPECT_EQ(FailpointHit("test.a"), 0);
}

TEST_F(FailpointTest, RearmingResetsCounters) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.r=once").ok());
  EXPECT_NE(FailpointHit("test.r"), 0);
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.r=once").ok());
  EXPECT_NE(FailpointHit("test.r"), 0) << "fresh arming must trip again";
}

TEST_F(FailpointTest, MultiSiteSpec) {
  ASSERT_TRUE(
      Failpoints::ArmFromSpec("test.x=once:EIO,test.y=error:ENOSPC").ok());
  EXPECT_EQ(FailpointHit("test.x"), EIO);
  EXPECT_EQ(FailpointHit("test.x"), 0);
  EXPECT_EQ(FailpointHit("test.y"), ENOSPC);
  EXPECT_EQ(Failpoints::TotalTrips(), 2u);
}

TEST_F(FailpointTest, MalformedSpecsRejectedAtomically) {
  for (const char* bad :
       {"nosign", "a=", "a=unknown", "a=times", "a=times:0", "a=every:0",
        "a=error:EBOGUS", "a=error:0", "=error", ","}) {
    EXPECT_FALSE(Failpoints::ArmFromSpec(bad).ok()) << bad;
  }
  // A spec that fails half-way must not leave its valid prefix armed.
  EXPECT_FALSE(Failpoints::ArmFromSpec("test.ok=error,bad=").ok());
  EXPECT_EQ(FailpointHit("test.ok"), 0);
}

TEST_F(FailpointTest, DisarmSingleSiteKeepsOthers) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.a=error,test.b=error").ok());
  Failpoints::Disarm("test.a");
  EXPECT_EQ(FailpointHit("test.a"), 0);
  EXPECT_NE(FailpointHit("test.b"), 0);
}

TEST_F(FailpointTest, ConcurrentHitsTripExactlyN) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.mt=times:100:EIO").ok());
  std::atomic<int> injected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (FailpointHit("test.mt") != 0) {
          injected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(injected.load(), 100);
  EXPECT_EQ(Failpoints::StatsFor("test.mt").hits, 4000u);
}

TEST_F(FailpointTest, AllStatsListsEveryArmedSite) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("test.s1=error,test.s2=once").ok());
  (void)FailpointHit("test.s1");
  bool saw1 = false, saw2 = false;
  for (const auto& s : Failpoints::AllStats()) {
    if (s.site == "test.s1") saw1 = true;
    if (s.site == "test.s2") saw2 = true;
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
}

}  // namespace
}  // namespace wavemr
