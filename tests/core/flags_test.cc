#include "core/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wavemr {
namespace {

// Builds a mutable argv from literals; FlagParser only reads it.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char* const* argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

struct Flags {
  std::string name = "default";
  uint64_t n = 42;
  int threads = 1;
  double alpha = 1.5;
  bool verbose = false;

  FlagParser MakeParser() {
    FlagParser parser("test_tool [options]");
    parser.String("name", &name, "a string");
    parser.U64("n", &n, "a count");
    parser.I32("threads", &threads, "a signed int");
    parser.F64("alpha", &alpha, "a double");
    parser.Bool("verbose", &verbose, "a bool");
    return parser;
  }
};

TEST(FlagParserTest, ParsesEveryType) {
  Flags f;
  FlagParser parser = f.MakeParser();
  Argv args({"tool", "--name=zipf", "--n=1000000", "--threads=-2",
             "--alpha=0.25", "--verbose=true"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(f.name, "zipf");
  EXPECT_EQ(f.n, 1000000u);
  EXPECT_EQ(f.threads, -2);
  EXPECT_EQ(f.alpha, 0.25);
  EXPECT_TRUE(f.verbose);
}

TEST(FlagParserTest, UntouchedFlagsKeepDefaults) {
  Flags f;
  FlagParser parser = f.MakeParser();
  Argv args({"tool", "--n=7"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(f.n, 7u);
  EXPECT_EQ(f.name, "default");
  EXPECT_EQ(f.threads, 1);
  EXPECT_FALSE(f.verbose);
}

TEST(FlagParserTest, BareBoolFlagSetsTrue) {
  Flags f;
  FlagParser parser = f.MakeParser();
  Argv args({"tool", "--verbose"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(f.verbose);
}

TEST(FlagParserTest, BareNonBoolFlagIsAnError) {
  Flags f;
  FlagParser parser = f.MakeParser();
  Argv args({"tool", "--n"});
  Status s = parser.Parse(args.argc(), args.argv());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("--n"), std::string::npos);
}

TEST(FlagParserTest, UnknownFlagSuggestsNearestName) {
  Flags f;
  FlagParser parser = f.MakeParser();
  Argv args({"tool", "--thread=4"});
  Status s = parser.Parse(args.argc(), args.argv());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("unknown flag --thread"), std::string::npos);
  EXPECT_NE(s.message().find("did you mean --threads"), std::string::npos);
}

TEST(FlagParserTest, UnknownFlagFarFromEverythingHasNoSuggestion) {
  Flags f;
  FlagParser parser = f.MakeParser();
  Argv args({"tool", "--completely-unrelated=1"});
  Status s = parser.Parse(args.argc(), args.argv());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message().find("did you mean"), std::string::npos);
}

TEST(FlagParserTest, BadTypedValuesAreActionableErrors) {
  struct Case {
    const char* arg;
    const char* must_mention;
  };
  const Case cases[] = {
      {"--n=abc", "--n"},
      {"--n=-5", "--n"},        // U64 rejects negatives
      {"--n=12junk", "--n"},    // trailing garbage
      {"--threads=2.5", "--threads"},
      {"--alpha=not-a-number", "--alpha"},
      {"--verbose=maybe", "--verbose"},
  };
  for (const Case& c : cases) {
    Flags f;
    FlagParser parser = f.MakeParser();
    Argv args({"tool", c.arg});
    Status s = parser.Parse(args.argc(), args.argv());
    ASSERT_FALSE(s.ok()) << c.arg;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << c.arg;
    EXPECT_NE(s.message().find(c.must_mention), std::string::npos)
        << c.arg << " -> " << s.message();
  }
}

TEST(FlagParserTest, PositionalArgumentsAreRejected) {
  Flags f;
  FlagParser parser = f.MakeParser();
  Argv args({"tool", "stray"});
  Status s = parser.Parse(args.argc(), args.argv());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, HelpStopsParsingAndSetsFlag) {
  for (const char* spelling : {"--help", "-h"}) {
    Flags f;
    FlagParser parser = f.MakeParser();
    Argv args({"tool", spelling, "--garbage-that-would-fail=1"});
    ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok()) << spelling;
    EXPECT_TRUE(parser.help_requested()) << spelling;
  }
}

TEST(FlagParserTest, HelpTextListsFlagsAndDefaults) {
  Flags f;
  FlagParser parser = f.MakeParser();
  std::string help = parser.Help();
  EXPECT_NE(help.find("test_tool [options]"), std::string::npos);
  for (const char* name : {"--name", "--n", "--threads", "--alpha", "--verbose"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
  EXPECT_NE(help.find("default"), std::string::npos);   // string default
  EXPECT_NE(help.find("42"), std::string::npos);        // u64 default
}

TEST(FlagParserTest, ParseRespectsStartOffset) {
  Flags f;
  FlagParser parser = f.MakeParser();
  Argv args({"tool", "subcommand", "--n=9"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv(), 2).ok());
  EXPECT_EQ(f.n, 9u);
}

}  // namespace
}  // namespace wavemr
