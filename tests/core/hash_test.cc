#include "core/hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"

namespace wavemr {
namespace {

TEST(PolyHashTest, DeterministicPerSeed) {
  PolyHash h1(7, 4), h2(7, 4), h3(8, 4);
  int same = 0;
  for (uint64_t x = 0; x < 64; ++x) {
    EXPECT_EQ(h1.Hash(x), h2.Hash(x));
    same += h1.Hash(x) == h3.Hash(x);
  }
  EXPECT_LT(same, 4);
}

TEST(PolyHashTest, BucketInRange) {
  PolyHash h(3, 2);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.Bucket(x, 17), 17u);
}

TEST(PolyHashTest, BucketsRoughlyUniform) {
  PolyHash h(11, 2);
  const uint64_t kBuckets = 16, kDraws = 64000;
  std::vector<int> hist(kBuckets, 0);
  for (uint64_t x = 0; x < kDraws; ++x) ++hist[h.Bucket(x, kBuckets)];
  for (int c : hist) EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.15);
}

TEST(PolyHashTest, SignsBalanced) {
  PolyHash h(13, 4);
  int64_t sum = 0;
  const int kDraws = 100000;
  for (uint64_t x = 0; x < kDraws; ++x) sum += h.Sign(x);
  // Mean should be ~0 with sd sqrt(n): allow 5 sigma.
  EXPECT_LT(std::llabs(sum), 5 * static_cast<int64_t>(std::sqrt(kDraws)));
}

TEST(PolyHashTest, PairwiseSignProductsBalanced) {
  // 4-wise independence implies pairwise sign products are +-1 with mean 0.
  PolyHash h(17, 4);
  int64_t sum = 0;
  const int kPairs = 50000;
  for (uint64_t x = 0; x < kPairs; ++x) {
    sum += h.Sign(2 * x) * h.Sign(2 * x + 1);
  }
  EXPECT_LT(std::llabs(sum), 5 * static_cast<int64_t>(std::sqrt(kPairs)));
}

TEST(MulMod61Test, MatchesSmallCases) {
  EXPECT_EQ(MulMod61(3, 5), 15u);
  EXPECT_EQ(MulMod61(PolyHash::kPrime - 1, 1), PolyHash::kPrime - 1);
}

TEST(MulMod61Test, AgreesWithNaive128) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.NextU64() % PolyHash::kPrime;
    uint64_t b = rng.NextU64() % PolyHash::kPrime;
    __uint128_t expect = (static_cast<__uint128_t>(a) * b) % PolyHash::kPrime;
    EXPECT_EQ(MulMod61(a, b), static_cast<uint64_t>(expect));
  }
}

}  // namespace
}  // namespace wavemr
