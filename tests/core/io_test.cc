// The async I/O data plane's core pieces in isolation: option parsing and
// validation (the --spill-io surface), the recycling buffer arena, and the
// Submit/Wait contract of both backends.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/io.h"

namespace wavemr {
namespace {

// ---------------------------------------------------------------------------
// ParseIoBackendKind / IoBackendKindName
// ---------------------------------------------------------------------------

TEST(IoBackendKindTest, ParsesEveryFlagSpelling) {
  EXPECT_EQ(*ParseIoBackendKind("sync"), IoBackendKind::kSync);
  EXPECT_EQ(*ParseIoBackendKind("async"), IoBackendKind::kAsync);
  EXPECT_EQ(*ParseIoBackendKind("auto"), IoBackendKind::kAuto);
}

TEST(IoBackendKindTest, RejectsUnknownSpellingWithActionableMessage) {
  auto kind = ParseIoBackendKind("uring");
  ASSERT_FALSE(kind.ok());
  EXPECT_NE(kind.status().ToString().find("sync|async|auto"), std::string::npos)
      << kind.status().ToString();
  EXPECT_NE(kind.status().ToString().find("uring"), std::string::npos);
  EXPECT_FALSE(ParseIoBackendKind("").ok());
  EXPECT_FALSE(ParseIoBackendKind("Sync").ok()) << "case-sensitive like --algo";
}

TEST(IoBackendKindTest, NamesRoundTripThroughParse) {
  for (IoBackendKind kind : {IoBackendKind::kSync, IoBackendKind::kAsync,
                             IoBackendKind::kAuto}) {
    EXPECT_EQ(*ParseIoBackendKind(IoBackendKindName(kind)), kind);
  }
}

TEST(IoOptionsTest, AutoResolvesToAsync) {
  IoOptions options;
  EXPECT_EQ(options.backend, IoBackendKind::kAuto);
  EXPECT_EQ(options.ResolvedBackend(), IoBackendKind::kAsync);
  options.backend = IoBackendKind::kSync;
  EXPECT_EQ(options.ResolvedBackend(), IoBackendKind::kSync);
}

// ---------------------------------------------------------------------------
// IoOptions::Validate: same message style as BuildOptions::Validate.
// ---------------------------------------------------------------------------

TEST(IoOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(IoOptions().Validate().ok());
}

TEST(IoOptionsTest, QueueDepthBounds) {
  IoOptions options;
  options.queue_depth = 0;
  auto st = options.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("IoOptions.queue_depth"), std::string::npos);
  EXPECT_NE(st.ToString().find("got 0"), std::string::npos) << st.ToString();
  options.queue_depth = 1025;
  EXPECT_FALSE(options.Validate().ok());
  options.queue_depth = 1;
  EXPECT_TRUE(options.Validate().ok());
  options.queue_depth = 1024;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(IoOptionsTest, PrefetchDepthBounds) {
  IoOptions options;
  options.prefetch_depth = -1;
  auto st = options.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("IoOptions.prefetch_depth"), std::string::npos);
  options.prefetch_depth = 65;
  EXPECT_FALSE(options.Validate().ok());
  options.prefetch_depth = 0;  // 0 = prefetch disabled, explicitly legal
  EXPECT_TRUE(options.Validate().ok());
  options.prefetch_depth = 64;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(IoOptionsTest, RetryBudgetBounds) {
  IoOptions options;
  options.retry.max_attempts = 0;
  auto st = options.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("IoOptions.retry.max_attempts"),
            std::string::npos);
  options.retry.max_attempts = 1;
  options.retry.backoff_initial_us = -5;
  EXPECT_FALSE(options.Validate().ok());
  options.retry.backoff_initial_us = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(IoRetryPolicyTest, TransientTableIsExactlyTheDocumentedFour) {
  EXPECT_TRUE(IoRetryPolicy::IsTransient(EINTR));
  EXPECT_TRUE(IoRetryPolicy::IsTransient(EAGAIN));
  EXPECT_TRUE(IoRetryPolicy::IsTransient(ENOSPC));
  EXPECT_TRUE(IoRetryPolicy::IsTransient(ENOBUFS));
  EXPECT_FALSE(IoRetryPolicy::IsTransient(EIO));
  EXPECT_FALSE(IoRetryPolicy::IsTransient(EBADF));
  EXPECT_FALSE(IoRetryPolicy::IsTransient(0));
}

// ---------------------------------------------------------------------------
// IoResult
// ---------------------------------------------------------------------------

TEST(IoResultTest, ToStringCarriesOpErrnoAndDetail) {
  IoResult r;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.ToString(), "ok");
  r.op = IoResult::Op::kChecksum;
  r.detail = "block 3 of /tmp/run-0";
  const std::string s = r.ToString();
  EXPECT_NE(s.find("spill checksum error"), std::string::npos) << s;
  EXPECT_NE(s.find("block 3"), std::string::npos) << s;
  EXPECT_FALSE(r.ToStatus().ok());
}

// ---------------------------------------------------------------------------
// IoBufferArena
// ---------------------------------------------------------------------------

TEST(IoBufferArenaTest, RecyclesInsteadOfReallocating) {
  IoBufferArena arena;
  {
    IoBuffer b = arena.Acquire(4096);
    ASSERT_TRUE(b);
    EXPECT_GE(b.capacity(), 4096u);
    std::memset(b.data(), 0xAB, 4096);
  }  // lease ends: storage returns to the freelist
  EXPECT_EQ(arena.allocations(), 1u);
  EXPECT_EQ(arena.reuses(), 0u);
  {
    IoBuffer b = arena.Acquire(4096);
    ASSERT_TRUE(b);
  }
  EXPECT_EQ(arena.allocations(), 1u) << "second acquire must reuse";
  EXPECT_EQ(arena.reuses(), 1u);
}

TEST(IoBufferArenaTest, BestFitPrefersSmallestSufficientBuffer) {
  IoBufferArena arena;
  {
    IoBuffer small = arena.Acquire(1024);
    IoBuffer large = arena.Acquire(65536);
  }  // both recycled; freelist holds {1024, 65536}
  ASSERT_EQ(arena.allocations(), 2u);
  IoBuffer b = arena.Acquire(512);
  EXPECT_EQ(b.capacity(), 1024u) << "best fit: the 1 KiB buffer, not 64 KiB";
  IoBuffer c = arena.Acquire(2048);
  EXPECT_EQ(c.capacity(), 65536u) << "1 KiB is too small; take the 64 KiB one";
  EXPECT_EQ(arena.reuses(), 2u);
  EXPECT_EQ(arena.allocations(), 2u);
}

TEST(IoBufferArenaTest, MoveTransfersTheLease) {
  IoBufferArena arena;
  IoBuffer a = arena.Acquire(256);
  std::byte* raw = a.data();
  IoBuffer b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_EQ(b.data(), raw);
  b.Release();
  EXPECT_FALSE(b);
  b.Release();  // idempotent
  EXPECT_EQ(arena.reuses() + arena.allocations(), 1u);
}

TEST(IoBufferArenaTest, FreelistIsBounded) {
  IoBufferArena arena;
  {
    std::vector<IoBuffer> held;
    for (size_t i = 0; i < IoBufferArena::kMaxFreeBuffers + 8; ++i) {
      held.push_back(arena.Acquire(64));
    }
  }  // all released; only kMaxFreeBuffers stay parked
  for (size_t i = 0; i < IoBufferArena::kMaxFreeBuffers; ++i) {
    IoBuffer b = arena.Acquire(64);
    b.Release();
    EXPECT_EQ(arena.allocations(), IoBufferArena::kMaxFreeBuffers + 8)
        << "acquire " << i << " should come from the freelist";
  }
}

TEST(IoBufferArenaTest, ConcurrentAcquireReleaseIsSafe) {
  IoBufferArena arena;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&arena, t] {
      for (int i = 0; i < 200; ++i) {
        IoBuffer b = arena.Acquire(static_cast<size_t>(1) << (8 + (i + t) % 4));
        ASSERT_TRUE(b);
        b.data()[0] = std::byte{0x5A};  // touch the lease (ASan watches)
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(arena.allocations() + arena.reuses(), 800u);
}

// ---------------------------------------------------------------------------
// Backends: the Submit/Wait contract.
// ---------------------------------------------------------------------------

TEST(SyncIoBackendTest, SubmitRunsInlineBeforeReturning) {
  SyncIoBackend backend;
  EXPECT_STREQ(backend.name(), "sync");
  EXPECT_FALSE(backend.async());
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  IoTicket ticket = backend.Submit([&] {
    ran = true;
    EXPECT_EQ(std::this_thread::get_id(), caller) << "sync = inline";
  });
  EXPECT_TRUE(ran) << "job finished before Submit returned";
  EXPECT_TRUE(ticket.valid());
  ticket.Wait();  // immediately satisfied
}

TEST(AsyncIoBackendTest, SubmitOverlapsAndWaitCompletes) {
  IoOptions options;
  options.queue_depth = 2;
  AsyncIoBackend backend(options);
  EXPECT_STREQ(backend.name(), "async");
  EXPECT_TRUE(backend.async());
  std::atomic<int> done{0};
  std::vector<IoTicket> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(backend.Submit(
        [&done] { done.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (IoTicket& t : tickets) t.Wait();
  EXPECT_EQ(done.load(), 16);
}

TEST(AsyncIoBackendTest, JobsRunOffTheSubmittingThread) {
  AsyncIoBackend backend;
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id job_thread;
  IoTicket t = backend.Submit([&] { job_thread = std::this_thread::get_id(); });
  t.Wait();
  EXPECT_NE(job_thread, caller);
}

TEST(AsyncIoBackendTest, DestructorJoinsAfterPendingJobs) {
  std::atomic<int> done{0};
  {
    AsyncIoBackend backend;
    std::vector<IoTicket> tickets;
    for (int i = 0; i < 8; ++i) {
      tickets.push_back(backend.Submit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); }));
    }
    for (IoTicket& t : tickets) t.Wait();
  }  // destructor joins the workers
  EXPECT_EQ(done.load(), 8);
}

TEST(MakeIoBackendTest, BuildsWhatResolvedBackendNames) {
  IoOptions options;
  options.backend = IoBackendKind::kSync;
  EXPECT_FALSE(MakeIoBackend(options)->async());
  options.backend = IoBackendKind::kAsync;
  EXPECT_TRUE(MakeIoBackend(options)->async());
  options.backend = IoBackendKind::kAuto;  // resolves to async
  EXPECT_TRUE(MakeIoBackend(options)->async());
}

TEST(MakeIoBackendTest, BackendKeepsItsOptions) {
  IoOptions options;
  options.backend = IoBackendKind::kAsync;
  options.queue_depth = 7;
  options.prefetch_depth = 3;
  auto backend = MakeIoBackend(options);
  EXPECT_EQ(backend->options().queue_depth, 7);
  EXPECT_EQ(backend->options().prefetch_depth, 3);
}

TEST(DefaultSyncIoBackendTest, IsProcessWideAndSync) {
  IoBackend* a = DefaultSyncIoBackend();
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->async());
  EXPECT_EQ(a, DefaultSyncIoBackend());
}

}  // namespace
}  // namespace wavemr
