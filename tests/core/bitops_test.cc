#include "core/bitops.h"

#include <gtest/gtest.h>

namespace wavemr {
namespace {

TEST(BitopsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 40));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 40) + 1));
}

TEST(BitopsTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(4), 2u);
  EXPECT_EQ(Log2Floor((uint64_t{1} << 33) + 5), 33u);
}

TEST(BitopsTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0u);
  EXPECT_EQ(Log2Ceil(2), 1u);
  EXPECT_EQ(Log2Ceil(3), 2u);
  EXPECT_EQ(Log2Ceil(4), 2u);
  EXPECT_EQ(Log2Ceil(5), 3u);
}

TEST(BitopsTest, CeilPow2) {
  EXPECT_EQ(CeilPow2(1), 1u);
  EXPECT_EQ(CeilPow2(2), 2u);
  EXPECT_EQ(CeilPow2(3), 4u);
  EXPECT_EQ(CeilPow2(1000), 1024u);
}

TEST(BitopsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(0, 3), 0u);
}

}  // namespace
}  // namespace wavemr
