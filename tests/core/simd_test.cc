#include "core/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/cpu_features.h"
#include "core/hash.h"
#include "core/rng.h"

namespace wavemr {
namespace {

constexpr uint64_t kPrime = PolyHash::kPrime;

// Every tier this binary can actually run on this machine. The scalar table
// is always first so the others are compared against it.
std::vector<SimdTier> RunnableTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (BestSimdTier() != SimdTier::kScalar) tiers.push_back(BestSimdTier());
  return tiers;
}

// Interesting 61-bit operands: boundaries of the limb decomposition plus
// random values.
std::vector<uint64_t> HashOperands() {
  std::vector<uint64_t> ops = {0,
                               1,
                               2,
                               (uint64_t{1} << 29) - 1,
                               uint64_t{1} << 29,
                               (uint64_t{1} << 32) - 1,
                               uint64_t{1} << 32,
                               (uint64_t{1} << 32) + 1,
                               kPrime / 2,
                               kPrime - 2,
                               kPrime - 1};
  Rng rng(2024);
  for (int i = 0; i < 512; ++i) ops.push_back(rng.NextU64() % kPrime);
  return ops;
}

TEST(CpuFeaturesTest, ResolveSimdTierHonorsRequestAndHardware) {
  CpuFeatures none;
  CpuFeatures x86;
  x86.sse42 = x86.avx2 = true;
  CpuFeatures arm;
  arm.neon = arm.arm_crc32 = true;

  EXPECT_EQ(ResolveSimdTier(nullptr, none), SimdTier::kScalar);
  EXPECT_EQ(ResolveSimdTier(nullptr, x86), SimdTier::kAvx2);
  EXPECT_EQ(ResolveSimdTier(nullptr, arm), SimdTier::kNeon);
  EXPECT_EQ(ResolveSimdTier("auto", x86), SimdTier::kAvx2);
  EXPECT_EQ(ResolveSimdTier("", x86), SimdTier::kAvx2);

  EXPECT_EQ(ResolveSimdTier("scalar", x86), SimdTier::kScalar);
  EXPECT_EQ(ResolveSimdTier("scalar", arm), SimdTier::kScalar);
  EXPECT_EQ(ResolveSimdTier("avx2", x86), SimdTier::kAvx2);
  EXPECT_EQ(ResolveSimdTier("avx2", none), SimdTier::kScalar);
  EXPECT_EQ(ResolveSimdTier("avx2", arm), SimdTier::kScalar);
  EXPECT_EQ(ResolveSimdTier("neon", arm), SimdTier::kNeon);
  EXPECT_EQ(ResolveSimdTier("neon", x86), SimdTier::kScalar);

  // Unknown strings behave like auto rather than crashing or going scalar.
  EXPECT_EQ(ResolveSimdTier("avx512", x86), SimdTier::kAvx2);
  EXPECT_EQ(ResolveSimdTier("garbage", none), SimdTier::kScalar);
}

TEST(CpuFeaturesTest, TierNamesAreStable) {
  EXPECT_STREQ(SimdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(SimdTierName(SimdTier::kNeon), "neon");
}

TEST(SimdDispatchTest, ScalarTableIsAlwaysAvailable) {
  const SimdKernels& k = SimdKernelsFor(SimdTier::kScalar);
  EXPECT_EQ(k.tier, SimdTier::kScalar);
}

TEST(SimdDispatchTest, BestTierTableMatchesRequestedTier) {
  const SimdKernels& k = SimdKernelsFor(BestSimdTier());
  EXPECT_EQ(k.tier, BestSimdTier());
}

TEST(SimdDispatchTest, OverrideRoundTrips) {
  for (SimdTier tier : RunnableTiers()) {
    OverrideSimdTierForTest(tier);
    EXPECT_EQ(SimdK().tier, tier);
  }
  OverrideSimdTierForTest(ActiveSimdTier());
  EXPECT_EQ(SimdK().tier, ActiveSimdTier());
}

TEST(SimdKernelTest, MulMod61X4MatchesScalarReference) {
  const std::vector<uint64_t> ops = HashOperands();
  for (SimdTier tier : RunnableTiers()) {
    const SimdKernels& k = SimdKernelsFor(tier);
    for (size_t i = 0; i + 8 <= ops.size(); i += 8) {
      uint64_t out[4];
      k.mulmod61_x4(&ops[i], &ops[i + 4], out);
      for (int l = 0; l < 4; ++l) {
        ASSERT_EQ(out[l], MulMod61(ops[i + l], ops[i + 4 + l]))
            << "tier=" << SimdTierName(tier) << " a=" << ops[i + l]
            << " b=" << ops[i + 4 + l];
      }
    }
  }
}

TEST(SimdKernelTest, Hash2AndHash4MatchPolyHashBitForBit) {
  Rng rng(77);
  for (SimdTier tier : RunnableTiers()) {
    const SimdKernels& k = SimdKernelsFor(tier);
    for (int trial = 0; trial < 64; ++trial) {
      // Four independent polynomials (one per lane), as EstimateItem uses.
      uint64_t c0[4], c1[4], c2[4], c3[4], x[4];
      PolyHash deg2[4] = {PolyHash(rng.NextU64(), 2), PolyHash(rng.NextU64(), 2),
                          PolyHash(rng.NextU64(), 2), PolyHash(rng.NextU64(), 2)};
      PolyHash deg4[4] = {PolyHash(rng.NextU64(), 4), PolyHash(rng.NextU64(), 4),
                          PolyHash(rng.NextU64(), 4), PolyHash(rng.NextU64(), 4)};
      uint64_t d0[4], d1[4], d2[4], d3[4];
      for (int l = 0; l < 4; ++l) {
        c0[l] = deg2[l].coeffs()[0];
        c1[l] = deg2[l].coeffs()[1];
        d0[l] = deg4[l].coeffs()[0];
        d1[l] = deg4[l].coeffs()[1];
        d2[l] = deg4[l].coeffs()[2];
        d3[l] = deg4[l].coeffs()[3];
        x[l] = rng.NextU64() % kPrime;
      }
      (void)c2;
      (void)c3;
      uint64_t out2[4], out4[4];
      k.hash2_x4(c0, c1, x, out2);
      k.hash4_x4(d0, d1, d2, d3, x, out4);
      for (int l = 0; l < 4; ++l) {
        ASSERT_EQ(out2[l], deg2[l].Hash(x[l])) << SimdTierName(tier);
        ASSERT_EQ(out4[l], deg4[l].Hash(x[l])) << SimdTierName(tier);
      }
    }
  }
}

TEST(SimdKernelTest, GcsSubSignMatchesScalarForPow2AndNonPow2) {
  Rng rng(123);
  for (SimdTier tier : RunnableTiers()) {
    const SimdKernels& k = SimdKernelsFor(tier);
    const SimdKernels& ref = SimdKernelsFor(SimdTier::kScalar);
    for (uint64_t subbuckets : {uint64_t{1}, uint64_t{8}, uint64_t{6},
                                uint64_t{1024}, uint64_t{1000}}) {
      const bool pow2 = (subbuckets & (subbuckets - 1)) == 0;
      const uint64_t sub_mask = pow2 ? subbuckets - 1 : 0;
      PolyHash hi(rng.NextU64(), 2);
      PolyHash hs(rng.NextU64(), 4);
      uint64_t ci[2] = {hi.coeffs()[0], hi.coeffs()[1]};
      uint64_t cs[4] = {hs.coeffs()[0], hs.coeffs()[1], hs.coeffs()[2],
                        hs.coeffs()[3]};
      for (int trial = 0; trial < 32; ++trial) {
        // Full-range items: the kernel owns the % kPrime reduction.
        uint64_t items[4] = {rng.NextU64(), rng.NextU64() % 4096,
                             rng.NextU64(), kPrime + trial};
        uint32_t got[4], want[4];
        k.gcs_sub_sign_x4(ci, cs, items, subbuckets, sub_mask, got);
        ref.gcs_sub_sign_x4(ci, cs, items, subbuckets, sub_mask, want);
        for (int l = 0; l < 4; ++l) {
          ASSERT_EQ(got[l], want[l])
              << SimdTierName(tier) << " subbuckets=" << subbuckets;
          // Cross-check the packed fields against PolyHash directly.
          const uint64_t ir = items[l] % kPrime;
          const uint64_t sub = hi.Hash(ir) % subbuckets;
          const bool positive = (hs.Hash(ir) & 1) != 0;
          ASSERT_EQ(got[l] & 0x7FFFFFFFu, sub);
          ASSERT_EQ((got[l] >> 31) != 0, positive);
        }
      }
    }
  }
}

TEST(SimdKernelTest, GcsSubSignBlockMatchesX4AndScalar) {
  Rng rng(321);
  for (SimdTier tier : RunnableTiers()) {
    const SimdKernels& k = SimdKernelsFor(tier);
    const SimdKernels& ref = SimdKernelsFor(SimdTier::kScalar);
    for (uint64_t subbuckets : {uint64_t{8}, uint64_t{6}, uint64_t{1000}}) {
      const bool pow2 = (subbuckets & (subbuckets - 1)) == 0;
      const uint64_t sub_mask = pow2 ? subbuckets - 1 : 0;
      PolyHash hi(rng.NextU64(), 2);
      PolyHash hs(rng.NextU64(), 4);
      uint64_t ci[2] = {hi.coeffs()[0], hi.coeffs()[1]};
      uint64_t cs[4] = {hs.coeffs()[0], hs.coeffs()[1], hs.coeffs()[2],
                        hs.coeffs()[3]};
      // All tail lengths around the vector widths, plus a block-sized run.
      for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                       size_t{5}, size_t{7}, size_t{8}, size_t{801}}) {
        std::vector<uint64_t> items(n);
        for (uint64_t& x : items) x = rng.NextU64();
        std::vector<uint32_t> got(n + 1, 0xDEADBEEFu);
        std::vector<uint32_t> want(n + 1, 0xDEADBEEFu);
        k.gcs_sub_sign_block(ci, cs, items.data(), n, subbuckets, sub_mask,
                             got.data());
        ref.gcs_sub_sign_block(ci, cs, items.data(), n, subbuckets, sub_mask,
                               want.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], want[i]) << SimdTierName(tier)
                                     << " subbuckets=" << subbuckets
                                     << " n=" << n << " i=" << i;
          // Block form must agree with the x4 form's packed contract too.
          const uint64_t ir = items[i] % kPrime;
          ASSERT_EQ(got[i] & 0x7FFFFFFFu, hi.Hash(ir) % subbuckets);
          ASSERT_EQ((got[i] >> 31) != 0, (hs.Hash(ir) & 1) != 0);
        }
        // The kernel must not write past n.
        ASSERT_EQ(got[n], 0xDEADBEEFu);
        ASSERT_EQ(want[n], 0xDEADBEEFu);
      }
    }
  }
}

TEST(SimdKernelTest, HaarButterflyIsBitIdenticalAcrossTiers) {
  Rng rng(5);
  for (size_t half : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{7},
                      size_t{64}, size_t{257}}) {
    std::vector<double> in(2 * half);
    for (double& v : in) v = rng.NextDouble() * 100.0 - 50.0;
    const double norm = 1.0 / std::sqrt(static_cast<double>(2 * half));
    std::vector<double> ref_coeffs(half), ref_sums(half);
    SimdKernelsFor(SimdTier::kScalar)
        .haar_butterfly(in.data(), half, norm, ref_coeffs.data(),
                        ref_sums.data());
    // The scalar kernel must match the definition exactly.
    for (size_t kk = 0; kk < half; ++kk) {
      ASSERT_EQ(ref_coeffs[kk], (in[2 * kk + 1] - in[2 * kk]) * norm);
      ASSERT_EQ(ref_sums[kk], in[2 * kk] + in[2 * kk + 1]);
    }
    for (SimdTier tier : RunnableTiers()) {
      std::vector<double> coeffs(half), sums(half);
      SimdKernelsFor(tier).haar_butterfly(in.data(), half, norm, coeffs.data(),
                                          sums.data());
      for (size_t kk = 0; kk < half; ++kk) {
        ASSERT_EQ(coeffs[kk], ref_coeffs[kk])
            << SimdTierName(tier) << " half=" << half << " k=" << kk;
        ASSERT_EQ(sums[kk], ref_sums[kk]);
      }
    }
  }
}

TEST(SimdKernelTest, SumSquaresIsBitIdenticalAcrossTiers) {
  Rng rng(9);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                   size_t{8}, size_t{31}, size_t{1024}, size_t{1027}}) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.NextDouble() * 8.0 - 4.0;
    const double ref =
        SimdKernelsFor(SimdTier::kScalar).sum_squares(v.data(), n);
    for (SimdTier tier : RunnableTiers()) {
      const double got = SimdKernelsFor(tier).sum_squares(v.data(), n);
      ASSERT_EQ(got, ref) << SimdTierName(tier) << " n=" << n;
    }
    // Sanity: close to the naive sum even if associated differently.
    double naive = 0.0;
    for (double x : v) naive += x * x;
    EXPECT_NEAR(ref, naive, 1e-9 * (1.0 + naive));
  }
}

TEST(SimdKernelTest, SparseLevelIsBitIdenticalAcrossTiers) {
  Rng rng(31337);
  const uint64_t u = uint64_t{1} << 20;
  const uint32_t levels = 20;
  for (uint32_t j : {uint32_t{0}, uint32_t{3}, uint32_t{19}}) {
    const uint64_t block = u >> j;
    const uint64_t half = block / 2;
    const uint64_t base = uint64_t{1} << j;
    const uint32_t shift = levels - j;
    const double sqrt_block = std::sqrt(static_cast<double>(block));
    for (size_t n : {size_t{1}, size_t{2}, size_t{5}, size_t{801}}) {
      std::vector<uint64_t> keys(n);
      std::vector<double> weights(n);
      for (size_t i = 0; i < n; ++i) {
        keys[i] = rng.NextU64() % u;
        weights[i] = rng.NextDouble() * 10.0 - 5.0;
      }
      std::vector<uint64_t> ref_idx(n), idx(n);
      std::vector<double> ref_val(n), val(n);
      SimdKernelsFor(SimdTier::kScalar)
          .sparse_level(keys.data(), weights.data(), n, shift, block - 1, half,
                        base, sqrt_block, ref_idx.data(), ref_val.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ref_idx[i], base + keys[i] / block);
        const double mag = weights[i] / sqrt_block;
        ASSERT_EQ(ref_val[i], (keys[i] % block) < half ? -mag : mag);
      }
      for (SimdTier tier : RunnableTiers()) {
        SimdKernelsFor(tier).sparse_level(keys.data(), weights.data(), n,
                                          shift, block - 1, half, base,
                                          sqrt_block, idx.data(), val.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(idx[i], ref_idx[i]) << SimdTierName(tier) << " j=" << j;
          ASSERT_EQ(val[i], ref_val[i]) << SimdTierName(tier) << " j=" << j;
        }
      }
    }
  }
}

}  // namespace
}  // namespace wavemr
