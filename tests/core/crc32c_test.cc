#include "core/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace wavemr {
namespace {

// The RFC 3720 check value: CRC32C("123456789") == 0xE3069283. Any
// implementation (hardware or the slicing-by-8 fallback) must reproduce it.
TEST(Crc32cTest, ReferenceVector) {
  const char kDigits[] = "123456789";
  EXPECT_EQ(Crc32c(kDigits, 9), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32cTest, ExtendComposesLikeOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  const uint32_t whole = Crc32c(data.data(), data.size());
  // Every split point must agree with the one-shot value.
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, whole) << "split at " << cut;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  std::string data(64, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i * 7);
  const uint32_t good = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = data;
      bad[i] = static_cast<char>(bad[i] ^ (1u << bit));
      EXPECT_NE(Crc32c(bad.data(), bad.size()), good)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, UnalignedStartsMatchAlignedValue) {
  // The hardware path consumes 8 bytes at a time; make sure leading and
  // trailing remainders are folded in correctly at every alignment.
  std::vector<char> backing(256 + 16);
  for (size_t i = 0; i < backing.size(); ++i) {
    backing[i] = static_cast<char>(i ^ (i >> 3));
  }
  for (size_t off = 0; off < 16; ++off) {
    std::string copy(backing.data() + off, 100);
    EXPECT_EQ(Crc32c(backing.data() + off, 100),
              Crc32c(copy.data(), copy.size()))
        << "offset " << off;
  }
}

}  // namespace
}  // namespace wavemr
