#include "core/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace wavemr {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i) diff += a.NextU64() != b.NextU64();
  EXPECT_GT(diff, 12);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(11);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(5);
  std::vector<int> hist(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++hist[rng.NextBounded(10)];
  for (int count : hist) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(CounterRngTest, StreamsAreIndependentAndReproducible) {
  CounterRng a(42, 1, 5), a2(42, 1, 5), b(42, 1, 6), c(42, 2, 5);
  uint64_t va = a.NextU64();
  EXPECT_EQ(va, a2.NextU64());
  EXPECT_NE(va, b.NextU64());
  EXPECT_NE(va, c.NextU64());
}

class FeistelTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FeistelTest, IsBijectionOnDomain) {
  uint32_t bits = GetParam();
  FeistelPermutation perm(99, bits);
  uint64_t domain = uint64_t{1} << bits;
  std::set<uint64_t> images;
  for (uint64_t x = 0; x < domain; ++x) {
    uint64_t y = perm.Apply(x);
    ASSERT_LT(y, domain);
    images.insert(y);
    ASSERT_EQ(perm.Invert(y), x);
  }
  EXPECT_EQ(images.size(), domain);
}

INSTANTIATE_TEST_SUITE_P(Bits, FeistelTest, ::testing::Values(2u, 3u, 5u, 8u, 11u));

TEST(FeistelTest, LargeDomainRoundTrips) {
  FeistelPermutation perm(123, 32);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = rng.NextBounded(uint64_t{1} << 32);
    EXPECT_EQ(perm.Invert(perm.Apply(x)), x);
  }
}

TEST(FeistelTest, ScattersValues) {
  // Consecutive inputs should not map to consecutive outputs.
  FeistelPermutation perm(5, 16);
  int adjacent = 0;
  for (uint64_t x = 0; x + 1 < 1000; ++x) {
    uint64_t d = perm.Apply(x + 1) - perm.Apply(x);
    if (d == 1) ++adjacent;
  }
  EXPECT_LT(adjacent, 5);
}

}  // namespace
}  // namespace wavemr
