// Bit-identity of the GroupCountSketch hot paths across SIMD dispatch tiers
// (core/simd.h): the scalar table is the reference, and any vector tier the
// host can run must produce exactly the same counters, energies, and
// estimates. Complements tests/core/simd_test.cc (raw kernels) by exercising
// the integrated sketch paths: memo hits and misses, pow2 and non-pow2
// sub-bucket widths, short wavelet-style batches and long sorted ones.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "core/simd.h"
#include "sketch/group_count_sketch.h"

namespace wavemr {
namespace {

/// Restores the startup tier when a test is done overriding it.
class SimdTierGuard {
 public:
  explicit SimdTierGuard(SimdTier tier) { OverrideSimdTierForTest(tier); }
  ~SimdTierGuard() { OverrideSimdTierForTest(ActiveSimdTier()); }
};

struct BatchInput {
  std::vector<uint64_t> items;
  std::vector<double> values;
};

// Items deliberately straddle the memo bound (kMemoItems = 1024): runs of
// low repeated indices (the wavelet error-tree shape) plus high random ones.
BatchInput MakeInput(uint64_t seed, size_t n, uint64_t domain) {
  BatchInput in;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t item = (i % 3 == 0) ? rng.NextBounded(512)
                                       : rng.NextBounded(domain);
    in.items.push_back(item);
    in.values.push_back((rng.NextDouble() - 0.5) * 64.0);
  }
  return in;
}

GroupCountSketch BuildUnderTier(SimdTier tier, size_t subbuckets,
                                const BatchInput& in, size_t chunk) {
  SimdTierGuard guard(tier);
  GroupCountSketch sketch(4242, 5, 32, subbuckets);
  // Feed in chunks so partial vector lane groups (chunk % 4 != 0) and the
  // memo warm-up both get exercised.
  for (size_t base = 0; base < in.items.size(); base += chunk) {
    const size_t n = std::min(chunk, in.items.size() - base);
    sketch.UpdateBatch(in.items.data() + base, in.values.data() + base, n, 3);
  }
  return sketch;
}

TEST(GcsSimdTierTest, UpdateBatchBitIdenticalScalarVsBestTier) {
  const BatchInput in = MakeInput(17, 3000, uint64_t{1} << 16);
  for (size_t subbuckets : {size_t{8}, size_t{6}, size_t{1}}) {
    for (size_t chunk : {size_t{18}, size_t{301}, size_t{3000}}) {
      GroupCountSketch scalar =
          BuildUnderTier(SimdTier::kScalar, subbuckets, in, chunk);
      GroupCountSketch best =
          BuildUnderTier(BestSimdTier(), subbuckets, in, chunk);
      ASSERT_EQ(scalar.NumCounters(), best.NumCounters());
      for (size_t i = 0; i < scalar.NumCounters(); ++i) {
        ASSERT_EQ(scalar.CounterAt(i), best.CounterAt(i))
            << "counter " << i << " subbuckets=" << subbuckets
            << " chunk=" << chunk << " tier=" << SimdTierName(BestSimdTier());
      }
    }
  }
}

TEST(GcsSimdTierTest, SimdBatchMatchesScalarUpdateLoop) {
  // The vector batch path must still equal n plain Update() calls exactly
  // (the same contract UpdateBatchMatchesScalarUpdatesBitForBit pins for the
  // scalar batch path).
  const BatchInput in = MakeInput(23, 1500, uint64_t{1} << 14);
  SimdTierGuard guard(BestSimdTier());
  GroupCountSketch loop(7, 5, 16, 8), batch(7, 5, 16, 8);
  for (size_t i = 0; i < in.items.size(); ++i) {
    loop.Update(in.items[i] >> 3, in.items[i], in.values[i]);
  }
  batch.UpdateBatch(in.items.data(), in.values.data(), in.items.size(), 3);
  for (size_t i = 0; i < loop.NumCounters(); ++i) {
    ASSERT_EQ(loop.CounterAt(i), batch.CounterAt(i)) << "counter " << i;
  }
}

TEST(GcsSimdTierTest, QueriesBitIdenticalAcrossTiers) {
  // GroupEnergy and EstimateItem read through the dispatched hash and
  // sum-of-squares kernels; with one fixed table the answers must not depend
  // on the tier at all.
  const BatchInput in = MakeInput(31, 4000, uint64_t{1} << 12);
  GroupCountSketch sketch = BuildUnderTier(BestSimdTier(), 8, in, 4000);
  std::vector<double> want_energy, want_est;
  {
    SimdTierGuard guard(SimdTier::kScalar);
    for (uint64_t g = 0; g < 64; ++g) {
      want_energy.push_back(sketch.GroupEnergy(g));
      want_est.push_back(sketch.EstimateItem(g, g * 8 + 3));
    }
  }
  {
    SimdTierGuard guard(BestSimdTier());
    for (uint64_t g = 0; g < 64; ++g) {
      ASSERT_EQ(sketch.GroupEnergy(g), want_energy[g]) << "group " << g;
      ASSERT_EQ(sketch.EstimateItem(g, g * 8 + 3), want_est[g])
          << "group " << g;
    }
  }
}

TEST(GcsSimdTierTest, NonPow2AndWideSubbucketsStayOnScalarContract) {
  // subbuckets > 2^30 exceeds the packed-slot bound, so UpdateBatch must
  // take the scalar path; with a tiny sketch we can only pin the guard's
  // behavior for non-pow2 widths, which share the % reduction.
  const BatchInput in = MakeInput(41, 600, uint64_t{1} << 13);
  SimdTierGuard guard(BestSimdTier());
  GroupCountSketch loop(11, 3, 8, 12), batch(11, 3, 8, 12);
  for (size_t i = 0; i < in.items.size(); ++i) {
    loop.Update(in.items[i] >> 4, in.items[i], in.values[i]);
  }
  batch.UpdateBatch(in.items.data(), in.values.data(), in.items.size(), 4);
  for (size_t i = 0; i < loop.NumCounters(); ++i) {
    ASSERT_EQ(loop.CounterAt(i), batch.CounterAt(i)) << "counter " << i;
  }
}

}  // namespace
}  // namespace wavemr
