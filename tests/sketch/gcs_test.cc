#include "sketch/group_count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rng.h"
#include "sketch/wavelet_gcs.h"
#include "wavelet/haar.h"

namespace wavemr {
namespace {

TEST(GroupCountSketchTest, GroupEnergyOfHeavyGroup) {
  GroupCountSketch sketch(3, 5, 64, 8);
  // Group 4 holds items 40..44 with substantial values.
  double energy = 0.0;
  for (uint64_t i = 0; i < 5; ++i) {
    double v = 100.0 + 10.0 * static_cast<double>(i);
    sketch.Update(4, 40 + i, v);
    energy += v * v;
  }
  // Light noise in other groups.
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    uint64_t g = 10 + rng.NextBounded(50);
    sketch.Update(g, g * 100 + rng.NextBounded(10), 1.0);
  }
  EXPECT_NEAR(sketch.GroupEnergy(4), energy, 0.3 * energy);
}

TEST(GroupCountSketchTest, SingletonItemEstimate) {
  GroupCountSketch sketch(5, 5, 128, 8);
  sketch.Update(77, 77, 250.0);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    uint64_t item = rng.NextBounded(5000);
    sketch.Update(item, item, 1.0);
  }
  EXPECT_NEAR(sketch.EstimateItem(77, 77), 250.0, 30.0);
}

TEST(GroupCountSketchTest, MergeMatchesBulk) {
  GroupCountSketch a(1, 3, 16, 4), b(1, 3, 16, 4), bulk(1, 3, 16, 4);
  for (uint64_t i = 0; i < 200; ++i) {
    (i % 2 ? a : b).Update(i / 8, i, static_cast<double>(i % 7));
    bulk.Update(i / 8, i, static_cast<double>(i % 7));
  }
  a.Merge(b);
  for (size_t i = 0; i < a.NumCounters(); ++i) {
    EXPECT_DOUBLE_EQ(a.CounterAt(i), bulk.CounterAt(i));
  }
}

TEST(GroupCountSketchTest, UpdateBatchMatchesScalarUpdatesBitForBit) {
  // The restructured kernel must be a pure layout change: a bulk update is
  // the same sequence of counter additions as the scalar loop, so tables
  // agree exactly (not just approximately).
  const uint32_t shift = 3;  // dyadic groups of 8, as in the wavelet tree
  GroupCountSketch scalar(42, 5, 32, 8), batch(42, 5, 32, 8);
  std::vector<uint64_t> items;
  std::vector<double> values;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    items.push_back(rng.NextBounded(1 << 12));
    values.push_back(static_cast<double>(rng.NextBounded(100)) * 0.25 - 12.0);
  }
  for (size_t i = 0; i < items.size(); ++i) {
    scalar.Update(items[i] >> shift, items[i], values[i]);
  }
  batch.UpdateBatch(items.data(), values.data(), items.size(), shift);
  ASSERT_EQ(scalar.NumCounters(), batch.NumCounters());
  for (size_t i = 0; i < scalar.NumCounters(); ++i) {
    EXPECT_DOUBLE_EQ(scalar.CounterAt(i), batch.CounterAt(i)) << "counter " << i;
  }
}

TEST(GroupCountSketchTest, UpdateBatchSortedItemsReuseGroupBuckets) {
  // Ascending items trigger the group-hash reuse fast path; interleaved
  // (unsorted) items must still land identically.
  GroupCountSketch sorted(7, 3, 16, 4), shuffled(7, 3, 16, 4);
  std::vector<uint64_t> asc;
  std::vector<double> val_asc;
  for (uint64_t i = 0; i < 256; ++i) {
    asc.push_back(i);
    val_asc.push_back(1.0 + static_cast<double>(i % 5));
  }
  sorted.UpdateBatch(asc.data(), val_asc.data(), asc.size(), 2);
  // Same multiset of updates, worst-case order for the cache (alternating
  // ends), applied scalar-wise.
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t item = (i % 2 == 0) ? i / 2 : 255 - i / 2;
    shuffled.Update(item >> 2, item, 1.0 + static_cast<double>(item % 5));
  }
  for (size_t i = 0; i < sorted.NumCounters(); ++i) {
    // Same cells, same totals; order differs so allow FP-rounding slack.
    EXPECT_NEAR(sorted.CounterAt(i), shuffled.CounterAt(i),
                1e-9 * (1.0 + std::fabs(sorted.CounterAt(i))));
  }
}

TEST(GroupCountSketchTest, LargeGroupShiftMapsEverythingToGroupZero) {
  GroupCountSketch a(3, 3, 16, 4), b(3, 3, 16, 4);
  std::vector<uint64_t> items = {1, 5, 900, 12345};
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  a.UpdateBatch(items.data(), values.data(), items.size(), 64);
  for (size_t i = 0; i < items.size(); ++i) b.Update(0, items[i], values[i]);
  for (size_t i = 0; i < a.NumCounters(); ++i) {
    EXPECT_DOUBLE_EQ(a.CounterAt(i), b.CounterAt(i));
  }
}

// ---------------------------------------------------------------------------
// Hierarchical wavelet GCS
// ---------------------------------------------------------------------------

WaveletGcsOptions TestGcsOptions() {
  WaveletGcsOptions opt;
  opt.seed = 99;
  opt.reps = 5;
  opt.subbuckets = 8;
  opt.degree_bits = 3;            // GCS-8
  opt.total_bytes = 256 * 1024;   // generous for a small test domain
  return opt;
}

TEST(WaveletGcsTest, RecoversPlantedHeavyCoefficients) {
  const uint64_t u = 1024;
  WaveletGcs sketch(u, TestGcsOptions());
  // Plant heavy coefficients directly in the wavelet domain.
  std::set<uint64_t> heavy = {3, 170, 512, 900};
  for (uint64_t idx : heavy) sketch.UpdateCoeff(idx, 500.0);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) sketch.UpdateCoeff(rng.NextBounded(u), 1.0);

  std::vector<WCoeff> top = sketch.FindTopK(4);
  ASSERT_EQ(top.size(), 4u);
  for (const WCoeff& c : top) {
    EXPECT_TRUE(heavy.count(c.index) > 0) << "unexpected index " << c.index;
    EXPECT_NEAR(c.value, 500.0, 100.0);
  }
}

TEST(WaveletGcsTest, DataDomainUpdateMatchesTransformPath) {
  // UpdateData(x, c) must produce the same coefficient estimates as the true
  // transform of the point signal c * e_x.
  const uint64_t u = 256;
  WaveletGcs sketch(u, TestGcsOptions());
  sketch.UpdateData(37, 64.0);
  std::vector<double> dense(u, 0.0);
  dense[37] = 64.0;
  std::vector<double> w = ForwardHaar(dense);
  for (uint64_t i = 0; i < u; ++i) {
    if (w[i] != 0.0) {
      EXPECT_NEAR(sketch.EstimateCoeff(i), w[i], 1e-6) << "coeff " << i;
    }
  }
}

TEST(WaveletGcsTest, MergeAndFlatCountersMatchDirectUpdates) {
  // The Send-Sketch wire path (ForEachNonzeroCounter -> AddToFlatCounter)
  // must reconstruct the merged sketch exactly.
  const uint64_t u = 512;
  WaveletGcsOptions opt = TestGcsOptions();
  WaveletGcs local1(u, opt), local2(u, opt), wire(u, opt), direct(u, opt);
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    uint64_t x = rng.NextBounded(u);
    double c = 1.0 + rng.NextBounded(9);
    (i % 2 ? local1 : local2).UpdateData(x, c);
    direct.UpdateData(x, c);
  }
  local1.ForEachNonzeroCounter(
      [&wire](uint64_t idx, double v) { wire.AddToFlatCounter(idx, v); });
  local2.ForEachNonzeroCounter(
      [&wire](uint64_t idx, double v) { wire.AddToFlatCounter(idx, v); });
  for (uint64_t i = 0; i < u; ++i) {
    // Identical up to floating-point addition order (the wire path sums the
    // two partitions' counters in a different sequence).
    double d = direct.EstimateCoeff(i);
    EXPECT_NEAR(wire.EstimateCoeff(i), d, 1e-9 * (1.0 + std::fabs(d))) << i;
  }
}

TEST(WaveletGcsTest, BulkUpdateDataMatchesPerCoefficientPath) {
  // UpdateData now feeds every level one sorted batch; the counters must be
  // exactly what the per-coefficient UpdateCoeff walk produces (the add
  // order per cell is preserved: ascending coefficient index).
  const uint64_t u = 512;
  WaveletGcsOptions opt = TestGcsOptions();
  WaveletGcs bulk(u, opt), scalar(u, opt);
  Rng rng(77);
  std::vector<std::pair<uint64_t, double>> points;
  for (int i = 0; i < 200; ++i) {
    points.emplace_back(rng.NextBounded(u), 1.0 + rng.NextBounded(20));
  }
  for (const auto& [x, c] : points) bulk.UpdateData(x, c);
  // Reference path: the error-tree coefficients of each point, applied one
  // UpdateCoeff at a time in ascending index order.
  for (const auto& [x, c] : points) {
    scalar.UpdateCoeff(0, c / std::sqrt(static_cast<double>(u)));
    for (uint32_t j = 0; j < 9; ++j) {  // log2(512) levels
      uint64_t block = u >> j;
      uint64_t k = x / block;
      uint64_t offset = x - k * block;
      double mag = c / std::sqrt(static_cast<double>(block));
      scalar.UpdateCoeff((uint64_t{1} << j) + k, (offset < block / 2) ? -mag : mag);
    }
  }
  uint64_t differing = 0;
  for (uint64_t i = 0; i < u; ++i) {
    if (bulk.EstimateCoeff(i) != scalar.EstimateCoeff(i)) ++differing;
  }
  EXPECT_EQ(differing, 0u);
}

TEST(WaveletGcsTest, EnergyEstimateTracksParseval) {
  const uint64_t u = 256;
  WaveletGcs sketch(u, TestGcsOptions());
  double energy = 0.0;
  for (uint64_t idx = 0; idx < 32; ++idx) {
    double v = static_cast<double>(idx) * 3.0;
    sketch.UpdateCoeff(idx, v);
    energy += v * v;
  }
  EXPECT_NEAR(sketch.EstimateEnergy(), energy, 0.35 * energy);
}

TEST(WaveletGcsTest, PaperSpaceRuleApplied) {
  WaveletGcsOptions opt;
  opt.total_bytes = 0;  // paper rule: 20KB * log2(u)
  WaveletGcs sketch(1 << 20, opt);
  EXPECT_GT(sketch.NumCounters() * sizeof(double), 200u * 1024);
  EXPECT_GT(sketch.CounterUpdatesPerDataPoint(), 0u);
}

TEST(WaveletGcsTest, CounterUpdateCostFormula) {
  WaveletGcsOptions opt = TestGcsOptions();
  WaveletGcs sketch(1024, opt);
  // log2(1024)+1 = 11 coefficients, each touching every level in each rep.
  EXPECT_EQ(sketch.CounterUpdatesPerDataPoint(),
            11u * sketch.num_levels() * opt.reps);
}

}  // namespace
}  // namespace wavemr
