#include "sketch/group_count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rng.h"
#include "sketch/wavelet_gcs.h"
#include "wavelet/haar.h"

namespace wavemr {
namespace {

TEST(GroupCountSketchTest, GroupEnergyOfHeavyGroup) {
  GroupCountSketch sketch(3, 5, 64, 8);
  // Group 4 holds items 40..44 with substantial values.
  double energy = 0.0;
  for (uint64_t i = 0; i < 5; ++i) {
    double v = 100.0 + 10.0 * static_cast<double>(i);
    sketch.Update(4, 40 + i, v);
    energy += v * v;
  }
  // Light noise in other groups.
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    uint64_t g = 10 + rng.NextBounded(50);
    sketch.Update(g, g * 100 + rng.NextBounded(10), 1.0);
  }
  EXPECT_NEAR(sketch.GroupEnergy(4), energy, 0.3 * energy);
}

TEST(GroupCountSketchTest, SingletonItemEstimate) {
  GroupCountSketch sketch(5, 5, 128, 8);
  sketch.Update(77, 77, 250.0);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    uint64_t item = rng.NextBounded(5000);
    sketch.Update(item, item, 1.0);
  }
  EXPECT_NEAR(sketch.EstimateItem(77, 77), 250.0, 30.0);
}

TEST(GroupCountSketchTest, MergeMatchesBulk) {
  GroupCountSketch a(1, 3, 16, 4), b(1, 3, 16, 4), bulk(1, 3, 16, 4);
  for (uint64_t i = 0; i < 200; ++i) {
    (i % 2 ? a : b).Update(i / 8, i, static_cast<double>(i % 7));
    bulk.Update(i / 8, i, static_cast<double>(i % 7));
  }
  a.Merge(b);
  for (size_t i = 0; i < a.NumCounters(); ++i) {
    EXPECT_DOUBLE_EQ(a.CounterAt(i), bulk.CounterAt(i));
  }
}

// ---------------------------------------------------------------------------
// Hierarchical wavelet GCS
// ---------------------------------------------------------------------------

WaveletGcsOptions TestGcsOptions() {
  WaveletGcsOptions opt;
  opt.seed = 99;
  opt.reps = 5;
  opt.subbuckets = 8;
  opt.degree_bits = 3;            // GCS-8
  opt.total_bytes = 256 * 1024;   // generous for a small test domain
  return opt;
}

TEST(WaveletGcsTest, RecoversPlantedHeavyCoefficients) {
  const uint64_t u = 1024;
  WaveletGcs sketch(u, TestGcsOptions());
  // Plant heavy coefficients directly in the wavelet domain.
  std::set<uint64_t> heavy = {3, 170, 512, 900};
  for (uint64_t idx : heavy) sketch.UpdateCoeff(idx, 500.0);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) sketch.UpdateCoeff(rng.NextBounded(u), 1.0);

  std::vector<WCoeff> top = sketch.FindTopK(4);
  ASSERT_EQ(top.size(), 4u);
  for (const WCoeff& c : top) {
    EXPECT_TRUE(heavy.count(c.index) > 0) << "unexpected index " << c.index;
    EXPECT_NEAR(c.value, 500.0, 100.0);
  }
}

TEST(WaveletGcsTest, DataDomainUpdateMatchesTransformPath) {
  // UpdateData(x, c) must produce the same coefficient estimates as the true
  // transform of the point signal c * e_x.
  const uint64_t u = 256;
  WaveletGcs sketch(u, TestGcsOptions());
  sketch.UpdateData(37, 64.0);
  std::vector<double> dense(u, 0.0);
  dense[37] = 64.0;
  std::vector<double> w = ForwardHaar(dense);
  for (uint64_t i = 0; i < u; ++i) {
    if (w[i] != 0.0) {
      EXPECT_NEAR(sketch.EstimateCoeff(i), w[i], 1e-6) << "coeff " << i;
    }
  }
}

TEST(WaveletGcsTest, MergeAndFlatCountersMatchDirectUpdates) {
  // The Send-Sketch wire path (ForEachNonzeroCounter -> AddToFlatCounter)
  // must reconstruct the merged sketch exactly.
  const uint64_t u = 512;
  WaveletGcsOptions opt = TestGcsOptions();
  WaveletGcs local1(u, opt), local2(u, opt), wire(u, opt), direct(u, opt);
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    uint64_t x = rng.NextBounded(u);
    double c = 1.0 + rng.NextBounded(9);
    (i % 2 ? local1 : local2).UpdateData(x, c);
    direct.UpdateData(x, c);
  }
  local1.ForEachNonzeroCounter(
      [&wire](uint64_t idx, double v) { wire.AddToFlatCounter(idx, v); });
  local2.ForEachNonzeroCounter(
      [&wire](uint64_t idx, double v) { wire.AddToFlatCounter(idx, v); });
  for (uint64_t i = 0; i < u; ++i) {
    // Identical up to floating-point addition order (the wire path sums the
    // two partitions' counters in a different sequence).
    double d = direct.EstimateCoeff(i);
    EXPECT_NEAR(wire.EstimateCoeff(i), d, 1e-9 * (1.0 + std::fabs(d))) << i;
  }
}

TEST(WaveletGcsTest, EnergyEstimateTracksParseval) {
  const uint64_t u = 256;
  WaveletGcs sketch(u, TestGcsOptions());
  double energy = 0.0;
  for (uint64_t idx = 0; idx < 32; ++idx) {
    double v = static_cast<double>(idx) * 3.0;
    sketch.UpdateCoeff(idx, v);
    energy += v * v;
  }
  EXPECT_NEAR(sketch.EstimateEnergy(), energy, 0.35 * energy);
}

TEST(WaveletGcsTest, PaperSpaceRuleApplied) {
  WaveletGcsOptions opt;
  opt.total_bytes = 0;  // paper rule: 20KB * log2(u)
  WaveletGcs sketch(1 << 20, opt);
  EXPECT_GT(sketch.NumCounters() * sizeof(double), 200u * 1024);
  EXPECT_GT(sketch.CounterUpdatesPerDataPoint(), 0u);
}

TEST(WaveletGcsTest, CounterUpdateCostFormula) {
  WaveletGcsOptions opt = TestGcsOptions();
  WaveletGcs sketch(1024, opt);
  // log2(1024)+1 = 11 coefficients, each touching every level in each rep.
  EXPECT_EQ(sketch.CounterUpdatesPerDataPoint(),
            11u * sketch.num_levels() * opt.reps);
}

}  // namespace
}  // namespace wavemr
