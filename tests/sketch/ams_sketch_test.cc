#include "sketch/ams_sketch.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace wavemr {
namespace {

TEST(AmsSketchTest, F2EstimateWithinTolerance) {
  AmsSketch sketch(7, 5, 256);
  double f2 = 0.0;
  Rng rng(2);
  for (uint64_t item = 0; item < 200; ++item) {
    double v = 1.0 + rng.NextBounded(20);
    sketch.Update(item, v);
    f2 += v * v;
  }
  EXPECT_NEAR(sketch.EstimateF2(), f2, 0.25 * f2);
}

TEST(AmsSketchTest, PointEstimateOfHeavyItem) {
  AmsSketch sketch(11, 5, 256);
  sketch.Update(3, 500.0);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) sketch.Update(10 + rng.NextBounded(1000), 1.0);
  EXPECT_NEAR(sketch.EstimatePoint(3), 500.0, 50.0);
}

TEST(AmsSketchTest, MergeMatchesBulk) {
  AmsSketch a(3, 3, 32), b(3, 3, 32), bulk(3, 3, 32);
  for (uint64_t i = 0; i < 100; ++i) {
    (i % 2 ? a : b).Update(i, static_cast<double>(i));
    bulk.Update(i, static_cast<double>(i));
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateF2(), bulk.EstimateF2());
}

TEST(AmsSketchTest, EmptySketchEstimatesZero) {
  AmsSketch sketch(1, 3, 16);
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.EstimatePoint(42), 0.0);
}

}  // namespace
}  // namespace wavemr
