#include "sketch/count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace wavemr {
namespace {

TEST(CountSketchTest, HeavyItemsEstimatedAccurately) {
  CountSketch sketch(42, 5, 512);
  // Heavy items over light noise.
  sketch.Update(7, 1000.0);
  sketch.Update(13, -800.0);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) sketch.Update(100 + rng.NextBounded(10000), 1.0);
  EXPECT_NEAR(sketch.Estimate(7), 1000.0, 60.0);
  EXPECT_NEAR(sketch.Estimate(13), -800.0, 60.0);
}

TEST(CountSketchTest, AbsentItemNearZero) {
  CountSketch sketch(42, 5, 512);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) sketch.Update(rng.NextBounded(1 << 20), 1.0);
  EXPECT_NEAR(sketch.Estimate(0xDEADBEEF), 0.0, 20.0);
}

TEST(CountSketchTest, UpdatesAreAdditive) {
  CountSketch sketch(1, 3, 64);
  sketch.Update(5, 10.0);
  sketch.Update(5, -10.0);
  EXPECT_NEAR(sketch.Estimate(5), 0.0, 1e-12);
  EXPECT_EQ(sketch.NonzeroCounters(), 0u);
}

TEST(CountSketchTest, MergeEqualsBulkUpdate) {
  CountSketch a(9, 4, 128), b(9, 4, 128), bulk(9, 4, 128);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    uint64_t item = rng.NextBounded(1000);
    double val = 1.0 + rng.NextBounded(5);
    if (i % 2 == 0) {
      a.Update(item, val);
    } else {
      b.Update(item, val);
    }
    bulk.Update(item, val);
  }
  a.Merge(b);
  for (size_t i = 0; i < a.counters().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.counters()[i], bulk.counters()[i]);
  }
}

TEST(CountSketchTest, NonzeroCountersBounded) {
  CountSketch sketch(2, 3, 64);
  sketch.Update(1, 5.0);
  // One update touches exactly `depth` counters.
  EXPECT_LE(sketch.NonzeroCounters(), 3u);
  EXPECT_GE(sketch.NonzeroCounters(), 1u);
}

}  // namespace
}  // namespace wavemr
