#include "data/file_dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/frequency.h"

namespace wavemr {
namespace {

class FileDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("wavemr_file_ds_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::filesystem::path path_;
};

TEST_F(FileDatasetTest, WriteOpenScan) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 1000; ++i) keys.push_back(i % 61);
  ASSERT_TRUE(WriteFixedRecordFile(path_.string(), keys, 8).ok());

  auto ds = FileDataset::Open(path_.string(), 8, 64, 6);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->info().num_records, 1000u);
  EXPECT_EQ(ds->info().num_splits, 6u);

  // Scanning all splits reproduces the file contents in order.
  std::vector<uint64_t> scanned;
  for (uint64_t j = 0; j < 6; ++j) {
    ds->ScanSplit(j, [&scanned](uint64_t k) { scanned.push_back(k); });
  }
  EXPECT_EQ(scanned, keys);

  // Random access agrees with the scan.
  uint64_t base = 0;
  for (uint64_t j = 0; j < 6; ++j) {
    for (uint64_t i = 0; i < ds->SplitRecords(j); i += 17) {
      EXPECT_EQ(ds->KeyAt(j, i), keys[base + i]);
    }
    base += ds->SplitRecords(j);
  }
}

TEST_F(FileDatasetTest, FrequencyMapMatchesKeys) {
  std::vector<uint64_t> keys = {1, 1, 1, 2, 3, 3};
  ASSERT_TRUE(WriteFixedRecordFile(path_.string(), keys, 4).ok());
  auto ds = FileDataset::Open(path_.string(), 4, 8, 2);
  ASSERT_TRUE(ds.ok());
  FrequencyMap freq = BuildFrequencyMap(*ds);
  EXPECT_EQ(freq[1], 3u);
  EXPECT_EQ(freq[2], 1u);
  EXPECT_EQ(freq[3], 2u);
}

TEST_F(FileDatasetTest, RejectsBadGeometry) {
  std::vector<uint64_t> keys = {1, 2, 3};
  ASSERT_TRUE(WriteFixedRecordFile(path_.string(), keys, 4).ok());
  EXPECT_FALSE(FileDataset::Open(path_.string(), 8, 8, 1).ok());   // size mismatch
  EXPECT_FALSE(FileDataset::Open(path_.string(), 4, 10, 1).ok());  // u not pow2
  EXPECT_FALSE(FileDataset::Open(path_.string(), 4, 8, 0).ok());   // zero splits
}

TEST_F(FileDatasetTest, MissingFileIsIOError) {
  auto ds = FileDataset::Open("/nonexistent/file.bin", 4, 8, 1);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace wavemr
