#include "data/zipf.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/rng.h"

namespace wavemr {
namespace {

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, SamplesWithinDomain) {
  ZipfDistribution zipf(1000, GetParam());
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1000u);
  }
}

TEST_P(ZipfAlphaTest, EmpiricalMatchesPmf) {
  const double alpha = GetParam();
  const uint64_t n = 50;
  ZipfDistribution zipf(n, alpha);
  Rng rng(7);
  const int kDraws = 200000;
  std::vector<int> hist(n + 1, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[zipf.Sample(rng)];
  // Check the head ranks against the exact pmf within 10% relative + slack.
  for (uint64_t k = 1; k <= 5; ++k) {
    double expect = zipf.Pmf(k) * kDraws;
    EXPECT_NEAR(hist[k], expect, expect * 0.1 + 30) << "rank " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.1, 1.4, 2.0));

TEST(ZipfTest, HigherAlphaIsMoreSkewed) {
  Rng r1(3), r2(3);
  ZipfDistribution mild(10000, 0.8), steep(10000, 1.4);
  int mild_rank1 = 0, steep_rank1 = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_rank1 += mild.Sample(r1) == 1;
    steep_rank1 += steep.Sample(r2) == 1;
  }
  EXPECT_GT(steep_rank1, mild_rank1 * 2);
}

TEST(ZipfTest, AlphaOneIsHandled) {
  // alpha == 1 exercises the expm1/log1p limit branches.
  ZipfDistribution zipf(1 << 20, 1.0);
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, uint64_t{1} << 20);
  }
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfDistribution zipf(1, 1.1);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(ZipfTest, HugeDomainConstantMemory) {
  // Rejection-inversion needs no tables: domain 2^40 works instantly.
  ZipfDistribution zipf(uint64_t{1} << 40, 1.1);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    uint64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, uint64_t{1} << 40);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(200, 1.1);
  double total = 0.0;
  for (uint64_t k = 1; k <= 200; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace wavemr
