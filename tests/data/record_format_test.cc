#include "data/record_format.h"

#include <gtest/gtest.h>

#include <set>

#include "core/rng.h"

namespace wavemr {
namespace {

TEST(FixedRecordTest, EncodeAndReadBack) {
  std::vector<uint64_t> keys = {7, 0, 4096, 0xFFFFFFFF};
  std::vector<uint8_t> bytes = EncodeFixedRecords(keys, 12);
  ASSERT_EQ(bytes.size(), keys.size() * 12);
  FixedRecordReader reader(bytes, 12);
  EXPECT_EQ(reader.num_records(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto k = reader.Next();
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(*k, keys[i]);
    EXPECT_EQ(reader.KeyAt(i), keys[i]);
  }
  EXPECT_FALSE(reader.Next().has_value());
  reader.Reset();
  EXPECT_EQ(*reader.Next(), 7u);
}

TEST(VarRecordTest, RoundTripsMixedSizes) {
  std::vector<VarRecord> records;
  for (uint32_t i = 0; i < 50; ++i) {
    records.push_back(MakeVarRecord(i * 3 + 1, 4 + (i % 37)));
  }
  auto bytes = EncodeVarRecords(records);
  ASSERT_TRUE(bytes.ok());
  VarRecordReader reader(*bytes);
  for (uint32_t i = 0; i < 50; ++i) {
    auto view = reader.Next();
    ASSERT_TRUE(view.has_value()) << "record " << i;
    EXPECT_EQ(view->key, records[i].key);
    EXPECT_EQ(view->payload.size(), records[i].payload.size());
  }
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(VarRecordTest, RejectsDelimiterInPayload) {
  VarRecord bad;
  bad.key = 1;
  bad.payload = std::string("ab\xFFzz", 5);
  auto bytes = EncodeVarRecords({bad});
  EXPECT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kInvalidArgument);
}

TEST(VarRecordTest, RejectsTinyPayload) {
  VarRecord bad;
  bad.key = 1;
  bad.payload = "ab";
  EXPECT_FALSE(EncodeVarRecords({bad}).ok());
}

TEST(VarRecordTest, RecordContainingResolvesEveryInteriorOffset) {
  std::vector<VarRecord> records = {MakeVarRecord(10, 8), MakeVarRecord(20, 30),
                                    MakeVarRecord(30, 4)};
  auto bytes = EncodeVarRecords(records);
  ASSERT_TRUE(bytes.ok());
  VarRecordReader reader(*bytes);

  // Walk every byte offset: the resolved record must be the one whose span
  // contains the offset (the Appendix B look-ahead guarantee).
  std::vector<std::pair<uint64_t, uint64_t>> spans;  // [start, end)
  uint64_t pos = 0;
  for (const VarRecord& r : records) {
    spans.emplace_back(pos, pos + r.payload.size() + 5);
    pos += r.payload.size() + 5;
  }
  for (uint64_t off = 0; off < bytes->size(); ++off) {
    auto view = reader.RecordContaining(off);
    ASSERT_TRUE(view.has_value());
    size_t which = 0;
    while (!(off >= spans[which].first && off < spans[which].second)) ++which;
    EXPECT_EQ(view->start_offset, spans[which].first) << "offset " << off;
  }
}

TEST(SampleDistinctIndicesTest, ExactCountDistinctSorted) {
  Rng rng(5);
  std::vector<uint64_t> s = SampleDistinctIndices(1000, 100, rng);
  ASSERT_EQ(s.size(), 100u);
  std::set<uint64_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 100u);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  for (uint64_t v : s) EXPECT_LT(v, 1000u);
}

TEST(SampleDistinctIndicesTest, CountExceedingNReturnsAll) {
  Rng rng(5);
  std::vector<uint64_t> s = SampleDistinctIndices(10, 50, rng);
  ASSERT_EQ(s.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(SampleDistinctIndicesTest, RoughlyUniform) {
  // Each index should be chosen with probability count/n.
  const uint64_t n = 200, count = 20;
  const int kTrials = 5000;
  std::vector<int> hits(n, 0);
  Rng rng(77);
  for (int t = 0; t < kTrials; ++t) {
    for (uint64_t idx : SampleDistinctIndices(n, count, rng)) ++hits[idx];
  }
  double expect = static_cast<double>(kTrials) * count / n;  // 500
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(hits[i], expect, expect * 0.35) << "index " << i;
  }
}

TEST(SampleVarRecordOffsetsTest, SamplesDistinctValidRecords) {
  std::vector<VarRecord> records;
  std::set<uint64_t> valid_starts;
  uint64_t pos = 0;
  Rng lenrng(3);
  for (uint32_t i = 0; i < 64; ++i) {
    uint32_t payload = 4 + static_cast<uint32_t>(lenrng.NextBounded(60));
    records.push_back(MakeVarRecord(i, payload));
    valid_starts.insert(pos);
    pos += payload + 5;
  }
  auto bytes = EncodeVarRecords(records);
  ASSERT_TRUE(bytes.ok());

  Rng rng(11);
  std::vector<uint64_t> offsets = SampleVarRecordOffsets(*bytes, 20, rng);
  EXPECT_GE(offsets.size(), 15u);  // redraws may fall short only rarely
  EXPECT_LE(offsets.size(), 20u);
  std::set<uint64_t> distinct(offsets.begin(), offsets.end());
  EXPECT_EQ(distinct.size(), offsets.size());
  for (uint64_t off : offsets) EXPECT_TRUE(valid_starts.count(off) > 0);
  for (size_t i = 1; i < offsets.size(); ++i) EXPECT_LT(offsets[i - 1], offsets[i]);
}

TEST(SampleVarRecordOffsetsTest, CanSampleEveryRecord) {
  std::vector<VarRecord> records;
  for (uint32_t i = 0; i < 16; ++i) records.push_back(MakeVarRecord(i, 10));
  auto bytes = EncodeVarRecords(records);
  ASSERT_TRUE(bytes.ok());
  Rng rng(9);
  std::vector<uint64_t> offsets = SampleVarRecordOffsets(*bytes, 200, rng);
  EXPECT_EQ(offsets.size(), 16u);
}

TEST(SampleVarRecordOffsetsTest, EmptyInput) {
  Rng rng(1);
  EXPECT_TRUE(SampleVarRecordOffsets({}, 5, rng).empty());
}

}  // namespace
}  // namespace wavemr
