#include "data/frequency.h"

#include <gtest/gtest.h>

#include "wavelet/haar.h"

namespace wavemr {
namespace {

TEST(FrequencyTest, GlobalIsSumOfSplits) {
  InMemoryDataset ds({{1, 2, 2}, {2, 3}, {1}}, 8);
  FrequencyMap global = BuildFrequencyMap(ds);
  EXPECT_EQ(global[1], 2u);
  EXPECT_EQ(global[2], 3u);
  EXPECT_EQ(global[3], 1u);

  FrequencyMap merged;
  for (uint64_t j = 0; j < 3; ++j) {
    for (const auto& [k, c] : BuildSplitFrequencyMap(ds, j)) merged[k] += c;
  }
  EXPECT_EQ(merged, global);
}

TEST(FrequencyTest, CountDistinctKeys) {
  InMemoryDataset ds({{1, 2, 2}, {2, 3}, {1}}, 8);
  EXPECT_EQ(CountDistinctKeys(ds), 3u);
}

TEST(FrequencyTest, TrueCoefficientsMatchDenseTransform) {
  InMemoryDataset ds({{0, 0, 1}, {3, 3, 3, 7}}, 8);
  std::vector<double> dense(8, 0.0);
  dense[0] = 2;
  dense[1] = 1;
  dense[3] = 3;
  dense[7] = 1;
  std::vector<double> expect = ForwardHaar(dense);
  std::unordered_map<uint64_t, double> got;
  for (const WCoeff& c : TrueCoefficients(ds)) got[c.index] = c.value;
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(got.count(i) ? got[i] : 0.0, expect[i], 1e-10) << i;
  }
}

TEST(FrequencyTest, ToSparseVectorPreservesCounts) {
  FrequencyMap freq = {{5, 3}, {9, 1}};
  SparseVector v = ToSparseVector(freq);
  ASSERT_EQ(v.size(), 2u);
  std::unordered_map<uint64_t, double> as_map(v.begin(), v.end());
  EXPECT_EQ(as_map[5], 3.0);
  EXPECT_EQ(as_map[9], 1.0);
}

}  // namespace
}  // namespace wavemr
