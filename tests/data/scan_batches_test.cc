// Equivalence of the batched data plane with the per-key primitives: for
// every Dataset implementation, ReadKeys / ScanBatches must visit exactly
// the key sequence Scan and KeyAt define, for any chunking.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "data/file_dataset.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/split_access.h"
#include "mapreduce/stats.h"

namespace wavemr {
namespace {

std::vector<uint64_t> KeysViaKeyAt(const Dataset& ds, uint64_t split) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < ds.SplitRecords(split); ++i) {
    keys.push_back(ds.KeyAt(split, i));
  }
  return keys;
}

std::vector<uint64_t> KeysViaScanSplit(const Dataset& ds, uint64_t split) {
  std::vector<uint64_t> keys;
  ds.ScanSplit(split, [&keys](uint64_t k) { keys.push_back(k); });
  return keys;
}

std::vector<uint64_t> KeysViaReadKeys(const Dataset& ds, uint64_t split,
                                      uint64_t chunk) {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> buffer(chunk);
  uint64_t start = 0;
  for (;;) {
    uint64_t got = ds.ReadKeys(split, start, buffer.data(), chunk);
    if (got == 0) break;
    EXPECT_LE(got, chunk) << "ReadKeys overfilled the buffer";
    keys.insert(keys.end(), buffer.begin(), buffer.begin() + got);
    start += got;
  }
  return keys;
}

void ExpectAllAccessPathsAgree(const Dataset& ds) {
  for (uint64_t j = 0; j < ds.info().num_splits; ++j) {
    std::vector<uint64_t> want = KeysViaKeyAt(ds, j);
    EXPECT_EQ(KeysViaScanSplit(ds, j), want) << "split " << j;
    // Chunk sizes around the awkward boundaries: 1, a prime, larger than
    // the split.
    for (uint64_t chunk : {uint64_t{1}, uint64_t{7}, uint64_t{1000},
                           ds.SplitRecords(j) + 3}) {
      std::vector<uint64_t> got;
      KeysViaReadKeys(ds, j, chunk).swap(got);
      EXPECT_EQ(got, want) << "split " << j << " chunk " << chunk;
    }
    // Reading past the end yields nothing.
    uint64_t sink[4];
    EXPECT_EQ(ds.ReadKeys(j, ds.SplitRecords(j), sink, 4), 0u);
  }
}

TEST(ScanBatchesTest, ZipfDatasetCachedAndUncachedAgree) {
  ZipfDatasetOptions opt;
  opt.num_records = 5000;
  opt.domain_size = 1 << 10;
  opt.num_splits = 7;  // uneven splits: 5000 = 7*714 + 2
  opt.seed = 11;

  ZipfDataset cached(opt);
  opt.cache_keys = false;
  ZipfDataset uncached(opt);

  ExpectAllAccessPathsAgree(cached);
  ExpectAllAccessPathsAgree(uncached);
  for (uint64_t j = 0; j < opt.num_splits; ++j) {
    EXPECT_EQ(KeysViaScanSplit(cached, j), KeysViaScanSplit(uncached, j))
        << "key cache changed the data, split " << j;
  }
}

TEST(ScanBatchesTest, WorldCupDatasetCachedAndUncachedAgree) {
  WorldCupDatasetOptions opt;
  opt.num_records = 3000;
  opt.num_clients = 1 << 5;
  opt.num_objects = 1 << 3;
  opt.num_splits = 5;
  opt.seed = 4;

  WorldCupDataset cached(opt);
  opt.cache_keys = false;
  WorldCupDataset uncached(opt);

  ExpectAllAccessPathsAgree(cached);
  ExpectAllAccessPathsAgree(uncached);
  for (uint64_t j = 0; j < opt.num_splits; ++j) {
    EXPECT_EQ(KeysViaScanSplit(cached, j), KeysViaScanSplit(uncached, j))
        << "key cache changed the data, split " << j;
  }
}

TEST(ScanBatchesTest, InMemoryDatasetAgrees) {
  InMemoryDataset ds({{3, 1, 4, 1, 5}, {9, 2, 6}, {}, {5, 3}}, 16);
  ExpectAllAccessPathsAgree(ds);
}

TEST(ScanBatchesTest, FileDatasetAgrees) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 1000; ++i) keys.push_back((i * 37) % 256);
  std::string path = testing::TempDir() + "/scan_batches_test.bin";
  ASSERT_TRUE(WriteFixedRecordFile(path, keys, 8).ok());
  auto ds = FileDataset::Open(path, 8, 256, 6);
  ASSERT_TRUE(ds.ok());
  ExpectAllAccessPathsAgree(*ds);
}

// SplitAccess::ScanBatches and SplitAccess::Scan must deliver the same key
// sequence and charge the same cost.
TEST(ScanBatchesTest, SplitAccessBatchAndPerKeyAgree) {
  ZipfDatasetOptions opt;
  opt.num_records = 10000;
  opt.domain_size = 1 << 8;
  opt.num_splits = 3;
  opt.seed = 21;
  ZipfDataset ds(opt);
  CostModel cm;

  for (uint64_t j = 0; j < opt.num_splits; ++j) {
    TaskCost cost_batch, cost_key;
    SplitAccess batch_access(ds, j, cm, &cost_batch);
    SplitAccess key_access(ds, j, cm, &cost_key);

    std::vector<uint64_t> via_batches;
    batch_access.ScanBatches([&via_batches](const uint64_t* keys, uint64_t n) {
      via_batches.insert(via_batches.end(), keys, keys + n);
    });
    std::vector<uint64_t> via_keys;
    key_access.Scan([&via_keys](uint64_t k) { via_keys.push_back(k); });

    EXPECT_EQ(via_batches, via_keys) << "split " << j;
    EXPECT_EQ(via_batches.size(), ds.SplitRecords(j));
    EXPECT_EQ(cost_batch.disk_bytes, cost_key.disk_bytes);
    EXPECT_EQ(cost_batch.records_read, cost_key.records_read);
    EXPECT_DOUBLE_EQ(cost_batch.cpu_ns, cost_key.cpu_ns);
  }
}

// Concurrent first-touch materialization must be safe and exact: many
// threads scanning the same splits see identical data (exercises the
// SplitKeyCache once-per-split path under TSan).
TEST(ScanBatchesTest, ConcurrentScansSeeIdenticalKeys) {
  ZipfDatasetOptions opt;
  opt.num_records = 20000;
  opt.domain_size = 1 << 10;
  opt.num_splits = 8;
  opt.seed = 31;
  ZipfDataset ds(opt);

  opt.cache_keys = false;
  ZipfDataset reference(opt);

  std::vector<std::vector<uint64_t>> seen(16);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 16; ++t) {
      threads.emplace_back([&ds, &seen, t] {
        for (uint64_t j = 0; j < ds.info().num_splits; ++j) {
          ds.ScanSplit(j, [&seen, t](uint64_t k) { seen[t].push_back(k); });
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  std::vector<uint64_t> want;
  for (uint64_t j = 0; j < reference.info().num_splits; ++j) {
    reference.ScanSplit(j, [&want](uint64_t k) { want.push_back(k); });
  }
  for (int t = 0; t < 16; ++t) EXPECT_EQ(seen[t], want) << "thread " << t;
}

}  // namespace
}  // namespace wavemr
