#include "data/dataset.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

namespace wavemr {
namespace {

ZipfDatasetOptions SmallZipf() {
  ZipfDatasetOptions opt;
  opt.num_records = 10000;
  opt.domain_size = 1 << 10;
  opt.alpha = 1.1;
  opt.num_splits = 7;
  opt.seed = 99;
  return opt;
}

TEST(ZipfDatasetTest, SplitSizesSumToN) {
  ZipfDataset ds(SmallZipf());
  uint64_t total = 0;
  for (uint64_t j = 0; j < ds.info().num_splits; ++j) total += ds.SplitRecords(j);
  EXPECT_EQ(total, ds.info().num_records);
  // Even distribution: sizes differ by at most 1.
  uint64_t lo = ds.SplitRecords(0), hi = lo;
  for (uint64_t j = 0; j < ds.info().num_splits; ++j) {
    lo = std::min(lo, ds.SplitRecords(j));
    hi = std::max(hi, ds.SplitRecords(j));
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ZipfDatasetTest, ScanMatchesRandomAccess) {
  // The deterministic generator must agree between sequential and random
  // access -- this is what makes the RandomRecordReader correct.
  ZipfDataset ds(SmallZipf());
  for (uint64_t j = 0; j < ds.info().num_splits; ++j) {
    std::vector<uint64_t> scanned;
    ds.ScanSplit(j, [&scanned](uint64_t key) { scanned.push_back(key); });
    ASSERT_EQ(scanned.size(), ds.SplitRecords(j));
    for (uint64_t i = 0; i < scanned.size(); i += 13) {
      EXPECT_EQ(ds.KeyAt(j, i), scanned[i]);
    }
  }
}

TEST(ZipfDatasetTest, DeterministicAcrossInstances) {
  ZipfDataset a(SmallZipf()), b(SmallZipf());
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(a.KeyAt(2, i), b.KeyAt(2, i));
}

TEST(ZipfDatasetTest, SeedChangesData) {
  ZipfDatasetOptions opt = SmallZipf();
  ZipfDataset a(opt);
  opt.seed = 100;
  ZipfDataset b(opt);
  int diff = 0;
  for (uint64_t i = 0; i < 100; ++i) diff += a.KeyAt(0, i) != b.KeyAt(0, i);
  EXPECT_GT(diff, 50);
}

TEST(ZipfDatasetTest, KeysWithinDomainAndSkewed) {
  ZipfDataset ds(SmallZipf());
  std::unordered_map<uint64_t, uint64_t> freq;
  for (uint64_t j = 0; j < ds.info().num_splits; ++j) {
    ds.ScanSplit(j, [&](uint64_t key) {
      ASSERT_LT(key, ds.info().domain_size);
      ++freq[key];
    });
  }
  // Zipf 1.1: the most frequent key should dominate the mean frequency.
  uint64_t max_count = 0;
  for (const auto& [k, c] : freq) max_count = std::max(max_count, c);
  double mean = static_cast<double>(ds.info().num_records) / freq.size();
  EXPECT_GT(static_cast<double>(max_count), 10.0 * mean);
}

TEST(ZipfDatasetTest, PermutationTogglesKeyScatter) {
  ZipfDatasetOptions opt = SmallZipf();
  opt.permute_keys = false;
  ZipfDataset plain(opt);
  // Without permutation the most frequent key is rank 0.
  std::unordered_map<uint64_t, uint64_t> freq;
  for (uint64_t j = 0; j < plain.info().num_splits; ++j) {
    plain.ScanSplit(j, [&](uint64_t key) { ++freq[key]; });
  }
  uint64_t argmax = 0, best = 0;
  for (const auto& [k, c] : freq) {
    if (c > best) {
      best = c;
      argmax = k;
    }
  }
  EXPECT_EQ(argmax, 0u);
}

TEST(WorldCupDatasetTest, BasicShape) {
  WorldCupDatasetOptions opt;
  opt.num_records = 5000;
  opt.num_clients = 1 << 6;
  opt.num_objects = 1 << 4;
  opt.num_splits = 4;
  WorldCupDataset ds(opt);
  EXPECT_EQ(ds.info().domain_size, uint64_t{1} << 10);
  EXPECT_EQ(ds.info().record_bytes, 40u);  // 10 x 4-byte attributes
  uint64_t total = 0;
  for (uint64_t j = 0; j < 4; ++j) {
    ds.ScanSplit(j, [&](uint64_t key) { ASSERT_LT(key, ds.info().domain_size); });
    total += ds.SplitRecords(j);
  }
  EXPECT_EQ(total, 5000u);
}

TEST(WorldCupDatasetTest, ScanMatchesRandomAccess) {
  WorldCupDatasetOptions opt;
  opt.num_records = 2000;
  opt.num_splits = 3;
  WorldCupDataset ds(opt);
  std::vector<uint64_t> scanned;
  ds.ScanSplit(1, [&scanned](uint64_t key) { scanned.push_back(key); });
  for (uint64_t i = 0; i < scanned.size(); i += 7) {
    EXPECT_EQ(ds.KeyAt(1, i), scanned[i]);
  }
}

TEST(InMemoryDatasetTest, ExplicitSplits) {
  InMemoryDataset ds({{1, 2, 3}, {4, 5}}, 8);
  EXPECT_EQ(ds.info().num_records, 5u);
  EXPECT_EQ(ds.info().num_splits, 2u);
  EXPECT_EQ(ds.SplitRecords(1), 2u);
  EXPECT_EQ(ds.KeyAt(1, 0), 4u);
  std::vector<uint64_t> keys;
  ds.ScanSplit(0, [&keys](uint64_t k) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace wavemr
