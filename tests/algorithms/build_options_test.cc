#include "histogram/algorithm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "data/dataset.h"
#include "histogram/builder.h"

namespace wavemr {
namespace {

void ExpectInvalidMentioning(const Status& s, const std::string& field) {
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find(field), std::string::npos)
      << "message does not name '" << field << "': " << s.message();
}

TEST(BuildOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(BuildOptions().Validate().ok());
}

TEST(BuildOptionsTest, ZeroKIsLegalEmptySynopsis) {
  // k = 0 must stay valid: the edge-case suite relies on it building an
  // empty histogram.
  BuildOptions options;
  options.k = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(BuildOptionsTest, RejectsNonPositiveOrNonFiniteEpsilon) {
  BuildOptions options;
  options.epsilon = 0.0;
  ExpectInvalidMentioning(options.Validate(), "epsilon");
  options.epsilon = -0.5;
  ExpectInvalidMentioning(options.Validate(), "epsilon");
  options.epsilon = std::numeric_limits<double>::quiet_NaN();
  ExpectInvalidMentioning(options.Validate(), "epsilon");
  options.epsilon = std::numeric_limits<double>::infinity();
  ExpectInvalidMentioning(options.Validate(), "epsilon");
}

TEST(BuildOptionsTest, RejectsNegativeThreads) {
  BuildOptions options;
  options.threads = -1;
  ExpectInvalidMentioning(options.Validate(), "threads");
  options.threads = 0;  // 0 = one per hardware thread: valid
  EXPECT_TRUE(options.Validate().ok());
}

TEST(BuildOptionsTest, RejectsNegativeReduceTasks) {
  BuildOptions options;
  options.reduce_tasks = -3;
  ExpectInvalidMentioning(options.Validate(), "reduce_tasks");
  options.reduce_tasks = 0;  // 0 = match map threads: valid
  EXPECT_TRUE(options.Validate().ok());
}

TEST(BuildOptionsTest, RejectsZeroShuffleBuffer) {
  BuildOptions options;
  options.cost_model.shuffle_buffer_bytes = 0;
  ExpectInvalidMentioning(options.Validate(), "shuffle_buffer_bytes");
}

TEST(BuildOptionsTest, BuildWaveletHistogramRunsValidationOnce) {
  InMemoryDataset ds({{0, 1, 2, 3}}, 4);
  BuildOptions options;
  options.threads = -1;
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuildOptionsTest, SuccessfulBuildStampsAlgorithmName) {
  InMemoryDataset ds({{0, 1, 2, 3}, {3, 3, 0, 1}}, 4);
  BuildOptions options;
  options.k = 4;
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendCoef, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->algorithm, "Send-Coef");
}

TEST(ParseAlgorithmKindTest, AcceptsEveryCliSpelling) {
  struct Case {
    const char* spelling;
    AlgorithmKind kind;
  };
  const Case cases[] = {
      {"send-v", AlgorithmKind::kSendV},
      {"send-coef", AlgorithmKind::kSendCoef},
      {"h-wtopk", AlgorithmKind::kHWTopk},
      {"basic-s", AlgorithmKind::kBasicS},
      {"improved-s", AlgorithmKind::kImprovedS},
      {"twolevel-s", AlgorithmKind::kTwoLevelS},
      {"send-sketch", AlgorithmKind::kSendSketch},
  };
  for (const Case& c : cases) {
    auto kind = ParseAlgorithmKind(c.spelling);
    ASSERT_TRUE(kind.ok()) << c.spelling;
    EXPECT_EQ(*kind, c.kind) << c.spelling;
  }
}

TEST(ParseAlgorithmKindTest, RejectsUnknownNameListingChoices) {
  auto kind = ParseAlgorithmKind("wavelets-4-ever");
  ASSERT_FALSE(kind.ok());
  EXPECT_EQ(kind.status().code(), StatusCode::kInvalidArgument);
  // The error should teach the valid spellings.
  EXPECT_NE(kind.status().message().find("twolevel-s"), std::string::npos)
      << kind.status().message();
}

}  // namespace
}  // namespace wavemr
