#include "exact/tput.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace wavemr {
namespace {

// Random local score tables: `m` nodes, items in [0, universe), both signs.
std::vector<LocalScores> RandomNodes(size_t m, uint64_t universe, size_t per_node,
                                     uint64_t seed, bool nonnegative = false) {
  Rng rng(seed);
  std::vector<LocalScores> nodes(m);
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < per_node; ++i) {
      uint64_t item = rng.NextBounded(universe);
      double score = (rng.NextDouble() - (nonnegative ? 0.0 : 0.5)) * 100.0;
      nodes[j][item] += score;
    }
    // Drop exact zeros produced by accumulation, if any.
    for (auto it = nodes[j].begin(); it != nodes[j].end();) {
      it = it->second == 0.0 ? nodes[j].erase(it) : std::next(it);
    }
  }
  return nodes;
}

// The top-k answer is unique up to ties in magnitude; compare magnitude
// multisets (sorted descending).
void ExpectSameMagnitudes(const std::vector<std::pair<uint64_t, double>>& got,
                          const std::vector<std::pair<uint64_t, double>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(std::fabs(got[i].second), std::fabs(want[i].second), 1e-9)
        << "rank " << i;
  }
}

struct TputCase {
  size_t m;
  uint64_t universe;
  size_t per_node;
  size_t k;
  uint64_t seed;
};

class TwoSidedTputTest : public ::testing::TestWithParam<TputCase> {};

TEST_P(TwoSidedTputTest, MatchesBruteForce) {
  const TputCase& c = GetParam();
  std::vector<LocalScores> nodes = RandomNodes(c.m, c.universe, c.per_node, c.seed);
  TputResult result = TwoSidedTput(nodes, c.k);
  auto want = ExactTopKByMagnitude(nodes, c.k);
  ExpectSameMagnitudes(result.topk, want);
}

TEST_P(TwoSidedTputTest, CommunicatesLessThanSendAll) {
  const TputCase& c = GetParam();
  std::vector<LocalScores> nodes = RandomNodes(c.m, c.universe, c.per_node, c.seed);
  uint64_t send_all = 0;
  for (const LocalScores& node : nodes) send_all += node.size();
  TputResult result = TwoSidedTput(nodes, c.k);
  EXPECT_LE(result.Messages(), send_all);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TwoSidedTputTest,
    ::testing::Values(TputCase{3, 50, 20, 5, 1}, TputCase{5, 200, 60, 10, 2},
                      TputCase{10, 1000, 200, 10, 3}, TputCase{4, 30, 30, 3, 4},
                      TputCase{8, 500, 100, 1, 5}, TputCase{2, 20, 10, 20, 6},
                      TputCase{16, 4000, 400, 25, 7}));

TEST(TwoSidedTputTest, AllNegativeScores) {
  std::vector<LocalScores> nodes(3);
  nodes[0] = {{1, -10.0}, {2, -1.0}};
  nodes[1] = {{1, -10.0}, {3, -2.0}};
  nodes[2] = {{2, -1.0}, {3, -2.0}};
  TputResult result = TwoSidedTput(nodes, 2);
  ASSERT_EQ(result.topk.size(), 2u);
  EXPECT_EQ(result.topk[0].first, 1u);
  EXPECT_DOUBLE_EQ(result.topk[0].second, -20.0);
  EXPECT_EQ(result.topk[1].first, 3u);
}

TEST(TwoSidedTputTest, CancellationAcrossNodes) {
  // Item 1 looks big at each node but cancels; item 2 is modest but stable.
  // A naive "top-k of |local|" heuristic would wrongly pick item 1.
  std::vector<LocalScores> nodes(2);
  nodes[0] = {{1, 100.0}, {2, 10.0}};
  nodes[1] = {{1, -100.0}, {2, 10.0}};
  TputResult result = TwoSidedTput(nodes, 1);
  ASSERT_EQ(result.topk.size(), 1u);
  EXPECT_EQ(result.topk[0].first, 2u);
  EXPECT_DOUBLE_EQ(result.topk[0].second, 20.0);
}

TEST(TwoSidedTputTest, KLargerThanUniverse) {
  std::vector<LocalScores> nodes(2);
  nodes[0] = {{1, 5.0}};
  nodes[1] = {{2, -3.0}};
  TputResult result = TwoSidedTput(nodes, 10);
  ASSERT_EQ(result.topk.size(), 2u);
  EXPECT_EQ(result.topk[0].first, 1u);
}

TEST(TwoSidedTputTest, SingleNodeDegeneratesToLocalTopK) {
  std::vector<LocalScores> nodes(1);
  nodes[0] = {{1, 5.0}, {2, -30.0}, {3, 10.0}};
  TputResult result = TwoSidedTput(nodes, 2);
  ASSERT_EQ(result.topk.size(), 2u);
  EXPECT_EQ(result.topk[0].first, 2u);
  EXPECT_EQ(result.topk[1].first, 3u);
}

TEST(ClassicTputTest, MatchesBruteForceOnNonnegative) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<LocalScores> nodes = RandomNodes(6, 300, 80, seed, true);
    TputResult result = ClassicTput(nodes, 10);
    auto want = ExactTopKByMagnitude(nodes, 10);
    ExpectSameMagnitudes(result.topk, want);
  }
}

TEST(ClassicTputTest, ThresholdsAreMonotone) {
  std::vector<LocalScores> nodes = RandomNodes(5, 100, 40, 9, true);
  TputResult result = ClassicTput(nodes, 5);
  EXPECT_GE(result.t2, result.t1);  // T2 refines (raises) the threshold
}

TEST(TwoSidedTputTest, PrunedCandidateSetStillContainsAnswer) {
  // Stress: heavy ties and duplicates.
  std::vector<LocalScores> nodes(4);
  for (int j = 0; j < 4; ++j) {
    for (uint64_t item = 0; item < 40; ++item) {
      nodes[j][item] = (item % 2 ? 1.0 : -1.0) * static_cast<double>(item / 2);
    }
  }
  TputResult result = TwoSidedTput(nodes, 6);
  auto want = ExactTopKByMagnitude(nodes, 6);
  ExpectSameMagnitudes(result.topk, want);
}

}  // namespace
}  // namespace wavemr
