#include <gtest/gtest.h>

#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/estimator.h"

namespace wavemr {
namespace {

// End-to-end: all seven algorithms over one dataset, checking the global
// invariants the paper's evaluation relies on.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ZipfDatasetOptions opt;
    opt.num_records = 60000;
    opt.domain_size = 1 << 11;
    opt.alpha = 1.1;
    opt.num_splits = 20;
    opt.seed = 77;
    dataset_ = new ZipfDataset(opt);
    truth_ = new std::vector<WCoeff>(TrueCoefficients(*dataset_));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete truth_;
    dataset_ = nullptr;
    truth_ = nullptr;
  }

  static BuildOptions Options() {
    BuildOptions opt;
    opt.k = 20;
    opt.epsilon = 0.015;
    opt.seed = 5;
    opt.gcs.total_bytes = 256 * 1024;
    return opt;
  }

  static ZipfDataset* dataset_;
  static std::vector<WCoeff>* truth_;
};

ZipfDataset* IntegrationTest::dataset_ = nullptr;
std::vector<WCoeff>* IntegrationTest::truth_ = nullptr;

TEST_F(IntegrationTest, AllAlgorithmsRunAndRespectSseInvariants) {
  const double ideal = IdealSse(*truth_, Options().k);
  const double energy = TotalEnergy(*truth_);
  for (AlgorithmKind kind : AllAlgorithms()) {
    auto result = BuildWaveletHistogram(*dataset_, kind, Options());
    ASSERT_TRUE(result.ok()) << AlgorithmName(kind);
    EXPECT_LE(result->histogram.num_terms(), Options().k) << AlgorithmName(kind);
    double sse = SseAgainstTrueCoefficients(result->ToSnapshot(), *truth_);
    EXPECT_GE(sse, ideal * (1.0 - 1e-9)) << AlgorithmName(kind);
    EXPECT_LE(sse, energy * 1.5) << AlgorithmName(kind);
    EXPECT_GT(result->stats.TotalSeconds(), 0.0) << AlgorithmName(kind);
    EXPECT_GT(result->stats.TotalCommBytes(), 0u) << AlgorithmName(kind);
  }
}

TEST_F(IntegrationTest, ExactMethodsHitIdealSse) {
  const double ideal = IdealSse(*truth_, Options().k);
  for (AlgorithmKind kind : ExactAlgorithms()) {
    auto result = BuildWaveletHistogram(*dataset_, kind, Options());
    ASSERT_TRUE(result.ok());
    double sse = SseAgainstTrueCoefficients(result->ToSnapshot(), *truth_);
    EXPECT_NEAR(sse, ideal, 1e-6 * (1.0 + ideal)) << AlgorithmName(kind);
  }
}

TEST_F(IntegrationTest, RoundCountsMatchTheAlgorithms) {
  for (AlgorithmKind kind : AllAlgorithms()) {
    auto result = BuildWaveletHistogram(*dataset_, kind, Options());
    ASSERT_TRUE(result.ok());
    size_t expect = kind == AlgorithmKind::kHWTopk ? 3 : 1;
    EXPECT_EQ(result->stats.NumRounds(), expect) << AlgorithmName(kind);
  }
}

TEST_F(IntegrationTest, PaperCommunicationOrdering) {
  // Figure 5(a): TwoLevel-S < Improved-S < H-WTopk < Send-V at defaults,
  // with Send-Sketch between the samplers and Send-V.
  BuildOptions opt = Options();
  auto sendv = BuildWaveletHistogram(*dataset_, AlgorithmKind::kSendV, opt);
  auto hwtopk = BuildWaveletHistogram(*dataset_, AlgorithmKind::kHWTopk, opt);
  auto improved = BuildWaveletHistogram(*dataset_, AlgorithmKind::kImprovedS, opt);
  auto twolevel = BuildWaveletHistogram(*dataset_, AlgorithmKind::kTwoLevelS, opt);
  ASSERT_TRUE(sendv.ok());
  ASSERT_TRUE(hwtopk.ok());
  ASSERT_TRUE(improved.ok());
  ASSERT_TRUE(twolevel.ok());
  EXPECT_LT(twolevel->stats.TotalCommBytes(), improved->stats.TotalCommBytes());
  EXPECT_LT(hwtopk->stats.TotalCommBytes(), sendv->stats.TotalCommBytes());
  EXPECT_LT(twolevel->stats.TotalCommBytes(), hwtopk->stats.TotalCommBytes());
}

TEST_F(IntegrationTest, SamplersAreFastestExactIsSlower) {
  // Figure 5(b) shape: samplers beat H-WTopk, which beats Send-V;
  // Send-Sketch is the slowest.
  BuildOptions opt = Options();
  auto sendv = BuildWaveletHistogram(*dataset_, AlgorithmKind::kSendV, opt);
  auto hwtopk = BuildWaveletHistogram(*dataset_, AlgorithmKind::kHWTopk, opt);
  auto twolevel = BuildWaveletHistogram(*dataset_, AlgorithmKind::kTwoLevelS, opt);
  auto sketch = BuildWaveletHistogram(*dataset_, AlgorithmKind::kSendSketch, opt);
  ASSERT_TRUE(sendv.ok());
  ASSERT_TRUE(hwtopk.ok());
  ASSERT_TRUE(twolevel.ok());
  ASSERT_TRUE(sketch.ok());
  EXPECT_LT(twolevel->stats.TotalSeconds(), hwtopk->stats.TotalSeconds());
  EXPECT_GT(sketch->stats.TotalSeconds(), sendv->stats.TotalSeconds());
}

TEST_F(IntegrationTest, WorldCupDatasetEndToEnd) {
  WorldCupDatasetOptions wc;
  wc.num_records = 40000;
  wc.num_clients = 1 << 7;
  wc.num_objects = 1 << 4;
  wc.num_splits = 10;
  WorldCupDataset ds(wc);
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  BuildOptions opt = Options();
  double ideal = IdealSse(truth, opt.k);
  auto exact = BuildWaveletHistogram(ds, AlgorithmKind::kHWTopk, opt);
  auto approx = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(SseAgainstTrueCoefficients(exact->ToSnapshot(), truth), ideal,
              1e-6 * (1 + ideal));
  EXPECT_GE(SseAgainstTrueCoefficients(approx->ToSnapshot(), truth),
            ideal * (1 - 1e-9));
  EXPECT_LT(approx->stats.TotalCommBytes(), exact->stats.TotalCommBytes());
}

TEST_F(IntegrationTest, AlgorithmNamesAndFactory) {
  for (AlgorithmKind kind : AllAlgorithms()) {
    auto algo = MakeAlgorithm(kind);
    EXPECT_EQ(algo->name(), AlgorithmName(kind));
  }
  EXPECT_EQ(ExactAlgorithms().size(), 3u);
  EXPECT_EQ(ApproximateAlgorithms().size(), 4u);
}

}  // namespace
}  // namespace wavemr
