#include <gtest/gtest.h>

#include "approx/send_sketch.h"
#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/estimator.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

ZipfDataset SkewedDataset() {
  ZipfDatasetOptions opt;
  opt.num_records = 30000;
  opt.domain_size = 1 << 10;
  opt.alpha = 1.3;  // strongly skewed: few dominant coefficients
  opt.num_splits = 8;
  opt.seed = 31;
  return ZipfDataset(opt);
}

TEST(SendSketchTest, SseBetweenIdealAndTotalEnergy) {
  ZipfDataset ds = SkewedDataset();
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  BuildOptions opt;
  opt.k = 10;
  opt.gcs.total_bytes = 512 * 1024;
  opt.gcs.reps = 5;
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendSketch, opt);
  ASSERT_TRUE(result.ok());
  double sse = SseAgainstTrueCoefficients(result->ToSnapshot(), truth);
  double ideal = IdealSse(truth, opt.k);
  double energy = TotalEnergy(truth);
  EXPECT_GE(sse, ideal * (1 - 1e-9));
  // A reasonable sketch recovers most of the top-k energy on skewed data.
  EXPECT_LT(sse, 0.5 * energy);
}

TEST(SendSketchTest, CommunicationIsNonzeroCountersTimesEntryBytes) {
  ZipfDataset ds = SkewedDataset();
  BuildOptions opt;
  opt.k = 10;
  opt.gcs.total_bytes = 64 * 1024;
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendSketch, opt);
  ASSERT_TRUE(result.ok());
  const RoundStats& round = result->stats.rounds[0];
  EXPECT_EQ(round.shuffle_bytes, round.shuffle_pairs * 12);
  // Bounded by m * total counters.
  uint64_t counters = WaveletGcs(ds.info().domain_size, opt.gcs).NumCounters();
  EXPECT_LE(round.shuffle_pairs, ds.info().num_splits * counters);
  EXPECT_GT(round.shuffle_pairs, 0u);
}

TEST(SendSketchTest, CommunicationIndependentOfN) {
  // Sketch size depends on u, not n: doubling records leaves the per-split
  // sketch size capped by the counter count.
  ZipfDatasetOptions small;
  small.num_records = 10000;
  small.domain_size = 1 << 10;
  small.num_splits = 8;
  ZipfDatasetOptions big = small;
  big.num_records = 40000;
  BuildOptions opt;
  opt.gcs.total_bytes = 32 * 1024;
  auto a = BuildWaveletHistogram(ZipfDataset(small), AlgorithmKind::kSendSketch, opt);
  auto b = BuildWaveletHistogram(ZipfDataset(big), AlgorithmKind::kSendSketch, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Within 2x of each other (both near saturation of the sketch).
  EXPECT_LT(b->stats.TotalCommBytes(), 2 * a->stats.TotalCommBytes() + 1024);
}

TEST(SendSketchTest, DeterministicUnderFixedSeed) {
  ZipfDataset ds = SkewedDataset();
  BuildOptions opt;
  opt.k = 8;
  opt.gcs.total_bytes = 64 * 1024;
  auto a = BuildWaveletHistogram(ds, AlgorithmKind::kSendSketch, opt);
  auto b = BuildWaveletHistogram(ds, AlgorithmKind::kSendSketch, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->histogram.num_terms(), b->histogram.num_terms());
  for (size_t i = 0; i < a->histogram.num_terms(); ++i) {
    EXPECT_EQ(a->histogram.coefficients()[i].index,
              b->histogram.coefficients()[i].index);
  }
}

TEST(SendSketchTest, RecoversDominantCoefficient) {
  // One overwhelmingly frequent key -> its path coefficients dominate; the
  // sketch must find the average coefficient (index 0) at least.
  std::vector<std::vector<uint64_t>> splits(4);
  for (int j = 0; j < 4; ++j) splits[j].assign(2000, 5);  // all records key 5
  InMemoryDataset ds(std::move(splits), 1 << 8);
  BuildOptions opt;
  opt.k = 5;
  opt.gcs.total_bytes = 128 * 1024;
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendSketch, opt);
  ASSERT_TRUE(result.ok());
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  std::vector<WCoeff> ideal = TopKByMagnitude(truth, opt.k);
  // The sketch's top coefficient should be the true dominant one.
  ASSERT_GE(result->histogram.num_terms(), 1u);
  std::vector<WCoeff> got = TopKByMagnitude(result->histogram.coefficients(), 1);
  EXPECT_EQ(got[0].index, ideal[0].index);
  EXPECT_NEAR(got[0].value, ideal[0].value, 0.2 * std::fabs(ideal[0].value));
}

}  // namespace
}  // namespace wavemr
